GO ?= go

.PHONY: ci vet build test race bench report

## ci: the pre-merge check — vet, build, full tests, race-enabled cache
## and pipeline tests. Documented in README.md; run before every merge.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The cache layer and the pipeline's recycling are the concurrency-  and
# aliasing-sensitive parts; run their tests under the race detector.
race:
	$(GO) test -race ./internal/core ./internal/simcache ./internal/pipeline

bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .

report:
	$(GO) run ./cmd/mgreport -exp all
