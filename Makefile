GO ?= go

.PHONY: ci vet fmt build test race obs-smoke critpath-smoke sched-smoke sched-soa metrics-smoke index-smoke ledger-smoke selfprof-smoke sampling-accuracy bench benchjson profile report

## ci: the pre-merge check — vet, gofmt, build, full tests, race-enabled
## cache and pipeline tests, the scheduler differential, the SoA/pooling
## determinism smoke, the sampling accuracy gate, and end-to-end
## observability, attribution, metrics/tracing, run-ledger and
## self-profiling smoke tests. Documented in README.md; run before every
## merge.
ci: vet fmt build test race sched-smoke sched-soa sampling-accuracy obs-smoke critpath-smoke metrics-smoke index-smoke ledger-smoke selfprof-smoke

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail (and show them) if any.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The cache layer and the pipeline's recycling are the concurrency-  and
# aliasing-sensitive parts; run their tests under the race detector. The
# critpath integration tests ride along: they drive observed pipeline runs.
# The scheduler differential dominates this target; give it headroom
# beyond the default 10m — the race detector slows it an order of
# magnitude on loaded machines.
race:
	$(GO) test -race -timeout 25m ./internal/core ./internal/simcache ./internal/pipeline ./internal/critpath ./internal/ledger ./internal/metrics

# End-to-end observability: one observed run, then render + summarize the
# files it produced; then the same run traced with the binary encoding,
# which must render directly and convert byte-identically to the JSONL.
obs-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/mgsim -workload comm.crc32 -input small -config reduced \
		-selector Slack-Dynamic -pipetrace -intervals 500 -tracedir $$dir >/dev/null && \
	$(GO) run ./cmd/mgtrace -trace $$dir/comm.crc32_small_reduced-3way_Slack-Dynamic.pipetrace.jsonl \
		-count 16 >/dev/null && \
	$(GO) run ./cmd/mgtrace -summary $$dir/comm.crc32_small_reduced-3way_Slack-Dynamic.intervals.jsonl \
		>/dev/null && \
	$(GO) run ./cmd/mgsim -workload comm.crc32 -input small -config reduced \
		-selector Slack-Dynamic -pipetrace-bin -tracedir $$dir/bin >/dev/null && \
	$(GO) run ./cmd/mgtrace -trace $$dir/bin/comm.crc32_small_reduced-3way_Slack-Dynamic.pipetrace.bin \
		-count 16 >/dev/null && \
	$(GO) run ./cmd/mgtrace -tojsonl $$dir/bin/comm.crc32_small_reduced-3way_Slack-Dynamic.pipetrace.bin | \
		cmp - $$dir/comm.crc32_small_reduced-3way_Slack-Dynamic.pipetrace.jsonl && \
	rm -rf $$dir && echo "obs-smoke ok"

# Scheduler differential: the event-driven scheduler must match the scan
# reference bit for bit (Stats, pipetrace bytes, interval samples) on every
# workload across the singleton / mini-graph / Slack-Dynamic configurations.
sched-smoke:
	$(GO) test -run 'TestSchedulerDifferential' -count=1 ./internal/pipeline
	@echo "sched-smoke ok"

# SoA/pooling determinism: pooled-machine reuse and the sampled-windows
# estimator must replay bit-identically under both schedulers and any
# worker count — the invariants the structure-of-arrays hot loop and the
# machine pool lean on.
sched-soa:
	$(GO) test -run 'TestMachineReuse|TestSampledDifferential|TestUop|TestRecycl' -count=1 ./internal/pipeline
	@echo "sched-soa ok"

# Cycle-loss attribution end to end on the committed tiny trace: the walk
# must succeed and report the trace's known 2-cycle serialization bucket.
critpath-smoke:
	@out=$$($(GO) run ./cmd/mgtrace -critpath cmd/mgtrace/testdata/tiny.pipetrace.jsonl -config reduced -top 3) && \
	echo "$$out" | grep -q "serialization *2 *22.2%" && echo "critpath-smoke ok" || \
	{ echo "critpath-smoke FAILED:"; echo "$$out"; exit 1; }

# End-to-end metrics/tracing: run one tiny sweep with -trace-out, then
# validate the Chrome trace it wrote (matched B/E pairs, monotonic
# timestamps) and print nothing on success.
metrics-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/mgreport -exp fig1 -only comm.crc32 -input small -plots=false \
		-trace-out $$dir/sweep.trace >/dev/null && \
	$(GO) run ./cmd/mgtrace -spans $$dir/sweep.trace >/dev/null && \
	rm -rf $$dir && echo "metrics-smoke ok"

# Trace-index end to end: an observed binary run must leave a .mgidx
# sidecar next to the trace; a -window query through the index must print
# byte-identically to the -noindex linear scan (modulo the mode label); a
# windowed critical-path attribution over the same trace must succeed; and
# the live /debug/trace flight-recorder endpoint tests must pass.
index-smoke:
	@dir=$$(mktemp -d); \
	t=$$dir/comm.crc32_small_reduced-3way_Slack-Dynamic.pipetrace.bin; \
	$(GO) run ./cmd/mgsim -workload comm.crc32 -input small -config reduced \
		-selector Slack-Dynamic -pipetrace-bin -tracedir $$dir >/dev/null 2>&1 && \
	test -s $$t.mgidx && \
	$(GO) run ./cmd/mgtrace -trace $$t -window 2000:4000 -count 100000 | \
		sed 's/(seek index)/(scan)/' > $$dir/win.idx && \
	$(GO) run ./cmd/mgtrace -trace $$t -window 2000:4000 -count 100000 -noindex | \
		sed 's/(linear scan)/(scan)/' > $$dir/win.lin && \
	cmp $$dir/win.idx $$dir/win.lin && \
	$(GO) run ./cmd/mgtrace -critpath $$t -config reduced -window 2000:4000 >/dev/null && \
	$(GO) test -run 'TestFlight|TestTraceWindowHandler|TestServeDebugTraceEndpoint' -count=1 ./internal/obs >/dev/null && \
	rm -rf $$dir && echo "index-smoke ok"

# Run-ledger end to end: the same tiny sweep twice with -ledger must
# append (never clobber) — the record count doubles across the restart —
# and comparing the recorded rev against itself must gate clean.
ledger-smoke:
	@dir=$$(mktemp -d); \
	run() { $(GO) run ./cmd/mgreport -exp fig1 -only comm.crc32 -input small \
		-plots=false -ledger $$dir/led -ledger-rev ci >/dev/null; }; \
	run && n1=$$(grep -c '^v1 ' $$dir/led/ledger.jsonl) && \
	run && n2=$$(grep -c '^v1 ' $$dir/led/ledger.jsonl) && \
	[ "$$n2" -eq $$((2 * n1)) ] || { echo "ledger-smoke FAILED: $$n1 then $$n2 records (want double)"; exit 1; }; \
	$(GO) run ./cmd/mgstat -ledger $$dir/led -compare ci,ci -gate 5 >/dev/null || \
		{ echo "ledger-smoke FAILED: self-compare did not gate clean"; exit 1; }; \
	rm -rf $$dir && echo "ledger-smoke ok"

# Self-profiling end to end: a ledgered sweep must record per-task CPU
# time (cpu_ms on every fresh task record), print the one-line resource
# summary on stderr, gate clean against itself under -gate-cpu, and the
# dashboard's runtime-health strip tests must pass.
selfprof-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/mgreport -exp fig1 -only comm.crc32 -input small \
		-plots=false -ledger $$dir/led -ledger-rev ci >/dev/null 2>$$dir/err && \
	grep -q '"cpu_ms":' $$dir/led/ledger.jsonl || \
		{ echo "selfprof-smoke FAILED: no cpu_ms in ledger records"; exit 1; }; \
	grep -q 'resources: wall' $$dir/err || \
		{ echo "selfprof-smoke FAILED: no resource summary on stderr"; cat $$dir/err; exit 1; }; \
	$(GO) run ./cmd/mgstat -ledger $$dir/led -compare ci,ci -gate-cpu 5 >/dev/null || \
		{ echo "selfprof-smoke FAILED: self-compare did not gate clean under -gate-cpu"; exit 1; }; \
	$(GO) test -run 'TestDashHealthStrip|TestDashEmptyLedger|TestDashSingleRecord' -count=1 ./internal/ledger >/dev/null && \
	$(GO) test -run 'TestWatchdog' -count=1 ./internal/core >/dev/null && \
	rm -rf $$dir && echo "selfprof-smoke ok"

# Sampling accuracy gate: the representative-interval estimator must
# simulate >=5x fewer instructions in detail than the full run while landing
# within 1% geomean IPC error on the pinned small-input workload set
# (internal/pipeline/sampling_accuracy_test.go). This is ISSUE 9's
# acceptance bar; loosening the thresholds needs a written justification.
sampling-accuracy:
	$(GO) test -run 'TestSamplingAccuracyGate' -count=1 ./internal/pipeline
	@echo "sampling-accuracy ok"

bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .

# benchjson: machine-readable microbenchmark baseline for the hot paths the
# attribution engine leans on (pipeline simulation, the walk itself). The
# revision and date come from the environment — no clock reads in tool code.
# The fresh numbers are diffed against the previous PR's committed baseline;
# a >15% ns/op regression or a >25% allocs/op growth on any shared benchmark
# fails the target. Each benchmark runs three times and benchjson keeps the
# fastest, damping scheduler noise. Documents carry a host fingerprint:
# benchjson warns when the baseline came from a different machine (those
# deltas measure the hardware as much as the code); pass -strict-host to
# make that a failure (see README "Performance").
benchjson:
	$(GO) test -run NONE -bench 'BenchmarkSimulator|BenchmarkAnalyze|BenchmarkIndex|BenchmarkRunSampled|BenchmarkHealth' -benchtime 5x -count 3 -benchmem \
		./internal/pipeline ./internal/critpath ./internal/obs ./internal/metrics | \
	$(GO) run ./cmd/benchjson -rev "$$(git rev-parse --short HEAD)" \
		-date "$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		-baseline BENCH_PR9.json > BENCH_PR10.json
	@echo "wrote BENCH_PR10.json"

# profile: CPU and allocation pprof profiles of the mini-graph simulator
# benchmark, written to the (gitignored) profiles/ directory. Inspect with
# `go tool pprof profiles/minigraphs.cpu.pb.gz` (top, list <fn>, web).
profile:
	@mkdir -p profiles
	$(GO) test -run NONE -bench BenchmarkSimulatorMiniGraphs -benchtime 100x -benchmem \
		-cpuprofile profiles/minigraphs.cpu.pb.gz \
		-memprofile profiles/minigraphs.mem.pb.gz \
		-o profiles/pipeline.test ./internal/pipeline
	@echo "wrote profiles/minigraphs.{cpu,mem}.pb.gz"

report:
	$(GO) run ./cmd/mgreport -exp all
