GO ?= go

.PHONY: ci vet fmt build test race obs-smoke bench report

## ci: the pre-merge check — vet, gofmt, build, full tests, race-enabled
## cache and pipeline tests, and an end-to-end observability smoke test.
## Documented in README.md; run before every merge.
ci: vet fmt build test race obs-smoke

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail (and show them) if any.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The cache layer and the pipeline's recycling are the concurrency-  and
# aliasing-sensitive parts; run their tests under the race detector.
race:
	$(GO) test -race ./internal/core ./internal/simcache ./internal/pipeline

# End-to-end observability: one observed run, then render + summarize the
# files it produced.
obs-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/mgsim -workload comm.crc32 -input small -config reduced \
		-selector Slack-Dynamic -pipetrace -intervals 500 -tracedir $$dir >/dev/null && \
	$(GO) run ./cmd/mgtrace -trace $$dir/comm.crc32_small_reduced-3way_Slack-Dynamic.pipetrace.jsonl \
		-count 16 >/dev/null && \
	$(GO) run ./cmd/mgtrace -summary $$dir/comm.crc32_small_reduced-3way_Slack-Dynamic.intervals.jsonl \
		>/dev/null && \
	rm -rf $$dir && echo "obs-smoke ok"

bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .

report:
	$(GO) run ./cmd/mgreport -exp all
