// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation. Each benchmark runs the corresponding
// experiment sweep and reports the headline numbers the paper reports as
// benchmark metrics (relative performance and coverage means), so
// `go test -bench=. -benchmem` reproduces the evaluation end to end.
//
// The sweeps use the "small" input set to keep benchmark iterations
// tractable; `cmd/mgreport` runs the same experiments on the "large" set.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// benchOpts are the sweep options used by the figure benchmarks.
func benchOpts() core.Options {
	return core.Options{Input: "small"}
}

// reportSeries attaches a sweep's per-series means as benchmark metrics.
func reportSeries(b *testing.B, res *core.SweepResult, metric map[string]string) {
	for label, name := range metric {
		s := res.Perf.Get(label)
		if s == nil {
			b.Fatalf("missing series %q", label)
		}
		b.ReportMetric(s.Mean(), name+"_relperf")
		if c := res.Coverage.Get(label); c != nil && c.Mean() > 0 {
			b.ReportMetric(c.Mean(), name+"_coverage")
		}
	}
}

// BenchmarkTable1Configs times the two Table 1 machines on one
// representative workload and reports the reduced machine's slowdown.
func BenchmarkTable1Configs(b *testing.B) {
	b.ReportAllocs()
	bench, err := core.PrepareByName("media.dct8", "small")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		full, err := bench.RunSingleton(pipeline.Baseline())
		if err != nil {
			b.Fatal(err)
		}
		red, err := bench.RunSingleton(pipeline.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(full.Cycles)/float64(red.Cycles), "reduced_relperf")
		b.ReportMetric(full.IPC(), "baseline_IPC")
	}
}

// BenchmarkFig1SlackProfile regenerates Figure 1: Slack-Profile vs the two
// naive selectors on the reduced machine over all 78 programs.
func BenchmarkFig1SlackProfile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Fig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, res, map[string]string{
			"no mini-graphs": "nomg",
			"Struct-All":     "structall",
			"Struct-None":    "structnone",
			"Slack-Profile":  "slackprofile",
		})
	}
}

// BenchmarkFig3NaiveSelectors regenerates Figure 3 (both graphs).
func BenchmarkFig3NaiveSelectors(b *testing.B) {
	b.ReportAllocs()
	b.Run("top_reduced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Fig3Top(benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			reportSeries(b, res, map[string]string{
				"no mini-graphs": "nomg",
				"Struct-All":     "structall",
				"Struct-None":    "structnone",
			})
		}
	})
	b.Run("bottom_full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Fig3Bottom(benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			reportSeries(b, res, map[string]string{
				"Struct-All":  "structall",
				"Struct-None": "structnone",
			})
		}
	})
}

// BenchmarkFig6AllSelectors regenerates Figure 6 (top and middle graphs
// plus the coverage panel, reported as metrics).
func BenchmarkFig6AllSelectors(b *testing.B) {
	b.ReportAllocs()
	metrics := map[string]string{
		"no mini-graphs": "nomg",
		"Struct-All":     "structall",
		"Struct-None":    "structnone",
		"Struct-Bounded": "structbounded",
		"Slack-Profile":  "slackprofile",
		"Slack-Dynamic":  "slackdynamic",
	}
	b.Run("top_reduced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Fig6Top(benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			reportSeries(b, res, metrics)
		}
	})
	b.Run("middle_full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Fig6Middle(benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			reportSeries(b, res, metrics)
		}
	})
}

// BenchmarkFig7SlackProfileBreakdown regenerates Figure 7 (top).
func BenchmarkFig7SlackProfileBreakdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Fig7Top(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, res, map[string]string{
			"Slack-Profile":       "full",
			"Slack-Profile-Delay": "delay",
			"Slack-Profile-SIAL":  "sial",
		})
	}
}

// BenchmarkFig7SlackDynamicBreakdown regenerates Figure 7 (bottom).
func BenchmarkFig7SlackDynamicBreakdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Fig7Bottom(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, res, map[string]string{
			"Slack-Dynamic":             "dynamic",
			"Ideal-Slack-Dynamic":       "ideal",
			"Ideal-Slack-Dynamic-Delay": "ideal_delay",
			"Ideal-Slack-Dynamic-SIAL":  "ideal_sial",
		})
	}
}

// BenchmarkFig8LimitStudy regenerates Figure 8: the exhaustive
// 1024-combination search on the adpcm benchmark.
func BenchmarkFig8LimitStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lr, err := core.LimitStudy("media.adpcm_enc", "small", 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lr.Best.RelPerf, "best_relperf")
		b.ReportMetric(lr.Best.Coverage, "best_coverage")
		b.ReportMetric(lr.Points[lr.Choices["Slack-Profile"]].RelPerf, "slackprofile_relperf")
		b.ReportMetric(lr.Points[lr.Choices["Struct-All"]].RelPerf, "structall_relperf")
	}
}

// BenchmarkFig9CrossConfig regenerates Figure 9 (top): profile robustness
// to machine configuration.
func BenchmarkFig9CrossConfig(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Fig9Top(core.Options{Input: "small"})
		if err != nil {
			b.Fatal(err)
		}
		self := res.Perf.Get("self-trained")
		for _, label := range []string{"cross 2-way", "cross 8-way", "cross dmem/4"} {
			cross := res.Perf.Get(label)
			b.ReportMetric(cross.Mean()/self.Mean(), map[string]string{
				"cross 2-way": "cross2_ratio", "cross 8-way": "cross8_ratio", "cross dmem/4": "crossdmem_ratio",
			}[label])
		}
	}
}

// BenchmarkFig9CrossInput regenerates Figure 9 (bottom): profile
// robustness to input data sets (selection trained on "small", evaluated
// on "large").
func BenchmarkFig9CrossInput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Fig9Bottom(core.Options{Input: "large"})
		if err != nil {
			b.Fatal(err)
		}
		self := res.Perf.Get("self-trained")
		cross := res.Perf.Get("cross-input")
		b.ReportMetric(cross.Mean()/self.Mean(), "crossinput_ratio")
	}
}

// BenchmarkAblations runs the design-choice ablations called out in
// DESIGN.md: mini-graph size limit, input-count limit (the MICRO-04 vs
// MICRO-06 interface), MGT template budget, mini-graph issue bandwidth,
// and the rule-#2 latency model.
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	cases := []struct {
		name   string
		fn     func(core.Options) (*core.SweepResult, error)
		labels map[string]string
	}{
		{"MaxLen", core.AblationMaxLen,
			map[string]string{"maxlen=2": "len2", "maxlen=4": "len4"}},
		{"MaxInputs", core.AblationMaxInputs,
			map[string]string{"2 inputs (MICRO-04)": "in2", "3 inputs (this paper)": "in3"}},
		{"Budget", core.AblationBudget,
			map[string]string{"budget=4": "b4", "budget=512": "b512"}},
		{"MGIssue", core.AblationMGIssue,
			map[string]string{"1 MG/cycle": "mg1", "2 MG/cycle (Table 1)": "mg2"}},
		{"LatencyModel", core.AblationLatencyModel,
			map[string]string{"optimistic (paper)": "optimistic", "profiled (future work)": "profiled"}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := c.fn(benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				reportSeries(b, res, c.labels)
			}
		})
	}
}
