// Command mgasm is the assembler/disassembler/runner for the toy ISA: it
// lets you write your own programs, aggregate them into mini-graphs, and
// time them on the simulated machines.
//
// Usage:
//
//	mgasm prog.s                     # assemble + functional run
//	mgasm -o prog.mgb prog.s         # assemble to a binary program file
//	mgasm -d prog.mgb                # disassemble a binary
//	mgasm -time -config reduced -selector Slack-Profile prog.s
//
// Assembly syntax is documented on prog.Assemble; see examples in the
// repository's test files.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/selector"
	"repro/internal/slack"
)

func main() {
	var (
		out      = flag.String("o", "", "write binary program to this file")
		disasm   = flag.Bool("d", false, "disassemble a binary program")
		timeIt   = flag.Bool("time", false, "run the timing simulator")
		cfgName  = flag.String("config", "baseline", "machine: baseline or reduced")
		selName  = flag.String("selector", "none", "mini-graph policy (none, Struct-All, Struct-None, Struct-Bounded, Slack-Profile)")
		maxInstr = flag.Int64("max", 16<<20, "dynamic instruction bound")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "mgasm: exactly one input file required")
		os.Exit(2)
	}
	path := flag.Arg(0)

	p, err := loadProgram(path, *disasm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgasm:", err)
		os.Exit(1)
	}

	if *disasm {
		fmt.Print(p)
		return
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgasm:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := p.WriteBinary(f); err != nil {
			fmt.Fprintln(os.Stderr, "mgasm:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d instructions, %d data bytes\n", *out, p.NumInstrs(), len(p.Data))
		return
	}

	res, err := emu.Run(p, emu.Options{MaxInstrs: *maxInstr, CollectTrace: *timeIt})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgasm:", err)
		os.Exit(1)
	}
	fmt.Printf("ran %d instructions, checksum (rv) = %d (%#x)\n",
		res.DynInstrs, res.Checksum(), res.Checksum())

	if !*timeIt {
		return
	}
	cfg := pipeline.Baseline()
	if *cfgName == "reduced" {
		cfg = pipeline.Reduced()
	}
	mg := pipeline.MGConfig{}
	if *selName != "none" {
		sel, err := policy(*selName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgasm:", err)
			os.Exit(1)
		}
		var prof *slack.Profile
		if sel.NeedsProfile() {
			acc := slack.NewAccumulator(p.Name, p.NumInstrs())
			if _, err := pipeline.Run(p, res.Trace, cfg, pipeline.MGConfig{}, acc); err != nil {
				fmt.Fprintln(os.Stderr, "mgasm:", err)
				os.Exit(1)
			}
			prof = acc.Profile()
		}
		freq := make([]int64, p.NumInstrs())
		for _, r := range res.Trace {
			freq[r.Index]++
		}
		pool := sel.Pool(p, minigraph.Enumerate(p, minigraph.DefaultLimits()), prof)
		chosen := minigraph.Select(p, pool, freq, minigraph.DefaultSelectConfig())
		mg.Selection = chosen
		fmt.Printf("%s selected %d mini-graphs (%.1f%% coverage)\n",
			sel.Name(), len(chosen.Instances), 100*chosen.Coverage())
	}
	st, err := pipeline.Run(p, res.Trace, cfg, mg, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgasm:", err)
		os.Exit(1)
	}
	fmt.Printf("on %s:\n%s", cfg.Name, st)
}

func loadProgram(path string, binary bool) (*prog.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if binary || strings.HasSuffix(path, ".mgb") {
		return prog.ReadBinary(f)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(path[strings.LastIndex(path, "/")+1:], ".s")
	return prog.Assemble(name, string(src))
}

func policy(name string) (*selector.Selector, error) {
	switch name {
	case "Struct-All":
		return selector.StructAll(), nil
	case "Struct-None":
		return selector.StructNone(), nil
	case "Struct-Bounded":
		return selector.StructBounded(), nil
	case "Slack-Profile":
		return selector.SlackProfile(), nil
	}
	return nil, fmt.Errorf("unknown selector %q", name)
}
