// Command mgsim runs one workload through the cycle-level simulator on a
// chosen machine configuration and mini-graph selection policy, printing
// IPC and pipeline statistics.
//
// Usage:
//
//	mgsim -workload comm.crc32 [-input large] [-config reduced] [-selector Slack-Profile] [-v]
//
// With -selector none (the default), the run is a pure singleton execution.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/selector"
	"repro/internal/workload"
)

func configByName(name string) (pipeline.Config, error) {
	switch name {
	case "baseline", "full", "4way":
		return pipeline.Baseline(), nil
	case "reduced", "3way":
		return pipeline.Reduced(), nil
	case "2way":
		return pipeline.Width2(), nil
	case "8way":
		return pipeline.Width8(), nil
	case "dmem4":
		return pipeline.SmallDMem(), nil
	}
	return pipeline.Config{}, fmt.Errorf("unknown config %q (baseline, reduced, 2way, 8way, dmem4)", name)
}

func selectorByName(name string) (*selector.Selector, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "Struct-All":
		return selector.StructAll(), nil
	case "Struct-None":
		return selector.StructNone(), nil
	case "Struct-Bounded":
		return selector.StructBounded(), nil
	case "Slack-Profile":
		return selector.SlackProfile(), nil
	case "Slack-Profile-Delay":
		return selector.SlackProfileDelay(), nil
	case "Slack-Profile-SIAL":
		return selector.SlackProfileSIAL(), nil
	case "Slack-Dynamic":
		return selector.SlackDynamic(), nil
	case "Ideal-Slack-Dynamic":
		return selector.IdealSlackDynamic(), nil
	}
	return nil, fmt.Errorf("unknown selector %q", name)
}

func main() {
	var (
		wName   = flag.String("workload", "", "workload name (see -list)")
		input   = flag.String("input", "large", "input set: small or large")
		cfgName = flag.String("config", "baseline", "machine: baseline, reduced, 2way, 8way, dmem4")
		selName = flag.String("selector", "none", "selection policy (or none)")
		list    = flag.Bool("list", false, "list workloads and exit")
		verbose = flag.Bool("v", false, "print the mini-graph selection")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-18s %s\n", w.Name, w.Suite)
		}
		return
	}
	if *wName == "" {
		fmt.Fprintln(os.Stderr, "mgsim: -workload required (use -list to see names)")
		os.Exit(2)
	}
	cfg, err := configByName(*cfgName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgsim:", err)
		os.Exit(2)
	}
	sel, err := selectorByName(*selName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgsim:", err)
		os.Exit(2)
	}

	bench, err := core.PrepareByName(*wName, *input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgsim:", err)
		os.Exit(1)
	}

	var st *pipeline.Stats
	if sel == nil {
		st, err = bench.RunSingleton(cfg)
	} else {
		var chosen interface{ Coverage() float64 }
		st, chosen, err = bench.Evaluate(sel, cfg, cfg)
		if err == nil && *verbose {
			fmt.Printf("selection coverage (static estimate): %.1f%%\n", 100*chosen.Coverage())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s input=%s config=%s selector=%s\n", *wName, *input, cfg.Name, *selName)
	fmt.Print(st)
}
