// Command mgsim runs one workload through the cycle-level simulator on a
// chosen machine configuration and mini-graph selection policy, printing
// IPC and pipeline statistics.
//
// Usage:
//
//	mgsim -workload comm.crc32 [-input large] [-config reduced] [-selector Slack-Profile] [-v]
//
// With -selector none (the default), the run is a pure singleton execution.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/selector"
	"repro/internal/slack"
	"repro/internal/workload"
)

func configByName(name string) (pipeline.Config, error) {
	switch name {
	case "baseline", "full", "4way":
		return pipeline.Baseline(), nil
	case "reduced", "3way":
		return pipeline.Reduced(), nil
	case "2way":
		return pipeline.Width2(), nil
	case "8way":
		return pipeline.Width8(), nil
	case "dmem4":
		return pipeline.SmallDMem(), nil
	}
	return pipeline.Config{}, fmt.Errorf("unknown config %q (baseline, reduced, 2way, 8way, dmem4)", name)
}

func selectorByName(name string) (*selector.Selector, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "Struct-All":
		return selector.StructAll(), nil
	case "Struct-None":
		return selector.StructNone(), nil
	case "Struct-Bounded":
		return selector.StructBounded(), nil
	case "Slack-Profile":
		return selector.SlackProfile(), nil
	case "Slack-Profile-Delay":
		return selector.SlackProfileDelay(), nil
	case "Slack-Profile-SIAL":
		return selector.SlackProfileSIAL(), nil
	case "Slack-Dynamic":
		return selector.SlackDynamic(), nil
	case "Ideal-Slack-Dynamic":
		return selector.IdealSlackDynamic(), nil
	}
	return nil, fmt.Errorf("unknown selector %q", name)
}

func main() {
	var (
		wName     = flag.String("workload", "", "workload name (see -list)")
		input     = flag.String("input", "large", "input set: small or large")
		cfgName   = flag.String("config", "baseline", "machine: baseline, reduced, 2way, 8way, dmem4")
		selName   = flag.String("selector", "none", "selection policy (or none)")
		list      = flag.Bool("list", false, "list workloads and exit")
		verbose   = flag.Bool("v", false, "print the mini-graph selection and structured telemetry")
		pipetrace = flag.Bool("pipetrace", false, "write a per-uop pipetrace JSONL of the run")
		ptraceBin = flag.Bool("pipetrace-bin", false, "write the pipetrace in the compact binary encoding (with a .mgidx seek index) instead of JSONL")
		intervals = flag.Int64("intervals", 0, "sample interval metrics every N cycles (0 = off)")
		tracedir  = flag.String("tracedir", "", "observability output directory (default \"obs\")")
		httpaddr  = flag.String("httpaddr", "", "serve expvar, pprof, /metrics and /debug/sweep on this address during the run")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace (and FILE.spans.jsonl) of the run's spans to FILE")
		refsched  = flag.Bool("refsched", false, "use the reference per-cycle scan scheduler instead of the event-driven one")
		ledgerDir = flag.String("ledger", "", "append a run record to the persistent ledger in this directory")
		ledgerRev = flag.String("ledger-rev", "", "revision label for ledger records (default: MG_REV or the binary's vcs revision)")
	)
	resolveSample := core.SampleFlags()
	flag.Parse()
	runStart := time.Now()
	sample, err := resolveSample()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgsim:", err)
		os.Exit(2)
	}
	if sample != nil && (*pipetrace || *ptraceBin || *intervals > 0) {
		fmt.Fprintln(os.Stderr, "mgsim: sampled fidelity and observability are mutually exclusive (pipetraces need the real full run)")
		os.Exit(2)
	}
	if sample != nil {
		// One workload, independent windows: let them fill the machine.
		sample.Workers = runtime.GOMAXPROCS(0)
	}
	if *refsched {
		pipeline.SetDefaultScheduler(pipeline.SchedScan)
	}
	if *ledgerDir != "" {
		led, err := ledger.Open(*ledgerDir, *ledgerRev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgsim:", err)
			os.Exit(1)
		}
		defer led.Close()
		core.SetLedger(led)
	}

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-18s %s\n", w.Name, w.Suite)
		}
		return
	}
	if *wName == "" {
		fmt.Fprintln(os.Stderr, "mgsim: -workload required (use -list to see names)")
		os.Exit(2)
	}
	cfg, err := configByName(*cfgName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgsim:", err)
		os.Exit(2)
	}
	sel, err := selectorByName(*selName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgsim:", err)
		os.Exit(2)
	}
	if *verbose {
		core.SetTelemetry(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	if *httpaddr != "" {
		core.PublishExpvars()
		core.EnableMetrics()
		addr, err := obs.ServeDebug(*httpaddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s — /debug/vars /debug/pprof/ /metrics /debug/sweep\n", addr)
		metrics.StartHealth(0)
	}
	var tracer *metrics.Tracer
	if *traceOut != "" {
		core.EnableMetrics()
		tracer = metrics.NewTracer()
		metrics.InstallTracer(tracer)
		metrics.SetTraceOut(*traceOut)
		metrics.SetCPUAccounting(true)
	}

	ctx, runSpan := metrics.StartSpan(context.Background(), "mgsim.run",
		metrics.L("workload", *wName), metrics.L("config", *cfgName), metrics.L("selector", *selName))
	_, psp := metrics.StartSpan(ctx, "prepare",
		metrics.L("workload", *wName), metrics.L("input", *input))
	bench, err := core.PrepareByName(*wName, *input)
	psp.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgsim:", err)
		os.Exit(1)
	}

	t0 := time.Now()
	// Whole-process deltas, not per-thread: sampled runs fan out across
	// GOMAXPROCS goroutines, so thread-local rusage would undercount.
	cpu0 := metrics.ProcessCPUNanos()
	gc0 := metrics.GCCycleCount()
	var watch *obs.Observer
	if o := obs.FlagOptions(*pipetrace, *ptraceBin, *intervals, *tracedir); o.Active() {
		base := fmt.Sprintf("%s_%s_%s_%s", *wName, *input, cfg.Name, *selName)
		if watch, err = obs.NewRunObserver(o, base); err != nil {
			fmt.Fprintln(os.Stderr, "mgsim:", err)
			os.Exit(1)
		}
	}

	var st *pipeline.Stats
	var srep pipeline.SampleReport
	if sel == nil {
		_, ssp := metrics.StartSpan(ctx, "simulate", metrics.L("config", cfg.Name))
		switch {
		case sample != nil:
			st, srep, err = bench.RunSampledReport(cfg, nil, nil, *sample)
		case watch != nil:
			st, err = bench.RunSingletonObserved(cfg, watch)
		default:
			st, err = bench.RunSingleton(cfg)
		}
		ssp.End()
	} else {
		var prof *slack.Profile
		if sel.NeedsProfile() {
			pctx, prsp := metrics.StartSpan(ctx, "profile", metrics.L("config", cfg.Name))
			prof, err = bench.ProfileCtx(pctx, cfg)
			prsp.End()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mgsim:", err)
				os.Exit(1)
			}
		}
		_, sesp := metrics.StartSpan(ctx, "select", metrics.L("policy", sel.Name()))
		chosen := bench.Select(sel, prof)
		sesp.End()
		if *verbose {
			fmt.Printf("selection coverage (static estimate): %.1f%%\n", 100*chosen.Coverage())
		}
		_, ssp := metrics.StartSpan(ctx, "simulate",
			metrics.L("config", cfg.Name), metrics.L("policy", sel.Name()))
		switch {
		case sample != nil:
			// Profiling and selection above ran exactly; only the timing run
			// is estimated.
			st, srep, err = bench.RunSampledReport(cfg, sel, chosen, *sample)
		case watch != nil:
			st, err = bench.RunObserved(cfg, sel, chosen, watch)
		default:
			st, err = bench.Run(cfg, sel, chosen)
		}
		ssp.End()
	}
	runSpan.End()
	if tracer != nil {
		if jsonl, terr := metrics.WriteTraceFiles(*traceOut, tracer); terr != nil {
			fmt.Fprintln(os.Stderr, "mgsim:", terr)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "trace: %s (Chrome/Perfetto), %s (JSONL)\n", *traceOut, jsonl)
		}
	}
	if watch != nil {
		if cerr := watch.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgsim:", err)
		os.Exit(1)
	}
	if led := core.RunLedger(); led != nil {
		cache := "run"
		if watch != nil {
			cache = "traced"
		}
		rec := ledger.Record{
			Tool: "mgsim", Workload: *wName, Series: cfg.Name + "/" + *selName, Input: *input,
			Key:      core.TaskKey(bench, sel, cfg, "", cfg, sample).Short(),
			Cache:    cache,
			WallMS:   float64(time.Since(t0)) / float64(time.Millisecond),
			CPUMS:    float64(metrics.ProcessCPUNanos()-cpu0) / 1e6,
			MaxRSSKB: metrics.MaxRSSKB(),
			GCCycles: metrics.GCCycleCount() - gc0,
			Cycles:   st.Cycles, Instrs: st.Instrs, Uops: st.Uops,
			IPC: st.IPC(), UPC: st.UPC(), Coverage: st.Coverage(),
		}
		if sample != nil {
			rec.Estimate, rec.Sample = true, sample.Summary()
		}
		if aerr := led.Append(rec); aerr != nil {
			fmt.Fprintln(os.Stderr, "mgsim: ledger:", aerr)
		}
	}
	if watch != nil {
		fmt.Fprintf(os.Stderr, "observability files: %v\n", watch.Files())
		if ix := watch.IndexInfo(); ix != nil {
			fmt.Fprintf(os.Stderr, "trace index: %s — %d records, commit cycles %d..%d (query with mgtrace -window)\n",
				ix.File, ix.Records, ix.MinCycle, ix.MaxCycle)
		}
	}

	fmt.Printf("workload=%s input=%s config=%s selector=%s\n", *wName, *input, cfg.Name, *selName)
	if sample != nil {
		fmt.Println(core.SampleBanner(*sample, srep))
	}
	fmt.Print(st)
	fmt.Fprintln(os.Stderr, metrics.FormatResources(time.Since(runStart)))
}
