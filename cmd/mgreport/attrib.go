package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/critpath"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/selector"
)

// slackTolerance is the predicted-vs-observed agreement window in cycles.
// The profiler predicts per-static averages while the walk observes one
// run's mean, so exact agreement is not expected; a few cycles is "the
// profile would have steered the selector the same way".
const slackTolerance = 4.0

// selectorByName finds a selection policy by its paper name.
func selectorByName(name string) (*selector.Selector, error) {
	for _, s := range selector.Main() {
		if s.Name() == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range selector.Main() {
		names = append(names, s.Name())
	}
	return nil, fmt.Errorf("unknown selector %q (want one of %v)", name, names)
}

// attrib runs the cycle-loss attribution engine end-to-end for one
// workload: prepare, profile, select under the policy, simulate with a
// pipetrace attached, walk the critical path, and cross-check the static
// slack profile against the observed slack. outBase, when non-empty, also
// writes <outBase>.json (full report) and <outBase>.csv (scoreboard).
func attrib(w io.Writer, workloadName, input, selName, cfgName, outBase string, top int) error {
	cfg, ok := pipeline.ConfigByName(cfgName)
	if !ok {
		return fmt.Errorf("unknown machine configuration %q (want baseline, reduced, width2, width8, or dmem4)", cfgName)
	}
	sel, err := selectorByName(selName)
	if err != nil {
		return err
	}
	bench, err := core.PrepareByName(workloadName, input)
	if err != nil {
		return err
	}
	// The profile feeds both the selector (when the policy wants one) and
	// the predicted-vs-observed comparator.
	prof, err := bench.Profile(cfg)
	if err != nil {
		return err
	}
	chosen := bench.Select(sel, prof)

	t0 := time.Now()
	var buf bytes.Buffer
	watch := &obs.Observer{Trace: obs.NewPipetrace(&buf)}
	st, err := bench.RunObserved(cfg, sel, chosen, watch)
	if err != nil {
		return err
	}
	if err := watch.Trace.Flush(); err != nil {
		return err
	}
	uops, events, err := obs.ReadPipetrace(&buf)
	if err != nil {
		return err
	}
	rep, err := critpath.Analyze(uops, events, critpath.ParamsFor(cfg))
	if err != nil {
		return err
	}
	if led := core.RunLedger(); led != nil {
		if aerr := led.Append(ledger.Record{
			Tool: "mgreport", Sweep: "attrib",
			Workload: workloadName, Series: sel.Name() + " on " + cfg.Name, Input: input,
			Key:    core.TaskKey(bench, sel, cfg, input, cfg, nil).Short(),
			Cache:  "traced",
			WallMS: float64(time.Since(t0)) / float64(time.Millisecond),
			Cycles: st.Cycles, Instrs: st.Instrs, Uops: st.Uops,
			IPC: st.IPC(), UPC: st.UPC(), Coverage: st.Coverage(),
			Critpath: rep.BucketsByName(),
		}); aerr != nil {
			fmt.Fprintln(os.Stderr, "mgreport: ledger:", aerr)
		}
	}

	name := fmt.Sprintf("%s/%s, %s on %s", workloadName, input, sel.Name(), cfg.Name)
	if err := critpath.WriteText(w, name, rep, top); err != nil {
		return err
	}
	tmplOut := make(map[int]int)
	for _, inst := range chosen.Instances {
		if inst.Cand.OutputIdx >= 0 {
			tmplOut[inst.Template] = inst.Cand.OutputIdx
		}
	}
	sum := critpath.CompareSlack(prof, rep, tmplOut, slackTolerance)
	if err := critpath.WriteCompareText(w, sum, top); err != nil {
		return err
	}

	if outBase != "" {
		f, err := os.Create(outBase + ".json")
		if err != nil {
			return err
		}
		if err := critpath.WriteJSON(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		f, err = os.Create(outBase + ".csv")
		if err != nil {
			return err
		}
		if err := critpath.WriteScoreboardCSV(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s.json and %s.csv\n", outBase, outBase)
	}
	return nil
}
