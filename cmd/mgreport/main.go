// Command mgreport regenerates the paper's tables and figures: it runs the
// corresponding experiment sweep over the workload suite and prints summary
// tables plus ASCII S-curve plots.
//
// Usage:
//
//	mgreport -exp fig6           # one experiment
//	mgreport -exp all            # everything (Table 1, Figures 1,3,6,7,8,9)
//	mgreport -exp fig8 -workload comm.gen01
//	mgreport -attrib comm.crc32 -input small
//
// Experiments: table1, fig1, fig3, fig6, fig7top, fig7bot, fig8, fig9top,
// fig9bot, sweep, ablation, all.
//
// The -attrib mode runs the cycle-loss attribution engine end-to-end for
// one workload instead of an experiment: it profiles, selects mini-graphs
// under -attribsel, simulates on -attribcfg with a pipetrace attached,
// walks the critical path (internal/critpath), and prints the cycle-loss
// breakdown, the per-template serialization scoreboard, and the
// predicted-vs-observed slack comparison against the static profiler.
// -attribout BASE additionally writes BASE.json and BASE.csv.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id")
		input      = flag.String("input", "large", "input set")
		wName      = flag.String("workload", "media.adpcm_enc", "workload for the fig8 limit study")
		workloads  = flag.String("only", "", "comma-separated workload names to restrict sweeps to")
		plots      = flag.Bool("plots", true, "render ASCII S-curve plots")
		progress   = flag.Bool("progress", false, "print per-workload progress")
		workers    = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		nocache    = flag.Bool("nocache", false, "bypass the simulation caches: re-prepare and re-simulate everything")
		cacheStats = flag.Bool("cachestats", false, "print simulation-cache counters to stderr")
		pipetrace  = flag.Bool("pipetrace", false, "write per-uop pipetrace JSONL per (workload, series)")
		ptraceBin  = flag.Bool("pipetrace-bin", false, "write pipetraces in the compact binary encoding (with a .mgidx seek index) instead of JSONL")
		intervals  = flag.Int64("intervals", 0, "sample interval metrics every N cycles (0 = off)")
		tracedir   = flag.String("tracedir", "", "observability output directory (default \"obs\")")
		verbose    = flag.Bool("v", false, "structured task telemetry on stderr")
		httpaddr   = flag.String("httpaddr", "", "serve expvar, pprof, /metrics and /debug/sweep on this address during the run")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace (and FILE.spans.jsonl) of the run's spans to FILE")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		attribW    = flag.String("attrib", "", "run cycle-loss attribution on this workload instead of an experiment")
		attribSel  = flag.String("attribsel", "Slack-Profile", "selection policy for -attrib")
		attribCfg  = flag.String("attribcfg", "reduced", "machine configuration for -attrib")
		attribOut  = flag.String("attribout", "", "base path for -attrib JSON/CSV artifacts")
		attribTop  = flag.Int("attribtop", 10, "offender/comparison rows to print in -attrib")
		refsched   = flag.Bool("refsched", false, "use the reference per-cycle scan scheduler instead of the event-driven one")
		ledgerDir  = flag.String("ledger", "", "append a run record per completed task to the persistent ledger in this directory")
		ledgerRev  = flag.String("ledger-rev", "", "revision label for ledger records (default: MG_REV or the binary's vcs revision)")
		watchdog   = flag.Bool("watchdog", false, "arm the sweep watchdog: report tasks running far past the sweep median and wedged sweeps to /debug/sweep and the -v telemetry log")
		wdSlow     = flag.Float64("watchdog-slow", 8, "with -watchdog: flag a task once it exceeds this multiple of the sweep's median task time")
		wdWedge    = flag.Duration("watchdog-wedge", 2*time.Minute, "with -watchdog: flag the sweep when no task completes for this long")
	)
	resolveSample := core.SampleFlags()
	flag.Parse()
	runStart := time.Now()
	sample, err := resolveSample()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgreport:", err)
		os.Exit(2)
	}
	if sample != nil && *attribW != "" {
		fmt.Fprintln(os.Stderr, "mgreport: -attrib needs the full-detail run (attribution walks the real pipetrace); drop the -sample-* flags")
		os.Exit(2)
	}
	if *refsched {
		pipeline.SetDefaultScheduler(pipeline.SchedScan)
	}
	if *ledgerDir != "" {
		led, err := ledger.Open(*ledgerDir, *ledgerRev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgreport:", err)
			os.Exit(1)
		}
		defer led.Close()
		core.SetLedger(led)
	}

	if *attribW != "" {
		if err := attrib(os.Stdout, *attribW, *input, *attribSel, *attribCfg, *attribOut, *attribTop); err != nil {
			fmt.Fprintln(os.Stderr, "mgreport:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, metrics.FormatResources(time.Since(runStart)))
		return
	}

	opts := core.Options{Input: *input, Workers: *workers, NoCache: *nocache,
		Obs: obs.FlagOptions(*pipetrace, *ptraceBin, *intervals, *tracedir), Sample: sample}
	if *watchdog {
		opts.Watchdog = &core.WatchdogConfig{SlowFactor: *wdSlow, Wedge: *wdWedge}
	}
	if sample != nil {
		fmt.Fprintf(os.Stderr, "sampled fidelity %s: series and relative-baseline stats are estimates; profiling and selection stay exact\n", sample.Summary())
	}
	if *workloads != "" {
		opts.Workloads = splitNames(*workloads)
	}
	if *progress {
		opts.Progress = os.Stderr
	}
	if *nocache {
		core.SetCachingDisabled(true)
	}
	if *verbose {
		core.SetTelemetry(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	if *httpaddr != "" {
		core.PublishExpvars()
		core.EnableMetrics()
		addr, err := obs.ServeDebug(*httpaddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgreport:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s — /debug/vars /debug/pprof/ /metrics /debug/sweep\n", addr)
		metrics.StartHealth(0)
	}
	var tracer *metrics.Tracer
	if *traceOut != "" {
		core.EnableMetrics()
		tracer = metrics.NewTracer()
		metrics.InstallTracer(tracer)
		metrics.SetTraceOut(*traceOut)
		metrics.SetCPUAccounting(true)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgreport:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mgreport:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	if err := run(os.Stdout, *exp, *wName, *plots, opts); err != nil {
		pprof.StopCPUProfile()
		fmt.Fprintln(os.Stderr, "mgreport:", err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %v]\n", *exp, time.Since(start).Round(time.Millisecond))
	if tracer != nil {
		jsonl, err := metrics.WriteTraceFiles(*traceOut, tracer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgreport:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %s (Chrome/Perfetto), %s (JSONL)\n", *traceOut, jsonl)
	}
	if *cacheStats {
		core.FprintCacheStats(os.Stderr)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgreport:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mgreport:", err)
			os.Exit(1)
		}
		f.Close()
	}
	fmt.Fprintln(os.Stderr, metrics.FormatResources(time.Since(runStart)))
}

// splitNames splits a comma-separated list, dropping empty entries.
func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func run(w io.Writer, exp, limitWorkload string, plots bool, opts core.Options) error {
	switch exp {
	case "table1":
		printTable1(w)
		return nil
	case "fig1":
		return sweep(w, plots, opts, core.Fig1)
	case "fig3":
		if err := sweep(w, plots, opts, core.Fig3Top); err != nil {
			return err
		}
		return sweep(w, plots, opts, core.Fig3Bottom)
	case "fig6":
		if err := sweep(w, plots, opts, core.Fig6Top); err != nil {
			return err
		}
		return sweep(w, plots, opts, core.Fig6Middle)
	case "fig7top":
		return sweep(w, plots, opts, core.Fig7Top)
	case "fig7bot":
		return sweep(w, plots, opts, core.Fig7Bottom)
	case "fig8":
		return limitStudy(w, limitWorkload, opts)
	case "fig9top":
		return sweep(w, plots, opts, core.Fig9Top)
	case "fig9bot":
		return sweep(w, plots, opts, core.Fig9Bottom)
	case "sweep":
		return sweep(w, plots, opts, core.ResourceSweep)
	case "ablation":
		for _, f := range []func(core.Options) (*core.SweepResult, error){
			core.AblationMaxLen, core.AblationMaxInputs, core.AblationBudget,
			core.AblationMGIssue, core.AblationLatencyModel, core.AblationSlackScope,
		} {
			res, err := f(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, res.Perf.SummaryTable())
			fmt.Fprintln(w, res.Coverage.SummaryTable())
		}
		return nil
	case "all":
		printTable1(w)
		for _, f := range []func(core.Options) (*core.SweepResult, error){
			core.Fig1, core.Fig3Top, core.Fig3Bottom, core.Fig6Top, core.Fig6Middle,
			core.Fig7Top, core.Fig7Bottom,
		} {
			if err := sweep(w, plots, opts, f); err != nil {
				return err
			}
		}
		if err := limitStudy(w, limitWorkload, opts); err != nil {
			return err
		}
		fig9Opts := core.Options{Input: opts.Input, Progress: opts.Progress,
			Workloads: opts.Workloads, Obs: opts.Obs}
		if err := sweep(w, plots, fig9Opts, core.Fig9Top); err != nil {
			return err
		}
		return sweep(w, plots, fig9Opts, core.Fig9Bottom)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func sweep(w io.Writer, plots bool, opts core.Options, f func(core.Options) (*core.SweepResult, error)) error {
	res, err := f(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Perf.SummaryTable())
	if plots {
		fmt.Fprintln(w, res.Perf.SCurvePlot(78, 16, 0.5, 1.6))
	}
	fmt.Fprintln(w, res.Coverage.SummaryTable())
	return nil
}

func limitStudy(w io.Writer, workloadName string, opts core.Options) error {
	input := opts.Input
	if input == "" || input == "large" {
		input = "small" // the paper uses a short-running benchmark
	}
	lr, err := core.LimitStudy(workloadName, input, opts.Workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 8: limit study on %s (%s input): all %d combinations of %d mini-graphs\n",
		lr.Workload, input, len(lr.Points), len(lr.Candidates))
	fmt.Fprintf(w, "%-18s %12s %10s %8s\n", "set", "mask", "coverage", "perf")
	fmt.Fprintf(w, "%-18s %12b %10.3f %8.3f\n", "exhaustive-best", lr.Best.Mask, lr.Best.Coverage, lr.Best.RelPerf)
	for _, name := range []string{"Struct-All", "Struct-None", "Struct-Bounded", "Slack-Profile"} {
		mask := lr.Choices[name]
		pt := lr.Points[mask]
		fmt.Fprintf(w, "%-18s %12b %10.3f %8.3f\n", name, mask, pt.Coverage, pt.RelPerf)
	}
	// Scatter rendered as a coarse text heat map: coverage (x) vs perf (y).
	fmt.Fprintln(w, "\nscatter (x=coverage, y=relative performance, *=combinations):")
	const W, H = 64, 16
	var grid [H][W]byte
	for i := range grid {
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	minP, maxP := lr.Points[0].RelPerf, lr.Points[0].RelPerf
	maxC := 0.0
	for _, pt := range lr.Points {
		if pt.RelPerf < minP {
			minP = pt.RelPerf
		}
		if pt.RelPerf > maxP {
			maxP = pt.RelPerf
		}
		if pt.Coverage > maxC {
			maxC = pt.Coverage
		}
	}
	if maxP == minP {
		maxP = minP + 1e-9
	}
	if maxC == 0 {
		maxC = 1e-9
	}
	for _, pt := range lr.Points {
		x := int(pt.Coverage / maxC * (W - 1))
		y := int((pt.RelPerf - minP) / (maxP - minP) * (H - 1))
		grid[H-1-y][x] = '*'
	}
	mark := func(mask uint32, c byte) {
		pt := lr.Points[mask]
		x := int(pt.Coverage / maxC * (W - 1))
		y := int((pt.RelPerf - minP) / (maxP - minP) * (H - 1))
		grid[H-1-y][x] = c
	}
	mark(lr.Choices["Struct-All"], 'A')
	mark(lr.Choices["Struct-None"], 'N')
	mark(lr.Choices["Struct-Bounded"], 'B')
	mark(lr.Choices["Slack-Profile"], 'P')
	mark(lr.Best.Mask, 'X')
	for i := 0; i < H; i++ {
		yVal := maxP - float64(i)*(maxP-minP)/float64(H-1)
		fmt.Fprintf(w, "%6.3f |%s|\n", yVal, string(grid[i][:]))
	}
	fmt.Fprintf(w, "        coverage 0 .. %.2f   A=Struct-All N=Struct-None B=Struct-Bounded P=Slack-Profile X=best\n\n", maxC)
	return nil
}

func printTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: simulated processors")
	for _, cfg := range []pipeline.Config{pipeline.Baseline(), pipeline.Reduced()} {
		fmt.Fprintf(w, "\n%s:\n", cfg.Name)
		fmt.Fprintf(w, "  %d-way fetch/issue/commit, %d-entry issue queue, %d physical registers\n",
			cfg.FetchWidth, cfg.IQEntries, cfg.PhysRegs)
		fmt.Fprintf(w, "  %d-entry ROB, %d-entry load queue, %d-entry store queue\n",
			cfg.ROBEntries, cfg.LQEntries, cfg.SQEntries)
		fmt.Fprintf(w, "  issue ports: %d simple int, %d complex, %d load, %d store\n",
			cfg.SimplePorts, cfg.ComplexPorts, cfg.LoadPorts, cfg.StorePorts)
		fmt.Fprintf(w, "  mini-graphs: <=4 instrs, <=%d per cycle (<=%d with memory), 512-entry MGT\n",
			cfg.MaxMGIssue, cfg.MaxMemMGIssue)
		h := cfg.Hier
		fmt.Fprintf(w, "  memory: %dKB/%d-way/%dc L1s, %dKB L1D, %dMB/%d-way/%dc L2, %dc memory\n",
			h.L1I.Size>>10, h.L1I.Assoc, h.L1I.Latency, h.L1D.Size>>10,
			h.L2.Size>>20, h.L2.Assoc, h.L2.Latency, h.MemLatency)
		fmt.Fprintf(w, "  branch prediction: hybrid bimodal/gshare (24Kb), 2K-entry 4-way BTB, 32-entry RAS\n")
	}
	fmt.Fprintln(w)
}
