// Command mgstat prints a characterization table for the workload suite —
// the "benchmark description" table of a paper: size, instruction mix,
// branch behaviour, baseline IPC, and mini-graph candidate structure.
//
// Usage:
//
//	mgstat                    # all 78 workloads
//	mgstat -suite comm        # one suite
//	mgstat -input small
//
// With -ledger DIR it instead queries the persistent run history recorded
// by mgreport/mgsim/mgselect -ledger runs:
//
//	mgstat -ledger runs                       # per-run summary
//	mgstat -ledger runs -history              # every record
//	mgstat -ledger runs -compare revA,revB    # per-point delta table
//	mgstat -ledger runs -compare revA,revB -gate 5   # exit 1 on >5% IPC drops
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/selector"
	"repro/internal/workload"
)

type row struct {
	name              string
	static            int
	dyn               int64
	loadPct, storePct float64
	branchPct         float64
	mispredictRate    float64
	ipc               float64
	candidates        int
	serializingPct    float64
	structAllCoverage float64
}

func characterize(w *workload.Workload, input string) (row, error) {
	bench, err := core.Prepare(w, input)
	if err != nil {
		return row{}, err
	}
	r := row{
		name:       w.Name,
		static:     bench.Prog.NumInstrs(),
		dyn:        int64(len(bench.Trace)),
		candidates: len(bench.Cands),
	}
	var loads, stores, branches int64
	for _, rec := range bench.Trace {
		in := bench.Prog.Code[rec.Index]
		switch {
		case in.IsLoad():
			loads++
		case in.IsStore():
			stores++
		case in.IsBranch():
			branches++
		}
	}
	r.loadPct = 100 * float64(loads) / float64(r.dyn)
	r.storePct = 100 * float64(stores) / float64(r.dyn)
	r.branchPct = 100 * float64(branches) / float64(r.dyn)

	ser := 0
	for _, c := range bench.Cands {
		if c.Serializing() {
			ser++
		}
	}
	if len(bench.Cands) > 0 {
		r.serializingPct = 100 * float64(ser) / float64(len(bench.Cands))
	}

	st, err := bench.RunSingleton(pipeline.Baseline())
	if err != nil {
		return row{}, err
	}
	r.ipc = st.IPC()
	if branches > 0 {
		r.mispredictRate = 100 * float64(st.BranchMispredicts) / float64(branches)
	}
	sel := bench.Select(selector.StructAll(), nil)
	r.structAllCoverage = 100 * sel.Coverage()
	return r, nil
}

func main() {
	var (
		suite     = flag.String("suite", "", "restrict to one suite (comm, embed, intx, media)")
		input     = flag.String("input", "large", "input set")
		ledgerDir = flag.String("ledger", "", "query the run-history ledger in this directory instead of characterizing workloads")
		history   = flag.Bool("history", false, "with -ledger: list every recorded run record")
		compare   = flag.String("compare", "", "with -ledger: compare two recorded revisions, \"revA,revB\"")
		gateIPC   = flag.Float64("gate", 0, "with -compare: exit non-zero on IPC regressions beyond this percentage")
		gateWall  = flag.Float64("gate-wall", 0, "with -compare: also gate wall-time growth beyond this percentage (same-host uncached records only)")
		gateCPU   = flag.Float64("gate-cpu", 0, "with -compare: also gate CPU-time growth beyond this percentage (uncached records carrying CPU accounting; robust to host load, applies cross-host)")
	)
	flag.Parse()

	if *ledgerDir != "" {
		os.Exit(ledgerMode(os.Stdout, *ledgerDir, *history, *compare, *gateIPC, *gateWall, *gateCPU))
	}

	var ws []*workload.Workload
	if *suite == "" {
		ws = workload.All()
	} else {
		ws = workload.BySuite(*suite)
	}
	if len(ws) == 0 {
		fmt.Fprintln(os.Stderr, "mgstat: no workloads selected")
		os.Exit(2)
	}

	rows := make([]row, len(ws))
	errs := make([]error, len(ws))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = characterize(w, *input)
		}(i, w)
	}
	wg.Wait()

	fmt.Printf("%-18s %7s %9s %6s %6s %6s %7s %6s %6s %7s %7s\n",
		"workload", "static", "dynamic", "ld%", "st%", "br%", "misp%", "IPC", "cands", "ser%", "cov%")
	var totDyn int64
	for i, r := range rows {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "mgstat: %s: %v\n", ws[i].Name, errs[i])
			continue
		}
		totDyn += r.dyn
		fmt.Printf("%-18s %7d %9d %6.1f %6.1f %6.1f %7.2f %6.2f %6d %7.1f %7.1f\n",
			r.name, r.static, r.dyn, r.loadPct, r.storePct, r.branchPct,
			r.mispredictRate, r.ipc, r.candidates, r.serializingPct, r.structAllCoverage)
	}
	fmt.Printf("\n%d workloads, %d total dynamic instructions\n", len(ws), totDyn)
}
