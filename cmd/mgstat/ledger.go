package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/ledger"
)

// This file is mgstat's run-history mode: with -ledger DIR the command
// queries the persistent run ledger instead of characterizing workloads —
// printing the recorded history, diffing two revisions per series point
// (-compare revA,revB), and gating CI on regressions (-gate / -gate-wall /
// -gate-cpu, non-zero exit when any point regressed beyond tolerance).

// ledgerMode runs the history/compare/gate queries. Returns the process
// exit code.
func ledgerMode(w io.Writer, dir string, history bool, compareSpec string, gatePct, gateWallPct, gateCPUPct float64) int {
	recs, skipped, err := ledger.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgstat:", err)
		return 1
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "mgstat: %d damaged ledger line(s) skipped\n", skipped)
	}
	if compareSpec != "" {
		return compareMode(w, recs, compareSpec, gatePct, gateWallPct, gateCPUPct)
	}
	if history {
		printHistory(w, recs)
	} else {
		printRuns(w, recs)
	}
	return 0
}

// compareMode diffs two recorded revisions and optionally gates.
func compareMode(w io.Writer, recs []ledger.Record, spec string, gatePct, gateWallPct, gateCPUPct float64) int {
	revA, revB, ok := strings.Cut(spec, ",")
	if !ok || revA == "" || revB == "" {
		fmt.Fprintln(os.Stderr, `mgstat: -compare wants "revA,revB"`)
		return 2
	}
	deltas := ledger.Compare(recs, revA, revB)
	if err := ledger.WriteCompareText(w, revA, revB, deltas); err != nil {
		fmt.Fprintln(os.Stderr, "mgstat:", err)
		return 1
	}
	if gatePct <= 0 && gateWallPct <= 0 && gateCPUPct <= 0 {
		return 0
	}
	fails := ledger.Gate(deltas, gatePct/100, gateWallPct/100, gateCPUPct/100)
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "mgstat: GATE:", f)
		}
		fmt.Fprintf(os.Stderr, "mgstat: gate FAILED: %d regression(s) beyond tolerance (ipc %.1f%%, wall %.1f%%, cpu %.1f%%)\n",
			len(fails), gatePct, gateWallPct, gateCPUPct)
		return 1
	}
	fmt.Fprintf(w, "gate: clean — %d comparable point(s) within tolerance (ipc %.1f%%, wall %.1f%%, cpu %.1f%%)\n",
		len(deltas), gatePct, gateWallPct, gateCPUPct)
	return 0
}

// printHistory lists every record, oldest first (the append order).
func printHistory(w io.Writer, recs []ledger.Record) {
	if len(recs) == 0 {
		fmt.Fprintln(w, "ledger is empty")
		return
	}
	fmt.Fprintf(w, "%-24s %-12s %-9s %-18s %-26s %-6s %-7s %7s %10s %10s\n",
		"time", "rev", "tool", "workload", "series", "input", "cache", "ipc", "wall ms", "cpu ms")
	for _, r := range recs {
		t := r.Time
		if len(t) > 24 {
			t = t[:24]
		}
		cpu := fmt.Sprintf("%10s", "–") // record predates CPU accounting
		if r.CPUMS > 0 {
			cpu = fmt.Sprintf("%10.1f", r.CPUMS)
		}
		fmt.Fprintf(w, "%-24s %-12s %-9s %-18s %-26s %-6s %-7s %7.4f %10.1f %s",
			t, r.Rev, r.Tool, r.Workload, r.Series, r.Input, r.Cache, r.IPC, r.WallMS, cpu)
		if r.Estimate {
			fmt.Fprintf(w, "  [est %s]", r.Sample)
		}
		if r.Error != "" {
			fmt.Fprintf(w, "  ERROR: %s", r.Error)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n%d record(s)\n", len(recs))
}

// printRuns summarizes the history one line per process invocation: when
// it ran, at what revision, how many tasks, the cache hit rate, errors,
// and total recorded wall time.
func printRuns(w io.Writer, recs []ledger.Record) {
	if len(recs) == 0 {
		fmt.Fprintln(w, "ledger is empty (run a sweep with -ledger to record history; -history lists records, -compare revA,revB diffs revisions)")
		return
	}
	type runSum struct {
		first                 string
		rev, tool, host       string
		records, hits, looked int
		errors                int
		wallMS                float64
		cpuMS                 float64
	}
	byRun := map[string]*runSum{}
	var order []string
	for _, r := range recs {
		s := byRun[r.RunID]
		if s == nil {
			s = &runSum{first: r.Time, rev: r.Rev, tool: r.Tool, host: r.Host.Hostname}
			byRun[r.RunID] = s
			order = append(order, r.RunID)
		}
		s.records++
		s.wallMS += r.WallMS
		s.cpuMS += r.CPUMS
		switch r.Cache {
		case "hit", "shared":
			s.hits++
			s.looked++
		case "miss":
			s.looked++
		}
		if r.Error != "" {
			s.errors++
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return byRun[order[i]].first < byRun[order[j]].first
	})
	fmt.Fprintf(w, "%-24s %-12s %-9s %-14s %7s %7s %7s %10s %10s\n",
		"started", "rev", "tool", "host", "records", "hit%", "errors", "wall s", "cpu s")
	for _, id := range order {
		s := byRun[id]
		t := s.first
		if len(t) > 24 {
			t = t[:24]
		}
		hitPct := "-"
		if s.looked > 0 {
			hitPct = fmt.Sprintf("%.1f", 100*float64(s.hits)/float64(s.looked))
		}
		cpu := fmt.Sprintf("%10s", "–") // run predates CPU accounting
		if s.cpuMS > 0 {
			cpu = fmt.Sprintf("%10.1f", s.cpuMS/1e3)
		}
		fmt.Fprintf(w, "%-24s %-12s %-9s %-14s %7d %7s %7d %10.1f %s\n",
			t, s.rev, s.tool, s.host, s.records, hitPct, s.errors, s.wallMS/1e3, cpu)
	}
	fmt.Fprintf(w, "\n%d run(s), %d record(s); -history lists records, -compare revA,revB diffs revisions\n",
		len(order), len(recs))
}
