package main

import (
	"strings"
	"testing"

	"repro/internal/ledger"
)

// seedLedger records the same two points at two revisions, with revB's
// crc32 point carrying a 20% IPC drop.
func seedLedger(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	point := func(workload string, ipc float64) ledger.Record {
		return ledger.Record{
			Tool: "sweep", Sweep: "test", Workload: workload,
			Series: "Slack-Profile on reduced", Input: "small",
			Cache: "miss", WallMS: 100,
			Cycles: 1000, Instrs: int64(ipc * 1000), IPC: ipc,
		}
	}
	for _, rev := range []struct {
		name     string
		crc, fft float64
	}{{"revA", 1.50, 2.00}, {"revB", 1.20, 2.01}} {
		l, err := ledger.Open(dir, rev.name)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(point("comm.crc32", rev.crc)); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(point("media.fft", rev.fft)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLedgerModeSummaryAndHistory(t *testing.T) {
	dir := seedLedger(t)
	var buf strings.Builder
	if code := ledgerMode(&buf, dir, false, "", 0, 0, 0); code != 0 {
		t.Fatalf("summary mode exit %d\n%s", code, buf.String())
	}
	if out := buf.String(); !strings.Contains(out, "2 run(s), 4 record(s)") {
		t.Errorf("run summary wrong:\n%s", out)
	}
	buf.Reset()
	if code := ledgerMode(&buf, dir, true, "", 0, 0, 0); code != 0 {
		t.Fatalf("history mode exit %d\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"comm.crc32", "media.fft", "revA", "revB", "4 record(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("history missing %q:\n%s", want, out)
		}
	}
}

func TestLedgerModeCompareGates(t *testing.T) {
	dir := seedLedger(t)

	// The 20% crc32 IPC drop must trip a 5% gate...
	var buf strings.Builder
	if code := ledgerMode(&buf, dir, false, "revA,revB", 5, 0, 0); code != 1 {
		t.Errorf("injected regression not gated: exit %d\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "comm.crc32") {
		t.Errorf("compare table missing the regressed point:\n%s", buf.String())
	}

	// ...a self-compare must gate clean...
	buf.Reset()
	if code := ledgerMode(&buf, dir, false, "revA,revA", 5, 0, 0); code != 0 {
		t.Errorf("self-compare gated: exit %d\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "gate: clean") {
		t.Errorf("clean gate line missing:\n%s", buf.String())
	}

	// ...and a malformed -compare spec is a usage error.
	if code := ledgerMode(&strings.Builder{}, dir, false, "revA", 5, 0, 0); code != 2 {
		t.Errorf("malformed spec exit = %d, want 2", code)
	}
}

// seedCPULedger records one point at two revisions with a 20% CPU-time
// regression at revB (IPC unchanged). hostB names the machine revB ran on
// ("" = let the ledger stamp the current host, same as revA).
func seedCPULedger(t *testing.T, hostB string) string {
	t.Helper()
	dir := t.TempDir()
	for _, rev := range []struct {
		name  string
		cpuMS float64
	}{{"revA", 100}, {"revB", 120}} {
		l, err := ledger.Open(dir, rev.name)
		if err != nil {
			t.Fatal(err)
		}
		rec := ledger.Record{
			Tool: "sweep", Sweep: "test", Workload: "comm.crc32",
			Series: "Slack-Profile on reduced", Input: "small",
			Cache: "miss", WallMS: 100, CPUMS: rev.cpuMS,
			Cycles: 1000, Instrs: 1500, IPC: 1.5,
		}
		if rev.name == "revB" && hostB != "" {
			rec.Host = ledger.CurrentHost()
			rec.Host.Hostname = hostB
		}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLedgerModeGateCPU is the acceptance scenario for -gate-cpu: an
// injected 20% CPU regression must exit non-zero at a 5% tolerance on
// same-host and cross-host ledger pairs alike, and pass at 25%.
func TestLedgerModeGateCPU(t *testing.T) {
	for _, tc := range []struct {
		name  string
		hostB string
	}{{"same-host", ""}, {"cross-host", "elsewhere"}} {
		t.Run(tc.name, func(t *testing.T) {
			dir := seedCPULedger(t, tc.hostB)
			var buf strings.Builder
			if code := ledgerMode(&buf, dir, false, "revA,revB", 0, 0, 5); code != 1 {
				t.Errorf("20%% cpu regression not gated: exit %d\n%s", code, buf.String())
			}
			buf.Reset()
			if code := ledgerMode(&buf, dir, false, "revA,revB", 0, 0, 25); code != 0 {
				t.Errorf("cpu gate at 25%% tripped: exit %d\n%s", code, buf.String())
			}
		})
	}
}
