// Command mgselect runs a mini-graph selection policy over a workload and
// prints the chosen mini-graphs: template groups, instances, coverage, and
// the serialization classification of each candidate.
//
// Usage:
//
//	mgselect -workload comm.crc32 [-input large] -selector Slack-Profile [-config reduced]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/selector"
	"repro/internal/slack"
)

func main() {
	var (
		wName   = flag.String("workload", "", "workload name")
		input   = flag.String("input", "large", "input set")
		selName = flag.String("selector", "Struct-All", "selection policy")
		cfgName = flag.String("config", "reduced", "profiling machine for slack-based policies")
		workers = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *wName == "" {
		fmt.Fprintln(os.Stderr, "mgselect: -workload required")
		os.Exit(2)
	}
	if *workers > 0 {
		// One workload is prepared here, but preparation and profiling can
		// fan out internally; bound the process like core.Options.Workers.
		runtime.GOMAXPROCS(*workers)
	}

	var sel *selector.Selector
	switch *selName {
	case "Struct-All":
		sel = selector.StructAll()
	case "Struct-None":
		sel = selector.StructNone()
	case "Struct-Bounded":
		sel = selector.StructBounded()
	case "Slack-Profile":
		sel = selector.SlackProfile()
	case "Slack-Profile-Delay":
		sel = selector.SlackProfileDelay()
	case "Slack-Profile-SIAL":
		sel = selector.SlackProfileSIAL()
	case "Slack-Dynamic":
		sel = selector.SlackDynamic()
	default:
		fmt.Fprintf(os.Stderr, "mgselect: unknown selector %q\n", *selName)
		os.Exit(2)
	}

	bench, err := core.PrepareSharedByName(*wName, *input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgselect:", err)
		os.Exit(1)
	}
	var prof *slack.Profile
	if sel.NeedsProfile() {
		var cfg pipeline.Config
		switch *cfgName {
		case "baseline":
			cfg = pipeline.Baseline()
		case "reduced":
			cfg = pipeline.Reduced()
		default:
			fmt.Fprintf(os.Stderr, "mgselect: unknown config %q\n", *cfgName)
			os.Exit(2)
		}
		if prof, err = bench.Profile(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "mgselect:", err)
			os.Exit(1)
		}
	}

	chosen := bench.Select(sel, prof)
	fmt.Printf("workload=%s selector=%s candidates=%d\n", *wName, sel.Name(), len(bench.Cands))
	fmt.Printf("selected: %d instances, %d templates, %.1f%% dynamic coverage\n",
		len(chosen.Instances), chosen.NumTemplates, 100*chosen.Coverage())
	for _, in := range chosen.Instances {
		c := in.Cand
		kind := "plain"
		switch {
		case c.Serializing() && !c.BoundedSerialization():
			kind = "serializing(unbounded)"
		case c.Serializing():
			kind = "serializing(bounded)"
		}
		fmt.Printf("\ntemplate %d @ %d (freq %d, %s):\n", in.Template, in.Start, bench.Freq[in.Start], kind)
		for k := 0; k < in.N; k++ {
			fmt.Printf("  %4d  %s\n", in.Start+k, bench.Prog.Code[in.Start+k])
		}
	}
}
