// Command mgselect runs a mini-graph selection policy over a workload and
// prints the chosen mini-graphs: template groups, instances, coverage, and
// the serialization classification of each candidate.
//
// Usage:
//
//	mgselect -workload comm.crc32 [-input large] -selector Slack-Profile [-config reduced]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/selector"
	"repro/internal/slack"
)

func main() {
	var (
		wName      = flag.String("workload", "", "workload name")
		input      = flag.String("input", "large", "input set")
		selName    = flag.String("selector", "Struct-All", "selection policy")
		cfgName    = flag.String("config", "reduced", "profiling machine for slack-based policies")
		workers    = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cacheStats = flag.Bool("cachestats", false, "print simulation-cache counters to stderr")
		pipetrace  = flag.Bool("pipetrace", false, "write a per-uop pipetrace JSONL of the profiling run")
		ptraceBin  = flag.Bool("pipetrace-bin", false, "write the pipetrace in the compact binary encoding (with a .mgidx seek index) instead of JSONL")
		intervals  = flag.Int64("intervals", 0, "sample interval metrics of the profiling run every N cycles (0 = off)")
		tracedir   = flag.String("tracedir", "", "observability output directory (default \"obs\")")
		verbose    = flag.Bool("v", false, "structured telemetry on stderr")
		httpaddr   = flag.String("httpaddr", "", "serve expvar, pprof, /metrics and /debug/sweep on this address during the run")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace (and FILE.spans.jsonl) of the run's spans to FILE")
		refsched   = flag.Bool("refsched", false, "use the reference per-cycle scan scheduler instead of the event-driven one")
		ledgerDir  = flag.String("ledger", "", "append a selection record to the persistent ledger in this directory")
		ledgerRev  = flag.String("ledger-rev", "", "revision label for ledger records (default: MG_REV or the binary's vcs revision)")
	)
	resolveSample := core.SampleFlags()
	flag.Parse()
	sample, err := resolveSample()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgselect:", err)
		os.Exit(2)
	}
	if sample != nil && (*pipetrace || *ptraceBin || *intervals > 0) {
		fmt.Fprintln(os.Stderr, "mgselect: sampled fidelity and observability are mutually exclusive (pipetraces need the real full run)")
		os.Exit(2)
	}
	if *refsched {
		pipeline.SetDefaultScheduler(pipeline.SchedScan)
	}
	if *ledgerDir != "" {
		led, err := ledger.Open(*ledgerDir, *ledgerRev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgselect:", err)
			os.Exit(1)
		}
		defer led.Close()
		core.SetLedger(led)
	}
	if *wName == "" {
		fmt.Fprintln(os.Stderr, "mgselect: -workload required")
		os.Exit(2)
	}
	if *workers > 0 {
		// One workload is prepared here, but preparation and profiling can
		// fan out internally; bound the process like core.Options.Workers.
		runtime.GOMAXPROCS(*workers)
	}
	if *verbose {
		core.SetTelemetry(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	if *httpaddr != "" {
		core.PublishExpvars()
		core.EnableMetrics()
		addr, err := obs.ServeDebug(*httpaddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgselect:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s — /debug/vars /debug/pprof/ /metrics /debug/sweep\n", addr)
		metrics.StartHealth(0)
	}
	var tracer *metrics.Tracer
	if *traceOut != "" {
		core.EnableMetrics()
		tracer = metrics.NewTracer()
		metrics.InstallTracer(tracer)
		metrics.SetTraceOut(*traceOut)
		metrics.SetCPUAccounting(true)
	}

	var sel *selector.Selector
	switch *selName {
	case "Struct-All":
		sel = selector.StructAll()
	case "Struct-None":
		sel = selector.StructNone()
	case "Struct-Bounded":
		sel = selector.StructBounded()
	case "Slack-Profile":
		sel = selector.SlackProfile()
	case "Slack-Profile-Delay":
		sel = selector.SlackProfileDelay()
	case "Slack-Profile-SIAL":
		sel = selector.SlackProfileSIAL()
	case "Slack-Dynamic":
		sel = selector.SlackDynamic()
	default:
		fmt.Fprintf(os.Stderr, "mgselect: unknown selector %q\n", *selName)
		os.Exit(2)
	}
	// cfg is the profiling machine for slack-based policies and, with
	// -sample-*, the machine the sampled quality estimate runs on.
	var cfg pipeline.Config
	switch *cfgName {
	case "baseline":
		cfg = pipeline.Baseline()
	case "reduced":
		cfg = pipeline.Reduced()
	default:
		fmt.Fprintf(os.Stderr, "mgselect: unknown config %q\n", *cfgName)
		os.Exit(2)
	}

	t0 := time.Now()
	// Whole-process deltas: profiling and sampled estimation fan out
	// across GOMAXPROCS goroutines.
	cpu0 := metrics.ProcessCPUNanos()
	gc0 := metrics.GCCycleCount()
	ctx, runSpan := metrics.StartSpan(context.Background(), "mgselect.run",
		metrics.L("workload", *wName), metrics.L("selector", *selName))
	bench, err := core.PrepareSharedByName(*wName, *input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgselect:", err)
		os.Exit(1)
	}
	var prof *slack.Profile
	if sel.NeedsProfile() {
		if o := obs.FlagOptions(*pipetrace, *ptraceBin, *intervals, *tracedir); o.Active() {
			// Trace the profiling run itself: the singleton execution the
			// slack profile is collected from.
			base := fmt.Sprintf("%s_%s_%s_profile", *wName, *input, cfg.Name)
			watch, werr := obs.NewRunObserver(o, base)
			if werr != nil {
				fmt.Fprintln(os.Stderr, "mgselect:", werr)
				os.Exit(1)
			}
			prof, err = bench.ProfileObserved(cfg, watch)
			if cerr := watch.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if err == nil {
				fmt.Fprintf(os.Stderr, "observability files: %v\n", watch.Files())
			}
		} else {
			pctx, prsp := metrics.StartSpan(ctx, "profile", metrics.L("config", cfg.Name))
			prof, err = bench.ProfileCtx(pctx, cfg)
			prsp.End()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgselect:", err)
			os.Exit(1)
		}
	}

	_, ssp := metrics.StartSpan(ctx, "select", metrics.L("policy", sel.Name()))
	chosen := bench.Select(sel, prof)
	ssp.End()
	var est *pipeline.Stats
	var estReport pipeline.SampleReport
	if sample != nil {
		// Sampled quality estimate of the selection just made: a low-fidelity
		// timing run on cfg. The selection itself is always exact — sampling
		// can never change which mini-graphs are chosen.
		sample.Workers = runtime.GOMAXPROCS(0)
		_, esp := metrics.StartSpan(ctx, "estimate", metrics.L("config", cfg.Name))
		est, estReport, err = bench.RunSampledReport(cfg, sel, chosen, *sample)
		esp.End()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgselect:", err)
			os.Exit(1)
		}
	}
	runSpan.End()
	if tracer != nil {
		jsonl, terr := metrics.WriteTraceFiles(*traceOut, tracer)
		if terr != nil {
			fmt.Fprintln(os.Stderr, "mgselect:", terr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %s (Chrome/Perfetto), %s (JSONL)\n", *traceOut, jsonl)
	}
	if led := core.RunLedger(); led != nil {
		// Selection-only record: Cycles stays 0, so history queries list it
		// but the compare gate never treats it as a timing point. With
		// -sample-* the record carries the estimated timing instead, tagged
		// Estimate so the gate never pairs it with an exact run.
		rec := ledger.Record{
			Tool: "mgselect", Workload: *wName, Series: sel.Name(), Input: *input,
			Cache:    "run",
			WallMS:   float64(time.Since(t0)) / float64(time.Millisecond),
			CPUMS:    float64(metrics.ProcessCPUNanos()-cpu0) / 1e6,
			MaxRSSKB: metrics.MaxRSSKB(),
			GCCycles: metrics.GCCycleCount() - gc0,
			Coverage: chosen.Coverage(),
		}
		if est != nil {
			rec.Series = sel.Name() + " on " + cfg.Name
			rec.Estimate, rec.Sample = true, sample.Summary()
			rec.Cycles, rec.Instrs, rec.Uops = est.Cycles, est.Instrs, est.Uops
			rec.IPC, rec.UPC = est.IPC(), est.UPC()
		}
		if aerr := led.Append(rec); aerr != nil {
			fmt.Fprintln(os.Stderr, "mgselect: ledger:", aerr)
		}
	}
	fmt.Printf("workload=%s selector=%s candidates=%d\n", *wName, sel.Name(), len(bench.Cands))
	fmt.Printf("selected: %d instances, %d templates, %.1f%% dynamic coverage\n",
		len(chosen.Instances), chosen.NumTemplates, 100*chosen.Coverage())
	if est != nil {
		fmt.Println(core.SampleBanner(*sample, estReport))
		fmt.Printf("estimated IPC on %s with this selection: %.4f\n", cfg.Name, est.IPC())
	}
	for _, in := range chosen.Instances {
		c := in.Cand
		kind := "plain"
		switch {
		case c.Serializing() && !c.BoundedSerialization():
			kind = "serializing(unbounded)"
		case c.Serializing():
			kind = "serializing(bounded)"
		}
		fmt.Printf("\ntemplate %d @ %d (freq %d, %s):\n", in.Template, in.Start, bench.Freq[in.Start], kind)
		for k := 0; k < in.N; k++ {
			fmt.Printf("  %4d  %s\n", in.Start+k, bench.Prog.Code[in.Start+k])
		}
	}
	if *cacheStats {
		core.FprintCacheStats(os.Stderr)
	}
	fmt.Fprintln(os.Stderr, metrics.FormatResources(time.Since(t0)))
}
