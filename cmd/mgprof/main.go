// Command mgprof collects a local-slack profile for a workload: a singleton
// (non-mini-graph) timing simulation whose per-static-instruction average
// issue times, operand ready times and local slacks drive the
// Slack-Profile selector. The profile is written as JSON.
//
// Usage:
//
//	mgprof -workload media.adpcm_enc [-input large] [-config reduced] [-o profile.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/pipeline"
)

func main() {
	var (
		wName   = flag.String("workload", "", "workload name")
		input   = flag.String("input", "large", "input set")
		cfgName = flag.String("config", "reduced", "profiling machine: baseline, reduced, 2way, 8way, dmem4")
		out     = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()
	if *wName == "" {
		fmt.Fprintln(os.Stderr, "mgprof: -workload required")
		os.Exit(2)
	}
	var cfg pipeline.Config
	switch *cfgName {
	case "baseline":
		cfg = pipeline.Baseline()
	case "reduced":
		cfg = pipeline.Reduced()
	case "2way":
		cfg = pipeline.Width2()
	case "8way":
		cfg = pipeline.Width8()
	case "dmem4":
		cfg = pipeline.SmallDMem()
	default:
		fmt.Fprintf(os.Stderr, "mgprof: unknown config %q\n", *cfgName)
		os.Exit(2)
	}

	bench, err := core.PrepareByName(*wName, *input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgprof:", err)
		os.Exit(1)
	}
	prof, err := bench.Profile(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgprof:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgprof:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := prof.Save(w); err != nil {
		fmt.Fprintln(os.Stderr, "mgprof:", err)
		os.Exit(1)
	}
}
