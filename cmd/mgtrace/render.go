package main

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// Stage symbols, in increasing override priority: fills first, then stage
// letters on top.
//
//	.  in flight between stages
//	=  executing (between issue and done; long runs inside a handle show
//	   its constituents executing serially in the ALU pipeline)
//	F  fetch        R  rename       I  issue
//	E  done (all results produced)  w  writeback (when distinct from done)
//	C  commit       x  squashed (after the last stage reached)
const legend = "F fetch  R rename  I issue  = exec  E done  w writeback  C commit  . in flight  x squashed"

// renderTrace writes a pipeline-viewer-style diagram: one row per uop in
// file order starting at sequence number start, one column per cycle.
func renderTrace(w io.Writer, uops []obs.UopTrace, events []obs.TraceEvent, start int64, count, cols int) error {
	var rows []obs.UopTrace
	for _, u := range uops {
		if u.Seq < start {
			continue
		}
		rows = append(rows, u)
		if count > 0 && len(rows) == count {
			break
		}
	}
	if len(rows) == 0 {
		_, err := fmt.Fprintf(w, "no uop records at seq >= %d (%d in file)\n", start, len(uops))
		return err
	}

	lo, hi := int64(-1), int64(-1)
	for _, u := range rows {
		for _, c := range [...]int64{u.Fetch, u.Rename, u.Issue, u.Done, u.Ready, u.Commit} {
			if c < 0 {
				continue
			}
			if lo < 0 || c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
	}
	if lo < 0 {
		_, err := fmt.Fprintln(w, "no stage timestamps in selected records")
		return err
	}
	truncated := false
	if cols > 0 && hi-lo+1 > int64(cols) {
		hi = lo + int64(cols) - 1
		truncated = true
	}
	width := int(hi - lo + 1)

	fmt.Fprintf(w, "pipetrace: %d uops (seq %d..%d), cycles %d..%d", len(rows), rows[0].Seq, rows[len(rows)-1].Seq, lo, hi)
	if truncated {
		fmt.Fprintf(w, " (clipped to %d columns)", width)
	}
	fmt.Fprintf(w, "\n%s\n\n", legend)

	// Cycle ruler: '|' every 10 cycles, ':' every 5, counted from cycle 0.
	ruler := make([]byte, width)
	for i := range ruler {
		switch c := lo + int64(i); {
		case c%10 == 0:
			ruler[i] = '|'
		case c%5 == 0:
			ruler[i] = ':'
		default:
			ruler[i] = ' '
		}
	}
	label := fmt.Sprintf("%6s %-9s %-14s ", "seq", "kind", "op")
	fmt.Fprintf(w, "%s %s\n", label, ruler)

	for _, u := range rows {
		strip := make([]byte, width)
		for i := range strip {
			strip[i] = ' '
		}
		mark := func(c int64, ch byte) {
			if c >= lo && c <= hi {
				strip[c-lo] = ch
			}
		}
		last := u.Fetch
		for _, c := range [...]int64{u.Rename, u.Issue, u.Done, u.Ready, u.Commit} {
			if c > last {
				last = c
			}
		}
		for c := u.Fetch; c <= last; c++ {
			mark(c, '.')
		}
		if u.Issue >= 0 && u.Done > u.Issue {
			for c := u.Issue + 1; c < u.Done; c++ {
				mark(c, '=')
			}
		}
		mark(u.Fetch, 'F')
		mark(u.Rename, 'R')
		mark(u.Issue, 'I')
		mark(u.Done, 'E')
		if u.Ready >= 0 && u.Ready != u.Done {
			mark(u.Ready, 'w')
		}
		mark(u.Commit, 'C')
		if u.Squashed {
			mark(last+1, 'x')
		}

		annot := ""
		if u.N > 1 {
			annot += fmt.Sprintf(" n=%d", u.N)
		}
		if u.Replays > 0 {
			annot += fmt.Sprintf(" replays=%d", u.Replays)
		}
		if u.Mispred {
			annot += " mispred"
		}
		if u.Squashed {
			annot += " squashed"
		}
		fmt.Fprintf(w, "%6d %-9s %-14s |%s|%s\n", u.Seq, u.Kind, u.Op, strip, annot)
	}

	if len(events) > 0 {
		fmt.Fprintf(w, "\nevents (%d):\n", len(events))
		for _, e := range events {
			switch e.Ev {
			case obs.EvFlush:
				fmt.Fprintf(w, "  cycle %8d  flush     load seq %d\n", e.Cycle, e.Seq)
			case obs.EvDisable:
				fmt.Fprintf(w, "  cycle %8d  disable   template %d\n", e.Cycle, e.Template)
			case obs.EvReenable:
				fmt.Fprintf(w, "  cycle %8d  reenable  template %d\n", e.Cycle, e.Template)
			default:
				fmt.Fprintf(w, "  cycle %8d  %s\n", e.Cycle, e.Ev)
			}
		}
	}
	return nil
}
