package main

import (
	"fmt"
	"os"

	"repro/internal/critpath"
	"repro/internal/pipeline"
)

// configByName resolves the machine configuration the trace was produced
// under, so the walk gets the right front-end depth and width.
func configByName(name string) (pipeline.Config, error) {
	cfg, ok := pipeline.ConfigByName(name)
	if !ok {
		return pipeline.Config{}, fmt.Errorf("unknown machine configuration %q (want baseline, reduced, width2, width8, or dmem4)", name)
	}
	return cfg, nil
}

// exportCritpath writes the optional JSON and CSV artifacts.
func exportCritpath(rep *critpath.Report, jsonPath, csvPath string) error {
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := critpath.WriteJSON(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := critpath.WriteScoreboardCSV(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
