package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/critpath"
)

func TestConfigByName(t *testing.T) {
	for _, name := range []string{"baseline", "baseline-4way", "reduced", "reduced-3way",
		"width2", "cross-2way", "width8", "cross-8way", "dmem4", "cross-dmem4"} {
		cfg, err := configByName(name)
		if err != nil {
			t.Errorf("configByName(%q): %v", name, err)
		}
		if p := critpath.ParamsFor(cfg); p.Width <= 0 || p.FetchToRename <= 0 {
			t.Errorf("configByName(%q): degenerate params %+v", name, p)
		}
	}
	if _, err := configByName("nope"); err == nil {
		t.Error("unknown configuration accepted")
	}
}

// The committed tiny trace (testdata/tiny.pipetrace.jsonl) is the CI smoke
// input: a 3-op handle with 2 cycles of induced serialization fed by two
// singletons. Its rendering is pinned by a golden so the smoke target's
// output stays meaningful.
func TestCritpathTinyGolden(t *testing.T) {
	uops, events, err := readTrace(filepath.Join("testdata", "tiny.pipetrace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := configByName("reduced")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := critpath.Analyze(uops, events, critpath.ParamsFor(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Buckets[critpath.Serialization] != 2 {
		t.Errorf("tiny trace serialization bucket = %d, want 2", rep.Buckets[critpath.Serialization])
	}
	var out bytes.Buffer
	if err := critpath.WriteText(&out, "tiny.pipetrace.jsonl", rep, 5); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "critpath_tiny.golden.txt")
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/mgtrace -update` to create goldens)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("attribution rendering drifted from golden.\n got:\n%s\nwant:\n%s", out.Bytes(), want)
	}
}

// The exports must round-trip: the JSON report parses back with the same
// bucket totals and the CSV carries one row per template.
func TestCritpathExports(t *testing.T) {
	uops, events, err := readTrace(filepath.Join("testdata", "tiny.pipetrace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := configByName("reduced")
	rep, err := critpath.Analyze(uops, events, critpath.ParamsFor(cfg))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	js, csv := filepath.Join(dir, "a.json"), filepath.Join(dir, "a.csv")
	if err := exportCritpath(rep, js, csv); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		TotalCycles   int64            `json:"totalCycles"`
		BucketsByName map[string]int64 `json:"bucketsByName"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalCycles != rep.TotalCycles {
		t.Errorf("JSON totalCycles %d != %d", back.TotalCycles, rep.TotalCycles)
	}
	if back.BucketsByName["serialization"] != rep.Buckets[critpath.Serialization] {
		t.Errorf("JSON serialization %d != %d",
			back.BucketsByName["serialization"], rep.Buckets[critpath.Serialization])
	}
	rawCSV, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(rawCSV)), "\n")
	if len(lines) != 1+len(rep.Templates) {
		t.Errorf("CSV has %d lines, want header + %d templates", len(lines), len(rep.Templates))
	}
}

// Attribution over a real pipeline-generated trace must render without
// error and report a nonzero span.
func TestCritpathChain3(t *testing.T) {
	uops, events := chain3Trace(t)
	cfg, _ := configByName("reduced")
	rep, err := critpath.Analyze(uops, events, critpath.ParamsFor(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCycles <= 0 || len(rep.Templates) == 0 {
		t.Fatalf("degenerate report over chain3 trace: %+v", rep)
	}
	var out bytes.Buffer
	if err := critpath.WriteText(&out, "chain3", rep, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "serialization scoreboard") {
		t.Error("rendering missing scoreboard section")
	}
}
