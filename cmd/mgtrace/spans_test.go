package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// writeTestTrace records a tiny deterministic span tree and writes it as a
// Chrome trace file, returning the path.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	var now int64
	tr := metrics.NewTracerClock(func() int64 { now += 1000; return now })
	metrics.InstallTracer(tr)
	defer metrics.InstallTracer(nil)

	ctx := metrics.WithTask(context.Background(), 1, 0)
	ctx, sweep := metrics.StartSpan(ctx, "sweep")
	tctx, task := metrics.StartSpan(metrics.WithTid(ctx, 1), "task")
	_, sim := metrics.StartSpan(tctx, "simulate")
	sim.End()
	task.End()
	sweep.End()

	path := filepath.Join(t.TempDir(), "test.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteChromeTrace(f, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSummarizeSpans checks the -spans mode validates a trace and prints
// the per-name duration table.
func TestSummarizeSpans(t *testing.T) {
	path := writeTestTrace(t)
	var b bytes.Buffer
	if err := summarizeSpans(&b, path); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "valid Chrome trace, 3 spans across 2 thread rows") {
		t.Errorf("summary header wrong:\n%s", out)
	}
	for _, name := range []string{"sweep", "task", "simulate"} {
		if !strings.Contains(out, name) {
			t.Errorf("summary missing span %q:\n%s", name, out)
		}
	}
	// The sweep span encloses everything, so it must sort first.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 || !strings.HasPrefix(lines[2], "sweep") {
		t.Errorf("widest span not first:\n%s", out)
	}
}

// TestSummarizeSpansCPU checks the -spans table carries per-name CPU
// totals and the cpu/wall ratio when spans were recorded with CPU
// accounting, and the dash placeholder when they were not.
func TestSummarizeSpansCPU(t *testing.T) {
	var now int64
	tr := metrics.NewTracerClock(func() int64 { now += 1000; return now })
	metrics.InstallTracer(tr)
	defer metrics.InstallTracer(nil)

	ctx, sweep := metrics.StartSpan(context.Background(), "sweep")
	_, sim := metrics.StartSpan(ctx, "simulate")
	// Stamp CPU on the inner span only, as a sweep worker does after
	// measuring the task's thread rusage delta.
	sim.SetCPUNanos(1_500_000) // 1.5 ms
	sim.End()
	sweep.End()

	path := filepath.Join(t.TempDir(), "cpu.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteChromeTrace(f, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var b bytes.Buffer
	if err := summarizeSpans(&b, path); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"cpu ms", "cpu/wall", "1.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("cpu summary missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "simulate"):
			// 1.5 ms CPU over 1 µs wall: ratio present, not a dash.
			if strings.Contains(line, "–") {
				t.Errorf("accounted span shows placeholder: %q", line)
			}
		case strings.HasPrefix(line, "sweep"):
			// The enclosing span carries no cpu_ms of its own.
			if !strings.Contains(line, "–") {
				t.Errorf("unaccounted span missing placeholder: %q", line)
			}
		}
	}
}

// TestSummarizeSpansRejectsCorrupt checks an invalid trace is an error,
// not a bogus summary.
func TestSummarizeSpansRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	// An unmatched B event.
	bad := `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":0}]}`
	if err := os.WriteFile(path, []byte(bad), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := summarizeSpans(&bytes.Buffer{}, path); err == nil {
		t.Error("corrupt trace accepted")
	}
	if err := summarizeSpans(&bytes.Buffer{}, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}
