// Command mgtrace renders the simulator's observability output: pipetrace
// files become text pipeline diagrams (one row per uop, one column per
// cycle, in the style of gem5's O3 pipeline viewer), and interval files
// become summaries of the run's trouble spots — top stall windows,
// coverage dips, and Slack-Dynamic disable storms.
//
// Usage:
//
//	mgtrace -trace run.pipetrace.jsonl [-start seq] [-count n] [-cols n]
//	mgtrace -trace run.pipetrace.bin -window 12000:13000 [-noindex]
//	mgtrace -trace run.pipetrace.bin -range 500000:500200
//	mgtrace -index run.pipetrace.bin [-index-every n]
//	mgtrace -summary run.intervals.jsonl [-top k] [-window a:b]
//	mgtrace -csv run.intervals.jsonl > run.csv
//	mgtrace -critpath run.pipetrace.jsonl [-config reduced] [-top k] [-window a:b] [-attribjson f] [-attribcsv f]
//	mgtrace -spans sweep.trace
//	mgtrace -tojsonl run.pipetrace.bin > run.pipetrace.jsonl
//
// Pipetrace inputs (-trace, -critpath) may be either JSONL or the binary
// encoding written under -pipetrace-bin; the format is auto-detected. The
// -tojsonl mode converts a binary pipetrace to JSONL on stdout,
// byte-identical to what the run would have written with -pipetrace.
//
// Windowed queries: -window a:b selects the records whose index cycle
// (commit cycle, or last stage reached for squashed uops) lies in [a, b];
// -range a:b selects records by 0-based stream ordinal. Binary traces with
// a .mgidx sidecar (written automatically with -pipetrace-bin, or built
// after the fact with -index) are read through the seek index — only the
// byte ranges that can intersect the query are decoded, so jumping into a
// multi-GB trace is cheap. Without an index the query falls back to a
// linear scan with identical results; -noindex forces the fallback (useful
// for diffing the two paths).
//
// The -spans mode validates a Chrome trace-event file produced by the
// -trace-out flag of mgreport/mgsim/mgselect (matched B/E pairs, monotonic
// timestamps) and prints a per-span-name duration summary.
//
// The -critpath mode runs the cycle-loss attribution engine
// (internal/critpath) over a pipetrace: it walks the critical path
// backwards through last-arriving edges and prints where the cycles went
// (inherent dataflow, mini-graph serialization, cache misses, branch
// mispredictions, structural stalls, replays), the per-template
// serialization scoreboard, and the worst static mini-graph sites.
// -config names the machine configuration the trace was produced under.
// With -window a:b the walk is bounded to the uops committing inside the
// window (edges crossing the window entry are clipped as boundary state);
// the full trace is still read, because exact dependence reconstruction
// needs the complete rename history.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/critpath"
	"repro/internal/obs"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "pipetrace JSONL file to render as a stage diagram")
		start     = flag.Int64("start", 0, "first uop sequence number to render")
		count     = flag.Int("count", 64, "max uop rows to render")
		cols      = flag.Int("cols", 160, "max diagram columns (cycles)")
		summary   = flag.String("summary", "", "interval JSONL file to summarize")
		top       = flag.Int("top", 5, "how many stall windows / coverage dips / storms to list")
		csvFile   = flag.String("csv", "", "interval JSONL file to convert to CSV on stdout")
		critFile  = flag.String("critpath", "", "pipetrace JSONL file to run cycle-loss attribution on")
		cfgName   = flag.String("config", "reduced", "machine configuration the trace was produced under")
		attribJS  = flag.String("attribjson", "", "also write the attribution report as JSON to this file")
		attribCSV = flag.String("attribcsv", "", "also write the serialization scoreboard as CSV to this file")
		spansFile = flag.String("spans", "", "Chrome trace file (from -trace-out) to validate and summarize")
		toJSONL   = flag.String("tojsonl", "", "binary pipetrace file to convert to JSONL on stdout")
		windowStr = flag.String("window", "", "cycle window a:b — restrict -trace/-summary/-critpath to it")
		rangeStr  = flag.String("range", "", "record range a:b (0-based stream ordinals) — restrict -trace to it")
		indexFile = flag.String("index", "", "binary pipetrace to build a .mgidx seek index for")
		indexN    = flag.Int("index-every", obs.DefaultIndexEvery, "index stride (records per entry) for -index")
		noIndex   = flag.Bool("noindex", false, "ignore any .mgidx sidecar and scan linearly (for diffing)")
	)
	flag.Parse()
	if *windowStr != "" && *rangeStr != "" {
		fail(fmt.Errorf("-window and -range are mutually exclusive"))
	}

	did := false
	if *traceFile != "" {
		did = true
		uops, events, desc, err := queryTrace(*traceFile, *windowStr, *rangeStr, *noIndex)
		if err != nil {
			fail(err)
		}
		if desc != "" {
			fmt.Printf("%s: %s -> %d uops, %d events\n", *traceFile, desc, len(uops), len(events))
		}
		if err := renderTrace(os.Stdout, uops, events, *start, *count, *cols); err != nil {
			fail(err)
		}
	}
	if *indexFile != "" {
		did = true
		if err := buildIndex(*indexFile, *indexN); err != nil {
			fail(err)
		}
	}
	if *summary != "" {
		did = true
		ivs, err := readIntervals(*summary)
		if err != nil {
			fail(err)
		}
		name := *summary
		if *windowStr != "" {
			a, b, err := parseSpan(*windowStr)
			if err != nil {
				fail(err)
			}
			ivs = windowIntervals(ivs, a, b)
			name = fmt.Sprintf("%s [window %d:%d]", name, a, b)
		}
		summarizeIntervals(os.Stdout, name, ivs, *top)
	}
	if *csvFile != "" {
		did = true
		ivs, err := readIntervals(*csvFile)
		if err != nil {
			fail(err)
		}
		if err := obs.WriteIntervalsCSV(os.Stdout, ivs); err != nil {
			fail(err)
		}
	}
	if *critFile != "" {
		did = true
		if *rangeStr != "" {
			fail(fmt.Errorf("-critpath takes -window (commit cycles), not -range: record ordinals don't bound an attribution"))
		}
		cfg, err := configByName(*cfgName)
		if err != nil {
			fail(err)
		}
		uops, events, err := readTrace(*critFile)
		if err != nil {
			fail(err)
		}
		var win *critpath.Window
		if *windowStr != "" {
			a, b, err := parseSpan(*windowStr)
			if err != nil {
				fail(err)
			}
			win = &critpath.Window{Start: a, End: b}
		}
		rep, err := critpath.AnalyzeWindow(uops, events, critpath.ParamsFor(cfg), win)
		if err != nil {
			fail(err)
		}
		if err := critpath.WriteText(os.Stdout, *critFile, rep, *top); err != nil {
			fail(err)
		}
		if err := exportCritpath(rep, *attribJS, *attribCSV); err != nil {
			fail(err)
		}
	}
	if *spansFile != "" {
		did = true
		if err := summarizeSpans(os.Stdout, *spansFile); err != nil {
			fail(err)
		}
	}
	if *toJSONL != "" {
		did = true
		f, err := os.Open(*toJSONL)
		if err != nil {
			fail(err)
		}
		err = obs.ConvertPipetrace(f, os.Stdout)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
	if !did {
		fmt.Fprintln(os.Stderr, "mgtrace: one of -trace, -summary, -csv, -critpath, -spans, -tojsonl required")
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mgtrace:", err)
	os.Exit(1)
}

// readTrace reads a whole pipetrace. An empty trace is an error: every
// caller is about to render or analyze records, and a silently empty
// result would let a CI smoke leg pass on a broken trace.
func readTrace(path string) ([]obs.UopTrace, []obs.TraceEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	uops, events, err := obs.ReadPipetrace(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(uops) == 0 && len(events) == 0 {
		return nil, nil, fmt.Errorf("%s: empty pipetrace (no records)", path)
	}
	return uops, events, nil
}

// parseSpan parses "a:b" into inclusive int64 bounds.
func parseSpan(s string) (int64, int64, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("bad span %q: want start:end", s)
	}
	a, err1 := strconv.ParseInt(s[:i], 10, 64)
	b, err2 := strconv.ParseInt(s[i+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad span %q: want start:end", s)
	}
	if a > b {
		return 0, 0, fmt.Errorf("bad span %q: start after end", s)
	}
	return a, b, nil
}

// queryTrace reads a pipetrace, restricted to a cycle window or record
// range when given. desc labels the query and how it was served ("" for a
// full read).
func queryTrace(path, window, rng string, noIndex bool) (uops []obs.UopTrace, events []obs.TraceEvent, desc string, err error) {
	if window == "" && rng == "" {
		uops, events, err = readTrace(path)
		return uops, events, "", err
	}
	ir, done, err := openTraceReader(path, noIndex)
	if err != nil {
		return nil, nil, "", err
	}
	defer done()
	mode := "linear scan"
	if ir.Indexed() {
		mode = "seek index"
	}
	if window != "" {
		a, b, perr := parseSpan(window)
		if perr != nil {
			return nil, nil, "", perr
		}
		uops, events, err = ir.Window(a, b)
		desc = fmt.Sprintf("window %d:%d (%s)", a, b, mode)
	} else {
		a, b, perr := parseSpan(rng)
		if perr != nil {
			return nil, nil, "", perr
		}
		uops, events, err = ir.Range(a, b)
		desc = fmt.Sprintf("range %d:%d (%s)", a, b, mode)
	}
	if err != nil {
		return nil, nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return uops, events, desc, nil
}

// openTraceReader opens a pipetrace for windowed queries, through its
// sidecar index unless noIndex forces the linear fallback.
func openTraceReader(path string, noIndex bool) (*obs.IndexedReader, func(), error) {
	if !noIndex {
		ir, err := obs.OpenIndexed(path)
		if err != nil {
			return nil, nil, err
		}
		return ir, func() { ir.Close() }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	ir, err := obs.NewIndexedReader(f, nil)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return ir, func() { f.Close() }, nil
}

// buildIndex builds and writes the .mgidx sidecar for an existing binary
// pipetrace (mgtrace -index).
func buildIndex(path string, every int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	x, err := obs.BuildIndex(f, every)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	out := obs.IndexPath(path)
	if err := obs.WriteIndexFile(out, x); err != nil {
		return err
	}
	fmt.Printf("%s: %d records (%d uops, %d events), commit cycles %d..%d, %d index entries (every %d)\n",
		out, x.Records, x.Uops, x.Events, x.MinCycle, x.MaxCycle, len(x.Entries), x.Every)
	return nil
}

// windowIntervals keeps the intervals overlapping cycle window [a, b].
func windowIntervals(ivs []obs.Interval, a, b int64) []obs.Interval {
	var out []obs.Interval
	for _, iv := range ivs {
		lo := iv.Cycle - iv.Cycles + 1
		if lo <= b && iv.Cycle >= a {
			out = append(out, iv)
		}
	}
	return out
}

func readIntervals(path string) ([]obs.Interval, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadIntervals(f)
}
