// Command mgtrace renders the simulator's observability output: pipetrace
// files become text pipeline diagrams (one row per uop, one column per
// cycle, in the style of gem5's O3 pipeline viewer), and interval files
// become summaries of the run's trouble spots — top stall windows,
// coverage dips, and Slack-Dynamic disable storms.
//
// Usage:
//
//	mgtrace -trace run.pipetrace.jsonl [-start seq] [-count n] [-cols n]
//	mgtrace -summary run.intervals.jsonl [-top k]
//	mgtrace -csv run.intervals.jsonl > run.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "pipetrace JSONL file to render as a stage diagram")
		start     = flag.Int64("start", 0, "first uop sequence number to render")
		count     = flag.Int("count", 64, "max uop rows to render")
		cols      = flag.Int("cols", 160, "max diagram columns (cycles)")
		summary   = flag.String("summary", "", "interval JSONL file to summarize")
		top       = flag.Int("top", 5, "how many stall windows / coverage dips / storms to list")
		csvFile   = flag.String("csv", "", "interval JSONL file to convert to CSV on stdout")
	)
	flag.Parse()

	did := false
	if *traceFile != "" {
		did = true
		uops, events, err := readTrace(*traceFile)
		if err != nil {
			fail(err)
		}
		if err := renderTrace(os.Stdout, uops, events, *start, *count, *cols); err != nil {
			fail(err)
		}
	}
	if *summary != "" {
		did = true
		ivs, err := readIntervals(*summary)
		if err != nil {
			fail(err)
		}
		summarizeIntervals(os.Stdout, *summary, ivs, *top)
	}
	if *csvFile != "" {
		did = true
		ivs, err := readIntervals(*csvFile)
		if err != nil {
			fail(err)
		}
		if err := obs.WriteIntervalsCSV(os.Stdout, ivs); err != nil {
			fail(err)
		}
	}
	if !did {
		fmt.Fprintln(os.Stderr, "mgtrace: one of -trace, -summary, -csv required")
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mgtrace:", err)
	os.Exit(1)
}

func readTrace(path string) ([]obs.UopTrace, []obs.TraceEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return obs.ReadPipetrace(f)
}

func readIntervals(path string) ([]obs.Interval, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadIntervals(f)
}
