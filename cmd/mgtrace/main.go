// Command mgtrace renders the simulator's observability output: pipetrace
// files become text pipeline diagrams (one row per uop, one column per
// cycle, in the style of gem5's O3 pipeline viewer), and interval files
// become summaries of the run's trouble spots — top stall windows,
// coverage dips, and Slack-Dynamic disable storms.
//
// Usage:
//
//	mgtrace -trace run.pipetrace.jsonl [-start seq] [-count n] [-cols n]
//	mgtrace -summary run.intervals.jsonl [-top k]
//	mgtrace -csv run.intervals.jsonl > run.csv
//	mgtrace -critpath run.pipetrace.jsonl [-config reduced] [-top k] [-attribjson f] [-attribcsv f]
//	mgtrace -spans sweep.trace
//	mgtrace -tojsonl run.pipetrace.bin > run.pipetrace.jsonl
//
// Pipetrace inputs (-trace, -critpath) may be either JSONL or the binary
// encoding written under -pipetrace-bin; the format is auto-detected. The
// -tojsonl mode converts a binary pipetrace to JSONL on stdout,
// byte-identical to what the run would have written with -pipetrace.
//
// The -spans mode validates a Chrome trace-event file produced by the
// -trace-out flag of mgreport/mgsim/mgselect (matched B/E pairs, monotonic
// timestamps) and prints a per-span-name duration summary.
//
// The -critpath mode runs the cycle-loss attribution engine
// (internal/critpath) over a pipetrace: it walks the critical path
// backwards through last-arriving edges and prints where the cycles went
// (inherent dataflow, mini-graph serialization, cache misses, branch
// mispredictions, structural stalls, replays), the per-template
// serialization scoreboard, and the worst static mini-graph sites.
// -config names the machine configuration the trace was produced under.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/critpath"
	"repro/internal/obs"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "pipetrace JSONL file to render as a stage diagram")
		start     = flag.Int64("start", 0, "first uop sequence number to render")
		count     = flag.Int("count", 64, "max uop rows to render")
		cols      = flag.Int("cols", 160, "max diagram columns (cycles)")
		summary   = flag.String("summary", "", "interval JSONL file to summarize")
		top       = flag.Int("top", 5, "how many stall windows / coverage dips / storms to list")
		csvFile   = flag.String("csv", "", "interval JSONL file to convert to CSV on stdout")
		critFile  = flag.String("critpath", "", "pipetrace JSONL file to run cycle-loss attribution on")
		cfgName   = flag.String("config", "reduced", "machine configuration the trace was produced under")
		attribJS  = flag.String("attribjson", "", "also write the attribution report as JSON to this file")
		attribCSV = flag.String("attribcsv", "", "also write the serialization scoreboard as CSV to this file")
		spansFile = flag.String("spans", "", "Chrome trace file (from -trace-out) to validate and summarize")
		toJSONL   = flag.String("tojsonl", "", "binary pipetrace file to convert to JSONL on stdout")
	)
	flag.Parse()

	did := false
	if *traceFile != "" {
		did = true
		uops, events, err := readTrace(*traceFile)
		if err != nil {
			fail(err)
		}
		if err := renderTrace(os.Stdout, uops, events, *start, *count, *cols); err != nil {
			fail(err)
		}
	}
	if *summary != "" {
		did = true
		ivs, err := readIntervals(*summary)
		if err != nil {
			fail(err)
		}
		summarizeIntervals(os.Stdout, *summary, ivs, *top)
	}
	if *csvFile != "" {
		did = true
		ivs, err := readIntervals(*csvFile)
		if err != nil {
			fail(err)
		}
		if err := obs.WriteIntervalsCSV(os.Stdout, ivs); err != nil {
			fail(err)
		}
	}
	if *critFile != "" {
		did = true
		cfg, err := configByName(*cfgName)
		if err != nil {
			fail(err)
		}
		uops, events, err := readTrace(*critFile)
		if err != nil {
			fail(err)
		}
		rep, err := critpath.Analyze(uops, events, critpath.ParamsFor(cfg))
		if err != nil {
			fail(err)
		}
		if err := critpath.WriteText(os.Stdout, *critFile, rep, *top); err != nil {
			fail(err)
		}
		if err := exportCritpath(rep, *attribJS, *attribCSV); err != nil {
			fail(err)
		}
	}
	if *spansFile != "" {
		did = true
		if err := summarizeSpans(os.Stdout, *spansFile); err != nil {
			fail(err)
		}
	}
	if *toJSONL != "" {
		did = true
		f, err := os.Open(*toJSONL)
		if err != nil {
			fail(err)
		}
		err = obs.ConvertPipetrace(f, os.Stdout)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
	if !did {
		fmt.Fprintln(os.Stderr, "mgtrace: one of -trace, -summary, -csv, -critpath, -spans, -tojsonl required")
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mgtrace:", err)
	os.Exit(1)
}

func readTrace(path string) ([]obs.UopTrace, []obs.TraceEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return obs.ReadPipetrace(f)
}

func readIntervals(path string) ([]obs.Interval, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadIntervals(f)
}
