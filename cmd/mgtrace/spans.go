package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"repro/internal/metrics"
)

// summarizeSpans validates a Chrome trace-event file written by -trace-out
// and prints a per-name span summary: counts and aggregate durations, plus
// the process/thread rows the trace occupies. A structurally invalid trace
// (unmatched B/E, time travel) is an error.
func summarizeSpans(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := metrics.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	if err := metrics.ValidateChromeTrace(tr); err != nil {
		return fmt.Errorf("%s: invalid trace: %w", path, err)
	}

	type agg struct {
		count   int
		totalUS float64
		cpuMS   float64
		hasCPU  bool
	}
	byName := map[string]*agg{}
	rows := map[[2]int]bool{}
	// Durations via per-(pid,tid) name stacks — validation above guarantees
	// the B/E pairing is sound.
	open := map[[2]int][]metrics.TraceEvent{}
	spans := 0
	for _, e := range tr.TraceEvents {
		k := [2]int{e.Pid, e.Tid}
		switch e.Ph {
		case "B":
			rows[k] = true
			open[k] = append(open[k], e)
		case "E":
			st := open[k]
			b := st[len(st)-1]
			open[k] = st[:len(st)-1]
			a := byName[b.Name]
			if a == nil {
				a = &agg{}
				byName[b.Name] = a
			}
			a.count++
			a.totalUS += e.Ts - b.Ts
			// CPU accounting (runs with -trace-out) stamps cpu_ms on the
			// opening event's args.
			if v, ok := b.Args["cpu_ms"]; ok {
				if ms, perr := strconv.ParseFloat(v, 64); perr == nil {
					a.cpuMS += ms
					a.hasCPU = true
				}
			}
			spans++
		}
	}

	fmt.Fprintf(w, "%s: valid Chrome trace, %d spans across %d thread rows\n", path, spans, len(rows))
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if byName[names[i]].totalUS != byName[names[j]].totalUS {
			return byName[names[i]].totalUS > byName[names[j]].totalUS
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(w, "%-24s %8s %14s %14s %9s\n", "span", "count", "total ms", "cpu ms", "cpu/wall")
	for _, n := range names {
		a := byName[n]
		cpu, ratio := "–", "–"
		if a.hasCPU {
			cpu = fmt.Sprintf("%.3f", a.cpuMS)
			if a.totalUS > 0 {
				ratio = fmt.Sprintf("%.2fx", a.cpuMS/(a.totalUS/1e3))
			}
		}
		fmt.Fprintf(w, "%-24s %8d %14.3f %14s %9s\n", n, a.count, a.totalUS/1e3, cpu, ratio)
	}
	return nil
}
