package main

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// summarizeIntervals prints an overview of an interval time series and its
// trouble spots: the windows with the most rename-stall cycles, the lowest
// mini-graph coverage, and the heaviest Slack-Dynamic disable activity.
func summarizeIntervals(w io.Writer, name string, ivs []obs.Interval, top int) {
	if len(ivs) == 0 {
		fmt.Fprintf(w, "%s: no intervals\n", name)
		return
	}
	var cycles, instrs, uops, stalls, disables, reenables int64
	var covWeighted float64
	for i := range ivs {
		iv := &ivs[i]
		cycles += iv.Cycles
		instrs += iv.Instrs
		uops += iv.Uops
		stalls += iv.Stalls()
		disables += iv.Disables
		reenables += iv.Reenables
		covWeighted += iv.Coverage * float64(iv.Instrs)
	}
	ipc := float64(instrs) / float64(cycles)
	upc := float64(uops) / float64(cycles)
	cov := 0.0
	if instrs > 0 {
		cov = covWeighted / float64(instrs)
	}
	fmt.Fprintf(w, "%s: %d intervals, %d cycles, %d instrs\n", name, len(ivs), cycles, instrs)
	fmt.Fprintf(w, "  ipc %.3f  upc %.3f  coverage %.3f  stall-cycles %d  disables %d  reenables %d\n",
		ipc, upc, cov, stalls, disables, reenables)

	window := func(iv *obs.Interval) string {
		return fmt.Sprintf("cycles %d..%d", iv.Cycle-iv.Cycles+1, iv.Cycle)
	}

	// Top stall windows: the intervals where rename spent the most cycles
	// blocked, with the per-cause breakdown.
	byStalls := order(ivs, func(a, b *obs.Interval) bool { return a.Stalls() > b.Stalls() })
	fmt.Fprintf(w, "\ntop stall windows:\n")
	for k := 0; k < top && k < len(byStalls); k++ {
		iv := byStalls[k]
		if iv.Stalls() == 0 {
			break
		}
		fmt.Fprintf(w, "  %-24s stalls %6d (iq %d, rob %d, regs %d, lq %d, sq %d)  ipc %.3f\n",
			window(iv), iv.Stalls(), iv.StallIQ, iv.StallROB, iv.StallRegs, iv.StallLQ, iv.StallSQ, iv.IPC)
	}

	// Coverage dips: where mini-graphs stopped covering the dynamic stream
	// (template disables, outlined execution, or uncovered code paths).
	if cov > 0 {
		byCov := order(ivs, func(a, b *obs.Interval) bool { return a.Coverage < b.Coverage })
		fmt.Fprintf(w, "\ncoverage dips:\n")
		for k := 0; k < top && k < len(byCov); k++ {
			iv := byCov[k]
			fmt.Fprintf(w, "  %-24s coverage %.3f  ipc %.3f  disabled templates %d\n",
				window(iv), iv.Coverage, iv.IPC, iv.DisabledTemplates)
		}
	}

	// Disable storms: bursts of Slack-Dynamic template disables.
	if disables > 0 {
		byDis := order(ivs, func(a, b *obs.Interval) bool { return a.Disables > b.Disables })
		fmt.Fprintf(w, "\ndisable storms:\n")
		for k := 0; k < top && k < len(byDis); k++ {
			iv := byDis[k]
			if iv.Disables == 0 {
				break
			}
			fmt.Fprintf(w, "  %-24s disables %4d  harmful %5d  serialized %5d  now disabled %d\n",
				window(iv), iv.Disables, iv.Harmful, iv.Serialized, iv.DisabledTemplates)
		}
	}
}

// order returns interval pointers sorted by less, ties broken by cycle
// (stable on file order).
func order(ivs []obs.Interval, less func(a, b *obs.Interval) bool) []*obs.Interval {
	out := make([]*obs.Interval, len(ivs))
	for i := range ivs {
		out[i] = &ivs[i]
	}
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}
