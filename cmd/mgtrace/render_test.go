package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/prog"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chain3Trace simulates a loop whose body starts with a 3-instruction
// dependence chain — a known 3-wide mini-graph — under an attached
// pipetrace, and returns the parsed records.
func chain3Trace(t *testing.T) ([]obs.UopTrace, []obs.TraceEvent) {
	t.Helper()
	b := prog.NewBuilder("chain3")
	b.Li(1, 4)
	b.Li(2, 7)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Addi(2, 2, 2)
	b.Addi(2, 2, 3)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	p := b.MustBuild()

	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	freq := make([]int64, len(p.Code))
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	cands := minigraph.Enumerate(p, minigraph.DefaultLimits())
	sel := minigraph.Select(p, cands, freq, minigraph.DefaultSelectConfig())
	if len(sel.Instances) == 0 {
		t.Fatal("nothing selected")
	}

	var buf bytes.Buffer
	watch := &obs.Observer{Trace: obs.NewPipetrace(&buf)}
	if _, err := pipeline.RunObserved(p, res.Trace, pipeline.Reduced(),
		pipeline.MGConfig{Selection: sel}, nil, watch); err != nil {
		t.Fatal(err)
	}
	if err := watch.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	uops, events, err := obs.ReadPipetrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return uops, events
}

func TestChain3HandleSemantics(t *testing.T) {
	uops, _ := chain3Trace(t)
	// The loop body yields two handles per iteration: the 3-instruction
	// Addi chain and the 2-wide Subi+Bnez pair. The acceptance property
	// is about the former: one issue slot for the whole mini-graph, with
	// the constituents executing serially and committing in order.
	chains := 0
	lastCommit := int64(-1)
	for _, u := range uops {
		if u.Squashed {
			continue
		}
		if u.Commit < lastCommit {
			t.Errorf("uop %d commits at %d, before cycle %d: out of order", u.Seq, u.Commit, lastCommit)
		}
		lastCommit = u.Commit
		if u.Kind != "handle" {
			continue
		}
		if u.Issue < 0 {
			t.Errorf("handle seq %d never issued", u.Seq)
		}
		if u.N != 3 {
			continue
		}
		chains++
		// A single issue timestamp for the handle; done lags issue by at
		// least the 3-deep dependence chain's serial execution.
		if u.Done < u.Issue+3 {
			t.Errorf("handle seq %d: done %d, issue %d — a 3-deep chain needs >= 3 exec cycles",
				u.Seq, u.Done, u.Issue)
		}
	}
	if chains == 0 {
		t.Fatal("no 3-instruction handles committed")
	}
}

func TestChain3Golden(t *testing.T) {
	uops, events := chain3Trace(t)
	var out bytes.Buffer
	if err := renderTrace(&out, uops, events, 0, 24, 120); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "chain3.golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/mgtrace -update` to create goldens)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("diagram drifted from golden.\n got:\n%s\nwant:\n%s", out.Bytes(), want)
	}
}
