// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, tagging it with run metadata
// passed in from the environment (the tool itself never reads a clock or
// the repository — `make benchjson` supplies both).
//
// Usage:
//
//	go test -run NONE -bench . -benchmem ./... | benchjson -rev $(git rev-parse --short HEAD) -date $(date -u +%F)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`  // -1 without -benchmem
	AllocsPerOp int64   `json:"allocsPerOp"` // -1 without -benchmem
}

// Doc is the output document.
type Doc struct {
	Rev        string      `json:"rev"`
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		rev  = flag.String("rev", "unknown", "source revision the benchmarks ran at")
		date = flag.String("date", "unknown", "run date (supplied by the caller)")
	)
	flag.Parse()

	benches, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	doc := Doc{Rev: *rev, Date: *date, Go: runtime.Version(), Benchmarks: benches}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench extracts benchmark result lines, ignoring everything else
// (ok/PASS lines, pkg headers, failures are the caller's problem).
func parseBench(sc *bufio.Scanner) ([]Benchmark, error) {
	var out []Benchmark
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Name-N iters ns "ns/op" [bytes "B/op" allocs "allocs/op"]
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		b := Benchmark{Name: f[0], BytesPerOp: -1, AllocsPerOp: -1}
		var err error
		if b.Iters, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		if b.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
