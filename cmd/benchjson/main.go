// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, tagging it with run metadata
// passed in from the environment (the tool itself never reads a clock or
// the repository — `make benchjson` supplies both) plus a fingerprint of
// the machine it ran on. When diffing, a baseline recorded on a different
// machine draws a warning (ns/op deltas then measure the hardware, not
// the code); -strict-host turns the warning into a failure.
//
// With -baseline it also diffs the fresh numbers against a previously
// committed document, prints per-benchmark ns/op and allocs/op deltas on
// stderr, and exits non-zero when any shared benchmark regressed by more
// than -max-regress in ns/op or grew allocs/op by more than
// -max-alloc-regress (the JSON is still written first, so the artifact
// survives a failing gate for inspection). The alloc gate only applies
// where both runs carry -benchmem columns.
//
// Usage:
//
//	go test -run NONE -bench . -benchmem ./... | benchjson -rev $(git rev-parse --short HEAD) -date $(date -u +%F)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/ledger"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`  // -1 without -benchmem
	AllocsPerOp int64   `json:"allocsPerOp"` // -1 without -benchmem
}

// Doc is the output document. Host is the machine fingerprint of the run;
// a nil Host (documents from before the field existed) compares as
// unknown, not as a mismatch.
type Doc struct {
	Rev        string       `json:"rev"`
	Date       string       `json:"date"`
	Go         string       `json:"go"`
	Host       *ledger.Host `json:"host,omitempty"`
	Benchmarks []Benchmark  `json:"benchmarks"`
}

func main() {
	var (
		rev      = flag.String("rev", "unknown", "source revision the benchmarks ran at")
		date     = flag.String("date", "unknown", "run date (supplied by the caller)")
		baseline = flag.String("baseline", "", "prior benchjson document to diff against")
		maxReg   = flag.Float64("max-regress", 0.15, "ns/op regression vs -baseline that fails the run")
		maxAlloc = flag.Float64("max-alloc-regress", 0.25, "allocs/op growth vs -baseline that fails the run")
		strict   = flag.Bool("strict-host", false, "fail (instead of warn) when -baseline was recorded on a different machine")
	)
	flag.Parse()

	benches, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	benches = bestOf(benches)
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	host := ledger.CurrentHost()
	doc := Doc{Rev: *rev, Date: *date, Go: runtime.Version(), Host: &host, Benchmarks: benches}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var base Doc
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	// Wall-clock benchmarks are only comparable on the same machine. Warn
	// on a cross-host baseline (the diff still prints — trends survive a
	// hardware change even if the gate threshold doesn't), fail under
	// -strict-host.
	if crossHost(base, host) {
		fmt.Fprintf(os.Stderr, "benchjson: WARNING: baseline recorded on a different machine\n  baseline: %s\n  current:  %s\n",
			base.Host.Summary(), host.Summary())
		if *strict {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL: -strict-host set — re-record the baseline on this machine")
			os.Exit(2)
		}
	}
	lines, regressions := diffDocs(doc, base, *maxReg, *maxAlloc)
	fmt.Fprintf(os.Stderr, "benchjson: vs baseline %s (rev %s)\n", *baseline, base.Rev)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, "  "+l)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: %d benchmark(s) regressed (limits: +%.0f%% ns/op, +%.0f%% allocs/op): %s\n",
			len(regressions), *maxReg*100, *maxAlloc*100, strings.Join(regressions, ", "))
		os.Exit(2)
	}
}

// crossHost reports whether the baseline document was recorded on a
// different machine than cur. Baselines from before the host field
// existed compare as unknown, never as a mismatch.
func crossHost(base Doc, cur ledger.Host) bool {
	return base.Host != nil && !base.Host.SameMachine(cur)
}

// bestOf collapses repeated runs of the same benchmark (`go test -count N`)
// into one row keeping the fastest ns/op — the run least disturbed by
// scheduler noise, which is what a regression gate should compare.
func bestOf(benches []Benchmark) []Benchmark {
	byName := make(map[string]int)
	var out []Benchmark
	for _, b := range benches {
		i, seen := byName[b.Name]
		if !seen {
			byName[b.Name] = len(out)
			out = append(out, b)
			continue
		}
		if b.NsPerOp < out[i].NsPerOp {
			out[i] = b
		}
	}
	return out
}

// benchKey normalizes a benchmark name for cross-run matching by dropping
// the -GOMAXPROCS suffix go test appends on multi-proc runs.
func benchKey(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// diffDocs compares cur against base benchmark by benchmark. It returns
// human-readable delta lines (in cur's order, then base-only leftovers) and
// the names of benchmarks whose ns/op regressed by more than tol or whose
// allocs/op grew by more than allocTol (suffixed "(allocs)"). The alloc
// gate applies only where both rows carry -benchmem data; growing from
// zero allocations is always a regression.
func diffDocs(cur, base Doc, tol, allocTol float64) (lines, regressions []string) {
	prior := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		prior[benchKey(b.Name)] = b
	}
	for _, b := range cur.Benchmarks {
		key := benchKey(b.Name)
		old, ok := prior[key]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-44s %12.0f ns/op  (new)", key, b.NsPerOp))
			continue
		}
		delete(prior, key)
		pct := (b.NsPerOp - old.NsPerOp) / old.NsPerOp
		line := fmt.Sprintf("%-44s %12.0f -> %12.0f ns/op  %+6.1f%%",
			key, old.NsPerOp, b.NsPerOp, pct*100)
		if pct > tol {
			regressions = append(regressions, key)
		}
		if b.AllocsPerOp >= 0 && old.AllocsPerOp >= 0 {
			line += fmt.Sprintf("  %6d -> %6d allocs/op", old.AllocsPerOp, b.AllocsPerOp)
			if allocsRegressed(old.AllocsPerOp, b.AllocsPerOp, allocTol) {
				regressions = append(regressions, key+" (allocs)")
			}
		}
		lines = append(lines, line)
	}
	for _, b := range base.Benchmarks {
		if _, left := prior[benchKey(b.Name)]; left {
			lines = append(lines, fmt.Sprintf("%-44s %12.0f ns/op  (gone)", benchKey(b.Name), b.NsPerOp))
		}
	}
	return lines, regressions
}

// allocsRegressed reports whether growing from old to new allocs/op
// exceeds tol. A benchmark that allocated nothing must stay at nothing:
// any growth from zero fails, since no ratio can express it.
func allocsRegressed(old, new int64, tol float64) bool {
	if old == 0 {
		return new > 0
	}
	return float64(new-old)/float64(old) > tol
}

// parseBench extracts benchmark result lines, ignoring everything else
// (ok/PASS lines, pkg headers, failures are the caller's problem).
func parseBench(sc *bufio.Scanner) ([]Benchmark, error) {
	var out []Benchmark
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Name-N iters ns "ns/op" [bytes "B/op" allocs "allocs/op"]
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		b := Benchmark{Name: f[0], BytesPerOp: -1, AllocsPerOp: -1}
		var err error
		if b.Iters, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		if b.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
