package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/pipeline
cpu: something
BenchmarkSimulatorSingleton-8   	     100	   1234567 ns/op	    4096 B/op	      12 allocs/op
BenchmarkSimulatorMiniGraphs-8  	      50	   2345678 ns/op
PASS
ok  	repro/internal/pipeline	3.456s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkSimulatorSingleton-8" || b.Iters != 100 ||
		b.NsPerOp != 1234567 || b.BytesPerOp != 4096 || b.AllocsPerOp != 12 {
		t.Errorf("first benchmark parsed wrong: %+v", b)
	}
	if benches[1].BytesPerOp != -1 || benches[1].AllocsPerOp != -1 {
		t.Errorf("missing -benchmem fields should be -1: %+v", benches[1])
	}
}

// The committed baseline written by `make benchjson` must parse back and
// carry plausible contents — this is the validity check for the artifact
// itself, not its numbers.
func TestCommittedBaselineParses(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_PR3.json"))
	if err != nil {
		t.Fatalf("%v (run `make benchjson` to regenerate the baseline)", err)
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Rev == "" || doc.Date == "" || doc.Go == "" {
		t.Errorf("baseline missing metadata: %+v", doc)
	}
	if len(doc.Benchmarks) == 0 {
		t.Fatal("baseline carries no benchmarks")
	}
	for _, b := range doc.Benchmarks {
		if b.Name == "" || b.Iters <= 0 || b.NsPerOp <= 0 {
			t.Errorf("implausible benchmark row: %+v", b)
		}
	}
}
