package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ledger"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/pipeline
cpu: something
BenchmarkSimulatorSingleton-8   	     100	   1234567 ns/op	    4096 B/op	      12 allocs/op
BenchmarkSimulatorMiniGraphs-8  	      50	   2345678 ns/op
PASS
ok  	repro/internal/pipeline	3.456s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkSimulatorSingleton-8" || b.Iters != 100 ||
		b.NsPerOp != 1234567 || b.BytesPerOp != 4096 || b.AllocsPerOp != 12 {
		t.Errorf("first benchmark parsed wrong: %+v", b)
	}
	if benches[1].BytesPerOp != -1 || benches[1].AllocsPerOp != -1 {
		t.Errorf("missing -benchmem fields should be -1: %+v", benches[1])
	}
}

// The committed baselines written by `make benchjson` must parse back and
// carry plausible contents — this is the validity check for the artifacts
// themselves, not their numbers.
func TestCommittedBaselineParses(t *testing.T) {
	for _, file := range []string{"BENCH_PR3.json", "BENCH_PR4.json", "BENCH_PR5.json", "BENCH_PR6.json"} {
		raw, err := os.ReadFile(filepath.Join("..", "..", file))
		if err != nil {
			t.Fatalf("%v (run `make benchjson` to regenerate the baseline)", err)
		}
		var doc Doc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if doc.Rev == "" || doc.Date == "" || doc.Go == "" {
			t.Errorf("%s: baseline missing metadata: %+v", file, doc)
		}
		if len(doc.Benchmarks) == 0 {
			t.Fatalf("%s: baseline carries no benchmarks", file)
		}
		for _, b := range doc.Benchmarks {
			if b.Name == "" || b.Iters <= 0 || b.NsPerOp <= 0 {
				t.Errorf("%s: implausible benchmark row: %+v", file, b)
			}
		}
	}
}

func TestBestOf(t *testing.T) {
	in := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1200, AllocsPerOp: 9},
		{Name: "BenchmarkB", NsPerOp: 500},
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 7},
		{Name: "BenchmarkA", NsPerOp: 1100, AllocsPerOp: 8},
	}
	out := bestOf(in)
	if len(out) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(out), out)
	}
	if out[0].Name != "BenchmarkA" || out[0].NsPerOp != 1000 || out[0].AllocsPerOp != 7 {
		t.Errorf("fastest BenchmarkA row not kept: %+v", out[0])
	}
	if out[1].Name != "BenchmarkB" || out[1].NsPerOp != 500 {
		t.Errorf("single-run benchmark mangled: %+v", out[1])
	}
}

func TestBenchKey(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":    "BenchmarkFoo",
		"BenchmarkFoo-16":   "BenchmarkFoo",
		"BenchmarkFoo":      "BenchmarkFoo",
		"BenchmarkFoo/x-2":  "BenchmarkFoo/x",
		"BenchmarkFoo-bar":  "BenchmarkFoo-bar",
		"BenchmarkFoo/a-b4": "BenchmarkFoo/a-b4",
	}
	for in, want := range cases {
		if got := benchKey(in); got != want {
			t.Errorf("benchKey(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCrossHost covers the baseline host check: same machine and legacy
// fingerprint-less baselines pass, a different machine is flagged, and
// GOMAXPROCS/Go-version drift alone never counts as a host change.
func TestCrossHost(t *testing.T) {
	cur := ledger.CurrentHost()
	if crossHost(Doc{}, cur) {
		t.Error("baseline without a host fingerprint must not mismatch")
	}
	same := cur
	same.GOMAXPROCS++
	same.Go = "go0.0"
	if crossHost(Doc{Host: &same}, cur) {
		t.Error("GOMAXPROCS/Go drift flagged as a host change")
	}
	other := cur
	other.Hostname = cur.Hostname + "-other"
	if !crossHost(Doc{Host: &other}, cur) {
		t.Error("different hostname not flagged")
	}
}

func TestDiffDocs(t *testing.T) {
	base := Doc{Rev: "old", Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: -1},
		{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: -1},
		{Name: "BenchmarkGone", NsPerOp: 500, AllocsPerOp: -1},
	}}
	cur := Doc{Rev: "new", Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", NsPerOp: 1100, AllocsPerOp: -1},  // +10%: within tolerance
		{Name: "BenchmarkB-8", NsPerOp: 2400, AllocsPerOp: -1},  // +20%: regression
		{Name: "BenchmarkNew-8", NsPerOp: 300, AllocsPerOp: -1}, // no baseline: never fails
	}}
	lines, regressions := diffDocs(cur, base, 0.15, 0.25)
	if len(lines) != 4 {
		t.Fatalf("got %d delta lines, want 4:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if len(regressions) != 1 || regressions[0] != "BenchmarkB" {
		t.Errorf("regressions = %v, want [BenchmarkB]", regressions)
	}

	// An improvement (negative delta) is never a regression, whatever tol.
	cur.Benchmarks[0].NsPerOp = 900
	cur.Benchmarks[1].NsPerOp = 100
	if _, reg := diffDocs(cur, base, 0, 0); len(reg) != 0 {
		t.Errorf("improvement flagged as regression: %v", reg)
	}
}

func TestDiffDocsAllocGate(t *testing.T) {
	base := Doc{Rev: "old", Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkZero", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "BenchmarkNoMem", NsPerOp: 1000, AllocsPerOp: -1},
	}}
	cur := Doc{Rev: "new", Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", NsPerOp: 1000, AllocsPerOp: 120},    // +20%: within tolerance
		{Name: "BenchmarkB-8", NsPerOp: 1000, AllocsPerOp: 130},    // +30%: regression
		{Name: "BenchmarkZero-8", NsPerOp: 1000, AllocsPerOp: 1},   // 0 -> 1: regression
		{Name: "BenchmarkNoMem-8", NsPerOp: 1000, AllocsPerOp: 50}, // no baseline data: ungated
	}}
	lines, regressions := diffDocs(cur, base, 0.15, 0.25)
	want := []string{"BenchmarkB (allocs)", "BenchmarkZero (allocs)"}
	if strings.Join(regressions, ";") != strings.Join(want, ";") {
		t.Errorf("regressions = %v, want %v", regressions, want)
	}
	// Rows with -benchmem data on both sides carry the alloc delta.
	if !strings.Contains(lines[0], "100 ->    120 allocs/op") {
		t.Errorf("alloc delta missing from line: %q", lines[0])
	}
	if strings.Contains(lines[3], "allocs/op") {
		t.Errorf("row without baseline -benchmem data should not print an alloc delta: %q", lines[3])
	}

	// Shrinking allocs is never a regression, and zero staying zero is fine.
	cur.Benchmarks[0].AllocsPerOp = 100
	cur.Benchmarks[1].AllocsPerOp = 10
	cur.Benchmarks[2].AllocsPerOp = 0
	if _, reg := diffDocs(cur, base, 0.15, 0); len(reg) != 0 {
		t.Errorf("alloc improvement flagged as regression: %v", reg)
	}
}
