package minigraph

import "repro/internal/prog"

// OutlineBase is the virtual address region holding outlined mini-graph
// bodies. It is distant from the inline code so outlined execution touches
// different instruction-cache lines, as with the paper's encoding.
const OutlineBase = 0x0080_0000

// Layout models the transformed ("outlined") code layout of a program under
// a selection. In the transformed binary, each selected mini-graph's body
// is removed from the main line and replaced by a single handle word; the
// remaining code compacts. The body lives in the outline region, bracketed
// by the handle word (a nop on non-mini-graph processors) and a jump back.
//
// The pipeline uses InlineAddr for normal fetch (amplified footprint) and
// OutlineAddr plus JumpBackAddr when a Slack-Dynamic-disabled mini-graph
// must execute in outlined singleton form (the 2-jump penalty).
type Layout struct {
	inline   []uint32 // per static index; 0 for non-head mini-graph members
	outline  []uint32 // per static index; 0 for instructions not in a mini-graph
	jumpBack map[int]uint32
	// InlineWords is the size of the compacted inline code in words.
	InlineWords int
}

// NewLayout computes the transformed layout.
func NewLayout(p *prog.Program, sel *Selection) *Layout {
	l := &Layout{
		inline:   make([]uint32, len(p.Code)),
		outline:  make([]uint32, len(p.Code)),
		jumpBack: make(map[int]uint32),
	}
	next := uint32(prog.CodeBase)
	for i := 0; i < len(p.Code); i++ {
		if in := sel.InstanceAt(i); in != nil {
			l.inline[i] = next // the handle occupies one inline slot
			next += 4
			i += in.N - 1 // members get no inline slots
			continue
		}
		l.inline[i] = next
		next += 4
	}
	l.InlineWords = int(next-prog.CodeBase) / 4

	obase := uint32(OutlineBase)
	for ii := range sel.Instances {
		in := &sel.Instances[ii]
		// Outlined body: [special/nop][N constituents][jump back].
		for k := 0; k < in.N; k++ {
			l.outline[in.Start+k] = obase + 4*uint32(1+k)
		}
		l.jumpBack[in.Start] = obase + 4*uint32(1+in.N)
		obase += 4 * uint32(in.N+2)
	}
	return l
}

// InlineAddr returns the transformed inline address of static instruction i
// (for mini-graph members other than the head, the head's handle address —
// the member is never fetched inline).
func (l *Layout) InlineAddr(i int) uint32 {
	if a := l.inline[i]; a != 0 {
		return a
	}
	// Member of a mini-graph: walk back to the handle.
	for j := i; j >= 0; j-- {
		if l.inline[j] != 0 {
			return l.inline[j]
		}
	}
	return prog.CodeBase
}

// OutlineAddr returns the outlined address of static instruction i, or 0 if
// i is not inside a selected mini-graph.
func (l *Layout) OutlineAddr(i int) uint32 { return l.outline[i] }

// JumpBackAddr returns the address of the jump-back word of the mini-graph
// starting at static index start (0 if none).
func (l *Layout) JumpBackAddr(start int) uint32 { return l.jumpBack[start] }

// IdentityLayout returns the untransformed layout (no mini-graphs), where
// every instruction keeps its original address.
func IdentityLayout(p *prog.Program) *Layout {
	l := &Layout{
		inline:      make([]uint32, len(p.Code)),
		outline:     make([]uint32, len(p.Code)),
		jumpBack:    map[int]uint32{},
		InlineWords: len(p.Code),
	}
	for i := range p.Code {
		l.inline[i] = prog.PCOf(i)
	}
	return l
}
