package minigraph

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// chain builds: r3 = r1+r2; r4 = r3+1; r5 = r4+2; store r5; halt.
// Interior values r3, r4 die inside; r5 dies at the store.
func chain(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("chain")
	b.Add(3, 1, 2)      // 0
	b.Addi(4, 3, 1)     // 1
	b.Addi(5, 4, 2)     // 2
	b.Stw(5, isa.SP, 0) // 3
	b.Halt()            // 4
	return b.MustBuild()
}

func findCand(cands []*Candidate, start, n int) *Candidate {
	for _, c := range cands {
		if c.Start == start && c.N == n {
			return c
		}
	}
	return nil
}

func TestEnumerateChain(t *testing.T) {
	p := chain(t)
	cands := Enumerate(p, DefaultLimits())
	// Windows within block [0,4): starts 0..2, lengths 2..4 clipped.
	// All are dataflow chains, all valid: (0,2) (0,3) (0,4) (1,2) (1,3) (2,2).
	if len(cands) != 6 {
		t.Fatalf("got %d candidates, want 6: %v", len(cands), cands)
	}
	c := findCand(cands, 0, 3)
	if c == nil {
		t.Fatal("missing candidate (0,3)")
	}
	// add r3,r1,r2; addi r4,r3; addi r5,r4 — inputs r1,r2; output r5 at 2.
	if len(c.ExternalIns) != 2 || c.ExternalIns[0] != 1 || c.ExternalIns[1] != 2 {
		t.Errorf("inputs = %v, want [r1 r2]", c.ExternalIns)
	}
	if c.OutputReg != 5 || c.OutputIdx != 2 {
		t.Errorf("output = %s@%d, want r5@2", c.OutputReg, c.OutputIdx)
	}
	if c.Serializing() {
		t.Error("fully-connected chain with inputs at instr 0 must not serialize")
	}
	if c.MemIdx != -1 {
		t.Errorf("MemIdx = %d, want -1", c.MemIdx)
	}
	// Internal deps: 1 depends on 0, 2 depends on 1.
	if c.InternalDeps(1) != 1 || c.InternalDeps(2) != 2 {
		t.Errorf("deps = %b,%b, want 1,10", c.InternalDeps(1), c.InternalDeps(2))
	}
}

func TestCandidateWithStore(t *testing.T) {
	p := chain(t)
	cands := Enumerate(p, DefaultLimits())
	c := findCand(cands, 1, 3) // addi; addi; stw
	if c == nil {
		t.Fatal("missing candidate (1,3)")
	}
	if c.MemIdx != 2 {
		t.Errorf("MemIdx = %d, want 2", c.MemIdx)
	}
	// Output: r5 is consumed by the store inside; r4, r5 dead after.
	if c.OutputReg != isa.NoReg {
		t.Errorf("output = %s, want none (store consumes r5)", c.OutputReg)
	}
	// sp is an external input first used at constituent 2 -> serializing.
	if !c.Serializing() {
		t.Error("sp input at the store (index 2) should make this serializing")
	}
}

func TestSerializingDetection(t *testing.T) {
	// mg: r3 = r1+1; r4 = r3+r2 — r2 is external, first used at index 1.
	b := prog.NewBuilder("ser")
	b.Addi(3, 1, 1)
	b.Add(4, 3, 2)
	b.Stw(4, isa.SP, 0)
	b.Halt()
	p := b.MustBuild()
	c := findCand(Enumerate(p, DefaultLimits()), 0, 2)
	if c == nil {
		t.Fatal("missing (0,2)")
	}
	if !c.Serializing() {
		t.Error("r2 first used at index 1 must be serializing")
	}
	si := c.SerializingInputs()
	if len(si) != 1 || c.ExternalIns[si[0]] != 2 {
		t.Errorf("serializing inputs = %v", si)
	}
	// r2 feeds the output producer (index 1 == OutputIdx): bounded.
	if c.OutputIdx != 1 {
		t.Fatalf("OutputIdx = %d, want 1", c.OutputIdx)
	}
	if !c.BoundedSerialization() {
		t.Error("serializing input feeding the output instruction is bounded")
	}
}

func TestUnboundedSerializationFig4d(t *testing.T) {
	// Figure 4d shape: the register output is produced by constituent 0;
	// a serializing input feeds constituent 1, which is "downstream" of
	// the output and has no path to it — unbounded delay.
	// mg(0,3): r3 = r1+1 (output); r4 = r2+2; store r4.
	b := prog.NewBuilder("unb")
	b.Addi(3, 1, 1)     // 0: produces r3 (live after the window)
	b.Addi(4, 2, 2)     // 1: r2 external, serializing
	b.Stw(4, isa.SP, 0) // 2: consumes r4 internally
	b.Stw(3, isa.SP, 4) // keeps r3 live after the window
	b.Halt()
	p := b.MustBuild()
	c := findCand(Enumerate(p, DefaultLimits()), 0, 3)
	if c == nil {
		t.Fatal("missing (0,3)")
	}
	if c.OutputReg != 3 || c.OutputIdx != 0 {
		t.Fatalf("output = %s@%d, want r3@0", c.OutputReg, c.OutputIdx)
	}
	if !c.Serializing() {
		t.Fatal("r2 at index 1 should serialize")
	}
	if c.BoundedSerialization() {
		t.Error("Figure 4d shape must be classified unbounded")
	}
}

func TestTwoOutputsRejected(t *testing.T) {
	b := prog.NewBuilder("two")
	b.Addi(3, 1, 1)
	b.Addi(4, 2, 2)
	b.Stw(3, isa.SP, 0)
	b.Stw(4, isa.SP, 4)
	b.Halt()
	p := b.MustBuild()
	if c := findCand(Enumerate(p, DefaultLimits()), 0, 2); c != nil {
		t.Errorf("window with two live outputs accepted: %v", c)
	}
}

func TestUnboundedDisconnected(t *testing.T) {
	// Disconnected mini-graph: r3 = r1+1 (output, live after);
	// store r2 (independent). Serializing input r2 at index 1 has no path
	// to the output producer (index 0) -> unbounded.
	b := prog.NewBuilder("disc")
	b.Addi(3, 1, 1)     // 0: output producer
	b.Stw(2, isa.SP, 0) // 1: independent store, reads external r2 and sp
	b.Stw(3, isa.SP, 4) // consumes r3 later (keeps it live after window)
	b.Halt()
	p := b.MustBuild()
	c := findCand(Enumerate(p, DefaultLimits()), 0, 2)
	if c == nil {
		t.Fatal("missing (0,2)")
	}
	if c.OutputReg != 3 || c.OutputIdx != 0 {
		t.Fatalf("output = %s@%d, want r3@0", c.OutputReg, c.OutputIdx)
	}
	if !c.Serializing() {
		t.Fatal("store inputs at index 1 should serialize")
	}
	if c.BoundedSerialization() {
		t.Error("serializing input downstream of the output must be unbounded")
	}
}

func TestBranchOnlyLast(t *testing.T) {
	b := prog.NewBuilder("br")
	b.Label("top")
	b.Subi(1, 1, 1)
	b.Bnez(1, "top")
	b.Halt()
	p := b.MustBuild()
	c := findCand(Enumerate(p, DefaultLimits()), 0, 2)
	if c == nil {
		t.Fatal("subi+bnez should be a candidate")
	}
	if c.CtrlIdx != 1 {
		t.Errorf("CtrlIdx = %d, want 1", c.CtrlIdx)
	}
	// r1 live around the loop: it is the output, produced at 0.
	if c.OutputReg != 1 || c.OutputIdx != 0 {
		t.Errorf("output = %s@%d, want r1@0", c.OutputReg, c.OutputIdx)
	}
}

func TestIneligibleOps(t *testing.T) {
	b := prog.NewBuilder("inel")
	b.Mul(3, 1, 2) // complex: not eligible
	b.Addi(4, 3, 1)
	b.Stw(4, isa.SP, 0)
	b.Halt()
	p := b.MustBuild()
	cands := Enumerate(p, DefaultLimits())
	for _, c := range cands {
		if c.Contains(0) {
			t.Errorf("candidate %v contains the mul", c)
		}
	}
}

func TestTwoMemOpsRejected(t *testing.T) {
	b := prog.NewBuilder("twomem")
	b.Ldw(1, isa.SP, 0)
	b.Ldw(2, isa.SP, 4)
	b.Add(0, 1, 2)
	b.Halt()
	p := b.MustBuild()
	if c := findCand(Enumerate(p, DefaultLimits()), 0, 2); c != nil {
		t.Errorf("two loads accepted: %v", c)
	}
	// ld + add is fine.
	if c := findCand(Enumerate(p, DefaultLimits()), 1, 2); c == nil {
		t.Error("ldw+add should be a candidate")
	}
}

func TestMaxInputsRespected(t *testing.T) {
	// add r5,r1,r2 ; add r6,r3,r4 -> 4 external inputs, too many.
	b := prog.NewBuilder("ins")
	b.Add(5, 1, 2)
	b.Add(6, 3, 4)
	b.Add(7, 5, 6)
	b.Stw(7, isa.SP, 0)
	b.Halt()
	p := b.MustBuild()
	if c := findCand(Enumerate(p, DefaultLimits()), 0, 2); c != nil {
		t.Errorf("4-input window accepted: %v", c)
	}
	// The 3-wide window (0,3) has 4 external inputs too; rejected.
	if c := findCand(Enumerate(p, DefaultLimits()), 0, 3); c != nil {
		t.Errorf("4-input window accepted: %v", c)
	}
	// (1,2): add r6,r3,r4; add r7,r5,r6 -> inputs r3,r4,r5 = 3, OK.
	if c := findCand(Enumerate(p, DefaultLimits()), 1, 2); c == nil {
		t.Error("3-input window should be accepted")
	}
}

func TestWindowsStayInBlock(t *testing.T) {
	b := prog.NewBuilder("blocks")
	b.Addi(1, 1, 1)
	b.Label("l")
	b.Addi(2, 2, 1)
	b.Addi(3, 3, 1)
	b.Bnez(3, "l")
	b.Halt()
	p := b.MustBuild()
	for _, c := range Enumerate(p, DefaultLimits()) {
		if p.BlockOf[c.Start] != p.BlockOf[c.End()-1] {
			t.Errorf("candidate %v spans blocks", c)
		}
	}
}

func TestMaxLenRespected(t *testing.T) {
	b := prog.NewBuilder("len")
	for i := 0; i < 6; i++ {
		b.Addi(1, 1, 1)
	}
	b.Stw(1, isa.SP, 0)
	b.Halt()
	p := b.MustBuild()
	for _, c := range Enumerate(p, Limits{MaxLen: 4, MaxInputs: 3}) {
		if c.N > 4 {
			t.Errorf("candidate %v exceeds MaxLen", c)
		}
	}
}
