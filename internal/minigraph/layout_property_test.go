package minigraph

import (
	"testing"
	"testing/quick"
)

// Property: for arbitrary frequency assignments over the loop program, the
// transformed layout is well-formed — inline addresses are unique and
// ordered, outline bodies live above OutlineBase without overlapping each
// other, and every selected instance has a jump-back slot directly after
// its body.
func TestLayoutProperty(t *testing.T) {
	p := loopProg(t)
	cands := Enumerate(p, DefaultLimits())
	f := func(rawFreq []uint16, budget uint8) bool {
		freq := make([]int64, len(p.Code))
		for i := range freq {
			bi := p.BlockOf[i]
			if bi < len(rawFreq) {
				freq[i] = int64(rawFreq[bi])
			}
		}
		sel := Select(p, cands, freq, SelectConfig{TemplateBudget: int(budget%8) + 1})
		l := NewLayout(p, sel)

		seenInline := map[uint32]bool{}
		prev := uint32(0)
		for i := 0; i < len(p.Code); i++ {
			if in := sel.InstanceAt(i); in != nil {
				a := l.InlineAddr(i)
				if a <= prev || seenInline[a] || a >= OutlineBase {
					return false
				}
				seenInline[a] = true
				prev = a
				// Outlined body: contiguous, above OutlineBase, ending in
				// the jump-back slot.
				for k := 0; k < in.N; k++ {
					oa := l.OutlineAddr(i + k)
					if oa < OutlineBase {
						return false
					}
					if k > 0 && oa != l.OutlineAddr(i+k-1)+4 {
						return false
					}
				}
				if l.JumpBackAddr(i) != l.OutlineAddr(i+in.N-1)+4 {
					return false
				}
				i += in.N - 1
				continue
			}
			a := l.InlineAddr(i)
			if a <= prev || seenInline[a] || a >= OutlineBase {
				return false
			}
			seenInline[a] = true
			prev = a
		}
		// Compacted size accounting.
		covered := 0
		for _, in := range sel.Instances {
			covered += in.N
		}
		return l.InlineWords == len(p.Code)-covered+len(sel.Instances)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
