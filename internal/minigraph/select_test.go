package minigraph

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/prog"
)

// loopProg: a hot loop (body of 4 aggregatable instrs) plus cold prologue.
func loopProg(t testing.TB) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("loop")
	b.Li(1, 100)   // 0
	b.Li(2, 0)     // 1
	b.Label("top") // block 1 at 2
	b.Add(2, 2, 1) // 2
	b.Xori(2, 2, 0x5a)
	b.Slli(3, 2, 1)
	b.Add(2, 2, 3)
	b.Subi(1, 1, 1)
	b.Bnez(1, "top")
	b.Mov(0, 2) // 8
	b.Halt()
	return b.MustBuild()
}

func loopFreq(p *prog.Program) []int64 {
	freq := make([]int64, len(p.Code))
	for i := range freq {
		freq[i] = 1
	}
	for i := 2; i <= 7; i++ {
		freq[i] = 100
	}
	return freq
}

func TestSelectPicksHotWindows(t *testing.T) {
	p := loopProg(t)
	cands := Enumerate(p, DefaultLimits())
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	sel := Select(p, cands, loopFreq(p), DefaultSelectConfig())
	if len(sel.Instances) == 0 {
		t.Fatal("nothing selected")
	}
	// All selected instances should be in the hot loop.
	var covered int
	for _, in := range sel.Instances {
		if in.Start < 2 || in.End() > 8 {
			t.Errorf("cold instance selected: %+v", in)
		}
		covered += in.N
	}
	// The loop has 6 aggregatable instructions; with MaxLen 4 we can cover
	// all 6 with two instances (4+2 or 3+3).
	if covered != 6 {
		t.Errorf("covered %d loop instructions, want 6", covered)
	}
	wantCov := float64(6*100) / float64(sel.TotalDyn)
	if got := sel.Coverage(); got != wantCov {
		t.Errorf("coverage = %f, want %f", got, wantCov)
	}
}

func TestSelectedInstancesDisjoint(t *testing.T) {
	p := loopProg(t)
	sel := Select(p, Enumerate(p, DefaultLimits()), loopFreq(p), DefaultSelectConfig())
	seen := make(map[int]bool)
	for _, in := range sel.Instances {
		for i := in.Start; i < in.End(); i++ {
			if seen[i] {
				t.Fatalf("instruction %d in two instances", i)
			}
			seen[i] = true
		}
	}
}

func TestTemplateBudget(t *testing.T) {
	p := loopProg(t)
	cands := Enumerate(p, DefaultLimits())
	sel := Select(p, cands, loopFreq(p), SelectConfig{TemplateBudget: 1})
	if sel.NumTemplates != 1 {
		t.Errorf("NumTemplates = %d, want 1", sel.NumTemplates)
	}
	// With one template the engine must pick the single best-scoring one.
	if len(sel.Instances) == 0 {
		t.Error("budget 1 should still select something")
	}
}

func TestZeroBudget(t *testing.T) {
	p := loopProg(t)
	sel := Select(p, Enumerate(p, DefaultLimits()), loopFreq(p), SelectConfig{TemplateBudget: 0})
	if len(sel.Instances) != 0 {
		t.Error("zero budget must select nothing")
	}
}

func TestEmptyPool(t *testing.T) {
	p := loopProg(t)
	sel := Select(p, nil, loopFreq(p), DefaultSelectConfig())
	if len(sel.Instances) != 0 || sel.Coverage() != 0 {
		t.Error("empty pool must select nothing")
	}
}

func TestTemplateSharing(t *testing.T) {
	// Two identical code sequences at different locations share a template.
	b := prog.NewBuilder("share")
	b.Add(3, 1, 2) // 0
	b.Addi(3, 3, 7)
	b.Stw(3, isa.SP, 0)
	b.Add(3, 1, 2) // 3: identical shape
	b.Addi(3, 3, 7)
	b.Stw(3, isa.SP, 0)
	b.Halt()
	p := b.MustBuild()
	cands := Enumerate(p, DefaultLimits())
	c1 := findCand(cands, 0, 2)
	c2 := findCand(cands, 3, 2)
	if c1 == nil || c2 == nil {
		t.Fatal("missing candidates")
	}
	if TemplateKey(p, c1) != TemplateKey(p, c2) {
		t.Errorf("identical sequences should share a template:\n%s\n%s",
			TemplateKey(p, c1), TemplateKey(p, c2))
	}
	freq := make([]int64, len(p.Code))
	for i := range freq {
		freq[i] = 10
	}
	sel := Select(p, []*Candidate{c1, c2}, freq, SelectConfig{TemplateBudget: 1})
	if len(sel.Instances) != 2 {
		t.Errorf("one template should claim both instances, got %d", len(sel.Instances))
	}
	if sel.Instances[0].Template != sel.Instances[1].Template {
		t.Error("instances should carry the same template id")
	}
}

func TestTemplateKeyDistinguishesImmediates(t *testing.T) {
	b := prog.NewBuilder("imm")
	b.Addi(3, 1, 7)
	b.Stw(3, isa.SP, 0)
	b.Addi(3, 1, 8) // different immediate
	b.Stw(3, isa.SP, 0)
	b.Halt()
	p := b.MustBuild()
	cands := Enumerate(p, DefaultLimits())
	c1, c2 := findCand(cands, 0, 2), findCand(cands, 2, 2)
	if c1 == nil || c2 == nil {
		t.Fatal("missing candidates")
	}
	if TemplateKey(p, c1) == TemplateKey(p, c2) {
		t.Error("different immediates must not share a template")
	}
}

func TestFrequencies(t *testing.T) {
	freq := Frequencies(5, []int32{0, 1, 1, 2, 2, 2, 4})
	want := []int64{1, 2, 3, 0, 1}
	for i, w := range want {
		if freq[i] != w {
			t.Errorf("freq[%d] = %d, want %d", i, freq[i], w)
		}
	}
}

func TestHigherScoreWins(t *testing.T) {
	// Two disjoint candidate groups; tight budget must pick the hotter one.
	b := prog.NewBuilder("score")
	b.Add(3, 1, 2) // 0 cold pair
	b.Addi(3, 3, 1)
	b.Stw(3, isa.SP, 0)
	b.Xor(4, 1, 2) // 3 hot pair
	b.Slli(4, 4, 2)
	b.Stw(4, isa.SP, 4)
	b.Halt()
	p := b.MustBuild()
	cands := []*Candidate{
		findCand(Enumerate(p, DefaultLimits()), 0, 2),
		findCand(Enumerate(p, DefaultLimits()), 3, 2),
	}
	if cands[0] == nil || cands[1] == nil {
		t.Fatal("missing candidates")
	}
	freq := []int64{1, 1, 1, 50, 50, 50, 1}
	sel := Select(p, cands, freq, SelectConfig{TemplateBudget: 1})
	if len(sel.Instances) != 1 || sel.Instances[0].Start != 3 {
		t.Errorf("selected %+v, want the hot pair at 3", sel.Instances)
	}
}

// Property: for arbitrary frequency assignments, selected instances are
// always pairwise disjoint, within bounds, and coverage is in [0,1].
func TestSelectionInvariantProperty(t *testing.T) {
	p := loopProg(t)
	cands := Enumerate(p, DefaultLimits())
	f := func(rawFreq []uint16, budget uint8) bool {
		// Frequencies are per-basic-block execution counts: every
		// instruction in a block shares its block's count.
		freq := make([]int64, len(p.Code))
		for i := range freq {
			bi := p.BlockOf[i]
			if bi < len(rawFreq) {
				freq[i] = int64(rawFreq[bi])
			}
		}
		sel := Select(p, cands, freq, SelectConfig{TemplateBudget: int(budget%8) + 1})
		seen := make(map[int]bool)
		for _, in := range sel.Instances {
			for i := in.Start; i < in.End(); i++ {
				if seen[i] || i < 0 || i >= len(p.Code) {
					return false
				}
				seen[i] = true
			}
		}
		cov := sel.Coverage()
		return cov >= 0 && cov <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLayout(t *testing.T) {
	p := loopProg(t)
	sel := Select(p, Enumerate(p, DefaultLimits()), loopFreq(p), DefaultSelectConfig())
	l := NewLayout(p, sel)

	// Compacted inline size = instrs - covered + numInstances.
	covered := 0
	for _, in := range sel.Instances {
		covered += in.N
	}
	want := len(p.Code) - covered + len(sel.Instances)
	if l.InlineWords != want {
		t.Errorf("InlineWords = %d, want %d", l.InlineWords, want)
	}

	// Inline addresses strictly increase over heads and non-members.
	prev := uint32(0)
	for i := 0; i < len(p.Code); i++ {
		if in := sel.InstanceAt(i); in != nil {
			a := l.InlineAddr(i)
			if a <= prev {
				t.Errorf("handle addr %#x not increasing", a)
			}
			prev = a
			// Members map to outline region.
			for k := 0; k < in.N; k++ {
				oa := l.OutlineAddr(i + k)
				if oa < OutlineBase {
					t.Errorf("outline addr %#x below OutlineBase", oa)
				}
			}
			if l.JumpBackAddr(i) == 0 {
				t.Error("missing jump-back address")
			}
			i += in.N - 1
			continue
		}
		a := l.InlineAddr(i)
		if a <= prev {
			t.Errorf("inline addr %#x at %d not increasing", a, i)
		}
		prev = a
	}
}

func TestIdentityLayout(t *testing.T) {
	p := loopProg(t)
	l := IdentityLayout(p)
	for i := range p.Code {
		if l.InlineAddr(i) != prog.PCOf(i) {
			t.Errorf("identity layout moved instruction %d", i)
		}
		if l.OutlineAddr(i) != 0 {
			t.Errorf("identity layout has outline addr for %d", i)
		}
	}
	if l.InlineWords != len(p.Code) {
		t.Errorf("InlineWords = %d, want %d", l.InlineWords, len(p.Code))
	}
}
