package minigraph

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// TemplateKey computes the MGT template signature of a candidate: two
// candidates with equal keys describe the same constituent operations and
// dataflow and can share one MGT entry. The key covers each constituent's
// opcode, immediate, source bindings (external-input slot or internal
// producer index), relative branch displacement, and the output position.
func TemplateKey(p *prog.Program, c *Candidate) string {
	var sb strings.Builder
	extSlot := make(map[isa.Reg]int, len(c.ExternalIns))
	for i, r := range c.ExternalIns {
		extSlot[r] = i
	}
	var lastDef [isa.NumRegs]int8
	for i := range lastDef {
		lastDef[i] = -1
	}
	for k := 0; k < c.N; k++ {
		in := p.Code[c.Start+k]
		fmt.Fprintf(&sb, "%d:", in.Op)
		for _, s := range in.Sources() {
			if d := lastDef[s]; d >= 0 {
				fmt.Fprintf(&sb, "i%d,", d)
			} else {
				fmt.Fprintf(&sb, "e%d,", extSlot[s])
			}
		}
		if in.Rs1 == isa.ZeroReg || in.Rs2 == isa.ZeroReg {
			sb.WriteString("z,")
		}
		fmt.Fprintf(&sb, "#%d", in.Imm)
		if in.IsBranch() {
			fmt.Fprintf(&sb, "@%d", in.Targ-c.Start)
		}
		if in.WritesReg() {
			lastDef[in.Rd] = int8(k)
		}
		sb.WriteByte(';')
	}
	fmt.Fprintf(&sb, "out%d", c.OutputIdx)
	return sb.String()
}

// Instance is one selected static mini-graph.
type Instance struct {
	Start, N int
	Template int // dense template id within the Selection
	Cand     *Candidate
}

// End returns the static index one past the last constituent.
func (in *Instance) End() int { return in.Start + in.N }

// Selection is the result of running the greedy selection engine: a set of
// pairwise non-overlapping instances drawn from at most TemplateBudget
// templates.
type Selection struct {
	Instances    []Instance
	ByStart      map[int]*Instance
	byStart      []*Instance // dense start-index table (built by Select)
	NumTemplates int
	// CoveredDyn counts dynamic instructions embedded in mini-graphs;
	// TotalDyn counts all dynamic instructions (both from the frequency
	// profile used for selection).
	CoveredDyn, TotalDyn int64
}

// Coverage returns the fraction of dynamic instructions embedded in
// mini-graphs — the paper's amplification metric.
func (s *Selection) Coverage() float64 {
	if s.TotalDyn == 0 {
		return 0
	}
	return float64(s.CoveredDyn) / float64(s.TotalDyn)
}

// InstanceAt returns the instance starting at static index i, or nil.
// Lookups sit on the simulator's per-fetch-group path, so selections built
// by Select answer from a dense slice; hand-assembled Selections (tests)
// fall back to the ByStart map.
func (s *Selection) InstanceAt(i int) *Instance {
	if s.byStart != nil {
		if i < len(s.byStart) {
			return s.byStart[i]
		}
		return nil
	}
	return s.ByStart[i]
}

// SelectConfig configures the selection engine.
type SelectConfig struct {
	TemplateBudget int // MGT capacity (paper: 512)
}

// DefaultSelectConfig returns the paper's 512-template budget.
func DefaultSelectConfig() SelectConfig { return SelectConfig{TemplateBudget: 512} }

type scoredTemplate struct {
	id        int // index into templates
	score     int64
	heapIndex int
}

type templateHeap []*scoredTemplate

func (h templateHeap) Len() int           { return len(h) }
func (h templateHeap) Less(i, j int) bool { return h[i].score > h[j].score }
func (h templateHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIndex, h[j].heapIndex = i, j }
func (h *templateHeap) Push(x any) {
	t := x.(*scoredTemplate)
	t.heapIndex = len(*h)
	*h = append(*h, t)
}
func (h *templateHeap) Pop() any { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// Select runs the paper's greedy, coverage-scored selection over a
// candidate pool. freq[i] is the dynamic execution count of static
// instruction i (all constituents of a candidate share one count, since a
// candidate lies within one basic block). Each template's score is
// (n-1) * f summed over its still-available instances; the engine
// repeatedly selects the highest-scoring template, claims its
// non-overlapping instances, discounts the rest, and stops at the template
// budget.
//
// The returned instances are pairwise non-overlapping, so every dynamic
// execution of a selected static location is aggregated ("dynamically
// disjoint" in the paper's terms).
func Select(p *prog.Program, cands []*Candidate, freq []int64, cfg SelectConfig) *Selection {
	sel := &Selection{ByStart: make(map[int]*Instance)}
	for _, f := range freq {
		sel.TotalDyn += f
	}
	if len(cands) == 0 || cfg.TemplateBudget <= 0 {
		return sel
	}

	// Group candidates by template key.
	type tmpl struct {
		n         int
		instances []*Candidate
	}
	byKey := make(map[string]*tmpl)
	var keys []string
	for _, c := range cands {
		k := TemplateKey(p, c)
		t := byKey[k]
		if t == nil {
			t = &tmpl{n: c.N}
			byKey[k] = t
			keys = append(keys, k)
		}
		t.instances = append(t.instances, c)
	}
	sort.Strings(keys) // deterministic template order
	templates := make([]*tmpl, len(keys))
	for i, k := range keys {
		t := byKey[k]
		sort.Slice(t.instances, func(a, b int) bool { return t.instances[a].Start < t.instances[b].Start })
		templates[i] = t
	}

	covered := make([]bool, len(p.Code))
	overlapsCovered := func(c *Candidate) bool {
		for i := c.Start; i < c.End(); i++ {
			if covered[i] {
				return true
			}
		}
		return false
	}
	score := func(t *tmpl) int64 {
		var f int64
		for _, c := range t.instances {
			if !overlapsCovered(c) {
				f += freq[c.Start]
			}
		}
		return int64(t.n-1) * f
	}

	h := make(templateHeap, 0, len(templates))
	for id, t := range templates {
		if s := score(t); s > 0 {
			h = append(h, &scoredTemplate{id: id, score: s})
		}
	}
	heap.Init(&h)

	for len(h) > 0 && sel.NumTemplates < cfg.TemplateBudget {
		top := heap.Pop(&h).(*scoredTemplate)
		t := templates[top.id]
		// Lazy re-scoring: a previously-claimed template may have stolen
		// instances since this entry was scored.
		if s := score(t); s != top.score {
			if s > 0 {
				top.score = s
				heap.Push(&h, top)
			}
			continue
		}
		if top.score <= 0 {
			break
		}
		tid := sel.NumTemplates
		sel.NumTemplates++
		// Claim instances in address order, skipping intra-template overlap.
		for _, c := range t.instances {
			if overlapsCovered(c) {
				continue
			}
			for i := c.Start; i < c.End(); i++ {
				covered[i] = true
			}
			sel.Instances = append(sel.Instances, Instance{Start: c.Start, N: c.N, Template: tid, Cand: c})
			sel.CoveredDyn += int64(c.N) * freq[c.Start]
		}
	}

	sort.Slice(sel.Instances, func(a, b int) bool { return sel.Instances[a].Start < sel.Instances[b].Start })
	for i := range sel.Instances {
		in := &sel.Instances[i]
		sel.ByStart[in.Start] = in
	}
	if n := len(sel.Instances); n > 0 {
		sel.byStart = make([]*Instance, sel.Instances[n-1].Start+1)
		for i := range sel.Instances {
			in := &sel.Instances[i]
			sel.byStart[in.Start] = in
		}
	}
	return sel
}

// Frequencies computes per-static-instruction dynamic execution counts from
// a committed trace (a convenience for selectors and tests).
func Frequencies(numInstrs int, indices []int32) []int64 {
	freq := make([]int64, numInstrs)
	for _, i := range indices {
		freq[i]++
	}
	return freq
}
