package minigraph_test

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/prog"
)

// Example walks the full selection flow: enumerate candidates in a small
// loop, pick mini-graphs by dynamic coverage, and inspect the result.
func Example() {
	p := prog.MustAssemble("demo", `
		li   r1, 100
	loop:
		addi r2, r2, 1
		xori r2, r2, 0x5a
		slli r3, r2, 2
		add  r4, r3, r2
		stw  r4, (sp)
		subi r1, r1, 1
		bnez r1, loop
		halt
	`)
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	cands := minigraph.Enumerate(p, minigraph.DefaultLimits())
	freq := make([]int64, p.NumInstrs())
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	sel := minigraph.Select(p, cands, freq, minigraph.DefaultSelectConfig())
	fmt.Printf("%d candidates, %d selected, coverage %.0f%%\n",
		len(cands), len(sel.Instances), 100*sel.Coverage())
	for _, in := range sel.Instances {
		fmt.Printf("mini-graph @%d..%d (serializing=%v)\n",
			in.Start, in.End()-1, in.Cand.Serializing())
	}
	// Output:
	// 9 candidates, 2 selected, coverage 85%
	// mini-graph @1..2 (serializing=false)
	// mini-graph @3..6 (serializing=true)
}
