// Package minigraph implements mini-graph instruction aggregation: candidate
// enumeration under the RISC-singleton interface constraints, MGT template
// grouping, the coverage-scored greedy selection engine, and the "outlined"
// code layout used to model instruction-cache effects.
//
// A mini-graph (Bracy et al., MICRO 2004; this paper, MICRO 2006) is an
// atomic group of up to four instructions within one basic block with at
// most three external register inputs, one register output, one memory
// operation, and one (final) control transfer. Values produced and fully
// consumed inside the group are "interior": they need no physical register
// and no writeback bandwidth, which is the source of the amplification the
// paper exploits.
package minigraph

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Limits configures candidate enumeration. The paper's configuration
// (Table 1) is the zero-value-adjusted DefaultLimits.
type Limits struct {
	MaxLen    int // maximum constituents per mini-graph (paper: 4)
	MaxInputs int // maximum external register inputs (paper: 3)
}

// DefaultLimits returns the paper's candidate constraints.
func DefaultLimits() Limits { return Limits{MaxLen: 4, MaxInputs: 3} }

// Candidate is one static mini-graph candidate: the contiguous window of
// instructions [Start, Start+N) inside a single basic block, plus the
// derived interface and serialization structure.
type Candidate struct {
	Start int // static index of the first constituent
	N     int // number of constituents (2..MaxLen)
	Block int // basic block index

	// ExternalIns lists the distinct external register inputs in order of
	// first appearance; FirstUse[i] is the earliest constituent index that
	// reads ExternalIns[i].
	ExternalIns []isa.Reg
	FirstUse    []int

	// OutputReg is the mini-graph's register output (live after the last
	// constituent), or isa.NoReg; OutputIdx is the constituent producing
	// its final value (-1 if none).
	OutputReg isa.Reg
	OutputIdx int

	// MemIdx is the constituent index of the (single) memory operation, or
	// -1; CtrlIdx likewise for the control transfer (always N-1 if present).
	MemIdx  int
	CtrlIdx int

	// deps[k] is a bitmask of earlier constituent indices that constituent
	// k reads a value from (internal dataflow edges).
	deps [8]uint8
}

// InternalDeps returns the bitmask of earlier constituents that constituent
// k depends on.
func (c *Candidate) InternalDeps(k int) uint8 { return c.deps[k] }

// End returns the static index one past the last constituent.
func (c *Candidate) End() int { return c.Start + c.N }

// Contains reports whether static index i falls inside the candidate.
func (c *Candidate) Contains(i int) bool { return i >= c.Start && i < c.End() }

// Overlaps reports whether two candidates share any static instruction.
func (c *Candidate) Overlaps(o *Candidate) bool {
	return c.Start < o.End() && o.Start < c.End()
}

// Serializing reports whether the candidate is potentially serializing: it
// has an external register input whose earliest consumer is not the first
// constituent. Struct-None rejects exactly these candidates.
func (c *Candidate) Serializing() bool {
	for _, fu := range c.FirstUse {
		if fu > 0 {
			return true
		}
	}
	return false
}

// SerializingInputs returns the indices (into ExternalIns) of the
// serializing inputs.
func (c *Candidate) SerializingInputs() []int {
	var out []int
	for i, fu := range c.FirstUse {
		if fu > 0 {
			out = append(out, i)
		}
	}
	return out
}

// reachesOutput reports whether constituent k has an internal dataflow path
// to the output-producing constituent (k == OutputIdx counts).
func (c *Candidate) reachesOutput(k int) bool {
	if c.OutputIdx < 0 {
		return false
	}
	// Walk forward: reach[j] true if j is reachable from k.
	var reach uint8 = 1 << uint(k)
	for j := k + 1; j < c.N; j++ {
		if c.deps[j]&reach != 0 {
			reach |= 1 << uint(j)
		}
	}
	return reach&(1<<uint(c.OutputIdx)) != 0
}

// BoundedSerialization reports whether every serializing input's delay on
// the register output is bounded by the mini-graph's own execution latency
// (Section 4.2): the serializing input's first consumer must be "upstream"
// of the output-producing constituent. Candidates with no register output
// are trivially bounded (Struct-Bounded only bounds the register output).
// Non-serializing candidates are bounded by definition.
func (c *Candidate) BoundedSerialization() bool {
	if c.OutputIdx < 0 {
		return true
	}
	for _, si := range c.SerializingInputs() {
		if !c.reachesOutput(c.FirstUse[si]) {
			return false
		}
	}
	return true
}

// String summarizes the candidate.
func (c *Candidate) String() string {
	return fmt.Sprintf("mg@%d+%d in=%v out=%s(%d) mem=%d ctrl=%d ser=%v",
		c.Start, c.N, c.ExternalIns, c.OutputReg, c.OutputIdx, c.MemIdx, c.CtrlIdx, c.Serializing())
}

// Enumerate returns every candidate window in the program that satisfies
// the mini-graph interface constraints. Windows are contiguous runs of 2 to
// MaxLen instructions within one basic block. Complex-class ops (which
// cannot execute on an ALU pipeline), indirect jumps, calls, returns, halts
// and nops are not eligible constituents; direct branches are eligible only
// as the final constituent (which block structure guarantees).
func Enumerate(p *prog.Program, lim Limits) []*Candidate {
	var out []*Candidate
	for bi := range p.Blocks {
		b := p.Blocks[bi]
		for start := b.Start; start < b.End-1; start++ {
			maxN := lim.MaxLen
			if start+maxN > b.End {
				maxN = b.End - start
			}
			for n := 2; n <= maxN; n++ {
				c := analyze(p, bi, start, n, lim)
				if c != nil {
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// eligible reports whether an instruction may be a mini-graph constituent.
func eligible(in isa.Instr) bool {
	switch isa.ClassOf(in.Op) {
	case isa.ClassNop, isa.ClassComplex, isa.ClassJump:
		return false
	}
	return true
}

// analyze builds the candidate for window [start, start+n) or returns nil
// if the window violates a constraint.
func analyze(p *prog.Program, block, start, n int, lim Limits) *Candidate {
	c := &Candidate{
		Start: start, N: n, Block: block,
		OutputReg: isa.NoReg, OutputIdx: -1, MemIdx: -1, CtrlIdx: -1,
	}
	// lastDef[r] = constituent index of the last definition of r so far.
	var lastDef [isa.NumRegs]int8
	for i := range lastDef {
		lastDef[i] = -1
	}
	extSlot := make(map[isa.Reg]int)

	for k := 0; k < n; k++ {
		in := p.Code[start+k]
		if !eligible(in) {
			return nil
		}
		if in.IsBranch() {
			if k != n-1 {
				return nil // branch must be last (block structure ensures this)
			}
			c.CtrlIdx = k
		}
		if in.IsMem() {
			if c.MemIdx >= 0 {
				return nil // at most one memory operation
			}
			c.MemIdx = k
		}
		for _, s := range in.Sources() {
			if d := lastDef[s]; d >= 0 {
				c.deps[k] |= 1 << uint(d)
				continue
			}
			slot, seen := extSlot[s]
			if !seen {
				slot = len(c.ExternalIns)
				if slot == lim.MaxInputs {
					return nil // too many external inputs
				}
				extSlot[s] = slot
				c.ExternalIns = append(c.ExternalIns, s)
				c.FirstUse = append(c.FirstUse, k)
			}
			_ = slot
		}
		if in.WritesReg() {
			lastDef[in.Rd] = int8(k)
		}
	}

	// Outputs: registers defined in the window and live after the last
	// constituent. At most one is allowed.
	liveAfter := p.LiveAfter(start + n - 1)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if lastDef[r] >= 0 && liveAfter.Has(r) {
			if c.OutputReg != isa.NoReg {
				return nil // two live outputs
			}
			c.OutputReg = r
			c.OutputIdx = int(lastDef[r])
		}
	}
	return c
}
