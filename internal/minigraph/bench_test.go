package minigraph

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/workload"
)

// BenchmarkEnumerate measures candidate discovery over a real kernel.
func BenchmarkEnumerate(b *testing.B) {
	b.ReportAllocs()
	w := workload.Find("media.adpcm_enc")
	p, _, _, err := w.Build("small")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cands := Enumerate(p, DefaultLimits()); len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkSelect measures the greedy coverage-scored selection engine.
func BenchmarkSelect(b *testing.B) {
	b.ReportAllocs()
	w := workload.Find("media.adpcm_enc")
	p, _, _, err := w.Build("small")
	if err != nil {
		b.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		b.Fatal(err)
	}
	freq := make([]int64, p.NumInstrs())
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	cands := Enumerate(p, DefaultLimits())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := Select(p, cands, freq, DefaultSelectConfig())
		if len(sel.Instances) == 0 {
			b.Fatal("nothing selected")
		}
	}
}

// BenchmarkTemplateKey measures template signature hashing.
func BenchmarkTemplateKey(b *testing.B) {
	b.ReportAllocs()
	w := workload.Find("media.adpcm_enc")
	p, _, _, err := w.Build("small")
	if err != nil {
		b.Fatal(err)
	}
	cands := Enumerate(p, DefaultLimits())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TemplateKey(p, cands[i%len(cands)])
	}
}

// BenchmarkLayout measures outlined-layout construction.
func BenchmarkLayout(b *testing.B) {
	b.ReportAllocs()
	w := workload.Find("media.adpcm_enc")
	p, _, _, err := w.Build("small")
	if err != nil {
		b.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		b.Fatal(err)
	}
	freq := make([]int64, p.NumInstrs())
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	sel := Select(p, Enumerate(p, DefaultLimits()), freq, DefaultSelectConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewLayout(p, sel)
	}
}
