package slack

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorAverages(t *testing.T) {
	a := NewAccumulator("p", 3)
	a.Add(1, Observation{Issue: 2, Ready: 4, ExecLat: 1, Src1Ready: 1, Src2Ready: NaN(), RegSlack: 3, StoreSlack: NaN(), BranchSlack: NaN()})
	a.Add(1, Observation{Issue: 4, Ready: 6, ExecLat: 3, Src1Ready: 3, Src2Ready: NaN(), RegSlack: 5, StoreSlack: NaN(), BranchSlack: NaN()})
	p := a.Profile()
	if p.Count[1] != 2 {
		t.Fatalf("count = %d, want 2", p.Count[1])
	}
	if p.Issue[1] != 3 || p.Ready[1] != 5 || p.ExecLat[1] != 2 {
		t.Errorf("issue/ready/lat = %v/%v/%v, want 3/5/2", p.Issue[1], p.Ready[1], p.ExecLat[1])
	}
	if p.SrcReady[1][0] != 2 {
		t.Errorf("src1 ready = %v, want 2", p.SrcReady[1][0])
	}
	if !math.IsNaN(p.SrcReady[1][1]) {
		t.Errorf("src2 ready = %v, want NaN", p.SrcReady[1][1])
	}
	if p.RegSlack[1] != 4 {
		t.Errorf("regSlack = %v, want 4", p.RegSlack[1])
	}
	if !math.IsNaN(p.StoreSlack[1]) || !math.IsNaN(p.BranchSlack[1]) {
		t.Error("unobserved slacks should be NaN")
	}
}

func TestUnobservedInstr(t *testing.T) {
	a := NewAccumulator("p", 2)
	p := a.Profile()
	if p.Valid(0) || p.Valid(1) {
		t.Error("nothing observed: Valid must be false")
	}
	if p.Valid(-1) || p.Valid(2) {
		t.Error("out-of-range Valid must be false")
	}
	if !math.IsNaN(p.Issue[0]) {
		t.Error("unobserved issue should be NaN")
	}
}

func TestPartialObservations(t *testing.T) {
	// Mixed instances: slack observed on only some instances.
	a := NewAccumulator("p", 1)
	a.Add(0, Observation{Issue: 1, Ready: 2, ExecLat: 1, Src1Ready: NaN(), Src2Ready: NaN(), RegSlack: 10, StoreSlack: NaN(), BranchSlack: NaN()})
	a.Add(0, Observation{Issue: 1, Ready: 2, ExecLat: 1, Src1Ready: NaN(), Src2Ready: NaN(), RegSlack: NaN(), StoreSlack: NaN(), BranchSlack: NaN()})
	p := a.Profile()
	if p.RegSlack[0] != 10 {
		t.Errorf("regSlack = %v, want 10 (NaN instances excluded)", p.RegSlack[0])
	}
	if p.Count[0] != 2 {
		t.Errorf("count = %d, want 2", p.Count[0])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := NewAccumulator("rt", 2)
	a.Add(0, Observation{Issue: 1.5, Ready: 3.25, ExecLat: 2, Src1Ready: 0.5, Src2Ready: NaN(), RegSlack: 7, StoreSlack: NaN(), BranchSlack: 0})
	p := a.Profile()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if q.Name != "rt" || q.Count[0] != 1 {
		t.Error("metadata lost")
	}
	if q.Issue[0] != 1.5 || q.Ready[0] != 3.25 || q.RegSlack[0] != 7 {
		t.Error("values lost")
	}
	if !math.IsNaN(q.SrcReady[0][1]) || !math.IsNaN(q.StoreSlack[0]) {
		t.Error("NaN fields must round-trip")
	}
	if !math.IsNaN(q.Issue[1]) {
		t.Error("unobserved instr must stay NaN after round-trip")
	}
	if q.BranchSlack[0] != 0 {
		t.Errorf("branch slack = %v, want 0", q.BranchSlack[0])
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{nope")); err == nil {
		t.Error("garbage input should fail to load")
	}
}

// Property: averaging k identical observations yields the observation.
func TestAverageIdentityProperty(t *testing.T) {
	f := func(v float64, k uint8) bool {
		if math.IsNaN(v) || math.Abs(v) > 1e300 {
			return true // summation would overflow; out of scope
		}
		n := int(k%10) + 1
		a := NewAccumulator("p", 1)
		for i := 0; i < n; i++ {
			a.Add(0, Observation{Issue: v, Ready: v, ExecLat: v, Src1Ready: v, Src2Ready: v, RegSlack: v, StoreSlack: v, BranchSlack: v})
		}
		p := a.Profile()
		eq := func(x float64) bool { return math.Abs(x-v) < 1e-9*math.Max(1, math.Abs(v)) }
		return eq(p.Issue[0]) && eq(p.Ready[0]) && eq(p.RegSlack[0]) && eq(p.SrcReady[0][0])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Save/Load round-trips arbitrary finite observations.
func TestSaveLoadProperty(t *testing.T) {
	f := func(issue, ready, slackV float64) bool {
		if math.IsNaN(issue) || math.IsInf(issue, 0) || issue == nanSentinel ||
			math.IsNaN(ready) || math.IsInf(ready, 0) || ready == nanSentinel ||
			math.IsNaN(slackV) || math.IsInf(slackV, 0) || slackV == nanSentinel {
			return true
		}
		a := NewAccumulator("p", 1)
		a.Add(0, Observation{Issue: issue, Ready: ready, ExecLat: 1, Src1Ready: NaN(), Src2Ready: NaN(), RegSlack: slackV, StoreSlack: NaN(), BranchSlack: NaN()})
		p := a.Profile()
		var buf bytes.Buffer
		if p.Save(&buf) != nil {
			return false
		}
		q, err := Load(&buf)
		if err != nil {
			return false
		}
		return q.Issue[0] == issue && q.Ready[0] == ready && q.RegSlack[0] == slackV
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
