// Package slack implements local-slack profiles (Fields et al., ISCA 2002),
// the profiling substrate of the paper's Slack-Profile selector.
//
// A profile records, per static instruction, averages over all profiled
// dynamic instances of: issue time and register-output ready time (both
// relative to the issue time of the first instruction of the enclosing
// basic block — the paper's fixed reference point), the ready times of each
// source operand (the inputs a mini-graph might wait on), the effective
// execution latency, and the local slack of the instruction's register,
// store and branch outputs.
//
// Local slack of a value is the number of cycles it could be delayed
// without delaying any consumer: min over consumers of (consumer issue time
// − value ready time). Store outputs are consumed only by loads they
// actually forward to; branch outputs are "consumed" immediately (slack 0)
// when mispredicted and never otherwise.
package slack

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// BigSlack is the slack assigned to values with no observed consumer (and
// to never-mispredicted branches): effectively "not critical".
const BigSlack = 64

// Profile holds per-static-instruction averages. Slices are indexed by
// static instruction index; entries with Count==0 carry zeros.
type Profile struct {
	Name  string  `json:"name"`
	Count []int64 `json:"count"`
	// Issue and Ready are relative to the issue time of the instruction's
	// basic-block head.
	Issue []float64 `json:"issue"`
	Ready []float64 `json:"ready"`
	// SrcReady[i][s] is the average ready time (relative to the BB head) of
	// source operand s of instruction i; NaN when the operand is absent or
	// always ready (e.g. the zero register).
	SrcReady [][2]float64 `json:"srcReady"`
	// ExecLat is the average observed execution latency.
	ExecLat []float64 `json:"execLat"`
	// RegSlack, StoreSlack, BranchSlack are average local slacks of each
	// output kind; NaN when the instruction has no such output or it was
	// never observed.
	RegSlack    []float64 `json:"regSlack"`
	StoreSlack  []float64 `json:"storeSlack"`
	BranchSlack []float64 `json:"branchSlack"`
	// GlobalRegSlack is the average *global* slack of the register output:
	// the delay the value tolerates without lengthening the whole
	// execution, computed by a reverse pass over the dataflow graph. The
	// paper's Section 4.3 argues local slack is the more useful selection
	// signal; this field exists to test that argument.
	GlobalRegSlack []float64 `json:"globalRegSlack"`
}

// Valid reports whether static instruction i was observed.
func (p *Profile) Valid(i int) bool {
	return i >= 0 && i < len(p.Count) && p.Count[i] > 0
}

// RegSlackAt returns the predicted register-output local slack of static
// instruction i, reporting ok=false when the instruction was never
// observed or has no register-output slack (NaN). It is the accessor the
// critical-path comparator (internal/critpath) validates against.
func (p *Profile) RegSlackAt(i int) (v float64, ok bool) {
	if !p.Valid(i) || i >= len(p.RegSlack) {
		return 0, false
	}
	v = p.RegSlack[i]
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// nanSentinel encodes NaN in JSON (which cannot represent NaN directly).
const nanSentinel = -1e300

func encodeNaNs(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) {
			out[i] = nanSentinel
		} else {
			out[i] = x
		}
	}
	return out
}

func decodeNaNs(xs []float64) []float64 {
	for i, x := range xs {
		if x == nanSentinel {
			xs[i] = math.NaN()
		}
	}
	return xs
}

// Save writes the profile as JSON, encoding NaN fields as a sentinel.
func (p *Profile) Save(w io.Writer) error {
	q := *p
	q.Issue = encodeNaNs(p.Issue)
	q.Ready = encodeNaNs(p.Ready)
	q.ExecLat = encodeNaNs(p.ExecLat)
	q.RegSlack = encodeNaNs(p.RegSlack)
	q.StoreSlack = encodeNaNs(p.StoreSlack)
	q.BranchSlack = encodeNaNs(p.BranchSlack)
	q.GlobalRegSlack = encodeNaNs(p.GlobalRegSlack)
	q.SrcReady = make([][2]float64, len(p.SrcReady))
	for i, sr := range p.SrcReady {
		for s, v := range sr {
			if math.IsNaN(v) {
				q.SrcReady[i][s] = nanSentinel
			} else {
				q.SrcReady[i][s] = v
			}
		}
	}
	return json.NewEncoder(w).Encode(&q)
}

// Load reads a profile written by Save.
func Load(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("slack: decoding profile: %w", err)
	}
	p.Issue = decodeNaNs(p.Issue)
	p.Ready = decodeNaNs(p.Ready)
	p.ExecLat = decodeNaNs(p.ExecLat)
	p.RegSlack = decodeNaNs(p.RegSlack)
	p.StoreSlack = decodeNaNs(p.StoreSlack)
	p.BranchSlack = decodeNaNs(p.BranchSlack)
	p.GlobalRegSlack = decodeNaNs(p.GlobalRegSlack)
	for i := range p.SrcReady {
		for s, v := range p.SrcReady[i] {
			if v == nanSentinel {
				p.SrcReady[i][s] = math.NaN()
			}
		}
	}
	return &p, nil
}

// Observation is what the profiling pipeline reports for one dynamic
// instance of a static instruction. Times are relative to the instance's
// basic-block head issue. NaN marks absent fields.
type Observation struct {
	Issue, Ready         float64
	Src1Ready, Src2Ready float64
	ExecLat              float64
	RegSlack             float64
	StoreSlack           float64
	BranchSlack          float64
	GlobalRegSlack       float64
}

// NaN is the explicit "absent" marker for Observation fields.
func NaN() float64 { return math.NaN() }

// Accumulator builds a Profile from per-instance observations.
type Accumulator struct {
	name  string
	count []int64
	sums  struct {
		issue, ready                  []float64
		src1, src2                    []float64
		src1N, src2N                  []int64
		execLat                       []float64
		regSlack, storeSlack, brSlack []float64
		regN, storeN, brN             []int64
		globalSlack                   []float64
		globalN                       []int64
	}
}

// NewAccumulator creates an accumulator for a program with n static
// instructions.
func NewAccumulator(name string, n int) *Accumulator {
	a := &Accumulator{name: name, count: make([]int64, n)}
	a.sums.issue = make([]float64, n)
	a.sums.ready = make([]float64, n)
	a.sums.src1 = make([]float64, n)
	a.sums.src2 = make([]float64, n)
	a.sums.src1N = make([]int64, n)
	a.sums.src2N = make([]int64, n)
	a.sums.execLat = make([]float64, n)
	a.sums.regSlack = make([]float64, n)
	a.sums.storeSlack = make([]float64, n)
	a.sums.brSlack = make([]float64, n)
	a.sums.regN = make([]int64, n)
	a.sums.storeN = make([]int64, n)
	a.sums.brN = make([]int64, n)
	a.sums.globalSlack = make([]float64, n)
	a.sums.globalN = make([]int64, n)
	return a
}

// Add folds one dynamic instance of static instruction i into the profile.
func (a *Accumulator) Add(i int, obs Observation) {
	a.count[i]++
	a.sums.issue[i] += obs.Issue
	a.sums.ready[i] += obs.Ready
	a.sums.execLat[i] += obs.ExecLat
	if !math.IsNaN(obs.Src1Ready) {
		a.sums.src1[i] += obs.Src1Ready
		a.sums.src1N[i]++
	}
	if !math.IsNaN(obs.Src2Ready) {
		a.sums.src2[i] += obs.Src2Ready
		a.sums.src2N[i]++
	}
	if !math.IsNaN(obs.RegSlack) {
		a.sums.regSlack[i] += obs.RegSlack
		a.sums.regN[i]++
	}
	if !math.IsNaN(obs.StoreSlack) {
		a.sums.storeSlack[i] += obs.StoreSlack
		a.sums.storeN[i]++
	}
	if !math.IsNaN(obs.BranchSlack) {
		a.sums.brSlack[i] += obs.BranchSlack
		a.sums.brN[i]++
	}
	if !math.IsNaN(obs.GlobalRegSlack) {
		a.sums.globalSlack[i] += obs.GlobalRegSlack
		a.sums.globalN[i]++
	}
}

// Profile finalizes the averages.
func (a *Accumulator) Profile() *Profile {
	n := len(a.count)
	p := &Profile{
		Name:           a.name,
		Count:          append([]int64(nil), a.count...),
		Issue:          make([]float64, n),
		Ready:          make([]float64, n),
		SrcReady:       make([][2]float64, n),
		ExecLat:        make([]float64, n),
		RegSlack:       make([]float64, n),
		StoreSlack:     make([]float64, n),
		BranchSlack:    make([]float64, n),
		GlobalRegSlack: make([]float64, n),
	}
	div := func(sum float64, c int64) float64 {
		if c == 0 {
			return math.NaN()
		}
		return sum / float64(c)
	}
	for i := 0; i < n; i++ {
		c := a.count[i]
		p.Issue[i] = div(a.sums.issue[i], c)
		p.Ready[i] = div(a.sums.ready[i], c)
		p.ExecLat[i] = div(a.sums.execLat[i], c)
		p.SrcReady[i][0] = div(a.sums.src1[i], a.sums.src1N[i])
		p.SrcReady[i][1] = div(a.sums.src2[i], a.sums.src2N[i])
		p.RegSlack[i] = div(a.sums.regSlack[i], a.sums.regN[i])
		p.StoreSlack[i] = div(a.sums.storeSlack[i], a.sums.storeN[i])
		p.BranchSlack[i] = div(a.sums.brSlack[i], a.sums.brN[i])
		p.GlobalRegSlack[i] = div(a.sums.globalSlack[i], a.sums.globalN[i])
	}
	return p
}
