package storesets

import (
	"testing"
	"testing/quick"
)

// PCs chosen to hash to distinct SSIT entries (1024-entry table).
const (
	loadPC  = 0x1000
	storePC = 0x1004
	otherPC = 0x1008
)

func TestColdLoadSpeculates(t *testing.T) {
	p := New(1024)
	if tag := p.RenameLoad(loadPC); tag != -1 {
		t.Errorf("cold load wait tag = %d, want -1 (speculate)", tag)
	}
}

func TestViolationCreatesDependence(t *testing.T) {
	p := New(1024)
	p.Violation(loadPC, storePC)
	p.RenameStore(storePC, 7)
	if tag := p.RenameLoad(loadPC); tag != 7 {
		t.Errorf("trained load wait tag = %d, want 7", tag)
	}
	if p.Violations != 1 || p.Predictions != 1 {
		t.Errorf("stats = %d violations %d predictions", p.Violations, p.Predictions)
	}
}

func TestNoInflightStoreMeansSpeculate(t *testing.T) {
	p := New(1024)
	p.Violation(loadPC, storePC)
	// No store renamed yet: load may go.
	if tag := p.RenameLoad(loadPC); tag != -1 {
		t.Errorf("wait tag = %d, want -1 with no in-flight store", tag)
	}
}

func TestCompleteStoreClearsLFST(t *testing.T) {
	p := New(1024)
	p.Violation(loadPC, storePC)
	p.RenameStore(storePC, 9)
	p.CompleteStore(storePC, 9)
	if tag := p.RenameLoad(loadPC); tag != -1 {
		t.Errorf("wait tag = %d, want -1 after store completion", tag)
	}
}

func TestCompleteStaleStoreKeepsNewer(t *testing.T) {
	p := New(1024)
	p.Violation(loadPC, storePC)
	p.RenameStore(storePC, 9)
	p.RenameStore(storePC, 12) // a younger instance
	p.CompleteStore(storePC, 9)
	if tag := p.RenameLoad(loadPC); tag != 12 {
		t.Errorf("wait tag = %d, want 12 (younger store still in flight)", tag)
	}
}

func TestUnrelatedLoadUnaffected(t *testing.T) {
	p := New(1024)
	p.Violation(loadPC, storePC)
	p.RenameStore(storePC, 3)
	if tag := p.RenameLoad(otherPC); tag != -1 {
		t.Errorf("unrelated load wait tag = %d, want -1", tag)
	}
}

func TestSetMerging(t *testing.T) {
	p := New(1024)
	// load conflicts with two different stores; all three should end up in
	// one set, so the load waits on whichever store was renamed last.
	p.Violation(loadPC, storePC)
	p.Violation(loadPC, otherPC)
	p.RenameStore(otherPC, 21)
	if tag := p.RenameLoad(loadPC); tag != 21 {
		t.Errorf("wait tag = %d, want 21 after merge", tag)
	}
	p.RenameStore(storePC, 22)
	if tag := p.RenameLoad(loadPC); tag != 22 {
		t.Errorf("wait tag = %d, want 22 (same merged set)", tag)
	}
}

func TestTwoLoadsOneStore(t *testing.T) {
	p := New(1024)
	l2 := uint32(0x4000)
	p.Violation(loadPC, storePC)
	p.Violation(l2, storePC)
	p.RenameStore(storePC, 5)
	if p.RenameLoad(loadPC) != 5 || p.RenameLoad(l2) != 5 {
		t.Error("both loads should wait on the shared store")
	}
}

// Property: after training a (load,store) pair and renaming the store with
// an arbitrary tag, the load always observes that tag; and untrained PCs
// never wait.
func TestTrainingProperty(t *testing.T) {
	f := func(lpc, spc uint32, tag int64) bool {
		lpc, spc = lpc&^3, spc&^3
		if tag < 0 {
			tag = -tag
		}
		if lpc == spc {
			return true // degenerate aliasing case, skip
		}
		p := New(256)
		p.Violation(lpc, spc)
		p.RenameStore(spc, tag)
		if p.idx(lpc) == p.idx(spc) {
			return true // SSIT aliasing makes expectations unreliable
		}
		return p.RenameLoad(lpc) == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
