// Package storesets implements the StoreSets memory-dependence predictor
// (Chrysos & Emer, ISCA 1998) at the configuration in the paper's Table 1:
// a 1K-entry predictor. Loads are scheduled aggressively; the predictor
// learns which (load, store) static pairs conflict and forces the load to
// wait for the store on subsequent encounters.
//
// The implementation follows the SSIT/LFST design:
//   - SSIT (Store Set ID Table): maps instruction PCs to store-set IDs.
//   - LFST (Last Fetched Store Table): maps a store-set ID to the most
//     recently renamed in-flight store in that set.
//
// On a memory-ordering violation, the offending load and store are placed
// in a common store set (merging existing sets by the lower ID, per the
// original paper's rule).
package storesets

const invalidSSID = -1

// Predictor is the StoreSets predictor. It is used at rename: stores call
// RenameStore, loads call RenameLoad to learn which in-flight store (if
// any) they must wait for. Violations call Violation to train.
type Predictor struct {
	ssit []int32 // pc hash -> store set id, or invalidSSID
	lfst []int64 // ssid -> tag of last fetched store (caller-defined), -1 if none

	idxMask  uint32 // len(ssit)-1 when the table is a power of two, else 0
	nextSSID int32

	// Stats.
	Violations  int64
	Predictions int64 // loads told to wait
}

// New builds a predictor with the given SSIT entry count (power of two).
func New(entries int) *Predictor {
	if entries <= 0 {
		entries = 1024
	}
	p := &Predictor{
		ssit: make([]int32, entries),
		lfst: make([]int64, entries),
	}
	for i := range p.ssit {
		p.ssit[i] = invalidSSID
	}
	for i := range p.lfst {
		p.lfst[i] = -1
	}
	if entries&(entries-1) == 0 {
		p.idxMask = uint32(entries - 1)
	}
	return p
}

// Reset restores the predictor to its post-New state without reallocating
// the tables, so pooled simulation machines can reuse it across runs.
func (p *Predictor) Reset() {
	for i := range p.ssit {
		p.ssit[i] = invalidSSID
	}
	for i := range p.lfst {
		p.lfst[i] = -1
	}
	p.nextSSID = 0
	p.Violations = 0
	p.Predictions = 0
}

// ClearStats zeroes the counters, keeping the trained SSIT/LFST state.
func (p *Predictor) ClearStats() {
	p.Violations = 0
	p.Predictions = 0
}

func (p *Predictor) idx(pc uint32) int {
	// Rename-time hot path: mask instead of modulo for the usual
	// power-of-two table (the mask is also correct for a 1-entry table).
	if p.idxMask != 0 || len(p.ssit) == 1 {
		return int((pc >> 2) & p.idxMask)
	}
	return int((pc >> 2) % uint32(len(p.ssit)))
}

// RenameStore is called when a store at pc is renamed; tag identifies the
// dynamic store instance (e.g. its ROB or store-queue slot, caller's
// choice). If the store belongs to a store set, it becomes that set's last
// fetched store, and the previous last-fetched store's tag is returned:
// per the original design, stores within a store set execute in order, so
// the caller should make this store wait for the returned one. Returns -1
// when the store is in no set or the set was empty.
func (p *Predictor) RenameStore(pc uint32, tag int64) (prev int64) {
	ss := p.ssit[p.idx(pc)]
	if ss == invalidSSID {
		return -1
	}
	li := ss % int32(len(p.lfst))
	prev = p.lfst[li]
	p.lfst[li] = tag
	return prev
}

// CompleteStore is called when a store with tag leaves the window; if it is
// still the last fetched store of its set, the set is cleared so later
// loads don't wait on a departed store.
func (p *Predictor) CompleteStore(pc uint32, tag int64) {
	ss := p.ssit[p.idx(pc)]
	if ss == invalidSSID {
		return
	}
	li := ss % int32(len(p.lfst))
	if p.lfst[li] == tag {
		p.lfst[li] = -1
	}
}

// RenameLoad is called when a load at pc is renamed. It returns the tag of
// the in-flight store the load must wait for, or -1 if the load may issue
// speculatively.
func (p *Predictor) RenameLoad(pc uint32) int64 {
	ss := p.ssit[p.idx(pc)]
	if ss == invalidSSID {
		return -1
	}
	tag := p.lfst[ss%int32(len(p.lfst))]
	if tag >= 0 {
		p.Predictions++
	}
	return tag
}

// Violation trains the predictor after a memory-ordering violation between
// a load at loadPC and an older store at storePC.
func (p *Predictor) Violation(loadPC, storePC uint32) {
	p.Violations++
	li, si := p.idx(loadPC), p.idx(storePC)
	ls, ss := p.ssit[li], p.ssit[si]
	switch {
	case ls == invalidSSID && ss == invalidSSID:
		id := p.nextSSID
		p.nextSSID++
		if p.nextSSID < 0 {
			p.nextSSID = 0
		}
		p.ssit[li], p.ssit[si] = id, id
	case ls != invalidSSID && ss == invalidSSID:
		p.ssit[si] = ls
	case ls == invalidSSID && ss != invalidSSID:
		p.ssit[li] = ss
	default:
		// Both assigned: merge into the smaller ID (declining-ID rule).
		if ls < ss {
			p.ssit[si] = ls
		} else {
			p.ssit[li] = ss
		}
	}
}
