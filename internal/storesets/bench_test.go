package storesets

import "testing"

// BenchmarkRenamePath measures the per-instruction rename-side cost.
func BenchmarkRenamePath(b *testing.B) {
	p := New(1024)
	p.Violation(0x100, 0x200)
	for i := 0; i < b.N; i++ {
		p.RenameStore(0x200, int64(i))
		p.RenameLoad(0x100)
		p.CompleteStore(0x200, int64(i))
	}
}
