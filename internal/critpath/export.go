package critpath

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON emits the full report (buckets, scoreboard, offenders,
// observed slack) as one indented JSON document.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// BucketsByName returns the cycle-loss buckets keyed by bucket name, for
// consumers (JSON export, the run ledger) that must not depend on the
// bucket ordering.
func (r *Report) BucketsByName() map[string]int64 {
	by := make(map[string]int64, NumBuckets)
	for b := Bucket(0); b < NumBuckets; b++ {
		by[b.String()] = r.Buckets[b]
	}
	return by
}

// MarshalJSON adds a name-keyed view of the buckets next to the array, so
// consumers don't need the bucket ordering.
func (r *Report) MarshalJSON() ([]byte, error) {
	type plain Report // break the recursion
	by := r.BucketsByName()
	return json.Marshal(struct {
		*plain
		BucketsByName map[string]int64 `json:"bucketsByName"`
	}{(*plain)(r), by})
}

// WriteScoreboardCSV emits the per-template serialization scoreboard as
// CSV, one row per template, ranked as in the report.
func WriteScoreboardCSV(w io.Writer, rep *Report) error {
	if _, err := fmt.Fprintln(w,
		"template,handles,embedded,uopsSaved,savedCycles,serInstances,serDelay,extBound,serCyclesCP,extBoundCP,cpShare,net"); err != nil {
		return err
	}
	for _, t := range rep.Templates {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%.2f,%d,%d,%d,%d,%d,%.4f,%.2f\n",
			t.Template, t.Handles, t.Embedded, t.UopsSaved, t.SavedCycles,
			t.SerInstances, t.SerDelay, t.ExtBound, t.SerCyclesCP, t.ExtBoundCP,
			t.CPShare, t.Net); err != nil {
			return err
		}
	}
	return nil
}
