package critpath

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/slack"
)

var testPar = Params{FetchToRename: 2, Width: 3}

// bucketSum returns the total attributed cycles.
func bucketSum(rep *Report) int64 {
	var s int64
	for b := Bucket(0); b < NumBuckets; b++ {
		s += rep.Buckets[b]
	}
	return s
}

func analyze(t *testing.T, uops []obs.UopTrace, events []obs.TraceEvent) *Report {
	t.Helper()
	rep, err := Analyze(uops, events, testPar)
	if err != nil {
		t.Fatal(err)
	}
	if got := bucketSum(rep); got != rep.TotalCycles {
		t.Fatalf("buckets sum to %d, critical path is %d", got, rep.TotalCycles)
	}
	return rep
}

// singletons3 is three independent single-cycle ops on a 3-wide machine:
// fetch 0, rename 2 (2-deep front end), issue 3, done and committed at 5.
func singletons3() []obs.UopTrace {
	mk := func(seq int64, static, dst int) obs.UopTrace {
		return obs.UopTrace{
			Seq: seq, Static: static, Kind: "singleton", Op: "addi", N: 1,
			Fetch: 0, Rename: 2, Issue: 3, Done: 5, Ready: 5, Commit: 5,
			Dst: dst, Tmpl: -1,
		}
	}
	return []obs.UopTrace{mk(1, 0, 2), mk(2, 1, 3), mk(3, 2, 4)}
}

// handle3 is the same three independent ops fused into one mini-graph
// handle: the serial ALU pipeline finishes them at issue+2+2 instead of
// issue+2, an induced delay of exactly 2 cycles (SerLat).
func handle3() []obs.UopTrace {
	return []obs.UopTrace{{
		Seq: 1, Static: 0, Kind: "handle", Op: "addi", N: 3,
		Fetch: 0, Rename: 2, Issue: 3, Done: 7, Ready: 7, Commit: 7,
		Dst: 4, Tmpl: 5, SerLat: 2, SerOut: 2,
	}}
}

// The acceptance golden: a 3-op serialized handle's attribution reports
// the serialization bucket equal to the known induced delay (2 cycles —
// also exactly the critical-path difference vs. the 3 singletons), and
// the scoreboard ranks that template first.
func TestSerializedHandleVsSingletons(t *testing.T) {
	sing := analyze(t, singletons3(), nil)
	if sing.TotalCycles != 5 {
		t.Errorf("singleton critical path = %d cycles, want 5", sing.TotalCycles)
	}
	if sing.Buckets[Serialization] != 0 {
		t.Errorf("singletons charged %d serialization cycles, want 0", sing.Buckets[Serialization])
	}
	if sing.Buckets[Inherent] != 5 {
		t.Errorf("singleton inherent = %d, want all 5", sing.Buckets[Inherent])
	}

	hdl := analyze(t, handle3(), nil)
	if hdl.TotalCycles != 7 {
		t.Errorf("handle critical path = %d cycles, want 7", hdl.TotalCycles)
	}
	const induced = 2
	if hdl.Buckets[Serialization] != induced {
		t.Errorf("serialization bucket = %d, want the induced delay %d",
			hdl.Buckets[Serialization], induced)
	}
	if hdl.TotalCycles-sing.TotalCycles != induced {
		t.Errorf("handle path is %d cycles longer than singletons, want %d",
			hdl.TotalCycles-sing.TotalCycles, induced)
	}

	if len(hdl.Templates) != 1 {
		t.Fatalf("scoreboard has %d templates, want 1", len(hdl.Templates))
	}
	top := hdl.Templates[0]
	if top.Template != 5 || top.SerCyclesCP != induced {
		t.Errorf("top scoreboard row = %+v, want template 5 with %d CP cycles", top, induced)
	}
	if top.Handles != 1 || top.Embedded != 3 || top.UopsSaved != 2 || top.SerInstances != 1 {
		t.Errorf("scoreboard counts wrong: %+v", top)
	}
	if want := float64(2) / 3; top.SavedCycles != want {
		t.Errorf("SavedCycles = %v, want %v (2 uops saved / width 3)", top.SavedCycles, want)
	}
	if top.Net != top.SavedCycles-float64(induced) {
		t.Errorf("Net = %v, want saved-minus-cost", top.Net)
	}
	if len(hdl.Offenders) != 1 || hdl.Offenders[0].Static != 0 || hdl.Offenders[0].SerCyclesCP != induced {
		t.Errorf("offenders = %+v", hdl.Offenders)
	}
}

// A dependence chain routes the walk through data edges: consumer issue
// waits on producer ready, and the producer's execution is charged deeper.
func TestDataEdgeWalk(t *testing.T) {
	uops := []obs.UopTrace{
		{Seq: 1, Static: 0, Kind: "singleton", Op: "ldw", N: 1,
			Fetch: 0, Rename: 2, Issue: 3, Done: 14, Ready: 14, Commit: 15,
			Dst: 2, Tmpl: -1, Mem: obs.MemLoad, Addr: 0x100, MemLat: 9},
		{Seq: 2, Static: 1, Kind: "singleton", Op: "addi", N: 1,
			Fetch: 0, Rename: 2, Issue: 14, Done: 16, Ready: 16, Commit: 17,
			Dst: 3, Srcs: []int{2}, Tmpl: -1},
	}
	rep := analyze(t, uops, nil)
	if rep.TotalCycles != 17 {
		t.Errorf("critical path = %d, want 17", rep.TotalCycles)
	}
	if rep.Buckets[CacheMiss] != 9 {
		t.Errorf("cache-miss bucket = %d, want the load's 9 extra cycles", rep.Buckets[CacheMiss])
	}
	if rep.Buckets[Serialization] != 0 || rep.Buckets[Mispredict] != 0 {
		t.Errorf("unexpected buckets: %v", rep.Buckets)
	}
	// Observed slack of the load: its only consumer issued the cycle it
	// became ready — zero slack.
	if len(rep.Slack) != 2 {
		t.Fatalf("slack rows = %+v, want 2", rep.Slack)
	}
	if rep.Slack[0].Static != 0 || rep.Slack[0].MeanSlack != 0 {
		t.Errorf("load slack = %+v, want mean 0", rep.Slack[0])
	}
	// The addi's output is never consumed: BigSlack.
	if rep.Slack[1].MeanSlack != slack.BigSlack {
		t.Errorf("unconsumed output slack = %v, want %d", rep.Slack[1].MeanSlack, slack.BigSlack)
	}
}

// A mispredicted branch redirects fetch: the refetch gap lands in the
// mispredict bucket.
func TestMispredictBucket(t *testing.T) {
	uops := []obs.UopTrace{
		{Seq: 1, Static: 0, Kind: "singleton", Op: "bnez", N: 1,
			Fetch: 0, Rename: 2, Issue: 3, Done: 6, Ready: -1, Commit: 7,
			Dst: -1, Srcs: []int{2}, Tmpl: -1, Mispred: true},
		{Seq: 2, Static: 5, Kind: "singleton", Op: "addi", N: 1,
			Fetch: 7, Rename: 9, Issue: 10, Done: 12, Ready: 12, Commit: 13,
			Dst: 3, Tmpl: -1},
	}
	rep := analyze(t, uops, nil)
	if rep.Buckets[Mispredict] == 0 {
		t.Errorf("mispredict bucket empty: %v", rep.Buckets)
	}
	// The redirect edge spans resolve (done=6) to refetch (7): 1 cycle.
	if rep.Buckets[Mispredict] != 1 {
		t.Errorf("mispredict bucket = %d, want 1", rep.Buckets[Mispredict])
	}
}

// Replayed issue attempts charge their scheduler wait to the replay
// bucket, and memory-ordering flush refetches do too.
func TestReplayAndFlushBuckets(t *testing.T) {
	uops := []obs.UopTrace{
		{Seq: 1, Static: 0, Kind: "singleton", Op: "ldw", N: 1,
			Fetch: 0, Rename: 2, Issue: 3, Done: 5, Ready: 5, Commit: 6,
			Dst: 2, Tmpl: -1, Mem: obs.MemLoad, Addr: 0x40},
		// Replayed consumer: issues 4 cycles after its pipeline minimum.
		{Seq: 2, Static: 1, Kind: "singleton", Op: "addi", N: 1,
			Fetch: 0, Rename: 2, Issue: 7, Done: 9, Ready: 9, Commit: 10,
			Dst: 3, Srcs: []int{2}, Tmpl: -1, Replays: 2},
		// Refetched after a flush at cycle 11.
		{Seq: 3, Static: 2, Kind: "singleton", Op: "xori", N: 1,
			Fetch: 12, Rename: 14, Issue: 15, Done: 17, Ready: 17, Commit: 18,
			Dst: 4, Tmpl: -1},
	}
	events := []obs.TraceEvent{{Type: "ev", Cycle: 11, Ev: obs.EvFlush, Template: -1, Seq: 9}}
	rep := analyze(t, uops, events)
	if rep.Buckets[Replay] == 0 {
		t.Errorf("replay bucket empty: %v", rep.Buckets)
	}
}

// Legacy traces (no dependence fields) still analyze: machine edges only,
// serialization and cache-miss buckets empty, invariant intact.
func TestLegacyTraceDegrades(t *testing.T) {
	uops := singletons3()
	for i := range uops {
		uops[i].Dst, uops[i].Tmpl = 0, 0 // as decoded from an old trace
	}
	if obs.HasDeps(uops) {
		t.Fatal("test setup: trace should look legacy")
	}
	rep := analyze(t, uops, nil)
	if rep.HasDeps {
		t.Error("report should flag missing dependence info")
	}
	if rep.Buckets[Serialization] != 0 || rep.Buckets[CacheMiss] != 0 {
		t.Errorf("legacy trace grew data-dependent buckets: %v", rep.Buckets)
	}
	if rep.TotalCycles != 5 {
		t.Errorf("legacy critical path = %d, want 5", rep.TotalCycles)
	}
}

func TestEmptyAndSquashedOnly(t *testing.T) {
	rep, err := Analyze(nil, nil, testPar)
	if err != nil || rep.TotalCycles != 0 || rep.Committed != 0 {
		t.Errorf("empty trace: rep=%+v err=%v", rep, err)
	}
	sq := []obs.UopTrace{{Seq: 1, Squashed: true, Commit: -1, Issue: -1, Done: -1, Ready: -1}}
	rep, err = Analyze(sq, nil, testPar)
	if err != nil || rep.Committed != 0 {
		t.Errorf("squashed-only trace: rep=%+v err=%v", rep, err)
	}
}

func TestCompareSlack(t *testing.T) {
	prof := &slack.Profile{
		Count:    []int64{10, 10, 0, 10},
		RegSlack: []float64{1.0, 60.0, 5.0, math.NaN()},
	}
	rep := &Report{Slack: []SlackObs{
		{Static: 0, Template: -1, Count: 5, MeanSlack: 1.5}, // pred 1.0: agree at tol 2
		{Static: 1, Template: 7, Count: 3, MeanSlack: 2.0},  // handle, output at 1+0 → pred 60: disagree
		{Static: 2, Template: -1, Count: 2, MeanSlack: 4.0}, // never profiled: skipped
		{Static: 3, Template: -1, Count: 2, MeanSlack: 4.0}, // NaN prediction: skipped
	}}
	sum := CompareSlack(prof, rep, map[int]int{7: 0}, 2.0)
	if sum.Sites != 2 || sum.Agreeing != 1 {
		t.Fatalf("sites=%d agreeing=%d, want 2/1 (rows %+v)", sum.Sites, sum.Agreeing, sum.Rows)
	}
	if sum.AgreeRate() != 0.5 {
		t.Errorf("AgreeRate = %v, want 0.5", sum.AgreeRate())
	}
	if bt := sum.ByTemplate[7]; bt != [2]int{0, 1} {
		t.Errorf("template 7 agreement = %v, want [0 1]", bt)
	}
	if bt := sum.ByTemplate[-1]; bt != [2]int{1, 1} {
		t.Errorf("singleton agreement = %v, want [1 1]", bt)
	}
	want := ((1.5 - 1.0) + (60.0 - 2.0)) / 2
	if math.Abs(sum.MeanAbsDelta-want) > 1e-9 {
		t.Errorf("MeanAbsDelta = %v, want %v", sum.MeanAbsDelta, want)
	}
	// A handle template missing from tmplOut is skipped, not misattributed.
	sum = CompareSlack(prof, rep, nil, 2.0)
	if sum.Sites != 1 {
		t.Errorf("without tmplOut: sites=%d, want 1", sum.Sites)
	}
	if CompareSlack(nil, rep, nil, 2.0).Sites != 0 {
		t.Error("nil profile should compare nothing")
	}
}

func TestExports(t *testing.T) {
	rep := analyze(t, handle3(), nil)

	var jb bytes.Buffer
	if err := WriteJSON(&jb, rep); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(jb.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse back: %v", err)
	}
	by, ok := back["bucketsByName"].(map[string]any)
	if !ok {
		t.Fatalf("no bucketsByName in %v", back)
	}
	if by["serialization"] != float64(2) {
		t.Errorf("serialization in JSON = %v, want 2", by["serialization"])
	}
	if back["totalCycles"] != float64(7) {
		t.Errorf("totalCycles in JSON = %v, want 7", back["totalCycles"])
	}

	var cb bytes.Buffer
	if err := WriteScoreboardCSV(&cb, rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(cb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want header + 1 row:\n%s", len(lines), cb.String())
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Errorf("CSV row has %d fields, header %d", len(row), len(header))
	}
	if row[0] != "5" {
		t.Errorf("CSV first row template = %s, want 5", row[0])
	}
}

func TestBucketString(t *testing.T) {
	seen := map[string]bool{}
	for b := Bucket(0); b < NumBuckets; b++ {
		s := b.String()
		if s == "" || seen[s] {
			t.Errorf("bucket %d has bad or duplicate name %q", b, s)
		}
		seen[s] = true
	}
	if Bucket(99).String() != "bucket(99)" {
		t.Error("out-of-range bucket name")
	}
}
