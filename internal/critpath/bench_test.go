package critpath_test

import (
	"testing"

	"repro/internal/critpath"
	"repro/internal/pipeline"
)

// BenchmarkAnalyze measures the full attribution walk — graph
// reconstruction, backward walk, scoreboard, observed slack — over a real
// pipeline-generated trace (~9k committed uops).
func BenchmarkAnalyze(b *testing.B) {
	cfg := pipeline.Reduced()
	uops, events, _ := tracedRun(b, ilpLoop(600), cfg)
	par := paramsFor(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := critpath.Analyze(uops, events, par)
		if err != nil {
			b.Fatal(err)
		}
		if rep.TotalCycles <= 0 {
			b.Fatal("degenerate report")
		}
	}
}
