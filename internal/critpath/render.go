package critpath

import (
	"fmt"
	"io"
	"sort"
)

// WriteText renders the attribution report for terminals: the cycle-loss
// breakdown, the per-template serialization scoreboard, and the worst
// static mini-graph sites (at most top, all when top <= 0). name labels
// the analyzed trace or run.
func WriteText(w io.Writer, name string, rep *Report, top int) error {
	fmt.Fprintf(w, "critical-path attribution: %s\n", name)
	if rep.Windowed {
		fmt.Fprintf(w, "  window: commit cycles %d..%d (analyzed span %d..%d)\n",
			rep.WinStart, rep.WinEnd, rep.Start, rep.End)
	}
	fmt.Fprintf(w, "  %d committed uops, cycles %d..%d, %d path nodes\n",
		rep.Committed, rep.Start, rep.End, rep.PathNodes)
	if !rep.HasDeps {
		fmt.Fprintln(w, "  legacy trace without dependence fields: machine edges only;")
		fmt.Fprintln(w, "  serialization and cache-miss buckets are unavailable")
	}
	fmt.Fprintf(w, "\n  %-14s %12s %8s\n", "bucket", "cycles", "share")
	for b := Bucket(0); b < NumBuckets; b++ {
		fmt.Fprintf(w, "  %-14s %12d %7.1f%%\n", b, rep.Buckets[b], 100*rep.BucketShare(b))
	}
	fmt.Fprintf(w, "  %-14s %12d %7.1f%%\n", "total", rep.TotalCycles, 100.0)

	fmt.Fprintf(w, "\nserialization scoreboard (%d templates):\n", len(rep.Templates))
	if len(rep.Templates) > 0 {
		fmt.Fprintf(w, "  %4s %8s %8s %7s %9s %8s %8s %8s %7s %7s %7s %9s\n",
			"tmpl", "handles", "embed", "saved", "savedCyc", "serInst",
			"serDelay", "extBound", "serCP", "extCP", "cpShare", "net")
		for _, t := range rep.Templates {
			fmt.Fprintf(w, "  %4d %8d %8d %7d %9.2f %8d %8d %8d %7d %7d %6.1f%% %9.2f\n",
				t.Template, t.Handles, t.Embedded, t.UopsSaved, t.SavedCycles,
				t.SerInstances, t.SerDelay, t.ExtBound, t.SerCyclesCP, t.ExtBoundCP,
				100*t.CPShare, t.Net)
		}
	}

	offenders := rep.Offenders
	if top > 0 && len(offenders) > top {
		offenders = offenders[:top]
	}
	fmt.Fprintf(w, "\ntop offenders (%d of %d static mini-graph sites):\n", len(offenders), len(rep.Offenders))
	if len(offenders) > 0 {
		fmt.Fprintf(w, "  %6s %-10s %4s %9s %9s %7s\n", "static", "op", "tmpl", "instances", "serDelay", "serCP")
		for _, o := range offenders {
			fmt.Fprintf(w, "  %6d %-10s %4d %9d %9d %7d\n",
				o.Static, o.Op, o.Template, o.Instances, o.SerDelay, o.SerCyclesCP)
		}
	}
	return nil
}

// WriteCompareText renders the predicted-vs-observed slack comparison: the
// aggregate agreement, per-template agreement, and the worst-disagreeing
// sites (at most maxRows, all when maxRows <= 0).
func WriteCompareText(w io.Writer, sum *SlackCompareSummary, maxRows int) error {
	fmt.Fprintf(w, "\npredicted vs observed slack (tolerance %.1f cycles):\n", sum.Tolerance)
	if sum.Sites == 0 {
		fmt.Fprintln(w, "  no comparable sites (no profile predictions matched observed outputs)")
		return nil
	}
	fmt.Fprintf(w, "  %d sites compared, %d within tolerance (%.1f%%), mean |delta| %.2f\n",
		sum.Sites, sum.Agreeing, 100*sum.AgreeRate(), sum.MeanAbsDelta)
	tmpls := make([]int, 0, len(sum.ByTemplate))
	for t := range sum.ByTemplate {
		tmpls = append(tmpls, t)
	}
	sort.Ints(tmpls)
	for _, t := range tmpls {
		bt := sum.ByTemplate[t]
		label := fmt.Sprintf("template %d", t)
		if t < 0 {
			label = "singletons"
		}
		fmt.Fprintf(w, "  %-12s %d/%d agree\n", label, bt[0], bt[1])
	}

	// Worst disagreements first: they are where the static profile misleads
	// the selector.
	rows := make([]SlackCompare, len(sum.Rows))
	copy(rows, sum.Rows)
	sort.SliceStable(rows, func(i, j int) bool { return abs(rows[i].Delta) > abs(rows[j].Delta) })
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "  %6s %9s %4s %8s %10s %10s %8s\n",
			"static", "outStatic", "tmpl", "count", "observed", "predicted", "delta")
		for _, r := range rows {
			fmt.Fprintf(w, "  %6d %9d %4d %8d %10.2f %10.2f %+8.2f\n",
				r.Static, r.OutStatic, r.Template, r.Count, r.Observed, r.Predicted, r.Delta)
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
