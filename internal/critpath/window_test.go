package critpath_test

import (
	"reflect"
	"testing"

	"repro/internal/critpath"
	"repro/internal/pipeline"
)

// Windowed attribution over a real pipeline trace: buckets must sum
// exactly to the analyzed span even when the walk crosses the window
// boundary and edges are clipped, and a window covering the whole commit
// range must reproduce the unwindowed report.
func TestWindowedAttributionInvariant(t *testing.T) {
	cfg := pipeline.Reduced()
	uops, events, _ := tracedRun(t, ilpLoop(300), cfg)
	par := paramsFor(cfg)

	full, err := critpath.Analyze(uops, events, par)
	if err != nil {
		t.Fatal(err)
	}

	// Mid-trace windows of varying width, all strictly inside the commit
	// span so every walk crosses the entry boundary.
	mid := (full.Start + full.End) / 2
	for _, w := range []critpath.Window{
		{Start: mid, End: mid + 50},
		{Start: mid - 200, End: mid + 200},
		{Start: full.Start + 10, End: full.End - 10},
	} {
		rep, err := critpath.AnalyzeWindow(uops, events, par, &w)
		if err != nil {
			t.Fatalf("window %+v: %v", w, err)
		}
		if !rep.Windowed || rep.WinStart != w.Start || rep.WinEnd != w.End {
			t.Errorf("window %+v: report window fields %v %d..%d", w, rep.Windowed, rep.WinStart, rep.WinEnd)
		}
		if rep.Start < w.Start || rep.End > w.End {
			t.Errorf("window %+v: analyzed span %d..%d escapes the window", w, rep.Start, rep.End)
		}
		var sum int64
		for b := critpath.Bucket(0); b < critpath.NumBuckets; b++ {
			if rep.Buckets[b] < 0 {
				t.Errorf("window %+v: bucket %s negative: %d", w, b, rep.Buckets[b])
			}
			sum += rep.Buckets[b]
		}
		if want := rep.End - rep.Start; sum != want || rep.TotalCycles != want {
			t.Errorf("window %+v: buckets sum to %d, total %d, analyzed span %d",
				w, sum, rep.TotalCycles, want)
		}
		if rep.Committed <= 0 || rep.Committed > full.Committed {
			t.Errorf("window %+v: committed %d (full trace %d)", w, rep.Committed, full.Committed)
		}
	}
}

// A window covering every committed cycle must match Analyze exactly: the
// walk anchors on the same final commit and never clips.
func TestWindowCoveringAllMatchesFull(t *testing.T) {
	cfg := pipeline.Reduced()
	uops, events, _ := tracedRun(t, ilpLoop(200), cfg)
	par := paramsFor(cfg)

	full, err := critpath.Analyze(uops, events, par)
	if err != nil {
		t.Fatal(err)
	}
	win, err := critpath.AnalyzeWindow(uops, events, par,
		&critpath.Window{Start: full.Start, End: full.End})
	if err != nil {
		t.Fatal(err)
	}
	if win.Buckets != full.Buckets {
		t.Errorf("covering window changed buckets:\n win  %v\n full %v", win.Buckets, full.Buckets)
	}
	if win.Committed != full.Committed || win.TotalCycles != full.TotalCycles {
		t.Errorf("covering window: committed %d/%d, total %d/%d",
			win.Committed, full.Committed, win.TotalCycles, full.TotalCycles)
	}
	if !reflect.DeepEqual(win.Templates, full.Templates) {
		t.Errorf("covering window changed the scoreboard")
	}
}

// The same window analyzed twice gives the same result (clipping is
// deterministic), and degenerate windows error instead of fabricating an
// attribution.
func TestWindowDeterminismAndErrors(t *testing.T) {
	cfg := pipeline.Reduced()
	uops, events, _ := tracedRun(t, ilpLoop(100), cfg)
	par := paramsFor(cfg)

	full, err := critpath.Analyze(uops, events, par)
	if err != nil {
		t.Fatal(err)
	}
	w := critpath.Window{Start: (full.Start + full.End) / 2, End: (full.Start+full.End)/2 + 40}
	a, err := critpath.AnalyzeWindow(uops, events, par, &w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := critpath.AnalyzeWindow(uops, events, par, &w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same window, different reports")
	}

	if _, err := critpath.AnalyzeWindow(uops, events, par,
		&critpath.Window{Start: 10, End: 5}); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := critpath.AnalyzeWindow(uops, events, par,
		&critpath.Window{Start: full.End + 1000, End: full.End + 2000}); err == nil {
		t.Error("window past the trace accepted")
	}
	if _, err := critpath.AnalyzeWindow(nil, nil, par,
		&critpath.Window{Start: 0, End: 10}); err == nil {
		t.Error("windowed analysis of an empty trace accepted")
	}
}
