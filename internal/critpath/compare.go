package critpath

import (
	"sort"

	"repro/internal/slack"
)

// SlackCompare is one predicted-vs-observed slack comparison: the static
// profiler's register-output slack prediction for a site against the mean
// slack the attribution engine measured in the observed run.
type SlackCompare struct {
	Static    int     `json:"static"`    // static index of the (first) instruction
	OutStatic int     `json:"outStatic"` // static index of the output-producing instruction
	Template  int     `json:"template"`  // -1 for singletons
	Count     int64   `json:"count"`
	Observed  float64 `json:"observed"`
	Predicted float64 `json:"predicted"`
	Delta     float64 `json:"delta"` // observed - predicted
	Agree     bool    `json:"agree"` // |delta| <= tolerance
}

// SlackCompareSummary aggregates the comparison.
type SlackCompareSummary struct {
	Tolerance    float64 `json:"tolerance"`
	Sites        int     `json:"sites"`    // sites with both a prediction and an observation
	Agreeing     int     `json:"agreeing"` // sites within tolerance
	MeanAbsDelta float64 `json:"meanAbsDelta"`
	// ByTemplate maps template id (-1 = singletons) to [agreeing, total].
	ByTemplate map[int][2]int `json:"byTemplate"`
	Rows       []SlackCompare `json:"rows"`
}

// AgreeRate is the fraction of compared sites within tolerance.
func (s *SlackCompareSummary) AgreeRate() float64 {
	if s.Sites == 0 {
		return 0
	}
	return float64(s.Agreeing) / float64(s.Sites)
}

// CompareSlack cross-checks the static slack profile against the report's
// observed slack. tmplOut maps template id to the offset (within the
// handle) of its output-producing constituent, so a handle's observed
// output slack is compared against the profiler's prediction for that
// constituent; singletons compare against their own static index. Sites
// the profile never observed (or with no register output prediction) are
// skipped. tol is the agreement tolerance in cycles.
func CompareSlack(prof *slack.Profile, rep *Report, tmplOut map[int]int, tol float64) *SlackCompareSummary {
	sum := &SlackCompareSummary{Tolerance: tol, ByTemplate: map[int][2]int{}}
	if prof == nil {
		return sum
	}
	var absTotal float64
	for _, ob := range rep.Slack {
		out := ob.Static
		if ob.Template >= 0 {
			off, ok := tmplOut[ob.Template]
			if !ok {
				continue
			}
			out = ob.Static + off
		}
		pred, ok := prof.RegSlackAt(out)
		if !ok {
			continue
		}
		row := SlackCompare{
			Static: ob.Static, OutStatic: out, Template: ob.Template,
			Count: ob.Count, Observed: ob.MeanSlack, Predicted: pred,
			Delta: ob.MeanSlack - pred,
		}
		row.Agree = row.Delta >= -tol && row.Delta <= tol
		sum.Rows = append(sum.Rows, row)
		sum.Sites++
		if row.Agree {
			sum.Agreeing++
		}
		if row.Delta < 0 {
			absTotal -= row.Delta
		} else {
			absTotal += row.Delta
		}
		bt := sum.ByTemplate[ob.Template]
		bt[1]++
		if row.Agree {
			bt[0]++
		}
		sum.ByTemplate[ob.Template] = bt
	}
	if sum.Sites > 0 {
		sum.MeanAbsDelta = absTotal / float64(sum.Sites)
	}
	sort.Slice(sum.Rows, func(i, j int) bool { return sum.Rows[i].Static < sum.Rows[j].Static })
	return sum
}
