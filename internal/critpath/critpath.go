// Package critpath reconstructs the dynamic dependence graph of an
// observed run from its pipetrace (internal/obs.UopTrace records) and
// walks the critical path backwards through last-arriving edges
// (Fields et al., ISCA 2001), attributing every cycle of the path to a
// cause. On top of the walk it builds a per-template serialization
// scoreboard (which mini-graph templates cost critical-path cycles, and
// whether their bandwidth payback covers it) and measures per-output
// observed slack for cross-checking the static slack profiler
// (internal/slack).
//
// The graph is implicit: node (i, stage) is stage ∈ {fetch, rename,
// issue, ready, done, commit} of the i-th committed uop, at the cycle the
// trace recorded. Each backward step picks the predecessor event that
// arrived last — the edge that actually determined the node's time — and
// decomposes the full cycle gap into buckets, so the bucket totals sum
// exactly to the critical-path span (invariant-checked by Analyze).
package critpath

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/slack"
)

// Params carries the two machine parameters the walk cannot recover from
// the trace itself: the front-end depth (fetch→rename latency) and the
// machine width (converts uops saved by mini-graphs into bandwidth
// cycles). Build it from the run's pipeline.Config via ParamsFor.
type Params struct {
	FetchToRename int64
	Width         int
}

// ParamsFor derives the walk parameters from the machine configuration the
// trace was produced under.
func ParamsFor(cfg pipeline.Config) Params {
	return Params{FetchToRename: int64(cfg.FetchToRename), Width: cfg.IssueWidth}
}

// Bucket classifies critical-path cycles by cause.
type Bucket int

const (
	// Inherent: dataflow latency and pipeline depth — cycles a perfect
	// machine of this shape would also spend.
	Inherent Bucket = iota
	// Serialization: delay mini-graph handles induced by executing
	// internally-independent constituents serially on the ALU pipeline.
	Serialization
	// CacheMiss: load cycles beyond the L1-hit path.
	CacheMiss
	// Mispredict: branch-misprediction redirect and refill.
	Mispredict
	// Structural: bandwidth and capacity waits (fetch/commit width,
	// scheduler and rename stalls) not explained by a modeled edge.
	Structural
	// Replay: issue-attempt replays and memory-ordering flush refills.
	Replay

	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"inherent", "serialization", "cache-miss", "mispredict", "structural", "replay",
}

func (b Bucket) String() string {
	if b < 0 || b >= NumBuckets {
		return fmt.Sprintf("bucket(%d)", int(b))
	}
	return bucketNames[b]
}

// TemplateScore is one row of the per-template serialization scoreboard.
type TemplateScore struct {
	Template     int     `json:"template"`
	Handles      int64   `json:"handles"`      // committed handle instances
	Embedded     int64   `json:"embedded"`     // architectural instructions carried
	UopsSaved    int64   `json:"uopsSaved"`    // Embedded - Handles
	SavedCycles  float64 `json:"savedCycles"`  // UopsSaved / width: bandwidth payback
	SerInstances int64   `json:"serInstances"` // instances with internal serialization delay
	SerDelay     int64   `json:"serDelay"`     // total internal delay across instances
	ExtBound     int64   `json:"extBound"`     // instances issued data-bound on a serializing input
	SerCyclesCP  int64   `json:"serCyclesCP"`  // internal serialization cycles on the critical path
	ExtBoundCP   int64   `json:"extBoundCP"`   // critical-path issue edges through serializing inputs
	CPShare      float64 `json:"cpShare"`      // SerCyclesCP / TotalCycles
	Net          float64 `json:"net"`          // SavedCycles - SerCyclesCP
}

// Offender is a static mini-graph site ranked by critical-path
// serialization cycles.
type Offender struct {
	Static      int    `json:"static"`
	Op          string `json:"op"`
	Template    int    `json:"template"`
	Instances   int64  `json:"instances"`
	SerDelay    int64  `json:"serDelay"`
	SerCyclesCP int64  `json:"serCyclesCP"`
}

// SlackObs aggregates observed output slack per static site: the minimum
// over consumers of (consumer issue − output ready), capped at
// slack.BigSlack, averaged over committed instances.
type SlackObs struct {
	Static    int     `json:"static"`
	Template  int     `json:"template"` // -1 for singletons
	Count     int64   `json:"count"`
	MeanSlack float64 `json:"meanSlack"`
}

// Report is the full attribution result.
type Report struct {
	// TotalCycles is the critical-path span: last commit minus the cycle
	// the backward walk terminated at (the first fetch it reached).
	TotalCycles int64             `json:"totalCycles"`
	Start       int64             `json:"start"`
	End         int64             `json:"end"`
	Buckets     [NumBuckets]int64 `json:"buckets"`
	Committed   int               `json:"committed"` // committed uops analyzed
	PathNodes   int               `json:"pathNodes"` // nodes on the critical path
	// HasDeps reports whether the trace carried dependence fields; without
	// them (pre-PR-3 traces) only machine edges are walked and the
	// serialization and cache-miss buckets stay empty.
	HasDeps bool `json:"hasDeps"`

	Templates []TemplateScore `json:"templates"`
	Offenders []Offender      `json:"offenders"`
	Slack     []SlackObs      `json:"slack"`

	// Windowed attribution (AnalyzeWindow): WinStart/WinEnd are the
	// requested commit-cycle bounds; Start/End above are the analyzed span
	// (the walk anchors at the last commit inside the window and clips at
	// WinStart), and the bucket invariant holds over that span.
	Windowed bool  `json:"windowed,omitempty"`
	WinStart int64 `json:"winStart,omitempty"`
	WinEnd   int64 `json:"winEnd,omitempty"`
}

// BucketShare returns bucket b's fraction of the critical path.
func (r *Report) BucketShare(b Bucket) float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(r.Buckets[b]) / float64(r.TotalCycles)
}

// stage identifies one pipeline event of a committed uop. Ranks order the
// backward walk: within one uop the walk only moves to lower ranks, across
// uops only to earlier ones, so it terminates.
type stage int

const (
	stF stage = iota // fetch
	stR              // rename
	stI              // issue
	stY              // register output ready
	stD              // done (all results produced)
	stC              // commit
)

type node struct {
	i  int
	st stage
}

type analysis struct {
	cu  []obs.UopTrace // committed uops, commit order
	par Params

	dataProd [][]int // per committed uop, per source: producer index or -1
	memProd  []int   // per committed uop: same-word store index or -1 (loads)
	lastMisp []int   // per committed uop: latest earlier mispredicted uop or -1
	flushes  []int64 // flush-event cycles, ascending

	serCP     map[int]int64 // template -> critical-path serialization cycles
	extCP     map[int]int64 // template -> critical-path serializing-input issue edges
	siteSerCP map[int]int64 // static -> critical-path serialization cycles
	pathNodes int

	// lo..hi (inclusive) bound the committed uops under attribution: the
	// whole trace for Analyze, the uops committing inside the window for
	// AnalyzeWindow. The dependence graph is always built over the whole
	// trace, so producers outside the window still resolve edges.
	lo, hi int
}

// Analyze attributes the critical path of one observed run. The uops and
// events are a parsed pipetrace (obs.ReadPipetrace); par comes from the
// run's machine configuration.
func Analyze(uops []obs.UopTrace, events []obs.TraceEvent, par Params) (*Report, error) {
	return AnalyzeWindow(uops, events, par, nil)
}

// Window bounds an attribution to the uops committing in commit cycles
// [Start, End] (inclusive).
type Window struct {
	Start, End int64
}

// AnalyzeWindow is Analyze restricted to a commit-cycle window (nil win =
// the whole trace). The dependence graph is still built over the whole
// trace so edges into the window resolve exactly as in a full analysis;
// the backward walk anchors at the last commit inside the window and, when
// an edge crosses the window entry, the predecessor is treated as boundary
// state arriving at win.Start — the edge's decomposition is clipped to the
// in-window gap — so the buckets still sum exactly to the analyzed span
// (Report.End − Report.Start).
func AnalyzeWindow(uops []obs.UopTrace, events []obs.TraceEvent, par Params, win *Window) (*Report, error) {
	if par.Width <= 0 {
		par.Width = 1
	}
	if win != nil && win.Start > win.End {
		return nil, fmt.Errorf("critpath: window start %d after end %d", win.Start, win.End)
	}
	a := &analysis{
		par:       par,
		serCP:     map[int]int64{},
		extCP:     map[int]int64{},
		siteSerCP: map[int]int64{},
	}
	for _, u := range uops {
		if !u.Squashed {
			a.cu = append(a.cu, u)
		}
	}
	rep := &Report{Committed: len(a.cu), HasDeps: obs.HasDeps(uops)}
	if len(a.cu) == 0 {
		if win != nil {
			return nil, fmt.Errorf("critpath: no committed uops in trace")
		}
		return rep, nil
	}
	for i := 1; i < len(a.cu); i++ {
		if a.cu[i].Commit < a.cu[i-1].Commit {
			return nil, fmt.Errorf("critpath: trace not in commit order at seq %d", a.cu[i].Seq)
		}
	}
	a.lo, a.hi = 0, len(a.cu)-1
	winStart := int64(math.MinInt64)
	if win != nil {
		a.hi = sort.Search(len(a.cu), func(i int) bool { return a.cu[i].Commit > win.End }) - 1
		a.lo = sort.Search(len(a.cu), func(i int) bool { return a.cu[i].Commit >= win.Start })
		if a.hi < a.lo {
			return nil, fmt.Errorf("critpath: no uops commit in window [%d, %d] (trace commits span [%d, %d])",
				win.Start, win.End, a.cu[0].Commit, a.cu[len(a.cu)-1].Commit)
		}
		winStart = win.Start
		rep.Windowed, rep.WinStart, rep.WinEnd = true, win.Start, win.End
		rep.Committed = a.hi - a.lo + 1
	}
	a.precompute(rep.HasDeps)
	for _, ev := range events {
		if ev.Ev == obs.EvFlush {
			a.flushes = append(a.flushes, ev.Cycle)
		}
	}
	sort.Slice(a.flushes, func(i, j int) bool { return a.flushes[i] < a.flushes[j] })

	// Backward walk from the last commit in range. Every step's bucket
	// decomposition sums exactly to t(cur) − t(next), so the running totals
	// sum to End − t(cur); at termination that is End − Start. When the
	// next node falls before the window, the gap below win.Start belongs to
	// the boundary edge and is clipped away before the totals are updated.
	cur := node{a.hi, stC}
	rep.End = a.t(cur)
	for {
		a.pathNodes++
		nxt, por, term := a.step(cur)
		if term {
			rep.Start = a.t(cur)
			break
		}
		if tn := a.t(nxt); tn < winStart {
			clipPor(&por, a.t(cur)-winStart)
			for b := Bucket(0); b < NumBuckets; b++ {
				rep.Buckets[b] += por[b]
			}
			rep.Start = winStart
			break
		}
		for b := Bucket(0); b < NumBuckets; b++ {
			rep.Buckets[b] += por[b]
		}
		cur = nxt
	}
	rep.TotalCycles = rep.End - rep.Start
	rep.PathNodes = a.pathNodes

	var sum int64
	for b := Bucket(0); b < NumBuckets; b++ {
		sum += rep.Buckets[b]
	}
	if sum != rep.TotalCycles {
		return nil, fmt.Errorf("critpath: buckets sum to %d, critical path is %d cycles", sum, rep.TotalCycles)
	}

	a.scoreboard(rep)
	a.observedSlack(rep)
	return rep, nil
}

// clipOrder fixes which buckets shed cycles first when a boundary edge is
// clipped at the window entry: generic machine time goes before the
// specifically-attributed causes, so serialization evidence survives the
// clip whenever the in-window gap can still carry it. Deterministic by
// construction — windowed runs are byte-stable like everything else.
var clipOrder = [NumBuckets]Bucket{Inherent, Structural, CacheMiss, Mispredict, Replay, Serialization}

// clipPor shrinks a bucket decomposition (which sums to the full edge gap)
// so it sums to want, removing cycles in clipOrder.
func clipPor(por *[NumBuckets]int64, want int64) {
	var sum int64
	for b := Bucket(0); b < NumBuckets; b++ {
		sum += por[b]
	}
	excess := sum - want
	for _, b := range clipOrder {
		if excess <= 0 {
			break
		}
		take := min64(por[b], excess)
		por[b] -= take
		excess -= take
	}
}

// precompute reconstructs register and memory producers by replaying a
// rename table over the committed uops in commit (= program) order.
func (a *analysis) precompute(hasDeps bool) {
	n := len(a.cu)
	a.dataProd = make([][]int, n)
	a.memProd = make([]int, n)
	a.lastMisp = make([]int, n)
	regProd := map[int]int{}
	storeWord := map[uint32]int{}
	misp := -1
	for i := range a.cu {
		u := &a.cu[i]
		a.lastMisp[i] = misp
		a.memProd[i] = -1
		if hasDeps {
			if len(u.Srcs) > 0 {
				dp := make([]int, len(u.Srcs))
				for s, r := range u.Srcs {
					if p, ok := regProd[r]; ok {
						dp[s] = p
					} else {
						dp[s] = -1
					}
				}
				a.dataProd[i] = dp
			}
			if u.Mem == obs.MemLoad {
				if p, ok := storeWord[u.Addr>>2]; ok {
					a.memProd[i] = p
				}
			}
			if u.Mem == obs.MemStore {
				storeWord[u.Addr>>2] = i
			}
			if u.Dst >= 0 {
				regProd[u.Dst] = i
			}
		}
		if u.Mispred && u.Done >= 0 {
			misp = i
		}
	}
}

// t returns the cycle of a node.
func (a *analysis) t(n node) int64 {
	u := &a.cu[n.i]
	switch n.st {
	case stF:
		return u.Fetch
	case stR:
		return u.Rename
	case stI:
		return u.Issue
	case stY:
		return u.Ready
	case stD:
		return u.Done
	default:
		return u.Commit
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// step finds the last-arriving edge into n, returns the predecessor node
// and the bucket decomposition of the full gap t(n) − t(pred). terminal is
// true when no predecessor exists (the walk reached the path's start).
func (a *analysis) step(n node) (next node, por [NumBuckets]int64, terminal bool) {
	u := &a.cu[n.i]
	switch n.st {
	case stC:
		// Commit waits on own completion (possible the same cycle results
		// land) or, in order, on the previous commit; residual is
		// commit-bandwidth wait. Ties prefer the completion edge: it dives
		// into the uop actually pacing the commit stream.
		tc := u.Commit
		bestA := int64(-1)
		if u.Done >= 0 && u.Done <= tc {
			bestA, next = u.Done, node{n.i, stD}
		}
		if n.i > 0 {
			if pc := a.cu[n.i-1].Commit; pc <= tc && pc > bestA {
				bestA, next = pc, node{n.i - 1, stC}
			}
		}
		if bestA < 0 {
			return node{}, por, true
		}
		por[Structural] += tc - bestA
		return next, por, false

	case stD:
		// Completion decomposes against own issue: internal serialization
		// delay, then cache-miss cycles, remainder execution latency.
		if u.Issue < 0 || u.Issue > u.Done {
			return node{}, por, true
		}
		delta := u.Done - u.Issue
		ser := min64(u.SerLat, delta)
		mem := min64(u.MemLat, delta-ser)
		por[Serialization] += ser
		por[CacheMiss] += mem
		por[Inherent] += delta - ser - mem
		a.noteSerCP(u, ser)
		return node{n.i, stI}, por, false

	case stY:
		// Output-ready decomposes like done, using the output's share of
		// the internal serialization delay. MemLat may overlap the output
		// path only approximately for handles; min() keeps it bounded.
		if u.Issue < 0 || u.Issue > u.Ready {
			return node{}, por, true
		}
		delta := u.Ready - u.Issue
		ser := min64(u.SerOut, delta)
		mem := min64(u.MemLat, delta-ser)
		por[Serialization] += ser
		por[CacheMiss] += mem
		por[Inherent] += delta - ser - mem
		a.noteSerCP(u, ser)
		return node{n.i, stI}, por, false

	case stI:
		// Issue waits on data (producer outputs), memory ordering (a
		// same-word older store), or the pipeline minimum past rename;
		// residual is scheduler wait — replay-caused if the uop replayed.
		ti := u.Issue
		bestA, bestPref := int64(-1), 0
		var fromPipe, fromData bool
		for _, p := range a.dataProd[n.i] {
			if p < 0 {
				continue
			}
			if py := a.cu[p].Ready; py >= 0 && py <= ti && (py > bestA || (py == bestA && bestPref < 3)) {
				bestA, bestPref, next = py, 3, node{p, stY}
				fromPipe, fromData = false, true
			}
		}
		if mp := a.memProd[n.i]; mp >= 0 {
			if pd := a.cu[mp].Done; pd >= 0 && pd <= ti && (pd > bestA || (pd == bestA && bestPref < 2)) {
				bestA, bestPref, next = pd, 2, node{mp, stD}
				fromPipe, fromData = false, false
			}
		}
		if u.Rename >= 0 && u.Rename+1 <= ti && u.Rename+1 > bestA {
			bestA, bestPref, next = u.Rename+1, 1, node{n.i, stR}
			fromPipe, fromData = true, false
		}
		if bestA < 0 {
			return node{}, por, true
		}
		_ = bestPref
		residual := ti - bestA
		if u.Replays > 0 {
			por[Replay] += residual
		} else {
			por[Structural] += residual
		}
		if fromPipe {
			por[Inherent]++
		}
		if fromData && u.SerExt && u.Tmpl >= 0 {
			a.extCP[u.Tmpl]++
		}
		return next, por, false

	case stR:
		// Rename waits on the front-end fill from own fetch or, in order,
		// on the previous rename; residual is a back-pressure stall
		// (ROB/IQ/registers full).
		tr := u.Rename
		bestA := int64(-1)
		var fromFill bool
		if f := u.Fetch + a.par.FetchToRename; u.Fetch >= 0 && f <= tr {
			bestA, next, fromFill = f, node{n.i, stF}, true
		}
		if n.i > 0 {
			if pr := a.cu[n.i-1].Rename; pr >= 0 && pr <= tr && pr > bestA {
				bestA, next, fromFill = pr, node{n.i - 1, stR}, false
			}
		}
		if bestA < 0 {
			return node{}, por, true
		}
		por[Structural] += tr - bestA
		if fromFill { // the fill edge carries the front-end depth itself
			por[Inherent] += a.par.FetchToRename
		}
		return next, por, false

	default: // stF
		// Fetch follows the previous fetch (in order), a branch-
		// misprediction redirect, or a memory-ordering flush refetch.
		tf := u.Fetch
		bestA, bestPref := int64(-1), 0
		kind := 0 // 1 = order, 2 = flush, 3 = redirect
		if n.i > 0 {
			if pf := a.cu[n.i-1].Fetch; pf >= 0 && pf <= tf {
				bestA, bestPref, next, kind = pf, 1, node{n.i - 1, stF}, 1
			}
		}
		if fi := sort.Search(len(a.flushes), func(k int) bool { return a.flushes[k] >= tf }); fi > 0 {
			cf := a.flushes[fi-1]
			// Predecessor: the latest uop committed by the flush cycle.
			if j := sort.Search(len(a.cu), func(k int) bool { return a.cu[k].Commit > cf }); j > 0 && j-1 < n.i {
				if arr := cf + 1; arr <= tf && (arr > bestA || (arr == bestA && bestPref < 2)) {
					bestA, bestPref, next, kind = arr, 2, node{j - 1, stC}, 2
				}
			}
		}
		if b := a.lastMisp[n.i]; b >= 0 {
			if arr := a.cu[b].Done + 1; arr <= tf && (arr > bestA || (arr == bestA && bestPref < 3)) {
				bestA, bestPref, next, kind = arr, 3, node{b, stD}, 3
			}
		}
		if bestA < 0 {
			return node{}, por, true
		}
		switch kind {
		case 3: // redirect + refill are all the misprediction's fault
			por[Mispredict] += tf - a.t(next)
		case 2: // flush refetch: charge the ordering violation
			por[Replay] += tf - a.t(next)
		default: // fetch order: gaps are front-end bandwidth/i-cache
			por[Structural] += tf - bestA
		}
		return next, por, false
	}
}

// noteSerCP charges critical-path serialization cycles to the handle's
// template and static site.
func (a *analysis) noteSerCP(u *obs.UopTrace, ser int64) {
	if ser <= 0 || u.Tmpl < 0 {
		return
	}
	a.serCP[u.Tmpl] += ser
	a.siteSerCP[u.Static] += ser
}

// scoreboard aggregates per-template and per-site serialization columns.
func (a *analysis) scoreboard(rep *Report) {
	type siteAgg struct {
		op        string
		tmpl      int
		instances int64
		serDelay  int64
	}
	tmpl := map[int]*TemplateScore{}
	sites := map[int]*siteAgg{}
	for i := a.lo; i <= a.hi; i++ {
		u := &a.cu[i]
		if u.Tmpl < 0 {
			continue
		}
		ts := tmpl[u.Tmpl]
		if ts == nil {
			ts = &TemplateScore{Template: u.Tmpl}
			tmpl[u.Tmpl] = ts
		}
		ts.Handles++
		ts.Embedded += int64(u.N)
		ts.UopsSaved += int64(u.N) - 1
		if u.SerLat > 0 {
			ts.SerInstances++
			ts.SerDelay += u.SerLat
		}
		if u.SerExt {
			ts.ExtBound++
		}
		sa := sites[u.Static]
		if sa == nil {
			sa = &siteAgg{op: u.Op, tmpl: u.Tmpl}
			sites[u.Static] = sa
		}
		sa.instances++
		sa.serDelay += u.SerLat
	}
	for id, ts := range tmpl {
		ts.SavedCycles = float64(ts.UopsSaved) / float64(a.par.Width)
		ts.SerCyclesCP = a.serCP[id]
		ts.ExtBoundCP = a.extCP[id]
		if rep.TotalCycles > 0 {
			ts.CPShare = float64(ts.SerCyclesCP) / float64(rep.TotalCycles)
		}
		ts.Net = ts.SavedCycles - float64(ts.SerCyclesCP)
		rep.Templates = append(rep.Templates, *ts)
	}
	sort.Slice(rep.Templates, func(i, j int) bool {
		a, b := rep.Templates[i], rep.Templates[j]
		if a.SerCyclesCP != b.SerCyclesCP {
			return a.SerCyclesCP > b.SerCyclesCP
		}
		if a.SerDelay != b.SerDelay {
			return a.SerDelay > b.SerDelay
		}
		return a.Template < b.Template
	})
	for static, sa := range sites {
		rep.Offenders = append(rep.Offenders, Offender{
			Static: static, Op: sa.op, Template: sa.tmpl,
			Instances: sa.instances, SerDelay: sa.serDelay,
			SerCyclesCP: a.siteSerCP[static],
		})
	}
	sort.Slice(rep.Offenders, func(i, j int) bool {
		a, b := rep.Offenders[i], rep.Offenders[j]
		if a.SerCyclesCP != b.SerCyclesCP {
			return a.SerCyclesCP > b.SerCyclesCP
		}
		if a.SerDelay != b.SerDelay {
			return a.SerDelay > b.SerDelay
		}
		return a.Static < b.Static
	})
}

// observedSlack measures, per register-writing committed uop, the minimum
// over consumers of (consumer issue − output ready), and aggregates the
// mean per (static, template) site. Outputs with no observed consumer get
// slack.BigSlack, matching the profiler's convention.
func (a *analysis) observedSlack(rep *Report) {
	const noObs = int64(-1)
	minSlack := make([]int64, len(a.cu))
	for i := range minSlack {
		minSlack[i] = noObs
	}
	for i := range a.cu {
		u := &a.cu[i]
		if u.Issue < 0 {
			continue
		}
		for _, p := range a.dataProd[i] {
			if p < 0 {
				continue
			}
			py := a.cu[p].Ready
			if py < 0 {
				continue
			}
			sl := u.Issue - py
			if sl < 0 {
				sl = 0
			}
			if minSlack[p] == noObs || sl < minSlack[p] {
				minSlack[p] = sl
			}
		}
	}
	type key struct{ static, tmpl int }
	type agg struct {
		sum   int64
		count int64
	}
	by := map[key]*agg{}
	for i := a.lo; i <= a.hi; i++ {
		u := &a.cu[i]
		if u.Dst < 0 || u.Ready < 0 {
			continue
		}
		sl := minSlack[i]
		if sl == noObs || sl > slack.BigSlack {
			sl = slack.BigSlack
		}
		k := key{u.Static, u.Tmpl}
		g := by[k]
		if g == nil {
			g = &agg{}
			by[k] = g
		}
		g.sum += sl
		g.count++
	}
	for k, g := range by {
		rep.Slack = append(rep.Slack, SlackObs{
			Static: k.static, Template: k.tmpl,
			Count: g.count, MeanSlack: float64(g.sum) / float64(g.count),
		})
	}
	sort.Slice(rep.Slack, func(i, j int) bool { return rep.Slack[i].Static < rep.Slack[j].Static })
}
