package critpath_test

import (
	"bytes"
	"testing"

	"repro/internal/critpath"
	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/slack"
)

// ilpLoop aggregates independent work into mini-graphs — the serialization
// pathology the attribution engine exists to expose.
func ilpLoop(iters int64) *prog.Program {
	b := prog.NewBuilder("ilp")
	b.Li(1, iters)
	b.Li(2, 1)
	b.Li(3, 2)
	b.Li(4, 3)
	b.Li(5, 4)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Addi(3, 3, 2)
	b.Addi(4, 4, 3)
	b.Addi(5, 5, 4)
	b.Xori(6, 2, 0x0f)
	b.Xori(7, 3, 0xf0)
	b.Add(8, 6, 7)
	b.Add(0, 0, 8)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	return b.MustBuild()
}

func tracedRun(t testing.TB, p *prog.Program, cfg pipeline.Config) ([]obs.UopTrace, []obs.TraceEvent, *minigraph.Selection) {
	t.Helper()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	freq := make([]int64, len(p.Code))
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	cands := minigraph.Enumerate(p, minigraph.DefaultLimits())
	sel := minigraph.Select(p, cands, freq, minigraph.DefaultSelectConfig())
	if len(sel.Instances) == 0 {
		t.Fatal("nothing selected")
	}
	var buf bytes.Buffer
	watch := &obs.Observer{Trace: obs.NewPipetrace(&buf)}
	if _, err := pipeline.RunObserved(p, res.Trace, cfg, pipeline.MGConfig{Selection: sel}, nil, watch); err != nil {
		t.Fatal(err)
	}
	if err := watch.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	uops, events, err := obs.ReadPipetrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return uops, events, sel
}

// paramsFor is the derivation the CLIs use.
func paramsFor(cfg pipeline.Config) critpath.Params {
	return critpath.ParamsFor(cfg)
}

// A real pipeline-generated trace must satisfy the attribution invariant,
// expose the ilpLoop serialization on the critical path, and fill the
// scoreboard consistently with the trace's own handle records.
func TestPipelineTraceAttribution(t *testing.T) {
	cfg := pipeline.Reduced()
	uops, events, _ := tracedRun(t, ilpLoop(300), cfg)
	rep, err := critpath.Analyze(uops, events, paramsFor(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasDeps {
		t.Fatal("pipeline trace should carry dependence fields")
	}
	var sum int64
	for b := critpath.Bucket(0); b < critpath.NumBuckets; b++ {
		if rep.Buckets[b] < 0 {
			t.Errorf("bucket %v negative: %d", b, rep.Buckets[b])
		}
		sum += rep.Buckets[b]
	}
	if sum != rep.TotalCycles {
		t.Errorf("buckets sum %d != critical path %d", sum, rep.TotalCycles)
	}
	if rep.TotalCycles <= 0 || rep.PathNodes <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
	if rep.Buckets[critpath.Serialization] == 0 {
		t.Error("ilpLoop under Struct-All selection should put serialization on the critical path")
	}
	if len(rep.Templates) == 0 {
		t.Fatal("empty scoreboard")
	}
	var handles, embedded int64
	for _, u := range uops {
		if !u.Squashed && u.Tmpl >= 0 {
			handles++
			embedded += int64(u.N)
		}
	}
	var sbHandles, sbEmbedded, sbSerCP int64
	for _, ts := range rep.Templates {
		sbHandles += ts.Handles
		sbEmbedded += ts.Embedded
		sbSerCP += ts.SerCyclesCP
	}
	if sbHandles != handles || sbEmbedded != embedded {
		t.Errorf("scoreboard covers %d handles/%d embedded, trace has %d/%d",
			sbHandles, sbEmbedded, handles, embedded)
	}
	if sbSerCP != rep.Buckets[critpath.Serialization] {
		t.Errorf("scoreboard CP serialization %d != bucket %d",
			sbSerCP, rep.Buckets[critpath.Serialization])
	}
	if rep.Templates[0].SerCyclesCP < rep.Templates[len(rep.Templates)-1].SerCyclesCP {
		t.Error("scoreboard not ranked by critical-path serialization")
	}
	if len(rep.Slack) == 0 {
		t.Error("no observed slack rows")
	}
}

// The comparator runs end-to-end against a real profiler run: profile the
// program, analyze an observed run, and compare — most sites must yield a
// comparable prediction.
func TestCompareSlackEndToEnd(t *testing.T) {
	p := ilpLoop(300)
	cfg := pipeline.Reduced()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	acc := slack.NewAccumulator(p.Name, p.NumInstrs())
	if _, err := pipeline.Run(p, res.Trace, cfg, pipeline.MGConfig{}, acc); err != nil {
		t.Fatal(err)
	}
	prof := acc.Profile()
	uops, events, sel := tracedRun(t, p, cfg)
	rep, err := critpath.Analyze(uops, events, paramsFor(cfg))
	if err != nil {
		t.Fatal(err)
	}
	tmplOut := map[int]int{}
	for _, inst := range sel.Instances {
		if inst.Cand.OutputIdx >= 0 {
			tmplOut[inst.Template] = inst.Cand.OutputIdx
		}
	}
	sum := critpath.CompareSlack(prof, rep, tmplOut, 4.0)
	if sum.Sites == 0 {
		t.Fatal("comparator matched no sites")
	}
	if sum.AgreeRate() < 0 || sum.AgreeRate() > 1 {
		t.Errorf("agree rate %v out of range", sum.AgreeRate())
	}
	if len(sum.ByTemplate) == 0 {
		t.Error("no per-template agreement")
	}
}
