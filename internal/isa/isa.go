// Package isa defines the instruction set architecture used throughout the
// mini-graph simulator: a small load/store RISC modeled on the Alpha AXP.
//
// The ISA deliberately has the "singleton RISC interface" that mini-graphs
// generalize: every instruction reads at most two registers, writes at most
// one register, makes at most one memory reference and at most one control
// transfer. Thirty-two integer registers are provided; register 31 reads as
// zero and writes to it are discarded.
package isa

import "fmt"

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// Reg names an architectural register. ZeroReg reads as zero.
type Reg uint8

// Distinguished registers. The calling convention used by the workload
// builder: SP is the stack pointer, RA the return address, RV the return
// value. None of these are special to the hardware except ZeroReg.
const (
	RV      Reg = 0
	RA      Reg = 26
	SP      Reg = 30
	ZeroReg Reg = 31
	// NoReg marks an absent register operand.
	NoReg Reg = 255
)

// String returns the conventional name of the register.
func (r Reg) String() string {
	switch r {
	case ZeroReg:
		return "zero"
	case SP:
		return "sp"
	case RA:
		return "ra"
	case NoReg:
		return "-"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Valid reports whether r names a real architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. The set is small but sufficient to express the workload suite:
// ALU register and immediate forms, multiply/divide as complex ops, loads
// and stores of words and bytes, conditional branches that test one
// register, an unconditional branch, indirect jumps, and call/return.
const (
	OpNop Op = iota

	// Simple integer ALU, register forms: rd <- rs1 op rs2.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpCmpEq // rd <- (rs1 == rs2) ? 1 : 0
	OpCmpLt // rd <- (rs1 < rs2) signed ? 1 : 0
	OpCmpLe // rd <- (rs1 <= rs2) signed ? 1 : 0
	OpCmpUlt

	// Simple integer ALU, immediate forms: rd <- rs1 op imm.
	OpAddi
	OpSubi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpCmpEqi
	OpCmpLti
	OpCmpLei

	// Lda loads an immediate (address or constant): rd <- imm.
	OpLda

	// Complex integer ops (occupy the single complex issue port).
	OpMul
	OpDiv
	OpRem

	// Memory: effective address is rs1 + imm.
	OpLdw // rd <- mem32[rs1+imm]
	OpLdb // rd <- zx(mem8[rs1+imm])
	OpStw // mem32[rs1+imm] <- rs2
	OpStb // mem8[rs1+imm] <- rs2 (low byte)

	// Control. Conditional branches test rs1 against zero.
	OpBr   // unconditional pc-relative branch
	OpBeqz // branch if rs1 == 0
	OpBnez // branch if rs1 != 0
	OpBltz // branch if rs1 < 0 (signed)
	OpBgez // branch if rs1 >= 0 (signed)
	OpJmp  // indirect jump to rs1
	OpJsr  // call: rd <- return pc, jump to target (direct)
	OpJsrI // call indirect: rd <- return pc, jump to rs1
	OpRet  // return: jump to rs1 (RAS pop)

	OpHalt // terminate the program

	numOps
)

var opNames = [...]string{
	OpNop: "nop",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra",
	OpCmpEq: "cmpeq", OpCmpLt: "cmplt", OpCmpLe: "cmple", OpCmpUlt: "cmpult",
	OpAddi: "addi", OpSubi: "subi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai",
	OpCmpEqi: "cmpeqi", OpCmpLti: "cmplti", OpCmpLei: "cmplei",
	OpLda: "lda",
	OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpLdw: "ldw", OpLdb: "ldb", OpStw: "stw", OpStb: "stb",
	OpBr: "br", OpBeqz: "beqz", OpBnez: "bnez", OpBltz: "bltz", OpBgez: "bgez",
	OpJmp: "jmp", OpJsr: "jsr", OpJsrI: "jsri", OpRet: "ret",
	OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Class partitions opcodes by the issue port they require.
type Class uint8

// Issue classes, matching Table 1's port model.
const (
	ClassNop Class = iota
	ClassSimple
	ClassComplex
	ClassLoad
	ClassStore
	ClassBranch // conditional and unconditional direct branches
	ClassJump   // indirect jumps, calls, returns
)

var classNames = [...]string{"nop", "simple", "complex", "load", "store", "branch", "jump"}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassOf returns the issue class of an opcode.
func ClassOf(o Op) Class {
	switch o {
	case OpNop, OpHalt:
		return ClassNop
	case OpMul, OpDiv, OpRem:
		return ClassComplex
	case OpLdw, OpLdb:
		return ClassLoad
	case OpStw, OpStb:
		return ClassStore
	case OpBr, OpBeqz, OpBnez, OpBltz, OpBgez:
		return ClassBranch
	case OpJmp, OpJsr, OpJsrI, OpRet:
		return ClassJump
	default:
		return ClassSimple
	}
}

// Latency returns the execution latency in cycles of an opcode, excluding
// memory-hierarchy time for loads (the pipeline adds cache access latency).
func Latency(o Op) int {
	switch ClassOf(o) {
	case ClassComplex:
		if o == OpMul {
			return 3
		}
		return 12 // div, rem
	case ClassLoad, ClassStore:
		return 1 // address generation; cache latency added by the memory model
	default:
		return 1
	}
}

// Instr is one static instruction. Register operands that are unused hold
// NoReg. The simulator treats instructions structurally; there is no binary
// encoding (Program carries instruction slices directly).
type Instr struct {
	Op   Op
	Rd   Reg   // destination register or NoReg
	Rs1  Reg   // first source or NoReg
	Rs2  Reg   // second source or NoReg
	Imm  int64 // immediate / displacement
	Targ int   // branch/call target: static instruction index (resolved by the assembler)
}

// IsBranch reports whether the instruction is any control transfer.
func (in Instr) IsBranch() bool {
	c := ClassOf(in.Op)
	return c == ClassBranch || c == ClassJump
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (in Instr) IsCondBranch() bool {
	switch in.Op {
	case OpBeqz, OpBnez, OpBltz, OpBgez:
		return true
	}
	return false
}

// IsMem reports whether the instruction references memory.
func (in Instr) IsMem() bool {
	c := ClassOf(in.Op)
	return c == ClassLoad || c == ClassStore
}

// IsLoad reports whether the instruction is a load.
func (in Instr) IsLoad() bool { return ClassOf(in.Op) == ClassLoad }

// IsStore reports whether the instruction is a store.
func (in Instr) IsStore() bool { return ClassOf(in.Op) == ClassStore }

// IsCall reports whether the instruction pushes a return address (for RAS).
func (in Instr) IsCall() bool { return in.Op == OpJsr || in.Op == OpJsrI }

// IsReturn reports whether the instruction pops the RAS.
func (in Instr) IsReturn() bool { return in.Op == OpRet }

// WritesReg reports whether the instruction produces a register value.
// Writes to the zero register are architectural no-ops and excluded.
func (in Instr) WritesReg() bool {
	return in.Rd != NoReg && in.Rd != ZeroReg
}

// Sources returns the register sources actually read (excluding the zero
// register, which needs no dataflow edge: it is always ready).
func (in Instr) Sources() []Reg {
	var buf [2]Reg
	return in.AppendSources(buf[:0])
}

// AppendSources appends the instruction's register sources to dst and
// returns it. With a caller-provided backing array it is the
// allocation-free form of Sources for per-uop hot paths.
func (in Instr) AppendSources(dst []Reg) []Reg {
	if in.Rs1 != NoReg && in.Rs1 != ZeroReg && in.Rs1.Valid() {
		dst = append(dst, in.Rs1)
	}
	if in.Rs2 != NoReg && in.Rs2 != ZeroReg && in.Rs2.Valid() {
		dst = append(dst, in.Rs2)
	}
	return dst
}

// ReadsReg reports whether the instruction reads register r (excluding zero).
func (in Instr) ReadsReg(r Reg) bool {
	if r == ZeroReg || r == NoReg {
		return false
	}
	return in.Rs1 == r || in.Rs2 == r
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch ClassOf(in.Op) {
	case ClassNop:
		return in.Op.String()
	case ClassSimple, ClassComplex:
		if in.Op == OpLda {
			return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
		}
		if in.Rs2 == NoReg {
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case ClassBranch:
		if in.Op == OpBr {
			return fmt.Sprintf("%s @%d", in.Op, in.Targ)
		}
		return fmt.Sprintf("%s %s, @%d", in.Op, in.Rs1, in.Targ)
	case ClassJump:
		switch in.Op {
		case OpJsr:
			return fmt.Sprintf("%s %s, @%d", in.Op, in.Rd, in.Targ)
		case OpJsrI:
			return fmt.Sprintf("%s %s, (%s)", in.Op, in.Rd, in.Rs1)
		default:
			return fmt.Sprintf("%s (%s)", in.Op, in.Rs1)
		}
	}
	return in.Op.String()
}
