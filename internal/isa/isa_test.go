package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		0:       "r0",
		5:       "r5",
		RA:      "ra",
		SP:      "sp",
		ZeroReg: "zero",
		NoReg:   "-",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestRegValid(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		if !r.Valid() {
			t.Errorf("register %d should be valid", r)
		}
	}
	if Reg(NumRegs).Valid() {
		t.Error("register 32 should be invalid")
	}
	if NoReg.Valid() {
		t.Error("NoReg should be invalid")
	}
}

func TestEveryOpHasNameAndClass(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		if !o.Valid() {
			t.Fatalf("op %d unexpectedly invalid", o)
		}
		s := o.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", o)
		}
		c := ClassOf(o)
		if strings.HasPrefix(c.String(), "class(") {
			t.Errorf("op %s has unnamed class %d", o, c)
		}
		if l := Latency(o); l < 1 {
			t.Errorf("op %s has nonsense latency %d", o, l)
		}
	}
	if numOps.Valid() {
		t.Error("numOps should be invalid")
	}
}

func TestClassOf(t *testing.T) {
	cases := map[Op]Class{
		OpNop:    ClassNop,
		OpHalt:   ClassNop,
		OpAdd:    ClassSimple,
		OpAddi:   ClassSimple,
		OpLda:    ClassSimple,
		OpCmpUlt: ClassSimple,
		OpMul:    ClassComplex,
		OpDiv:    ClassComplex,
		OpRem:    ClassComplex,
		OpLdw:    ClassLoad,
		OpLdb:    ClassLoad,
		OpStw:    ClassStore,
		OpStb:    ClassStore,
		OpBr:     ClassBranch,
		OpBeqz:   ClassBranch,
		OpBgez:   ClassBranch,
		OpJmp:    ClassJump,
		OpJsr:    ClassJump,
		OpJsrI:   ClassJump,
		OpRet:    ClassJump,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestLatencies(t *testing.T) {
	if Latency(OpAdd) != 1 {
		t.Errorf("simple int latency = %d, want 1", Latency(OpAdd))
	}
	if Latency(OpMul) != 3 {
		t.Errorf("mul latency = %d, want 3", Latency(OpMul))
	}
	if Latency(OpDiv) != 12 {
		t.Errorf("div latency = %d, want 12", Latency(OpDiv))
	}
	if Latency(OpLdw) != 1 {
		t.Errorf("load agen latency = %d, want 1 (cache adds the rest)", Latency(OpLdw))
	}
}

func TestInstrPredicates(t *testing.T) {
	ld := Instr{Op: OpLdw, Rd: 1, Rs1: 2, Imm: 8}
	st := Instr{Op: OpStw, Rs1: 2, Rs2: 3, Imm: 8}
	br := Instr{Op: OpBnez, Rs1: 4, Targ: 10}
	jm := Instr{Op: OpBr, Targ: 3}
	call := Instr{Op: OpJsr, Rd: RA, Targ: 20}
	ret := Instr{Op: OpRet, Rs1: RA}
	add := Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}

	if !ld.IsMem() || !ld.IsLoad() || ld.IsStore() || ld.IsBranch() {
		t.Error("load predicates wrong")
	}
	if !st.IsMem() || st.IsLoad() || !st.IsStore() {
		t.Error("store predicates wrong")
	}
	if !br.IsBranch() || !br.IsCondBranch() || br.IsMem() {
		t.Error("branch predicates wrong")
	}
	if !jm.IsBranch() || jm.IsCondBranch() {
		t.Error("br is unconditional, predicates wrong")
	}
	if !call.IsCall() || call.IsReturn() || !call.IsBranch() {
		t.Error("call predicates wrong")
	}
	if !ret.IsReturn() || ret.IsCall() {
		t.Error("ret predicates wrong")
	}
	if !add.WritesReg() {
		t.Error("add should write a register")
	}
	zw := Instr{Op: OpAdd, Rd: ZeroReg, Rs1: 1, Rs2: 2}
	if zw.WritesReg() {
		t.Error("write to zero register should not count as a register write")
	}
	nw := Instr{Op: OpStw, Rd: NoReg, Rs1: 1, Rs2: 2}
	if nw.WritesReg() {
		t.Error("store should not write a register")
	}
}

func TestSources(t *testing.T) {
	add := Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}
	if got := add.Sources(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("add sources = %v, want [r2 r3]", got)
	}
	addi := Instr{Op: OpAddi, Rd: 1, Rs1: 2, Rs2: NoReg, Imm: 4}
	if got := addi.Sources(); len(got) != 1 || got[0] != 2 {
		t.Errorf("addi sources = %v, want [r2]", got)
	}
	zs := Instr{Op: OpAdd, Rd: 1, Rs1: ZeroReg, Rs2: ZeroReg}
	if got := zs.Sources(); len(got) != 0 {
		t.Errorf("zero-source add sources = %v, want []", got)
	}
	lda := Instr{Op: OpLda, Rd: 1, Rs1: NoReg, Rs2: NoReg, Imm: 100}
	if got := lda.Sources(); len(got) != 0 {
		t.Errorf("lda sources = %v, want []", got)
	}
}

func TestReadsReg(t *testing.T) {
	add := Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}
	if !add.ReadsReg(2) || !add.ReadsReg(3) || add.ReadsReg(1) || add.ReadsReg(4) {
		t.Error("ReadsReg wrong for add")
	}
	if add.ReadsReg(ZeroReg) {
		t.Error("nothing reads the zero register as a dataflow source")
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpAddi, Rd: 1, Rs1: 2, Rs2: NoReg, Imm: -4}, "addi r1, r2, -4"},
		{Instr{Op: OpLda, Rd: 7, Rs1: NoReg, Rs2: NoReg, Imm: 4096}, "lda r7, 4096"},
		{Instr{Op: OpLdw, Rd: 1, Rs1: SP, Rs2: NoReg, Imm: 16}, "ldw r1, 16(sp)"},
		{Instr{Op: OpStw, Rd: NoReg, Rs1: SP, Rs2: 9, Imm: 0}, "stw r9, 0(sp)"},
		{Instr{Op: OpBnez, Rd: NoReg, Rs1: 4, Rs2: NoReg, Targ: 12}, "bnez r4, @12"},
		{Instr{Op: OpBr, Rd: NoReg, Rs1: NoReg, Rs2: NoReg, Targ: 3}, "br @3"},
		{Instr{Op: OpJsr, Rd: RA, Rs1: NoReg, Rs2: NoReg, Targ: 20}, "jsr ra, @20"},
		{Instr{Op: OpRet, Rd: NoReg, Rs1: RA, Rs2: NoReg}, "ret (ra)"},
		{Instr{Op: OpNop}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: Sources never returns the zero register, NoReg, or an invalid
// register, and returns at most two entries.
func TestSourcesProperty(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8) bool {
		in := Instr{Op: Op(op % uint8(numOps)), Rd: Reg(rd), Rs1: Reg(rs1), Rs2: Reg(rs2)}
		srcs := in.Sources()
		if len(srcs) > 2 {
			return false
		}
		for _, s := range srcs {
			if !s.Valid() || s == ZeroReg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: branch classification is consistent — IsCondBranch implies
// IsBranch, and memory/branch classes are disjoint.
func TestClassConsistencyProperty(t *testing.T) {
	f := func(op uint8) bool {
		in := Instr{Op: Op(op % uint8(numOps)), Rs1: 1, Rs2: 2, Rd: 3}
		if in.IsCondBranch() && !in.IsBranch() {
			return false
		}
		if in.IsMem() && in.IsBranch() {
			return false
		}
		if in.IsLoad() && in.IsStore() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
