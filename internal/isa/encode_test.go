package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpAddi, Rd: 1, Rs1: 2, Rs2: NoReg, Imm: -42},
		{Op: OpLda, Rd: 7, Rs1: NoReg, Rs2: NoReg, Imm: 0x100000},
		{Op: OpLdw, Rd: 1, Rs1: SP, Rs2: NoReg, Imm: 16},
		{Op: OpStw, Rd: NoReg, Rs1: SP, Rs2: 9, Imm: -8},
		{Op: OpBnez, Rd: NoReg, Rs1: 4, Rs2: NoReg, Targ: 1234},
		{Op: OpJsr, Rd: RA, Rs1: NoReg, Rs2: NoReg, Targ: 99},
		{Op: OpRet, Rd: NoReg, Rs1: RA, Rs2: NoReg},
		{Op: OpHalt, Rd: NoReg, Rs1: NoReg, Rs2: NoReg},
	}
	for _, in := range cases {
		got, err := Decode(Encode(in))
		if err != nil {
			t.Errorf("Decode(Encode(%v)): %v", in, err)
			continue
		}
		if got != in {
			t.Errorf("round trip: %v -> %v", in, got)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(uint64(200) << 56); err == nil {
		t.Error("invalid opcode should fail")
	}
	// Valid opcode, invalid register (e.g. 40).
	w := Encode(Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3})
	w = w&^(uint64(0xff)<<48) | uint64(40)<<48
	if _, err := Decode(w); err == nil {
		t.Error("invalid register should fail")
	}
}

// Property: any well-formed instruction round-trips exactly.
func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(opRaw, rd, rs1, rs2 uint8, payload int32) bool {
		op := Op(opRaw % uint8(numOps))
		mkReg := func(v uint8) Reg {
			if v%5 == 0 {
				return NoReg
			}
			return Reg(v % NumRegs)
		}
		in := Instr{Op: op, Rd: mkReg(rd), Rs1: mkReg(rs1), Rs2: mkReg(rs2)}
		if usesTarget(op) {
			in.Targ = int(payload)
		} else {
			in.Imm = int64(payload)
		}
		got, err := Decode(Encode(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
