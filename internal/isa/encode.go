package isa

import "fmt"

// Binary encoding. Each instruction encodes to a fixed 64-bit word:
//
//	bits 63..56  opcode
//	bits 55..48  rd   (255 = none)
//	bits 47..40  rs1  (255 = none)
//	bits 39..32  rs2  (255 = none)
//	bits 31..0   immediate (sign-extended on decode) or, for direct
//	             control transfers, the static target index
//
// The toy ISA is structural in memory; this fixed-width encoding exists
// for program serialization and tooling round trips, not for code density.

// usesTarget reports whether the 32-bit payload carries the branch target
// (static index) rather than an immediate.
func usesTarget(op Op) bool {
	switch op {
	case OpBr, OpBeqz, OpBnez, OpBltz, OpBgez, OpJsr:
		return true
	}
	return false
}

// Encode packs an instruction into its 64-bit binary form.
func Encode(in Instr) uint64 {
	var payload uint32
	if usesTarget(in.Op) {
		payload = uint32(int32(in.Targ))
	} else {
		payload = uint32(int32(in.Imm))
	}
	return uint64(in.Op)<<56 | uint64(in.Rd)<<48 | uint64(in.Rs1)<<40 |
		uint64(in.Rs2)<<32 | uint64(payload)
}

// Decode unpacks a 64-bit word into an instruction, validating the opcode
// and register fields.
func Decode(w uint64) (Instr, error) {
	in := Instr{
		Op:  Op(w >> 56),
		Rd:  Reg(w >> 48),
		Rs1: Reg(w >> 40),
		Rs2: Reg(w >> 32),
	}
	if !in.Op.Valid() {
		return Instr{}, fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	for _, r := range [3]Reg{in.Rd, in.Rs1, in.Rs2} {
		if r != NoReg && !r.Valid() {
			return Instr{}, fmt.Errorf("isa: invalid register %d in %s", uint8(r), in.Op)
		}
	}
	payload := int64(int32(uint32(w)))
	if usesTarget(in.Op) {
		in.Targ = int(payload)
	} else {
		in.Imm = payload
	}
	return in, nil
}
