package prog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses a textual assembly program into a Program. The syntax is
// line-oriented:
//
//	; comment (also "#" and "//")
//	label:
//	    li   r1, 100        ; rd, imm
//	    add  r2, r2, r1     ; rd, rs1, rs2
//	    addi r1, r1, -1     ; rd, rs1, imm
//	    ldw  r3, 8(r4)      ; rd, disp(base)
//	    stw  r3, 8(r4)      ; rs, disp(base)  (value first, like loads)
//	    bnez r1, label
//	    jsr  fn
//	    ret
//	    halt
//
// Data directives allocate in the data segment and define the label as the
// address constant usable via `li`:
//
//	buf: .space 64          ; 64 zeroed bytes
//	tab: .word 1, 2, 3      ; little-endian 32-bit words
//	msg: .ascii "hello"
//
// Registers are r0–r31 plus the aliases zero, sp, ra, rv. Immediates may
// be decimal, hex (0x...), negative, or a data label (its address).
func Assemble(name, src string) (*Program, error) {
	a := &assembler{
		b:          NewBuilder(name),
		dataLabels: map[string]int64{},
	}
	// Pass 1: collect data directives so code can reference them by name.
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := a.scanData(line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, ln+1, err)
		}
	}
	// Pass 2: emit code.
	for ln, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := a.line(line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, ln+1, err)
		}
	}
	return a.b.Build()
}

// MustAssemble is Assemble that panics on error, for tests and tables.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	b          *Builder
	dataLabels map[string]int64
}

func stripComment(s string) string {
	for _, mark := range []string{";", "#", "//"} {
		if i := strings.Index(s, mark); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

// scanData processes "label: .directive args" lines during pass 1,
// allocating data and remembering label addresses. Code lines are ignored.
func (a *assembler) scanData(line string) error {
	label, rest, ok := splitLabel(line)
	if !ok || !strings.HasPrefix(rest, ".") {
		return nil
	}
	dir, args, _ := strings.Cut(rest, " ")
	args = strings.TrimSpace(args)
	switch dir {
	case ".space":
		n, err := strconv.Atoi(strings.TrimSpace(args))
		if err != nil || n < 0 {
			return fmt.Errorf("bad .space size %q", args)
		}
		a.dataLabels[label] = a.b.Space(n)
	case ".word":
		var vals []uint32
		for _, f := range strings.Split(args, ",") {
			v, err := parseImm(strings.TrimSpace(f), a.dataLabels)
			if err != nil {
				return err
			}
			vals = append(vals, uint32(v))
		}
		if len(vals) == 0 {
			return fmt.Errorf(".word needs values")
		}
		a.dataLabels[label] = a.b.Words(vals...)
	case ".ascii":
		s, err := strconv.Unquote(args)
		if err != nil {
			return fmt.Errorf("bad .ascii string %q: %v", args, err)
		}
		a.dataLabels[label] = a.b.Bytes([]byte(s))
	default:
		return fmt.Errorf("unknown directive %q", dir)
	}
	return nil
}

func splitLabel(line string) (label, rest string, ok bool) {
	i := strings.Index(line, ":")
	if i < 0 {
		return "", line, false
	}
	label = strings.TrimSpace(line[:i])
	rest = strings.TrimSpace(line[i+1:])
	if label == "" || strings.ContainsAny(label, " \t,()") {
		return "", line, false
	}
	return label, rest, true
}

func (a *assembler) line(line string) error {
	if label, rest, ok := splitLabel(line); ok {
		if strings.HasPrefix(rest, ".") {
			return nil // data directive, handled in pass 1
		}
		a.b.Label(label)
		if rest == "" {
			return nil
		}
		line = rest
	}
	return a.instr(line)
}

func parseReg(s string) (isa.Reg, error) {
	switch s {
	case "zero":
		return isa.ZeroReg, nil
	case "sp":
		return isa.SP, nil
	case "ra":
		return isa.RA, nil
	case "rv":
		return isa.RV, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string, labels map[string]int64) (int64, error) {
	if v, ok := labels[s]; ok {
		return v, nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "disp(base)".
func parseMem(s string) (disp int64, base isa.Reg, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	if dispStr == "" {
		dispStr = "0"
	}
	disp, err = strconv.ParseInt(dispStr, 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad displacement %q", dispStr)
	}
	base, err = parseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	return disp, base, err
}

func (a *assembler) instr(line string) error {
	mnemonic, argStr, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	var args []string
	for _, f := range strings.Split(argStr, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			args = append(args, f)
		}
	}
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}

	// Register triples.
	if op, ok := regOps[mnemonic]; ok {
		if err := want(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return err
		}
		a.b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
		return nil
	}
	// Immediate forms.
	if op, ok := immOps[mnemonic]; ok {
		if err := want(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2], a.dataLabels)
		if err != nil {
			return err
		}
		a.b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: isa.NoReg, Imm: imm})
		return nil
	}

	switch mnemonic {
	case "li":
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1], a.dataLabels)
		if err != nil {
			return err
		}
		a.b.Li(rd, imm)
	case "mov":
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		a.b.Mov(rd, rs)
	case "ldw", "ldb":
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		disp, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		if mnemonic == "ldw" {
			a.b.Ldw(rd, base, disp)
		} else {
			a.b.Ldb(rd, base, disp)
		}
	case "stw", "stb":
		if err := want(2); err != nil {
			return err
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		disp, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		if mnemonic == "stw" {
			a.b.Stw(rs, base, disp)
		} else {
			a.b.Stb(rs, base, disp)
		}
	case "br":
		if err := want(1); err != nil {
			return err
		}
		a.b.Br(args[0])
	case "beqz", "bnez", "bltz", "bgez":
		if err := want(2); err != nil {
			return err
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		switch mnemonic {
		case "beqz":
			a.b.Beqz(rs, args[1])
		case "bnez":
			a.b.Bnez(rs, args[1])
		case "bltz":
			a.b.Bltz(rs, args[1])
		case "bgez":
			a.b.Bgez(rs, args[1])
		}
	case "jsr":
		if err := want(1); err != nil {
			return err
		}
		a.b.Jsr(args[0])
	case "jmp":
		if err := want(1); err != nil {
			return err
		}
		rs, err := parseReg(strings.Trim(args[0], "()"))
		if err != nil {
			return err
		}
		a.b.JmpR(rs)
	case "ret":
		if err := want(0); err != nil {
			return err
		}
		a.b.Ret()
	case "nop":
		a.b.Nop()
	case "halt":
		a.b.Halt()
	default:
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil
}

var regOps = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "or": isa.OpOr,
	"xor": isa.OpXor, "sll": isa.OpSll, "srl": isa.OpSrl, "sra": isa.OpSra,
	"cmpeq": isa.OpCmpEq, "cmplt": isa.OpCmpLt, "cmple": isa.OpCmpLe,
	"cmpult": isa.OpCmpUlt, "mul": isa.OpMul, "div": isa.OpDiv, "rem": isa.OpRem,
}

var immOps = map[string]isa.Op{
	"addi": isa.OpAddi, "subi": isa.OpSubi, "andi": isa.OpAndi,
	"ori": isa.OpOri, "xori": isa.OpXori, "slli": isa.OpSlli,
	"srli": isa.OpSrli, "srai": isa.OpSrai, "cmpeqi": isa.OpCmpEqi,
	"cmplti": isa.OpCmpLti, "cmplei": isa.OpCmpLei,
}
