package prog

import (
	"bytes"
	"strings"
	"testing"
)

func binSample(t *testing.T) *Program {
	t.Helper()
	return MustAssemble("sample", `
	buf: .space 8
	tab: .word 1, 2, 3
		li   r1, tab
		ldw  r2, (r1)
	top:
		addi r2, r2, 1
		subi r2, r2, 1
		bnez r2, top
		stw  r2, (r1)
		halt
	`)
}

func TestBinaryRoundTrip(t *testing.T) {
	p := binSample(t)
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Entry != p.Entry {
		t.Error("metadata lost")
	}
	if len(q.Code) != len(p.Code) {
		t.Fatalf("code length %d vs %d", len(q.Code), len(p.Code))
	}
	for i := range p.Code {
		if q.Code[i] != p.Code[i] {
			t.Errorf("instr %d: %v vs %v", i, q.Code[i], p.Code[i])
		}
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Error("data segment lost")
	}
	if q.Labels["top"] != p.Labels["top"] || q.Labels["tab"] != p.Labels["tab"] {
		t.Error("labels lost")
	}
	// Derived structures are rebuilt.
	if len(q.Blocks) != len(p.Blocks) {
		t.Errorf("blocks %d vs %d", len(q.Blocks), len(p.Blocks))
	}
	for i := range p.Code {
		if q.LiveAfter(i) != p.LiveAfter(i) {
			t.Errorf("liveness differs at %d", i)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a program")); err == nil {
		t.Error("bad magic accepted")
	}
	p := binSample(t)
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix length must error, not panic.
	full := buf.Bytes()
	for _, n := range []int{0, 3, 4, 9, 17, len(full) / 2, len(full) - 1} {
		if n > len(full) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
	// Corrupt an opcode byte.
	bad := append([]byte(nil), full...)
	// Code starts after magic(4)+nameLen(4)+name+entry(4)+n(4).
	off := 4 + 4 + len(p.Name) + 4 + 4
	bad[off+7] = 0xFF // big-endian... the opcode is the top byte of the LE u64
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt opcode accepted")
	}
}
