package prog

import "repro/internal/isa"

// buildCFG partitions the code into basic blocks and records successor
// edges. Leaders are: the entry, every branch target, and every instruction
// following a control transfer or halt. Indirect transfers (jmp, jsri, ret)
// have unknown successors; their blocks are marked IndirectExit and, for
// direct calls (jsr), both the callee entry and the fall-through (the
// return point) are treated as successors so liveness flows conservatively.
func buildCFG(p *Program) {
	n := len(p.Code)
	leader := make([]bool, n+1)
	leader[0] = true
	for i, in := range p.Code {
		switch {
		case in.Op == isa.OpHalt:
			if i+1 < n {
				leader[i+1] = true
			}
		case in.IsBranch():
			if i+1 < n {
				leader[i+1] = true
			}
			if in.Targ >= 0 && in.Targ < n {
				leader[in.Targ] = true
			}
		}
	}

	p.Blocks = p.Blocks[:0]
	p.BlockOf = make([]int, n)
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			p.Blocks = append(p.Blocks, Block{Start: start, End: i})
			start = i
		}
	}
	for bi := range p.Blocks {
		b := &p.Blocks[bi]
		for i := b.Start; i < b.End; i++ {
			p.BlockOf[i] = bi
		}
	}

	// Successor edges.
	for bi := range p.Blocks {
		b := &p.Blocks[bi]
		last := p.Code[b.End-1]
		addSucc := func(index int) {
			if index >= 0 && index < n {
				b.Succs = append(b.Succs, p.BlockOf[index])
			}
		}
		switch {
		case last.Op == isa.OpHalt:
			// no successors
		case last.Op == isa.OpBr:
			addSucc(last.Targ)
		case last.IsCondBranch():
			addSucc(last.Targ)
			addSucc(b.End)
		case last.Op == isa.OpJsr:
			// Call: control goes to the callee; the matching return comes
			// back to the fall-through. Model both as successors so that
			// intraprocedural liveness remains conservative.
			addSucc(last.Targ)
			addSucc(b.End)
			b.IndirectExit = true
		case last.Op == isa.OpJmp, last.Op == isa.OpJsrI, last.Op == isa.OpRet:
			b.IndirectExit = true
		default:
			// Fall-through into the next block.
			addSucc(b.End)
		}
	}
}

// computeLiveness runs backward liveness over the CFG and fills
// p.liveAfter with per-instruction live-out register sets.
//
// Blocks with IndirectExit (returns, indirect jumps, calls) are given
// live-out = AllRegs: their continuation is unknown intraprocedurally, so
// every register value must be assumed consumed later. This is conservative
// in exactly the direction mini-graph formation needs — an over-approximate
// live set can only shrink the set of "interior" (dead) values, never
// misclassify a live value as interior.
func computeLiveness(p *Program) {
	nb := len(p.Blocks)
	use := make([]RegSet, nb)
	def := make([]RegSet, nb)
	liveIn := make([]RegSet, nb)
	liveOut := make([]RegSet, nb)

	for bi, b := range p.Blocks {
		var u, d RegSet
		for i := b.Start; i < b.End; i++ {
			in := p.Code[i]
			for _, s := range in.Sources() {
				if !d.Has(s) {
					u = u.Add(s)
				}
			}
			if in.WritesReg() {
				d = d.Add(in.Rd)
			}
		}
		use[bi], def[bi] = u, d
	}

	// Iterate to a fixed point. Reverse block order converges quickly for
	// the mostly-structured programs the workload suite produces.
	changed := true
	for changed {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			b := p.Blocks[bi]
			var out RegSet
			if b.IndirectExit {
				out = AllRegs
			}
			for _, s := range b.Succs {
				out = out.Union(liveIn[s])
			}
			in := use[bi].Union(out &^ def[bi])
			if out != liveOut[bi] || in != liveIn[bi] {
				liveOut[bi], liveIn[bi] = out, in
				changed = true
			}
		}
	}

	// Per-instruction live-after sets, backward within each block.
	p.liveAfter = make([]RegSet, len(p.Code))
	for bi, b := range p.Blocks {
		live := liveOut[bi]
		for i := b.End - 1; i >= b.Start; i-- {
			p.liveAfter[i] = live
			in := p.Code[i]
			if in.WritesReg() {
				live = live.Remove(in.Rd)
			}
			for _, s := range in.Sources() {
				live = live.Add(s)
			}
		}
	}
}
