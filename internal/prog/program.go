// Package prog represents static programs for the mini-graph toolchain:
// instruction sequences, basic blocks, the control-flow graph, and the
// liveness analysis that mini-graph formation requires to identify
// "interior" register values.
package prog

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Memory layout constants shared by the builder, emulator and pipeline.
const (
	// CodeBase is the virtual address of static instruction 0. Instruction
	// i lives at CodeBase + 4*i.
	CodeBase = 0x0000_1000
	// DataBase is the virtual address of the first byte of the data segment.
	DataBase = 0x0010_0000
	// StackTop is the initial stack pointer; the stack grows down.
	StackTop = 0x0100_0000
	// HeapBase is where the bump allocator used by workloads starts.
	HeapBase = 0x0040_0000
)

// PCOf converts a static instruction index to a virtual address.
func PCOf(index int) uint32 { return uint32(CodeBase + 4*index) }

// IndexOf converts a virtual code address back to a static index.
func IndexOf(pc uint32) int { return int(pc-CodeBase) / 4 }

// Block is one basic block: the half-open static index range [Start, End).
// Succs lists successor block indices; IndirectExit marks blocks that end in
// an indirect transfer (jmp/jsri/ret) whose successors are unknown.
type Block struct {
	Start, End   int
	Succs        []int
	IndirectExit bool
}

// Len returns the number of instructions in the block.
func (b Block) Len() int { return b.End - b.Start }

// Program is a complete static program plus its initial data image.
type Program struct {
	Name string
	Code []isa.Instr
	// Blocks lists basic blocks in static order; BlockOf maps a static
	// instruction index to its block index.
	Blocks  []Block
	BlockOf []int
	// Entry is the static index of the first executed instruction.
	Entry int
	// Data is the initial data-segment image, loaded at DataBase.
	Data []byte
	// Labels maps label names to static indices (for diagnostics and tests).
	Labels map[string]int
	// liveAfter[i] holds registers live immediately after instruction i.
	liveAfter []RegSet
}

// NumInstrs returns the static code size.
func (p *Program) NumInstrs() int { return len(p.Code) }

// BlockIndex returns the block containing static instruction i.
func (p *Program) BlockIndex(i int) int { return p.BlockOf[i] }

// LiveAfter returns the set of architectural registers whose values are
// live (may be read before being overwritten) immediately after static
// instruction i executes. The zero register is never a member.
func (p *Program) LiveAfter(i int) RegSet { return p.liveAfter[i] }

// String renders a disassembly listing with block boundaries.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s: %d instrs, %d blocks, %d data bytes\n",
		p.Name, len(p.Code), len(p.Blocks), len(p.Data))
	names := make(map[int]string)
	for l, i := range p.Labels {
		if prev, ok := names[i]; !ok || l < prev {
			names[i] = l
		}
	}
	for bi, b := range p.Blocks {
		fmt.Fprintf(&sb, "-- block %d [%d,%d) succs=%v\n", bi, b.Start, b.End, b.Succs)
		for i := b.Start; i < b.End; i++ {
			if l, ok := names[i]; ok {
				fmt.Fprintf(&sb, "%s:\n", l)
			}
			fmt.Fprintf(&sb, "  %4d  %s\n", i, p.Code[i])
		}
	}
	return sb.String()
}

// Validate checks structural invariants: targets in range, blocks well
// formed, entry valid. Programs produced by Builder.Build always validate.
func (p *Program) Validate() error {
	n := len(p.Code)
	if n == 0 {
		return fmt.Errorf("program %s: empty code", p.Name)
	}
	if p.Entry < 0 || p.Entry >= n {
		return fmt.Errorf("program %s: entry %d out of range", p.Name, p.Entry)
	}
	for i, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("instr %d: invalid opcode", i)
		}
		if in.IsBranch() && in.Op != isa.OpJmp && in.Op != isa.OpJsrI && in.Op != isa.OpRet {
			if in.Targ < 0 || in.Targ >= n {
				return fmt.Errorf("instr %d (%s): target %d out of range", i, in, in.Targ)
			}
		}
	}
	if len(p.BlockOf) != n {
		return fmt.Errorf("BlockOf has %d entries, want %d", len(p.BlockOf), n)
	}
	prevEnd := 0
	for bi, b := range p.Blocks {
		if b.Start != prevEnd || b.End <= b.Start || b.End > n {
			return fmt.Errorf("block %d: bad range [%d,%d)", bi, b.Start, b.End)
		}
		prevEnd = b.End
		for i := b.Start; i < b.End; i++ {
			if p.BlockOf[i] != bi {
				return fmt.Errorf("BlockOf[%d] = %d, want %d", i, p.BlockOf[i], bi)
			}
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(p.Blocks) {
				return fmt.Errorf("block %d: successor %d out of range", bi, s)
			}
		}
	}
	if prevEnd != n {
		return fmt.Errorf("blocks cover [0,%d), want [0,%d)", prevEnd, n)
	}
	return nil
}

// RegSet is a bitmap over architectural registers.
type RegSet uint32

// Add returns the set with r added. The zero register is never stored.
func (s RegSet) Add(r isa.Reg) RegSet {
	if !r.Valid() || r == isa.ZeroReg {
		return s
	}
	return s | 1<<uint(r)
}

// Remove returns the set with r removed.
func (s RegSet) Remove(r isa.Reg) RegSet {
	if !r.Valid() {
		return s
	}
	return s &^ (1 << uint(r))
}

// Has reports whether r is in the set.
func (s RegSet) Has(r isa.Reg) bool {
	if !r.Valid() {
		return false
	}
	return s&(1<<uint(r)) != 0
}

// Union returns the union of two sets.
func (s RegSet) Union(o RegSet) RegSet { return s | o }

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for v := uint32(s); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// AllRegs is the set of every architectural register except zero.
const AllRegs RegSet = (1<<isa.NumRegs - 1) &^ (1 << uint(isa.ZeroReg))

// String lists members for diagnostics.
func (s RegSet) String() string {
	var parts []string
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if s.Has(r) {
			parts = append(parts, r.String())
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}
