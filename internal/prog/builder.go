package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Builder assembles a Program. Instructions are appended in order; labels
// name positions and may be referenced before they are defined. Build
// resolves labels, derives basic blocks, and runs liveness analysis.
//
// The builder also manages the data segment: Word/Bytes/Space reserve
// initialized or zeroed data and return its virtual address.
type Builder struct {
	name   string
	code   []isa.Instr
	labels map[string]int
	// fixups maps code positions to unresolved label names.
	fixups map[int]string
	data   []byte
	errs   []error
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("%s: %s", b.name, fmt.Sprintf(format, args...)))
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errorf("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.code)
}

// Pos returns the static index the next emitted instruction will occupy.
func (b *Builder) Pos() int { return len(b.code) }

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Instr) {
	b.code = append(b.code, in)
}

func (b *Builder) emitTarget(in isa.Instr, label string) {
	in.Targ = -1
	b.fixups[len(b.code)] = label
	b.code = append(b.code, in)
}

// --- ALU register forms ---

func (b *Builder) alu3(op isa.Op, rd, rs1, rs2 isa.Reg) {
	b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Add emits rd <- rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpAdd, rd, rs1, rs2) }

// Sub emits rd <- rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpSub, rd, rs1, rs2) }

// And emits rd <- rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpAnd, rd, rs1, rs2) }

// Or emits rd <- rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpOr, rd, rs1, rs2) }

// Xor emits rd <- rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpXor, rd, rs1, rs2) }

// Sll emits rd <- rs1 << (rs2 & 31).
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpSll, rd, rs1, rs2) }

// Srl emits rd <- logical rs1 >> (rs2 & 31).
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpSrl, rd, rs1, rs2) }

// Sra emits rd <- arithmetic rs1 >> (rs2 & 31).
func (b *Builder) Sra(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpSra, rd, rs1, rs2) }

// CmpEq emits rd <- rs1 == rs2.
func (b *Builder) CmpEq(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpCmpEq, rd, rs1, rs2) }

// CmpLt emits rd <- rs1 < rs2 (signed).
func (b *Builder) CmpLt(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpCmpLt, rd, rs1, rs2) }

// CmpLe emits rd <- rs1 <= rs2 (signed).
func (b *Builder) CmpLe(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpCmpLe, rd, rs1, rs2) }

// CmpUlt emits rd <- rs1 < rs2 (unsigned).
func (b *Builder) CmpUlt(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpCmpUlt, rd, rs1, rs2) }

// Mul emits rd <- rs1 * rs2 (complex class).
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpMul, rd, rs1, rs2) }

// Div emits rd <- rs1 / rs2 (signed; complex class).
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpDiv, rd, rs1, rs2) }

// Rem emits rd <- rs1 % rs2 (signed; complex class).
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) { b.alu3(isa.OpRem, rd, rs1, rs2) }

// --- ALU immediate forms ---

func (b *Builder) alui(op isa.Op, rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: isa.NoReg, Imm: imm})
}

// Addi emits rd <- rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpAddi, rd, rs1, imm) }

// Subi emits rd <- rs1 - imm.
func (b *Builder) Subi(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpSubi, rd, rs1, imm) }

// Andi emits rd <- rs1 & imm.
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpAndi, rd, rs1, imm) }

// Ori emits rd <- rs1 | imm.
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpOri, rd, rs1, imm) }

// Xori emits rd <- rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpXori, rd, rs1, imm) }

// Slli emits rd <- rs1 << imm.
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpSlli, rd, rs1, imm) }

// Srli emits rd <- logical rs1 >> imm.
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpSrli, rd, rs1, imm) }

// Srai emits rd <- arithmetic rs1 >> imm.
func (b *Builder) Srai(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpSrai, rd, rs1, imm) }

// CmpEqi emits rd <- rs1 == imm.
func (b *Builder) CmpEqi(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpCmpEqi, rd, rs1, imm) }

// CmpLti emits rd <- rs1 < imm (signed).
func (b *Builder) CmpLti(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpCmpLti, rd, rs1, imm) }

// CmpLei emits rd <- rs1 <= imm (signed).
func (b *Builder) CmpLei(rd, rs1 isa.Reg, imm int64) { b.alui(isa.OpCmpLei, rd, rs1, imm) }

// Li emits rd <- imm (lda).
func (b *Builder) Li(rd isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpLda, Rd: rd, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: imm})
}

// Mov emits rd <- rs (as an add with the zero register).
func (b *Builder) Mov(rd, rs isa.Reg) { b.Add(rd, rs, isa.ZeroReg) }

// Nop emits a no-op.
func (b *Builder) Nop() {
	b.Emit(isa.Instr{Op: isa.OpNop, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg})
}

// --- Memory ---

// Ldw emits rd <- mem32[rs1+imm].
func (b *Builder) Ldw(rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpLdw, Rd: rd, Rs1: rs1, Rs2: isa.NoReg, Imm: imm})
}

// Ldb emits rd <- zero-extended mem8[rs1+imm].
func (b *Builder) Ldb(rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpLdb, Rd: rd, Rs1: rs1, Rs2: isa.NoReg, Imm: imm})
}

// Stw emits mem32[rs1+imm] <- rs2.
func (b *Builder) Stw(rs2, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpStw, Rd: isa.NoReg, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Stb emits mem8[rs1+imm] <- low byte of rs2.
func (b *Builder) Stb(rs2, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.OpStb, Rd: isa.NoReg, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// --- Control ---

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBr, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg}, label)
}

// Beqz emits a branch to label if rs == 0.
func (b *Builder) Beqz(rs isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBeqz, Rd: isa.NoReg, Rs1: rs, Rs2: isa.NoReg}, label)
}

// Bnez emits a branch to label if rs != 0.
func (b *Builder) Bnez(rs isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBnez, Rd: isa.NoReg, Rs1: rs, Rs2: isa.NoReg}, label)
}

// Bltz emits a branch to label if rs < 0.
func (b *Builder) Bltz(rs isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBltz, Rd: isa.NoReg, Rs1: rs, Rs2: isa.NoReg}, label)
}

// Bgez emits a branch to label if rs >= 0.
func (b *Builder) Bgez(rs isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBgez, Rd: isa.NoReg, Rs1: rs, Rs2: isa.NoReg}, label)
}

// Jsr emits a direct call to label, writing the return address to ra.
func (b *Builder) Jsr(label string) {
	b.emitTarget(isa.Instr{Op: isa.OpJsr, Rd: isa.RA, Rs1: isa.NoReg, Rs2: isa.NoReg}, label)
}

// JmpR emits an indirect jump through rs.
func (b *Builder) JmpR(rs isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpJmp, Rd: isa.NoReg, Rs1: rs, Rs2: isa.NoReg})
}

// Ret emits a return through rs (conventionally ra).
func (b *Builder) Ret() {
	b.Emit(isa.Instr{Op: isa.OpRet, Rd: isa.NoReg, Rs1: isa.RA, Rs2: isa.NoReg})
}

// Halt emits program termination.
func (b *Builder) Halt() {
	b.Emit(isa.Instr{Op: isa.OpHalt, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg})
}

// --- Data segment ---

func (b *Builder) align(n int) {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
}

// Word appends a 32-bit little-endian word to the data segment and returns
// its virtual address.
func (b *Builder) Word(v uint32) int64 {
	b.align(4)
	addr := int64(DataBase + len(b.data))
	b.data = append(b.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	return addr
}

// Words appends a sequence of 32-bit words and returns the address of the
// first.
func (b *Builder) Words(vs ...uint32) int64 {
	b.align(4)
	addr := int64(DataBase + len(b.data))
	for _, v := range vs {
		b.Word(v)
	}
	return addr
}

// Bytes appends raw bytes and returns the address of the first.
func (b *Builder) Bytes(bs []byte) int64 {
	addr := int64(DataBase + len(b.data))
	b.data = append(b.data, bs...)
	return addr
}

// Space reserves n zeroed bytes, 4-byte aligned, returning the address.
func (b *Builder) Space(n int) int64 {
	b.align(4)
	addr := int64(DataBase + len(b.data))
	b.data = append(b.data, make([]byte, n)...)
	return addr
}

// Build resolves labels, derives the CFG, runs liveness, validates and
// returns the finished program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.code) == 0 {
		return nil, fmt.Errorf("%s: no instructions", b.name)
	}
	code := make([]isa.Instr, len(b.code))
	copy(code, b.code)
	for pos, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("%s: undefined label %q at instr %d", b.name, label, pos)
		}
		if target >= len(code) {
			return nil, fmt.Errorf("%s: label %q points past end of code", b.name, label)
		}
		code[pos].Targ = target
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	p := &Program{
		Name:   b.name,
		Code:   code,
		Entry:  0,
		Data:   append([]byte(nil), b.data...),
		Labels: labels,
	}
	buildCFG(p)
	computeLiveness(p)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for tests and workload tables.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
