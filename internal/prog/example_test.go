package prog_test

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/prog"
)

// ExampleAssemble builds and runs a program from textual assembly.
func ExampleAssemble() {
	p, err := prog.Assemble("triangle", `
		; compute 1+2+...+10
		li   r1, 10
		li   r2, 0
	loop:
		add  r2, r2, r1
		subi r1, r1, 1
		bnez r1, loop
		mov  rv, r2
		halt
	`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := emu.Run(p, emu.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Checksum())
	// Output: 55
}

// ExampleNewBuilder constructs the same program with the fluent API.
func ExampleNewBuilder() {
	b := prog.NewBuilder("triangle")
	b.Li(1, 10)
	b.Li(2, 0)
	b.Label("loop")
	b.Add(2, 2, 1)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Mov(0, 2)
	b.Halt()
	p := b.MustBuild()
	res, _ := emu.Run(p, emu.Options{})
	fmt.Println(res.Checksum(), "in", p.NumInstrs(), "instructions")
	// Output: 55 in 7 instructions
}
