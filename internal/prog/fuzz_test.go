package prog

import (
	"bytes"
	"testing"
)

// FuzzAssemble checks the assembler never panics and that accepted
// programs always validate.
func FuzzAssemble(f *testing.F) {
	f.Add("li r1, 1\nhalt")
	f.Add("x: .word 1,2\n li r1, x\n ldw r2, (r1)\n halt")
	f.Add("loop: subi r1, r1, 1\n bnez r1, loop\n halt")
	f.Add("jsr fn\nhalt\nfn: ret")
	f.Add(".")
	f.Add("a: b: c:")
	f.Add("stw r1, 99999999999(r2)")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted program fails validation: %v\nsource: %q", verr, src)
		}
	})
}

// FuzzReadBinary checks the binary loader never panics and that everything
// it accepts round-trips.
func FuzzReadBinary(f *testing.F) {
	sample := MustAssemble("s", "li r1, 1\nx: addi r1, r1, 1\n bnez r1, x\n halt")
	var buf bytes.Buffer
	if err := sample.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MGB1 garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := p.WriteBinary(&out); err != nil {
			t.Fatalf("accepted program fails to re-serialize: %v", err)
		}
		q, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("round trip of accepted program fails: %v", err)
		}
		if len(q.Code) != len(p.Code) {
			t.Fatal("round trip changed code length")
		}
	})
}
