package prog

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// countdown builds a simple loop: r1 = 10; loop: r2 += r1; r1--; bnez r1, loop; halt.
func countdown(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("countdown")
	b.Li(1, 10)
	b.Li(2, 0)
	b.Label("loop")
	b.Add(2, 2, 1)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestBuilderResolvesLabels(t *testing.T) {
	p := countdown(t)
	// The bnez is instruction 4 and must target instruction 2 ("loop").
	br := p.Code[4]
	if br.Op != isa.OpBnez || br.Targ != 2 {
		t.Fatalf("branch = %v, want bnez targeting 2", br)
	}
	if p.Labels["loop"] != 2 {
		t.Errorf("label loop = %d, want 2", p.Labels["loop"])
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Br("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("Build() err = %v, want undefined-label error", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Build() err = %v, want duplicate-label error", err)
	}
}

func TestEmptyProgram(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("Build() on empty program should fail")
	}
}

func TestCFGBlocks(t *testing.T) {
	p := countdown(t)
	// Expected blocks: [0,2) prologue, [2,5) loop body (ends in bnez), [5,6) halt.
	if len(p.Blocks) != 3 {
		t.Fatalf("blocks = %d (%v), want 3", len(p.Blocks), p.Blocks)
	}
	b0, b1, b2 := p.Blocks[0], p.Blocks[1], p.Blocks[2]
	if b0.Start != 0 || b0.End != 2 || b1.Start != 2 || b1.End != 5 || b2.Start != 5 || b2.End != 6 {
		t.Fatalf("block ranges wrong: %+v", p.Blocks)
	}
	if len(b0.Succs) != 1 || b0.Succs[0] != 1 {
		t.Errorf("block 0 succs = %v, want [1]", b0.Succs)
	}
	// Loop block: taken -> itself, fall-through -> halt block.
	if len(b1.Succs) != 2 {
		t.Fatalf("block 1 succs = %v, want 2 edges", b1.Succs)
	}
	has := map[int]bool{}
	for _, s := range b1.Succs {
		has[s] = true
	}
	if !has[1] || !has[2] {
		t.Errorf("block 1 succs = %v, want {1,2}", b1.Succs)
	}
	if len(b2.Succs) != 0 {
		t.Errorf("halt block succs = %v, want none", b2.Succs)
	}
}

func TestBlockOfCoversAllInstrs(t *testing.T) {
	p := countdown(t)
	for i := range p.Code {
		bi := p.BlockIndex(i)
		b := p.Blocks[bi]
		if i < b.Start || i >= b.End {
			t.Errorf("instr %d mapped to block %d [%d,%d)", i, bi, b.Start, b.End)
		}
	}
}

func TestLivenessLoop(t *testing.T) {
	p := countdown(t)
	// After "add r2,r2,r1" (index 2): r1 is needed by subi, r2 by next
	// iteration's add — both live.
	la := p.LiveAfter(2)
	if !la.Has(1) || !la.Has(2) {
		t.Errorf("liveAfter(add) = %v, want r1 and r2 live", la)
	}
	// After the halt nothing is live.
	if got := p.LiveAfter(5); got != 0 {
		t.Errorf("liveAfter(halt) = %v, want empty", got)
	}
	// After bnez (last instr of loop block): r1, r2 live around the backedge.
	la4 := p.LiveAfter(4)
	if !la4.Has(1) || !la4.Has(2) {
		t.Errorf("liveAfter(bnez) = %v, want r1,r2", la4)
	}
}

func TestLivenessDeadValue(t *testing.T) {
	// r3 is computed and consumed immediately; dead after its last use.
	b := NewBuilder("dead")
	b.Li(1, 5)
	b.Addi(3, 1, 1) // r3 = r1+1
	b.Add(2, 3, 1)  // r2 = r3+r1 — last use of r3
	b.Stw(2, isa.SP, 0)
	b.Halt()
	p := b.MustBuild()
	if p.LiveAfter(1).Has(3) != true {
		t.Error("r3 should be live immediately after its definition")
	}
	if p.LiveAfter(2).Has(3) {
		t.Error("r3 should be dead after its last use")
	}
	if p.LiveAfter(2).Has(2) != true {
		t.Error("r2 should be live until the store")
	}
}

func TestLivenessIndirectExitConservative(t *testing.T) {
	b := NewBuilder("retlive")
	b.Li(1, 5)
	b.Addi(2, 1, 1)
	b.Ret()
	p := b.MustBuild()
	// The ret's continuation is unknown: everything must be live before it.
	if !p.LiveAfter(1).Has(1) || !p.LiveAfter(1).Has(2) {
		t.Errorf("liveAfter before ret = %v, want all regs conservative", p.LiveAfter(1))
	}
}

func TestCallEdges(t *testing.T) {
	b := NewBuilder("call")
	b.Jsr("fn") // 0
	b.Halt()    // 1
	b.Label("fn")
	b.Li(isa.RV, 42) // 2
	b.Ret()          // 3
	p := b.MustBuild()
	if len(p.Blocks) != 3 {
		t.Fatalf("blocks = %v, want 3", p.Blocks)
	}
	call := p.Blocks[0]
	if !call.IndirectExit {
		t.Error("call block should be marked IndirectExit")
	}
	has := map[int]bool{}
	for _, s := range call.Succs {
		has[s] = true
	}
	if !has[1] || !has[2] {
		t.Errorf("call succs = %v, want callee and fall-through", call.Succs)
	}
}

func TestDataSegment(t *testing.T) {
	b := NewBuilder("data")
	a1 := b.Word(0xdeadbeef)
	a2 := b.Words(1, 2, 3)
	a3 := b.Bytes([]byte("hi"))
	a4 := b.Space(10)
	b.Halt()
	p := b.MustBuild()
	if a1 != DataBase {
		t.Errorf("first word at %#x, want %#x", a1, DataBase)
	}
	if a2 != DataBase+4 {
		t.Errorf("words at %#x, want %#x", a2, DataBase+4)
	}
	if a3 != DataBase+16 {
		t.Errorf("bytes at %#x, want %#x", a3, DataBase+16)
	}
	if a4%4 != 0 {
		t.Errorf("Space addr %#x not aligned", a4)
	}
	if p.Data[0] != 0xef || p.Data[3] != 0xde {
		t.Errorf("little-endian word stored wrong: % x", p.Data[:4])
	}
}

func TestPCMapping(t *testing.T) {
	for _, i := range []int{0, 1, 17, 4095} {
		if got := IndexOf(PCOf(i)); got != i {
			t.Errorf("IndexOf(PCOf(%d)) = %d", i, got)
		}
	}
	if PCOf(0) != CodeBase {
		t.Errorf("PCOf(0) = %#x, want CodeBase", PCOf(0))
	}
}

func TestRegSetOps(t *testing.T) {
	var s RegSet
	s = s.Add(1).Add(5).Add(isa.ZeroReg).Add(isa.NoReg)
	if !s.Has(1) || !s.Has(5) {
		t.Error("Add/Has broken")
	}
	if s.Has(isa.ZeroReg) {
		t.Error("zero register must never enter a RegSet")
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	s = s.Remove(1)
	if s.Has(1) || !s.Has(5) {
		t.Error("Remove broken")
	}
	if AllRegs.Has(isa.ZeroReg) {
		t.Error("AllRegs must exclude zero")
	}
	if AllRegs.Count() != isa.NumRegs-1 {
		t.Errorf("AllRegs.Count = %d, want %d", AllRegs.Count(), isa.NumRegs-1)
	}
}

// Property: RegSet Add/Remove/Has behave like a set over valid registers.
func TestRegSetProperty(t *testing.T) {
	f := func(adds, removes []uint8) bool {
		ref := make(map[isa.Reg]bool)
		var s RegSet
		for _, a := range adds {
			r := isa.Reg(a % isa.NumRegs)
			s = s.Add(r)
			if r != isa.ZeroReg {
				ref[r] = true
			}
		}
		for _, a := range removes {
			r := isa.Reg(a % isa.NumRegs)
			s = s.Remove(r)
			delete(ref, r)
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if s.Has(r) != ref[r] {
				return false
			}
		}
		return s.Count() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for arbitrary structured programs produced by a tiny generator,
// Build validates and liveness never marks the zero register live.
func TestBuildAlwaysValidatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := genProgram(seed)
		if p == nil {
			return true // generator declined (e.g., empty)
		}
		if err := p.Validate(); err != nil {
			return false
		}
		for i := range p.Code {
			if p.LiveAfter(i).Has(isa.ZeroReg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// genProgram deterministically builds a small structured program from a seed.
func genProgram(seed int64) *Program {
	rng := seed
	next := func(n int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := (rng >> 33) % n
		if v < 0 {
			v += n
		}
		return v
	}
	b := NewBuilder("gen")
	nblocks := int(next(4)) + 1
	for i := 0; i < nblocks; i++ {
		b.Label("b" + string(rune('0'+i)))
		n := int(next(5)) + 1
		for j := 0; j < n; j++ {
			rd := isa.Reg(next(30))
			rs1 := isa.Reg(next(31))
			rs2 := isa.Reg(next(31))
			switch next(6) {
			case 0:
				b.Add(rd, rs1, rs2)
			case 1:
				b.Addi(rd, rs1, next(100))
			case 2:
				b.Ldw(rd, isa.SP, next(64)*4)
			case 3:
				b.Stw(rs1, isa.SP, next(64)*4)
			case 4:
				b.Mul(rd, rs1, rs2)
			case 5:
				b.Xor(rd, rs1, rs2)
			}
		}
		if i+1 < nblocks && next(2) == 0 {
			b.Bnez(isa.Reg(next(30)), "b"+string(rune('0'+i)))
		}
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		return nil
	}
	return p
}

func TestProgramString(t *testing.T) {
	p := countdown(t)
	s := p.String()
	for _, want := range []string{"countdown", "block 0", "loop:", "bnez"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
