package prog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
)

// Binary program container ("MGB1"):
//
//	magic   [4]byte  "MGB1"
//	nameLen uint32, name bytes
//	entry   uint32
//	nInstr  uint32, instructions (8 bytes each, isa.Encode format)
//	nData   uint32, data segment bytes
//	nLabels uint32, labels (nameLen u32, name, index u32), sorted by name
//
// All integers are little-endian.

var binMagic = [4]byte{'M', 'G', 'B', '1'}

// WriteBinary serializes the program.
func (p *Program) WriteBinary(w io.Writer) error {
	var buf bytes.Buffer
	buf.Write(binMagic[:])
	writeStr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		buf.Write(n[:])
		buf.WriteString(s)
	}
	writeU32 := func(v uint32) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], v)
		buf.Write(n[:])
	}
	writeStr(p.Name)
	writeU32(uint32(p.Entry))
	writeU32(uint32(len(p.Code)))
	for _, in := range p.Code {
		var w8 [8]byte
		binary.LittleEndian.PutUint64(w8[:], isa.Encode(in))
		buf.Write(w8[:])
	}
	writeU32(uint32(len(p.Data)))
	buf.Write(p.Data)
	names := make([]string, 0, len(p.Labels))
	for l := range p.Labels {
		names = append(names, l)
	}
	sort.Strings(names)
	writeU32(uint32(len(names)))
	for _, l := range names {
		writeStr(l)
		writeU32(uint32(p.Labels[l]))
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadBinary deserializes a program written by WriteBinary, rebuilding the
// CFG and liveness information.
func ReadBinary(r io.Reader) (*Program, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	b := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(b, magic[:]); err != nil || magic != binMagic {
		return nil, fmt.Errorf("prog: bad magic (not an MGB1 program)")
	}
	readU32 := func() (uint32, error) {
		var n [4]byte
		if _, err := io.ReadFull(b, n[:]); err != nil {
			return 0, fmt.Errorf("prog: truncated binary")
		}
		return binary.LittleEndian.Uint32(n[:]), nil
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if int(n) > b.Len() {
			return "", fmt.Errorf("prog: truncated string")
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(b, s); err != nil {
			return "", fmt.Errorf("prog: truncated binary")
		}
		return string(s), nil
	}

	p := &Program{Labels: map[string]int{}}
	if p.Name, err = readStr(); err != nil {
		return nil, err
	}
	entry, err := readU32()
	if err != nil {
		return nil, err
	}
	p.Entry = int(entry)
	nInstr, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(nInstr)*8 > b.Len() {
		return nil, fmt.Errorf("prog: truncated code section")
	}
	p.Code = make([]isa.Instr, nInstr)
	for i := range p.Code {
		var w8 [8]byte
		if _, err := io.ReadFull(b, w8[:]); err != nil {
			return nil, fmt.Errorf("prog: truncated code")
		}
		in, err := isa.Decode(binary.LittleEndian.Uint64(w8[:]))
		if err != nil {
			return nil, fmt.Errorf("prog: instr %d: %w", i, err)
		}
		p.Code[i] = in
	}
	nData, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(nData) > b.Len() {
		return nil, fmt.Errorf("prog: truncated data section")
	}
	p.Data = make([]byte, nData)
	if _, err := io.ReadFull(b, p.Data); err != nil {
		return nil, fmt.Errorf("prog: truncated data")
	}
	nLabels, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nLabels; i++ {
		l, err := readStr()
		if err != nil {
			return nil, err
		}
		idx, err := readU32()
		if err != nil {
			return nil, err
		}
		p.Labels[l] = int(idx)
	}

	buildCFG(p)
	computeLiveness(p)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("prog: loaded program invalid: %w", err)
	}
	return p, nil
}
