package prog

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble("t", `
		; sum 1..10
		li   r1, 10
		li   r2, 0
	loop:
		add  r2, r2, r1
		subi r1, r1, 1
		bnez r1, loop
		mov  rv, r2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInstrs() != 7 {
		t.Fatalf("instrs = %d, want 7", p.NumInstrs())
	}
	if p.Code[2].Op != isa.OpAdd || p.Code[4].Op != isa.OpBnez || p.Code[4].Targ != 2 {
		t.Errorf("bad assembly: %v / %v", p.Code[2], p.Code[4])
	}
	if p.Code[5].Rd != isa.RV {
		t.Errorf("rv alias broken: %v", p.Code[5])
	}
}

func TestAssembleMemoryAndData(t *testing.T) {
	p, err := Assemble("t", `
	buf:  .space 16
	tab:  .word 10, 0x20, -1
	msg:  .ascii "hi"
		li   r1, tab
		ldw  r2, 4(r1)
		stw  r2, 0(r1)
		ldb  r3, (r1)
		stb  r3, 2(r1)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	// tab is after the 16-byte buf.
	if p.Code[0].Imm != DataBase+16 {
		t.Errorf("tab address = %#x, want %#x", p.Code[0].Imm, DataBase+16)
	}
	if p.Code[1].Op != isa.OpLdw || p.Code[1].Imm != 4 {
		t.Errorf("ldw parse: %v", p.Code[1])
	}
	if p.Code[3].Imm != 0 {
		t.Errorf("bare (reg) operand should mean displacement 0: %v", p.Code[3])
	}
	// Data contents: 16 zeros, then 10, 0x20, 0xffffffff, then "hi".
	if p.Data[16] != 10 || p.Data[20] != 0x20 || p.Data[24] != 0xff {
		t.Errorf("data image wrong: % x", p.Data[16:28])
	}
	if string(p.Data[28:30]) != "hi" {
		t.Errorf("ascii data wrong: %q", p.Data[28:30])
	}
}

func TestAssembleCalls(t *testing.T) {
	p, err := Assemble("t", `
		jsr  fn
		halt
	fn: li   rv, 42
		ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != isa.OpJsr || p.Code[0].Targ != 2 {
		t.Errorf("jsr parse: %v", p.Code[0])
	}
	if p.Code[3].Op != isa.OpRet {
		t.Errorf("ret parse: %v", p.Code[3])
	}
}

func TestAssembleComments(t *testing.T) {
	p, err := Assemble("t", `
		li r1, 1   ; semicolon
		li r2, 2   # hash
		li r3, 3   // slashes
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInstrs() != 4 {
		t.Errorf("instrs = %d, want 4", p.NumInstrs())
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, wantErr string
	}{
		{"frob r1, r2", "unknown mnemonic"},
		{"add r1, r2", "takes 3 operands"},
		{"add r1, r2, r99\nhalt", "bad register"},
		{"li r1, xyz\nhalt", "bad immediate"},
		{"ldw r1, r2\nhalt", "bad memory operand"},
		{"br nowhere\nhalt", "undefined label"},
		{"x: .space -4\nhalt", "bad .space"},
		{"x: .bogus 4\nhalt", "unknown directive"},
		{"x: .ascii hi\nhalt", "bad .ascii"},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Assemble(%q) err = %v, want %q", c.src, err, c.wantErr)
		}
	}
}

func TestAssembleErrorsIncludeLine(t *testing.T) {
	_, err := Assemble("file", "li r1, 1\nfrob\nhalt")
	if err == nil || !strings.Contains(err.Error(), "file:2") {
		t.Errorf("error should name the line: %v", err)
	}
}

func TestAssembleRoundTripThroughBuilder(t *testing.T) {
	// Assembled code must be structurally identical to builder-made code.
	asm := MustAssemble("a", `
		li r1, 5
	top:
		addi r2, r2, 3
		subi r1, r1, 1
		bnez r1, top
		halt
	`)
	b := NewBuilder("b")
	b.Li(1, 5)
	b.Label("top")
	b.Addi(2, 2, 3)
	b.Subi(1, 1, 1)
	b.Bnez(1, "top")
	b.Halt()
	built := b.MustBuild()
	if len(asm.Code) != len(built.Code) {
		t.Fatalf("lengths differ: %d vs %d", len(asm.Code), len(built.Code))
	}
	for i := range asm.Code {
		if asm.Code[i] != built.Code[i] {
			t.Errorf("instr %d: %v vs %v", i, asm.Code[i], built.Code[i])
		}
	}
}

func TestAssembleAllMnemonics(t *testing.T) {
	src := `
	dat: .word 1
		li r1, 1
		li r2, 2
		add r3, r1, r2
		sub r3, r1, r2
		and r3, r1, r2
		or r3, r1, r2
		xor r3, r1, r2
		sll r3, r1, r2
		srl r3, r1, r2
		sra r3, r1, r2
		cmpeq r3, r1, r2
		cmplt r3, r1, r2
		cmple r3, r1, r2
		cmpult r3, r1, r2
		mul r3, r1, r2
		div r3, r1, r2
		rem r3, r1, r2
		addi r3, r1, 1
		subi r3, r1, 1
		andi r3, r1, 1
		ori r3, r1, 1
		xori r3, r1, 1
		slli r3, r1, 1
		srli r3, r1, 1
		srai r3, r1, 1
		cmpeqi r3, r1, 1
		cmplti r3, r1, 1
		cmplei r3, r1, 1
		mov r4, r3
		nop
		li r5, dat
		ldw r6, (r5)
		ldb r7, 1(r5)
		stw r6, (r5)
		stb r7, 1(r5)
	here:
		beqz zero, here2
		bnez r1, here2
		bltz r1, here2
		bgez r1, here2
	here2:
		br done
		jsr f
	f:	jmp (ra)
	done:
		ret
		halt
	`
	p, err := Assemble("all", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
