package metrics

import (
	"math"
	rtm "runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the runtime health sampler: a periodic, nil-guarded
// collector of the Go runtime's vital signs (heap in use, goroutine count,
// GC cycles and CPU fraction, GC pause and scheduling-latency quantiles)
// read from runtime/metrics. Samples land in a fixed ring so /debug/dash
// can draw a health strip over the recent past, and the latest reading is
// exported as gauges on /metrics (InstallHealthMetrics). Like the tracer
// and the ledger, the sampler is a process-wide atomic pointer that is nil
// by default: with no sampler installed nothing is collected and nothing
// is paid.

// HealthSample is one periodic reading of runtime health. The quantile
// fields describe the interval since the previous sample (deltas of the
// runtime's cumulative histograms), not all time.
type HealthSample struct {
	HeapBytes     uint64  `json:"heap_bytes"` // bytes of live or not-yet-swept heap objects
	Goroutines    int64   `json:"goroutines"`
	GCCycles      int64   `json:"gc_cycles"`        // cumulative completed GC cycles
	GCCPUPct      float64 `json:"gc_cpu_pct"`       // share of CPU spent in GC since the previous sample
	GCPauseP99MS  float64 `json:"gc_pause_p99_ms"`  // p99 GC stop-the-world pause since the previous sample
	SchedLatP99MS float64 `json:"sched_lat_p99_ms"` // p99 goroutine scheduling latency since the previous sample
}

// healthRing bounds retained samples: ~17 minutes at the default interval.
const healthRing = 512

// defaultHealthInterval paces the sampling loop. One Sample costs a few
// microseconds (see BenchmarkHealthSample), so this is ~0.0003% overhead.
const defaultHealthInterval = 2 * time.Second

// healthMetricNames are the runtime/metrics series one Sample reads, in
// the order sampleLocked consumes them.
var healthMetricNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/cpu/classes/gc/total:cpu-seconds",
	"/cpu/classes/total:cpu-seconds",
	"/sched/pauses/total/gc:seconds",
	"/sched/latencies:seconds",
}

// HealthSampler collects HealthSamples into a ring. Safe for concurrent
// use; the periodic loop (Start) and ad-hoc Sample calls share one mutex.
type HealthSampler struct {
	interval time.Duration

	mu   sync.Mutex
	ring []HealthSample
	next int
	full bool

	// Previous cumulative readings, for per-interval deltas.
	prevGCCPU, prevTotCPU float64
	prevPause, prevSched  []uint64

	samples []rtm.Sample // reused read buffer

	stop chan struct{}
	done chan struct{}
}

// NewHealthSampler creates a sampler without starting its loop (tests
// drive Sample/Push directly). interval <= 0 selects the default.
func NewHealthSampler(interval time.Duration) *HealthSampler {
	if interval <= 0 {
		interval = defaultHealthInterval
	}
	h := &HealthSampler{
		interval: interval,
		ring:     make([]HealthSample, healthRing),
		samples:  make([]rtm.Sample, len(healthMetricNames)),
	}
	for i, n := range healthMetricNames {
		h.samples[i].Name = n
	}
	return h
}

// Interval returns the sampling cadence.
func (h *HealthSampler) Interval() time.Duration { return h.interval }

// Sample takes one reading, appends it to the ring, and returns it.
func (h *HealthSampler) Sample() HealthSample {
	h.mu.Lock()
	defer h.mu.Unlock()
	rtm.Read(h.samples)
	var s HealthSample
	s.HeapBytes = h.samples[0].Value.Uint64()
	s.Goroutines = int64(h.samples[1].Value.Uint64())
	s.GCCycles = int64(h.samples[2].Value.Uint64())
	gcCPU := h.samples[3].Value.Float64()
	totCPU := h.samples[4].Value.Float64()
	if d := totCPU - h.prevTotCPU; d > 0 && h.prevTotCPU > 0 {
		pct := 100 * (gcCPU - h.prevGCCPU) / d
		s.GCCPUPct = math.Min(100, math.Max(0, pct))
	}
	h.prevGCCPU, h.prevTotCPU = gcCPU, totCPU
	if hist := h.samples[5].Value.Float64Histogram(); hist != nil {
		s.GCPauseP99MS = 1e3 * histDeltaQuantile(hist, &h.prevPause, 0.99)
	}
	if hist := h.samples[6].Value.Float64Histogram(); hist != nil {
		s.SchedLatP99MS = 1e3 * histDeltaQuantile(hist, &h.prevSched, 0.99)
	}
	h.pushLocked(s)
	return s
}

// Push appends a pre-built sample (fake samplers in tests).
func (h *HealthSampler) Push(s HealthSample) {
	h.mu.Lock()
	h.pushLocked(s)
	h.mu.Unlock()
}

func (h *HealthSampler) pushLocked(s HealthSample) {
	h.ring[h.next] = s
	h.next++
	if h.next == len(h.ring) {
		h.next = 0
		h.full = true
	}
}

// History returns the retained samples, oldest first.
func (h *HealthSampler) History() []HealthSample {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.next
	if h.full {
		n = len(h.ring)
	}
	out := make([]HealthSample, 0, n)
	start := 0
	if h.full {
		start = h.next
	}
	for i := 0; i < n; i++ {
		out = append(out, h.ring[(start+i)%len(h.ring)])
	}
	return out
}

// Latest returns the newest sample, or ok=false when none was taken yet.
func (h *HealthSampler) Latest() (HealthSample, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.full && h.next == 0 {
		return HealthSample{}, false
	}
	i := h.next - 1
	if i < 0 {
		i = len(h.ring) - 1
	}
	return h.ring[i], true
}

// start launches the periodic loop; Stop ends it.
func (h *HealthSampler) start() {
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.Sample()
			}
		}
	}()
}

// Stop ends a Start-ed sampling loop; a no-op for loop-less samplers.
func (h *HealthSampler) Stop() {
	if h == nil || h.stop == nil {
		return
	}
	close(h.stop)
	<-h.done
	h.stop = nil
}

// histDeltaQuantile computes the q-quantile of a cumulative
// runtime/metrics histogram's growth since the previous call (prev keeps
// the cumulative bucket counts between calls, resized on first use).
// Returns the matched bucket's upper edge in the histogram's unit
// (seconds), falling back to the lower edge for the +Inf overflow bucket;
// 0 when nothing landed since the previous sample.
func histDeltaQuantile(h *rtm.Float64Histogram, prev *[]uint64, q float64) float64 {
	n := len(h.Counts)
	if len(*prev) != n {
		*prev = make([]uint64, n)
	}
	var total uint64
	delta := make([]uint64, n)
	for i, c := range h.Counts {
		d := c - (*prev)[i]
		(*prev)[i] = c
		delta[i] = d
		total += d
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, d := range delta {
		cum += d
		if cum >= target {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, +1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return 0
}

// curHealth is the process-wide health sampler; nil (the default) means
// health collection is off.
var curHealth atomic.Pointer[HealthSampler]

// InstallHealth replaces the installed sampler (nil uninstalls) and
// returns the previous one, so tests can restore global state. The caller
// owns stopping a replaced sampler's loop.
func InstallHealth(h *HealthSampler) *HealthSampler { return curHealth.Swap(h) }

// Health returns the installed sampler, or nil when health collection is
// off.
func Health() *HealthSampler { return curHealth.Load() }

// StartHealth installs a sampler ticking at interval (<= 0 = default) and
// starts its loop; idempotent — an already-installed sampler is returned
// untouched. Drivers call it when a debug server is up.
func StartHealth(interval time.Duration) *HealthSampler {
	if h := curHealth.Load(); h != nil {
		return h
	}
	h := NewHealthSampler(interval)
	if curHealth.CompareAndSwap(nil, h) {
		h.Sample() // prime cumulative baselines so the first tick's deltas mean something
		h.start()
		return h
	}
	return curHealth.Load()
}

// InstallHealthMetrics registers the latest health reading as /metrics
// gauges. Values are read from the installed sampler at scrape time; with
// no sampler (or no sample yet) everything reads 0.
func InstallHealthMetrics(reg *Registry) {
	latest := func(f func(HealthSample) float64) func() float64 {
		return func() float64 {
			h := Health()
			if h == nil {
				return 0
			}
			s, ok := h.Latest()
			if !ok {
				return 0
			}
			return f(s)
		}
	}
	reg.GaugeFunc("mg_health_heap_bytes", "bytes of live or not-yet-swept heap objects",
		latest(func(s HealthSample) float64 { return float64(s.HeapBytes) }))
	reg.GaugeFunc("mg_health_goroutines", "live goroutines",
		latest(func(s HealthSample) float64 { return float64(s.Goroutines) }))
	reg.CounterFunc("mg_health_gc_cycles_total", "completed GC cycles",
		latest(func(s HealthSample) float64 { return float64(s.GCCycles) }))
	reg.GaugeFunc("mg_health_gc_cpu_pct", "share of CPU spent in GC since the previous health sample",
		latest(func(s HealthSample) float64 { return s.GCCPUPct }))
	reg.GaugeFunc("mg_health_gc_pause_p99_ms", "p99 GC stop-the-world pause since the previous health sample (ms)",
		latest(func(s HealthSample) float64 { return s.GCPauseP99MS }))
	reg.GaugeFunc("mg_health_sched_latency_p99_ms", "p99 goroutine scheduling latency since the previous health sample (ms)",
		latest(func(s HealthSample) float64 { return s.SchedLatP99MS }))
}
