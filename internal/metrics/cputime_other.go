//go:build !linux

package metrics

// Non-linux fallback: no portable stdlib-only way to read per-thread (or
// even per-process) rusage without platform-specific syscall shims, so
// resource accounting degrades to zeros. Every consumer treats 0 as
// "unavailable" — ledger fields are omitempty, spans skip the cpu_ns
// attribute, and the gate only fires on records that carry CPU.

func threadCPUNanos() int64 { return 0 }

func processCPUNanos() int64 { return 0 }

func maxRSSKB() int64 { return 0 }
