// Package metrics is the sweep-wide metrics-and-tracing layer: a typed
// metric registry rendered in Prometheus text exposition format, hierarchical
// task spans exported as JSONL and Chrome trace-event JSON (Perfetto /
// chrome://tracing), and a live sweep-progress endpoint.
//
// Everything is dependency-free (stdlib only) and nil-guarded: with no
// registry or tracer installed — the default — instrumented code paths pay
// one atomic load (and nil-receiver method calls are no-ops), so simulation
// output stays byte-identical to an uninstrumented build.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric or span attribute: a key/value pair. Metric series
// with the same name are distinguished by their label sets, matching the
// Prometheus data model.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{key, value} }

// kind is the metric family type, named after the Prometheus types.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use. Registering
// the same (name, labels) twice returns the existing instance, so package
// init-style registration is idempotent.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	byID     map[string]any // "name|rendered-labels" -> metric instance
}

type family struct {
	name, help string
	kind       kind
	metrics    []renderable // one per distinct label set, registration order
}

// renderable is one metric instance: it appends its sample lines (already
// sorted internally for histograms) to the output.
type renderable interface {
	write(w io.Writer, name string) error
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), byID: make(map[string]any)}
}

// --- global install ---

// defaultReg is the process-wide registry; nil (the default) disables all
// metric collection.
var defaultReg atomic.Pointer[Registry]

// Install makes r the process-wide registry served at /metrics. Passing nil
// disables collection again.
func Install(r *Registry) { defaultReg.Store(r) }

// Default returns the installed registry, or nil when metrics are off.
func Default() *Registry { return defaultReg.Load() }

// Enabled reports whether a process-wide registry is installed.
func Enabled() bool { return defaultReg.Load() != nil }

// --- registration ---

func (r *Registry) register(name, help string, k kind, id string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		return m
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind, k))
	}
	m := mk()
	f.metrics = append(f.metrics, m.(renderable))
	r.byID[id] = m
	return m
}

func metricID(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('|')
	writeLabels(&b, labels, "")
	return b.String()
}

// Counter returns (registering if needed) a monotonically increasing
// integer counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, metricID(name, labels), func() any {
		return &Counter{labels: labels}
	})
	return m.(*Counter)
}

// Gauge returns (registering if needed) a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, metricID(name, labels), func() any {
		return &Gauge{labels: labels}
	})
	return m.(*Gauge)
}

// CounterFunc registers a counter whose value is read from fn at render
// time (for counters maintained elsewhere, e.g. the simulation caches).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, metricID(name, labels), func() any {
		return &funcMetric{labels: labels, fn: fn}
	})
}

// GaugeFunc registers a gauge whose value is read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, metricID(name, labels), func() any {
		return &funcMetric{labels: labels, fn: fn}
	})
}

// Histogram returns (registering if needed) a histogram with the given
// fixed bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not ascending: %v", name, buckets))
		}
	}
	m := r.register(name, help, kindHistogram, metricID(name, labels), func() any {
		return &Histogram{labels: labels, upper: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
	})
	return m.(*Histogram)
}

// --- metric types ---

// Counter is a monotonically increasing integer counter. All methods are
// safe on a nil receiver (no-ops), so disabled-metrics call sites need no
// guard.
type Counter struct {
	labels []Label
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(w io.Writer, name string) error {
	return writeSample(w, name, c.labels, "", strconv.FormatInt(c.v.Load(), 10))
}

// Gauge is a settable float gauge. Methods are nil-safe no-ops.
type Gauge struct {
	labels []Label
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (compare-and-swap loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) write(w io.Writer, name string) error {
	return writeSample(w, name, g.labels, "", formatFloat(g.Value()))
}

// funcMetric reads its value at render time.
type funcMetric struct {
	labels []Label
	fn     func() float64
}

func (f *funcMetric) write(w io.Writer, name string) error {
	return writeSample(w, name, f.labels, "", formatFloat(f.fn()))
}

// Histogram is a fixed-bucket histogram. Observe is lock-free (atomic
// bucket counters plus a CAS loop for the sum). Methods are nil-safe
// no-ops.
type Histogram struct {
	labels  []Label
	upper   []float64      // ascending bucket upper bounds; +Inf implicit
	counts  []atomic.Int64 // len(upper)+1, last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) write(w io.Writer, name string) error {
	var cum int64
	for i, up := range h.upper {
		cum += h.counts[i].Load()
		if err := writeSample(w, name+"_bucket", h.labels, formatFloat(up), strconv.FormatInt(cum, 10)); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.upper)].Load()
	if err := writeSample(w, name+"_bucket", h.labels, "+Inf", strconv.FormatInt(cum, 10)); err != nil {
		return err
	}
	sum := math.Float64frombits(h.sumBits.Load())
	if err := writeSample(w, name+"_sum", h.labels, "", formatFloat(sum)); err != nil {
		return err
	}
	return writeSample(w, name+"_count", h.labels, "", strconv.FormatInt(h.count.Load(), 10))
}

// --- rendering ---

// WritePrometheus renders every family in Prometheus text exposition
// format, families sorted by name, series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# no metrics registry installed\n")
		return err
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		// Copy the instance slice so rendering happens outside the lock
		// (func metrics may themselves take locks elsewhere).
		fams = append(fams, &family{name: f.name, help: f.help, kind: f.kind,
			metrics: append([]renderable(nil), f.metrics...)})
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, m := range f.metrics {
			if err := m.write(w, f.name); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample emits one exposition line: name{labels[,le]} value.
func writeSample(w io.Writer, name string, labels []Label, le, value string) error {
	var b strings.Builder
	b.WriteString(name)
	writeLabels(&b, labels, le)
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func writeLabels(b *strings.Builder, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
