package metrics

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// burnCPU spins on this goroutine's thread until roughly the given wall
// time has passed, returning a value so the loop cannot be optimized away.
func burnCPU(d time.Duration) uint64 {
	var x uint64 = 1
	for deadline := time.Now().Add(d); time.Now().Before(deadline); {
		for i := 0; i < 1000; i++ {
			x = x*1664525 + 1013904223
		}
	}
	return x
}

// TestThreadCPUNanos checks the pinned-thread reading actually advances
// while the thread burns CPU. Linux-only: other platforms stub to 0.
func TestThreadCPUNanos(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("RUSAGE_THREAD is linux-only; the stub returns 0")
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	before := ThreadCPUNanos()
	_ = burnCPU(50 * time.Millisecond)
	after := ThreadCPUNanos()
	if after <= before {
		t.Errorf("thread CPU did not advance across a busy loop: %d -> %d", before, after)
	}
}

// TestMarkUsage brackets a busy, allocating region with MarkUsage/Since
// and checks the deltas are sane.
func TestMarkUsage(t *testing.T) {
	m := MarkUsage()
	_ = burnCPU(50 * time.Millisecond)
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 16<<10))
	}
	runtime.KeepAlive(sink)
	u := m.Since()
	if u.CPUNanos < 0 {
		t.Errorf("negative CPU delta: %d", u.CPUNanos)
	}
	if runtime.GOOS == "linux" && u.CPUNanos == 0 {
		t.Errorf("no CPU measured across a 50ms busy loop")
	}
	// The allocator's accounting can trail the final allocation slightly;
	// half the nominal total is ample to prove the delta is real.
	if u.AllocBytes < 32*(16<<10) {
		t.Errorf("allocation delta %d, want at least %d", u.AllocBytes, 32*(16<<10))
	}
	if runtime.GOOS == "linux" && u.MaxRSSKB <= 0 {
		t.Errorf("max RSS not measured: %d", u.MaxRSSKB)
	}
	if u.GCCycles < 0 {
		t.Errorf("negative GC cycle delta: %d", u.GCCycles)
	}
}

// TestFormatResources pins the one-line resource summary's shape: the
// stderr line every driver prints at exit.
func TestFormatResources(t *testing.T) {
	line := FormatResources(123 * time.Millisecond)
	for _, want := range []string{"resources: wall", "cpu ", "max rss", "gc cycles"} {
		if !strings.Contains(line, want) {
			t.Errorf("resource summary missing %q: %s", want, line)
		}
	}
	if strings.ContainsAny(line, "\n") {
		t.Errorf("resource summary is not one line: %q", line)
	}
}
