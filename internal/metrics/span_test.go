package metrics

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a deterministic clock advancing 1µs per reading.
func fakeClock() func() int64 {
	var now int64
	return func() int64 {
		now += 1000
		return now
	}
}

// buildSyntheticSweep records the span tree of a 2-worker, 4-task sweep
// with deterministic interleaving: both workers run one task concurrently
// (overlapping span windows on distinct tids), then one task each in
// sequence. The calls happen on one goroutine — a worker identity is just
// a tid-stamped context — so the recorded trace is exactly reproducible.
func buildSyntheticSweep(tr *Tracer) {
	InstallTracer(tr)
	defer InstallTracer(nil)

	ctx := WithTask(context.Background(), 1, 0)
	ctx, sweep := StartSpan(ctx, "sweep", L("title", "synthetic"), L("input", "small"))
	w1 := WithTid(ctx, 1)
	w2 := WithTid(ctx, 2)

	// Tasks 0 and 1 overlap across the two workers.
	t0ctx, t0 := StartSpan(w1, "task", L("workload", "wl.a"), L("series", "s0"))
	t1ctx, t1 := StartSpan(w2, "task", L("workload", "wl.a"), L("series", "s1"))
	_, sim0 := StartSpan(t0ctx, "simulate", L("config", "reduced"))
	_, sim1 := StartSpan(t1ctx, "simulate", L("config", "reduced"))
	sim0.End()
	t0.SetAttr("cache", "miss")
	t0.End()
	sim1.End()
	t1.SetAttr("cache", "miss")
	t1.End()

	// Tasks 2 and 3 run back to back, one per worker.
	t2ctx, t2 := StartSpan(w1, "task", L("workload", "wl.b"), L("series", "s0"))
	cctx, c2 := StartSpan(t2ctx, "cache.results")
	_, sim2 := StartSpan(cctx, "simulate", L("config", "reduced"))
	sim2.End()
	c2.SetAttr("outcome", "miss")
	c2.End()
	t2.SetAttr("cache", "miss")
	t2.End()

	_, t3 := StartSpan(w2, "task", L("workload", "wl.b"), L("series", "s1"))
	t3.SetAttr("cache", "hit")
	t3.End()

	sweep.End()
}

// TestChromeTraceGolden pins the exact Chrome trace-event encoding of the
// synthetic sweep: metadata rows, event order (ts-sorted, E before B on
// ties), pids/tids, and args.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracerClock(fakeClock())
	buildSyntheticSweep(tr)

	var b bytes.Buffer
	if err := WriteChromeTrace(&b, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "sweep_2w4t.trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/metrics -update` to create goldens)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("trace drift.\n got:\n%s\nwant:\n%s", b.Bytes(), want)
	}
}

// TestChromeTraceValid round-trips the synthetic sweep through the
// reader and the structural validator: monotonic timestamps, matched
// B/E pairs per (pid, tid), nothing left open.
func TestChromeTraceValid(t *testing.T) {
	tr := NewTracerClock(fakeClock())
	buildSyntheticSweep(tr)

	var b bytes.Buffer
	if err := WriteChromeTrace(&b, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadChromeTrace(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(parsed); err != nil {
		t.Errorf("synthetic sweep trace invalid: %v", err)
	}
	// 9 spans -> 18 B/E events, plus 1 process + 3 thread metadata rows.
	if got := len(parsed.TraceEvents); got != 22 {
		t.Errorf("got %d events, want 22", got)
	}
}

// TestValidateCatchesCorruption checks the validator actually rejects
// broken traces (it guards the golden files, so it must not be vacuous).
func TestValidateCatchesCorruption(t *testing.T) {
	tr := NewTracerClock(fakeClock())
	buildSyntheticSweep(tr)
	spans := tr.Spans()

	var b bytes.Buffer
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatal(err)
	}
	good, err := ReadChromeTrace(&b)
	if err != nil {
		t.Fatal(err)
	}

	// Drop one E event: its span stays open.
	broken := &ChromeTrace{}
	dropped := false
	for _, e := range good.TraceEvents {
		if !dropped && e.Ph == "E" {
			dropped = true
			continue
		}
		broken.TraceEvents = append(broken.TraceEvents, e)
	}
	if err := ValidateChromeTrace(broken); err == nil {
		t.Error("validator accepted a trace with an unmatched B")
	}

	// Time travel: swap ts ordering.
	rev := &ChromeTrace{TraceEvents: append([]TraceEvent(nil), good.TraceEvents...)}
	for i := range rev.TraceEvents {
		if rev.TraceEvents[i].Ph != "M" {
			rev.TraceEvents[i].Ts = -rev.TraceEvents[i].Ts
		}
	}
	if err := ValidateChromeTrace(rev); err == nil {
		t.Error("validator accepted non-monotonic timestamps")
	}
}

// TestSpanNesting checks parent linkage and pid/tid inheritance: children
// inherit the task coordinates stamped on the context, WithTid keeps the
// sweep pid, and explicit WithTask overrides both.
func TestSpanNesting(t *testing.T) {
	tr := NewTracerClock(fakeClock())
	InstallTracer(tr)
	defer InstallTracer(nil)

	ctx := WithTask(context.Background(), 7, 0)
	ctx, root := StartSpan(ctx, "root")
	wctx := WithTid(ctx, 3)
	cctx, child := StartSpan(wctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, g := byName["root"], byName["child"], byName["grandchild"]
	if c.Parent != r.ID || g.Parent != c.ID {
		t.Errorf("parent chain broken: root=%d child.parent=%d child=%d grand.parent=%d",
			r.ID, c.Parent, c.ID, g.Parent)
	}
	if r.Pid != 7 || r.Tid != 0 {
		t.Errorf("root at pid/tid %d/%d, want 7/0", r.Pid, r.Tid)
	}
	if c.Pid != 7 || c.Tid != 3 {
		t.Errorf("WithTid child at pid/tid %d/%d, want 7/3", c.Pid, c.Tid)
	}
	if g.Pid != 7 || g.Tid != 3 {
		t.Errorf("grandchild at pid/tid %d/%d, want 7/3", g.Pid, g.Tid)
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Errorf("%s: end %d before start %d", s.Name, s.End, s.Start)
		}
	}
}

// TestDisabledTracer checks the off path: no tracer, nil spans, no
// recording, context untouched.
func TestDisabledTracer(t *testing.T) {
	InstallTracer(nil)
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "x", L("a", "b"))
	if sp != nil {
		t.Error("StartSpan returned a span with no tracer installed")
	}
	if ctx2 != ctx {
		t.Error("StartSpan changed the context with no tracer installed")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()
}

// TestTracerConcurrent hammers one tracer from many goroutines; run with
// -race this checks the recording path is safe.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	InstallTracer(tr)
	defer InstallTracer(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := WithTask(context.Background(), 1, w)
			for i := 0; i < 100; i++ {
				c, sp := StartSpan(ctx, "outer")
				_, in := StartSpan(c, "inner")
				in.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8*100*2 {
		t.Errorf("recorded %d spans, want %d", got, 8*100*2)
	}
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadChromeTrace(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(parsed); err != nil {
		t.Errorf("concurrent trace invalid: %v", err)
	}
}

// TestSpanCPUAccounting covers the opt-in CPU path: with accounting on,
// a span's record carries the thread's CPU delta and the Chrome export
// stamps cpu_ms; with accounting off (the default), neither appears and
// fake-clock traces stay byte-deterministic.
func TestSpanCPUAccounting(t *testing.T) {
	tr := NewTracer()
	InstallTracer(tr)
	defer InstallTracer(nil)
	SetCPUAccounting(true)
	defer SetCPUAccounting(false)

	_, sp := StartSpan(context.Background(), "busy")
	_ = burnCPU(30 * time.Millisecond)
	sp.End()

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].CPUNanos <= 0 {
		t.Fatalf("no CPU recorded on a busy span: %d", spans[0].CPUNanos)
	}
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b.Bytes(), []byte(`"cpu_ms"`)) {
		t.Errorf("chrome export missing cpu_ms arg:\n%s", b.Bytes())
	}

	// Accounting off: the golden fake-clock trace must carry no cpu_ms.
	SetCPUAccounting(false)
	tr2 := NewTracerClock(fakeClock())
	buildSyntheticSweep(tr2)
	for _, s := range tr2.Spans() {
		if s.CPUNanos != 0 {
			t.Errorf("span %q recorded CPU with accounting off: %d", s.Name, s.CPUNanos)
		}
	}
}

// TestSetCPUNanosOverride checks the worker-side override: an explicit
// measured value replaces the span's own delta, zero and negative values
// are ignored, and a nil span does not panic.
func TestSetCPUNanosOverride(t *testing.T) {
	tr := NewTracerClock(fakeClock())
	InstallTracer(tr)
	defer InstallTracer(nil)

	_, sp := StartSpan(context.Background(), "task")
	sp.SetCPUNanos(-5) // ignored
	sp.SetCPUNanos(0)  // ignored
	sp.SetCPUNanos(7_000_000)
	sp.End()
	var nilSpan *Span
	nilSpan.SetCPUNanos(1) // must not panic

	spans := tr.Spans()
	if len(spans) != 1 || spans[0].CPUNanos != 7_000_000 {
		t.Fatalf("override lost: %+v", spans)
	}
}

// TestWriteSpansJSONL checks the JSONL exporter emits one object per span
// in (start, id) order.
func TestWriteSpansJSONL(t *testing.T) {
	tr := NewTracerClock(fakeClock())
	buildSyntheticSweep(tr)
	var b bytes.Buffer
	if err := WriteSpansJSONL(&b, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(b.Bytes()), []byte("\n"))
	if len(lines) != 9 {
		t.Fatalf("got %d JSONL lines, want 9", len(lines))
	}
	if !bytes.Contains(lines[0], []byte(`"name":"sweep"`)) {
		t.Errorf("first line is not the sweep span: %s", lines[0])
	}
}
