package metrics

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

// TestSweepProgress walks a 2-task sweep through its states and checks
// the snapshot counts, per-task fields and the rate-based ETA.
func TestSweepProgress(t *testing.T) {
	ResetProgress()
	defer ResetProgress()

	p := StartSweep("fig1", [][2]string{{"wl.a", "s0"}, {"wl.a", "s1"}})
	s := p.Snapshot()
	if s.Title != "fig1" || !s.Active || s.Total != 2 || s.Queued != 2 || s.Done != 0 {
		t.Errorf("fresh sweep snapshot wrong: %+v", s)
	}
	if s.ETAMS != 0 {
		t.Errorf("ETA with zero tasks done: %v", s.ETAMS)
	}

	p.TaskRunning(0, 3)
	s = p.Snapshot()
	if s.Running != 1 || s.Queued != 1 || s.Tasks[0].State != TaskRunning || s.Tasks[0].Worker != 3 {
		t.Errorf("running snapshot wrong: %+v", s)
	}

	time.Sleep(2 * time.Millisecond) // make elapsed measurable so the ETA is nonzero
	p.TaskDone(0, "hit", nil)
	s = p.Snapshot()
	if s.Done != 1 || s.Failed != 0 || s.Tasks[0].State != TaskDone || s.Tasks[0].Cache != "hit" {
		t.Errorf("done snapshot wrong: %+v", s)
	}
	if s.ETAMS <= 0 {
		t.Errorf("ETA missing mid-sweep: %+v", s)
	}
	wantETA := s.ElapsedMS / float64(s.Done) * float64(s.Total-s.Done)
	if s.ETAMS > 2*wantETA {
		t.Errorf("ETA %v far from rate extrapolation %v", s.ETAMS, wantETA)
	}

	p.TaskRunning(1, 0)
	p.TaskDone(1, "nocache", errors.New("boom"))
	p.Finish()
	s = p.Snapshot()
	if s.Active || s.Done != 2 || s.Failed != 1 || s.Tasks[1].State != TaskError || s.Tasks[1].Error != "boom" {
		t.Errorf("finished snapshot wrong: %+v", s)
	}
	if s.ETAMS != 0 {
		t.Errorf("finished sweep still has an ETA: %v", s.ETAMS)
	}
}

// TestSweepHandler checks /debug/sweep serves the registered sweeps as JSON.
func TestSweepHandler(t *testing.T) {
	ResetProgress()
	defer ResetProgress()

	p := StartSweep("fig6", [][2]string{{"wl.b", "base"}})
	p.TaskRunning(0, 1)
	p.TaskDone(0, "miss", nil)
	p.Finish()

	rec := httptest.NewRecorder()
	SweepHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/sweep", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	var body struct {
		Sweeps []SweepSnapshot `json:"sweeps"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON from /debug/sweep: %v\n%s", err, rec.Body.String())
	}
	if len(body.Sweeps) != 1 {
		t.Fatalf("got %d sweeps, want 1", len(body.Sweeps))
	}
	sw := body.Sweeps[0]
	if sw.Title != "fig6" || sw.Active || sw.Done != 1 || len(sw.Tasks) != 1 {
		t.Errorf("sweep JSON wrong: %+v", sw)
	}
	if sw.Tasks[0].Workload != "wl.b" || sw.Tasks[0].Cache != "miss" {
		t.Errorf("task JSON wrong: %+v", sw.Tasks[0])
	}
}

// TestMetricsHandler checks /metrics serves the installed registry with the
// Prometheus content type, and a valid empty exposition with none installed.
func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("mg_handler_test_total", "test").Add(4)
	Install(r)
	defer Install(nil)

	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	samples, err := ParseText(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Name != "mg_handler_test_total" || samples[0].Value != 4 {
		t.Errorf("scrape wrong: %+v", samples)
	}

	Install(nil)
	rec = httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	samples, err = ParseText(rec.Body)
	if err != nil {
		t.Fatalf("no-registry exposition not parseable: %v", err)
	}
	if len(samples) != 0 {
		t.Errorf("no-registry exposition has samples: %+v", samples)
	}
}

// TestSweepIncidents checks watchdog incidents attach to the snapshot and
// retention is bounded at maxIncidents.
func TestSweepIncidents(t *testing.T) {
	defer ResetProgress()
	p := StartSweep("incident-test", [][2]string{{"w", "s"}})
	defer p.Finish()
	if snap := p.Snapshot(); len(snap.Incidents) != 0 {
		t.Fatalf("fresh sweep has incidents: %+v", snap.Incidents)
	}
	for i := 0; i < maxIncidents+10; i++ {
		p.AddIncident(Incident{Kind: "slow-task", Workload: "w", Detail: "d"})
	}
	snap := p.Snapshot()
	if len(snap.Incidents) != maxIncidents {
		t.Errorf("retained %d incidents, want the %d cap", len(snap.Incidents), maxIncidents)
	}
	if snap.Incidents[0].Kind != "slow-task" || snap.Incidents[0].Workload != "w" {
		t.Errorf("incident fields lost: %+v", snap.Incidents[0])
	}
}
