package metrics

import (
	"fmt"
	rtm "runtime/metrics"
	"time"
)

// This file is the resource-accounting primitive layer: exact CPU-time
// reads (per OS thread where the platform supports it, per process
// otherwise), the process RSS high-water mark, and paired mark/delta
// snapshots that attribute CPU, GC cycles and heap allocation to one task.
// Sweep workers pin their OS thread (runtime.LockOSThread) and bracket
// each task with MarkUsage/Since, so a task's recorded CPU is the thread's
// rusage delta — robust to host load in a way wall time never is.

// ThreadCPUNanos returns the CPU time (user+system) consumed by the
// calling OS thread, in nanoseconds. Exact per-task attribution requires
// the goroutine to be pinned with runtime.LockOSThread; an unpinned caller
// reads whichever thread it happens to run on. On platforms without
// per-thread rusage this falls back to process CPU time.
func ThreadCPUNanos() int64 { return threadCPUNanos() }

// ProcessCPUNanos returns the whole process's consumed CPU time
// (user+system), in nanoseconds; 0 where unavailable.
func ProcessCPUNanos() int64 { return processCPUNanos() }

// MaxRSSKB returns the process resident-set-size high-water mark in KB;
// 0 where unavailable. The value is process-wide and monotone: it
// attributes to a task only in single-task runs.
func MaxRSSKB() int64 { return maxRSSKB() }

// GCCycleCount returns the cumulative number of completed GC cycles.
func GCCycleCount() int64 {
	s := []rtm.Sample{{Name: "/gc/cycles/total:gc-cycles"}}
	rtm.Read(s)
	return int64(s[0].Value.Uint64())
}

// Usage is the resource cost attributed to one bracketed region (a sweep
// task, or a whole driver run). CPUNanos is exact when the goroutine was
// pinned to its OS thread for the whole region; GCCycles and AllocBytes
// are process-global deltas (exact under -workers 1, approximate when
// other tasks run concurrently — Go exposes no per-goroutine allocation
// counter). MaxRSSKB is the process high-water mark at region end.
type Usage struct {
	CPUNanos   int64
	GCCycles   int64
	AllocBytes int64
	MaxRSSKB   int64
}

// UsageMark is a snapshot of the counters Usage is computed from; take one
// with MarkUsage before the work and call Since after it.
type UsageMark struct {
	cpu    int64
	gc     uint64
	allocs uint64
}

// MarkUsage snapshots the calling thread's CPU time and the process GC and
// allocation counters.
func MarkUsage() UsageMark {
	s := []rtm.Sample{
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/gc/heap/allocs:bytes"},
	}
	rtm.Read(s)
	return UsageMark{
		cpu:    threadCPUNanos(),
		gc:     s[0].Value.Uint64(),
		allocs: s[1].Value.Uint64(),
	}
}

// Since returns the resources consumed between the mark and now. A
// negative CPU delta (the goroutine migrated threads because it was not
// pinned) clamps to zero rather than reporting another thread's time.
func (m UsageMark) Since() Usage {
	cpu := threadCPUNanos() - m.cpu
	if cpu < 0 {
		cpu = 0
	}
	s := []rtm.Sample{
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/gc/heap/allocs:bytes"},
	}
	rtm.Read(s)
	return Usage{
		CPUNanos:   cpu,
		GCCycles:   int64(s[0].Value.Uint64() - m.gc),
		AllocBytes: int64(s[1].Value.Uint64() - m.allocs),
		MaxRSSKB:   maxRSSKB(),
	}
}

// FormatResources renders the one-line end-of-run resource summary the
// driver commands print to stderr: wall time, whole-process CPU time with
// the CPU/wall ratio, the RSS high-water mark, and GC cycles.
func FormatResources(wall time.Duration) string {
	cpu := time.Duration(processCPUNanos())
	ratio := 0.0
	if wall > 0 {
		ratio = float64(cpu) / float64(wall)
	}
	return fmt.Sprintf("resources: wall %v, cpu %v (%.2fx), max rss %.1f MB, %d gc cycles",
		wall.Round(time.Millisecond), cpu.Round(time.Millisecond), ratio,
		float64(maxRSSKB())/1024, GCCycleCount())
}
