package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync/atomic"
)

// This file exports recorded spans in two formats:
//
//   - JSONL: one SpanRecord object per line, sorted by (start, id) — the
//     machine-readable form for ad-hoc analysis.
//   - Chrome trace-event JSON: matched B/E duration events, one pid per
//     sweep and one tid per worker, plus process/thread-name metadata —
//     opens directly in Perfetto or chrome://tracing.

// TraceEvent is one Chrome trace-event record (the subset we emit/read).
type TraceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace is the trace-event file container (JSON Object Format).
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// WriteSpansJSONL writes one JSON object per span, sorted by (start, id).
func WriteSpansJSONL(w io.Writer, spans []SpanRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChromeTrace writes spans as a Chrome trace-event file: a B/E event
// pair per span plus process_name/thread_name metadata. Events are ordered
// by timestamp (ties: E before B so back-to-back spans close cleanly;
// among simultaneous Bs the longer — enclosing — span opens first).
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	type ev struct {
		TraceEvent
		end   int64 // span end (B) or start (E), for tie-breaks
		isEnd bool
	}
	evs := make([]ev, 0, 2*len(spans))
	pids := map[int]bool{}
	tids := map[[2]int]bool{}
	for _, s := range spans {
		args := make(map[string]string, len(s.Attrs)+1)
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		if s.CPUNanos > 0 {
			args["cpu_ms"] = strconv.FormatFloat(float64(s.CPUNanos)/1e6, 'f', 3, 64)
		}
		pids[s.Pid] = true
		tids[[2]int{s.Pid, s.Tid}] = true
		evs = append(evs,
			ev{TraceEvent{Name: s.Name, Ph: "B", Ts: float64(s.Start) / 1e3, Pid: s.Pid, Tid: s.Tid, Args: args}, s.End, false},
			ev{TraceEvent{Name: s.Name, Ph: "E", Ts: float64(s.End) / 1e3, Pid: s.Pid, Tid: s.Tid}, s.Start, true})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.isEnd != b.isEnd {
			return a.isEnd // E before B at the same timestamp
		}
		if !a.isEnd {
			return a.end > b.end // longer span opens first
		}
		return a.end > b.end // inner span (later start) closes first
	})

	tr := ChromeTrace{DisplayTimeUnit: "ms"}
	// Metadata first: name each sweep's process row and worker thread row.
	pidList := make([]int, 0, len(pids))
	for p := range pids {
		pidList = append(pidList, p)
	}
	sort.Ints(pidList)
	for _, p := range pidList {
		name := "main"
		if p > 0 {
			name = fmt.Sprintf("sweep-%d", p)
		}
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "process_name", Ph: "M", Pid: p, Args: map[string]string{"name": name}})
	}
	tidList := make([][2]int, 0, len(tids))
	for t := range tids {
		tidList = append(tidList, t)
	}
	sort.Slice(tidList, func(i, j int) bool {
		if tidList[i][0] != tidList[j][0] {
			return tidList[i][0] < tidList[j][0]
		}
		return tidList[i][1] < tidList[j][1]
	})
	for _, t := range tidList {
		name := "orchestrator"
		if t[1] > 0 {
			name = fmt.Sprintf("worker-%d", t[1]-1)
		}
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: t[0], Tid: t[1], Args: map[string]string{"name": name}})
	}
	for _, e := range evs {
		tr.TraceEvents = append(tr.TraceEvents, e.TraceEvent)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&tr); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadChromeTrace parses a trace-event file written by WriteChromeTrace.
func ReadChromeTrace(r io.Reader) (*ChromeTrace, error) {
	var tr ChromeTrace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("chrome trace: %w", err)
	}
	return &tr, nil
}

// ValidateChromeTrace checks the structural invariants the exporter
// guarantees: non-decreasing timestamps in file order, and per-(pid, tid)
// properly nested B/E pairs with matching names.
func ValidateChromeTrace(tr *ChromeTrace) error {
	last := -1.0
	stacks := map[[2]int][]string{}
	for i, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "B":
			if e.Ts < last {
				return fmt.Errorf("event %d (%s): ts %v before previous %v", i, e.Name, e.Ts, last)
			}
			last = e.Ts
			k := [2]int{e.Pid, e.Tid}
			stacks[k] = append(stacks[k], e.Name)
		case "E":
			if e.Ts < last {
				return fmt.Errorf("event %d (%s): ts %v before previous %v", i, e.Name, e.Ts, last)
			}
			last = e.Ts
			k := [2]int{e.Pid, e.Tid}
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("event %d: E %q on pid %d tid %d with no open span", i, e.Name, e.Pid, e.Tid)
			}
			if top := st[len(st)-1]; top != e.Name {
				return fmt.Errorf("event %d: E %q does not match open span %q (pid %d tid %d)", i, e.Name, top, e.Pid, e.Tid)
			}
			stacks[k] = st[:len(st)-1]
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, e.Ph)
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("pid %d tid %d: %d unclosed span(s), first %q", k[0], k[1], len(st), st[0])
		}
	}
	return nil
}

// traceOutPath records the -trace-out destination so run manifests can
// point at the span artifacts.
var traceOutPath atomic.Pointer[string]

// SetTraceOut records the process's -trace-out path.
func SetTraceOut(path string) { traceOutPath.Store(&path) }

// TraceOut returns the recorded -trace-out path ("" when tracing to file
// is off).
func TraceOut() string {
	if p := traceOutPath.Load(); p != nil {
		return *p
	}
	return ""
}

// WriteTraceFiles writes the tracer's spans to path in Chrome trace-event
// format and to path+".spans.jsonl" as JSONL. It is the -trace-out
// implementation shared by the driver commands; returns the JSONL path.
func WriteTraceFiles(path string, t *Tracer) (string, error) {
	spans := t.Spans()
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	err = WriteChromeTrace(f, spans)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}
	jsonl := path + ".spans.jsonl"
	f, err = os.Create(jsonl)
	if err != nil {
		return "", err
	}
	err = WriteSpansJSONL(f, spans)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return jsonl, err
}
