package metrics

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// This file is the live-progress layer behind /debug/sweep: every RunSweep
// registers its task list here and updates task states as the worker pool
// drains them, so a long `mgreport -exp all` can be watched from a browser
// or curl while it runs. Tracking is always on (a handful of mutexed
// updates per task, invisible next to the simulations they describe);
// the endpoint is only reachable when a debug server is started.

// Task states reported by /debug/sweep.
const (
	TaskQueued  = "queued"
	TaskRunning = "running"
	TaskDone    = "done"
	TaskError   = "error"
)

// TaskSnapshot is one (workload, series) task's live state.
type TaskSnapshot struct {
	Workload  string  `json:"workload"`
	Series    string  `json:"series"`
	State     string  `json:"state"`
	Worker    int     `json:"worker,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Cache     string  `json:"cache,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// SweepSnapshot is one sweep's live state: counts, rate-based ETA, and the
// full task list.
type SweepSnapshot struct {
	Title     string         `json:"title"`
	Active    bool           `json:"active"`
	Total     int            `json:"total"`
	Queued    int            `json:"queued"`
	Running   int            `json:"running"`
	Done      int            `json:"done"`
	Failed    int            `json:"failed"`
	ElapsedMS float64        `json:"elapsed_ms"`
	ETAMS     float64        `json:"eta_ms,omitempty"`
	Tasks     []TaskSnapshot `json:"tasks"`
	Incidents []Incident     `json:"incidents,omitempty"`
}

// Incident is one watchdog finding attached to a sweep: a task running far
// past the sweep's median, or a wedged sweep making no progress at all.
type Incident struct {
	Time      string  `json:"time"` // RFC 3339 UTC
	Kind      string  `json:"kind"` // "slow-task" or "wedge"
	Workload  string  `json:"workload,omitempty"`
	Series    string  `json:"series,omitempty"`
	Worker    int     `json:"worker,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	MedianMS  float64 `json:"median_ms,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	Stacks    string  `json:"stacks,omitempty"` // full goroutine dump at detection time
}

// maxIncidents bounds retained incidents per sweep; a sweep wedged for hours
// should not grow its snapshot without limit.
const maxIncidents = 64

// SweepProgress tracks one sweep's tasks. Created by StartSweep; the
// owning sweep marks tasks running/done and calls Finish.
type SweepProgress struct {
	mu        sync.Mutex
	title     string
	started   time.Time
	active    bool
	tasks     []taskProgress
	incidents []Incident
}

type taskProgress struct {
	workload, series string
	state            string
	worker           int
	started          time.Time
	wallMS           float64
	cache            string
	err              string
}

// progressMu guards the process-wide sweep list. Finished sweeps are kept
// (bounded by the experiment count of a run) so /debug/sweep shows a full
// run history.
var (
	progressMu sync.Mutex
	sweeps     []*SweepProgress
)

// StartSweep registers a sweep with its (workload, series) task list, all
// initially queued. The returned tracker is never nil.
func StartSweep(title string, tasks [][2]string) *SweepProgress {
	p := &SweepProgress{title: title, started: time.Now(), active: true}
	p.tasks = make([]taskProgress, len(tasks))
	for i, t := range tasks {
		p.tasks[i] = taskProgress{workload: t[0], series: t[1], state: TaskQueued}
	}
	progressMu.Lock()
	sweeps = append(sweeps, p)
	progressMu.Unlock()
	return p
}

// ResetProgress drops all registered sweeps (tests).
func ResetProgress() {
	progressMu.Lock()
	sweeps = nil
	progressMu.Unlock()
}

// TaskRunning marks task i as picked up by worker w.
func (p *SweepProgress) TaskRunning(i, worker int) {
	p.mu.Lock()
	p.tasks[i].state = TaskRunning
	p.tasks[i].worker = worker
	p.tasks[i].started = time.Now()
	p.mu.Unlock()
}

// TaskDone marks task i finished with the given cache outcome; a non-nil
// err marks it failed.
func (p *SweepProgress) TaskDone(i int, cache string, err error) {
	p.mu.Lock()
	t := &p.tasks[i]
	t.state = TaskDone
	if err != nil {
		t.state = TaskError
		t.err = err.Error()
	}
	t.cache = cache
	if !t.started.IsZero() {
		t.wallMS = float64(time.Since(t.started)) / float64(time.Millisecond)
	}
	p.mu.Unlock()
}

// AddIncident attaches a watchdog incident to the sweep (bounded at
// maxIncidents; later ones are dropped).
func (p *SweepProgress) AddIncident(inc Incident) {
	p.mu.Lock()
	if len(p.incidents) < maxIncidents {
		p.incidents = append(p.incidents, inc)
	}
	p.mu.Unlock()
}

// Finish marks the sweep inactive.
func (p *SweepProgress) Finish() {
	p.mu.Lock()
	p.active = false
	p.mu.Unlock()
}

// Snapshot returns the sweep's current state. The ETA extrapolates from
// the completed-task rate: remaining * (elapsed / done).
func (p *SweepProgress) Snapshot() SweepSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := SweepSnapshot{
		Title:     p.title,
		Active:    p.active,
		Total:     len(p.tasks),
		ElapsedMS: float64(time.Since(p.started)) / float64(time.Millisecond),
		Tasks:     make([]TaskSnapshot, len(p.tasks)),
	}
	for i := range p.tasks {
		t := &p.tasks[i]
		ts := TaskSnapshot{Workload: t.workload, Series: t.series, State: t.state,
			Cache: t.cache, Error: t.err}
		switch t.state {
		case TaskQueued:
			s.Queued++
		case TaskRunning:
			s.Running++
			ts.Worker = t.worker
			ts.ElapsedMS = float64(time.Since(t.started)) / float64(time.Millisecond)
		case TaskDone, TaskError:
			s.Done++
			if t.state == TaskError {
				s.Failed++
			}
			ts.Worker = t.worker
			ts.ElapsedMS = t.wallMS
		}
		s.Tasks[i] = ts
	}
	if p.active && s.Done > 0 && s.Done < s.Total {
		s.ETAMS = s.ElapsedMS / float64(s.Done) * float64(s.Total-s.Done)
	}
	if len(p.incidents) > 0 {
		s.Incidents = append([]Incident(nil), p.incidents...)
	}
	return s
}

// SnapshotSweeps returns the state of every registered sweep, in
// registration order.
func SnapshotSweeps() []SweepSnapshot {
	progressMu.Lock()
	list := append([]*SweepProgress(nil), sweeps...)
	progressMu.Unlock()
	out := make([]SweepSnapshot, len(list))
	for i, p := range list {
		out[i] = p.Snapshot()
	}
	return out
}

// SweepHandler serves the live sweep-progress JSON at /debug/sweep:
// {"sweeps": [...]}, newest-registered last.
func SweepHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct { //nolint:errcheck — best-effort debug endpoint
			Sweeps []SweepSnapshot `json:"sweeps"`
		}{SnapshotSweeps()})
	})
}

// Handler serves the installed registry in Prometheus text exposition
// format at /metrics. With no registry installed it serves an explanatory
// comment (still a valid, empty exposition).
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default().WritePrometheus(w) //nolint:errcheck — best-effort debug endpoint
	})
}
