package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestPrometheusRender pins the text exposition format: HELP/TYPE comments,
// label rendering, histogram cumulative buckets with le, sum and count.
func TestPrometheusRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mg_test_total", "a counter", L("kind", "x"))
	c.Add(3)
	g := r.Gauge("mg_test_gauge", "a gauge")
	g.Set(2.5)
	r.GaugeFunc("mg_test_func", "a func gauge", func() float64 { return 7 })
	h := r.Histogram("mg_test_seconds", "a histogram", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP mg_test_func a func gauge
# TYPE mg_test_func gauge
mg_test_func 7
# HELP mg_test_gauge a gauge
# TYPE mg_test_gauge gauge
mg_test_gauge 2.5
# HELP mg_test_seconds a histogram
# TYPE mg_test_seconds histogram
mg_test_seconds_bucket{le="0.1"} 1
mg_test_seconds_bucket{le="1"} 2
mg_test_seconds_bucket{le="10"} 3
mg_test_seconds_bucket{le="+Inf"} 4
mg_test_seconds_sum 55.55
mg_test_seconds_count 4
# HELP mg_test_total a counter
# TYPE mg_test_total counter
mg_test_total{kind="x"} 3
`
	if got != want {
		t.Errorf("render mismatch.\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegisterIdempotent checks that re-registering the same (name, labels)
// returns the same instance, and that distinct label sets coexist.
func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("mg_tasks_total", "", L("state", "done"))
	b := r.Counter("mg_tasks_total", "", L("state", "done"))
	if a != b {
		t.Error("same (name, labels) registered twice returned distinct counters")
	}
	c := r.Counter("mg_tasks_total", "", L("state", "error"))
	if a == c {
		t.Error("distinct label sets share a counter")
	}
	a.Inc()
	if b.Value() != 1 || c.Value() != 0 {
		t.Errorf("counter aliasing wrong: b=%d c=%d", b.Value(), c.Value())
	}
}

// TestNilInstruments checks every instrument method is a no-op on nil — the
// guarantee that lets instrumented code run unguarded with metrics off.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 {
		t.Error("nil histogram has a count")
	}
	var reg *Registry
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "#") {
		t.Errorf("nil registry rendered a non-comment: %q", b.String())
	}
}

// TestParseRoundTrip renders a registry and parses it back, checking names,
// labels (including escaped values) and numeric values survive.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("mg_lookups_total", "lookups", L("cache", "benches"), L("outcome", "hit")).Add(12)
	r.Gauge("mg_bytes", "bytes", L("path", `C:\dir "quoted"`)).Set(1.5e6)
	h := r.Histogram("mg_wall_seconds", "wall", []float64{0.5})
	h.Observe(0.25)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&b)
	if err != nil {
		t.Fatalf("ParseText: %v\nrendered:\n%s", err, b.String())
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	checks := []struct {
		key  string
		want float64
	}{
		{`mg_lookups_total{cache="benches"}{outcome="hit"}`, 12},
		{`mg_bytes{path="C:\\dir \"quoted\""}`, 1.5e6},
		{`mg_wall_seconds_bucket{le="0.5"}`, 1},
		{`mg_wall_seconds_bucket{le="+Inf"}`, 1},
		{`mg_wall_seconds_sum`, 0.25},
		{`mg_wall_seconds_count`, 1},
	}
	for _, c := range checks {
		got, ok := byKey[c.key]
		if !ok {
			t.Errorf("sample %s missing; have %v", c.key, keysOf(byKey))
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.key, got, c.want)
		}
	}
	// The escaped label value must round-trip exactly.
	found := false
	for _, s := range samples {
		if s.Name == "mg_bytes" {
			found = true
			if s.Labels["path"] != `C:\dir "quoted"` {
				t.Errorf("escaped label round-trip: %q", s.Labels["path"])
			}
		}
	}
	if !found {
		t.Error("mg_bytes sample not parsed")
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestParseInf checks the +Inf bucket value parses.
func TestParseInf(t *testing.T) {
	samples, err := ParseText(strings.NewReader("mg_x_bucket{le=\"+Inf\"} 3\nmg_inf +Inf\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("got %d samples", len(samples))
	}
	if !math.IsInf(samples[1].Value, 1) {
		t.Errorf("mg_inf = %v, want +Inf", samples[1].Value)
	}
}
