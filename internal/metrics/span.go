package metrics

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the span layer: hierarchical timed regions threaded through
// the sweep service via context. A span records who (pid = sweep, tid =
// worker), what (name + attributes), and when (monotonic nanoseconds since
// the tracer started). Spans are exported as JSONL or Chrome trace-event
// JSON (see export.go) so a whole sweep opens in Perfetto/chrome://tracing.

// SpanRecord is one finished span.
type SpanRecord struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent,omitempty"` // 0 = root
	Name   string `json:"name"`
	Pid    int    `json:"pid"` // process row in the trace viewer: one per sweep
	Tid    int    `json:"tid"` // thread row: one per worker (0 = orchestrator)
	Start  int64  `json:"start_ns"`
	End    int64  `json:"end_ns"`
	// CPUNanos is the exact CPU time the span consumed (RUSAGE_THREAD
	// delta), captured when CPU accounting is on (SetCPUAccounting) and the
	// goroutine stayed on one pinned OS thread; 0 = not measured.
	CPUNanos int64   `json:"cpu_ns,omitempty"`
	Attrs    []Label `json:"attrs,omitempty"`
}

// cpuAccounting gates per-span thread-CPU capture. Off by default: spans
// must stay deterministic under fake-clock tracers (golden tests), and an
// unpinned goroutine can migrate OS threads mid-span, which would make the
// delta meaningless. Drivers enable it alongside -trace-out; sweep workers
// pin their threads, so phase spans under a task measure exactly.
var cpuAccounting atomic.Bool

// SetCPUAccounting toggles per-span CPU-time capture process-wide.
func SetCPUAccounting(on bool) { cpuAccounting.Store(on) }

// CPUAccountingOn reports whether per-span CPU capture is enabled.
func CPUAccountingOn() bool { return cpuAccounting.Load() }

// Tracer collects finished spans. Recording is a mutex-guarded append;
// spans are coarse (task and phase granularity), so contention is
// negligible next to the work they time.
type Tracer struct {
	clock func() int64 // monotonic nanoseconds since tracer start

	mu    sync.Mutex
	spans []SpanRecord

	ids atomic.Int64
}

// NewTracer creates a tracer timing spans against the wall clock
// (monotonic, relative to creation time).
func NewTracer() *Tracer {
	base := time.Now()
	return &Tracer{clock: func() int64 { return int64(time.Since(base)) }}
}

// NewTracerClock creates a tracer with an explicit clock (deterministic
// tests).
func NewTracerClock(clock func() int64) *Tracer {
	return &Tracer{clock: clock}
}

// curTracer is the process-wide tracer; nil (the default) disables span
// collection entirely — StartSpan returns a nil *Span whose methods are
// no-ops.
var curTracer atomic.Pointer[Tracer]

// InstallTracer makes t the process-wide tracer (nil uninstalls).
func InstallTracer(t *Tracer) { curTracer.Store(t) }

// CurrentTracer returns the installed tracer, or nil when tracing is off.
func CurrentTracer() *Tracer { return curTracer.Load() }

// pidSeq allocates pids (one per sweep) process-wide; pid 0 is the
// implicit default for spans outside any sweep.
var pidSeq atomic.Int64

// NextPid allocates a fresh trace pid. Sweeps call it once so that each
// sweep becomes one process row in the trace viewer.
func NextPid() int { return int(pidSeq.Add(1)) }

// Spans returns a copy of the finished spans, sorted by (Start, ID).
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Reset drops all recorded spans (tests).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}

// Span is an in-flight timed region. A nil Span (tracing off) is valid:
// every method is a no-op.
type Span struct {
	t        *Tracer
	rec      SpanRecord
	cpuOn    bool
	cpuStart int64
}

type ctxKey int

const (
	ctxSpan ctxKey = iota
	ctxTask
)

type taskID struct{ pid, tid int }

// WithTask stamps ctx with the trace coordinates of subsequent spans: pid
// identifies the sweep, tid the worker within it.
func WithTask(ctx context.Context, pid, tid int) context.Context {
	return context.WithValue(ctx, ctxTask, taskID{pid, tid})
}

// WithTid stamps ctx with a new tid, keeping the pid stamped by an
// enclosing WithTask (pid 0 when there is none). Worker pools use it to
// give each worker its own thread row within the surrounding sweep.
func WithTid(ctx context.Context, tid int) context.Context {
	pid := 0
	if id, ok := ctx.Value(ctxTask).(taskID); ok {
		pid = id.pid
	}
	return context.WithValue(ctx, ctxTask, taskID{pid, tid})
}

// StartSpan begins a span named name under the span in ctx (if any),
// carrying the pid/tid stamped by WithTask. It returns a derived context
// for child spans and the span itself; call End to record it. When no
// tracer is installed it returns ctx unchanged and a nil span — the
// disabled path does no allocation beyond the variadic attrs slice.
func StartSpan(ctx context.Context, name string, attrs ...Label) (context.Context, *Span) {
	t := curTracer.Load()
	if t == nil {
		return ctx, nil
	}
	s := &Span{t: t}
	s.rec.ID = t.ids.Add(1)
	s.rec.Name = name
	s.rec.Attrs = attrs
	if parent, ok := ctx.Value(ctxSpan).(*Span); ok && parent != nil {
		s.rec.Parent = parent.rec.ID
		s.rec.Pid = parent.rec.Pid
		s.rec.Tid = parent.rec.Tid
	}
	if id, ok := ctx.Value(ctxTask).(taskID); ok {
		s.rec.Pid = id.pid
		s.rec.Tid = id.tid
	}
	if cpuAccounting.Load() {
		s.cpuOn = true
		s.cpuStart = threadCPUNanos()
	}
	s.rec.Start = t.clock()
	return context.WithValue(ctx, ctxSpan, s), s
}

// SetCPUNanos overrides the span's CPU time with an externally measured
// value (the sweep workers bracket whole tasks with MarkUsage/Since and
// stamp the exact delta here); non-positive values are ignored.
func (s *Span) SetCPUNanos(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.rec.CPUNanos = n
	s.cpuOn = false
}

// SetAttr attaches (or appends) an attribute; call before End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	for i := range s.rec.Attrs {
		if s.rec.Attrs[i].Key == key {
			s.rec.Attrs[i].Value = value
			return
		}
	}
	s.rec.Attrs = append(s.rec.Attrs, Label{key, value})
}

// End finishes the span and records it into the tracer.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.cpuOn {
		// Clamp migrations (unpinned goroutine moved threads) to "not
		// measured" rather than recording another thread's time.
		if d := threadCPUNanos() - s.cpuStart; d > 0 {
			s.rec.CPUNanos = d
		}
	}
	s.rec.End = s.t.clock()
	if s.rec.End < s.rec.Start {
		s.rec.End = s.rec.Start
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, s.rec)
	s.t.mu.Unlock()
}
