//go:build linux

package metrics

import "syscall"

// rusageThread is RUSAGE_THREAD (uapi asm-generic/resource.h); the syscall
// package does not export the constant on every linux arch, and the value
// is uniform across them.
const rusageThread = 1

// threadCPUNanos reads the calling OS thread's consumed CPU time
// (user+system) via getrusage(RUSAGE_THREAD).
func threadCPUNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(rusageThread, &ru); err != nil {
		return processCPUNanos()
	}
	return tvNanos(ru.Utime) + tvNanos(ru.Stime)
}

func processCPUNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvNanos(ru.Utime) + tvNanos(ru.Stime)
}

// maxRSSKB reads the process RSS high-water mark; linux getrusage reports
// it in kilobytes already.
func maxRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss
}

func tvNanos(tv syscall.Timeval) int64 {
	return int64(tv.Sec)*1e9 + int64(tv.Usec)*1e3
}
