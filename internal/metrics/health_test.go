package metrics

import (
	"runtime"
	rtm "runtime/metrics"
	"strings"
	"testing"
	"time"
)

// TestHealthSamplerSample takes real readings and checks the plausible
// invariants: a live heap, at least one goroutine, monotonic GC cycles,
// and clamped GC CPU share.
func TestHealthSamplerSample(t *testing.T) {
	h := NewHealthSampler(0)
	if h.Interval() != defaultHealthInterval {
		t.Errorf("default interval %v, want %v", h.Interval(), defaultHealthInterval)
	}
	s1 := h.Sample()
	if s1.HeapBytes == 0 {
		t.Error("zero heap bytes")
	}
	if s1.Goroutines < 1 {
		t.Errorf("%d goroutines, want >= 1", s1.Goroutines)
	}
	runtime.GC()
	s2 := h.Sample()
	if s2.GCCycles <= s1.GCCycles {
		t.Errorf("GC cycles did not advance across runtime.GC(): %d -> %d", s1.GCCycles, s2.GCCycles)
	}
	if s2.GCCPUPct < 0 || s2.GCCPUPct > 100 {
		t.Errorf("GC CPU share out of range: %v", s2.GCCPUPct)
	}
	if s2.GCPauseP99MS < 0 || s2.SchedLatP99MS < 0 {
		t.Errorf("negative quantile: pause %v, sched %v", s2.GCPauseP99MS, s2.SchedLatP99MS)
	}
	if got, ok := h.Latest(); !ok || got != s2 {
		t.Errorf("Latest = %+v ok=%v, want the second sample", got, ok)
	}
	if hist := h.History(); len(hist) != 2 || hist[0] != s1 || hist[1] != s2 {
		t.Errorf("history %d samples, want [s1 s2]", len(hist))
	}
}

// TestHealthRingWraparound overfills the ring via Push and checks History
// returns exactly the newest healthRing samples, oldest first.
func TestHealthRingWraparound(t *testing.T) {
	h := NewHealthSampler(time.Second)
	if _, ok := h.Latest(); ok {
		t.Error("Latest ok on an empty sampler")
	}
	const n = healthRing + 100
	for i := 0; i < n; i++ {
		h.Push(HealthSample{Goroutines: int64(i)})
	}
	hist := h.History()
	if len(hist) != healthRing {
		t.Fatalf("history %d samples, want %d", len(hist), healthRing)
	}
	if hist[0].Goroutines != n-healthRing || hist[len(hist)-1].Goroutines != n-1 {
		t.Errorf("ring window [%d..%d], want [%d..%d]",
			hist[0].Goroutines, hist[len(hist)-1].Goroutines, n-healthRing, n-1)
	}
	if got, ok := h.Latest(); !ok || got.Goroutines != n-1 {
		t.Errorf("Latest = %+v ok=%v, want the %dth push", got, ok, n-1)
	}
}

// TestHistDeltaQuantile drives the delta-quantile helper with a
// hand-built cumulative histogram.
func TestHistDeltaQuantile(t *testing.T) {
	hist := &rtm.Float64Histogram{
		Buckets: []float64{0, 0.001, 0.01, 1e9}, // 1e9 stands in for +Inf's neighbor below
		Counts:  []uint64{0, 10, 0},
	}
	var prev []uint64
	// All 10 observations in the (0.001, 0.01] bucket: p99 is its upper edge.
	if got := histDeltaQuantile(hist, &prev, 0.99); got != 0.01 {
		t.Errorf("p99 of one filled bucket = %v, want 0.01", got)
	}
	// No new observations since: quantile is 0.
	if got := histDeltaQuantile(hist, &prev, 0.99); got != 0 {
		t.Errorf("p99 of an empty delta = %v, want 0", got)
	}
	// 90 new fast ones and 1 slow one: p99 lands in the slow bucket.
	hist.Counts = []uint64{90, 10, 1}
	if got := histDeltaQuantile(hist, &prev, 0.99); got != 1e9 {
		t.Errorf("p99 with a slow outlier = %v, want 1e9", got)
	}
	// +Inf overflow bucket reports its lower edge instead.
	inf := &rtm.Float64Histogram{
		Buckets: []float64{0, 0.5, positiveInf()},
		Counts:  []uint64{0, 3},
	}
	var prev2 []uint64
	if got := histDeltaQuantile(inf, &prev2, 0.99); got != 0.5 {
		t.Errorf("p99 in the overflow bucket = %v, want the lower edge 0.5", got)
	}
}

func positiveInf() float64 {
	var zero float64
	return 1 / zero
}

// TestInstallHealthMetrics scrapes the health gauges with a fake sampler
// installed, and with none.
func TestInstallHealthMetrics(t *testing.T) {
	reg := NewRegistry()
	InstallHealthMetrics(reg)

	// No sampler: everything reads 0, exposition still valid.
	prev := InstallHealth(nil)
	defer InstallHealth(prev)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mg_health_heap_bytes 0") {
		t.Errorf("samplerless scrape missing zero gauge:\n%s", sb.String())
	}

	h := NewHealthSampler(time.Second)
	h.Push(HealthSample{HeapBytes: 12345, Goroutines: 7, GCCycles: 3, GCCPUPct: 1.5})
	InstallHealth(h)
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"mg_health_heap_bytes 12345",
		"mg_health_goroutines 7",
		"mg_health_gc_cycles_total 3",
		"mg_health_gc_cpu_pct 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

// TestStartHealthIdempotent checks StartHealth installs exactly one
// sampler and later calls return it untouched.
func TestStartHealthIdempotent(t *testing.T) {
	prev := InstallHealth(nil)
	defer func() {
		got := InstallHealth(prev)
		got.Stop()
	}()
	h1 := StartHealth(time.Hour) // an hour: the loop never ticks during the test
	if h1 == nil || Health() != h1 {
		t.Fatal("StartHealth did not install the sampler")
	}
	if h2 := StartHealth(time.Minute); h2 != h1 {
		t.Error("second StartHealth replaced the installed sampler")
	}
	if _, ok := h1.Latest(); !ok {
		t.Error("StartHealth did not prime a baseline sample")
	}
}

// TestHealthSamplerOverhead bounds one Sample's cost: the acceptance
// criterion is <= 1% overhead at the 2s default cadence, i.e. 20ms per
// sample. Real cost is microseconds; the bound is two orders looser.
func TestHealthSamplerOverhead(t *testing.T) {
	h := NewHealthSampler(0)
	h.Sample() // warm the read buffer and baselines
	const n = 50
	t0 := time.Now()
	for i := 0; i < n; i++ {
		h.Sample()
	}
	per := time.Since(t0) / n
	t.Logf("health sample cost: %v per sample (%0.5f%% of the %v cadence)",
		per, 100*float64(per)/float64(defaultHealthInterval), defaultHealthInterval)
	if per > 20*time.Millisecond {
		t.Errorf("sample cost %v exceeds the 1%% overhead budget (20ms at a 2s cadence)", per)
	}
}

func BenchmarkHealthSample(b *testing.B) {
	h := NewHealthSampler(0)
	h.Sample()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sample()
	}
}
