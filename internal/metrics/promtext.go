package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is a minimal Prometheus text-exposition parser — enough to
// round-trip what WritePrometheus emits. The committed parser tests and
// the metrics-smoke target use it to assert that /metrics stays
// machine-readable.

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample's identity (name plus sorted labels) for lookups.
func (s Sample) Key() string {
	var b strings.Builder
	b.WriteString(s.Name)
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	// Insertion-sort; label sets are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		fmt.Fprintf(&b, `{%s=%q}`, k, s.Labels[k])
	}
	return b.String()
}

// ParseText parses Prometheus text exposition format into samples,
// skipping comments and blank lines.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{' and
// returns the index just past the closing '}'.
func parseLabels(s string, into map[string]string) (int, error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("unterminated label block in %q", s)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		into[key] = val.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}
