package obs

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Scrape-time observability metrics for the trace layer itself: how many
// seek indexes have been written and how busy the flight recorder is.
// Counters are bumped off the hot path (index writes happen once per run)
// or read lazily at scrape time (flight totals), matching the repo rule
// that /metrics never adds work to the cycle loop.

var (
	traceIndexesWritten atomic.Int64
	traceIndexEntries   atomic.Int64
)

// noteIndexWritten records one serialized index (called by WriteIndex).
func noteIndexWritten(entries int64) {
	traceIndexesWritten.Add(1)
	traceIndexEntries.Add(entries)
}

// InstallMetrics registers the obs package's metrics on reg.
func InstallMetrics(reg *metrics.Registry) {
	reg.CounterFunc("mg_trace_indexes_total",
		"Pipetrace seek indexes written by this process.",
		func() float64 { return float64(traceIndexesWritten.Load()) })
	reg.CounterFunc("mg_trace_index_entries_total",
		"Seek-index entries written across all indexes.",
		func() float64 { return float64(traceIndexEntries.Load()) })
	reg.CounterFunc("mg_flight_records_total",
		"Uop records captured by the flight recorder (0 when disabled).",
		func() float64 {
			if f := Flight(); f != nil {
				total, _ := f.Totals()
				return float64(total)
			}
			return 0
		})
	reg.CounterFunc("mg_flight_dropped_total",
		"Flight-recorder records overwritten by ring wrap.",
		func() float64 {
			if f := Flight(); f != nil {
				_, dropped := f.Totals()
				return float64(dropped)
			}
			return 0
		})
}
