package obs

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
)

// Sidecar seek index for binary pipetraces. A multi-gigabyte trace of a
// large input is effectively write-only if every query re-scans it from
// byte 0; the .mgidx sidecar makes the trace randomly accessible: every
// IndexEvery-th record gets an entry carrying its byte offset, record
// ordinal, and the exact min/max index cycle of the chunk it opens, so a
// reader can seek straight to the chunks that can possibly intersect a
// cycle window or record range and decode only those bytes. The footer
// records stream totals plus a trace-identity fingerprint (byte length and
// a CRC-32C of the trace's first indexHeadLen bytes) so a stale index left
// behind by a rewritten trace is rejected at open instead of silently
// returning records from the wrong run.
//
// Index file layout (all integers little-endian):
//
//	magic    8 bytes: "MGIDX1\r\n"
//	u32 every, u32 reserved(0)
//	entries, 32 bytes each:
//	    i64 off       — byte offset of the chunk's first record
//	    i64 firstRec  — 0-based ordinal of that record in the stream
//	    i64 minCycle  — exact min index cycle over the chunk's records
//	    i64 maxCycle  — exact max index cycle over the chunk's records
//	footer, 64 bytes:
//	    i64 records, i64 uops, i64 events, i64 traceBytes
//	    i64 minCycle, i64 maxCycle   (0, -1 for an empty trace)
//	    u32 traceCRC  — CRC-32C of the trace's first min(traceBytes, 64 KiB) bytes
//	    u32 indexCRC  — CRC-32C of every preceding index byte
//	    magic 8 bytes: "MGIDXE\r\n"
//
// A record's index cycle is its commit cycle when it committed, the last
// stage it reached when squashed, and the event cycle for events (see
// UopTrace.IndexCycle). Records are emitted in simulation-time order and a
// record's index cycle never exceeds its emission cycle, so cycle windows
// cluster into few chunks; the per-chunk min/max are exact regardless, so
// chunk selection is sound even where they interleave.
var (
	idxMagic    = [8]byte{'M', 'G', 'I', 'D', 'X', '1', '\r', '\n'}
	idxEndMagic = [8]byte{'M', 'G', 'I', 'D', 'X', 'E', '\r', '\n'}
)

const (
	// DefaultIndexEvery is the record stride between index entries: 32
	// bytes of index per 4096 records keeps the sidecar about four
	// decimal orders smaller than the trace while bounding any window
	// query's over-read to one chunk on each side.
	DefaultIndexEvery = 4096

	// indexHeadLen is how much of the trace's head the identity CRC
	// covers. Verification at open reads only this much, so opening an
	// indexed multi-GB trace stays O(64 KiB) + the queried window.
	indexHeadLen = 64 << 10

	idxHeaderLen = 16
	idxEntryLen  = 32
	idxFooterLen = 64
)

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// IndexEntry summarizes one chunk of IndexEvery consecutive records.
type IndexEntry struct {
	Off      int64 // byte offset of the chunk's first record
	FirstRec int64 // 0-based record ordinal of that record
	MinCycle int64 // exact min index cycle over the chunk
	MaxCycle int64 // exact max index cycle over the chunk
}

// Index is a parsed (or under-construction) seek index.
type Index struct {
	Every      int
	Records    int64
	Uops       int64
	Events     int64
	TraceBytes int64
	MinCycle   int64 // 0, -1 when Records == 0
	MaxCycle   int64
	TraceCRC   uint32
	Entries    []IndexEntry
}

// IndexInfo is the manifest-facing summary of a written index, so tooling
// discovers indexes from the run manifest instead of globbing.
type IndexInfo struct {
	File     string `json:"file"`
	Records  int64  `json:"records"`
	MinCycle int64  `json:"minCycle"`
	MaxCycle int64  `json:"maxCycle"`
}

// Info summarizes the index for a manifest. file is the sidecar's name.
func (x *Index) Info(file string) *IndexInfo {
	return &IndexInfo{File: file, Records: x.Records, MinCycle: x.MinCycle, MaxCycle: x.MaxCycle}
}

// IndexCycle returns the cycle a record is indexed and windowed by: the
// commit cycle for committed uops, and the last stage the uop reached for
// squashed ones (their commit is -1). The same rule drives index building,
// indexed seeks, and linear-scan filtering, so the three always agree.
func (u *UopTrace) IndexCycle() int64 {
	if u.Commit >= 0 {
		return u.Commit
	}
	c := int64(0)
	for _, t := range [...]int64{u.Fetch, u.Rename, u.Issue, u.Done, u.Ready} {
		if t > c {
			c = t
		}
	}
	return c
}

// indexBuilder accumulates an Index while trace records stream past. It is
// fed by the binary pipetrace writer (EnableIndex) and by BuildIndex.
type indexBuilder struct {
	idx      Index
	cur      IndexEntry
	curN     int
	headLeft int64
	crc      uint32
}

func newIndexBuilder(every int) *indexBuilder {
	return &indexBuilder{
		idx:      Index{Every: every, MinCycle: math.MaxInt64, MaxCycle: math.MinInt64},
		headLeft: indexHeadLen,
	}
}

// note registers one record about to be written at byte offset off.
func (b *indexBuilder) note(off, cycle int64, isUop bool) {
	if b.curN == 0 {
		b.cur = IndexEntry{Off: off, FirstRec: b.idx.Records, MinCycle: cycle, MaxCycle: cycle}
	} else {
		if cycle < b.cur.MinCycle {
			b.cur.MinCycle = cycle
		}
		if cycle > b.cur.MaxCycle {
			b.cur.MaxCycle = cycle
		}
	}
	b.idx.Records++
	if isUop {
		b.idx.Uops++
	} else {
		b.idx.Events++
	}
	if cycle < b.idx.MinCycle {
		b.idx.MinCycle = cycle
	}
	if cycle > b.idx.MaxCycle {
		b.idx.MaxCycle = cycle
	}
	b.curN++
	if b.curN == b.idx.Every {
		b.idx.Entries = append(b.idx.Entries, b.cur)
		b.curN = 0
	}
}

// head feeds raw trace bytes (in stream order, starting with the magic)
// into the identity CRC; bytes past indexHeadLen are ignored.
func (b *indexBuilder) head(p []byte) {
	if b.headLeft <= 0 {
		return
	}
	if int64(len(p)) > b.headLeft {
		p = p[:b.headLeft]
	}
	b.crc = crc32.Update(b.crc, crcTab, p)
	b.headLeft -= int64(len(p))
}

// finish seals the index once the trace has traceBytes bytes.
func (b *indexBuilder) finish(traceBytes int64) *Index {
	if b.curN > 0 {
		b.idx.Entries = append(b.idx.Entries, b.cur)
		b.curN = 0
	}
	if b.idx.Records == 0 {
		b.idx.MinCycle, b.idx.MaxCycle = 0, -1
	}
	b.idx.TraceBytes = traceBytes
	b.idx.TraceCRC = b.crc
	return &b.idx
}

// WriteIndex serializes the index in the .mgidx layout.
func WriteIndex(w io.Writer, x *Index) error {
	buf := make([]byte, 0, idxHeaderLen+len(x.Entries)*idxEntryLen+idxFooterLen)
	buf = append(buf, idxMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.Every))
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	for _, e := range x.Entries {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Off))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.FirstRec))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.MinCycle))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.MaxCycle))
	}
	for _, v := range [...]int64{x.Records, x.Uops, x.Events, x.TraceBytes, x.MinCycle, x.MaxCycle} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, x.TraceCRC)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTab))
	buf = append(buf, idxEndMagic[:]...)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	noteIndexWritten(int64(len(x.Entries)))
	return nil
}

// WriteIndexFile writes the index to path.
func WriteIndexFile(path string, x *Index) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteIndex(f, x); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadIndex parses and structurally validates an index: both magics must be
// present, the entry region must divide evenly, and the embedded CRC must
// match, so a truncated or bit-rotted index is rejected rather than
// misdirecting seeks.
func ReadIndex(r io.Reader) (*Index, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace index: %w", err)
	}
	if len(raw) < idxHeaderLen+idxFooterLen || !bytes.Equal(raw[:8], idxMagic[:]) {
		return nil, fmt.Errorf("trace index: missing %q magic (truncated or not an index)", idxMagic)
	}
	if !bytes.Equal(raw[len(raw)-8:], idxEndMagic[:]) {
		return nil, fmt.Errorf("trace index: missing %q end magic (truncated index)", idxEndMagic)
	}
	entryBytes := len(raw) - idxHeaderLen - idxFooterLen
	if entryBytes%idxEntryLen != 0 {
		return nil, fmt.Errorf("trace index: %d entry bytes not a multiple of %d (truncated index)", entryBytes, idxEntryLen)
	}
	le := binary.LittleEndian
	crcOff := len(raw) - 12
	if got, want := crc32.Checksum(raw[:crcOff], crcTab), le.Uint32(raw[crcOff:]); got != want {
		return nil, fmt.Errorf("trace index: checksum mismatch (corrupt index)")
	}
	x := &Index{Every: int(le.Uint32(raw[8:]))}
	if x.Every <= 0 {
		return nil, fmt.Errorf("trace index: invalid record stride %d", x.Every)
	}
	p := raw[idxHeaderLen:]
	x.Entries = make([]IndexEntry, entryBytes/idxEntryLen)
	for i := range x.Entries {
		x.Entries[i] = IndexEntry{
			Off:      int64(le.Uint64(p[0:])),
			FirstRec: int64(le.Uint64(p[8:])),
			MinCycle: int64(le.Uint64(p[16:])),
			MaxCycle: int64(le.Uint64(p[24:])),
		}
		p = p[idxEntryLen:]
	}
	x.Records = int64(le.Uint64(p[0:]))
	x.Uops = int64(le.Uint64(p[8:]))
	x.Events = int64(le.Uint64(p[16:]))
	x.TraceBytes = int64(le.Uint64(p[24:]))
	x.MinCycle = int64(le.Uint64(p[32:]))
	x.MaxCycle = int64(le.Uint64(p[40:]))
	x.TraceCRC = le.Uint32(p[48:])
	return x, nil
}

// ReadIndexFile parses the index at path.
func ReadIndexFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f)
}

// IndexPath returns the sidecar index path for a trace path.
func IndexPath(tracePath string) string { return tracePath + ".mgidx" }

// BuildIndex scans an existing binary pipetrace and builds its index, for
// traces written before indexing existed (mgtrace -index). The result is
// identical to the index the writer would have produced with the same
// stride.
func BuildIndex(r io.Reader, every int) (*Index, error) {
	if every <= 0 {
		every = DefaultIndexEvery
	}
	br := bufio.NewReaderSize(r, 1<<16)
	if !sniffBinary(br) {
		return nil, fmt.Errorf("trace index: input is not a binary pipetrace (no %q magic); only binary traces are indexable", binMagic)
	}
	d, err := newBinReader(br)
	if err != nil {
		return nil, err
	}
	d.track = true
	b := newIndexBuilder(every)
	b.head(binMagic[:])
	for {
		var u UopTrace
		var e TraceEvent
		isUop, err := d.next(&u, &e)
		if err == io.EOF {
			return b.finish(d.off), nil
		}
		if err != nil {
			return nil, err
		}
		cycle := e.Cycle
		if isUop {
			cycle = u.IndexCycle()
		}
		b.note(d.recOff, cycle, isUop)
		b.head(d.raw)
	}
}

// verifyIndex checks the index against the open trace: the byte length
// recorded at index time and the CRC of the trace's head must both match,
// so an index left behind by a rewritten trace is rejected.
func verifyIndex(x *Index, r io.ReadSeeker, size int64) error {
	if size != x.TraceBytes {
		return fmt.Errorf("stale trace index: trace is %d bytes, index was built over %d (rebuild with mgtrace -index)", size, x.TraceBytes)
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return err
	}
	n := size
	if n > indexHeadLen {
		n = indexHeadLen
	}
	head := make([]byte, n)
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("trace index: reading trace head: %w", err)
	}
	if got := crc32.Checksum(head, crcTab); got != x.TraceCRC {
		return fmt.Errorf("stale trace index: trace checksum %08x, index recorded %08x (rebuild with mgtrace -index)", got, x.TraceCRC)
	}
	return nil
}

// IndexedReader reads a pipetrace with random access when a seek index is
// available, and degrades transparently to a linear scan when it is not
// (JSONL traces, or binary traces without a sidecar). All query paths
// apply the same filtering rule, so indexed and linear results are
// record-identical by construction — the index only bounds which bytes
// are decoded.
type IndexedReader struct {
	r      io.ReadSeeker
	c      io.Closer
	idx    *Index
	size   int64
	binary bool
}

// OpenIndexed opens a pipetrace file and, for binary traces, its sidecar
// index when present. A present-but-mismatched index is an error (never
// silently ignored); a missing one selects the linear-scan fallback.
func OpenIndexed(tracePath string) (*IndexedReader, error) {
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, err
	}
	var idx *Index
	if _, err := os.Stat(IndexPath(tracePath)); err == nil {
		if idx, err = ReadIndexFile(IndexPath(tracePath)); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", IndexPath(tracePath), err)
		}
	}
	ir, err := NewIndexedReader(f, idx)
	if err != nil {
		f.Close()
		return nil, err
	}
	ir.c = f
	return ir, nil
}

// NewIndexedReader wraps an open trace stream. idx may be nil (linear
// fallback); a non-nil idx is verified against the stream before use.
func NewIndexedReader(r io.ReadSeeker, idx *Index) (*IndexedReader, error) {
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	var head [8]byte
	n, _ := io.ReadFull(r, head[:])
	isBin := n == len(binMagic) && head == binMagic
	if !isBin && n >= 4 && bytes.Equal(head[:4], binMagic[:4]) {
		return nil, fmt.Errorf("pipetrace: corrupt binary magic %q (want %q)", head[:n], binMagic)
	}
	ir := &IndexedReader{r: r, size: size, binary: isBin}
	if idx != nil {
		if !isBin {
			return nil, fmt.Errorf("trace index: trace is not a binary pipetrace")
		}
		if err := verifyIndex(idx, r, size); err != nil {
			return nil, err
		}
		ir.idx = idx
	}
	return ir, nil
}

// Indexed reports whether queries seek through an index (false = linear).
func (ir *IndexedReader) Indexed() bool { return ir.idx != nil }

// Index returns the loaded index, or nil.
func (ir *IndexedReader) Index() *Index { return ir.idx }

// Close closes the underlying file when OpenIndexed opened it.
func (ir *IndexedReader) Close() error {
	if ir.c != nil {
		return ir.c.Close()
	}
	return nil
}

// All reads every record, in stream order per slice.
func (ir *IndexedReader) All() ([]UopTrace, []TraceEvent, error) {
	if _, err := ir.r.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	return ReadPipetrace(ir.r)
}

// Window returns the records whose index cycle lies in [startCyc, endCyc]
// (inclusive), in stream order. With an index only the chunks whose exact
// cycle ranges intersect the window are read; without one the whole trace
// is scanned and filtered by the same rule.
func (ir *IndexedReader) Window(startCyc, endCyc int64) ([]UopTrace, []TraceEvent, error) {
	if startCyc > endCyc {
		return nil, nil, fmt.Errorf("pipetrace window: start cycle %d after end %d", startCyc, endCyc)
	}
	keep := func(cycle int64) bool { return cycle >= startCyc && cycle <= endCyc }
	if ir.idx == nil {
		var uops []UopTrace
		var events []TraceEvent
		err := ir.scanAll(func(_ int64, isUop bool, u *UopTrace, e *TraceEvent) (bool, error) {
			if isUop {
				if keep(u.IndexCycle()) {
					uops = append(uops, *u)
				}
			} else if keep(e.Cycle) {
				events = append(events, *e)
			}
			return true, nil
		})
		return uops, events, err
	}

	// Coalesce adjacent overlapping chunks into runs so each run costs one
	// seek and one sequential decode.
	var uops []UopTrace
	var events []TraceEvent
	ents := ir.idx.Entries
	for i := 0; i < len(ents); {
		if ents[i].MaxCycle < startCyc || ents[i].MinCycle > endCyc {
			i++
			continue
		}
		j := i
		for j+1 < len(ents) && !(ents[j+1].MaxCycle < startCyc || ents[j+1].MinCycle > endCyc) {
			j++
		}
		end := ir.idx.TraceBytes
		if j+1 < len(ents) {
			end = ents[j+1].Off
		}
		err := ir.scanChunks(ents[i], end, func(_ int64, isUop bool, u *UopTrace, e *TraceEvent) (bool, error) {
			if isUop {
				if keep(u.IndexCycle()) {
					uops = append(uops, *u)
				}
			} else if keep(e.Cycle) {
				events = append(events, *e)
			}
			return true, nil
		})
		if err != nil {
			return nil, nil, err
		}
		i = j + 1
	}
	return uops, events, nil
}

// Range returns records with stream ordinal in [startRec, endRec]
// (inclusive, 0-based), in stream order.
func (ir *IndexedReader) Range(startRec, endRec int64) ([]UopTrace, []TraceEvent, error) {
	if startRec > endRec {
		return nil, nil, fmt.Errorf("pipetrace range: start record %d after end %d", startRec, endRec)
	}
	var uops []UopTrace
	var events []TraceEvent
	collect := func(ord int64, isUop bool, u *UopTrace, e *TraceEvent) (bool, error) {
		if ord > endRec {
			return false, nil
		}
		if ord >= startRec {
			if isUop {
				uops = append(uops, *u)
			} else {
				events = append(events, *e)
			}
		}
		return true, nil
	}
	if ir.idx == nil || len(ir.idx.Entries) == 0 {
		err := ir.scanAll(collect)
		return uops, events, err
	}
	ents := ir.idx.Entries
	k := sort.Search(len(ents), func(i int) bool { return ents[i].FirstRec > startRec }) - 1
	if k < 0 {
		k = 0
	}
	err := ir.scanChunks(ents[k], ir.idx.TraceBytes, collect)
	return uops, events, err
}

// scanFn receives each decoded record with its stream ordinal; returning
// false stops the scan early.
type scanFn func(ord int64, isUop bool, u *UopTrace, e *TraceEvent) (bool, error)

// scanAll decodes the whole trace (either format) from byte 0.
func (ir *IndexedReader) scanAll(fn scanFn) error {
	if _, err := ir.r.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReaderSize(ir.r, 1<<16)
	if ir.binary {
		d, err := newBinReader(br)
		if err != nil {
			return err
		}
		return scanBinary(d, 0, fn)
	}
	return scanJSONL(br, fn)
}

// scanChunks decodes binary records from the chunk opened by ent up to
// byte offset end.
func (ir *IndexedReader) scanChunks(ent IndexEntry, end int64, fn scanFn) error {
	if _, err := ir.r.Seek(ent.Off, io.SeekStart); err != nil {
		return err
	}
	lr := io.LimitReader(ir.r, end-ent.Off)
	d := &binReader{br: bufio.NewReaderSize(lr, 1<<16), intern: make(map[string]string, 16)}
	d.rec = int(ent.FirstRec) // error messages carry true record numbers
	return scanBinary(d, ent.FirstRec, fn)
}

func scanBinary(d *binReader, ord int64, fn scanFn) error {
	for {
		var u UopTrace
		var e TraceEvent
		isUop, err := d.next(&u, &e)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		cont, err := fn(ord, isUop, &u, &e)
		if err != nil || !cont {
			return err
		}
		ord++
	}
}

// scanJSONL streams JSONL records with ordinals, mirroring
// readJSONLPipetrace's decoding and error positions.
func scanJSONL(r io.Reader, fn scanFn) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	ord := int64(0)
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var l traceLine
		if err := json.Unmarshal(b, &l); err != nil {
			return fmt.Errorf("pipetrace line %d: %w", line, err)
		}
		var cont bool
		var err error
		switch l.Type {
		case "uop":
			cont, err = fn(ord, true, &l.UopTrace, nil)
		case "ev":
			e := TraceEvent{Type: "ev", Cycle: l.Cycle, Ev: l.Ev, Template: l.Template, Seq: l.Seq}
			cont, err = fn(ord, false, nil, &e)
		default:
			return fmt.Errorf("pipetrace line %d: unknown record type %q", line, l.Type)
		}
		if err != nil || !cont {
			return err
		}
		ord++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("pipetrace line %d: %w", line+1, err)
	}
	return nil
}
