package obs

import (
	"net"
	"net/http"
	"sync"

	// Register /debug/vars and /debug/pprof on the default mux; the debug
	// server exists to watch counters and grab profiles during long sweeps.
	_ "expvar"
	_ "net/http/pprof"

	"repro/internal/metrics"
)

// registerOnce guards the /metrics and /debug/sweep registrations on the
// default mux (http.Handle panics on duplicates).
var registerOnce sync.Once

// ServeDebug starts an HTTP server on addr exposing expvar counters
// (/debug/vars), pprof endpoints (/debug/pprof/), the metrics registry in
// Prometheus text format (/metrics), live sweep progress (/debug/sweep),
// and the flight-recorder trace window (/debug/trace?window=N&run=S,
// enabled here so observed runs feed the ring while the server is up). It
// listens synchronously — so address errors surface immediately — and
// serves in the background for the life of the process. Returns the bound
// address (useful with ":0").
func ServeDebug(addr string) (string, error) {
	registerOnce.Do(func() {
		http.Handle("/metrics", metrics.Handler())
		http.Handle("/debug/sweep", metrics.SweepHandler())
		http.Handle("/debug/trace", TraceWindowHandler())
		EnableFlightRecorder(DefaultFlightSlots)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, nil) //nolint:errcheck — background best-effort server
	return ln.Addr().String(), nil
}
