package obs

import (
	"net"
	"net/http"

	// Register /debug/vars and /debug/pprof on the default mux; the debug
	// server exists to watch counters and grab profiles during long sweeps.
	_ "expvar"
	_ "net/http/pprof"
)

// ServeDebug starts an HTTP server on addr exposing expvar counters
// (/debug/vars) and pprof endpoints (/debug/pprof/). It listens
// synchronously — so address errors surface immediately — and serves in
// the background for the life of the process. Returns the bound address
// (useful with ":0").
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, nil) //nolint:errcheck — background best-effort server
	return ln.Addr().String(), nil
}
