package obs

import (
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	// Register /debug/vars and /debug/pprof on the default mux; the debug
	// server exists to watch counters and grab profiles during long sweeps.
	_ "expvar"
	_ "net/http/pprof"

	"repro/internal/metrics"
)

// registerOnce guards the /metrics and /debug/sweep registrations on the
// default mux (http.Handle panics on duplicates).
var registerOnce sync.Once

// dashHandler holds the /debug/dash page handler. The run-ledger layer
// installs it (via core.SetLedger) so obs need not depend on the ledger
// package; until something is installed the route answers 503 with a
// hint instead of 404ing.
var dashHandler atomic.Value // http.Handler

// SetDashHandler installs the handler served at /debug/dash.
func SetDashHandler(h http.Handler) { dashHandler.Store(h) }

func serveDash(w http.ResponseWriter, r *http.Request) {
	if h, ok := dashHandler.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "run ledger off: start the process with -ledger DIR to record sweep history and serve this dashboard",
		http.StatusServiceUnavailable)
}

// ServeDebug starts an HTTP server on addr exposing expvar counters
// (/debug/vars), pprof endpoints (/debug/pprof/), the metrics registry in
// Prometheus text format (/metrics), live sweep progress (/debug/sweep),
// the run-history dashboard (/debug/dash, live once a run ledger is
// installed), and the flight-recorder trace window (/debug/trace?window=N&run=S,
// enabled here so observed runs feed the ring while the server is up). It
// listens synchronously — so address errors surface immediately — and
// serves in the background for the life of the process. Returns the bound
// address (useful with ":0").
func ServeDebug(addr string) (string, error) {
	registerOnce.Do(func() {
		http.Handle("/metrics", metrics.Handler())
		http.Handle("/debug/sweep", metrics.SweepHandler())
		http.Handle("/debug/trace", TraceWindowHandler())
		http.Handle("/debug/dash", http.HandlerFunc(serveDash))
		EnableFlightRecorder(DefaultFlightSlots)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, nil) //nolint:errcheck — background best-effort server
	return ln.Addr().String(), nil
}
