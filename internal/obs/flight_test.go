package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(8)
	srcs := make([]int, 2)
	for i := 0; i < 20; i++ {
		u := synthUop(i)
		srcs[0], srcs[1] = u.Srcs[0], u.Srcs[1]
		u.Srcs = srcs // scratch slice: recorder must copy, not retain
		f.RecordUop("w/cfg", &u)
	}
	total, dropped := f.Totals()
	if total != 20 || dropped != 12 {
		t.Errorf("totals = (%d, %d), want (20, 12)", total, dropped)
	}
	recs := f.Snapshot("")
	if len(recs) != 8 {
		t.Fatalf("snapshot has %d records, want 8", len(recs))
	}
	for i, r := range recs {
		want := synthUop(12 + i)
		if r.Seq != want.Seq {
			t.Errorf("slot %d: seq %d, want %d (oldest-first order broken)", i, r.Seq, want.Seq)
		}
		if r.Srcs[0] != want.Srcs[0] || r.Srcs[1] != want.Srcs[1] {
			t.Errorf("slot %d: srcs %v, want %v (scratch slice retained?)", i, r.Srcs, want.Srcs)
		}
	}

	if got := f.Snapshot("nope"); len(got) != 0 {
		t.Errorf("filter miss returned %d records", len(got))
	}
	if got := f.Snapshot("cfg"); len(got) != 8 {
		t.Errorf("filter hit returned %d records, want 8", len(got))
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 5; i++ {
		u := synthUop(i)
		f.RecordUop("r", &u)
	}
	total, dropped := f.Totals()
	if total != 5 || dropped != 0 {
		t.Errorf("totals = (%d, %d), want (5, 0)", total, dropped)
	}
	recs := f.Snapshot("")
	if len(recs) != 5 || recs[0].Seq != 0 || recs[4].Seq != 4 {
		t.Errorf("partial ring snapshot wrong: %d records", len(recs))
	}
}

func TestInstallFlightRecorderRestores(t *testing.T) {
	mine := NewFlightRecorder(4)
	prev := InstallFlightRecorder(mine)
	defer InstallFlightRecorder(prev)
	if Flight() != mine {
		t.Fatal("installed recorder not returned by Flight()")
	}
	InstallFlightRecorder(prev)
	if Flight() != prev {
		t.Fatal("restore did not take")
	}
	InstallFlightRecorder(mine) // leave installed for the deferred restore
}

func TestTraceWindowHandler(t *testing.T) {
	prev := InstallFlightRecorder(nil)
	defer InstallFlightRecorder(prev)

	h := TraceWindowHandler()

	// No recorder: 503, so a scrape can tell "off" from "no records yet".
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("no recorder: status %d, want 503", rr.Code)
	}

	f := NewFlightRecorder(64)
	InstallFlightRecorder(f)
	// Two runs with different cycle anchors: runA ends near cycle 300,
	// runB near cycle 1100.
	for i := 0; i < 20; i++ {
		u := synthUop(i)
		f.RecordUop("runA/cfg", &u)
	}
	for i := 400; i < 420; i++ {
		u := synthUop(i)
		f.RecordUop("runB/cfg", &u)
	}

	get := func(url string) []FlightRecord {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", url, rr.Code, rr.Body.String())
		}
		if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "ndjson") {
			t.Errorf("GET %s: content type %q", url, ct)
		}
		var out []FlightRecord
		sc := bufio.NewScanner(rr.Body)
		for sc.Scan() {
			var r FlightRecord
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("GET %s: bad line %q: %v", url, sc.Text(), err)
			}
			if r.Type != "uop" {
				t.Errorf("GET %s: record type %q, want uop", url, r.Type)
			}
			out = append(out, r)
		}
		return out
	}

	if all := get("/debug/trace"); len(all) != 40 {
		t.Errorf("unfiltered: %d records, want 40", len(all))
	}
	if onlyB := get("/debug/trace?run=runB"); len(onlyB) != 20 {
		t.Errorf("run filter: %d records, want 20", len(onlyB))
	}

	// window=10 keeps, per run, only records within 10 cycles of that
	// run's own newest record — runA's old records must not vanish just
	// because runB is further along.
	recs := get("/debug/trace?window=10")
	var sawA, sawB bool
	for _, r := range recs {
		switch {
		case strings.HasPrefix(r.Run, "runA"):
			sawA = true
		case strings.HasPrefix(r.Run, "runB"):
			sawB = true
		}
		newest := int64(100 + 2*19) // runA anchor
		if strings.HasPrefix(r.Run, "runB") {
			newest = int64(100 + 2*419)
		}
		if c := r.IndexCycle(); c <= newest-10 {
			t.Errorf("windowed record run=%s cycle=%d outside last-10 of %d", r.Run, c, newest)
		}
	}
	if !sawA || !sawB {
		t.Errorf("per-run anchoring broken: sawA=%v sawB=%v", sawA, sawB)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?window=bogus", nil))
	if rr.Code != http.StatusBadRequest {
		t.Errorf("bad window: status %d, want 400", rr.Code)
	}
}

// The /debug/trace endpoint is registered on the shared debug mux and
// works over a real listener.
func TestServeDebugTraceEndpoint(t *testing.T) {
	prev := InstallFlightRecorder(nil)
	defer InstallFlightRecorder(prev)

	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// ServeDebug enables the default recorder as part of registration;
	// re-enable explicitly in case another test already registered the mux
	// (registerOnce fires only on the first ServeDebug of the process).
	f := EnableFlightRecorder(DefaultFlightSlots)
	if f == nil {
		t.Fatal("flight recorder not enabled")
	}
	u := synthUop(7)
	f.RecordUop("live/run", &u)

	resp, err := http.Get("http://" + addr + "/debug/trace?run=live&window=1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var r FlightRecord
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(body))), &r); err != nil {
		t.Fatalf("/debug/trace body not a JSONL record: %v\n%s", err, body)
	}
	if r.Run != "live/run" || r.Seq != 7 {
		t.Errorf("record = %+v", r)
	}
}
