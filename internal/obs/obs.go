// Package obs is the simulator's observability layer: per-uop pipetrace
// records, interval time-series metrics, run manifests, and a debug HTTP
// server. Everything in it is zero-cost when disabled — the pipeline holds
// a single nil-guarded Observer pointer and pays one pointer test per
// cycle when observability is off.
//
// The three layers:
//
//   - Pipetrace: one record per committed or squashed uop with its
//     stage timestamps (fetch/rename/issue/exec/writeback/commit), plus
//     event records for pipeline flushes and Slack-Dynamic template
//     disables/re-enables, encoded as JSONL or as the allocation-free
//     binary format in binpipe.go. Rendered by cmd/mgtrace.
//   - IntervalSampler: every N cycles, a snapshot of IPC, UPC, coverage,
//     queue occupancies, the stall-cause breakdown, and monitor activity,
//     kept in a bounded ring and exported as JSONL or CSV.
//   - Manifest: a JSON description of an experiment run (tasks, wall
//     times, cache outcomes) written alongside its output.
package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Options selects which observability outputs a run produces and where
// they go. The zero value (and nil) disables everything.
type Options struct {
	// Dir is the output directory for trace and interval files; created on
	// first use.
	Dir string
	// Pipetrace enables per-uop stage-timestamp records.
	Pipetrace bool
	// PipetraceBin selects the allocation-free binary trace encoding
	// instead of JSONL (implies Pipetrace; see binpipe.go).
	PipetraceBin bool
	// IntervalEvery enables interval sampling every IntervalEvery cycles
	// (0 = off).
	IntervalEvery int64
	// IndexEvery is the record stride of the seek index written alongside
	// binary pipetraces (see traceindex.go); 0 disables indexing. Only
	// meaningful with PipetraceBin.
	IndexEvery int
}

// Active reports whether any output is enabled.
func (o *Options) Active() bool {
	return o != nil && (o.Pipetrace || o.PipetraceBin || o.IntervalEvery > 0)
}

// FlagOptions assembles Options from the common command-line flag values
// (-pipetrace, -pipetrace-bin, -intervals, -tracedir). Returns nil when
// nothing is enabled; an empty dir defaults to "obs".
func FlagOptions(pipetrace, pipetraceBin bool, intervalEvery int64, dir string) *Options {
	if !pipetrace && !pipetraceBin && intervalEvery <= 0 {
		return nil
	}
	if dir == "" {
		dir = "obs"
	}
	o := &Options{Dir: dir, Pipetrace: pipetrace, PipetraceBin: pipetraceBin,
		IntervalEvery: intervalEvery}
	if pipetraceBin {
		// Binary traces of the large inputs run to gigabytes; the sidecar
		// index that makes them seekable costs ~32 bytes per 4096 records,
		// so it is always on for binary traces.
		o.IndexEvery = DefaultIndexEvery
	}
	return o
}

// Observer carries the per-run collectors the pipeline feeds. Either field
// may be nil; the pipeline nil-checks each independently.
type Observer struct {
	Trace     *Pipetrace
	Intervals *IntervalSampler

	traceFile    *os.File
	intervalPath string
	indexPath    string
	indexInfo    *IndexInfo // set by Close when an index was written
}

// Active reports whether the observer collects anything.
func (o *Observer) Active() bool {
	return o != nil && (o.Trace != nil || o.Intervals != nil)
}

// NewRunObserver creates an Observer whose outputs are routed to files
// under opts.Dir named <base>.pipetrace.jsonl (or .pipetrace.bin with
// PipetraceBin) and <base>.intervals.jsonl (base is sanitized). Returns
// nil when opts enables nothing. The caller must Close the observer after
// the run to flush and finalize the files.
func NewRunObserver(opts *Options, base string) (*Observer, error) {
	if !opts.Active() {
		return nil, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	base = Sanitize(base)
	o := &Observer{}
	if opts.Pipetrace || opts.PipetraceBin {
		ext, mk := ".pipetrace.jsonl", NewPipetrace
		if opts.PipetraceBin {
			ext, mk = ".pipetrace.bin", NewBinaryPipetrace
		}
		f, err := os.Create(filepath.Join(opts.Dir, base+ext))
		if err != nil {
			return nil, fmt.Errorf("obs: %w", err)
		}
		o.traceFile = f
		o.Trace = mk(f)
		if opts.PipetraceBin && opts.IndexEvery > 0 {
			if err := o.Trace.EnableIndex(opts.IndexEvery); err != nil {
				f.Close()
				return nil, fmt.Errorf("obs: %w", err)
			}
			o.indexPath = IndexPath(f.Name())
		}
	}
	if opts.IntervalEvery > 0 {
		o.Intervals = NewIntervalSampler(opts.IntervalEvery)
		o.intervalPath = filepath.Join(opts.Dir, base+".intervals.jsonl")
	}
	return o, nil
}

// Files returns the output file names (not paths) this observer writes,
// for manifests.
func (o *Observer) Files() []string {
	if o == nil {
		return nil
	}
	var out []string
	if o.traceFile != nil {
		out = append(out, filepath.Base(o.traceFile.Name()))
	}
	if o.indexPath != "" {
		out = append(out, filepath.Base(o.indexPath))
	}
	if o.intervalPath != "" {
		out = append(out, filepath.Base(o.intervalPath))
	}
	return out
}

// IndexInfo returns the manifest summary of the seek index Close wrote, or
// nil when no index was produced (or Close has not run yet).
func (o *Observer) IndexInfo() *IndexInfo {
	if o == nil {
		return nil
	}
	return o.indexInfo
}

// Close flushes the pipetrace, writes the interval file, and closes every
// output. It is safe on a nil observer.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	var first error
	if o.Trace != nil {
		if err := o.Trace.Flush(); err != nil && first == nil {
			first = err
		}
		if idx := o.Trace.Index(); idx != nil && o.indexPath != "" && first == nil {
			if err := WriteIndexFile(o.indexPath, idx); err != nil {
				first = err
			} else {
				o.indexInfo = idx.Info(filepath.Base(o.indexPath))
			}
		}
	}
	if o.traceFile != nil {
		if err := o.traceFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	if o.Intervals != nil && o.intervalPath != "" {
		f, err := os.Create(o.intervalPath)
		if err != nil {
			if first == nil {
				first = err
			}
		} else {
			if err := WriteIntervalsJSONL(f, o.Intervals.Intervals()); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Sanitize maps an arbitrary label to a safe file-name stem: every rune
// outside [A-Za-z0-9._-] becomes '_'.
func Sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, s)
}
