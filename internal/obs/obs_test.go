package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSanitize(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"comm.crc32", "comm.crc32"},
		{"Slack-Dynamic", "Slack-Dynamic"},
		{"a b/c:d", "a_b_c_d"},
		{"ok_name-1.2", "ok_name-1.2"},
		{"", ""},
	} {
		if got := Sanitize(tc.in); got != tc.want {
			t.Errorf("Sanitize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestOptionsActive(t *testing.T) {
	var nilOpts *Options
	if nilOpts.Active() {
		t.Error("nil Options should be inactive")
	}
	if (&Options{}).Active() {
		t.Error("zero Options should be inactive")
	}
	if !(&Options{Pipetrace: true}).Active() || !(&Options{IntervalEvery: 100}).Active() {
		t.Error("enabled Options should be active")
	}
	if FlagOptions(false, false, 0, "x") != nil {
		t.Error("FlagOptions with nothing enabled should be nil")
	}
	if o := FlagOptions(true, false, 0, ""); o == nil || o.Dir != "obs" {
		t.Errorf("FlagOptions default dir = %+v", o)
	}
	if o := FlagOptions(false, true, 0, ""); !o.Active() || !o.PipetraceBin {
		t.Errorf("FlagOptions binary mode = %+v", o)
	}
}

func sampleSnapshots() []CycleSnapshot {
	return []CycleSnapshot{
		{Cycle: 100, Instrs: 150, Uops: 100, EmbeddedInstrs: 60,
			StallIQ: 5, StallROB: 2, Replays: 1, Serialized: 3, Harmful: 1,
			IQOcc: 4, ROBOcc: 20, LQOcc: 3, SQOcc: 2, FreeRegs: 40},
		{Cycle: 200, Instrs: 350, Uops: 220, EmbeddedInstrs: 160,
			StallIQ: 9, StallROB: 2, StallRegs: 4, Replays: 1, Serialized: 5,
			Harmful: 2, Disables: 1,
			IQOcc: 8, ROBOcc: 31, LQOcc: 1, SQOcc: 0, FreeRegs: 22, DisabledTemplates: 1},
		{Cycle: 250, Instrs: 360, Uops: 228, EmbeddedInstrs: 160,
			StallIQ: 9, StallROB: 2, StallRegs: 4, Replays: 2, Serialized: 5,
			Harmful: 2, Disables: 1, Reenables: 1,
			IQOcc: 0, ROBOcc: 2, LQOcc: 0, SQOcc: 0, FreeRegs: 60},
	}
}

func TestIntervalSamplerDeltas(t *testing.T) {
	s := NewIntervalSampler(100)
	snaps := sampleSnapshots()
	s.Sample(snaps[0])
	s.Sample(snaps[1])
	s.Final(snaps[2]) // partial 50-cycle tail

	ivs := s.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals, want 3", len(ivs))
	}
	first := ivs[0]
	if first.Cycle != 100 || first.Cycles != 100 || first.Instrs != 150 {
		t.Errorf("first interval = %+v", first)
	}
	if first.IPC != 1.5 || first.UPC != 1.0 {
		t.Errorf("first rates: ipc=%v upc=%v", first.IPC, first.UPC)
	}
	if first.Coverage != 0.4 { // 60/150
		t.Errorf("first coverage = %v, want 0.4", first.Coverage)
	}
	second := ivs[1]
	if second.Instrs != 200 || second.StallIQ != 4 || second.StallRegs != 4 || second.Disables != 1 {
		t.Errorf("second interval deltas = %+v", second)
	}
	if second.Coverage != 0.5 { // (160-60)/200
		t.Errorf("second coverage = %v, want 0.5", second.Coverage)
	}
	tail := ivs[2]
	if tail.Cycles != 50 || tail.Instrs != 10 || tail.Reenables != 1 {
		t.Errorf("tail interval = %+v", tail)
	}
	if tail.Coverage != 0 { // no new embedded instrs
		t.Errorf("tail coverage = %v, want 0", tail.Coverage)
	}
}

func TestIntervalSamplerDueAndNoOpSamples(t *testing.T) {
	s := NewIntervalSampler(500)
	if s.Due(0) || s.Due(499) || !s.Due(500) || s.Due(501) || !s.Due(1000) {
		t.Error("Due boundaries wrong")
	}
	s.Sample(CycleSnapshot{Cycle: 500, Instrs: 10})
	s.Sample(CycleSnapshot{Cycle: 500, Instrs: 10}) // d == 0: ignored
	s.Final(CycleSnapshot{Cycle: 500, Instrs: 10})  // end exactly on a sample
	if got := len(s.Intervals()); got != 1 {
		t.Errorf("%d intervals, want 1 (zero-length samples ignored)", got)
	}
}

func TestIntervalSamplerRingWrap(t *testing.T) {
	s := NewIntervalSampler(1)
	n := DefaultIntervalCap + 10
	for i := 1; i <= n; i++ {
		s.Sample(CycleSnapshot{Cycle: int64(i), Instrs: int64(i)})
	}
	if s.Dropped() != 10 {
		t.Fatalf("Dropped = %d, want 10", s.Dropped())
	}
	ivs := s.Intervals()
	if len(ivs) != DefaultIntervalCap {
		t.Fatalf("retained %d, want %d", len(ivs), DefaultIntervalCap)
	}
	if ivs[0].Cycle != 11 || ivs[len(ivs)-1].Cycle != int64(n) {
		t.Errorf("ring order: first=%d last=%d, want 11 and %d",
			ivs[0].Cycle, ivs[len(ivs)-1].Cycle, n)
	}
}

func TestPipetraceRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewPipetrace(&buf)
	u1 := UopTrace{Seq: 1, Static: 10, Kind: "singleton", Op: "addi", N: 1,
		Fetch: 5, Rename: 7, Issue: 9, Done: 11, Ready: 10, Commit: 12,
		Dst: 4, Srcs: []int{4}, Tmpl: -1}
	u2 := UopTrace{Seq: 2, Static: 11, Kind: "handle", Op: "ldw", N: 3,
		Fetch: 5, Rename: 7, Issue: 9, Done: 15, Ready: 15, Commit: -1,
		Replays: 1, Squashed: true,
		Dst: 7, Srcs: []int{3, 5}, Tmpl: 2, Mem: MemLoad, Addr: 0x1000,
		SerLat: 2, SerOut: 1, MemLat: 9, SerExt: true}
	tr.Uop(u1)
	tr.Event(13, EvFlush, -1, 2)
	tr.Uop(u2)
	tr.Event(20, EvDisable, 4, -1)
	tr.Event(40, EvReenable, 4, -1)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Uops != 2 || tr.Events != 3 {
		t.Errorf("counters: uops=%d events=%d", tr.Uops, tr.Events)
	}

	uops, events, err := ReadPipetrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	u1.Type, u2.Type = "uop", "uop"
	if len(uops) != 2 || !reflect.DeepEqual(uops[0], u1) || !reflect.DeepEqual(uops[1], u2) {
		t.Errorf("uops roundtrip:\n got %+v\nwant %+v", uops, []UopTrace{u1, u2})
	}
	if len(events) != 3 || events[0].Ev != EvFlush || events[0].Seq != 2 ||
		events[1].Ev != EvDisable || events[1].Template != 4 ||
		events[2].Ev != EvReenable || events[2].Cycle != 40 {
		t.Errorf("events roundtrip: %+v", events)
	}
}

func TestPipetraceStickyError(t *testing.T) {
	// Records buffer in 64 KB chunks, so the underlying write error only
	// surfaces once the buffer spills; from then on emission is a no-op.
	tr := NewPipetrace(failWriter{})
	n := int64(0)
	for i := 0; i < 2000; i++ {
		tr.Uop(UopTrace{Seq: int64(i), Op: strings.Repeat("x", 64)})
		n++
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("expected sticky write error")
	}
	if tr.Uops >= n {
		t.Errorf("writes after the first error should be dropped (Uops=%d of %d)", tr.Uops, n)
	}
}

// The first write error must be retained verbatim, later Uop AND Event
// calls must be no-ops, and Flush must keep reporting the original error.
func TestPipetraceStickyErrorRetainsFirst(t *testing.T) {
	tr := NewPipetrace(failWriter{})
	// Spill the 64 KB buffer so the failing write surfaces.
	for i := 0; i < 2000 && tr.err == nil; i++ {
		tr.Uop(UopTrace{Seq: int64(i), Op: strings.Repeat("y", 64)})
	}
	if tr.err == nil {
		t.Fatal("write error never surfaced")
	}
	uops, events := tr.Uops, tr.Events
	tr.Uop(UopTrace{Seq: 9999})
	tr.Event(1, EvFlush, -1, 9999)
	if tr.Uops != uops || tr.Events != events {
		t.Errorf("post-error emissions counted: uops %d->%d, events %d->%d",
			uops, tr.Uops, events, tr.Events)
	}
	if err := tr.Flush(); err != os.ErrClosed {
		t.Errorf("Flush = %v, want the retained first error %v", err, os.ErrClosed)
	}
	if err := tr.Flush(); err != os.ErrClosed {
		t.Errorf("second Flush = %v, want the same sticky error", err)
	}
}

// A line longer than the scanner buffer must fail with a line-numbered
// error, not a bare bufio.ErrTooLong.
func TestReadPipetraceLineTooLong(t *testing.T) {
	var buf bytes.Buffer
	tr := NewPipetrace(&buf)
	tr.Uop(UopTrace{Seq: 1, Kind: "singleton", Op: "addi", N: 1, Dst: -1, Tmpl: -1})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"t":"uop","seq":2,"op":"` + strings.Repeat("x", 1<<20) + `"}` + "\n")
	_, _, err := ReadPipetrace(&buf)
	if err == nil {
		t.Fatal("oversized line should fail the parse")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the offending line", err)
	}
}

// Traces written before the schema gained dependence fields (the PR-2
// golden content, embedded verbatim) must still parse, and HasDeps must
// report that they lack dependence information.
func TestLegacySchemaParses(t *testing.T) {
	legacy := `{"t":"uop","seq":7,"static":3,"kind":"handle","op":"addi","n":3,"fetch":10,"rename":12,"issue":14,"done":17,"ready":16,"commit":18,"replays":0,"mispred":false,"squashed":false}
{"t":"uop","seq":8,"static":6,"kind":"singleton","op":"bnez","n":1,"fetch":10,"rename":12,"issue":15,"done":16,"ready":-1,"commit":-1,"replays":0,"mispred":true,"squashed":true}
{"t":"uop","seq":9,"static":0,"kind":"ovh-jump","op":"jmp","n":0,"fetch":11,"rename":13,"issue":16,"done":17,"ready":-1,"commit":19,"replays":2,"mispred":false,"squashed":false}
{"t":"ev","cycle":17,"ev":"flush","template":-1,"seq":8}
{"t":"ev","cycle":30,"ev":"disable","template":2,"seq":-1}
{"t":"ev","cycle":90,"ev":"reenable","template":2,"seq":-1}
`
	uops, events, err := ReadPipetrace(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(uops) != 3 || len(events) != 3 {
		t.Fatalf("parsed %d uops / %d events, want 3 / 3", len(uops), len(events))
	}
	if uops[0].Seq != 7 || uops[0].Kind != "handle" || uops[0].Done != 17 {
		t.Errorf("legacy uop decoded wrong: %+v", uops[0])
	}
	if HasDeps(uops) {
		t.Error("legacy trace must report HasDeps == false")
	}
	// Current-writer records (Tmpl -1 for non-handles) do carry deps.
	if !HasDeps([]UopTrace{{Seq: 1, Tmpl: -1}}) {
		t.Error("current-schema trace must report HasDeps == true")
	}
}

// A file truncated mid-record must fail with a line-numbered error.
func TestReadPipetraceTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	tr := NewPipetrace(&buf)
	tr.Uop(UopTrace{Seq: 1, Kind: "singleton", Op: "addi", N: 1, Dst: -1, Tmpl: -1})
	tr.Uop(UopTrace{Seq: 2, Kind: "singleton", Op: "xori", N: 1, Dst: -1, Tmpl: -1})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	whole := buf.String()
	cut := whole[:len(whole)-20] // chop the tail of the final record
	_, _, err := ReadPipetrace(strings.NewReader(cut))
	if err == nil {
		t.Fatal("truncated file should fail the parse")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the truncated line", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, os.ErrClosed }

func TestIntervalsReadWriteRoundtrip(t *testing.T) {
	s := NewIntervalSampler(100)
	for _, snap := range sampleSnapshots() {
		s.Sample(snap)
	}
	ivs := s.Intervals()

	var jb bytes.Buffer
	if err := WriteIntervalsJSONL(&jb, ivs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIntervals(&jb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ivs) {
		t.Errorf("JSONL roundtrip:\n got %+v\nwant %+v", back, ivs)
	}

	var cb bytes.Buffer
	if err := WriteIntervalsCSV(&cb, ivs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(cb.String(), "\n"), "\n")
	if len(lines) != len(ivs)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(ivs)+1)
	}
	nCols := len(strings.Split(lines[0], ","))
	for i, l := range lines {
		if got := len(strings.Split(l, ",")); got != nCols {
			t.Errorf("CSV line %d has %d columns, header has %d", i, got, nCols)
		}
	}
}

func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.manifest.json")
	m := &Manifest{
		Tool: "sweep", Title: "Figure 6 top", Started: "2026-01-02T03:04:05Z",
		WallMS: 1234.5, Input: "small", Workers: 4,
		Flags: map[string]string{"pipetrace": "true"},
		Tasks: []ManifestTask{
			{Workload: "comm.crc32", Series: "Slack-Dynamic", Worker: 1, WallMS: 200,
				Cache: "traced", Files: []string{"a.pipetrace.jsonl"}},
			{Workload: "comm.crc32", Series: "Struct-All", Worker: 0, WallMS: 90, Cache: "hit"},
		},
	}
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Errorf("manifest roundtrip:\n got %+v\nwant %+v", back, m)
	}
}

func TestObserverFilesAndClose(t *testing.T) {
	dir := t.TempDir()
	opts := &Options{Dir: dir, Pipetrace: true, IntervalEvery: 100}
	o, err := NewRunObserver(opts, "w__series")
	if err != nil {
		t.Fatal(err)
	}
	if !o.Active() {
		t.Fatal("observer should be active")
	}
	o.Trace.Uop(UopTrace{Seq: 1, Kind: "singleton", Op: "addi", N: 1,
		Fetch: 0, Rename: 1, Issue: 2, Done: 3, Ready: 3, Commit: 4})
	o.Intervals.Sample(CycleSnapshot{Cycle: 100, Instrs: 5, Uops: 5})
	files := o.Files()
	want := []string{"w__series.pipetrace.jsonl", "w__series.intervals.jsonl"}
	if !reflect.DeepEqual(files, want) {
		t.Errorf("Files = %v, want %v", files, want)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range want {
		b, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(b) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
	var nilObs *Observer
	if nilObs.Active() || nilObs.Close() != nil || nilObs.Files() != nil {
		t.Error("nil observer must be inert")
	}
}

// The on-disk schemas are stable: renames, reorderings, or type changes of
// existing fields break consumers of previously written traces. Golden
// files pin the byte-exact encoding (regenerate with -update only for
// deliberate, append-only schema growth).
func TestSchemaGoldens(t *testing.T) {
	var trace bytes.Buffer
	tr := NewPipetrace(&trace)
	tr.Uop(UopTrace{Seq: 7, Static: 3, Kind: "handle", Op: "addi", N: 3,
		Fetch: 10, Rename: 12, Issue: 14, Done: 17, Ready: 16, Commit: 18,
		Dst: 5, Srcs: []int{1, 2}, Tmpl: 2, Mem: MemNone, SerLat: 2, SerOut: 1})
	tr.Uop(UopTrace{Seq: 8, Static: 6, Kind: "singleton", Op: "bnez", N: 1,
		Fetch: 10, Rename: 12, Issue: 15, Done: 16, Ready: -1, Commit: -1,
		Mispred: true, Squashed: true, Dst: -1, Srcs: []int{5}, Tmpl: -1})
	tr.Uop(UopTrace{Seq: 9, Static: 0, Kind: "ovh-jump", Op: "jmp", N: 0,
		Fetch: 11, Rename: 13, Issue: 16, Done: 17, Ready: -1, Commit: 19, Replays: 2,
		Dst: -1, Tmpl: -1})
	tr.Event(17, EvFlush, -1, 8)
	tr.Event(30, EvDisable, 2, -1)
	tr.Event(90, EvReenable, 2, -1)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pipetrace.golden.jsonl", trace.Bytes())

	s := NewIntervalSampler(100)
	for _, snap := range sampleSnapshots() {
		s.Sample(snap)
	}
	var jb, cb bytes.Buffer
	if err := WriteIntervalsJSONL(&jb, s.Intervals()); err != nil {
		t.Fatal(err)
	}
	if err := WriteIntervalsCSV(&cb, s.Intervals()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "intervals.golden.jsonl", jb.Bytes())
	checkGolden(t, "intervals.golden.csv", cb.Bytes())
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create goldens)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: schema drift.\n got:\n%s\nwant:\n%s", name, got, want)
	}
}
