package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// CycleSnapshot is the pipeline's cumulative state at one cycle: the
// counters the sampler differentiates into an Interval, plus the
// instantaneous queue occupancies.
type CycleSnapshot struct {
	Cycle          int64
	Instrs, Uops   int64
	EmbeddedInstrs int64

	StallIQ, StallROB, StallRegs, StallLQ, StallSQ int64

	Replays                                  int64
	Serialized, Harmful, Disables, Reenables int64

	IQOcc, ROBOcc, LQOcc, SQOcc, FreeRegs int
	DisabledTemplates                     int
}

// Interval is one time-series sample: rates and deltas over the cycles
// since the previous sample, plus instantaneous occupancies at the sample
// point. The field order is the stable JSONL/CSV schema (see
// testdata/intervals.golden.jsonl); add fields only at the end.
type Interval struct {
	Cycle  int64 `json:"cycle"`  // last cycle of the interval
	Cycles int64 `json:"cycles"` // interval length

	Instrs   int64   `json:"instrs"`
	Uops     int64   `json:"uops"`
	IPC      float64 `json:"ipc"`
	UPC      float64 `json:"upc"`
	Coverage float64 `json:"coverage"` // embedded/instrs within the interval

	IQOcc    int `json:"iq"` // instantaneous occupancies at the sample point
	ROBOcc   int `json:"rob"`
	LQOcc    int `json:"lq"`
	SQOcc    int `json:"sq"`
	FreeRegs int `json:"freeregs"`

	StallIQ   int64 `json:"stall_iq"` // rename-blocked cycles in the interval
	StallROB  int64 `json:"stall_rob"`
	StallRegs int64 `json:"stall_regs"`
	StallLQ   int64 `json:"stall_lq"`
	StallSQ   int64 `json:"stall_sq"`

	Replays           int64 `json:"replays"`
	Serialized        int64 `json:"serialized"` // Slack-Dynamic serialization detections
	Harmful           int64 `json:"harmful"`
	Disables          int64 `json:"disables"`
	Reenables         int64 `json:"reenables"`
	DisabledTemplates int   `json:"disabled_templates"` // instantaneous
}

// Stalls returns the total rename-blocked cycles in the interval.
func (iv *Interval) Stalls() int64 {
	return iv.StallIQ + iv.StallROB + iv.StallRegs + iv.StallLQ + iv.StallSQ
}

// DefaultIntervalCap bounds the sampler ring: when a run produces more
// intervals than this, the oldest are dropped (Dropped reports how many).
const DefaultIntervalCap = 1 << 16

// IntervalSampler turns periodic CycleSnapshots into Interval records,
// kept in a bounded ring.
type IntervalSampler struct {
	every   int64
	ring    []Interval
	head, n int
	prev    CycleSnapshot
	dropped int64
}

// NewIntervalSampler samples every `every` cycles (ring capacity
// DefaultIntervalCap).
func NewIntervalSampler(every int64) *IntervalSampler {
	if every <= 0 {
		every = 10_000
	}
	return &IntervalSampler{every: every, ring: make([]Interval, 0, 64)}
}

// Every returns the sampling period in cycles.
func (s *IntervalSampler) Every() int64 { return s.every }

// Due reports whether the cycle is a sample point.
func (s *IntervalSampler) Due(cycle int64) bool {
	return cycle > 0 && cycle%s.every == 0
}

// Sample records the interval ending at snap.Cycle.
func (s *IntervalSampler) Sample(snap CycleSnapshot) {
	d := snap.Cycle - s.prev.Cycle
	if d <= 0 {
		return
	}
	iv := Interval{
		Cycle:  snap.Cycle,
		Cycles: d,

		Instrs: snap.Instrs - s.prev.Instrs,
		Uops:   snap.Uops - s.prev.Uops,

		IQOcc:    snap.IQOcc,
		ROBOcc:   snap.ROBOcc,
		LQOcc:    snap.LQOcc,
		SQOcc:    snap.SQOcc,
		FreeRegs: snap.FreeRegs,

		StallIQ:   snap.StallIQ - s.prev.StallIQ,
		StallROB:  snap.StallROB - s.prev.StallROB,
		StallRegs: snap.StallRegs - s.prev.StallRegs,
		StallLQ:   snap.StallLQ - s.prev.StallLQ,
		StallSQ:   snap.StallSQ - s.prev.StallSQ,

		Replays:           snap.Replays - s.prev.Replays,
		Serialized:        snap.Serialized - s.prev.Serialized,
		Harmful:           snap.Harmful - s.prev.Harmful,
		Disables:          snap.Disables - s.prev.Disables,
		Reenables:         snap.Reenables - s.prev.Reenables,
		DisabledTemplates: snap.DisabledTemplates,
	}
	iv.IPC = float64(iv.Instrs) / float64(d)
	iv.UPC = float64(iv.Uops) / float64(d)
	if iv.Instrs > 0 {
		iv.Coverage = float64(snap.EmbeddedInstrs-s.prev.EmbeddedInstrs) / float64(iv.Instrs)
	}
	s.push(iv)
	s.prev = snap
}

// Final records the partial tail interval at end of run, if any cycles
// have elapsed since the last sample.
func (s *IntervalSampler) Final(snap CycleSnapshot) { s.Sample(snap) }

func (s *IntervalSampler) push(iv Interval) {
	if s.n < DefaultIntervalCap {
		s.ring = append(s.ring, iv)
		s.n++
		return
	}
	s.ring[s.head] = iv
	s.head = (s.head + 1) % DefaultIntervalCap
	s.dropped++
}

// Dropped reports how many old intervals were evicted by the ring bound.
func (s *IntervalSampler) Dropped() int64 { return s.dropped }

// Intervals returns the retained intervals, oldest first.
func (s *IntervalSampler) Intervals() []Interval {
	out := make([]Interval, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(s.head+i)%len(s.ring)])
	}
	return out
}

// WriteIntervalsJSONL writes intervals as one JSON object per line.
func WriteIntervalsJSONL(w io.Writer, ivs []Interval) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range ivs {
		if err := enc.Encode(&ivs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// intervalCSVHeader mirrors the Interval JSON field order.
var intervalCSVHeader = []string{
	"cycle", "cycles", "instrs", "uops", "ipc", "upc", "coverage",
	"iq", "rob", "lq", "sq", "freeregs",
	"stall_iq", "stall_rob", "stall_regs", "stall_lq", "stall_sq",
	"replays", "serialized", "harmful", "disables", "reenables", "disabled_templates",
}

// WriteIntervalsCSV writes intervals as CSV with a header row.
func WriteIntervalsCSV(w io.Writer, ivs []Interval) error {
	bw := bufio.NewWriter(w)
	for i, h := range intervalCSVHeader {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(h)
	}
	bw.WriteByte('\n')
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range ivs {
		iv := &ivs[i]
		cols := []string{
			strconv.FormatInt(iv.Cycle, 10), strconv.FormatInt(iv.Cycles, 10),
			strconv.FormatInt(iv.Instrs, 10), strconv.FormatInt(iv.Uops, 10),
			f(iv.IPC), f(iv.UPC), f(iv.Coverage),
			strconv.Itoa(iv.IQOcc), strconv.Itoa(iv.ROBOcc),
			strconv.Itoa(iv.LQOcc), strconv.Itoa(iv.SQOcc), strconv.Itoa(iv.FreeRegs),
			strconv.FormatInt(iv.StallIQ, 10), strconv.FormatInt(iv.StallROB, 10),
			strconv.FormatInt(iv.StallRegs, 10), strconv.FormatInt(iv.StallLQ, 10),
			strconv.FormatInt(iv.StallSQ, 10),
			strconv.FormatInt(iv.Replays, 10), strconv.FormatInt(iv.Serialized, 10),
			strconv.FormatInt(iv.Harmful, 10), strconv.FormatInt(iv.Disables, 10),
			strconv.FormatInt(iv.Reenables, 10), strconv.Itoa(iv.DisabledTemplates),
		}
		for j, c := range cols {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(c)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadIntervals parses an interval JSONL stream, in file order.
func ReadIntervals(r io.Reader) ([]Interval, error) {
	var out []Interval
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var iv Interval
		if err := json.Unmarshal(b, &iv); err != nil {
			return nil, fmt.Errorf("intervals line %d: %w", line, err)
		}
		out = append(out, iv)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
