package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// UopTrace is one pipetrace record: the stage timestamps of a single
// committed or squashed uop. Cycles are absolute run cycles; -1 marks a
// stage the uop never reached (e.g. Issue of a uop squashed in the fetch
// queue, Commit of any squashed uop).
//
// The record layout is the stable on-disk schema (see
// testdata/pipetrace.golden.jsonl); add fields only at the end.
type UopTrace struct {
	Type   string `json:"t"`      // always "uop"
	Seq    int64  `json:"seq"`    // machine sequence number
	Static int    `json:"static"` // static index of the (first) instruction
	Kind   string `json:"kind"`   // "singleton", "handle", or "ovh-jump"
	Op     string `json:"op"`     // mnemonic of the (first) instruction
	N      int    `json:"n"`      // architectural instructions carried (0 for overhead jumps)

	Fetch  int64 `json:"fetch"`
	Rename int64 `json:"rename"`
	Issue  int64 `json:"issue"`
	Done   int64 `json:"done"`  // all results produced (commit-eligible)
	Ready  int64 `json:"ready"` // register output on the bypass network (writers)
	Commit int64 `json:"commit"`

	Replays  int  `json:"replays"` // issue attempts squashed by missed-load wakeups
	Mispred  bool `json:"mispred"`
	Squashed bool `json:"squashed"`

	// Dependence and serialization fields (appended for the critical-path
	// attribution engine, see internal/critpath; absent in older traces and
	// decoded as zero values — analyzers must treat such traces as lacking
	// dependence information).
	Dst    int    `json:"dst"`            // architectural output register, -1 if none
	Srcs   []int  `json:"srcs,omitempty"` // architectural source registers (external inputs for handles)
	Tmpl   int    `json:"tmpl"`           // mini-graph template id, -1 for non-handles
	Mem    int    `json:"mem"`            // 0 none, 1 load, 2 store (the handle's single memory op)
	Addr   uint32 `json:"addr"`           // memory effective address, 0 when Mem == 0
	SerLat int64  `json:"serlat"`         // intra-handle serialization delay on completion (cycles)
	SerOut int64  `json:"serout"`         // intra-handle serialization delay on the register output
	MemLat int64  `json:"mlat"`           // load latency beyond the L1-hit path (cache-miss cycles)
	SerExt bool   `json:"serext"`         // issued data-bound on a serializing external input
}

// Memory-op kinds for UopTrace.Mem.
const (
	MemNone  = 0
	MemLoad  = 1
	MemStore = 2
)

// HasDeps reports whether a parsed trace carries the dependence fields:
// traces written before the schema gained them decode with Tmpl == 0 on
// every record, while the current writer emits -1 for non-handles.
func HasDeps(uops []UopTrace) bool {
	for i := range uops {
		if uops[i].Tmpl != 0 || uops[i].Dst != 0 || len(uops[i].Srcs) > 0 {
			return true
		}
	}
	return false
}

// Trace event kinds.
const (
	EvFlush    = "flush"    // memory-ordering violation pipeline flush
	EvDisable  = "disable"  // Slack-Dynamic template disable
	EvReenable = "reenable" // Slack-Dynamic template re-enable (resurrection)
)

// TraceEvent is a non-uop pipeline event. Template is -1 except for
// disable/reenable; Seq is -1 except for flushes (the violating load).
type TraceEvent struct {
	Type     string `json:"t"` // always "ev"
	Cycle    int64  `json:"cycle"`
	Ev       string `json:"ev"`
	Template int    `json:"template"`
	Seq      int64  `json:"seq"`
}

// Pipetrace streams uop records and events, as JSONL (NewPipetrace) or
// the binary encoding in binpipe.go (NewBinaryPipetrace). Write errors are
// sticky: the first one is retained and reported by Flush, and later
// writes become no-ops (the simulation must not fail mid-run because a
// trace disk filled up).
type Pipetrace struct {
	bw  *bufio.Writer
	enc *json.Encoder // nil in binary mode
	bin bool
	err error

	scratch []byte // binary-mode record assembly buffer, reused

	off int64         // binary-mode byte offset of the next record
	ixb *indexBuilder // non-nil after EnableIndex

	// Uops and Events count emitted records.
	Uops, Events int64
}

// NewPipetrace creates a pipetrace streaming JSONL to w.
func NewPipetrace(w io.Writer) *Pipetrace {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Pipetrace{bw: bw, enc: json.NewEncoder(bw)}
}

// NewBinaryPipetrace creates a pipetrace streaming the binary encoding to
// w (see binpipe.go for the format). Unlike the JSONL encoder it performs
// no per-record allocation, so it is the tracing mode that keeps
// steady-state simulation allocation-free.
func NewBinaryPipetrace(w io.Writer) *Pipetrace {
	bw := bufio.NewWriterSize(w, 1<<16)
	t := &Pipetrace{bw: bw, bin: true, scratch: make([]byte, 0, 256), off: int64(len(binMagic))}
	if _, err := bw.Write(binMagic[:]); err != nil {
		t.err = err
	}
	return t
}

// EnableIndex makes the trace build its seek index inline as records are
// written (see traceindex.go). Binary mode only, and only before the first
// record; every <= 0 selects DefaultIndexEvery.
func (t *Pipetrace) EnableIndex(every int) error {
	if !t.bin {
		return fmt.Errorf("pipetrace: only binary traces are indexable")
	}
	if t.Uops+t.Events > 0 {
		return fmt.Errorf("pipetrace: EnableIndex after %d records already written", t.Uops+t.Events)
	}
	if every <= 0 {
		every = DefaultIndexEvery
	}
	t.ixb = newIndexBuilder(every)
	t.ixb.head(binMagic[:])
	return nil
}

// Index seals and returns the inline-built seek index, or nil when
// EnableIndex was never called. Call it after the final record (typically
// right after Flush); records written afterwards are not indexed.
func (t *Pipetrace) Index() *Index {
	if t.ixb == nil {
		return nil
	}
	return t.ixb.finish(t.off)
}

// Uop emits one uop record.
func (t *Pipetrace) Uop(r UopTrace) {
	if t.err != nil {
		return
	}
	if t.bin {
		if err := t.binUop(&r); err != nil {
			t.err = err
			return
		}
	} else {
		r.Type = "uop"
		if err := t.enc.Encode(r); err != nil {
			t.err = err
			return
		}
	}
	t.Uops++
}

// Event emits one event record. Pass template -1 / seq -1 when not
// applicable.
func (t *Pipetrace) Event(cycle int64, ev string, template int, seq int64) {
	if t.err != nil {
		return
	}
	e := TraceEvent{Type: "ev", Cycle: cycle, Ev: ev, Template: template, Seq: seq}
	if t.bin {
		if err := t.binEvent(&e); err != nil {
			t.err = err
			return
		}
	} else if err := t.enc.Encode(e); err != nil {
		t.err = err
		return
	}
	t.Events++
}

// Flush drains the buffer and returns the first write error, if any.
func (t *Pipetrace) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// traceLine is the union shape used to decode one JSONL line.
type traceLine struct {
	UopTrace
	Cycle    int64  `json:"cycle"`
	Ev       string `json:"ev"`
	Template int    `json:"template"`
}

// ReadPipetrace parses a pipetrace stream back into uop records and
// events, in file order. The format is auto-detected: a stream opening
// with the binary magic decodes as the binary encoding, anything else as
// JSONL.
func ReadPipetrace(r io.Reader) ([]UopTrace, []TraceEvent, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if sniffBinary(br) {
		return readBinaryPipetrace(br)
	}
	// A stream that starts like the binary magic but doesn't complete it is
	// a mangled binary trace (e.g. text-mode newline translation), not
	// JSONL; handing it to the JSONL parser would bury the real problem
	// under a confusing parse error.
	if head, err := br.Peek(4); err == nil && bytes.Equal(head, binMagic[:4]) {
		full, _ := br.Peek(len(binMagic))
		return nil, nil, fmt.Errorf("pipetrace: corrupt binary magic %q (want %q)", full, binMagic)
	}
	return readJSONLPipetrace(br)
}

func readJSONLPipetrace(r io.Reader) ([]UopTrace, []TraceEvent, error) {
	var uops []UopTrace
	var events []TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var l traceLine
		if err := json.Unmarshal(b, &l); err != nil {
			return nil, nil, fmt.Errorf("pipetrace line %d: %w", line, err)
		}
		switch l.Type {
		case "uop":
			uops = append(uops, l.UopTrace)
		case "ev":
			events = append(events, TraceEvent{
				Type: "ev", Cycle: l.Cycle, Ev: l.Ev, Template: l.Template, Seq: l.Seq,
			})
		default:
			return nil, nil, fmt.Errorf("pipetrace line %d: unknown record type %q", line, l.Type)
		}
	}
	if err := sc.Err(); err != nil {
		// A scanner error aborts the parse mid-file; the record after the
		// last parsed line is the culprit (e.g. a line longer than the 1 MiB
		// buffer reports bufio.ErrTooLong with no position of its own).
		return nil, nil, fmt.Errorf("pipetrace line %d: %w", line+1, err)
	}
	return uops, events, nil
}
