package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestServeDebug boots the debug server on an ephemeral port and exercises
// every endpoint over a real listener: expvar, Prometheus metrics, and the
// live sweep-progress JSON.
func TestServeDebug(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("mg_obs_test_total", "test counter").Add(9)
	metrics.Install(reg)
	defer metrics.Install(nil)
	metrics.ResetProgress()
	defer metrics.ResetProgress()
	p := metrics.StartSweep("obs-test", [][2]string{{"wl", "s"}})
	p.TaskDone(0, "hit", nil)
	p.Finish()

	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("ServeDebug returned unbound address %q", addr)
	}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	vars, _ := get("/debug/vars")
	var varsJSON map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &varsJSON); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := varsJSON["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}

	prom, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	samples, err := metrics.ParseText(strings.NewReader(prom))
	if err != nil {
		t.Fatalf("/metrics not parseable: %v\n%s", err, prom)
	}
	found := false
	for _, s := range samples {
		if s.Name == "mg_obs_test_total" && s.Value == 9 {
			found = true
		}
	}
	if !found {
		t.Errorf("/metrics missing mg_obs_test_total: %s", prom)
	}

	sweep, ct := get("/debug/sweep")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/sweep content type %q", ct)
	}
	var body struct {
		Sweeps []metrics.SweepSnapshot `json:"sweeps"`
	}
	if err := json.Unmarshal([]byte(sweep), &body); err != nil {
		t.Fatalf("/debug/sweep not JSON: %v\n%s", err, sweep)
	}
	if len(body.Sweeps) != 1 || body.Sweeps[0].Title != "obs-test" || body.Sweeps[0].Done != 1 {
		t.Errorf("/debug/sweep wrong: %s", sweep)
	}

	// Second server on another port must not panic on duplicate mux
	// registration.
	if _, err := ServeDebug("127.0.0.1:0"); err != nil {
		t.Fatalf("second ServeDebug: %v", err)
	}
}
