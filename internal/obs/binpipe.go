package obs

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary pipetrace encoding. The JSONL pipetrace costs one json.Encoder
// allocation pass per record, which dominates the allocation profile of a
// traced run; the binary encoding streams the same records as
// length-prefixed fixed-layout little-endian structs into a reused scratch
// buffer, so tracing allocates nothing per record. ReadPipetrace
// auto-detects the format, so every existing consumer (mgtrace rendering,
// critpath attribution) reads both; ConvertPipetrace re-encodes a binary
// trace as JSONL byte-identically to a run traced with -pipetrace.
//
// Stream layout (all integers little-endian):
//
//	magic   8 bytes: "MGPTB1\r\n" (the \r\n catches text-mode mangling)
//	records until EOF, each: [tag u8][payloadLen u32][payload]
//
// Uop record (tag 0x01), payload:
//
//	off  0  seq     i64      off 56  serlat  i64
//	off  8  fetch   i64      off 64  serout  i64
//	off 16  rename  i64      off 72  mlat    i64
//	off 24  issue   i64      off 80  static  i32
//	off 32  done    i64      off 84  tmpl    i32
//	off 40  ready   i64      off 88  dst     i32
//	off 48  commit  i64      off 92  replays u32
//	off 96  addr    u32
//	off 100 n       u16
//	off 102 kind    u8  (0 singleton, 1 handle, 2 ovh-jump)
//	off 103 mem     u8
//	off 104 flags   u8  (bit0 mispred, bit1 squashed, bit2 serext)
//	off 105 opLen   u8, then opLen bytes of mnemonic
//	then    nsrc    u8, then nsrc × i32 source registers
//
// Event record (tag 0x02), payload:
//
//	off  0  cycle    i64
//	off  8  seq      i64
//	off 16  template i32
//	off 20  evLen    u8, then evLen bytes of event kind
//
// Like the JSONL schema, the binary layout is append-only: new fields may
// be added to the end of a payload (readers tolerate longer payloads whose
// prefix parses), but existing offsets never move. Version bumps change
// the magic.
var binMagic = [8]byte{'M', 'G', 'P', 'T', 'B', '1', '\r', '\n'}

const (
	binTagUop   = 0x01
	binTagEvent = 0x02

	// binUopFixed is the size of a uop payload before its
	// variable-length tail (mnemonic and source list).
	binUopFixed   = 106
	binEventFixed = 21

	// binMaxPayload bounds a record's declared payload length; anything
	// larger is corruption, not data (the largest legitimate record is
	// ~120 bytes).
	binMaxPayload = 1 << 12
)

// binKindNames maps the on-disk kind code to the JSONL kind string. The
// set is closed (it mirrors the pipeline's uop kinds); an unknown kind at
// encode time is a sticky error rather than a silently wrong record.
var binKindNames = [...]string{"singleton", "handle", "ovh-jump"}

func binKindCode(kind string) (byte, bool) {
	for i, n := range binKindNames {
		if n == kind {
			return byte(i), true
		}
	}
	return 0, false
}

// binUop appends one uop record to the scratch buffer and writes it.
func (t *Pipetrace) binUop(r *UopTrace) error {
	kind, ok := binKindCode(r.Kind)
	if !ok {
		return fmt.Errorf("pipetrace: unknown uop kind %q", r.Kind)
	}
	if len(r.Op) > 255 {
		return fmt.Errorf("pipetrace: op mnemonic %q too long", r.Op)
	}
	if len(r.Srcs) > 255 {
		return fmt.Errorf("pipetrace: %d sources exceed the record limit", len(r.Srcs))
	}
	var flags byte
	if r.Mispred {
		flags |= 1 << 0
	}
	if r.Squashed {
		flags |= 1 << 1
	}
	if r.SerExt {
		flags |= 1 << 2
	}
	b := append(t.scratch[:0], binTagUop, 0, 0, 0, 0) // header patched by binRecord
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Seq))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Fetch))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Rename))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Issue))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Done))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Ready))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Commit))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.SerLat))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.SerOut))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.MemLat))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Static))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Tmpl))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Dst))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Replays))
	b = binary.LittleEndian.AppendUint32(b, r.Addr)
	b = binary.LittleEndian.AppendUint16(b, uint16(r.N))
	b = append(b, kind, byte(r.Mem), flags, byte(len(r.Op)))
	b = append(b, r.Op...)
	b = append(b, byte(len(r.Srcs)))
	for _, s := range r.Srcs {
		b = binary.LittleEndian.AppendUint32(b, uint32(s))
	}
	return t.binRecord(b, r.IndexCycle(), true)
}

// binEvent appends one event record to the scratch buffer and writes it.
func (t *Pipetrace) binEvent(e *TraceEvent) error {
	if len(e.Ev) > 255 {
		return fmt.Errorf("pipetrace: event kind %q too long", e.Ev)
	}
	b := append(t.scratch[:0], binTagEvent, 0, 0, 0, 0) // header patched by binRecord
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Cycle))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Seq))
	b = binary.LittleEndian.AppendUint32(b, uint32(e.Template))
	b = append(b, byte(len(e.Ev)))
	b = append(b, e.Ev...)
	return t.binRecord(b, e.Cycle, false)
}

// binRecord patches the payload length into b's 5-byte [tag][len] header
// and writes the whole record in one call. The record is assembled in
// t.scratch (handed through b) so steady-state emission never allocates;
// for the same reason the index builder only sees the already-assembled
// bytes (a few integer compares per record plus a CRC over the first
// 64 KiB of the stream).
func (t *Pipetrace) binRecord(b []byte, cycle int64, isUop bool) error {
	binary.LittleEndian.PutUint32(b[1:5], uint32(len(b)-5))
	t.scratch = b
	if t.ixb != nil {
		t.ixb.note(t.off, cycle, isUop)
		t.ixb.head(b)
	}
	if _, err := t.bw.Write(b); err != nil {
		return err
	}
	t.off += int64(len(b))
	return nil
}

// binReader streams records out of a binary pipetrace. Strings are
// interned so a trace with the usual handful of distinct mnemonics decodes
// without a per-record allocation.
type binReader struct {
	br     *bufio.Reader
	buf    []byte
	rec    int // 1-based record number, for errors
	intern map[string]string

	off    int64  // byte offset of the next unread record
	recOff int64  // byte offset of the most recently decoded record
	track  bool   // keep raw bytes of each record (index building)
	raw    []byte // raw record bytes (header + payload) when track is set
}

// newBinReader consumes the magic (which the caller has already sniffed)
// and positions the reader at the first record.
func newBinReader(br *bufio.Reader) (*binReader, error) {
	var magic [len(binMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != binMagic {
		return nil, fmt.Errorf("pipetrace: bad binary magic")
	}
	return &binReader{br: br, intern: make(map[string]string, 16), off: int64(len(binMagic))}, nil
}

// next decodes the next record into exactly one of u or e. It returns
// io.EOF at a clean end of stream; every other error means corruption.
func (d *binReader) next(u *UopTrace, e *TraceEvent) (isUop bool, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(d.br, hdr[:1]); err != nil {
		if err == io.EOF {
			return false, io.EOF
		}
		return false, d.corrupt(err)
	}
	d.rec++
	if _, err := io.ReadFull(d.br, hdr[1:]); err != nil {
		return false, d.corrupt(err)
	}
	tag := hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	if tag != binTagUop && tag != binTagEvent {
		return false, fmt.Errorf("pipetrace record %d: unknown tag 0x%02x", d.rec, tag)
	}
	if n > binMaxPayload {
		return false, fmt.Errorf("pipetrace record %d: payload length %d exceeds limit", d.rec, n)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	p := d.buf[:n]
	if _, err := io.ReadFull(d.br, p); err != nil {
		return false, d.corrupt(err)
	}
	d.recOff = d.off
	d.off += int64(len(hdr)) + int64(n)
	if d.track {
		d.raw = append(d.raw[:0], hdr[:]...)
		d.raw = append(d.raw, p...)
	}
	if tag == binTagUop {
		return true, d.decodeUop(p, u)
	}
	return false, d.decodeEvent(p, e)
}

func (d *binReader) corrupt(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("pipetrace record %d: truncated", d.rec+1)
	}
	return fmt.Errorf("pipetrace record %d: %w", d.rec+1, err)
}

func (d *binReader) str(b []byte) string {
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	d.intern[s] = s
	return s
}

func (d *binReader) decodeUop(p []byte, u *UopTrace) error {
	if len(p) < binUopFixed {
		return fmt.Errorf("pipetrace record %d: uop payload %d bytes, need %d", d.rec, len(p), binUopFixed)
	}
	le := binary.LittleEndian
	*u = UopTrace{
		Type:    "uop",
		Seq:     int64(le.Uint64(p[0:])),
		Fetch:   int64(le.Uint64(p[8:])),
		Rename:  int64(le.Uint64(p[16:])),
		Issue:   int64(le.Uint64(p[24:])),
		Done:    int64(le.Uint64(p[32:])),
		Ready:   int64(le.Uint64(p[40:])),
		Commit:  int64(le.Uint64(p[48:])),
		SerLat:  int64(le.Uint64(p[56:])),
		SerOut:  int64(le.Uint64(p[64:])),
		MemLat:  int64(le.Uint64(p[72:])),
		Static:  int(int32(le.Uint32(p[80:]))),
		Tmpl:    int(int32(le.Uint32(p[84:]))),
		Dst:     int(int32(le.Uint32(p[88:]))),
		Replays: int(le.Uint32(p[92:])),
		Addr:    le.Uint32(p[96:]),
		N:       int(le.Uint16(p[100:])),
	}
	if k := p[102]; int(k) < len(binKindNames) {
		u.Kind = binKindNames[k]
	} else {
		return fmt.Errorf("pipetrace record %d: unknown kind code %d", d.rec, p[102])
	}
	u.Mem = int(p[103])
	flags := p[104]
	u.Mispred = flags&(1<<0) != 0
	u.Squashed = flags&(1<<1) != 0
	u.SerExt = flags&(1<<2) != 0
	opLen := int(p[105])
	off := binUopFixed + opLen
	if off+1 > len(p) {
		return fmt.Errorf("pipetrace record %d: mnemonic overruns payload", d.rec)
	}
	u.Op = d.str(p[binUopFixed:off])
	nsrc := int(p[off])
	off++
	if off+4*nsrc > len(p) {
		return fmt.Errorf("pipetrace record %d: source list overruns payload", d.rec)
	}
	if nsrc > 0 {
		u.Srcs = make([]int, nsrc)
		for i := range u.Srcs {
			u.Srcs[i] = int(int32(le.Uint32(p[off+4*i:])))
		}
	}
	return nil
}

func (d *binReader) decodeEvent(p []byte, e *TraceEvent) error {
	if len(p) < binEventFixed {
		return fmt.Errorf("pipetrace record %d: event payload %d bytes, need %d", d.rec, len(p), binEventFixed)
	}
	le := binary.LittleEndian
	*e = TraceEvent{
		Type:     "ev",
		Cycle:    int64(le.Uint64(p[0:])),
		Seq:      int64(le.Uint64(p[8:])),
		Template: int(int32(le.Uint32(p[16:]))),
	}
	evLen := int(p[20])
	if binEventFixed+evLen > len(p) {
		return fmt.Errorf("pipetrace record %d: event kind overruns payload", d.rec)
	}
	e.Ev = d.str(p[binEventFixed : binEventFixed+evLen])
	return nil
}

// readBinaryPipetrace parses a whole binary stream into uop and event
// slices, mirroring the JSONL reader's result shape.
func readBinaryPipetrace(br *bufio.Reader) ([]UopTrace, []TraceEvent, error) {
	d, err := newBinReader(br)
	if err != nil {
		return nil, nil, err
	}
	var uops []UopTrace
	var events []TraceEvent
	for {
		var u UopTrace
		var e TraceEvent
		isUop, err := d.next(&u, &e)
		if err == io.EOF {
			return uops, events, nil
		}
		if err != nil {
			return nil, nil, err
		}
		if isUop {
			uops = append(uops, u)
		} else {
			events = append(events, e)
		}
	}
}

// sniffBinary reports whether the buffered stream starts with the binary
// pipetrace magic, without consuming it.
func sniffBinary(br *bufio.Reader) bool {
	head, err := br.Peek(len(binMagic))
	return err == nil && bytes.Equal(head, binMagic[:])
}

// ConvertPipetrace re-encodes a binary pipetrace from r as JSONL on w, in
// record order. Because it drives the same JSONL encoder a live run uses,
// the output is byte-identical to the trace the run would have written
// with -pipetrace instead of -pipetrace-bin.
func ConvertPipetrace(r io.Reader, w io.Writer) error {
	br := bufio.NewReaderSize(r, 1<<16)
	if !sniffBinary(br) {
		return fmt.Errorf("pipetrace: input is not a binary pipetrace (no %q magic)", binMagic)
	}
	d, err := newBinReader(br)
	if err != nil {
		return err
	}
	out := NewPipetrace(w)
	for {
		var u UopTrace
		var e TraceEvent
		isUop, err := d.next(&u, &e)
		if err == io.EOF {
			return out.Flush()
		}
		if err != nil {
			return err
		}
		if isUop {
			out.Uop(u)
		} else {
			out.Event(e.Cycle, e.Ev, e.Template, e.Seq)
		}
	}
}
