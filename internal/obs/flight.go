package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Flight recorder: a small always-on ring of the most recent uop records
// from in-flight observed runs, served live at /debug/trace so a stall
// storm can be inspected while a sweep is still running — without waiting
// for the run to finish and its trace file to close.
//
// The pipeline feeds the ring through the same hook that feeds the
// pipetrace, behind the usual nil-guarded global: with no recorder
// installed the hot path pays one atomic pointer load per committed or
// squashed uop and nothing else. Recording copies the record into a
// preallocated slot (source registers land in a fixed inline array), so
// steady state allocates nothing; when the ring wraps, the oldest records
// are overwritten and counted as dropped.

// DefaultFlightSlots is the ring capacity ServeDebug installs: at a few
// uops per cycle it retains on the order of a thousand cycles of history,
// enough to cover any -window query a human types while live-debugging.
const DefaultFlightSlots = 4096

// flightSrcMax bounds the inline source-register array; pipeline uops
// carry at most 3 sources, so overflow (which allocates) never happens on
// records from the simulator.
const flightSrcMax = 8

// FlightRecord is one retained record: the run label it came from plus the
// uop itself. The embedded UopTrace flattens in JSON, so a flight record
// line is a pipetrace uop line with an extra "run" field.
type FlightRecord struct {
	Run string `json:"run"`
	UopTrace
}

type flightSlot struct {
	run  string
	u    UopTrace // Srcs nil; sources live in the inline array
	nsrc int
	srcs [flightSrcMax]int32
	over []int // overflow sources, only if a record exceeds flightSrcMax
}

// FlightRecorder is a fixed-capacity ring of recent uop records, safe for
// concurrent writers (sweep workers record from many goroutines).
type FlightRecorder struct {
	mu      sync.Mutex
	slots   []flightSlot
	next    int  // slot the next record lands in
	full    bool // ring has wrapped at least once
	total   atomic.Int64
	dropped atomic.Int64
}

// NewFlightRecorder creates a recorder retaining the last `slots` records;
// slots <= 0 selects DefaultFlightSlots.
func NewFlightRecorder(slots int) *FlightRecorder {
	if slots <= 0 {
		slots = DefaultFlightSlots
	}
	return &FlightRecorder{slots: make([]flightSlot, slots)}
}

// flightRec is the installed recorder; nil means recording is off and the
// pipeline hook is a single atomic load.
var flightRec atomic.Pointer[FlightRecorder]

// Flight returns the installed flight recorder, or nil when off.
func Flight() *FlightRecorder { return flightRec.Load() }

// EnableFlightRecorder installs a recorder with the given ring capacity if
// none is installed yet, and returns the installed one.
func EnableFlightRecorder(slots int) *FlightRecorder {
	if f := flightRec.Load(); f != nil {
		return f
	}
	f := NewFlightRecorder(slots)
	if flightRec.CompareAndSwap(nil, f) {
		return f
	}
	return flightRec.Load()
}

// InstallFlightRecorder replaces the installed recorder (nil uninstalls)
// and returns the previous one, so tests can restore global state.
func InstallFlightRecorder(f *FlightRecorder) *FlightRecorder {
	return flightRec.Swap(f)
}

// RecordUop copies one uop record into the ring under the given run label.
// u is not retained: its Srcs slice is copied into the slot's inline
// array, so callers may reuse a scratch slice across records.
func (f *FlightRecorder) RecordUop(run string, u *UopTrace) {
	f.total.Add(1)
	f.mu.Lock()
	s := &f.slots[f.next]
	if f.full {
		f.dropped.Add(1)
	}
	s.run = run
	s.u = *u
	s.u.Srcs = nil
	s.over = nil
	s.nsrc = len(u.Srcs)
	if s.nsrc <= flightSrcMax {
		for i, v := range u.Srcs {
			s.srcs[i] = int32(v)
		}
	} else {
		s.over = append([]int(nil), u.Srcs...)
	}
	f.next++
	if f.next == len(f.slots) {
		f.next = 0
		f.full = true
	}
	f.mu.Unlock()
}

// Totals returns how many records were ever recorded and how many were
// overwritten by ring wrap.
func (f *FlightRecorder) Totals() (total, dropped int64) {
	return f.total.Load(), f.dropped.Load()
}

// Snapshot returns the retained records in recording order, oldest first,
// keeping only runs whose label contains runFilter ("" keeps all). Srcs
// slices are materialized, so the result is safe to hold.
func (f *FlightRecorder) Snapshot(runFilter string) []FlightRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.full {
		n = len(f.slots)
	}
	out := make([]FlightRecord, 0, n)
	start := 0
	if f.full {
		start = f.next
	}
	for i := 0; i < n; i++ {
		s := &f.slots[(start+i)%len(f.slots)]
		if runFilter != "" && !strings.Contains(s.run, runFilter) {
			continue
		}
		r := FlightRecord{Run: s.run, UopTrace: s.u}
		if s.over != nil {
			r.Srcs = append([]int(nil), s.over...)
		} else if s.nsrc > 0 {
			r.Srcs = make([]int, s.nsrc)
			for j := 0; j < s.nsrc; j++ {
				r.Srcs[j] = int(s.srcs[j])
			}
		}
		out = append(out, r)
	}
	return out
}

// TraceWindowHandler serves the flight-recorder ring as pipetrace-style
// JSONL. Query parameters:
//
//	window=N  keep only records within the last N cycles of each selected
//	          run (by index cycle, relative to that run's newest record)
//	run=S     keep only runs whose label contains S
//
// With no recorder installed it answers 503, so a scrape can tell "off"
// apart from "no records yet".
func TraceWindowHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		f := Flight()
		if f == nil {
			http.Error(w, "flight recorder not enabled", http.StatusServiceUnavailable)
			return
		}
		var window int64
		if s := req.URL.Query().Get("window"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil || v <= 0 {
				http.Error(w, fmt.Sprintf("bad window %q: want a positive cycle count", s), http.StatusBadRequest)
				return
			}
			window = v
		}
		recs := f.Snapshot(req.URL.Query().Get("run"))
		if window > 0 {
			// Each run's window is anchored at its own newest record, so one
			// long-finished run doesn't hide a stalling one.
			newest := make(map[string]int64, 4)
			for i := range recs {
				if c := recs[i].IndexCycle(); c > newest[recs[i].Run] {
					newest[recs[i].Run] = c
				}
			}
			kept := recs[:0]
			for i := range recs {
				if recs[i].IndexCycle() > newest[recs[i].Run]-window {
					kept = append(kept, recs[i])
				}
			}
			recs = kept
		}
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		writeFlightJSONL(w, recs) //nolint:errcheck — best-effort debug endpoint
	})
}

// writeFlightJSONL streams flight records as JSONL, one record per line.
func writeFlightJSONL(w io.Writer, recs []FlightRecord) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		recs[i].Type = "uop"
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return nil
}
