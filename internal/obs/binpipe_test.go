package obs

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

// sampleTraceRecords emits a representative record mix (all three uop
// kinds, every flag, interleaved events) into tr.
func sampleTraceRecords(tr *Pipetrace) {
	tr.Uop(UopTrace{Seq: 1, Static: 10, Kind: "singleton", Op: "addi", N: 1,
		Fetch: 5, Rename: 7, Issue: 9, Done: 11, Ready: 10, Commit: 12,
		Dst: 4, Srcs: []int{4}, Tmpl: -1})
	tr.Event(13, EvFlush, -1, 2)
	tr.Uop(UopTrace{Seq: 2, Static: 11, Kind: "handle", Op: "ldw", N: 3,
		Fetch: 5, Rename: 7, Issue: 9, Done: 15, Ready: 15, Commit: -1,
		Replays: 1, Mispred: true, Squashed: true,
		Dst: 7, Srcs: []int{3, 5, 6}, Tmpl: 2, Mem: MemLoad, Addr: 0xdeadbeef,
		SerLat: 2, SerOut: 1, MemLat: 9, SerExt: true})
	tr.Uop(UopTrace{Seq: 3, Static: 0, Kind: "ovh-jump", Op: "jmp", N: 0,
		Fetch: 6, Rename: 8, Issue: 10, Done: 11, Ready: -1, Commit: 13,
		Dst: -1, Tmpl: -1})
	tr.Event(20, EvDisable, 4, -1)
	tr.Event(40, EvReenable, 4, -1)
}

func TestBinaryPipetraceRoundtrip(t *testing.T) {
	var jb, bb bytes.Buffer
	jt, bt := NewPipetrace(&jb), NewBinaryPipetrace(&bb)
	sampleTraceRecords(jt)
	sampleTraceRecords(bt)
	if err := jt.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	if bt.Uops != 3 || bt.Events != 3 {
		t.Errorf("binary counters: uops=%d events=%d", bt.Uops, bt.Events)
	}
	if bb.Len() >= jb.Len() {
		t.Errorf("binary trace (%d bytes) not smaller than JSONL (%d bytes)", bb.Len(), jb.Len())
	}

	ju, je, err := ReadPipetrace(bytes.NewReader(jb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bu, be, err := ReadPipetrace(bytes.NewReader(bb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bu, ju) {
		t.Errorf("uops differ between encodings:\n binary %+v\n jsonl  %+v", bu, ju)
	}
	if !reflect.DeepEqual(be, je) {
		t.Errorf("events differ between encodings:\n binary %+v\n jsonl  %+v", be, je)
	}
}

// ConvertPipetrace must reproduce the JSONL writer's output byte for byte,
// including the interleaved uop/event order.
func TestConvertPipetraceByteIdentical(t *testing.T) {
	var jb, bb bytes.Buffer
	jt, bt := NewPipetrace(&jb), NewBinaryPipetrace(&bb)
	sampleTraceRecords(jt)
	sampleTraceRecords(bt)
	if err := jt.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	var conv bytes.Buffer
	if err := ConvertPipetrace(bytes.NewReader(bb.Bytes()), &conv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(conv.Bytes(), jb.Bytes()) {
		t.Errorf("converted JSONL differs from direct JSONL:\n got:\n%s\nwant:\n%s",
			conv.Bytes(), jb.Bytes())
	}
	if err := ConvertPipetrace(bytes.NewReader(jb.Bytes()), &conv); err == nil {
		t.Error("converting a JSONL trace must be rejected (no binary magic)")
	}
}

func TestBinaryPipetraceCorruption(t *testing.T) {
	var bb bytes.Buffer
	bt := NewBinaryPipetrace(&bb)
	sampleTraceRecords(bt)
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	whole := bb.Bytes()

	check := func(name string, data []byte, wantSub string) {
		t.Helper()
		_, _, err := ReadPipetrace(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: corrupted stream parsed without error", name)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	// Chop the final record mid-payload.
	check("truncated", whole[:len(whole)-5], "truncated")

	// Flip the first record's tag to an unknown value.
	bad := bytes.Clone(whole)
	bad[len(binMagic)] = 0x7f
	check("unknown tag", bad, "unknown tag")

	// Declare an absurd payload length.
	bad = bytes.Clone(whole)
	bad[len(binMagic)+1] = 0xff
	bad[len(binMagic)+2] = 0xff
	bad[len(binMagic)+3] = 0xff
	check("oversized payload", bad, "exceeds limit")

	// Corrupt the kind code inside the first uop payload.
	bad = bytes.Clone(whole)
	bad[len(binMagic)+5+102] = 0x2a
	check("bad kind", bad, "unknown kind code")

	// A header alone (magic + tag byte, no length) is truncated too.
	check("header only", whole[:len(binMagic)+1], "truncated")
}

// A stream that opens with neither '{' nor the magic falls through to the
// JSONL parser and fails there with a line-numbered error, and a truncated
// magic is not misread as binary.
func TestReadPipetraceSniffing(t *testing.T) {
	if _, _, err := ReadPipetrace(strings.NewReader("garbage\n")); err == nil {
		t.Error("garbage stream parsed without error")
	}
	u, e, err := ReadPipetrace(strings.NewReader(""))
	if err != nil || len(u) != 0 || len(e) != 0 {
		t.Errorf("empty stream: uops=%d events=%d err=%v", len(u), len(e), err)
	}
	if _, _, err := ReadPipetrace(strings.NewReader(string(binMagic[:4]))); err == nil {
		t.Error("truncated magic parsed without error")
	}
}

func TestBinaryPipetraceStickyError(t *testing.T) {
	tr := NewBinaryPipetrace(failWriter{})
	for i := 0; i < 2000 && tr.err == nil; i++ {
		tr.Uop(UopTrace{Seq: int64(i), Kind: "singleton", Op: "addi", N: 1})
	}
	if tr.err == nil {
		t.Fatal("write error never surfaced")
	}
	uops := tr.Uops
	tr.Uop(UopTrace{Seq: 9999, Kind: "singleton"})
	tr.Event(1, EvFlush, -1, 9999)
	if tr.Uops != uops || tr.Events != 0 {
		t.Error("post-error emissions must be dropped")
	}
	if err := tr.Flush(); err == nil {
		t.Error("Flush must report the sticky error")
	}

	// An unencodable record is itself a sticky error.
	var bb bytes.Buffer
	tr = NewBinaryPipetrace(&bb)
	tr.Uop(UopTrace{Seq: 1, Kind: "no-such-kind"})
	if err := tr.Flush(); err == nil || !strings.Contains(err.Error(), "unknown uop kind") {
		t.Errorf("unknown kind: Flush = %v", err)
	}
}

// BenchmarkPipetraceUop compares the per-record cost of the two trace
// encodings; the binary writer must not allocate per record.
func BenchmarkPipetraceUop(b *testing.B) {
	rec := UopTrace{Seq: 2, Static: 11, Kind: "handle", Op: "ldw", N: 3,
		Fetch: 5, Rename: 7, Issue: 9, Done: 15, Ready: 15, Commit: 17,
		Dst: 7, Srcs: []int{3, 5}, Tmpl: 2, Mem: MemLoad, Addr: 0x1000,
		SerLat: 2, SerOut: 1, MemLat: 9}
	for _, enc := range []struct {
		name string
		mk   func(io.Writer) *Pipetrace
	}{{"jsonl", NewPipetrace}, {"binary", NewBinaryPipetrace}} {
		b.Run(enc.name, func(b *testing.B) {
			tr := enc.mk(io.Discard)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec.Seq = int64(i)
				tr.Uop(rec)
			}
			if err := tr.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// The binary layout is as stable as the JSONL schema: a golden file pins
// the byte-exact encoding (regenerate with -update only for deliberate,
// append-only growth).
func TestBinarySchemaGolden(t *testing.T) {
	var bb bytes.Buffer
	bt := NewBinaryPipetrace(&bb)
	sampleTraceRecords(bt)
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pipetrace.golden.bin", bb.Bytes())
}
