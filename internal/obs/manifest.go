package obs

import (
	"encoding/json"
	"os"
)

// Manifest describes one experiment run: what was asked for, what ran,
// how long each task took, and which observability files each produced.
// It is written alongside the experiment output so a trace directory is
// self-describing.
type Manifest struct {
	Tool    string  `json:"tool"`
	Title   string  `json:"title"`
	Started string  `json:"started"` // RFC3339
	WallMS  float64 `json:"wall_ms"`
	Input   string  `json:"input,omitempty"`
	Workers int     `json:"workers,omitempty"`

	// Flags records the observability-relevant invocation flags.
	Flags map[string]string `json:"flags,omitempty"`

	// Spans points at the -trace-out Chrome trace file covering this run,
	// when span tracing was enabled.
	Spans string `json:"spans,omitempty"`

	Tasks []ManifestTask `json:"tasks,omitempty"`
}

// ManifestTask is one (workload, series) unit of work.
type ManifestTask struct {
	Workload string  `json:"workload"`
	Series   string  `json:"series"`
	Worker   int     `json:"worker"`
	WallMS   float64 `json:"wall_ms"`
	// Cache is the simulation-cache outcome for the series point:
	// "hit", "miss", "shared", "traced" (observed runs bypass the result
	// cache), or "nocache".
	Cache string   `json:"cache,omitempty"`
	Files []string `json:"files,omitempty"`
	// Index summarizes the pipetrace seek index the task wrote, so tooling
	// can discover indexed traces without globbing the output directory.
	Index *IndexInfo `json:"index,omitempty"`
	Error string     `json:"error,omitempty"`
}

// WriteManifest writes the manifest as indented JSON.
func WriteManifest(path string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o666)
}

// ReadManifest parses a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}
