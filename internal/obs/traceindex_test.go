package obs

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// synthUop builds the i-th record of a synthetic trace: commit cycles grow
// roughly two per record, with every 97th uop squashed (Commit -1) so the
// index-cycle rule's squash branch is exercised throughout.
func synthUop(i int) UopTrace {
	c := int64(100 + 2*i)
	u := UopTrace{Seq: int64(i), Static: i % 50, Kind: "singleton", Op: "addi", N: 1,
		Fetch: c - 9, Rename: c - 7, Issue: c - 5, Done: c - 3, Ready: c - 3, Commit: c,
		Dst: i % 32, Srcs: []int{i % 32, (i + 1) % 32}, Tmpl: -1}
	if i%97 == 3 {
		u.Commit = -1
		u.Squashed = true
	}
	return u
}

// writeSynthTrace writes n synthetic records (uops plus an event every
// 1000th record) to an indexed binary pipetrace, returning the encoded
// bytes and the writer-built index.
func writeSynthTrace(t *testing.T, n, every int) ([]byte, *Index) {
	t.Helper()
	var buf bytes.Buffer
	tr := NewBinaryPipetrace(&buf)
	if err := tr.EnableIndex(every); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		u := synthUop(i)
		tr.Uop(u)
		if i%1000 == 500 {
			tr.Event(u.IndexCycle(), EvFlush, -1, u.Seq)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	idx := tr.Index()
	if idx == nil {
		t.Fatal("EnableIndex set but Index() returned nil")
	}
	return buf.Bytes(), idx
}

func TestIndexRoundtrip(t *testing.T) {
	_, idx := writeSynthTrace(t, 10_000, 512)
	var ib bytes.Buffer
	if err := WriteIndex(&ib, idx); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(bytes.NewReader(ib.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, idx) {
		t.Errorf("index did not round-trip:\n got  %+v\n want %+v", got, idx)
	}
	wantEntries := (10_000 + 10 + 511) / 512 // uops + events, rounded up
	if len(idx.Entries) != wantEntries {
		t.Errorf("entries = %d, want %d", len(idx.Entries), wantEntries)
	}
	if idx.Uops != 10_000 || idx.Events != 10 || idx.Records != 10_010 {
		t.Errorf("totals: records=%d uops=%d events=%d", idx.Records, idx.Uops, idx.Events)
	}
}

// BuildIndex over an existing trace must reproduce the index the writer
// built incrementally.
func TestBuildIndexMatchesWriter(t *testing.T) {
	raw, idx := writeSynthTrace(t, 20_000, 1024)
	rebuilt, err := BuildIndex(bytes.NewReader(raw), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rebuilt, idx) {
		t.Errorf("BuildIndex differs from writer-built index:\n got  %+v\n want %+v", rebuilt, idx)
	}
}

func TestBuildIndexRejectsJSONL(t *testing.T) {
	var jb bytes.Buffer
	jt := NewPipetrace(&jb)
	jt.Uop(synthUop(0))
	if err := jt.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndex(bytes.NewReader(jb.Bytes()), 64); err == nil {
		t.Fatal("BuildIndex accepted a JSONL trace")
	}
}

// countingReadSeeker counts bytes actually read, so tests can assert that
// an indexed query touches only a bounded slice of the trace.
type countingReadSeeker struct {
	r    io.ReadSeeker
	read int64
}

func (c *countingReadSeeker) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *countingReadSeeker) Seek(off int64, whence int) (int64, error) {
	return c.r.Seek(off, whence)
}

// The core acceptance test: on a >=100k-record trace, an indexed window
// query returns exactly the records a linear scan returns, while reading
// only a bounded fraction of the file.
func TestWindowIndexedMatchesLinearBounded(t *testing.T) {
	const n = 120_000
	raw, idx := writeSynthTrace(t, n, DefaultIndexEvery)

	cnt := &countingReadSeeker{r: bytes.NewReader(raw)}
	ir, err := NewIndexedReader(cnt, idx)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewIndexedReader(bytes.NewReader(raw), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Indexed() || lin.Indexed() {
		t.Fatalf("Indexed() = %v/%v, want true/false", ir.Indexed(), lin.Indexed())
	}

	// A mid-trace window ~2000 cycles wide (about 1000 records).
	start, end := int64(100+n), int64(100+n+2000)
	cnt.read = 0
	iu, ie, err := ir.Window(start, end)
	if err != nil {
		t.Fatal(err)
	}
	lu, le, err := lin.Window(start, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(iu) == 0 {
		t.Fatal("window query returned no uops")
	}
	if !reflect.DeepEqual(iu, lu) || !reflect.DeepEqual(ie, le) {
		t.Errorf("indexed window differs from linear scan: %d/%d uops, %d/%d events",
			len(iu), len(lu), len(ie), len(le))
	}
	for _, u := range iu {
		if c := u.IndexCycle(); c < start || c > end {
			t.Errorf("uop seq %d index cycle %d outside window [%d, %d]", u.Seq, c, start, end)
		}
	}
	// The query may decode at most the chunks straddling the window plus
	// one stride of slop on each side — far under a tenth of the trace.
	if limit := int64(len(raw)) / 10; cnt.read > limit {
		t.Errorf("indexed window read %d bytes of %d (limit %d): index did not bound the scan",
			cnt.read, len(raw), limit)
	}
}

func TestRangeIndexedMatchesLinear(t *testing.T) {
	raw, idx := writeSynthTrace(t, 100_000, DefaultIndexEvery)
	cnt := &countingReadSeeker{r: bytes.NewReader(raw)}
	ir, err := NewIndexedReader(cnt, idx)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewIndexedReader(bytes.NewReader(raw), nil)
	if err != nil {
		t.Fatal(err)
	}
	cnt.read = 0
	iu, ie, err := ir.Range(60_000, 60_127)
	if err != nil {
		t.Fatal(err)
	}
	lu, le, err := lin.Range(60_000, 60_127)
	if err != nil {
		t.Fatal(err)
	}
	if len(iu) == 0 || !reflect.DeepEqual(iu, lu) || !reflect.DeepEqual(ie, le) {
		t.Errorf("indexed range differs from linear: %d/%d uops, %d/%d events",
			len(iu), len(lu), len(ie), len(le))
	}
	if limit := int64(len(raw)) / 10; cnt.read > limit {
		t.Errorf("indexed range read %d bytes of %d (limit %d)", cnt.read, len(raw), limit)
	}
}

// A window entirely past the end of the trace is a valid, empty query —
// not an error.
func TestWindowPastEOF(t *testing.T) {
	raw, idx := writeSynthTrace(t, 5_000, 256)
	ir, err := NewIndexedReader(bytes.NewReader(raw), idx)
	if err != nil {
		t.Fatal(err)
	}
	u, e, err := ir.Window(idx.MaxCycle+1, idx.MaxCycle+1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 0 || len(e) != 0 {
		t.Errorf("window past EOF returned %d uops, %d events", len(u), len(e))
	}
	if _, _, err := ir.Window(10, 5); err == nil {
		t.Error("inverted window accepted")
	}
	if _, _, err := ir.Range(10, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestEmptyTraceIndex(t *testing.T) {
	var buf bytes.Buffer
	tr := NewBinaryPipetrace(&buf)
	if err := tr.EnableIndex(64); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	idx := tr.Index()
	if idx.Records != 0 || len(idx.Entries) != 0 {
		t.Fatalf("empty trace index: records=%d entries=%d", idx.Records, len(idx.Entries))
	}
	if idx.MinCycle != 0 || idx.MaxCycle != -1 {
		t.Errorf("empty trace cycle span = [%d, %d], want [0, -1]", idx.MinCycle, idx.MaxCycle)
	}
	var ib bytes.Buffer
	if err := WriteIndex(&ib, idx); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(bytes.NewReader(ib.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ir, err := NewIndexedReader(bytes.NewReader(buf.Bytes()), got)
	if err != nil {
		t.Fatal(err)
	}
	u, e, err := ir.Window(0, 1<<40)
	if err != nil || len(u) != 0 || len(e) != 0 {
		t.Errorf("empty indexed trace window: %d uops, %d events, err %v", len(u), len(e), err)
	}
}

func TestReadIndexRejectsCorruption(t *testing.T) {
	_, idx := writeSynthTrace(t, 4_000, 128)
	var ib bytes.Buffer
	if err := WriteIndex(&ib, idx); err != nil {
		t.Fatal(err)
	}
	good := ib.Bytes()
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:idxHeaderLen-4] }},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-16] }},
		{"misaligned entries", func(b []byte) []byte {
			return append(append([]byte(nil), b[:len(b)-idxFooterLen]...), b[len(b)-idxFooterLen+8:]...)
		}},
		{"bad magic", func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xff; return c }},
		{"flipped entry bit", func(b []byte) []byte { c := append([]byte(nil), b...); c[idxHeaderLen+5] ^= 0x10; return c }},
		{"flipped footer bit", func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-20] ^= 0x01; return c }},
	}
	for _, tc := range cases {
		if _, err := ReadIndex(bytes.NewReader(tc.mut(good))); err == nil {
			t.Errorf("%s: corrupt index accepted", tc.name)
		}
	}
	if _, err := ReadIndex(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine index rejected: %v", err)
	}
}

// An index left behind by a rewritten trace must be rejected at open, not
// silently misdirect seeks.
func TestStaleIndexRejected(t *testing.T) {
	raw, idx := writeSynthTrace(t, 4_000, 128)

	// Same length, different content: flip a byte inside the CRC-covered head.
	mut := append([]byte(nil), raw...)
	mut[len(binMagic)+10] ^= 0x40
	if _, err := NewIndexedReader(bytes.NewReader(mut), idx); err == nil {
		t.Error("checksum-mismatched trace accepted")
	}

	// Different length.
	if _, err := NewIndexedReader(bytes.NewReader(raw[:len(raw)-5]), idx); err == nil {
		t.Error("length-mismatched trace accepted")
	}

	// Pristine pair still opens.
	if _, err := NewIndexedReader(bytes.NewReader(raw), idx); err != nil {
		t.Fatalf("pristine trace+index rejected: %v", err)
	}
}

func TestIndexedReaderRejectsPartialMagic(t *testing.T) {
	if _, err := NewIndexedReader(bytes.NewReader([]byte("MGPTxxxx garbage")), nil); err == nil {
		t.Fatal("corrupt binary magic accepted")
	}
}

// JSONL traces get the linear fallback with the same filtering rule.
func TestWindowJSONLFallback(t *testing.T) {
	var jb bytes.Buffer
	jt := NewPipetrace(&jb)
	for i := 0; i < 500; i++ {
		jt.Uop(synthUop(i))
	}
	jt.Event(600, EvFlush, -1, 42)
	if err := jt.Flush(); err != nil {
		t.Fatal(err)
	}
	ir, err := NewIndexedReader(bytes.NewReader(jb.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Indexed() {
		t.Fatal("JSONL trace claims to be indexed")
	}
	u, e, err := ir.Window(600, 700)
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 1 {
		t.Errorf("got %d events in window, want 1", len(e))
	}
	for _, x := range u {
		if c := x.IndexCycle(); c < 600 || c > 700 {
			t.Errorf("uop seq %d cycle %d outside window", x.Seq, c)
		}
	}
	u2, _, err := ir.Range(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(u2) != 5 || u2[0].Seq != 3 {
		t.Errorf("JSONL range: %d uops, first seq %v", len(u2), u2)
	}
}

func TestOpenIndexed(t *testing.T) {
	raw, idx := writeSynthTrace(t, 8_000, 256)
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.pipetrace.bin")
	if err := os.WriteFile(trace, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// No sidecar: linear fallback.
	ir, err := OpenIndexed(trace)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Indexed() {
		t.Error("no sidecar but Indexed() = true")
	}
	ir.Close()

	if err := WriteIndexFile(IndexPath(trace), idx); err != nil {
		t.Fatal(err)
	}
	ir, err = OpenIndexed(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Indexed() {
		t.Error("sidecar present but Indexed() = false")
	}
	u, _, err := ir.Window(200, 400)
	if err != nil || len(u) == 0 {
		t.Errorf("window over opened trace: %d uops, err %v", len(u), err)
	}
	ir.Close()

	// A present-but-corrupt sidecar is an error, never silently ignored.
	if err := os.WriteFile(IndexPath(trace), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndexed(trace); err == nil {
		t.Error("corrupt sidecar ignored")
	}
}

// The observer writes the sidecar next to the binary trace and reports it
// in Files() and IndexInfo().
func TestObserverWritesIndex(t *testing.T) {
	dir := t.TempDir()
	o, err := NewRunObserver(&Options{Pipetrace: true, PipetraceBin: true, IndexEvery: 64, Dir: dir}, "run1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		o.Trace.Uop(synthUop(i))
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	info := o.IndexInfo()
	if info == nil {
		t.Fatal("IndexInfo() = nil after indexed run")
	}
	if info.Records != 300 {
		t.Errorf("IndexInfo records = %d, want 300", info.Records)
	}
	trace := filepath.Join(dir, "run1.pipetrace.bin")
	found := false
	for _, f := range o.Files() {
		if f == filepath.Base(IndexPath(trace)) {
			found = true
		}
	}
	if !found {
		t.Errorf("index file missing from Files(): %v", o.Files())
	}
	ir, err := OpenIndexed(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer ir.Close()
	if !ir.Indexed() {
		t.Error("observer-written trace has no usable index")
	}
	u, _, err := ir.Window(info.MinCycle, info.MaxCycle)
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 300 {
		t.Errorf("full-span window returned %d uops, want 300", len(u))
	}
}

func BenchmarkIndexWrite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := NewBinaryPipetrace(io.Discard)
		if err := tr.EnableIndex(DefaultIndexEvery); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10_000; j++ {
			tr.Uop(synthUop(j))
		}
		if err := tr.Flush(); err != nil {
			b.Fatal(err)
		}
		if tr.Index() == nil {
			b.Fatal("no index")
		}
	}
}

func BenchmarkIndexSeek(b *testing.B) {
	var buf bytes.Buffer
	tr := NewBinaryPipetrace(&buf)
	if err := tr.EnableIndex(DefaultIndexEvery); err != nil {
		b.Fatal(err)
	}
	const n = 100_000
	for j := 0; j < n; j++ {
		tr.Uop(synthUop(j))
	}
	if err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
	idx := tr.Index()
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir, err := NewIndexedReader(bytes.NewReader(raw), idx)
		if err != nil {
			b.Fatal(err)
		}
		mid := int64(100 + n)
		u, _, err := ir.Window(mid, mid+200)
		if err != nil {
			b.Fatal(err)
		}
		if len(u) == 0 {
			b.Fatal("empty window")
		}
	}
}
