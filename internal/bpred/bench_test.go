package bpred

import "testing"

// BenchmarkPredictUpdate measures the full predict+train direction path.
func BenchmarkPredictUpdate(b *testing.B) {
	p := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		pc := uint32(i%64) * 4
		taken := i%3 != 0
		p.PredictDirection(pc)
		p.UpdateDirection(pc, taken)
	}
}

// BenchmarkBTB measures target lookup and insertion.
func BenchmarkBTB(b *testing.B) {
	p := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		pc := uint32(i%512) * 4
		p.PredictTarget(pc)
		p.UpdateTarget(pc, pc+16)
	}
}

// BenchmarkRAS measures call/return stack traffic.
func BenchmarkRAS(b *testing.B) {
	p := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		p.PushRAS(uint32(i))
		p.PushRAS(uint32(i + 1))
		p.PopRAS()
		p.PopRAS()
	}
}
