// Package bpred implements the branch prediction hardware from Table 1 of
// the paper: a 24Kb hybrid bimodal/gshare direction predictor, a 2K-entry
// 4-way set-associative BTB, and a 32-entry return address stack.
package bpred

// Two-bit saturating counter helpers. Counters predict taken when >= 2.

func inc2(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return 3
}

func dec2(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return 0
}

// Config sizes the predictor. The zero value is not useful; use
// DefaultConfig (the paper's 24Kb hybrid).
type Config struct {
	BimodalBits int // log2 entries in the bimodal table
	GshareBits  int // log2 entries in the gshare table (also history length)
	ChooserBits int // log2 entries in the chooser table
	BTBEntries  int // total BTB entries
	BTBAssoc    int // BTB associativity
	RASEntries  int // return address stack depth
}

// DefaultConfig is the paper's predictor: 24Kb of direction state
// (3 × 4K 2-bit counters = 24Kbit), 2K-entry 4-way BTB, 32-entry RAS.
func DefaultConfig() Config {
	return Config{
		BimodalBits: 12,
		GshareBits:  12,
		ChooserBits: 12,
		BTBEntries:  2048,
		BTBAssoc:    4,
		RASEntries:  32,
	}
}

// Predictor is the combined direction predictor, BTB and RAS.
type Predictor struct {
	cfg     Config
	bimodal []uint8
	gshare  []uint8
	chooser []uint8 // >=2 selects gshare
	history uint32  // global branch history register

	btb *btb
	ras *ras

	// Stats.
	DirLookups int64
	DirMisses  int64
	BTBLookups int64
	BTBMisses  int64
	RASPops    int64
	RASWrong   int64
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, 1<<cfg.BimodalBits),
		gshare:  make([]uint8, 1<<cfg.GshareBits),
		chooser: make([]uint8, 1<<cfg.ChooserBits),
		btb:     newBTB(cfg.BTBEntries, cfg.BTBAssoc),
		ras:     newRAS(cfg.RASEntries),
	}
	// Weakly-taken initial state predicts loops well from cold start.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 1 // weakly prefer bimodal
	}
	return p
}

// Reset restores the predictor to its post-New state (weakly-taken tables,
// empty history/BTB/RAS, zero counters) without reallocating, so pooled
// simulation machines can reuse it across runs.
func (p *Predictor) Reset() {
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 1
	}
	p.history = 0
	for i := range p.btb.entries {
		p.btb.entries[i] = btbEntry{}
	}
	p.btb.tick = 0
	p.ras.top = 0
	p.DirLookups, p.DirMisses = 0, 0
	p.BTBLookups, p.BTBMisses = 0, 0
	p.RASPops, p.RASWrong = 0, 0
}

func (p *Predictor) bimodalIdx(pc uint32) uint32 {
	return (pc >> 2) & (1<<p.cfg.BimodalBits - 1)
}

func (p *Predictor) gshareIdx(pc uint32) uint32 {
	return ((pc >> 2) ^ p.history) & (1<<p.cfg.GshareBits - 1)
}

func (p *Predictor) chooserIdx(pc uint32) uint32 {
	return (pc >> 2) & (1<<p.cfg.ChooserBits - 1)
}

// PredictDirection predicts a conditional branch at pc. The caller must
// later call UpdateDirection with the same pc and the actual outcome.
func (p *Predictor) PredictDirection(pc uint32) bool {
	p.DirLookups++
	bi := p.bimodal[p.bimodalIdx(pc)] >= 2
	gs := p.gshare[p.gshareIdx(pc)] >= 2
	if p.chooser[p.chooserIdx(pc)] >= 2 {
		return gs
	}
	return bi
}

// UpdateDirection trains the predictor with the branch's actual outcome and
// shifts the global history. It returns whether the pre-update prediction
// was correct (convenience for stats).
func (p *Predictor) UpdateDirection(pc uint32, taken bool) bool {
	bIdx, gIdx, cIdx := p.bimodalIdx(pc), p.gshareIdx(pc), p.chooserIdx(pc)
	bi := p.bimodal[bIdx] >= 2
	gs := p.gshare[gIdx] >= 2
	var pred bool
	if p.chooser[cIdx] >= 2 {
		pred = gs
	} else {
		pred = bi
	}

	// Train chooser toward whichever component was right (when they differ).
	if bi != gs {
		if gs == taken {
			p.chooser[cIdx] = inc2(p.chooser[cIdx])
		} else {
			p.chooser[cIdx] = dec2(p.chooser[cIdx])
		}
	}
	if taken {
		p.bimodal[bIdx] = inc2(p.bimodal[bIdx])
		p.gshare[gIdx] = inc2(p.gshare[gIdx])
	} else {
		p.bimodal[bIdx] = dec2(p.bimodal[bIdx])
		p.gshare[gIdx] = dec2(p.gshare[gIdx])
	}
	p.history = p.history<<1 | b2u(taken)

	if pred != taken {
		p.DirMisses++
	}
	return pred == taken
}

// PredictTarget looks up the BTB for the target of a taken control transfer
// at pc. ok is false on a BTB miss.
func (p *Predictor) PredictTarget(pc uint32) (target uint32, ok bool) {
	p.BTBLookups++
	t, ok := p.btb.lookup(pc)
	if !ok {
		p.BTBMisses++
	}
	return t, ok
}

// UpdateTarget installs or refreshes the BTB entry for pc.
func (p *Predictor) UpdateTarget(pc, target uint32) { p.btb.insert(pc, target) }

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(ret uint32) { p.ras.push(ret) }

// PopRAS predicts a return target. ok is false when the stack is empty.
func (p *Predictor) PopRAS() (uint32, bool) {
	p.RASPops++
	return p.ras.pop()
}

// NoteRASWrong counts a return misprediction (for stats).
func (p *Predictor) NoteRASWrong() { p.RASWrong++ }

// ClearStats zeroes the lookup/miss counters, keeping all trained state
// (tables, history, BTB, RAS). Used after functional warm-up so a measured
// window starts with clean stats but a hot predictor.
func (p *Predictor) ClearStats() {
	p.DirLookups, p.DirMisses = 0, 0
	p.BTBLookups, p.BTBMisses = 0, 0
	p.RASPops, p.RASWrong = 0, 0
}

// MispredictRate returns the fraction of direction lookups mispredicted.
func (p *Predictor) MispredictRate() float64 {
	if p.DirLookups == 0 {
		return 0
	}
	return float64(p.DirMisses) / float64(p.DirLookups)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// --- BTB ---

type btbEntry struct {
	valid  bool
	tag    uint32
	target uint32
	lru    uint64
}

// btb entries are stored flat and set-major; set indexing is mask/shift
// when the set count is a power of two (every practical configuration),
// avoiding two integer divisions per lookup on the fetch hot path.
type btb struct {
	entries  []btbEntry
	nsets    uint32
	assoc    int
	setMask  uint32 // nsets-1, used when setShift >= 0
	setShift int    // log2(nsets), or -1 when nsets is not a power of two
	tick     uint64
}

func newBTB(entries, assoc int) *btb {
	if assoc < 1 {
		assoc = 1
	}
	nsets := entries / assoc
	if nsets < 1 {
		nsets = 1
	}
	b := &btb{
		entries:  make([]btbEntry, nsets*assoc),
		nsets:    uint32(nsets),
		assoc:    assoc,
		setShift: -1,
	}
	if nsets&(nsets-1) == 0 {
		b.setMask = uint32(nsets - 1)
		sh := 0
		for 1<<sh != nsets {
			sh++
		}
		b.setShift = sh
	}
	return b
}

func (b *btb) index(pc uint32) (set uint32, tag uint32) {
	idx := pc >> 2
	if b.setShift >= 0 {
		return idx & b.setMask, idx >> uint(b.setShift)
	}
	return idx % b.nsets, idx / b.nsets
}

// set returns the ways of one set.
func (b *btb) set(set uint32) []btbEntry {
	i := int(set) * b.assoc
	return b.entries[i : i+b.assoc]
}

func (b *btb) lookup(pc uint32) (uint32, bool) {
	set, tag := b.index(pc)
	b.tick++
	s := b.set(set)
	for i := range s {
		e := &s[i]
		if e.valid && e.tag == tag {
			e.lru = b.tick
			return e.target, true
		}
	}
	return 0, false
}

func (b *btb) insert(pc, target uint32) {
	set, tag := b.index(pc)
	b.tick++
	s := b.set(set)
	victim := 0
	for i := range s {
		e := &s[i]
		if e.valid && e.tag == tag {
			e.target = target
			e.lru = b.tick
			return
		}
		if !e.valid {
			victim = i
			break
		}
		if e.lru < s[victim].lru {
			victim = i
		}
	}
	s[victim] = btbEntry{valid: true, tag: tag, target: target, lru: b.tick}
}

// --- RAS ---

type ras struct {
	stack []uint32
	top   int // number of live entries
}

func newRAS(depth int) *ras {
	if depth < 1 {
		depth = 1
	}
	return &ras{stack: make([]uint32, depth)}
}

func (r *ras) push(v uint32) {
	if r.top == len(r.stack) {
		// Overflow: shift down, losing the oldest entry.
		copy(r.stack, r.stack[1:])
		r.top--
	}
	r.stack[r.top] = v
	r.top++
}

func (r *ras) pop() (uint32, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top], true
}
