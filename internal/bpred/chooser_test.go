package bpred

import "testing"

// TestChooserPrefersBetterComponent: with two branches — one biased (good
// for bimodal) and one alternating (good for gshare) — the hybrid should
// track both near their component ceilings.
func TestChooserPrefersBetterComponent(t *testing.T) {
	p := New(DefaultConfig())
	biased, alt := uint32(0x100), uint32(0x204)
	// Interleave training so the history register sees both.
	for i := 0; i < 4000; i++ {
		p.UpdateDirection(biased, true)
		p.UpdateDirection(alt, i%2 == 0)
	}
	correct := map[uint32]int{}
	for i := 4000; i < 4400; i++ {
		if p.PredictDirection(biased) == true {
			correct[biased]++
		}
		p.UpdateDirection(biased, true)
		want := i%2 == 0
		if p.PredictDirection(alt) == want {
			correct[alt]++
		}
		p.UpdateDirection(alt, want)
	}
	if correct[biased] < 390 {
		t.Errorf("biased branch accuracy %d/400", correct[biased])
	}
	if correct[alt] < 380 {
		t.Errorf("alternating branch accuracy %d/400 — chooser failed to pick gshare", correct[alt])
	}
}

// TestHistoryIsolation: two different branch PCs must not destructively
// alias in the bimodal table at realistic sizes.
func TestHistoryIsolation(t *testing.T) {
	p := New(DefaultConfig())
	a, b := uint32(0x1000), uint32(0x1004)
	for i := 0; i < 64; i++ {
		p.UpdateDirection(a, true)
		p.UpdateDirection(b, false)
	}
	if !p.PredictDirection(a) || p.PredictDirection(b) {
		t.Error("adjacent branches alias destructively")
	}
}

func TestConfigSizes(t *testing.T) {
	cfg := DefaultConfig()
	// 24Kbit of 2-bit counters = 12K counters across three 4K tables.
	total := 1<<cfg.BimodalBits + 1<<cfg.GshareBits + 1<<cfg.ChooserBits
	if total*2 != 24*1024 {
		t.Errorf("direction state = %d bits, want 24Kbit (Table 1)", total*2)
	}
	if cfg.BTBEntries != 2048 || cfg.BTBAssoc != 4 || cfg.RASEntries != 32 {
		t.Error("BTB/RAS sizes don't match Table 1")
	}
}
