package bpred

import (
	"testing"
	"testing/quick"
)

func TestAlwaysTakenConverges(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint32(0x1000)
	for i := 0; i < 16; i++ {
		p.UpdateDirection(pc, true)
	}
	if !p.PredictDirection(pc) {
		t.Error("always-taken branch should predict taken")
	}
}

func TestAlwaysNotTakenConverges(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint32(0x1000)
	for i := 0; i < 16; i++ {
		p.UpdateDirection(pc, false)
	}
	if p.PredictDirection(pc) {
		t.Error("never-taken branch should predict not-taken")
	}
}

func TestLoopBranchAccuracy(t *testing.T) {
	// A loop branch taken 99 of 100 times: accuracy should be high.
	p := New(DefaultConfig())
	pc := uint32(0x2000)
	correct := 0
	total := 0
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 100; i++ {
			taken := i != 99
			if p.PredictDirection(pc) == taken {
				correct++
			}
			p.UpdateDirection(pc, taken)
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Errorf("loop branch accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// Alternating T/N/T/N pattern is hopeless for bimodal but trivial for
	// gshare + chooser. After warmup, accuracy should be near-perfect.
	p := New(DefaultConfig())
	pc := uint32(0x3000)
	// Warm up.
	for i := 0; i < 2000; i++ {
		p.UpdateDirection(pc, i%2 == 0)
	}
	correct := 0
	for i := 2000; i < 2200; i++ {
		taken := i%2 == 0
		if p.PredictDirection(pc) == taken {
			correct++
		}
		p.UpdateDirection(pc, taken)
	}
	if correct < 190 {
		t.Errorf("gshare should learn alternation: %d/200 correct", correct)
	}
}

func TestMispredictRateTracked(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint32(0x100)
	for i := 0; i < 100; i++ {
		p.UpdateDirection(pc, true)
	}
	if r := p.MispredictRate(); r > 0.2 {
		t.Errorf("mispredict rate = %.3f for always-taken, want small", r)
	}
}

func TestBTBHitAfterInsert(t *testing.T) {
	p := New(DefaultConfig())
	p.UpdateTarget(0x1000, 0x2000)
	tgt, ok := p.PredictTarget(0x1000)
	if !ok || tgt != 0x2000 {
		t.Errorf("BTB lookup = %#x,%v, want 0x2000,true", tgt, ok)
	}
	if _, ok := p.PredictTarget(0x1004); ok {
		t.Error("BTB should miss on unseen pc")
	}
}

func TestBTBReplacementLRU(t *testing.T) {
	// 8-entry, 2-way: 4 sets. PCs mapping to the same set evict LRU.
	b := newBTB(8, 2)
	set0 := func(i uint32) uint32 { return (i*4*4 + 0) } // stride of nsets*4 keeps set 0
	b.insert(set0(1), 0x100)
	b.insert(set0(2), 0x200)
	b.lookup(set0(1)) // touch 1, making 2 the LRU
	b.insert(set0(3), 0x300)
	if _, ok := b.lookup(set0(1)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := b.lookup(set0(2)); ok {
		t.Error("LRU entry should have been evicted")
	}
	if tgt, ok := b.lookup(set0(3)); !ok || tgt != 0x300 {
		t.Error("new entry missing")
	}
}

func TestBTBUpdateExisting(t *testing.T) {
	p := New(DefaultConfig())
	p.UpdateTarget(0x1000, 0x2000)
	p.UpdateTarget(0x1000, 0x3000)
	if tgt, _ := p.PredictTarget(0x1000); tgt != 0x3000 {
		t.Errorf("BTB update = %#x, want 0x3000", tgt)
	}
}

func TestRASLifo(t *testing.T) {
	r := newRAS(32)
	r.push(1)
	r.push(2)
	r.push(3)
	for _, want := range []uint32{3, 2, 1} {
		v, ok := r.pop()
		if !ok || v != want {
			t.Errorf("pop = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := r.pop(); ok {
		t.Error("pop from empty RAS should fail")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	r := newRAS(4)
	for i := uint32(1); i <= 6; i++ {
		r.push(i)
	}
	// Stack holds 3,4,5,6; pops must return 6,5,4,3.
	for _, want := range []uint32{6, 5, 4, 3} {
		v, ok := r.pop()
		if !ok || v != want {
			t.Fatalf("pop = %d,%v, want %d", v, ok, want)
		}
	}
	if _, ok := r.pop(); ok {
		t.Error("RAS should be empty after draining")
	}
}

func TestPredictorRASIntegration(t *testing.T) {
	p := New(DefaultConfig())
	p.PushRAS(0x4000)
	v, ok := p.PopRAS()
	if !ok || v != 0x4000 {
		t.Errorf("RAS roundtrip = %#x,%v", v, ok)
	}
	if p.RASPops != 1 {
		t.Errorf("RASPops = %d, want 1", p.RASPops)
	}
}

// Property: RAS behaves as a bounded LIFO — a push/pop sequence matches a
// reference slice implementation with oldest-drop semantics.
func TestRASProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r := newRAS(8)
		var ref []uint32
		for i, op := range ops {
			if op%3 != 0 { // push twice as often as pop
				v := uint32(i + 1)
				r.push(v)
				if len(ref) == 8 {
					ref = ref[1:]
				}
				ref = append(ref, v)
			} else {
				v, ok := r.pop()
				if len(ref) == 0 {
					if ok {
						return false
					}
				} else {
					want := ref[len(ref)-1]
					ref = ref[:len(ref)-1]
					if !ok || v != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BTB lookup after insert of the same pc returns the inserted
// target, for arbitrary word-aligned pcs.
func TestBTBInsertLookupProperty(t *testing.T) {
	f := func(pcs []uint32) bool {
		p := New(DefaultConfig())
		if len(pcs) > 8 {
			pcs = pcs[:8]
		}
		for _, pc := range pcs {
			pc &^= 3
			p.UpdateTarget(pc, pc+8)
			tgt, ok := p.PredictTarget(pc)
			if !ok || tgt != pc+8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
