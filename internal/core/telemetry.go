package core

import (
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"

	"repro/internal/simcache"
)

// This file is the sweep-telemetry layer: structured task lifecycle
// logging (log/slog), per-call cache-outcome attribution, expvar
// publication for the -httpaddr debug server, and the shared
// cache-counter printer used by the driver commands.

// telemetry is the process-wide structured logger for task lifecycle
// events. Nil (the default) disables telemetry entirely; drivers install
// a logger via SetTelemetry for -v runs.
var telemetry atomic.Pointer[slog.Logger]

// SetTelemetry installs (or, with nil, removes) the structured logger
// that receives sweep and task lifecycle events.
func SetTelemetry(l *slog.Logger) { telemetry.Store(l) }

// tlog returns the installed telemetry logger, or nil when telemetry is
// off. Callers nil-check so disabled telemetry costs one atomic load.
func tlog() *slog.Logger { return telemetry.Load() }

// Cache outcomes reported per series point (manifest and telemetry).
const (
	cacheHit    = "hit"    // answered from a completed cache entry
	cacheMiss   = "miss"   // this call ran the simulation
	cacheShared = "shared" // joined another task's in-flight simulation
	cacheTraced = "traced" // observed run: bypassed the result cache
	cacheNone   = "nocache"
)

// doNoted is Cache.Do plus outcome attribution for telemetry: it reports
// whether this call hit a completed entry, ran the computation, or joined
// another caller's in-flight computation. (A computation completing
// between the pre-check and Do is reported "shared" though the cache
// counted a hit; the distinction is cosmetic.)
func doNoted[K comparable, V any](c *simcache.Cache[K, V], key K, compute func() (V, error)) (V, string, error) {
	if _, ok := c.Get(key); ok {
		v, err := c.Do(key, compute)
		return v, cacheHit, err
	}
	ran := false
	v, err := c.Do(key, func() (V, error) {
		ran = true
		return compute()
	})
	outcome := cacheShared
	if ran || c.Disabled() {
		outcome = cacheMiss
	}
	return v, outcome, err
}

// FprintCacheStats prints the process-wide simulation-cache counters in
// the one format shared by every driver command's -cachestats flag.
func FprintCacheStats(w io.Writer) {
	c := Caches()
	fmt.Fprintf(w, "cache: benches %d entries %d hits %d misses %.1f MB; results %d entries %d hits (%d shared) %d misses\n",
		c.Benches.Entries, c.Benches.Hits+c.Benches.Shared, c.Benches.Misses, float64(c.Benches.Bytes)/(1<<20),
		c.Results.Entries, c.Results.Hits, c.Results.Shared, c.Results.Misses)
}

var expvarOnce sync.Once

// PublishExpvars exposes the simulation-cache counters as the expvar
// variable "simcache" (served at /debug/vars by obs.ServeDebug). Safe to
// call more than once.
func PublishExpvars() {
	expvarOnce.Do(func() {
		expvar.Publish("simcache", expvar.Func(func() any { return Caches() }))
	})
}
