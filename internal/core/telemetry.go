package core

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/simcache"
)

// This file is the sweep-telemetry layer: structured task lifecycle
// logging (log/slog), per-call cache-outcome attribution, expvar
// publication for the -httpaddr debug server, the /metrics registry
// bootstrap, and the shared cache-counter printer used by the driver
// commands.

// telemetry is the process-wide structured logger for task lifecycle
// events. Nil (the default) disables telemetry entirely; drivers install
// a logger via SetTelemetry for -v runs.
var telemetry atomic.Pointer[slog.Logger]

// SetTelemetry installs (or, with nil, removes) the structured logger
// that receives sweep and task lifecycle events.
func SetTelemetry(l *slog.Logger) { telemetry.Store(l) }

// tlog returns the installed telemetry logger, or nil when telemetry is
// off. Callers nil-check so disabled telemetry costs one atomic load.
func tlog() *slog.Logger { return telemetry.Load() }

// Cache outcomes reported per series point (manifest and telemetry). The
// first three match the simcache outcome strings, so DoCtx results pass
// through unchanged.
const (
	cacheHit    = simcache.Hit    // answered from a completed cache entry
	cacheMiss   = simcache.Miss   // this call ran the simulation
	cacheShared = simcache.Shared // joined another task's in-flight simulation
	cacheTraced = "traced"        // observed run: bypassed the result cache
	cacheNone   = "nocache"
)

// doNoted is Cache.DoCtx under its telemetry alias: it returns the cache
// outcome ("hit", "miss", "shared") alongside the value, emits a cache
// span when tracing is on, and hands the computation the span's context
// so its own phase spans nest under the cache lookup. A disabled cache
// reports every call as a miss.
func doNoted[K comparable, V any](ctx context.Context, c *simcache.Cache[K, V], key K, compute func(context.Context) (V, error)) (V, string, error) {
	return c.DoCtx(ctx, key, compute)
}

// FprintCacheStats prints the process-wide simulation-cache counters in
// the one format shared by every driver command's -cachestats flag.
func FprintCacheStats(w io.Writer) {
	c := Caches()
	fmt.Fprintf(w, "cache: benches %d entries %d hits %d misses %.1f MB; results %d entries %d hits (%d shared) %d misses\n",
		c.Benches.Entries, c.Benches.Hits+c.Benches.Shared, c.Benches.Misses, float64(c.Benches.Bytes)/(1<<20),
		c.Results.Entries, c.Results.Hits, c.Results.Shared, c.Results.Misses)
}

var expvarOnce sync.Once

// PublishExpvars exposes the simulation-cache counters as the expvar
// variable "simcache" (served at /debug/vars by obs.ServeDebug). Safe to
// call more than once. Each scrape takes one consistent snapshot per
// cache (Cache.Stats reads all counters in a single critical section),
// so a mid-sweep scrape never observes a half-updated counter set.
func PublishExpvars() {
	expvarOnce.Do(func() {
		expvar.Publish("simcache", expvar.Func(func() any {
			snap := Caches()
			return snap
		}))
	})
}

// sweepSeries holds the sweep-level metric instruments. The fields stay
// nil until EnableMetrics runs; all instrument methods are no-ops on nil,
// so feeding them needs no guards.
var sweepSeries struct {
	sweeps      *metrics.Counter
	tasksDone   *metrics.Counter
	tasksFailed *metrics.Counter
	taskSeconds *metrics.Histogram
}

// taskWallBuckets covers task wall times from sub-millisecond cache hits
// to multi-minute uncached simulations.
var taskWallBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300}

var enableMetricsOnce sync.Once

// EnableMetrics installs the process-wide metrics registry (served at
// /metrics by obs.ServeDebug) and registers the core and pipeline series
// on it: sweep/task counters, the task wall-time histogram, per-cache
// lookup counters, and the simulation cycle/uop/instruction totals.
// Idempotent; returns the installed registry.
func EnableMetrics() *metrics.Registry {
	enableMetricsOnce.Do(func() {
		reg := metrics.NewRegistry()
		registerCacheSeries(reg, "benches", benchCache.Stats)
		registerCacheSeries(reg, "results", resultCache.Stats)
		sweepSeries.sweeps = reg.Counter("mg_sweeps_total", "experiment sweeps started")
		sweepSeries.tasksDone = reg.Counter("mg_sweep_tasks_total",
			"sweep (workload, series) tasks finished, by final state", metrics.L("state", "done"))
		sweepSeries.tasksFailed = reg.Counter("mg_sweep_tasks_total",
			"sweep (workload, series) tasks finished, by final state", metrics.L("state", "error"))
		sweepSeries.taskSeconds = reg.Histogram("mg_task_wall_seconds",
			"wall time per sweep task", taskWallBuckets)
		pipeline.InstallMetrics(reg)
		obs.InstallMetrics(reg)
		metrics.InstallHealthMetrics(reg)
		metrics.Install(reg)
	})
	return metrics.Default()
}

// registerCacheSeries exposes one simulation cache's counters: lookup
// outcomes as counters, retained entries/bytes as gauges. Values are read
// from a consistent Stats snapshot at scrape time — no per-operation cost.
func registerCacheSeries(reg *metrics.Registry, name string, stats func() simcache.Counters) {
	cacheL := metrics.L("cache", name)
	for _, oc := range []struct {
		outcome string
		get     func(simcache.Counters) int64
	}{
		{"hit", func(c simcache.Counters) int64 { return c.Hits }},
		{"shared", func(c simcache.Counters) int64 { return c.Shared }},
		{"miss", func(c simcache.Counters) int64 { return c.Misses }},
	} {
		get := oc.get
		reg.CounterFunc("mg_cache_lookups_total", "simulation-cache lookups by outcome",
			func() float64 { return float64(get(stats())) }, cacheL, metrics.L("outcome", oc.outcome))
	}
	reg.GaugeFunc("mg_cache_entries", "simulation-cache entries retained",
		func() float64 { return float64(stats().Entries) }, cacheL)
	reg.GaugeFunc("mg_cache_bytes", "estimated simulation-cache payload bytes",
		func() float64 { return float64(stats().Bytes) }, cacheL)
}

// noteTaskMetrics feeds one finished task into the sweep series; no-ops
// until EnableMetrics has run.
func noteTaskMetrics(mt obs.ManifestTask) {
	if mt.Error != "" {
		sweepSeries.tasksFailed.Inc()
	} else {
		sweepSeries.tasksDone.Inc()
	}
	sweepSeries.taskSeconds.Observe(mt.WallMS / 1e3)
}
