package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/selector"
)

// obsSweep runs a tiny observed sweep (one workload, a singleton series and
// a Slack-Dynamic series) and returns the observability files it produced,
// keyed by name, minus the manifest (whose wall times legitimately vary).
func obsSweep(t *testing.T, workers int, nocache bool) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	opts := Options{
		Input:     "small",
		Workloads: []string{"comm.crc32"},
		Workers:   workers,
		NoCache:   nocache,
		Obs:       &obs.Options{Dir: dir, Pipetrace: true, IntervalEvery: 500},
	}
	red := pipeline.Reduced()
	_, err := RunSweep("obs determinism", opts, []SeriesSpec{
		{Label: "no-mg", Cfg: red},
		{Label: "Slack-Dynamic", Cfg: red, Sel: selector.SlackDynamic()},
	})
	if err != nil {
		t.Fatal(err)
	}

	man, err := obs.ReadManifest(filepath.Join(dir, "obs_determinism.manifest.json"))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(man.Tasks) != 2 {
		t.Fatalf("manifest has %d tasks, want 2", len(man.Tasks))
	}
	for _, task := range man.Tasks {
		wantCache := cacheTraced
		if nocache {
			wantCache = cacheNone
		}
		if task.Cache != wantCache {
			t.Errorf("task %s/%s cache outcome %q, want %q", task.Workload, task.Series, task.Cache, wantCache)
		}
		if len(task.Files) != 2 {
			t.Errorf("task %s/%s produced %d files, want pipetrace+intervals", task.Workload, task.Series, len(task.Files))
		}
	}

	files := make(map[string][]byte)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".manifest.json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", e.Name())
		}
		files[e.Name()] = data
	}
	if len(files) != 4 {
		t.Errorf("got %d trace files %v, want 4 (2 series x pipetrace+intervals)", len(files), keys(files))
	}
	return files
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func sameFiles(t *testing.T, label string, a, b map[string][]byte) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: file sets differ: %v vs %v", label, keys(a), keys(b))
	}
	for name, data := range a {
		other, ok := b[name]
		if !ok {
			t.Errorf("%s: %s missing from second run", label, name)
			continue
		}
		if string(data) != string(other) {
			t.Errorf("%s: %s differs between runs (%d vs %d bytes)", label, name, len(data), len(other))
		}
	}
}

// Trace and interval outputs must be byte-identical regardless of worker
// count and cache mode: each simulation is single-threaded deterministic,
// and observed runs bypass the result cache so a hit can never swallow the
// trace side effect.
func TestObservedSweepDeterministic(t *testing.T) {
	base := obsSweep(t, 1, false)
	sameFiles(t, "workers 1 vs 4", base, obsSweep(t, 4, false))
	sameFiles(t, "cached vs -nocache", base, obsSweep(t, 2, true))

	SetCachingDisabled(true)
	defer SetCachingDisabled(false)
	sameFiles(t, "cached vs caches disabled", base, obsSweep(t, 2, false))
}
