package core

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/selector"
)

func prep(t *testing.T, name string) *Bench {
	t.Helper()
	b, err := PrepareByName(name, "small")
	if err != nil {
		t.Fatalf("Prepare(%s): %v", name, err)
	}
	return b
}

func TestPrepareVerifiesChecksum(t *testing.T) {
	b := prep(t, "comm.crc32")
	if b.Prog == nil || len(b.Trace) == 0 || len(b.Cands) == 0 {
		t.Error("bench incomplete")
	}
	// Frequencies must sum to the trace length.
	var sum int64
	for _, f := range b.Freq {
		sum += f
	}
	if sum != int64(len(b.Trace)) {
		t.Errorf("freq sum %d != trace %d", sum, len(b.Trace))
	}
}

func TestPrepareUnknown(t *testing.T) {
	if _, err := PrepareByName("nope", "small"); err == nil {
		t.Error("unknown workload should error")
	}
	if _, err := PrepareByName("comm.crc32", "nope"); err == nil {
		t.Error("unknown input should error")
	}
}

func TestProfileCached(t *testing.T) {
	b := prep(t, "embed.bitcount")
	p1, err := b.Profile(pipeline.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Profile(pipeline.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("profile should be cached per config")
	}
	p3, err := b.Profile(pipeline.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("different configs must profile separately")
	}
}

func TestSelectorsProduceNestedPools(t *testing.T) {
	b := prep(t, "media.adpcm_enc")
	prof, err := b.Profile(pipeline.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	selAll := b.Select(selector.StructAll(), nil)
	selNone := b.Select(selector.StructNone(), nil)
	selBounded := b.Select(selector.StructBounded(), nil)
	selSP := b.Select(selector.SlackProfile(), prof)
	if !(selNone.Coverage() <= selBounded.Coverage()+1e-9 && selBounded.Coverage() <= selAll.Coverage()+1e-9) {
		t.Errorf("coverage ordering broken: none=%.3f bounded=%.3f all=%.3f",
			selNone.Coverage(), selBounded.Coverage(), selAll.Coverage())
	}
	if selSP.Coverage() > selAll.Coverage()+1e-9 {
		t.Errorf("Slack-Profile coverage %.3f exceeds Struct-All %.3f", selSP.Coverage(), selAll.Coverage())
	}
}

func TestEvaluateRuns(t *testing.T) {
	b := prep(t, "comm.ipchk")
	st, chosen, err := b.Evaluate(selector.SlackProfile(), pipeline.Reduced(), pipeline.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	if st.Instrs != int64(len(b.Trace)) {
		t.Errorf("instrs %d != trace %d", st.Instrs, len(b.Trace))
	}
	if chosen == nil {
		t.Error("no selection returned")
	}
}

func TestRunSweepSmall(t *testing.T) {
	opts := Options{Input: "small", Suites: []string{"comm"}, Workers: 2}
	red := pipeline.Reduced()
	res, err := RunSweep("test", opts, []SeriesSpec{
		{Label: "no-mg", Cfg: red},
		{Label: "sp", Cfg: red, Sel: selector.SlackProfile()},
	})
	if err != nil {
		t.Fatal(err)
	}
	nomg := res.Perf.Get("no-mg")
	sp := res.Perf.Get("sp")
	if len(nomg.Values) != 19 || len(sp.Values) != 19 {
		t.Fatalf("series sizes %d/%d, want 19 (comm suite)", len(nomg.Values), len(sp.Values))
	}
	if sp.Mean() <= nomg.Mean() {
		t.Errorf("Slack-Profile (%.3f) should beat no-MG (%.3f) on the reduced machine",
			sp.Mean(), nomg.Mean())
	}
	cov := res.Coverage.Get("sp")
	if cov.Mean() <= 0 {
		t.Error("Slack-Profile coverage should be positive")
	}
}

func TestCrossInputSweep(t *testing.T) {
	opts := Options{Input: "large", Suites: []string{"embed"}, Workers: 2}
	red := pipeline.Reduced()
	res, err := RunSweep("cross", opts, []SeriesSpec{
		{Label: "self", Cfg: red, Sel: selector.SlackProfile()},
		{Label: "cross", Cfg: red, Sel: selector.SlackProfile(), ProfInput: "small"},
	})
	if err != nil {
		t.Fatal(err)
	}
	self, cross := res.Perf.Get("self"), res.Perf.Get("cross")
	// Robustness: cross-trained within 10% of self-trained on average.
	if d := cross.Mean() / self.Mean(); d < 0.9 || d > 1.1 {
		t.Errorf("cross/self = %.3f, profiles not robust", d)
	}
}

func TestLimitStudySmallPool(t *testing.T) {
	lr, err := LimitStudy("media.adpcm_enc", "small", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Candidates) != 10 {
		t.Fatalf("top pool = %d, want 10", len(lr.Candidates))
	}
	if len(lr.Points) != 1024 {
		t.Fatalf("points = %d, want 1024", len(lr.Points))
	}
	// Empty mask has zero coverage; full mask the maximum coverage.
	if lr.Points[0].Coverage != 0 {
		t.Error("empty set should have zero coverage")
	}
	full := lr.Points[1023]
	for _, pt := range lr.Points {
		if pt.Coverage > full.Coverage+1e-9 {
			t.Error("no subset can exceed the full set's coverage")
		}
	}
	// Best is at least as good as every highlighted choice.
	for name, mask := range lr.Choices {
		if lr.Points[mask].RelPerf > lr.Best.RelPerf+1e-9 {
			t.Errorf("%s outperforms Best", name)
		}
	}
	// Struct-All must be the full mask.
	if lr.Choices["Struct-All"] != 1023 {
		t.Errorf("Struct-All mask = %b, want all ones", lr.Choices["Struct-All"])
	}
}

func TestTopDisjoint(t *testing.T) {
	b := prep(t, "comm.mix")
	top := topDisjoint(b, 10)
	if len(top) == 0 {
		t.Fatal("no disjoint candidates")
	}
	for i := range top {
		for j := i + 1; j < len(top); j++ {
			if top[i].Overlaps(top[j]) {
				t.Errorf("candidates %d and %d overlap", i, j)
			}
		}
		if b.Freq[top[i].Start] == 0 {
			t.Error("never-executed candidate in top pool")
		}
	}
}
