package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/selector"
	"repro/internal/stats"
)

// smallSweepOpts restricts a sweep to one suite on the small input to keep
// cache tests fast.
func smallSweepOpts() Options {
	return Options{Input: "small", Suites: []string{"comm"}}
}

func smallSpecs() []SeriesSpec {
	red := pipeline.Reduced()
	return []SeriesSpec{
		{Label: "no mini-graphs", Cfg: red},
		{Label: "Struct-All", Cfg: red, Sel: selector.StructAll()},
		{Label: "Slack-Profile", Cfg: red, Sel: selector.SlackProfile()},
	}
}

// TestPrepareExactlyOnceAcrossSweeps asserts the headline cache property:
// repeated sweeps (as `mgreport -exp all` issues) prepare each workload
// exactly once and re-simulate nothing.
func TestPrepareExactlyOnceAcrossSweeps(t *testing.T) {
	ResetCaches()
	opts := smallSweepOpts()
	nWorkloads := len(opts.workloads())
	if nWorkloads == 0 {
		t.Fatal("no workloads in suite")
	}

	first, err := RunSweep("first", opts, smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	c := Caches()
	if got := c.Benches.Misses; got != int64(nWorkloads) {
		t.Errorf("after first sweep: %d bench preparations, want %d", got, nWorkloads)
	}
	resultMisses := c.Results.Misses
	if resultMisses == 0 {
		t.Fatal("first sweep should populate the result cache")
	}

	second, err := RunSweep("second", opts, smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	c = Caches()
	if got := c.Benches.Misses; got != int64(nWorkloads) {
		t.Errorf("second sweep re-prepared workloads: %d preparations, want %d", got, nWorkloads)
	}
	if c.Results.Misses != resultMisses {
		t.Errorf("second sweep re-simulated: %d result misses, want %d", c.Results.Misses, resultMisses)
	}
	if c.Results.Hits == 0 {
		t.Error("second sweep should hit the result cache")
	}
	assertSweepsEqual(t, first, second)
}

// TestCachedMatchesUncached asserts the correctness property behind the
// whole service layer: caching changes nothing about the numbers.
func TestCachedMatchesUncached(t *testing.T) {
	ResetCaches()
	opts := smallSweepOpts()
	cached, err := RunSweep("cached", opts, smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	uncachedOpts := opts
	uncachedOpts.NoCache = true
	uncached, err := RunSweep("uncached", uncachedOpts, smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, cached, uncached)
}

// TestConcurrentSweepsShareCache runs two identical sweeps concurrently
// (run under -race): singleflight must dedupe their work and both must see
// identical results.
func TestConcurrentSweepsShareCache(t *testing.T) {
	ResetCaches()
	opts := smallSweepOpts()
	nWorkloads := int64(len(opts.workloads()))
	var wg sync.WaitGroup
	results := make([]*SweepResult, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunSweep("concurrent", opts, smallSpecs())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	assertSweepsEqual(t, results[0], results[1])
	c := Caches()
	if c.Benches.Misses != nWorkloads {
		t.Errorf("concurrent sweeps prepared %d benches, want %d (singleflight)", c.Benches.Misses, nWorkloads)
	}
}

func assertSweepsEqual(t *testing.T, a, b *SweepResult) {
	t.Helper()
	assertReportsEqual(t, "perf", a.Perf, b.Perf)
	assertReportsEqual(t, "coverage", a.Coverage, b.Coverage)
}

func assertReportsEqual(t *testing.T, what string, a, b *stats.Report) {
	t.Helper()
	if len(a.Series) != len(b.Series) {
		t.Fatalf("%s: series count %d != %d", what, len(a.Series), len(b.Series))
	}
	for i, sa := range a.Series {
		sb := b.Series[i]
		if sa.Label != sb.Label {
			t.Fatalf("%s[%d]: label %q != %q", what, i, sa.Label, sb.Label)
		}
		if len(sa.Values) != len(sb.Values) {
			t.Fatalf("%s[%s]: %d values != %d", what, sa.Label, len(sa.Values), len(sb.Values))
		}
		for prog, va := range sa.Values {
			vb, ok := sb.Values[prog]
			if !ok {
				t.Fatalf("%s[%s]: missing %s", what, sa.Label, prog)
			}
			// Bit-identical, not approximately equal: the simulation is
			// deterministic and the cache must not perturb it.
			if math.Float64bits(va) != math.Float64bits(vb) {
				t.Errorf("%s[%s][%s]: %v != %v", what, sa.Label, prog, va, vb)
			}
		}
	}
}
