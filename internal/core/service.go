package core

import (
	"context"
	"fmt"
	"reflect"

	"repro/internal/emu"
	"repro/internal/metrics"
	"repro/internal/minigraph"
	"repro/internal/pipeline"
	"repro/internal/selector"
	"repro/internal/simcache"
	"repro/internal/slack"
	"repro/internal/workload"
)

// This file is the memoizing simulation service layer. Experiment figures
// overlap heavily: the same workload preparation, fully-provisioned
// baseline simulation, slack profile, and even whole series (e.g.
// Struct-All on the reduced machine) appear in several sweeps. The
// process-wide caches below make every distinct piece of work happen
// exactly once per process, concurrency-safe and singleflight-deduplicated,
// while keeping results bit-identical to uncached execution (all simulation
// paths are deterministic).

type benchKey struct {
	Workload string
	Input    string
}

var (
	// benchCache memoizes workload preparation (build, functional
	// emulation, candidate enumeration) per (workload, input).
	benchCache = simcache.Named[benchKey, *Bench]("benches")

	// resultCache memoizes timing-simulation outcomes per fingerprint of
	// everything that determines them (workload, input, machine config,
	// selector identity, profile provenance, enumeration limits, MGT
	// budget).
	resultCache = simcache.Named[simcache.Key, *pipeline.Stats]("results")

	// candsCache memoizes non-default candidate enumerations (ablations).
	candsCache = simcache.Named[simcache.Key, []*minigraph.Candidate]("cands")
)

func init() {
	recSize := int64(reflect.TypeOf(emu.Rec{}).Size())
	benchCache.SizeFunc = func(b *Bench) int64 {
		return int64(len(b.Trace))*recSize + int64(len(b.Freq))*8
	}
	statsSize := int64(reflect.TypeOf(pipeline.Stats{}).Size())
	resultCache.SizeFunc = func(*pipeline.Stats) int64 { return statsSize }
}

// CacheCounters reports the activity of the simulation caches.
type CacheCounters struct {
	Benches simcache.Counters
	Results simcache.Counters
}

// Caches returns a snapshot of the process-wide cache counters.
func Caches() CacheCounters {
	return CacheCounters{Benches: benchCache.Stats(), Results: resultCache.Stats()}
}

// ResetCaches drops all cached benches and results (tests, memory
// pressure).
func ResetCaches() {
	benchCache.Reset()
	resultCache.Reset()
	candsCache.Reset()
}

// SetCachingDisabled bypasses all process-wide caches (the -nocache escape
// hatch for timing-accuracy debugging).
func SetCachingDisabled(d bool) {
	benchCache.SetDisabled(d)
	resultCache.SetDisabled(d)
	candsCache.SetDisabled(d)
}

// PrepareShared is Prepare through the process-wide bench cache: each
// (workload, input) pair is built and functionally emulated exactly once
// per process, no matter how many sweeps request it.
func PrepareShared(w *workload.Workload, input string) (*Bench, error) {
	return PrepareSharedCtx(context.Background(), w, input)
}

// PrepareSharedCtx is PrepareShared with the caller's context threaded
// through: the bench-cache lookup and, on a miss, the preparation itself
// appear as spans in exported traces.
func PrepareSharedCtx(ctx context.Context, w *workload.Workload, input string) (*Bench, error) {
	b, _, err := benchCache.DoCtx(ctx, benchKey{w.Name, input}, func(ctx context.Context) (*Bench, error) {
		_, sp := metrics.StartSpan(ctx, "prepare",
			metrics.L("workload", w.Name), metrics.L("input", input))
		defer sp.End()
		return Prepare(w, input)
	})
	return b, err
}

// PrepareSharedByName is PrepareShared by workload name.
func PrepareSharedByName(name, input string) (*Bench, error) {
	w := workload.Find(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	return PrepareShared(w, input)
}

// selIdentity is the fingerprintable identity of a selection policy: the
// policy name plus its hardware-monitor options (two policies never share
// a name, but hashing Dyn too costs nothing and guards refactors).
type selIdentity struct {
	Name string
	Dyn  selector.DynOptions
}

func identityOf(sel *selector.Selector) selIdentity {
	return selIdentity{Name: sel.Name(), Dyn: sel.Dyn}
}

// sampleIdentity normalizes a sampling spec to the fields that determine
// the estimate: the worker count only changes who simulates a window, never
// the result (see TestRepresentativeWorkersDeterministic), so it must not
// fragment the result cache.
func sampleIdentity(s pipeline.SampleSpec) pipeline.SampleSpec {
	s.Workers = 0
	return s
}

// singletonStats returns the cached singleton (no mini-graphs) timing of
// bench b on cfg. sample selects low-fidelity estimation (nil = full
// detail); sampled results are cached under distinct keys so an estimate
// can never answer for an exact run.
func singletonStats(ctx context.Context, b *Bench, cfg pipeline.Config, sample *pipeline.SampleSpec) (*pipeline.Stats, error) {
	st, _, err := singletonStatsNoted(ctx, b, cfg, sample)
	return st, err
}

// singletonStatsNoted is singletonStats plus the cache outcome for
// telemetry.
func singletonStatsNoted(ctx context.Context, b *Bench, cfg pipeline.Config, sample *pipeline.SampleSpec) (*pipeline.Stats, string, error) {
	key := simcache.Fingerprint("singleton", b.Workload.Name, b.Input, cfg)
	if sample != nil {
		key = simcache.Fingerprint("singleton-sampled", b.Workload.Name, b.Input, cfg, sampleIdentity(*sample))
	}
	return doNoted(ctx, resultCache, key, func(ctx context.Context) (*pipeline.Stats, error) {
		_, sp := metrics.StartSpan(ctx, "simulate",
			metrics.L("workload", b.Workload.Name), metrics.L("config", cfg.Name))
		defer sp.End()
		if sample != nil {
			return b.RunSampled(cfg, nil, nil, *sample)
		}
		return b.RunSingleton(cfg)
	})
}

// deriveSelection performs the selection stage of one series point through
// the shared caches: the slack profile (possibly on a cross-input bench),
// the candidate pool under limits, the policy filter, and the final
// budgeted selection. profInput == "" means self-trained (b's own input).
func deriveSelection(ctx context.Context, b *Bench, sel *selector.Selector, profCfg pipeline.Config, profInput string, limits minigraph.Limits, selCfg minigraph.SelectConfig) (*minigraph.Selection, error) {
	var prof *slack.Profile
	if sel.NeedsProfile() {
		pctx, psp := metrics.StartSpan(ctx, "profile",
			metrics.L("workload", b.Workload.Name), metrics.L("config", profCfg.Name))
		p, err := collectProfile(pctx, b, profCfg, profInput)
		psp.End()
		if err != nil {
			return nil, err
		}
		prof = p
	}
	cands := b.Cands
	if limits != minigraph.DefaultLimits() {
		c, err := enumerateShared(ctx, b, limits)
		if err != nil {
			return nil, err
		}
		cands = c
	}
	_, ssp := metrics.StartSpan(ctx, "select",
		metrics.L("workload", b.Workload.Name), metrics.L("policy", sel.Name()))
	defer ssp.End()
	pool := sel.Pool(b.Prog, cands, prof)
	return minigraph.Select(b.Prog, pool, b.Freq, selCfg), nil
}

// collectProfile resolves the profiling bench (possibly cross-input) and
// returns its slack profile on profCfg.
func collectProfile(ctx context.Context, b *Bench, profCfg pipeline.Config, profInput string) (*slack.Profile, error) {
	profBench := b
	if profInput != "" && profInput != b.Input {
		// Cross-input robustness: collect the profile on the other
		// input's bench (static indices align — the code is
		// identical, only the data differs).
		pb, err := PrepareSharedCtx(ctx, b.Workload, profInput)
		if err != nil {
			return nil, err
		}
		profBench = pb
	}
	return profBench.ProfileCtx(ctx, profCfg)
}

// evalStats returns the cached outcome of one experiment series point:
// select with sel (profiling on profCfg over profInput where needed) and
// run on runCfg. limits and selCfg are the candidate-enumeration and MGT
// budget knobs (pass the defaults for non-ablation series, so equal work
// dedupes across figure and ablation drivers).
func evalStats(ctx context.Context, b *Bench, sel *selector.Selector, profCfg pipeline.Config, profInput string, runCfg pipeline.Config, limits minigraph.Limits, selCfg minigraph.SelectConfig) (*pipeline.Stats, error) {
	st, _, err := evalStatsNoted(ctx, b, sel, profCfg, profInput, runCfg, limits, selCfg, nil)
	return st, err
}

// evalStatsNoted is evalStats plus the cache outcome for telemetry and a
// sampling spec (nil = full detail). Sampling applies only to the final
// timing run — profiling and selection always run exactly, so a sampled
// series evaluates the same mini-graph set as a detailed one.
func evalStatsNoted(ctx context.Context, b *Bench, sel *selector.Selector, profCfg pipeline.Config, profInput string, runCfg pipeline.Config, limits minigraph.Limits, selCfg minigraph.SelectConfig, sample *pipeline.SampleSpec) (*pipeline.Stats, string, error) {
	if profInput == "" {
		profInput = b.Input
	}
	key := simcache.Fingerprint("eval", b.Workload.Name, b.Input,
		identityOf(sel), profCfg, profInput, runCfg, limits, selCfg)
	if sample != nil {
		key = simcache.Fingerprint("eval-sampled", b.Workload.Name, b.Input,
			identityOf(sel), profCfg, profInput, runCfg, limits, selCfg, sampleIdentity(*sample))
	}
	return doNoted(ctx, resultCache, key, func(ctx context.Context) (*pipeline.Stats, error) {
		chosen, err := deriveSelection(ctx, b, sel, profCfg, profInput, limits, selCfg)
		if err != nil {
			return nil, err
		}
		_, sp := metrics.StartSpan(ctx, "simulate",
			metrics.L("workload", b.Workload.Name), metrics.L("config", runCfg.Name),
			metrics.L("policy", sel.Name()))
		defer sp.End()
		if sample != nil {
			return b.RunSampled(runCfg, sel, chosen, *sample)
		}
		return b.Run(runCfg, sel, chosen)
	})
}

// TaskKey returns the content-addressed fingerprint of one series point —
// the same key singletonStatsNoted/evalStatsNoted file the result under
// (with default enumeration limits and MGT budget), exported so run-ledger
// records carry the identity the cache uses. sel == nil means singleton
// execution; profInput == "" means self-trained; sample == nil means full
// detail (sampled estimates live under distinct keys).
func TaskKey(b *Bench, sel *selector.Selector, profCfg pipeline.Config, profInput string, runCfg pipeline.Config, sample *pipeline.SampleSpec) simcache.Key {
	if sel == nil {
		if sample != nil {
			return simcache.Fingerprint("singleton-sampled", b.Workload.Name, b.Input, runCfg, sampleIdentity(*sample))
		}
		return simcache.Fingerprint("singleton", b.Workload.Name, b.Input, runCfg)
	}
	if profInput == "" {
		profInput = b.Input
	}
	if sample != nil {
		return simcache.Fingerprint("eval-sampled", b.Workload.Name, b.Input,
			identityOf(sel), profCfg, profInput, runCfg,
			minigraph.DefaultLimits(), minigraph.DefaultSelectConfig(), sampleIdentity(*sample))
	}
	return simcache.Fingerprint("eval", b.Workload.Name, b.Input,
		identityOf(sel), profCfg, profInput, runCfg,
		minigraph.DefaultLimits(), minigraph.DefaultSelectConfig())
}

// enumerateShared returns the cached candidate pool of b under non-default
// enumeration limits.
func enumerateShared(ctx context.Context, b *Bench, limits minigraph.Limits) ([]*minigraph.Candidate, error) {
	key := simcache.Fingerprint("cands", b.Workload.Name, b.Input, limits)
	c, _, err := candsCache.DoCtx(ctx, key, func(context.Context) ([]*minigraph.Candidate, error) {
		return minigraph.Enumerate(b.Prog, limits), nil
	})
	return c, err
}
