package core

import (
	"fmt"
	"reflect"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/pipeline"
	"repro/internal/selector"
	"repro/internal/simcache"
	"repro/internal/slack"
	"repro/internal/workload"
)

// This file is the memoizing simulation service layer. Experiment figures
// overlap heavily: the same workload preparation, fully-provisioned
// baseline simulation, slack profile, and even whole series (e.g.
// Struct-All on the reduced machine) appear in several sweeps. The
// process-wide caches below make every distinct piece of work happen
// exactly once per process, concurrency-safe and singleflight-deduplicated,
// while keeping results bit-identical to uncached execution (all simulation
// paths are deterministic).

type benchKey struct {
	Workload string
	Input    string
}

var (
	// benchCache memoizes workload preparation (build, functional
	// emulation, candidate enumeration) per (workload, input).
	benchCache = simcache.New[benchKey, *Bench]()

	// resultCache memoizes timing-simulation outcomes per fingerprint of
	// everything that determines them (workload, input, machine config,
	// selector identity, profile provenance, enumeration limits, MGT
	// budget).
	resultCache = simcache.New[simcache.Key, *pipeline.Stats]()

	// candsCache memoizes non-default candidate enumerations (ablations).
	candsCache = simcache.New[simcache.Key, []*minigraph.Candidate]()
)

func init() {
	recSize := int64(reflect.TypeOf(emu.Rec{}).Size())
	benchCache.SizeFunc = func(b *Bench) int64 {
		return int64(len(b.Trace))*recSize + int64(len(b.Freq))*8
	}
	statsSize := int64(reflect.TypeOf(pipeline.Stats{}).Size())
	resultCache.SizeFunc = func(*pipeline.Stats) int64 { return statsSize }
}

// CacheCounters reports the activity of the simulation caches.
type CacheCounters struct {
	Benches simcache.Counters
	Results simcache.Counters
}

// Caches returns a snapshot of the process-wide cache counters.
func Caches() CacheCounters {
	return CacheCounters{Benches: benchCache.Stats(), Results: resultCache.Stats()}
}

// ResetCaches drops all cached benches and results (tests, memory
// pressure).
func ResetCaches() {
	benchCache.Reset()
	resultCache.Reset()
	candsCache.Reset()
}

// SetCachingDisabled bypasses all process-wide caches (the -nocache escape
// hatch for timing-accuracy debugging).
func SetCachingDisabled(d bool) {
	benchCache.SetDisabled(d)
	resultCache.SetDisabled(d)
	candsCache.SetDisabled(d)
}

// PrepareShared is Prepare through the process-wide bench cache: each
// (workload, input) pair is built and functionally emulated exactly once
// per process, no matter how many sweeps request it.
func PrepareShared(w *workload.Workload, input string) (*Bench, error) {
	return benchCache.Do(benchKey{w.Name, input}, func() (*Bench, error) {
		return Prepare(w, input)
	})
}

// PrepareSharedByName is PrepareShared by workload name.
func PrepareSharedByName(name, input string) (*Bench, error) {
	w := workload.Find(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	return PrepareShared(w, input)
}

// selIdentity is the fingerprintable identity of a selection policy: the
// policy name plus its hardware-monitor options (two policies never share
// a name, but hashing Dyn too costs nothing and guards refactors).
type selIdentity struct {
	Name string
	Dyn  selector.DynOptions
}

func identityOf(sel *selector.Selector) selIdentity {
	return selIdentity{Name: sel.Name(), Dyn: sel.Dyn}
}

// singletonStats returns the cached singleton (no mini-graphs) timing of
// bench b on cfg.
func singletonStats(b *Bench, cfg pipeline.Config) (*pipeline.Stats, error) {
	st, _, err := singletonStatsNoted(b, cfg)
	return st, err
}

// singletonStatsNoted is singletonStats plus the cache outcome for
// telemetry.
func singletonStatsNoted(b *Bench, cfg pipeline.Config) (*pipeline.Stats, string, error) {
	key := simcache.Fingerprint("singleton", b.Workload.Name, b.Input, cfg)
	return doNoted(resultCache, key, func() (*pipeline.Stats, error) {
		return b.RunSingleton(cfg)
	})
}

// deriveSelection performs the selection stage of one series point through
// the shared caches: the slack profile (possibly on a cross-input bench),
// the candidate pool under limits, the policy filter, and the final
// budgeted selection. profInput == "" means self-trained (b's own input).
func deriveSelection(b *Bench, sel *selector.Selector, profCfg pipeline.Config, profInput string, limits minigraph.Limits, selCfg minigraph.SelectConfig) (*minigraph.Selection, error) {
	var prof *slack.Profile
	if sel.NeedsProfile() {
		profBench := b
		if profInput != "" && profInput != b.Input {
			// Cross-input robustness: collect the profile on the other
			// input's bench (static indices align — the code is
			// identical, only the data differs).
			pb, err := PrepareShared(b.Workload, profInput)
			if err != nil {
				return nil, err
			}
			profBench = pb
		}
		p, err := profBench.Profile(profCfg)
		if err != nil {
			return nil, err
		}
		prof = p
	}
	cands := b.Cands
	if limits != minigraph.DefaultLimits() {
		c, err := enumerateShared(b, limits)
		if err != nil {
			return nil, err
		}
		cands = c
	}
	pool := sel.Pool(b.Prog, cands, prof)
	return minigraph.Select(b.Prog, pool, b.Freq, selCfg), nil
}

// evalStats returns the cached outcome of one experiment series point:
// select with sel (profiling on profCfg over profInput where needed) and
// run on runCfg. limits and selCfg are the candidate-enumeration and MGT
// budget knobs (pass the defaults for non-ablation series, so equal work
// dedupes across figure and ablation drivers).
func evalStats(b *Bench, sel *selector.Selector, profCfg pipeline.Config, profInput string, runCfg pipeline.Config, limits minigraph.Limits, selCfg minigraph.SelectConfig) (*pipeline.Stats, error) {
	st, _, err := evalStatsNoted(b, sel, profCfg, profInput, runCfg, limits, selCfg)
	return st, err
}

// evalStatsNoted is evalStats plus the cache outcome for telemetry.
func evalStatsNoted(b *Bench, sel *selector.Selector, profCfg pipeline.Config, profInput string, runCfg pipeline.Config, limits minigraph.Limits, selCfg minigraph.SelectConfig) (*pipeline.Stats, string, error) {
	if profInput == "" {
		profInput = b.Input
	}
	key := simcache.Fingerprint("eval", b.Workload.Name, b.Input,
		identityOf(sel), profCfg, profInput, runCfg, limits, selCfg)
	return doNoted(resultCache, key, func() (*pipeline.Stats, error) {
		chosen, err := deriveSelection(b, sel, profCfg, profInput, limits, selCfg)
		if err != nil {
			return nil, err
		}
		return b.Run(runCfg, sel, chosen)
	})
}

// enumerateShared returns the cached candidate pool of b under non-default
// enumeration limits.
func enumerateShared(b *Bench, limits minigraph.Limits) ([]*minigraph.Candidate, error) {
	key := simcache.Fingerprint("cands", b.Workload.Name, b.Input, limits)
	return candsCache.Do(key, func() ([]*minigraph.Candidate, error) {
		return minigraph.Enumerate(b.Prog, limits), nil
	})
}
