package core

import (
	"flag"
	"fmt"

	"repro/internal/pipeline"
)

// This file is the shared CLI surface for sampled (multi-fidelity)
// simulation: every driver registers the same -sample-* flag set and
// resolves it into a *pipeline.SampleSpec the same way, so "mgsim
// -sample-mode rep" and "mgreport -sample-mode rep" mean the same thing.

// SampleFlags registers the -sample-* flags on the default flag set and
// returns a resolver to call after flag.Parse. The resolver yields nil when
// -sample-mode is unset (full-detail simulation, the default) and rejects
// orphan sampling flags so a typo'd invocation can't silently run exact.
func SampleFlags() func() (*pipeline.SampleSpec, error) {
	var (
		mode     = flag.String("sample-mode", "", `sampled (estimated) fidelity: "uniform" periodic windows or "rep" representative intervals; empty = full detail`)
		interval = flag.Int("sample-interval", 0, "instructions between window starts (uniform) / feature-interval length (rep); 0 = mode default (50000 uniform, 1000 rep)")
		window   = flag.Int("sample-window", 1000, "detailed window length in instructions")
		warmup   = flag.Int("sample-warmup", 2000, "detailed warm-up instructions before each uniform window (rep mode warms functionally instead)")
		clusters = flag.Int("sample-clusters", 0, "detailed windows (k-means clusters) in rep mode; 0 = auto-scale with trace length")
	)
	return func() (*pipeline.SampleSpec, error) {
		if *mode == "" {
			if *interval != 0 || *clusters != 0 {
				return nil, fmt.Errorf("-sample-interval/-sample-clusters need -sample-mode (uniform or rep)")
			}
			return nil, nil
		}
		m, err := pipeline.ParseSampleMode(*mode)
		if err != nil {
			return nil, err
		}
		iv := *interval
		if iv == 0 {
			if m == pipeline.SampleRepresentative {
				iv = 1000
			} else {
				iv = 50000
			}
		}
		return &pipeline.SampleSpec{
			Interval: iv,
			Window:   *window,
			Warmup:   *warmup,
			Mode:     m,
			Clusters: *clusters,
		}, nil
	}
}

// SampleBanner renders the one-line fidelity banner a driver prints next to
// a sampled run's statistics.
func SampleBanner(spec pipeline.SampleSpec, rep pipeline.SampleReport) string {
	if rep.Full {
		return fmt.Sprintf("sampled %s: trace fits one interval — ran in full detail", spec.Summary())
	}
	if rep.Mode == pipeline.SampleRepresentative {
		return fmt.Sprintf("sampled %s (estimate): %d intervals -> %d windows, %d detailed + %d warmed instrs (%.2f%% detailed), errbound ±%.2f%%",
			spec.Summary(), rep.Intervals, rep.Windows, rep.DetailInstrs, rep.WarmInstrs,
			100*rep.SimulatedFrac, 100*rep.ErrBound)
	}
	return fmt.Sprintf("sampled %s (estimate): %d windows, %d detailed instrs (%.2f%% of trace)",
		spec.Summary(), rep.Windows, rep.DetailInstrs, 100*rep.SimulatedFrac)
}
