// Package core orchestrates the full mini-graph toolchain: it prepares
// workloads (functional run, candidate enumeration), collects slack
// profiles, applies selection policies, runs the timing pipeline, and
// drives the paper's experiments.
package core

import (
	"context"
	"fmt"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/selector"
	"repro/internal/simcache"
	"repro/internal/slack"
	"repro/internal/workload"
)

// Bench is a prepared workload: program, committed trace, per-static
// frequencies and the mini-graph candidate pool. Profiles are cached per
// machine configuration.
type Bench struct {
	Workload *workload.Workload
	Input    string
	Prog     *prog.Program
	Trace    []emu.Rec
	Freq     []int64
	Cands    []*minigraph.Candidate

	// profiles memoizes slack profiles per machine-configuration
	// fingerprint, deduplicating concurrent computations.
	profiles *simcache.Cache[simcache.Key, *slack.Profile]
}

// Prepare builds and functionally executes a workload, enumerates
// mini-graph candidates, and verifies the checksum when a reference exists.
func Prepare(w *workload.Workload, input string) (*Bench, error) {
	p, want, verified, err := w.Build(input)
	if err != nil {
		return nil, err
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		return nil, fmt.Errorf("prepare %s/%s: %w", w.Name, input, err)
	}
	if verified && res.Checksum() != want {
		return nil, fmt.Errorf("prepare %s/%s: checksum %#x, want %#x", w.Name, input, res.Checksum(), want)
	}
	freq := make([]int64, p.NumInstrs())
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	return &Bench{
		Workload: w,
		Input:    input,
		Prog:     p,
		Trace:    res.Trace,
		Freq:     freq,
		Cands:    minigraph.Enumerate(p, minigraph.DefaultLimits()),
		profiles: simcache.Named[simcache.Key, *slack.Profile]("profiles"),
	}, nil
}

// PrepareByName is Prepare by workload name.
func PrepareByName(name, input string) (*Bench, error) {
	w := workload.Find(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	return Prepare(w, input)
}

// Profile returns the slack profile of a singleton run on cfg, caching by
// a fingerprint of the whole configuration (so variants sharing a name
// cannot collide). This matches the paper: profiles are collected from
// non-mini-graph executions. Concurrent callers share one computation.
func (b *Bench) Profile(cfg pipeline.Config) (*slack.Profile, error) {
	return b.ProfileCtx(context.Background(), cfg)
}

// ProfileCtx is Profile with the caller's context threaded through, so the
// per-bench profile-cache lookup (and, on a miss, the profiling run)
// appears as a nested span in exported traces.
func (b *Bench) ProfileCtx(ctx context.Context, cfg pipeline.Config) (*slack.Profile, error) {
	prof, _, err := b.profiles.DoCtx(ctx, simcache.Fingerprint(cfg), func(context.Context) (*slack.Profile, error) {
		acc := slack.NewAccumulator(b.Prog.Name, b.Prog.NumInstrs())
		if _, err := pipeline.Run(b.Prog, b.Trace, cfg, pipeline.MGConfig{}, acc); err != nil {
			return nil, fmt.Errorf("profiling %s on %s: %w", b.Prog.Name, cfg.Name, err)
		}
		return acc.Profile(), nil
	})
	return prof, err
}

// Select applies a selection policy, producing the mini-graph set. prof may
// be nil for policies that don't need one.
func (b *Bench) Select(sel *selector.Selector, prof *slack.Profile) *minigraph.Selection {
	pool := sel.Pool(b.Prog, b.Cands, prof)
	return minigraph.Select(b.Prog, pool, b.Freq, minigraph.DefaultSelectConfig())
}

// mgConfigFor assembles the pipeline mini-graph configuration for a
// selection (nil for singleton execution) under the policy's
// dynamic-monitor options.
func mgConfigFor(sel *selector.Selector, chosen *minigraph.Selection) pipeline.MGConfig {
	mg := pipeline.MGConfig{}
	if chosen != nil && len(chosen.Instances) > 0 {
		mg.Selection = chosen
		if sel != nil {
			mg.Dynamic = sel.Dyn.Dynamic
			mg.DynamicDelayOnly = sel.Dyn.DelayOnly
			mg.DynamicSIAL = sel.Dyn.SIAL
			mg.IdealOutlining = sel.Dyn.IdealOutlining
		}
	}
	return mg
}

// Run executes the timing pipeline on cfg with the given selection (nil for
// singleton execution) under the policy's dynamic-monitor options.
func (b *Bench) Run(cfg pipeline.Config, sel *selector.Selector, chosen *minigraph.Selection) (*pipeline.Stats, error) {
	return pipeline.Run(b.Prog, b.Trace, cfg, mgConfigFor(sel, chosen), nil)
}

// RunSampled executes the timing pipeline at sampled fidelity: the full
// trace is sliced per spec and only the selected windows run in detail, so
// the returned stats are estimates (spec.Mode picks uniform-periodic or
// representative-interval windowing).
func (b *Bench) RunSampled(cfg pipeline.Config, sel *selector.Selector, chosen *minigraph.Selection, spec pipeline.SampleSpec) (*pipeline.Stats, error) {
	st, _, err := b.RunSampledReport(cfg, sel, chosen, spec)
	return st, err
}

// RunSampledReport is RunSampled returning the full pipeline.SampleReport
// (mode, window count, detailed-instruction share, error bound) so drivers
// can print a fidelity banner next to the estimate.
func (b *Bench) RunSampledReport(cfg pipeline.Config, sel *selector.Selector, chosen *minigraph.Selection, spec pipeline.SampleSpec) (*pipeline.Stats, pipeline.SampleReport, error) {
	return pipeline.RunSampledReport(b.Prog, b.Trace, cfg, mgConfigFor(sel, chosen), spec)
}

// RunObserved is Run with an observer attached collecting pipetrace
// records and/or interval samples. Observed runs never go through the
// result cache — the trace is a side effect a cache hit would swallow.
func (b *Bench) RunObserved(cfg pipeline.Config, sel *selector.Selector, chosen *minigraph.Selection, watch *obs.Observer) (*pipeline.Stats, error) {
	return pipeline.RunObserved(b.Prog, b.Trace, cfg, mgConfigFor(sel, chosen), nil, watch)
}

// RunSingleton executes the timing pipeline without mini-graphs.
func (b *Bench) RunSingleton(cfg pipeline.Config) (*pipeline.Stats, error) {
	return pipeline.Run(b.Prog, b.Trace, cfg, pipeline.MGConfig{}, nil)
}

// RunSingletonObserved is RunSingleton with an observer attached.
func (b *Bench) RunSingletonObserved(cfg pipeline.Config, watch *obs.Observer) (*pipeline.Stats, error) {
	return pipeline.RunObserved(b.Prog, b.Trace, cfg, pipeline.MGConfig{}, nil, watch)
}

// ProfileObserved collects a slack profile like Profile but with an
// observer attached to the profiling run. It bypasses the per-bench
// profile cache (the trace is the point) and does not populate it.
func (b *Bench) ProfileObserved(cfg pipeline.Config, watch *obs.Observer) (*slack.Profile, error) {
	acc := slack.NewAccumulator(b.Prog.Name, b.Prog.NumInstrs())
	if _, err := pipeline.RunObserved(b.Prog, b.Trace, cfg, pipeline.MGConfig{}, acc, watch); err != nil {
		return nil, fmt.Errorf("profiling %s on %s: %w", b.Prog.Name, cfg.Name, err)
	}
	return acc.Profile(), nil
}

// Evaluate is the one-stop path used by the experiment drivers: profile on
// profCfg if the policy needs it, select, and run on runCfg.
func (b *Bench) Evaluate(sel *selector.Selector, profCfg, runCfg pipeline.Config) (*pipeline.Stats, *minigraph.Selection, error) {
	var prof *slack.Profile
	if sel.NeedsProfile() {
		var err error
		prof, err = b.Profile(profCfg)
		if err != nil {
			return nil, nil, err
		}
	}
	return b.EvaluateWith(sel, prof, runCfg)
}

// EvaluateWith is Evaluate with an externally supplied profile — the
// cross-input and cross-configuration robustness experiments collect the
// profile on a different bench and apply it here (static indices align:
// the code is identical, only the data differs).
func (b *Bench) EvaluateWith(sel *selector.Selector, prof *slack.Profile, runCfg pipeline.Config) (*pipeline.Stats, *minigraph.Selection, error) {
	chosen := b.Select(sel, prof)
	st, err := b.Run(runCfg, sel, chosen)
	return st, chosen, err
}
