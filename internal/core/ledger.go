package core

import (
	"sync/atomic"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/simcache"
)

// This file bridges the sweep engine to the persistent run ledger. The
// ledger follows the telemetry idiom: a process-wide atomic pointer that
// is nil by default, so recording costs one atomic load when off and the
// simulation paths stay byte-identical either way.

// runLedger is the installed run-history ledger; nil disables recording.
var runLedger atomic.Pointer[ledger.Ledger]

// SetLedger installs (or, with nil, removes) the run ledger that receives
// one record per completed simulation task, and wires the /debug/dash
// observatory to it. Drivers call this once at startup for -ledger runs.
func SetLedger(l *ledger.Ledger) {
	runLedger.Store(l)
	if l != nil {
		obs.SetDashHandler(ledger.DashHandler(RunLedger))
	}
}

// RunLedger returns the installed run ledger, or nil when recording is
// off.
func RunLedger() *ledger.Ledger { return runLedger.Load() }

// appendTaskRecord writes one finished sweep task into the run ledger; a
// no-op when no ledger is installed. Append failures are reported through
// telemetry rather than failing the sweep: history is an observability
// concern, never a correctness one.
func appendTaskRecord(sweep, workload, series, input string, key simcache.Key, st *pipeline.Stats, outcome string, started time.Time, err error, sample *pipeline.SampleSpec, use metrics.Usage) {
	l := runLedger.Load()
	if l == nil {
		return
	}
	r := ledger.Record{
		Tool:     "sweep",
		Sweep:    sweep,
		Workload: workload,
		Series:   series,
		Input:    input,
		Key:      key.Short(),
		Cache:    outcome,
		WallMS:   float64(time.Since(started)) / float64(time.Millisecond),
		CPUMS:    float64(use.CPUNanos) / 1e6,
		MaxRSSKB: use.MaxRSSKB,
		GCCycles: use.GCCycles,
	}
	if sample != nil {
		r.Estimate = true
		r.Sample = sample.Summary()
	}
	if st != nil {
		r.Cycles, r.Instrs, r.Uops = st.Cycles, st.Instrs, st.Uops
		r.IPC, r.UPC, r.Coverage = st.IPC(), st.UPC(), st.Coverage()
	}
	if err != nil {
		r.Error = err.Error()
	}
	if werr := l.Append(r); werr != nil {
		if log := tlog(); log != nil {
			log.Warn("ledger.append", "error", werr)
		}
	}
}
