package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/minigraph"
	"repro/internal/pipeline"
	"repro/internal/selector"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationVariant is one point in a design-choice sweep. Unlike SeriesSpec,
// it can vary candidate-enumeration limits, the MGT template budget, and
// the machine's mini-graph issue constraints.
type AblationVariant struct {
	Label  string
	Cfg    pipeline.Config
	Sel    *selector.Selector
	Limits minigraph.Limits // zero value -> DefaultLimits
	Budget int              // 0 -> DefaultSelectConfig
}

func (v *AblationVariant) limits() minigraph.Limits {
	if v.Limits.MaxLen == 0 {
		return minigraph.DefaultLimits()
	}
	return v.Limits
}

func (v *AblationVariant) selectCfg() minigraph.SelectConfig {
	if v.Budget == 0 {
		return minigraph.DefaultSelectConfig()
	}
	return minigraph.SelectConfig{TemplateBudget: v.Budget}
}

// RunAblation evaluates every variant over the workload population,
// reporting performance relative to the fully-provisioned singleton
// baseline and coverage, like RunSweep. Variants route through the same
// process-wide caches as RunSweep, so a variant that coincides with the
// defaults (e.g. "budget=512" equals the figures' Slack-Profile series) is
// not re-simulated.
func RunAblation(title string, opts Options, variants []AblationVariant) (*SweepResult, error) {
	res := &SweepResult{
		Perf:     &stats.Report{Title: title},
		Coverage: &stats.Report{Title: title + " — coverage"},
	}
	perfSeries := make([]*stats.Series, len(variants))
	covSeries := make([]*stats.Series, len(variants))
	for i, v := range variants {
		perfSeries[i] = stats.NewSeries(v.Label)
		covSeries[i] = stats.NewSeries(v.Label)
		res.Perf.Add(perfSeries[i])
		res.Coverage.Add(covSeries[i])
	}

	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	ws := opts.workloads()
	workers := opts.workers()
	if workers > len(ws) {
		workers = len(ws)
	}
	sem := make(chan struct{}, workers)
	for _, w := range ws {
		wg.Add(1)
		go func(w *workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			vals, covs, err := evalAblation(w, opts, variants)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", w.Name, err)
				}
				return
			}
			for i := range variants {
				perfSeries[i].Add(w.Name, vals[i])
				covSeries[i].Add(w.Name, covs[i])
			}
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "done %s\n", w.Name)
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

func evalAblation(w *workload.Workload, opts Options, variants []AblationVariant) ([]float64, []float64, error) {
	ctx := context.Background()
	bench, err := PrepareSharedCtx(ctx, w, opts.input())
	if err != nil {
		return nil, nil, err
	}
	baseStats, err := singletonStats(ctx, bench, pipeline.Baseline(), nil)
	if err != nil {
		return nil, nil, err
	}
	base := baseStats.Cycles

	vals := make([]float64, len(variants))
	covs := make([]float64, len(variants))
	for i, v := range variants {
		st, err := evalStats(ctx, bench, v.Sel, v.Cfg, "", v.Cfg, v.limits(), v.selectCfg())
		if err != nil {
			return nil, nil, err
		}
		vals[i] = float64(base) / float64(st.Cycles)
		covs[i] = st.Coverage()
	}
	return vals, covs, nil
}

// AblationMaxLen sweeps the mini-graph size limit (2–4 constituents) under
// Slack-Profile on the reduced machine: how much of the benefit needs
// longer aggregates?
func AblationMaxLen(opts Options) (*SweepResult, error) {
	red := pipeline.Reduced()
	var vs []AblationVariant
	for _, n := range []int{2, 3, 4} {
		vs = append(vs, AblationVariant{
			Label:  fmt.Sprintf("maxlen=%d", n),
			Cfg:    red,
			Sel:    selector.SlackProfile(),
			Limits: minigraph.Limits{MaxLen: n, MaxInputs: 3},
		})
	}
	return RunAblation("Ablation: mini-graph size limit (Slack-Profile, reduced machine)", opts, vs)
}

// AblationMaxInputs contrasts the original two-input mini-graphs (MICRO-04)
// with this paper's three-input extension (Section 2's design change).
func AblationMaxInputs(opts Options) (*SweepResult, error) {
	red := pipeline.Reduced()
	return RunAblation("Ablation: external register inputs (Slack-Profile, reduced machine)", opts, []AblationVariant{
		{Label: "2 inputs (MICRO-04)", Cfg: red, Sel: selector.SlackProfile(), Limits: minigraph.Limits{MaxLen: 4, MaxInputs: 2}},
		{Label: "3 inputs (this paper)", Cfg: red, Sel: selector.SlackProfile(), Limits: minigraph.Limits{MaxLen: 4, MaxInputs: 3}},
	})
}

// AblationBudget sweeps the MGT template budget: how many templates does a
// program actually need?
func AblationBudget(opts Options) (*SweepResult, error) {
	red := pipeline.Reduced()
	var vs []AblationVariant
	for _, b := range []int{4, 16, 64, 512} {
		vs = append(vs, AblationVariant{
			Label:  fmt.Sprintf("budget=%d", b),
			Cfg:    red,
			Sel:    selector.SlackProfile(),
			Budget: b,
		})
	}
	return RunAblation("Ablation: MGT template budget (Slack-Profile, reduced machine)", opts, vs)
}

// AblationMGIssue sweeps the mini-graph issue constraints (Table 1 allows
// 2 per cycle, 1 with memory): is mini-graph issue bandwidth a bottleneck?
func AblationMGIssue(opts Options) (*SweepResult, error) {
	one := pipeline.Reduced()
	one.Name = "reduced-1mg"
	one.MaxMGIssue = 1
	two := pipeline.Reduced()
	four := pipeline.Reduced()
	four.Name = "reduced-4mg"
	four.MaxMGIssue = 4
	four.MaxMemMGIssue = 2
	return RunAblation("Ablation: mini-graph issue bandwidth (Slack-Profile)", opts, []AblationVariant{
		{Label: "1 MG/cycle", Cfg: one, Sel: selector.SlackProfile()},
		{Label: "2 MG/cycle (Table 1)", Cfg: two, Sel: selector.SlackProfile()},
		{Label: "4 MG/cycle", Cfg: four, Sel: selector.SlackProfile()},
	})
}

// AblationSlackScope tests Section 4.3's "think globally, act locally"
// argument: rule #4 with local slack vs global slack budgets.
func AblationSlackScope(opts Options) (*SweepResult, error) {
	red := pipeline.Reduced()
	return RunAblation("Ablation: local vs global slack in rule #4 (reduced machine)", opts, []AblationVariant{
		{Label: "local slack (paper)", Cfg: red, Sel: selector.SlackProfile()},
		{Label: "global slack", Cfg: red, Sel: selector.SlackProfileGlobal()},
	})
}

// AblationLatencyModel contrasts the paper's optimistic rule-#2 latencies
// with profiled cache-aware latencies (the mcf footnote's future work).
func AblationLatencyModel(opts Options) (*SweepResult, error) {
	red := pipeline.Reduced()
	return RunAblation("Ablation: rule #2 latency model (reduced machine)", opts, []AblationVariant{
		{Label: "optimistic (paper)", Cfg: red, Sel: selector.SlackProfile()},
		{Label: "profiled (future work)", Cfg: red, Sel: selector.SlackProfileMem()},
	})
}
