package core

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/minigraph"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/selector"
	"repro/internal/simcache"
	"repro/internal/slack"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configures an experiment sweep.
type Options struct {
	// Input is the input set to run ("large" by default).
	Input string
	// Suites restricts the workload population (nil = all four suites).
	Suites []string
	// Workloads further restricts the population to exact workload names
	// (applied after Suites; nil = no name filter).
	Workloads []string
	// Workers bounds parallelism (0 = GOMAXPROCS); the effective worker
	// count is additionally capped at the number of schedulable tasks.
	Workers int
	// Progress receives one line per completed workload when non-nil.
	Progress io.Writer
	// NoCache bypasses the process-wide simulation caches: every workload
	// is re-prepared and every series re-simulated from scratch (the
	// timing-accuracy debugging path).
	NoCache bool
	// Obs enables per-series-point observability outputs (pipetrace and
	// interval files under Obs.Dir). Observed series runs bypass the
	// result cache — the trace is a side effect a cache hit would swallow
	// — so traces are produced on every run and are byte-identical
	// regardless of worker count or cache mode (each simulation is
	// single-threaded and deterministic).
	Obs *obs.Options
	// Sample runs every timing simulation (series points and the relative-
	// performance baseline) at sampled fidelity instead of full detail —
	// the fast low-fidelity sweep mode. Profiling and selection still run
	// exactly, so the mini-graph sets are identical to a detailed sweep;
	// only the timing numbers become estimates. nil = full detail.
	// Mutually exclusive with Obs (an observer needs the real full run).
	Sample *pipeline.SampleSpec
	// Watchdog arms the sweep watchdog (slow-task and wedge detection on
	// /debug/sweep and the telemetry log) when non-nil. See WatchdogConfig
	// for the thresholds; the zero value selects all defaults.
	Watchdog *WatchdogConfig
}

func (o Options) input() string {
	if o.Input == "" {
		return "large"
	}
	return o.Input
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) workloads() []*workload.Workload {
	ws := workload.All()
	if len(o.Suites) > 0 {
		ws = ws[:0:0]
		for _, s := range o.Suites {
			ws = append(ws, workload.BySuite(s)...)
		}
	}
	if len(o.Workloads) == 0 {
		return ws
	}
	keep := make(map[string]bool, len(o.Workloads))
	for _, n := range o.Workloads {
		keep[n] = true
	}
	var out []*workload.Workload
	for _, w := range ws {
		if keep[w.Name] {
			out = append(out, w)
		}
	}
	return out
}

// SeriesSpec describes one experiment line: a machine configuration plus a
// selection policy (nil Sel = singleton execution, no mini-graphs).
// ProfCfg overrides the profiling configuration (self-trained on the run
// configuration when nil); ProfInput overrides the profiling input set.
type SeriesSpec struct {
	Label     string
	Cfg       pipeline.Config
	Sel       *selector.Selector
	ProfCfg   *pipeline.Config
	ProfInput string
}

// SweepResult carries one experiment's outcome: performance relative to the
// fully-provisioned singleton baseline, plus coverage per series.
type SweepResult struct {
	Perf     *stats.Report
	Coverage *stats.Report
}

// RunSweep evaluates every spec on every workload. Performance is reported
// as IPC relative to the fully-provisioned baseline without mini-graphs
// (the paper's y=1 line); coverage as the fraction of dynamic instructions
// embedded in mini-graphs.
//
// Scheduling is fine-grained: a bounded worker pool drains one task per
// (workload, spec) pair, and all config-invariant work — workload
// preparation, the fully-provisioned baseline, slack profiles, whole
// repeated series — is deduplicated through the process-wide caches
// (singleflight, so two tasks needing the same profile or baseline never
// compute it twice). Series ordering in the report is deterministic
// regardless of completion order.
func RunSweep(title string, opts Options, specs []SeriesSpec) (*SweepResult, error) {
	started := time.Now()
	if opts.Sample != nil && opts.Obs.Active() {
		return nil, fmt.Errorf("sweep %q: sampled fidelity and observability are mutually exclusive (pipetraces need the real full run)", title)
	}
	// Each sweep is one trace process: tid 0 is the orchestrator, worker k
	// runs as tid k+1.
	ctx := metrics.WithTask(context.Background(), metrics.NextPid(), 0)
	ctx, sweepSpan := metrics.StartSpan(ctx, "sweep",
		metrics.L("title", title), metrics.L("input", opts.input()))
	defer sweepSpan.End()
	sweepSeries.sweeps.Inc()
	if l := tlog(); l != nil {
		l.Info("sweep.start", "title", title, "input", opts.input(),
			"workers", opts.workers(), "nocache", opts.NoCache, "observed", opts.Obs.Active())
	}
	res := &SweepResult{
		Perf:     &stats.Report{Title: title},
		Coverage: &stats.Report{Title: title + " — coverage"},
	}
	perfSeries := make([]*stats.Series, len(specs))
	covSeries := make([]*stats.Series, len(specs))
	for i, sp := range specs {
		perfSeries[i] = stats.NewSeries(sp.Label)
		covSeries[i] = stats.NewSeries(sp.Label)
		res.Perf.Add(perfSeries[i])
		res.Coverage.Add(covSeries[i])
	}

	ws := opts.workloads()
	// Live-progress tracking for /debug/sweep: one entry per (workload,
	// series) task, in the same order both execution paths schedule them.
	refs := make([][2]string, 0, len(ws)*len(specs))
	for _, w := range ws {
		for _, sp := range specs {
			refs = append(refs, [2]string{w.Name, sp.Label})
		}
	}
	track := metrics.StartSweep(title, refs)
	defer track.Finish()
	if opts.Watchdog != nil {
		wd := StartWatchdog(track, title, *opts.Watchdog)
		defer wd.Stop()
	}

	if opts.NoCache {
		meta, err := runSweepUncached(ctx, title, opts, ws, specs, perfSeries, covSeries, track)
		if err != nil {
			return nil, err
		}
		if err := writeSweepManifest(title, opts, started, meta); err != nil {
			return nil, err
		}
		sweepFinishLog(title, started, len(ws)*len(specs))
		return res, nil
	}

	type task struct{ wi, si int }
	tasks := make([]task, 0, len(ws)*len(specs))
	for wi := range ws {
		for si := range specs {
			tasks = append(tasks, task{wi, si})
		}
	}
	vals := make([][2]float64, len(tasks)) // perf, coverage per task
	errs := make([]error, len(tasks))
	meta := make([]obs.ManifestTask, len(tasks))
	pending := make([]int32, len(ws)) // specs left per workload (progress)
	for i := range pending {
		pending[i] = int32(len(specs))
	}

	workers := opts.workers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var mu sync.Mutex // guards Progress writer
	next := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			// Pin the worker to its OS thread so RUSAGE_THREAD deltas
			// attribute each task's CPU time exactly (sweep tasks simulate
			// single-goroutine, so nothing escapes the pinned thread).
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			wctx := metrics.WithTid(ctx, k+1) // worker k is trace tid k+1 (same pid as the sweep)
			for ti := range next {
				t := tasks[ti]
				w := ws[t.wi]
				sp := specs[t.si]
				if l := tlog(); l != nil {
					l.Info("task.start", "sweep", title, "workload", w.Name,
						"series", sp.Label, "worker", k)
				}
				track.TaskRunning(ti, k)
				t0 := time.Now()
				um := metrics.MarkUsage()
				tctx, span := metrics.StartSpan(wctx, "task",
					metrics.L("workload", w.Name), metrics.L("series", sp.Label))
				var r specResult
				var err error
				// Label the task's goroutine so CPU profiles grabbed from
				// /debug/pprof attribute samples to (workload, spec).
				pprof.Do(tctx, pprof.Labels("workload", w.Name, "spec", sp.Label), func(ctx context.Context) {
					r, err = evalSpec(ctx, w, opts.input(), sp, opts.Obs, opts.Sample)
				})
				use := um.Since()
				if metrics.CPUAccountingOn() {
					span.SetCPUNanos(use.CPUNanos)
				}
				span.SetAttr("cache", r.outcome)
				span.End()
				vals[ti] = [2]float64{r.perf, r.cov}
				errs[ti] = err
				meta[ti] = manifestTask(w.Name, sp.Label, k, t0, r.outcome, r.files, r.idx, err)
				appendTaskRecord(title, w.Name, sp.Label, opts.input(), r.key, r.stats, r.outcome, t0, err, opts.Sample, use)
				track.TaskDone(ti, r.outcome, err)
				noteTaskMetrics(meta[ti])
				if l := tlog(); l != nil {
					l.Info("task.finish", "sweep", title, "workload", w.Name,
						"series", sp.Label, "worker", k,
						"wall_ms", meta[ti].WallMS, "cache", r.outcome)
				}
				if atomic.AddInt32(&pending[t.wi], -1) == 0 && opts.Progress != nil {
					mu.Lock()
					fmt.Fprintf(opts.Progress, "done %s\n", w.Name)
					mu.Unlock()
				}
			}
		}(k)
	}
	for ti := range tasks {
		next <- ti
	}
	close(next)
	wg.Wait()

	for ti, t := range tasks {
		if err := errs[ti]; err != nil {
			return nil, fmt.Errorf("%s: %w", ws[t.wi].Name, err)
		}
		perfSeries[t.si].Add(ws[t.wi].Name, vals[ti][0])
		covSeries[t.si].Add(ws[t.wi].Name, vals[ti][1])
	}
	if err := writeSweepManifest(title, opts, started, meta); err != nil {
		return nil, err
	}
	sweepFinishLog(title, started, len(tasks))
	return res, nil
}

// manifestTask assembles one manifest entry from a finished task.
func manifestTask(workload, series string, worker int, started time.Time, outcome string, files []string, idx *obs.IndexInfo, err error) obs.ManifestTask {
	mt := obs.ManifestTask{
		Workload: workload,
		Series:   series,
		Worker:   worker,
		WallMS:   float64(time.Since(started)) / float64(time.Millisecond),
		Cache:    outcome,
		Files:    files,
		Index:    idx,
	}
	if err != nil {
		mt.Error = err.Error()
	}
	return mt
}

// writeSweepManifest writes the run manifest into the observability
// directory; a no-op when observability is off.
func writeSweepManifest(title string, opts Options, started time.Time, tasks []obs.ManifestTask) error {
	if !opts.Obs.Active() {
		return nil
	}
	m := &obs.Manifest{
		Tool:    "sweep",
		Title:   title,
		Started: started.UTC().Format(time.RFC3339),
		WallMS:  float64(time.Since(started)) / float64(time.Millisecond),
		Input:   opts.input(),
		Workers: opts.workers(),
		Flags: map[string]string{
			"pipetrace":     fmt.Sprint(opts.Obs.Pipetrace),
			"pipetrace-bin": fmt.Sprint(opts.Obs.PipetraceBin),
			"intervals":     fmt.Sprint(opts.Obs.IntervalEvery),
			"index-every":   fmt.Sprint(opts.Obs.IndexEvery),
			"nocache":       fmt.Sprint(opts.NoCache),
			"sample":        sampleFlag(opts.Sample),
		},
		Spans: metrics.TraceOut(),
		Tasks: tasks,
	}
	return obs.WriteManifest(filepath.Join(opts.Obs.Dir, obs.Sanitize(title)+".manifest.json"), m)
}

// sampleFlag renders the sweep's sampling spec for the manifest ("off" at
// full detail).
func sampleFlag(s *pipeline.SampleSpec) string {
	if s == nil {
		return "off"
	}
	return s.Summary()
}

// sweepFinishLog emits the sweep.finish telemetry event.
func sweepFinishLog(title string, started time.Time, tasks int) {
	if l := tlog(); l != nil {
		l.Info("sweep.finish", "title", title, "tasks", tasks,
			"wall_ms", float64(time.Since(started))/float64(time.Millisecond))
	}
}

// profCfgOf resolves a spec's profiling configuration (self-trained on the
// run configuration unless overridden).
func profCfgOf(sp SeriesSpec) pipeline.Config {
	if sp.ProfCfg != nil {
		return *sp.ProfCfg
	}
	return sp.Cfg
}

// specResult carries everything one evaluated series point produces:
// the report values (relative performance, coverage), the raw simulation
// stats and cache key for the run ledger, and the cache outcome plus
// observability files for telemetry.
type specResult struct {
	perf, cov float64
	outcome   string
	files     []string
	idx       *obs.IndexInfo
	stats     *pipeline.Stats
	key       simcache.Key
}

// evalSpec computes one (workload, spec) point through the caches. sample
// selects low-fidelity estimation for both the series run and the relative-
// performance baseline, so the reported ratio is estimate over estimate.
func evalSpec(ctx context.Context, w *workload.Workload, input string, sp SeriesSpec, o *obs.Options, sample *pipeline.SampleSpec) (specResult, error) {
	var r specResult
	bench, err := PrepareSharedCtx(ctx, w, input)
	if err != nil {
		return r, err
	}
	r.key = TaskKey(bench, sp.Sel, profCfgOf(sp), sp.ProfInput, sp.Cfg, sample)
	baseStats, err := singletonStats(ctx, bench, pipeline.Baseline(), sample)
	if err != nil {
		return r, err
	}
	var st *pipeline.Stats
	if o.Active() {
		st, r.files, r.idx, err = runSpecObserved(ctx, bench, sp, o)
		r.outcome = cacheTraced
	} else if sp.Sel == nil {
		st, r.outcome, err = singletonStatsNoted(ctx, bench, sp.Cfg, sample)
	} else {
		st, r.outcome, err = evalStatsNoted(ctx, bench, sp.Sel, profCfgOf(sp), sp.ProfInput, sp.Cfg,
			minigraph.DefaultLimits(), minigraph.DefaultSelectConfig(), sample)
	}
	if err != nil {
		return r, err
	}
	r.stats = st
	r.perf = float64(baseStats.Cycles) / float64(st.Cycles)
	r.cov = st.Coverage()
	return r, nil
}

// runSpecObserved runs one series point with an observer attached,
// bypassing the result cache (the trace is a side effect a cache hit
// would swallow). Selection derivation still goes through the shared
// caches; only the final timing run is re-executed.
func runSpecObserved(ctx context.Context, b *Bench, sp SeriesSpec, o *obs.Options) (*pipeline.Stats, []string, *obs.IndexInfo, error) {
	watch, err := obs.NewRunObserver(o, obs.Sanitize(b.Workload.Name)+"__"+obs.Sanitize(sp.Label))
	if err != nil {
		return nil, nil, nil, err
	}
	var st *pipeline.Stats
	if sp.Sel == nil {
		_, span := metrics.StartSpan(ctx, "simulate",
			metrics.L("workload", b.Workload.Name), metrics.L("config", sp.Cfg.Name))
		st, err = b.RunSingletonObserved(sp.Cfg, watch)
		span.End()
	} else {
		var chosen *minigraph.Selection
		chosen, err = deriveSelection(ctx, b, sp.Sel, profCfgOf(sp), sp.ProfInput,
			minigraph.DefaultLimits(), minigraph.DefaultSelectConfig())
		if err == nil {
			_, span := metrics.StartSpan(ctx, "simulate",
				metrics.L("workload", b.Workload.Name), metrics.L("config", sp.Cfg.Name),
				metrics.L("policy", sp.Sel.Name()))
			st, err = b.RunObserved(sp.Cfg, sp.Sel, chosen, watch)
			span.End()
		}
	}
	if cerr := watch.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, watch.Files(), watch.IndexInfo(), err
	}
	return st, watch.Files(), watch.IndexInfo(), nil
}

// runSweepUncached is the -nocache path: per-workload goroutines, fresh
// preparation and simulation for every series, nothing shared across
// sweeps. It exists so timing-accuracy investigations can rule the caches
// out, and as the reference the cached path is tested against. Returns
// one manifest entry per (workload, spec), in task order.
func runSweepUncached(ctx context.Context, title string, opts Options, ws []*workload.Workload, specs []SeriesSpec, perfSeries, covSeries []*stats.Series, track *metrics.SweepProgress) ([]obs.ManifestTask, error) {
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	workers := opts.workers()
	if workers > len(ws) {
		workers = len(ws)
	}
	meta := make([]obs.ManifestTask, len(ws)*len(specs))
	sem := make(chan struct{}, workers)
	for wi, w := range ws {
		wg.Add(1)
		go func(wi int, w *workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			vals, covs, tasks, err := evalWorkloadUncached(ctx, title, w, wi, opts, specs, track)
			copy(meta[wi*len(specs):], tasks)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", w.Name, err)
				}
				return
			}
			for i := range specs {
				perfSeries[i].Add(w.Name, vals[i])
				covSeries[i].Add(w.Name, covs[i])
			}
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "done %s\n", w.Name)
			}
		}(wi, w)
	}
	wg.Wait()
	return meta, firstErr
}

// evalWorkloadUncached runs all specs for one workload from scratch and
// returns relative performance, coverage, and a manifest entry per spec.
// wi labels this workload's goroutine in telemetry (the uncached path has
// no shared worker pool).
func evalWorkloadUncached(ctx context.Context, title string, w *workload.Workload, wi int, opts Options, specs []SeriesSpec, track *metrics.SweepProgress) ([]float64, []float64, []obs.ManifestTask, error) {
	// Each workload goroutine is one trace thread (tid wi+1) within the
	// sweep; its tasks occupy the progress slots [wi*len(specs), ...).
	// Pinned to its OS thread so per-task RUSAGE_THREAD deltas are exact.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	ctx = metrics.WithTid(ctx, wi+1)
	_, psp := metrics.StartSpan(ctx, "prepare",
		metrics.L("workload", w.Name), metrics.L("input", opts.input()))
	bench, err := Prepare(w, opts.input())
	psp.End()
	if err != nil {
		return nil, nil, nil, err
	}
	_, bsp := metrics.StartSpan(ctx, "simulate",
		metrics.L("workload", w.Name), metrics.L("config", pipeline.Baseline().Name))
	var baseStats *pipeline.Stats
	if opts.Sample != nil {
		baseStats, err = bench.RunSampled(pipeline.Baseline(), nil, nil, *opts.Sample)
	} else {
		baseStats, err = bench.RunSingleton(pipeline.Baseline())
	}
	bsp.End()
	if err != nil {
		return nil, nil, nil, err
	}
	base := baseStats.Cycles

	// Benches for cross-input profiling are prepared lazily and shared.
	crossBenches := map[string]*Bench{}

	vals := make([]float64, len(specs))
	covs := make([]float64, len(specs))
	meta := make([]obs.ManifestTask, len(specs))
	for i, sp := range specs {
		if l := tlog(); l != nil {
			l.Info("task.start", "workload", w.Name, "series", sp.Label, "worker", wi)
		}
		track.TaskRunning(wi*len(specs)+i, wi)
		t0 := time.Now()
		um := metrics.MarkUsage()
		tctx, span := metrics.StartSpan(ctx, "task",
			metrics.L("workload", w.Name), metrics.L("series", sp.Label),
			metrics.L("cache", cacheNone))
		var st *pipeline.Stats
		var files []string
		var idx *obs.IndexInfo
		// Label the task's goroutine so CPU profiles grabbed from
		// /debug/pprof attribute samples to (workload, spec).
		pprof.Do(tctx, pprof.Labels("workload", w.Name, "spec", sp.Label), func(ctx context.Context) {
			st, files, idx, err = evalSpecUncached(ctx, bench, w, sp, opts, crossBenches)
		})
		use := um.Since()
		if metrics.CPUAccountingOn() {
			span.SetCPUNanos(use.CPUNanos)
		}
		span.End()
		meta[i] = manifestTask(w.Name, sp.Label, wi, t0, cacheNone, files, idx, err)
		appendTaskRecord(title, w.Name, sp.Label, opts.input(),
			TaskKey(bench, sp.Sel, profCfgOf(sp), sp.ProfInput, sp.Cfg, opts.Sample), st, cacheNone, t0, err, opts.Sample, use)
		track.TaskDone(wi*len(specs)+i, cacheNone, err)
		noteTaskMetrics(meta[i])
		if l := tlog(); l != nil {
			l.Info("task.finish", "workload", w.Name, "series", sp.Label,
				"worker", wi, "wall_ms", meta[i].WallMS, "cache", cacheNone)
		}
		if err != nil {
			return nil, nil, meta, err
		}
		vals[i] = float64(base) / float64(st.Cycles)
		covs[i] = st.Coverage()
	}
	return vals, covs, meta, nil
}

// evalSpecUncached evaluates one spec for a workload entirely from
// scratch. Cross-input profiling benches are prepared on demand and
// shared through crossBenches (per-workload, single goroutine — no
// locking needed).
func evalSpecUncached(ctx context.Context, bench *Bench, w *workload.Workload, sp SeriesSpec, opts Options, crossBenches map[string]*Bench) (*pipeline.Stats, []string, *obs.IndexInfo, error) {
	if sp.Sel == nil {
		return runUncachedSingleton(bench, sp, opts.Obs, opts.Sample)
	}
	profCfg := profCfgOf(sp)
	profBench := bench
	if sp.ProfInput != "" && sp.ProfInput != opts.input() {
		pb, ok := crossBenches[sp.ProfInput]
		if !ok {
			var err error
			pb, err = Prepare(w, sp.ProfInput)
			if err != nil {
				return nil, nil, nil, err
			}
			crossBenches[sp.ProfInput] = pb
		}
		profBench = pb
	}
	var prof *slack.Profile
	if sp.Sel.NeedsProfile() {
		// Cross-input: collect the profile on the other input's bench and
		// apply it here (static indices align — the code is identical,
		// only the data differs).
		_, prsp := metrics.StartSpan(ctx, "profile",
			metrics.L("workload", w.Name), metrics.L("config", profCfg.Name))
		p, err := profBench.Profile(profCfg)
		prsp.End()
		if err != nil {
			return nil, nil, nil, err
		}
		prof = p
	}
	return runUncachedSelected(bench, sp, prof, opts.Obs, opts.Sample)
}

// runUncachedSingleton runs a singleton series point fresh, observed when
// o is active, at sampled fidelity when sample is non-nil (never both —
// RunSweep rejects the combination).
func runUncachedSingleton(b *Bench, sp SeriesSpec, o *obs.Options, sample *pipeline.SampleSpec) (*pipeline.Stats, []string, *obs.IndexInfo, error) {
	if sample != nil {
		st, err := b.RunSampled(sp.Cfg, nil, nil, *sample)
		return st, nil, nil, err
	}
	if !o.Active() {
		st, err := b.RunSingleton(sp.Cfg)
		return st, nil, nil, err
	}
	watch, err := obs.NewRunObserver(o, obs.Sanitize(b.Workload.Name)+"__"+obs.Sanitize(sp.Label))
	if err != nil {
		return nil, nil, nil, err
	}
	st, err := b.RunSingletonObserved(sp.Cfg, watch)
	if cerr := watch.Close(); err == nil {
		err = cerr
	}
	return st, watch.Files(), watch.IndexInfo(), err
}

// runUncachedSelected selects with sp.Sel over prof and runs fresh,
// observed when o is active, at sampled fidelity when sample is non-nil
// (selection is exact either way; only the timing run is estimated).
func runUncachedSelected(b *Bench, sp SeriesSpec, prof *slack.Profile, o *obs.Options, sample *pipeline.SampleSpec) (*pipeline.Stats, []string, *obs.IndexInfo, error) {
	chosen := b.Select(sp.Sel, prof)
	if sample != nil {
		st, err := b.RunSampled(sp.Cfg, sp.Sel, chosen, *sample)
		return st, nil, nil, err
	}
	if !o.Active() {
		st, err := b.Run(sp.Cfg, sp.Sel, chosen)
		return st, nil, nil, err
	}
	watch, err := obs.NewRunObserver(o, obs.Sanitize(b.Workload.Name)+"__"+obs.Sanitize(sp.Label))
	if err != nil {
		return nil, nil, nil, err
	}
	st, err := b.RunObserved(sp.Cfg, sp.Sel, chosen, watch)
	if cerr := watch.Close(); err == nil {
		err = cerr
	}
	return st, watch.Files(), watch.IndexInfo(), err
}

// --- Figure/table drivers ---

// Fig1 reproduces Figure 1: Slack-Profile vs the two naive selectors on the
// reduced machine.
func Fig1(opts Options) (*SweepResult, error) {
	red := pipeline.Reduced()
	return RunSweep("Figure 1: serialization-aware selection (reduced machine)", opts, []SeriesSpec{
		{Label: "no mini-graphs", Cfg: red},
		{Label: "Struct-All", Cfg: red, Sel: selector.StructAll()},
		{Label: "Struct-None", Cfg: red, Sel: selector.StructNone()},
		{Label: "Slack-Profile", Cfg: red, Sel: selector.SlackProfile()},
	})
}

// Fig3Top reproduces Figure 3 (top): naive selectors on the reduced machine.
func Fig3Top(opts Options) (*SweepResult, error) {
	red := pipeline.Reduced()
	return RunSweep("Figure 3 top: naive selectors (reduced machine)", opts, []SeriesSpec{
		{Label: "no mini-graphs", Cfg: red},
		{Label: "Struct-All", Cfg: red, Sel: selector.StructAll()},
		{Label: "Struct-None", Cfg: red, Sel: selector.StructNone()},
	})
}

// Fig3Bottom reproduces Figure 3 (bottom): naive selectors on the
// fully-provisioned machine, where serialization is exposed.
func Fig3Bottom(opts Options) (*SweepResult, error) {
	base := pipeline.Baseline()
	return RunSweep("Figure 3 bottom: naive selectors (fully-provisioned machine)", opts, []SeriesSpec{
		{Label: "Struct-All", Cfg: base, Sel: selector.StructAll()},
		{Label: "Struct-None", Cfg: base, Sel: selector.StructNone()},
	})
}

func allFiveSpecs(cfg pipeline.Config) []SeriesSpec {
	return []SeriesSpec{
		{Label: "no mini-graphs", Cfg: cfg},
		{Label: "Struct-All", Cfg: cfg, Sel: selector.StructAll()},
		{Label: "Struct-None", Cfg: cfg, Sel: selector.StructNone()},
		{Label: "Struct-Bounded", Cfg: cfg, Sel: selector.StructBounded()},
		{Label: "Slack-Profile", Cfg: cfg, Sel: selector.SlackProfile()},
		{Label: "Slack-Dynamic", Cfg: cfg, Sel: selector.SlackDynamic()},
	}
}

// Fig6Top reproduces Figure 6 (top): all selectors on the reduced machine.
func Fig6Top(opts Options) (*SweepResult, error) {
	return RunSweep("Figure 6 top: serialization-aware selectors (reduced machine)",
		opts, allFiveSpecs(pipeline.Reduced()))
}

// Fig6Middle reproduces Figure 6 (middle): all selectors on the
// fully-provisioned machine.
func Fig6Middle(opts Options) (*SweepResult, error) {
	return RunSweep("Figure 6 middle: serialization-aware selectors (fully-provisioned machine)",
		opts, allFiveSpecs(pipeline.Baseline()))
}

// Fig7Top reproduces Figure 7 (top): isolating the Slack-Profile model
// components.
func Fig7Top(opts Options) (*SweepResult, error) {
	red := pipeline.Reduced()
	return RunSweep("Figure 7 top: Slack-Profile model components (reduced machine)", opts, []SeriesSpec{
		{Label: "Struct-All", Cfg: red, Sel: selector.StructAll()},
		{Label: "Struct-None", Cfg: red, Sel: selector.StructNone()},
		{Label: "Slack-Profile", Cfg: red, Sel: selector.SlackProfile()},
		{Label: "Slack-Profile-Delay", Cfg: red, Sel: selector.SlackProfileDelay()},
		{Label: "Slack-Profile-SIAL", Cfg: red, Sel: selector.SlackProfileSIAL()},
	})
}

// Fig7Bottom reproduces Figure 7 (bottom): isolating the Slack-Dynamic
// model components.
func Fig7Bottom(opts Options) (*SweepResult, error) {
	red := pipeline.Reduced()
	return RunSweep("Figure 7 bottom: Slack-Dynamic model components (reduced machine)", opts, []SeriesSpec{
		{Label: "Struct-All", Cfg: red, Sel: selector.StructAll()},
		{Label: "Slack-Dynamic", Cfg: red, Sel: selector.SlackDynamic()},
		{Label: "Ideal-Slack-Dynamic", Cfg: red, Sel: selector.IdealSlackDynamic()},
		{Label: "Ideal-Slack-Dynamic-Delay", Cfg: red, Sel: selector.IdealSlackDynamicDelay()},
		{Label: "Ideal-Slack-Dynamic-SIAL", Cfg: red, Sel: selector.IdealSlackDynamicSIAL()},
	})
}

// Fig9Top reproduces Figure 9 (top): slack-profile robustness to machine
// configuration, on the MediaBench/CommBench-like suites.
func Fig9Top(opts Options) (*SweepResult, error) {
	if len(opts.Suites) == 0 {
		opts.Suites = []string{"media", "comm"}
	}
	red := pipeline.Reduced()
	w2, w8, dm := pipeline.Width2(), pipeline.Width8(), pipeline.SmallDMem()
	return RunSweep("Figure 9 top: profile robustness to machine configuration", opts, []SeriesSpec{
		{Label: "self-trained", Cfg: red, Sel: selector.SlackProfile()},
		{Label: "cross 2-way", Cfg: red, Sel: selector.SlackProfile(), ProfCfg: &w2},
		{Label: "cross 8-way", Cfg: red, Sel: selector.SlackProfile(), ProfCfg: &w8},
		{Label: "cross dmem/4", Cfg: red, Sel: selector.SlackProfile(), ProfCfg: &dm},
	})
}

// Fig9Bottom reproduces Figure 9 (bottom): slack-profile robustness to
// program input data sets, on the SPECint/MiBench-like suites.
func Fig9Bottom(opts Options) (*SweepResult, error) {
	if len(opts.Suites) == 0 {
		opts.Suites = []string{"intx", "embed"}
	}
	red := pipeline.Reduced()
	return RunSweep("Figure 9 bottom: profile robustness to input data sets", opts, []SeriesSpec{
		{Label: "self-trained", Cfg: red, Sel: selector.SlackProfile()},
		{Label: "cross-input", Cfg: red, Sel: selector.SlackProfile(), ProfInput: "small"},
	})
}

// ResourceSweep generalizes Figure 1 across machine scales: for 2-, 3- and
// 4-wide machines it contrasts singleton execution with Slack-Profile
// mini-graphs, answering the title's question — how many resources can
// mini-graphs buy back? The interesting readings are the iso-performance
// pairs (e.g. "3-wide + mini-graphs vs plain 4-wide").
func ResourceSweep(opts Options) (*SweepResult, error) {
	w2, w3, w4 := pipeline.Width2(), pipeline.Reduced(), pipeline.Baseline()
	return RunSweep("Resource sweep: machine width vs Slack-Profile mini-graphs", opts, []SeriesSpec{
		{Label: "2-wide", Cfg: w2},
		{Label: "2-wide + MG", Cfg: w2, Sel: selector.SlackProfile()},
		{Label: "3-wide", Cfg: w3},
		{Label: "3-wide + MG", Cfg: w3, Sel: selector.SlackProfile()},
		{Label: "4-wide", Cfg: w4},
		{Label: "4-wide + MG", Cfg: w4, Sel: selector.SlackProfile()},
	})
}

// --- Figure 8: limit study ---

// LimitPoint is one mini-graph combination in the exhaustive search.
type LimitPoint struct {
	Mask     uint32 // bit i set = candidate i included
	Coverage float64
	RelPerf  float64 // vs fully-provisioned singleton baseline
}

// LimitResult is the Figure 8 output: the full scatter plus each selector's
// chosen combination.
type LimitResult struct {
	Workload   string
	Candidates []*minigraph.Candidate // the 10 most frequent, disjoint
	Points     []LimitPoint
	Choices    map[string]uint32 // selector name -> mask
	Best       LimitPoint
}

// LimitStudy reproduces the Figure 8 exhaustive search: take the 10 most
// frequently executed non-overlapping candidates of one benchmark, evaluate
// all 1024 subsets on the reduced machine, and compare with what each
// selector would have chosen from the same pool.
func LimitStudy(workloadName, input string, workers int) (*LimitResult, error) {
	bench, err := PrepareSharedByName(workloadName, input)
	if err != nil {
		return nil, err
	}
	top := topDisjoint(bench, 10)
	if len(top) < 2 {
		return nil, fmt.Errorf("limit study: %s has only %d disjoint candidates", workloadName, len(top))
	}
	n := len(top)
	red := pipeline.Reduced()

	baseStats, err := singletonStats(context.Background(), bench, pipeline.Baseline(), nil)
	if err != nil {
		return nil, err
	}
	base := baseStats.Cycles

	res := &LimitResult{
		Workload:   workloadName,
		Candidates: top,
		Points:     make([]LimitPoint, 1<<n),
		Choices:    make(map[string]uint32),
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1<<n {
		workers = 1 << n
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	var firstErr error
	var mu sync.Mutex
	for mask := 0; mask < 1<<n; mask++ {
		wg.Add(1)
		go func(mask int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var subset []*minigraph.Candidate
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					subset = append(subset, top[i])
				}
			}
			sel := minigraph.Select(bench.Prog, subset, bench.Freq, minigraph.DefaultSelectConfig())
			st, err := bench.Run(red, nil, sel)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			res.Points[mask] = LimitPoint{
				Mask:     uint32(mask),
				Coverage: st.Coverage(),
				RelPerf:  float64(base) / float64(st.Cycles),
			}
		}(mask)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res.Best = res.Points[0]
	for _, pt := range res.Points {
		if pt.RelPerf > res.Best.RelPerf {
			res.Best = pt
		}
	}

	// What would each static selector pick from this pool?
	prof, err := bench.Profile(red)
	if err != nil {
		return nil, err
	}
	for _, sel := range []*selector.Selector{
		selector.StructAll(), selector.StructNone(), selector.StructBounded(), selector.SlackProfile(),
	} {
		pool := sel.Pool(bench.Prog, top, prof)
		var mask uint32
		for i, c := range top {
			for _, k := range pool {
				if k == c {
					mask |= 1 << uint(i)
				}
			}
		}
		res.Choices[sel.Name()] = mask
	}
	return res, nil
}

// topDisjoint returns the k most frequently executed pairwise-disjoint
// candidates of a bench, in descending frequency order.
func topDisjoint(b *Bench, k int) []*minigraph.Candidate {
	cands := append([]*minigraph.Candidate(nil), b.Cands...)
	sort.SliceStable(cands, func(i, j int) bool {
		fi := b.Freq[cands[i].Start] * int64(cands[i].N-1)
		fj := b.Freq[cands[j].Start] * int64(cands[j].N-1)
		if fi != fj {
			return fi > fj
		}
		return cands[i].Start < cands[j].Start
	})
	var out []*minigraph.Candidate
	for _, c := range cands {
		if b.Freq[c.Start] == 0 {
			continue
		}
		ok := true
		for _, o := range out {
			if c.Overlaps(o) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
			if len(out) == k {
				break
			}
		}
	}
	return out
}
