package core

import (
	"bytes"
	"encoding/json"
	"expvar"
	"sort"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/simcache"
)

// TestExpvarScrapeMidSweep publishes the cache counters as expvar and
// hammers the scrape path while a sweep runs (exercised under -race in CI):
// every scrape must decode as a consistent JSON snapshot.
func TestExpvarScrapeMidSweep(t *testing.T) {
	ResetCaches()
	PublishExpvars()
	v := expvar.Get("simcache")
	if v == nil {
		t.Fatal("PublishExpvars did not publish simcache")
	}

	stop := make(chan struct{})
	scraped := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scraped <- n
				return
			default:
			}
			var snap CacheCounters
			if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
				t.Errorf("mid-sweep scrape not valid JSON: %v", err)
				scraped <- n
				return
			}
			if snap.Benches.Entries < 0 || snap.Results.Entries < 0 {
				t.Errorf("nonsense snapshot: %+v", snap)
			}
			n++
		}
	}()

	if _, err := RunSweep("expvar-scrape", smallSweepOpts(), smallSpecs()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if n := <-scraped; n == 0 {
		t.Error("scraper never ran")
	}
}

// TestMetricsSweepSeries enables the registry, runs a sweep, and checks the
// Prometheus exposition parses and carries the full instrument set — the
// acceptance floor is twelve series.
func TestMetricsSweepSeries(t *testing.T) {
	ResetCaches()
	reg := EnableMetrics()
	if reg == nil {
		t.Fatal("EnableMetrics returned nil")
	}
	opts := smallSweepOpts()
	if _, err := RunSweep("metrics-series", opts, smallSpecs()); err != nil {
		t.Fatal(err)
	}

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := metrics.ParseText(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatalf("exposition not parseable: %v\n%s", err, b.String())
	}
	if len(samples) < 12 {
		t.Errorf("only %d samples exposed, want >= 12:\n%s", len(samples), b.String())
	}

	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] += s.Value
	}
	for _, name := range []string{
		"mg_sweeps_total", "mg_sweep_tasks_total", "mg_task_wall_seconds_count",
		"mg_cache_lookups_total", "mg_cache_entries", "mg_cache_bytes",
		"mg_sim_runs_total", "mg_sim_cycles_total", "mg_sim_instrs_total",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("series %s missing from exposition", name)
		}
	}
	nTasks := float64(len(opts.workloads()) * len(smallSpecs()))
	if byName["mg_sweep_tasks_total"] < nTasks {
		t.Errorf("mg_sweep_tasks_total = %v, want >= %v", byName["mg_sweep_tasks_total"], nTasks)
	}
	if byName["mg_sim_cycles_total"] <= 0 {
		t.Error("mg_sim_cycles_total never incremented")
	}
	if byName["mg_task_wall_seconds_count"] < nTasks {
		t.Errorf("mg_task_wall_seconds_count = %v, want >= %v", byName["mg_task_wall_seconds_count"], nTasks)
	}
}

// runTracedSweep runs one small sweep with a fresh tracer and cold caches,
// returning the recorded spans.
func runTracedSweep(t *testing.T, workers int) []metrics.SpanRecord {
	t.Helper()
	ResetCaches()
	tr := metrics.NewTracer()
	metrics.InstallTracer(tr)
	defer metrics.InstallTracer(nil)
	opts := smallSweepOpts()
	opts.Workers = workers
	if _, err := RunSweep("traced", opts, smallSpecs()); err != nil {
		t.Fatal(err)
	}
	return tr.Spans()
}

// TestTraceCoversEveryTask checks the span tree a sweep records: one sweep
// root, one task span per (workload, series) pair on a worker tid, and a
// structurally valid Chrome trace export.
func TestTraceCoversEveryTask(t *testing.T) {
	spans := runTracedSweep(t, 2)
	opts := smallSweepOpts()
	ws := opts.workloads()
	specs := smallSpecs()

	attr := func(s metrics.SpanRecord, key string) string {
		for _, l := range s.Attrs {
			if l.Key == key {
				return l.Value
			}
		}
		return ""
	}

	var sweepSpans, taskSpans []metrics.SpanRecord
	for _, s := range spans {
		switch s.Name {
		case "sweep":
			sweepSpans = append(sweepSpans, s)
		case "task":
			taskSpans = append(taskSpans, s)
		}
	}
	if len(sweepSpans) != 1 {
		t.Fatalf("got %d sweep spans, want 1", len(sweepSpans))
	}
	root := sweepSpans[0]
	if root.Tid != 0 {
		t.Errorf("sweep span on tid %d, want 0 (orchestrator)", root.Tid)
	}
	if len(taskSpans) != len(ws)*len(specs) {
		t.Fatalf("got %d task spans, want %d", len(taskSpans), len(ws)*len(specs))
	}
	covered := map[string]bool{}
	for _, s := range taskSpans {
		if s.Pid != root.Pid {
			t.Errorf("task span on pid %d, sweep on %d", s.Pid, root.Pid)
		}
		if s.Tid < 1 {
			t.Errorf("task span on tid %d, want a worker tid >= 1", s.Tid)
		}
		if s.Parent != root.ID {
			t.Errorf("task span parent %d, want sweep %d", s.Parent, root.ID)
		}
		if attr(s, "cache") == "" {
			t.Error("task span missing cache outcome attr")
		}
		covered[attr(s, "workload")+"|"+attr(s, "series")] = true
	}
	for _, w := range ws {
		for _, sp := range specs {
			if !covered[w.Name+"|"+sp.Label] {
				t.Errorf("no task span for (%s, %s)", w.Name, sp.Label)
			}
		}
	}

	var b bytes.Buffer
	if err := metrics.WriteChromeTrace(&b, spans); err != nil {
		t.Fatal(err)
	}
	parsed, err := metrics.ReadChromeTrace(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateChromeTrace(parsed); err != nil {
		t.Errorf("sweep trace invalid: %v", err)
	}
}

// normalizeSpans reduces a span list to a sorted multiset of
// name + attrs, dropping the scheduling-dependent cache/outcome attrs —
// which worker hits and which shares depends on timing, but the set of
// computations performed must not.
func normalizeSpans(spans []metrics.SpanRecord) []string {
	out := make([]string, 0, len(spans))
	for _, s := range spans {
		var attrs []string
		for _, l := range s.Attrs {
			if l.Key == "cache" || l.Key == "outcome" {
				continue
			}
			attrs = append(attrs, l.Key+"="+l.Value)
		}
		sort.Strings(attrs)
		out = append(out, s.Name+"{"+strings.Join(attrs, ",")+"}")
	}
	sort.Strings(out)
	return out
}

// TestTraceStableAcrossWorkers runs the same cold-cache sweep with one and
// four workers: singleflight guarantees each computation happens exactly
// once, so the normalized span multiset must be identical.
func TestTraceStableAcrossWorkers(t *testing.T) {
	one := normalizeSpans(runTracedSweep(t, 1))
	four := normalizeSpans(runTracedSweep(t, 4))
	if len(one) != len(four) {
		t.Fatalf("span count differs: %d with one worker, %d with four\none: %v\nfour: %v",
			len(one), len(four), diffSets(one, four), diffSets(four, one))
	}
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("span multiset differs at %d: %q vs %q\nonly-one: %v\nonly-four: %v",
				i, one[i], four[i], diffSets(one, four), diffSets(four, one))
		}
	}
}

// diffSets returns elements of a (with multiplicity) not matched in b.
func diffSets(a, b []string) []string {
	count := map[string]int{}
	for _, s := range b {
		count[s]++
	}
	var out []string
	for _, s := range a {
		if count[s] > 0 {
			count[s]--
			continue
		}
		out = append(out, s)
	}
	return out
}

// TestCacheOutcomeAttribution checks the three DoCtx outcomes land in the
// trace: a cold lookup is a miss, a repeat is a hit.
func TestCacheOutcomeAttribution(t *testing.T) {
	ResetCaches()
	tr := metrics.NewTracer()
	metrics.InstallTracer(tr)
	defer metrics.InstallTracer(nil)
	opts := smallSweepOpts()
	opts.Workers = 1
	if _, err := RunSweep("outcomes-a", opts, smallSpecs()); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweep("outcomes-b", opts, smallSpecs()); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range tr.Spans() {
		if !strings.HasPrefix(s.Name, "cache.") {
			continue
		}
		for _, l := range s.Attrs {
			if l.Key == "outcome" {
				counts[s.Name+":"+l.Value]++
			}
		}
	}
	if counts["cache.results:"+simcache.Miss] == 0 {
		t.Errorf("no result-cache misses recorded on a cold run: %v", counts)
	}
	if counts["cache.results:"+simcache.Hit] == 0 {
		t.Errorf("no result-cache hits recorded on the repeat run: %v", counts)
	}
}

// TestTraceOffIsFree asserts the disabled path records nothing and costs
// no allocations in StartSpan beyond the call itself.
func TestTraceOffIsFree(t *testing.T) {
	metrics.InstallTracer(nil)
	ResetCaches()
	opts := smallSweepOpts()
	opts.Workloads = []string{opts.workloads()[0].Name}
	if _, err := RunSweep("untraced", opts, smallSpecs()[:1]); err != nil {
		t.Fatal(err)
	}
	// No tracer was installed, so nothing to assert beyond "it ran" — the
	// nil-guard property itself is covered in internal/metrics. This test
	// exists to keep the disabled path exercised from core.
	if metrics.CurrentTracer() != nil {
		t.Error("tracer installed unexpectedly")
	}
}
