package core

import (
	"testing"
)

// TestPaperClaims asserts the paper's qualitative results — the shape
// claims listed in DESIGN.md — over the full 78-program population on the
// small inputs. This is the repository's primary end-to-end regression:
// if a change to the simulator, the selectors, or the workloads breaks one
// of the reproduced phenomena, this test localizes which claim died.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full-population sweep")
	}
	opts := Options{Input: "small"}

	top, err := Fig6Top(opts)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Fig6Middle(opts)
	if err != nil {
		t.Fatal(err)
	}

	perf := func(r *SweepResult, label string) float64 { return r.Perf.Get(label).Mean() }
	cov := func(r *SweepResult, label string) float64 { return r.Coverage.Get(label).Mean() }

	// C1: the reduced machine without mini-graphs loses performance.
	if v := perf(top, "no mini-graphs"); v >= 0.98 {
		t.Errorf("C1: reduced/no-MG mean = %.3f, want a visible slowdown", v)
	}

	// C2: Struct-All's coverage is well above Struct-None's (paper: ~2x).
	ca, cn := cov(top, "Struct-All"), cov(top, "Struct-None")
	if ca < cn*1.2 {
		t.Errorf("C2: coverage Struct-All %.3f vs Struct-None %.3f, want >= 1.2x", ca, cn)
	}

	// C3: Slack-Profile's coverage sits strictly between the extremes.
	if cp := cov(top, "Slack-Profile"); !(cn < cp && cp < ca) {
		t.Errorf("C3: Slack-Profile coverage %.3f not between %.3f and %.3f", cp, cn, ca)
	}

	// C4: Slack-Profile is the best selector on both machines.
	for _, r := range []*SweepResult{top, mid} {
		sp := perf(r, "Slack-Profile")
		for _, other := range []string{"Struct-All", "Struct-None", "Struct-Bounded", "Slack-Dynamic"} {
			if sp <= perf(r, other) {
				t.Errorf("C4: Slack-Profile (%.3f) not above %s (%.3f) [%s]",
					sp, other, perf(r, other), r.Perf.Title)
			}
		}
	}

	// C5: Struct-All produces a pathological tail (programs below the
	// no-mini-graph machine) and Struct-None essentially never does.
	nomg := top.Perf.Get("no mini-graphs")
	sa := top.Perf.Get("Struct-All")
	sn := top.Perf.Get("Struct-None")
	saBelow, snBelow := 0, 0
	for prog, base := range nomg.Values {
		if sa.Values[prog] < base*0.995 {
			saBelow++
		}
		if sn.Values[prog] < base*0.98 {
			snBelow++
		}
	}
	if saBelow < 5 {
		t.Errorf("C5: Struct-All below no-MG on only %d programs, want a visible tail", saBelow)
	}
	if snBelow > 3 {
		t.Errorf("C5: Struct-None below no-MG on %d programs, want ~none", snBelow)
	}

	// C6: the Struct-All / Struct-None S-curves cross — each wins a
	// substantial share of programs on the reduced machine.
	saWins := 0
	for prog := range sa.Values {
		if sa.Values[prog] > sn.Values[prog] {
			saWins++
		}
	}
	if saWins < 15 || saWins > 63 {
		t.Errorf("C6: Struct-All wins %d/78; want a genuine crossing", saWins)
	}

	// C7: Slack-Profile lets the reduced machine beat the fully-provisioned
	// baseline on average (the paper's headline).
	if sp := perf(top, "Slack-Profile"); sp < 1.0 {
		t.Errorf("C7: Slack-Profile on reduced = %.3f, want >= 1.0", sp)
	}

	// C8: explicit delay accounting beats the SIAL arrival-order heuristic.
	f7, err := Fig7Top(opts)
	if err != nil {
		t.Fatal(err)
	}
	sp, sial := perf(f7, "Slack-Profile"), perf(f7, "Slack-Profile-SIAL")
	if sp < sial+0.03 {
		t.Errorf("C8: Slack-Profile %.3f vs SIAL %.3f, want a clear gap", sp, sial)
	}

	// C9: removing the outlining penalty improves Slack-Dynamic, and the
	// penalty-free model beats Struct-All.
	f7b, err := Fig7Bottom(opts)
	if err != nil {
		t.Fatal(err)
	}
	sd, isd := perf(f7b, "Slack-Dynamic"), perf(f7b, "Ideal-Slack-Dynamic")
	if isd < sd {
		t.Errorf("C9: Ideal-Slack-Dynamic %.3f below Slack-Dynamic %.3f", isd, sd)
	}
	if isd <= perf(f7b, "Struct-All") {
		t.Errorf("C9: Ideal-Slack-Dynamic %.3f not above Struct-All %.3f",
			isd, perf(f7b, "Struct-All"))
	}
}

// TestAblationClaims asserts the design-choice sweeps behave sensibly:
// size and input limits trade coverage monotonically, and the MGT budget
// saturates.
func TestAblationClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full-population sweep")
	}
	opts := Options{Input: "small", Suites: []string{"media", "embed"}}

	ml, err := AblationMaxLen(opts)
	if err != nil {
		t.Fatal(err)
	}
	c2 := ml.Coverage.Get("maxlen=2").Mean()
	c3 := ml.Coverage.Get("maxlen=3").Mean()
	c4 := ml.Coverage.Get("maxlen=4").Mean()
	if !(c2 < c3 && c3 < c4) {
		t.Errorf("coverage not monotone in MaxLen: %.3f %.3f %.3f", c2, c3, c4)
	}

	in, err := AblationMaxInputs(opts)
	if err != nil {
		t.Fatal(err)
	}
	if in.Coverage.Get("3 inputs (this paper)").Mean() <= in.Coverage.Get("2 inputs (MICRO-04)").Mean() {
		t.Error("the third register input should increase coverage (Section 2's design change)")
	}

	// Section 4.3, "think globally, act locally": local slack must be the
	// better rule-#4 budget, because global slack is relative to a critical
	// path that shifts as mini-graphs are introduced.
	sc, err := AblationSlackScope(opts)
	if err != nil {
		t.Fatal(err)
	}
	local := sc.Perf.Get("local slack (paper)").Mean()
	global := sc.Perf.Get("global slack").Mean()
	if local <= global {
		t.Errorf("local slack (%.3f) should beat global slack (%.3f)", local, global)
	}

	bg, err := AblationBudget(opts)
	if err != nil {
		t.Fatal(err)
	}
	if bg.Coverage.Get("budget=4").Mean() >= bg.Coverage.Get("budget=512").Mean() {
		t.Error("a 4-template budget should constrain coverage")
	}
	// 64 vs 512: saturated for kernel-scale programs.
	d := bg.Perf.Get("budget=512").Mean() - bg.Perf.Get("budget=64").Mean()
	if d > 0.02 || d < -0.02 {
		t.Errorf("budget 64 -> 512 should be saturated, got %.3f delta", d)
	}
}
