package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// fakeNow is a hand-advanced clock for driving Watchdog.Check without
// sleeps.
type fakeNow struct{ t time.Time }

func newFakeNow() *fakeNow {
	return &fakeNow{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}
func (f *fakeNow) now() time.Time          { return f.t }
func (f *fakeNow) advance(d time.Duration) { f.t = f.t.Add(d) }

// sweepWith registers a sweep of n tasks and returns its tracker.
func sweepWith(t *testing.T, n int) *metrics.SweepProgress {
	t.Helper()
	metrics.ResetProgress()
	t.Cleanup(metrics.ResetProgress)
	tasks := make([][2]string, n)
	for i := range tasks {
		tasks[i] = [2]string{"wl", "series"}
	}
	return metrics.StartSweep("wd-test", tasks)
}

// TestWatchdogSlowTask drives the slow-task detector: a task running far
// past the median of completed tasks is reported exactly once, with the
// incident attached to the sweep snapshot.
func TestWatchdogSlowTask(t *testing.T) {
	p := sweepWith(t, 4)
	clock := newFakeNow()
	w := NewWatchdog(p, "wd-test", WatchdogConfig{SlowFactor: 8, MinDone: 3, Wedge: 240 * time.Hour}, clock.now)

	// Three tasks complete (real wall, microseconds — a tiny but nonzero
	// median); the fourth keeps running.
	for i := 0; i < 3; i++ {
		p.TaskRunning(i, i)
		p.TaskDone(i, "miss", nil)
	}
	p.TaskRunning(3, 0)

	// First look: watchdog observes task 3 start; nothing is slow yet.
	if inc := w.Check(); len(inc) != 0 {
		t.Fatalf("incidents on first check: %+v", inc)
	}
	// Ten minutes later the task is thousands of medians over the limit.
	clock.advance(10 * time.Minute)
	inc := w.Check()
	if len(inc) != 1 {
		t.Fatalf("got %d incidents, want 1: %+v", len(inc), inc)
	}
	got := inc[0]
	if got.Kind != IncidentSlowTask || got.Workload != "wl" || got.Series != "series" {
		t.Errorf("incident identity wrong: %+v", got)
	}
	if got.ElapsedMS < float64(9*time.Minute/time.Millisecond) {
		t.Errorf("elapsed %v ms, want ~10 minutes", got.ElapsedMS)
	}
	if got.MedianMS <= 0 {
		t.Errorf("median not measured: %v", got.MedianMS)
	}
	if !strings.Contains(got.Detail, "over the sweep median") ||
		!strings.Contains(got.Detail, "flight recorder") {
		t.Errorf("detail missing context: %q", got.Detail)
	}
	if !strings.Contains(got.Stacks, "goroutine") {
		t.Errorf("no goroutine dump captured: %q", got.Stacks)
	}
	if got.Time == "" {
		t.Error("incident not timestamped")
	}

	// Reported once: later checks stay quiet for the same task.
	clock.advance(10 * time.Minute)
	if inc := w.Check(); len(inc) != 0 {
		t.Errorf("slow task re-reported: %+v", inc)
	}
	if snap := p.Snapshot(); len(snap.Incidents) != 1 {
		t.Errorf("snapshot carries %d incidents, want 1", len(snap.Incidents))
	}
}

// TestWatchdogMinDone checks no slow-task incident fires before enough
// tasks completed to trust the median.
func TestWatchdogMinDone(t *testing.T) {
	p := sweepWith(t, 3)
	clock := newFakeNow()
	w := NewWatchdog(p, "wd-test", WatchdogConfig{MinDone: 3, Wedge: 240 * time.Hour}, clock.now)

	p.TaskRunning(0, 0)
	p.TaskDone(0, "miss", nil)
	p.TaskRunning(1, 0)
	p.TaskDone(1, "miss", nil)
	p.TaskRunning(2, 0) // only 2 of the required 3 done

	w.Check()
	clock.advance(time.Hour)
	if inc := w.Check(); len(inc) != 0 {
		t.Errorf("slow-task fired below MinDone: %+v", inc)
	}
}

// TestWatchdogWedge drives the wedge detector: a sweep with work left and
// no completions for the wedge window fires once, then re-arms after
// progress resumes.
func TestWatchdogWedge(t *testing.T) {
	p := sweepWith(t, 2)
	clock := newFakeNow()
	w := NewWatchdog(p, "wd-test", WatchdogConfig{Wedge: 2 * time.Minute}, clock.now)

	p.TaskRunning(0, 0)
	w.Check() // baseline: lastProgress = now

	clock.advance(90 * time.Second)
	if inc := w.Check(); len(inc) != 0 {
		t.Fatalf("wedge before the window: %+v", inc)
	}
	clock.advance(time.Minute) // 2m30s of no progress
	inc := w.Check()
	if len(inc) != 1 || inc[0].Kind != IncidentWedge {
		t.Fatalf("got %+v, want one wedge incident", inc)
	}
	if !strings.Contains(inc[0].Detail, "no task completed") {
		t.Errorf("wedge detail: %q", inc[0].Detail)
	}
	// Still wedged: the episode is reported once.
	clock.advance(time.Hour)
	if inc := w.Check(); len(inc) != 0 {
		t.Errorf("wedge re-reported within one episode: %+v", inc)
	}

	// Progress resumes, then stalls again: a fresh episode fires.
	p.TaskDone(0, "miss", nil)
	p.TaskRunning(1, 0)
	if inc := w.Check(); len(inc) != 0 {
		t.Fatalf("incident right after progress: %+v", inc)
	}
	clock.advance(3 * time.Minute)
	inc = w.Check()
	if len(inc) != 1 || inc[0].Kind != IncidentWedge {
		t.Errorf("second wedge episode not reported: %+v", inc)
	}

	// Finished sweep: never a wedge, no matter how long ago it ended.
	p.TaskDone(1, "miss", nil)
	p.Finish()
	w.Check()
	clock.advance(time.Hour)
	if inc := w.Check(); len(inc) != 0 {
		t.Errorf("wedge on a finished sweep: %+v", inc)
	}
}

// TestWatchdogLoop smoke-tests the real StartWatchdog/Stop lifecycle on a
// fast cadence (race coverage of the loop against live task updates).
func TestWatchdogLoop(t *testing.T) {
	p := sweepWith(t, 2)
	w := StartWatchdog(p, "wd-loop", WatchdogConfig{Every: time.Millisecond})
	p.TaskRunning(0, 0)
	p.TaskDone(0, "miss", nil)
	time.Sleep(5 * time.Millisecond)
	w.Stop()
	w.Stop()                // second Stop must not panic
	(*Watchdog)(nil).Stop() // nil-safe
}
