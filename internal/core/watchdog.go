package core

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// This file is the sweep watchdog: a low-frequency checker that watches a
// sweep's live progress (the same SweepProgress feeding /debug/sweep) for
// two pathologies — a task running far past the sweep's running median
// ("slow-task"), and a sweep making no progress at all for a configurable
// period ("wedge"). Each detection emits one structured incident: the
// offending (workload, series), elapsed vs. median, a flight-recorder
// summary, and a full goroutine stack dump — attached to the sweep snapshot
// (so /debug/sweep shows it) and logged through the telemetry logger. The
// watchdog only reads snapshots and never blocks the workers; with
// Options.Watchdog nil it does not exist at all.

// Incident kinds emitted by the watchdog.
const (
	IncidentSlowTask = "slow-task"
	IncidentWedge    = "wedge"
)

// WatchdogConfig tunes the sweep watchdog. The zero value of any field
// selects its default.
type WatchdogConfig struct {
	// SlowFactor flags a running task once its elapsed time exceeds
	// SlowFactor × the median of the sweep's completed tasks. Default 8.
	SlowFactor float64
	// MinDone is how many tasks must have completed before the median is
	// trusted; no slow-task incidents fire below it. Default 3.
	MinDone int
	// Wedge flags the whole sweep when no task has completed for this
	// long while work remains. Default 2m.
	Wedge time.Duration
	// Every is the check cadence of the background loop. Default 2s.
	Every time.Duration
	// MaxStackKB caps the goroutine dump captured per incident. Default 64.
	MaxStackKB int
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.SlowFactor <= 0 {
		c.SlowFactor = 8
	}
	if c.MinDone <= 0 {
		c.MinDone = 3
	}
	if c.Wedge <= 0 {
		c.Wedge = 2 * time.Minute
	}
	if c.Every <= 0 {
		c.Every = 2 * time.Second
	}
	if c.MaxStackKB <= 0 {
		c.MaxStackKB = 64
	}
	return c
}

// Watchdog checks one sweep for slow tasks and wedges. All state is owned
// by the single goroutine (or test) calling Check; only the snapshot reads
// synchronize with the workers.
type Watchdog struct {
	track *metrics.SweepProgress
	title string
	cfg   WatchdogConfig
	now   func() time.Time

	started      map[int]time.Time // task index -> first observed running
	reported     map[int]bool      // task index -> slow incident already emitted
	doneSeen     int
	lastProgress time.Time
	wedged       bool // current wedge episode already reported

	stop chan struct{}
	done chan struct{}
}

// NewWatchdog creates a watchdog without starting its loop; tests drive
// Check directly with a fake clock.
func NewWatchdog(track *metrics.SweepProgress, title string, cfg WatchdogConfig, now func() time.Time) *Watchdog {
	return &Watchdog{
		track:    track,
		title:    title,
		cfg:      cfg.withDefaults(),
		now:      now,
		started:  map[int]time.Time{},
		reported: map[int]bool{},
	}
}

// StartWatchdog creates a watchdog on the real clock and starts its
// background check loop. Stop it when the sweep finishes.
func StartWatchdog(track *metrics.SweepProgress, title string, cfg WatchdogConfig) *Watchdog {
	w := NewWatchdog(track, title, cfg, time.Now)
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.cfg.Every)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Check()
			}
		}
	}()
	return w
}

// Stop ends a StartWatchdog loop; nil-safe and a no-op for loop-less
// watchdogs.
func (w *Watchdog) Stop() {
	if w == nil || w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
	w.stop = nil
}

// Check takes one look at the sweep and returns any new incidents (also
// attached to the sweep's snapshot and logged). The loop calls it every
// cfg.Every; tests call it directly.
func (w *Watchdog) Check() []metrics.Incident {
	now := w.now()
	if w.lastProgress.IsZero() {
		w.lastProgress = now
	}
	snap := w.track.Snapshot()

	// Track first-running observations and collect completed durations from
	// the snapshot's own wall measurements.
	var durations []float64
	for i := range snap.Tasks {
		t := &snap.Tasks[i]
		switch t.State {
		case metrics.TaskRunning:
			if _, ok := w.started[i]; !ok {
				w.started[i] = now
			}
		case metrics.TaskDone, metrics.TaskError:
			if t.ElapsedMS > 0 {
				durations = append(durations, t.ElapsedMS)
			}
		}
	}
	if snap.Done > w.doneSeen {
		w.doneSeen = snap.Done
		w.lastProgress = now
		w.wedged = false // progress resumed: arm wedge detection again
	}

	var incidents []metrics.Incident

	// Slow tasks: elapsed beyond SlowFactor × median of completed tasks.
	if len(durations) >= w.cfg.MinDone {
		sort.Float64s(durations)
		median := durations[len(durations)/2]
		limit := w.cfg.SlowFactor * median
		idxs := make([]int, 0, len(w.started))
		for i := range w.started {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			if w.reported[i] || snap.Tasks[i].State != metrics.TaskRunning {
				continue
			}
			elapsed := float64(now.Sub(w.started[i])) / float64(time.Millisecond)
			if median <= 0 || elapsed <= limit {
				continue
			}
			w.reported[i] = true
			t := snap.Tasks[i]
			incidents = append(incidents, w.incident(metrics.Incident{
				Kind:      IncidentSlowTask,
				Workload:  t.Workload,
				Series:    t.Series,
				Worker:    t.Worker,
				ElapsedMS: elapsed,
				MedianMS:  median,
				Detail: fmt.Sprintf("task %.1fx over the sweep median (%.0f ms vs %.0f ms, limit %.1fx)",
					elapsed/median, elapsed, median, w.cfg.SlowFactor),
			}, now))
		}
	}

	// Wedge: work remains but nothing has completed for cfg.Wedge.
	if snap.Active && snap.Done < snap.Total && !w.wedged &&
		now.Sub(w.lastProgress) >= w.cfg.Wedge {
		w.wedged = true
		incidents = append(incidents, w.incident(metrics.Incident{
			Kind: IncidentWedge,
			Detail: fmt.Sprintf("no task completed for %v (%d/%d done, %d running)",
				now.Sub(w.lastProgress).Round(time.Second), snap.Done, snap.Total, snap.Running),
		}, now))
	}

	for _, inc := range incidents {
		w.track.AddIncident(inc)
		if log := tlog(); log != nil {
			log.Warn("watchdog.incident", "sweep", w.title, "kind", inc.Kind,
				"workload", inc.Workload, "series", inc.Series,
				"elapsed_ms", inc.ElapsedMS, "median_ms", inc.MedianMS,
				"detail", inc.Detail)
		}
	}
	return incidents
}

// incident fills the fields shared by every incident kind: timestamp,
// flight-recorder summary, and the goroutine dump.
func (w *Watchdog) incident(inc metrics.Incident, now time.Time) metrics.Incident {
	inc.Time = now.UTC().Format(time.RFC3339)
	inc.Detail += "; " + flightSummary()
	inc.Stacks = dumpStacks(w.cfg.MaxStackKB * 1024)
	return inc
}

// flightSummary describes the flight recorder's state for incident detail.
func flightSummary() string {
	f := obs.Flight()
	if f == nil {
		return "flight recorder off (run with -httpaddr to enable /debug/trace)"
	}
	total, dropped := f.Totals()
	return fmt.Sprintf("flight recorder: %d records seen, %d dropped", total, dropped)
}

// dumpStacks captures all goroutine stacks, truncated at max bytes.
func dumpStacks(max int) string {
	buf := make([]byte, max)
	n := runtime.Stack(buf, true)
	if n >= len(buf) {
		return string(buf[:n]) + "\n...[truncated]"
	}
	return string(buf[:n])
}
