package cache

import (
	"testing"
	"testing/quick"
)

// TestAssociativityConflict: k+1 lines mapping to one set thrash a k-way
// cache but fit in a (2k)-way cache of the same size.
func TestAssociativityConflict(t *testing.T) {
	size, line := 4096, 64
	twoWay := New(Config{Size: size, LineSize: line, Assoc: 2, Latency: 1})
	fourWay := New(Config{Size: size, LineSize: line, Assoc: 4, Latency: 1})
	// Addresses with identical set index in both: stride = size/assoc is
	// assoc-dependent, so use stride = size (same set in any geometry).
	addrs := []uint32{0, uint32(size), uint32(2 * size)}
	for round := 0; round < 10; round++ {
		for _, a := range addrs {
			twoWay.Access(a, false)
			fourWay.Access(a, false)
		}
	}
	if twoWay.Misses <= fourWay.Misses {
		t.Errorf("2-way (%d misses) should thrash more than 4-way (%d)",
			twoWay.Misses, fourWay.Misses)
	}
	// 3 conflicting lines fit in 4 ways: only the 3 cold misses.
	if fourWay.Misses != 3 {
		t.Errorf("4-way misses = %d, want 3 cold misses", fourWay.Misses)
	}
}

// Property: a working set no larger than the cache never misses after the
// first pass, for any geometry, when accessed with line granularity in a
// fixed order.
func TestResidencyProperty(t *testing.T) {
	f := func(assocSel, linesSel uint8) bool {
		assoc := []int{1, 2, 4, 8}[int(assocSel)%4]
		line := 32
		sets := 16
		c := New(Config{Size: sets * assoc * line, LineSize: line, Assoc: assoc, Latency: 1})
		// Touch exactly one line per set per way: fills without eviction.
		nLines := sets * assoc
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < nLines; i++ {
				c.Access(uint32(i*line), false)
			}
		}
		// Only the first pass misses.
		return c.Misses == int64(nLines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
