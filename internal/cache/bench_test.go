package cache

import "testing"

// BenchmarkL1Hit measures the hot cache-access path.
func BenchmarkL1Hit(b *testing.B) {
	c := New(Config{Size: 32 << 10, LineSize: 32, Assoc: 2, Latency: 3})
	c.Access(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}

// BenchmarkStreamingMisses measures a streaming miss pattern.
func BenchmarkStreamingMisses(b *testing.B) {
	c := New(Config{Size: 32 << 10, LineSize: 32, Assoc: 2, Latency: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i)*32, false)
	}
}

// BenchmarkHierarchy measures the full L1/L2/memory composition.
func BenchmarkHierarchy(b *testing.B) {
	h := NewHierarchy(DefaultHierConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessD(int64(i), uint32(i%4096)*16, i%4 == 0)
	}
}
