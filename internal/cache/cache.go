// Package cache implements the memory system from Table 1 of the paper:
// 32KB 2-way 3-cycle L1 instruction and data caches, 64-entry 4-way I and D
// TLBs, a 1MB 4-way 12-cycle unified L2, a 200-cycle main memory, and a 16B
// memory bus clocked at 1/4 of the core frequency.
//
// The model is latency-oriented: an access at cycle `now` returns the cycle
// at which the data is available. Main-memory transfers serialize on the
// bus. Caches are write-back/write-allocate; dirty evictions consume a bus
// slot but do not delay the triggering access (an eviction buffer).
package cache

// Config sizes one cache level.
type Config struct {
	Size     int // total bytes
	LineSize int // bytes per line
	Assoc    int // ways
	Latency  int // access latency in cycles (hit time)
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
	lru   uint64
}

// Cache is one set-associative, LRU, write-back cache level. The line
// array is flat and set-major (set s occupies lines[s*assoc:(s+1)*assoc]):
// set indexing is on the simulator's per-access hot path, and the flat
// layout plus mask/shift indexing (all practical configurations have a
// power-of-two set count) avoids a pointer chase and two integer divisions
// per access.
type Cache struct {
	cfg      Config
	lines    []line
	nsets    uint32
	assoc    int
	lineBits uint
	setMask  uint32 // nsets-1, used when setShift >= 0
	setShift int    // log2(nsets), or -1 when nsets is not a power of two
	tick     uint64

	Hits, Misses, Evictions, DirtyEvictions int64
}

// New builds a cache from a configuration.
func New(cfg Config) *Cache {
	nsets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if nsets < 1 {
		nsets = 1
	}
	lb := uint(0)
	for 1<<lb < cfg.LineSize {
		lb++
	}
	c := &Cache{
		cfg:      cfg,
		lines:    make([]line, nsets*cfg.Assoc),
		nsets:    uint32(nsets),
		assoc:    cfg.Assoc,
		lineBits: lb,
		setShift: -1,
	}
	if nsets&(nsets-1) == 0 {
		c.setMask = uint32(nsets - 1)
		sh := 0
		for 1<<sh != nsets {
			sh++
		}
		c.setShift = sh
	}
	return c
}

// Latency returns the hit latency.
func (c *Cache) Latency() int { return c.cfg.Latency }

func (c *Cache) index(addr uint32) (set uint32, tag uint32) {
	l := addr >> c.lineBits
	if c.setShift >= 0 {
		return l & c.setMask, l >> uint(c.setShift)
	}
	return l % c.nsets, l / c.nsets
}

// set returns the ways of one set.
func (c *Cache) set(set uint32) []line {
	i := int(set) * c.assoc
	return c.lines[i : i+c.assoc]
}

// Lookup probes the cache without filling. Returns hit.
func (c *Cache) Lookup(addr uint32) bool {
	set, tag := c.index(addr)
	for _, l := range c.set(set) {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Access performs a read or write. On a miss the line is filled
// (write-allocate). It returns whether the access hit and whether the fill
// evicted a dirty line (which costs a bus transfer upstream).
func (c *Cache) Access(addr uint32, write bool) (hit, dirtyEvict bool) {
	set, tag := c.index(addr)
	c.tick++
	s := c.set(set)
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			s[i].lru = c.tick
			if write {
				s[i].dirty = true
			}
			c.Hits++
			return true, false
		}
	}
	c.Misses++
	// Fill: choose invalid way or LRU victim.
	victim := 0
	for i := range s {
		if !s[i].valid {
			victim = i
			break
		}
		if s[i].lru < s[victim].lru {
			victim = i
		}
	}
	if s[victim].valid {
		c.Evictions++
		if s[victim].dirty {
			c.DirtyEvictions++
			dirtyEvict = true
		}
	}
	s[victim] = line{valid: true, dirty: write, tag: tag, lru: c.tick}
	return false, dirtyEvict
}

// Reset restores the cache to its post-New state (all lines invalid,
// counters zero) without reallocating the line array, so pooled simulation
// machines can reuse it across runs.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.tick = 0
	c.Hits, c.Misses, c.Evictions, c.DirtyEvictions = 0, 0, 0, 0
}

// ClearStats zeroes the access counters without touching line contents, so
// a functionally warmed cache starts a measured window with clean stats.
func (c *Cache) ClearStats() {
	c.Hits, c.Misses, c.Evictions, c.DirtyEvictions = 0, 0, 0, 0
}

// MissRate returns misses / (hits+misses).
func (c *Cache) MissRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}

// TLB is a set-associative translation buffer over 4KB pages.
type TLB struct {
	inner *Cache
	// MissPenalty is the page-walk latency in cycles.
	MissPenalty int
}

const pageBits = 12

// NewTLB builds a TLB with the given total entries and associativity.
func NewTLB(entries, assoc, missPenalty int) *TLB {
	// Reuse the cache structure: one "byte" per page, line size 1, so the
	// total line count equals the requested entry count.
	return &TLB{
		inner:       New(Config{Size: entries, LineSize: 1, Assoc: assoc}),
		MissPenalty: missPenalty,
	}
}

// Access translates addr, returning the added latency (0 on hit).
func (t *TLB) Access(addr uint32) int {
	hit, _ := t.inner.Access(addr>>pageBits, false)
	if hit {
		return 0
	}
	return t.MissPenalty
}

// Misses returns the TLB miss count.
func (t *TLB) Misses() int64 { return t.inner.Misses }

// Reset restores the TLB to its post-New state without reallocating.
func (t *TLB) Reset() { t.inner.Reset() }

// ClearStats zeroes the miss counters, keeping translations resident.
func (t *TLB) ClearStats() { t.inner.ClearStats() }

// HierConfig sizes a full hierarchy.
type HierConfig struct {
	L1I, L1D, L2 Config
	ITLBEntries  int
	DTLBEntries  int
	TLBAssoc     int
	TLBPenalty   int
	MemLatency   int // main-memory access latency
	BusInterval  int // core cycles per 16B bus transfer (bus at 1/4 core clock)
}

// DefaultHierConfig is Table 1's memory system.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:         Config{Size: 32 << 10, LineSize: 32, Assoc: 2, Latency: 3},
		L1D:         Config{Size: 32 << 10, LineSize: 32, Assoc: 2, Latency: 3},
		L2:          Config{Size: 1 << 20, LineSize: 64, Assoc: 4, Latency: 12},
		ITLBEntries: 64,
		DTLBEntries: 64,
		TLBAssoc:    4,
		TLBPenalty:  30,
		MemLatency:  200,
		// 32B L1 line over a 16B bus at 1/4 core clock: 2 beats * 4 = 8 cycles.
		BusInterval: 8,
	}
}

// Hierarchy is the complete memory system.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	ITLB, DTLB   *TLB
	cfg          HierConfig
	busFree      int64 // next cycle the memory bus is free

	MemAccesses int64
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	return &Hierarchy{
		L1I:  New(cfg.L1I),
		L1D:  New(cfg.L1D),
		L2:   New(cfg.L2),
		ITLB: NewTLB(cfg.ITLBEntries, cfg.TLBAssoc, cfg.TLBPenalty),
		DTLB: NewTLB(cfg.DTLBEntries, cfg.TLBAssoc, cfg.TLBPenalty),
		cfg:  cfg,
	}
}

// Reset restores every level of the hierarchy to its post-New state without
// reallocating, so pooled simulation machines can reuse it across runs.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.busFree = 0
	h.MemAccesses = 0
}

// ClearStats zeroes every level's access counters and the memory-access
// count, keeping all resident lines and translations. Pair with WarmI/WarmD:
// warm first, clear, then measure.
func (h *Hierarchy) ClearStats() {
	h.L1I.ClearStats()
	h.L1D.ClearStats()
	h.L2.ClearStats()
	h.ITLB.ClearStats()
	h.DTLB.ClearStats()
	h.MemAccesses = 0
}

// warm performs a functional (timing-free) access: the TLB, L1, and — on an
// L1 miss — L2 fill exactly as a timed access would, but the memory bus and
// the MemAccesses counter are untouched, so pre-warming cannot perturb the
// timing of the measured window that follows.
func (h *Hierarchy) warm(l1 *Cache, tlb *TLB, addr uint32, write bool) {
	tlb.Access(addr)
	hit, _ := l1.Access(addr, write)
	if !hit {
		h.L2.Access(addr, false)
	}
}

// WarmI functionally fills the instruction path for addr (no timing).
func (h *Hierarchy) WarmI(addr uint32) { h.warm(h.L1I, h.ITLB, addr, false) }

// WarmD functionally fills the data path for addr (no timing).
func (h *Hierarchy) WarmD(addr uint32, write bool) { h.warm(h.L1D, h.DTLB, addr, write) }

// memAccess serializes a main-memory transfer on the bus starting no
// earlier than `ready` and returns its completion cycle.
func (h *Hierarchy) memAccess(ready int64) int64 {
	start := ready
	if h.busFree > start {
		start = h.busFree
	}
	h.busFree = start + int64(h.cfg.BusInterval)
	h.MemAccesses++
	return start + int64(h.cfg.MemLatency)
}

func (h *Hierarchy) access(now int64, l1 *Cache, tlb *TLB, addr uint32, write bool) int64 {
	t := now + int64(tlb.Access(addr))
	hit, dirty := l1.Access(addr, write)
	if dirty {
		// Eviction buffer: consume a future bus slot without delaying us.
		h.busFree += int64(h.cfg.BusInterval)
	}
	t += int64(l1.Latency())
	if hit {
		return t
	}
	hit2, dirty2 := h.L2.Access(addr, false)
	if dirty2 {
		h.busFree += int64(h.cfg.BusInterval)
	}
	t += int64(h.L2.Latency())
	if hit2 {
		return t
	}
	return h.memAccess(t)
}

// AccessI fetches instruction memory at cycle now; returns completion cycle.
func (h *Hierarchy) AccessI(now int64, addr uint32) int64 {
	return h.access(now, h.L1I, h.ITLB, addr, false)
}

// AccessD performs a data access at cycle now; returns completion cycle.
func (h *Hierarchy) AccessD(now int64, addr uint32, write bool) int64 {
	return h.access(now, h.L1D, h.DTLB, addr, write)
}

// L1DHitLatency is the common-case load-to-use latency the scheduler
// speculates on when it issues dependents of a load.
func (h *Hierarchy) L1DHitLatency() int { return h.cfg.L1D.Latency }
