package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets * 2 ways * 16B lines = 128B.
	return New(Config{Size: 128, LineSize: 16, Assoc: 2, Latency: 3})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if hit, _ := c.Access(0x100, false); hit {
		t.Error("cold access should miss")
	}
	if hit, _ := c.Access(0x100, false); !hit {
		t.Error("second access should hit")
	}
	if hit, _ := c.Access(0x10f, false); !hit {
		t.Error("same-line access should hit")
	}
	if hit, _ := c.Access(0x110, false); hit {
		t.Error("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d, want 2,2", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 sets, 2 ways; set stride = 4*16 = 64 bytes
	a := uint32(0x000)
	b := uint32(0x040) // same set: line numbers differ by 4 = number of sets
	d := uint32(0x080)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // touch a; b becomes LRU
	c.Access(d, false) // evicts b
	if hit, _ := c.Access(a, false); !hit {
		t.Error("a should survive")
	}
	if hit, _ := c.Access(b, false); hit {
		t.Error("b should have been evicted")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := small()
	c.Access(0x000, true) // dirty
	c.Access(0x040, false)
	_, dirty := c.Access(0x080, false) // evicts 0x000 (LRU, dirty)
	if !dirty {
		t.Error("evicting a written line should report dirtyEvict")
	}
	if c.DirtyEvictions != 1 {
		t.Errorf("DirtyEvictions = %d, want 1", c.DirtyEvictions)
	}
}

func TestLookupDoesNotFill(t *testing.T) {
	c := small()
	if c.Lookup(0x200) {
		t.Error("lookup of absent line should miss")
	}
	if hit, _ := c.Access(0x200, false); hit {
		t.Error("lookup must not have filled the line")
	}
	if !c.Lookup(0x200) {
		t.Error("lookup after fill should hit")
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	c.Access(0x0, false)
	c.Access(0x0, false)
	c.Access(0x0, false)
	c.Access(0x0, false)
	if r := c.MissRate(); r != 0.25 {
		t.Errorf("miss rate = %f, want 0.25", r)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4, 2, 30)
	if lat := tlb.Access(0x1000); lat != 30 {
		t.Errorf("cold TLB access latency = %d, want 30", lat)
	}
	if lat := tlb.Access(0x1abc); lat != 0 {
		t.Errorf("same-page access latency = %d, want 0", lat)
	}
	if lat := tlb.Access(0x2000); lat != 30 {
		t.Errorf("new page latency = %d, want 30", lat)
	}
	if tlb.Misses() != 2 {
		t.Errorf("TLB misses = %d, want 2", tlb.Misses())
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	// Prime the TLB page so TLB latency doesn't confound.
	h.DTLB.Access(0x5000)

	// Cold: L1 miss + L2 miss -> 3 + 12 + 200 = 215 relative to now.
	done := h.AccessD(1000, 0x5000, false)
	if done != 1000+3+12+200 {
		t.Errorf("cold access done at %d, want %d", done, 1000+3+12+200)
	}
	// Now hot in L1: 3 cycles.
	done = h.AccessD(2000, 0x5000, false)
	if done != 2003 {
		t.Errorf("L1 hit done at %d, want 2003", done)
	}
	// Evict from L1 only (different L1 set usage is complex; instead touch a
	// line that's L2-resident but not L1): same L2 line, different L1 line
	// far enough to not alias. The L2 line is 64B; 0x5020 shares it.
	done = h.AccessD(3000, 0x5020, false)
	if done != 3000+3+12 {
		t.Errorf("L2 hit done at %d, want %d", done, 3000+3+12)
	}
}

func TestBusSerialization(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.DTLB.Access(0x5000)
	h.DTLB.Access(0x100000)
	// Two simultaneous misses to different pages serialize on the bus.
	d1 := h.AccessD(0, 0x5000, false)
	d2 := h.AccessD(0, 0x100000, false)
	if d2 <= d1 {
		t.Errorf("second memory access (%d) should finish after first (%d)", d2, d1)
	}
	if d2-d1 != int64(DefaultHierConfig().BusInterval) {
		t.Errorf("bus spacing = %d, want %d", d2-d1, DefaultHierConfig().BusInterval)
	}
	if h.MemAccesses != 2 {
		t.Errorf("MemAccesses = %d, want 2", h.MemAccesses)
	}
}

func TestInstructionSide(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.ITLB.Access(0x1000)
	d1 := h.AccessI(0, 0x1000)
	if d1 != 215 {
		t.Errorf("cold I-fetch done at %d, want 215", d1)
	}
	d2 := h.AccessI(300, 0x1004)
	if d2 != 303 {
		t.Errorf("hot I-fetch done at %d, want 303", d2)
	}
	if h.L1I.Misses != 1 || h.L1D.Misses != 0 {
		t.Error("I and D sides should be independent")
	}
}

func TestTLBPenaltyApplied(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	d := h.AccessD(0, 0x9000, false)
	// TLB miss (30) + L1 (3) + L2 (12) + mem (200) = 245.
	if d != 245 {
		t.Errorf("TLB-miss access done at %d, want 245", d)
	}
}

// Property: accessing the same address twice in a row always hits the
// second time, for any address and any small cache geometry.
func TestSecondAccessHitsProperty(t *testing.T) {
	f := func(addr uint32, sizeSel, assocSel uint8) bool {
		sizes := []int{64, 128, 256, 1024}
		assocs := []int{1, 2, 4}
		c := New(Config{
			Size:     sizes[int(sizeSel)%len(sizes)],
			LineSize: 16,
			Assoc:    assocs[int(assocSel)%len(assocs)],
			Latency:  1,
		})
		c.Access(addr, false)
		hit, _ := c.Access(addr, false)
		return hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hit+miss counters always equal total accesses, and the
// hierarchy's completion time is never before now + L1 latency.
func TestHierarchyMonotoneProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		h := NewHierarchy(DefaultHierConfig())
		var now int64
		total := int64(0)
		for _, a := range addrs {
			done := h.AccessD(now, a, a%3 == 0)
			if done < now+int64(h.L1DHitLatency()) {
				return false
			}
			now++
			total++
		}
		return h.L1D.Hits+h.L1D.Misses == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
