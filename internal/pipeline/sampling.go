package pipeline

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/prog"
)

// SampleSpec configures periodic-sampling simulation, the methodology the
// paper uses for its SPEC runs ("2% periodic sampling with warm-up").
type SampleSpec struct {
	// Interval is the period, in dynamic instructions, between sample
	// windows (e.g. 50_000 for 2% sampling with 1_000-instruction windows).
	Interval int
	// Window is the measured length of each sample, in instructions.
	Window int
	// Warmup is the number of instructions simulated before each window to
	// warm the caches, predictors and window without being measured.
	Warmup int
}

// Rate returns the fraction of the program actually measured.
func (s SampleSpec) Rate() float64 {
	if s.Interval == 0 {
		return 1
	}
	return float64(s.Window) / float64(s.Interval)
}

func (s SampleSpec) validate() error {
	if s.Interval <= 0 || s.Window <= 0 || s.Window > s.Interval || s.Warmup < 0 {
		return fmt.Errorf("pipeline: bad sample spec %+v", s)
	}
	return nil
}

// RunSampled estimates a full run's statistics by simulating periodic
// sample windows with warm-up, extrapolating cycles from the measured
// instruction share. Each sample runs on a fresh machine whose structures
// are warmed by the preceding Warmup instructions (cold-start bias beyond
// the warm-up is the standard cost of this methodology). Returns estimated
// statistics plus the fraction of instructions actually simulated.
func RunSampled(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, spec SampleSpec) (*Stats, float64, error) {
	if err := spec.validate(); err != nil {
		return nil, 0, err
	}
	if len(tr) <= spec.Interval+spec.Warmup {
		// Short program: just run it all.
		st, err := Run(p, tr, cfg, mg, nil)
		return st, 1, err
	}

	est := &Stats{}
	var measuredInstrs, measuredCycles, simulated int64
	for start := spec.Interval; start+spec.Window <= len(tr); start += spec.Interval {
		warmStart := start - spec.Warmup
		if warmStart < 0 {
			warmStart = 0
		}
		// A window must begin at a control-transfer boundary so the first
		// fetched instruction starts a fetch group cleanly; any boundary
		// works since the machine is fresh. Simulate [warmStart, end).
		end := start + spec.Window
		sub := tr[warmStart:end]
		warmLen := int64(start - warmStart)

		warmStats := &Stats{}
		if warmLen > 0 {
			var err error
			warmStats, err = Run(p, sub[:warmLen], cfg, mg, nil)
			if err != nil {
				return nil, 0, err
			}
		}
		fullStats, err := Run(p, sub, cfg, mg, nil)
		if err != nil {
			return nil, 0, err
		}
		// Measured region = whole subtrace minus the warm-up prefix rerun.
		measuredCycles += fullStats.Cycles - warmStats.Cycles
		measuredInstrs += fullStats.Instrs - warmStats.Instrs
		simulated += fullStats.Instrs + warmStats.Instrs

		est.Handles += fullStats.Handles - warmStats.Handles
		est.EmbeddedInstrs += fullStats.EmbeddedInstrs - warmStats.EmbeddedInstrs
		est.BranchMispredicts += fullStats.BranchMispredicts - warmStats.BranchMispredicts
		est.Replays += fullStats.Replays - warmStats.Replays
	}
	if measuredInstrs <= 0 {
		return nil, 0, fmt.Errorf("pipeline: sampling measured nothing (trace %d, spec %+v)", len(tr), spec)
	}
	scale := float64(len(tr)) / float64(measuredInstrs)
	est.Instrs = int64(len(tr))
	est.Cycles = int64(float64(measuredCycles) * scale)
	est.Uops = est.Instrs // approximation: uop accounting is not extrapolated
	return est, float64(simulated) / float64(len(tr)), nil
}
