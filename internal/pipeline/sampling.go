package pipeline

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/emu"
	"repro/internal/metrics"
	"repro/internal/prog"
)

// SampleSpec configures periodic-sampling simulation, the methodology the
// paper uses for its SPEC runs ("2% periodic sampling with warm-up").
type SampleSpec struct {
	// Interval is the period, in dynamic instructions, between sample
	// windows (e.g. 50_000 for 2% sampling with 1_000-instruction windows).
	Interval int
	// Window is the measured length of each sample, in instructions.
	Window int
	// Warmup is the number of instructions simulated before each window to
	// warm the caches, predictors and window without being measured.
	Warmup int
	// Workers bounds how many sample windows simulate concurrently; 0 or 1
	// runs them serially. Windows are independent (each gets a fresh
	// machine) and results are aggregated in window order, so the estimate
	// is identical for any worker count.
	Workers int
	// Mode selects uniform periodic windows (the zero value — the original
	// methodology) or representative-interval selection (see represent.go).
	Mode SampleMode
	// Clusters is the number of k-means clusters — and detailed windows —
	// in representative mode; 0 means DefaultSampleClusters.
	Clusters int
}

// Summary renders the spec as a compact tag for ledger records and report
// banners, e.g. "rep/i1000/w1000/k8" or "uniform/i50000/w1000/u250". Worker
// count is omitted: it never changes the estimate.
func (s SampleSpec) Summary() string {
	if s.Mode == SampleRepresentative {
		return fmt.Sprintf("rep/i%d/w%d/k%d", s.Interval, s.Window, s.Clusters)
	}
	return fmt.Sprintf("uniform/i%d/w%d/u%d", s.Interval, s.Window, s.Warmup)
}

// Rate returns the fraction of the program actually measured.
func (s SampleSpec) Rate() float64 {
	if s.Interval == 0 {
		return 1
	}
	return float64(s.Window) / float64(s.Interval)
}

func (s SampleSpec) validate() error {
	if s.Interval <= 0 || s.Window <= 0 || s.Window > s.Interval || s.Warmup < 0 {
		return fmt.Errorf("pipeline: bad sample spec %+v", s)
	}
	if s.Mode != SampleUniform && s.Mode != SampleRepresentative {
		return fmt.Errorf("pipeline: bad sample mode in spec %+v", s)
	}
	if s.Clusters < 0 {
		return fmt.Errorf("pipeline: negative cluster count in spec %+v", s)
	}
	return nil
}

// windowResult carries one sample window's measured deltas (full subtrace
// run minus the warm-up prefix rerun) back to the aggregation loop.
type windowResult struct {
	cycles, instrs, uops, simulated        int64
	handles, embedded, mispredicts, replay int64
	err                                    error
}

// runWindow simulates one sample window on a fresh machine: the warm-up
// prefix alone, then the whole subtrace, reporting the difference as the
// measured region.
func runWindow(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, spec SampleSpec, start int) windowResult {
	warmStart := start - spec.Warmup
	if warmStart < 0 {
		warmStart = 0
	}
	// A window must begin at a control-transfer boundary so the first
	// fetched instruction starts a fetch group cleanly; any boundary
	// works since the machine is fresh. Simulate [warmStart, end).
	end := start + spec.Window
	return measureWindow(p, tr[warmStart:end], cfg, mg, int64(start-warmStart))
}

// measureWindow is the uniform-mode measurement core: simulate the warm-up
// prefix alone, then the whole subtrace, and report the difference. The
// streaming path calls it on a subtrace re-materialized from a checkpoint.
func measureWindow(p *prog.Program, sub []emu.Rec, cfg Config, mg MGConfig, warmLen int64) windowResult {
	warmStats := &Stats{}
	if warmLen > 0 {
		var err error
		warmStats, err = Run(p, sub[:warmLen], cfg, mg, nil)
		if err != nil {
			return windowResult{err: err}
		}
	}
	fullStats, err := Run(p, sub, cfg, mg, nil)
	if err != nil {
		return windowResult{err: err}
	}
	return windowResult{
		cycles:      fullStats.Cycles - warmStats.Cycles,
		instrs:      fullStats.Instrs - warmStats.Instrs,
		uops:        fullStats.Uops - warmStats.Uops,
		simulated:   fullStats.Instrs + warmStats.Instrs,
		handles:     fullStats.Handles - warmStats.Handles,
		embedded:    fullStats.EmbeddedInstrs - warmStats.EmbeddedInstrs,
		mispredicts: fullStats.BranchMispredicts - warmStats.BranchMispredicts,
		replay:      fullStats.Replays - warmStats.Replays,
	}
}

// sampleTidBase offsets sampling-pool worker tids away from the sweep
// worker tids (which are small integers) in exported traces.
const sampleTidBase = 1000

// runTracedWindow is runWindow wrapped in a trace span and the
// sample-window counter; zero-cost when metrics and tracing are off.
func runTracedWindow(ctx context.Context, p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, spec SampleSpec, start, i int) windowResult {
	_, sp := metrics.StartSpan(ctx, "sample.window",
		metrics.L("index", strconv.Itoa(i)), metrics.L("start", strconv.Itoa(start)))
	r := runWindow(p, tr, cfg, mg, spec, start)
	sp.End()
	noteSampleWindow()
	return r
}

// RunSampled estimates a full run's statistics by simulating periodic
// sample windows with warm-up, extrapolating cycles and uops from the
// measured instruction share. Each sample runs on a fresh machine whose
// structures are warmed by the preceding Warmup instructions (cold-start
// bias beyond the warm-up is the standard cost of this methodology).
// Windows are simulated serially or by spec.Workers goroutines; either way
// the aggregation happens in window order, so the estimate is
// deterministic. Returns estimated statistics plus the fraction of
// instructions actually simulated.
func RunSampled(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, spec SampleSpec) (*Stats, float64, error) {
	st, report, err := RunSampledReport(p, tr, cfg, mg, spec)
	if err != nil {
		return nil, 0, err
	}
	return st, report.SimulatedFrac, nil
}

// RunSampledReport is RunSampled returning the full SampleReport: which mode
// ran, how many windows, how much was simulated in detail, and (in
// representative mode) the heuristic error bound.
func RunSampledReport(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, spec SampleSpec) (*Stats, SampleReport, error) {
	if err := spec.validate(); err != nil {
		return nil, SampleReport{}, err
	}
	if len(tr) <= spec.Interval+spec.Warmup {
		// Short program: just run it all.
		st, err := Run(p, tr, cfg, mg, nil)
		return st, SampleReport{
			Mode:          spec.Mode,
			Full:          true,
			Windows:       1,
			DetailInstrs:  int64(len(tr)),
			SimulatedFrac: 1,
		}, err
	}
	if spec.Mode == SampleRepresentative {
		return runSampledRep(p, tr, cfg, mg, spec)
	}

	var starts []int
	for start := spec.Interval; start+spec.Window <= len(tr); start += spec.Interval {
		starts = append(starts, start)
	}
	ctx, runSpan := metrics.StartSpan(context.Background(), "sampled.run",
		metrics.L("prog", p.Name), metrics.L("windows", strconv.Itoa(len(starts))))
	results := make([]windowResult, len(starts))
	if spec.Workers > 1 {
		// Worker-indexed pool: each worker gets its own trace tid so its
		// window spans form one clean row in the trace viewer.
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < spec.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wctx := metrics.WithTid(ctx, sampleTidBase+w)
				for i := range idx {
					results[i] = runTracedWindow(wctx, p, tr, cfg, mg, spec, starts[i], i)
				}
			}(w)
		}
		for i := range starts {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i, start := range starts {
			results[i] = runTracedWindow(ctx, p, tr, cfg, mg, spec, start, i)
		}
	}
	runSpan.End()

	return aggregateUniform(results, len(tr), spec)
}

// aggregateUniform combines uniform-mode window results into whole-run
// estimates by extrapolating from the measured instruction share. Shared by
// the in-memory (RunSampledReport) and streaming (RunSampledProg) paths so
// their estimates are identical by construction.
func aggregateUniform(results []windowResult, traceLen int, spec SampleSpec) (*Stats, SampleReport, error) {
	est := &Stats{}
	var measuredInstrs, measuredCycles, measuredUops, simulated int64
	for _, r := range results {
		if r.err != nil {
			return nil, SampleReport{}, r.err
		}
		measuredCycles += r.cycles
		measuredInstrs += r.instrs
		measuredUops += r.uops
		simulated += r.simulated
		est.Handles += r.handles
		est.EmbeddedInstrs += r.embedded
		est.BranchMispredicts += r.mispredicts
		est.Replays += r.replay
	}
	if measuredInstrs <= 0 {
		return nil, SampleReport{}, fmt.Errorf("pipeline: sampling measured nothing (trace %d, spec %+v)", traceLen, spec)
	}
	scale := float64(traceLen) / float64(measuredInstrs)
	est.Instrs = int64(traceLen)
	est.Cycles = int64(float64(measuredCycles) * scale)
	est.Uops = int64(float64(measuredUops) * scale)
	return est, SampleReport{
		Mode:          SampleUniform,
		Windows:       len(results),
		DetailInstrs:  simulated,
		SimulatedFrac: float64(simulated) / float64(traceLen),
	}, nil
}
