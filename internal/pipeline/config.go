// Package pipeline implements the cycle-level dynamically-scheduled
// superscalar processor model of the paper's Table 1, including mini-graph
// processing support (handle fetch, MGT-driven ALU-pipeline execution,
// outlined execution of disabled mini-graphs) and the Slack-Dynamic
// run-time serialization monitor.
//
// The model is trace-driven: it replays the committed dynamic instruction
// stream produced by the functional emulator. Branch mispredictions are
// modeled as fetch stalls until the branch resolves (no wrong-path
// execution); everything that delays branch resolution — including
// mini-graph serialization — therefore lengthens the misprediction penalty,
// which is the first-order interaction the paper's selectors must see.
package pipeline

import (
	"repro/internal/bpred"
	"repro/internal/cache"
)

// Config describes one machine configuration.
type Config struct {
	Name string

	FetchWidth  int
	IssueWidth  int
	CommitWidth int

	IQEntries  int
	PhysRegs   int // total physical registers (32 are architectural)
	ROBEntries int
	LQEntries  int
	SQEntries  int

	// Issue ports per cycle by class.
	SimplePorts  int
	ComplexPorts int
	LoadPorts    int
	StorePorts   int

	// Mini-graph issue constraints (Table 1): at most MaxMGIssue
	// mini-graphs per cycle, of which at most MaxMemMGIssue contain a
	// memory operation.
	MaxMGIssue    int
	MaxMemMGIssue int

	// Front-end and scheduling depths, from the paper's 13-stage pipe:
	// 1 predict + 3 I$ + 1 decode + 2 rename = 7 stages ahead of schedule;
	// 2 regread between issue and execute.
	FetchToRename int
	IssueToExec   int

	Hier  cache.HierConfig
	Bpred bpred.Config

	// StoreSets predictor entries.
	StoreSetEntries int

	// MaxCycles bounds runaway simulations (0 = default).
	MaxCycles int64
}

// DefaultMaxCycles bounds runaway simulations.
const DefaultMaxCycles = 1 << 33

// Baseline returns the fully-provisioned processor of Table 1: 4-way
// fetch/issue/commit, 30-entry issue queue, 144 physical registers; up to 4
// simple integer, 1 complex, 2 loads and 1 store issued per cycle.
func Baseline() Config {
	return Config{
		Name:            "baseline-4way",
		FetchWidth:      4,
		IssueWidth:      4,
		CommitWidth:     4,
		IQEntries:       30,
		PhysRegs:        144,
		ROBEntries:      128,
		LQEntries:       48,
		SQEntries:       32,
		SimplePorts:     4,
		ComplexPorts:    1,
		LoadPorts:       2,
		StorePorts:      1,
		MaxMGIssue:      2,
		MaxMemMGIssue:   1,
		FetchToRename:   6,
		IssueToExec:     2,
		Hier:            cache.DefaultHierConfig(),
		Bpred:           bpred.DefaultConfig(),
		StoreSetEntries: 1024,
	}
}

// Reduced returns the reduced processor of Table 1: 3-way
// fetch/issue/commit, 20-entry issue queue, 120 physical registers; up to 3
// simple integer, 1 complex, 1 load and 1 store issued per cycle.
func Reduced() Config {
	c := Baseline()
	c.Name = "reduced-3way"
	c.FetchWidth = 3
	c.IssueWidth = 3
	c.CommitWidth = 3
	c.IQEntries = 20
	c.PhysRegs = 120
	c.SimplePorts = 3
	c.LoadPorts = 1
	return c
}

// Width2 is the further-reduced 2-way profile-robustness configuration
// (Figure 9, "cross 2-way").
func Width2() Config {
	c := Baseline()
	c.Name = "cross-2way"
	c.FetchWidth = 2
	c.IssueWidth = 2
	c.CommitWidth = 2
	c.IQEntries = 16
	c.PhysRegs = 96
	c.SimplePorts = 2
	c.LoadPorts = 1
	return c
}

// Width8 is the 8-way profile-robustness configuration (Figure 9,
// "cross 8-way").
func Width8() Config {
	c := Baseline()
	c.Name = "cross-8way"
	c.FetchWidth = 8
	c.IssueWidth = 8
	c.CommitWidth = 8
	c.IQEntries = 64
	c.PhysRegs = 256
	c.SimplePorts = 8
	c.LoadPorts = 4
	c.StorePorts = 2
	return c
}

// ConfigByName maps a machine-configuration name — a short alias or the
// full Config.Name — to its Table 1 / Figure 9 machine. The CLIs use it to
// recover the configuration a pipetrace was produced under.
func ConfigByName(name string) (Config, bool) {
	switch name {
	case "baseline", "baseline-4way":
		return Baseline(), true
	case "reduced", "reduced-3way":
		return Reduced(), true
	case "width2", "cross-2way":
		return Width2(), true
	case "width8", "cross-8way":
		return Width8(), true
	case "dmem4", "cross-dmem4":
		return SmallDMem(), true
	}
	return Config{}, false
}

// SmallDMem is the reduced machine with a quarter-size data memory system
// (8KB L1D, 256KB L2) for Figure 9's "cross dmem/4" robustness point.
func SmallDMem() Config {
	c := Reduced()
	c.Name = "cross-dmem4"
	c.Hier.L1D.Size = 8 << 10
	c.Hier.L2.Size = 256 << 10
	return c
}
