package pipeline

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minigraph"
	"repro/internal/prog"
	"repro/internal/slack"
)

func trace(t testing.TB, p *prog.Program) []emu.Rec {
	t.Helper()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatalf("emu: %v", err)
	}
	return res.Trace
}

func runOn(t testing.TB, p *prog.Program, cfg Config, mg MGConfig) *Stats {
	t.Helper()
	st, err := Run(p, trace(t, p), cfg, mg, nil)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return st
}

// ilpLoop builds a loop with lots of independent work per iteration.
func ilpLoop(t testing.TB, iters int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("ilp")
	b.Li(1, iters)
	b.Li(2, 1)
	b.Li(3, 2)
	b.Li(4, 3)
	b.Li(5, 4)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Addi(3, 3, 2)
	b.Addi(4, 4, 3)
	b.Addi(5, 5, 4)
	b.Xori(6, 2, 0x0f)
	b.Xori(7, 3, 0xf0)
	b.Add(8, 6, 7)
	b.Add(0, 0, 8)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	return b.MustBuild()
}

// serialChain builds a loop whose body is one long dependence chain.
func serialChain(t testing.TB, iters int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("serial")
	b.Li(1, iters)
	b.Li(2, 7)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Addi(2, 2, 2)
	b.Addi(2, 2, 3)
	b.Addi(2, 2, 4)
	b.Addi(2, 2, 5)
	b.Addi(2, 2, 6)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Mov(0, 2)
	b.Halt()
	return b.MustBuild()
}

func TestSingletonRunCompletes(t *testing.T) {
	p := ilpLoop(t, 200)
	st := runOn(t, p, Baseline(), MGConfig{})
	tr := trace(t, p)
	if st.Instrs != int64(len(tr)) {
		t.Errorf("committed %d instrs, trace has %d", st.Instrs, len(tr))
	}
	if st.Uops != st.Instrs {
		t.Errorf("singleton run: uops %d != instrs %d", st.Uops, st.Instrs)
	}
	if st.Handles != 0 || st.EmbeddedInstrs != 0 {
		t.Error("singleton run should have no mini-graph activity")
	}
	if st.IPC() <= 0.5 {
		t.Errorf("IPC = %.3f, suspiciously low for an ILP loop", st.IPC())
	}
	if st.IPC() > 4.0 {
		t.Errorf("IPC = %.3f exceeds machine width", st.IPC())
	}
}

func TestILPBoundByWidth(t *testing.T) {
	p := ilpLoop(t, 500)
	base := runOn(t, p, Baseline(), MGConfig{})
	if base.IPC() < 2.0 {
		t.Errorf("baseline IPC = %.3f, want >= 2 for a wide ILP loop", base.IPC())
	}
}

func TestReducedSlowerOnILP(t *testing.T) {
	p := ilpLoop(t, 500)
	base := runOn(t, p, Baseline(), MGConfig{})
	red := runOn(t, p, Reduced(), MGConfig{})
	if red.Cycles <= base.Cycles {
		t.Errorf("reduced (%d cycles) should be slower than baseline (%d) on ILP code",
			red.Cycles, base.Cycles)
	}
	slow := float64(red.Cycles)/float64(base.Cycles) - 1
	if slow < 0.05 {
		t.Errorf("reduced slowdown = %.1f%%, expected noticeable", 100*slow)
	}
}

func TestSerialCodeInsensitiveToWidth(t *testing.T) {
	p := serialChain(t, 500)
	base := runOn(t, p, Baseline(), MGConfig{})
	red := runOn(t, p, Reduced(), MGConfig{})
	slow := float64(red.Cycles)/float64(base.Cycles) - 1
	if slow > 0.05 {
		t.Errorf("serial chain slowdown on reduced = %.1f%%, should be near zero", 100*slow)
	}
}

func TestDeterminism(t *testing.T) {
	p := ilpLoop(t, 300)
	a := runOn(t, p, Baseline(), MGConfig{})
	b := runOn(t, p, Baseline(), MGConfig{})
	if a.Cycles != b.Cycles || a.Instrs != b.Instrs {
		t.Errorf("nondeterministic: %d/%d vs %d/%d cycles/instrs",
			a.Cycles, a.Instrs, b.Cycles, b.Instrs)
	}
}

// selectAll selects mini-graphs with the Struct-All policy (no filtering).
func selectAll(t testing.TB, p *prog.Program) *minigraph.Selection {
	t.Helper()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	freq := make([]int64, len(p.Code))
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	cands := minigraph.Enumerate(p, minigraph.DefaultLimits())
	return minigraph.Select(p, cands, freq, minigraph.DefaultSelectConfig())
}

func TestMiniGraphsReduceUops(t *testing.T) {
	p := ilpLoop(t, 300)
	sel := selectAll(t, p)
	if len(sel.Instances) == 0 {
		t.Fatal("no mini-graphs selected")
	}
	st := runOn(t, p, Baseline(), MGConfig{Selection: sel})
	if st.Handles == 0 {
		t.Fatal("no handles committed")
	}
	if st.Uops >= st.Instrs {
		t.Errorf("uops %d should be < instrs %d with mini-graphs", st.Uops, st.Instrs)
	}
	if st.Coverage() <= 0 || st.Coverage() > 1 {
		t.Errorf("coverage = %f out of range", st.Coverage())
	}
	// Instruction accounting must be exact.
	tr := trace(t, p)
	if st.Instrs != int64(len(tr)) {
		t.Errorf("committed %d, trace %d", st.Instrs, len(tr))
	}
}

// mgFriendlyLoop builds a bandwidth-bound loop of independent two-instr
// dependence chains: ideal mini-graph fodder (connected, non-serializing).
func mgFriendlyLoop(t testing.TB, iters int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("mgfriendly")
	b.Li(1, iters)
	b.Label("loop")
	for r := 2; r <= 7; r++ {
		b.Addi(isa.Reg(r), isa.Reg(r), 1)
		b.Xori(isa.Reg(r), isa.Reg(r), 0x55)
	}
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestMiniGraphsHelpReducedMachine(t *testing.T) {
	p := mgFriendlyLoop(t, 500)
	sel := selectAll(t, p)
	if len(sel.Instances) == 0 {
		t.Fatal("nothing selected")
	}
	red := runOn(t, p, Reduced(), MGConfig{})
	redMG := runOn(t, p, Reduced(), MGConfig{Selection: sel})
	if redMG.Cycles >= red.Cycles {
		t.Errorf("mini-graphs should speed up the bandwidth-bound reduced machine: %d vs %d cycles",
			redMG.Cycles, red.Cycles)
	}
}

func TestStructAllSerializationPathology(t *testing.T) {
	// On ilpLoop, naive selection aggregates the accumulator chain with
	// independent work, creating external serialization across iterations —
	// the pathology Section 3 of the paper describes. The mini-graph run
	// must not be dramatically faster, and historically is slower.
	p := ilpLoop(t, 500)
	sel := selectAll(t, p)
	red := runOn(t, p, Reduced(), MGConfig{})
	redMG := runOn(t, p, Reduced(), MGConfig{Selection: sel})
	if redMG.Cycles < red.Cycles*9/10 {
		t.Errorf("expected serialization to blunt or reverse the benefit: %d vs %d cycles",
			redMG.Cycles, red.Cycles)
	}
}

func TestRuntimeCoverageMatchesStatic(t *testing.T) {
	p := ilpLoop(t, 300)
	sel := selectAll(t, p)
	st := runOn(t, p, Baseline(), MGConfig{Selection: sel})
	// Selection coverage is computed from the same frequencies the run
	// replays, so they must agree closely.
	diff := st.Coverage() - sel.Coverage()
	if diff < -0.02 || diff > 0.02 {
		t.Errorf("runtime coverage %.3f vs selection coverage %.3f", st.Coverage(), sel.Coverage())
	}
}

func TestBranchyCodeMispredicts(t *testing.T) {
	// Data-dependent branches from an LCG: mispredictions guaranteed.
	b := prog.NewBuilder("branchy")
	b.Li(1, 400)
	b.Li(2, 12345)
	b.Label("loop")
	b.Li(5, 1103515245)
	b.Mul(2, 2, 5)
	b.Addi(2, 2, 12345)
	b.Srli(3, 2, 16)
	b.Andi(3, 3, 1)
	b.Beqz(3, "skip")
	b.Addi(0, 0, 1)
	b.Label("skip")
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	p := b.MustBuild()
	st := runOn(t, p, Baseline(), MGConfig{})
	if st.BranchMispredicts < 50 {
		t.Errorf("mispredicts = %d, want many for random branches", st.BranchMispredicts)
	}
}

func TestMispredictionCostsCycles(t *testing.T) {
	mk := func(random bool) *prog.Program {
		b := prog.NewBuilder("b")
		b.Li(1, 400)
		b.Li(2, 12345)
		b.Label("loop")
		b.Li(5, 1103515245)
		b.Mul(2, 2, 5)
		b.Addi(2, 2, 12345)
		b.Srli(3, 2, 16)
		if random {
			b.Andi(3, 3, 1)
		} else {
			b.Andi(3, 3, 0) // always zero: perfectly predictable
		}
		b.Beqz(3, "skip")
		b.Addi(0, 0, 1)
		b.Label("skip")
		b.Subi(1, 1, 1)
		b.Bnez(1, "loop")
		b.Halt()
		return b.MustBuild()
	}
	hard := runOn(t, mk(true), Baseline(), MGConfig{})
	easy := runOn(t, mk(false), Baseline(), MGConfig{})
	if hard.Cycles <= easy.Cycles {
		t.Errorf("mispredicting loop (%d cycles) should be slower than predictable (%d)",
			hard.Cycles, easy.Cycles)
	}
}

func TestMemoryTrafficRuns(t *testing.T) {
	b := prog.NewBuilder("mem")
	arr := b.Space(4096)
	b.Li(1, arr)
	b.Li(2, 1024)
	b.Label("loop")
	b.Ldw(3, 1, 0)
	b.Addi(3, 3, 1)
	b.Stw(3, 1, 0)
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Halt()
	p := b.MustBuild()
	st := runOn(t, p, Baseline(), MGConfig{})
	if st.L1DMissRate <= 0 {
		t.Error("walking 4KB should miss in the (cold) L1D")
	}
	if st.MemOrderFlushes > 50 {
		t.Errorf("unexpected flush storm: %d", st.MemOrderFlushes)
	}
}

func TestStoreLoadForwardingSameAddress(t *testing.T) {
	// Repeated store-then-load to one address: must not livelock, and the
	// StoreSets predictor should keep violations bounded.
	b := prog.NewBuilder("fwd")
	slot := b.Space(4)
	b.Li(1, slot)
	b.Li(2, 300)
	b.Label("loop")
	b.Stw(2, 1, 0)
	b.Ldw(3, 1, 0)
	b.Add(0, 0, 3)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Halt()
	p := b.MustBuild()
	st := runOn(t, p, Baseline(), MGConfig{})
	if st.MemOrderFlushes > 40 {
		t.Errorf("violations = %d; StoreSets should learn the dependence", st.MemOrderFlushes)
	}
}

func TestProfilingRun(t *testing.T) {
	p := serialChain(t, 100)
	acc := slack.NewAccumulator(p.Name, p.NumInstrs())
	if _, err := Run(p, trace(t, p), Reduced(), MGConfig{}, acc); err != nil {
		t.Fatal(err)
	}
	prof := acc.Profile()
	// The loop body instructions were observed ~100 times.
	loopStart := p.Labels["loop"]
	if prof.Count[loopStart] < 90 {
		t.Errorf("profile count = %d, want ~100", prof.Count[loopStart])
	}
	// In a serial chain, each addi's output is consumed immediately:
	// local slack should be ~0.
	if prof.RegSlack[loopStart] > 2 {
		t.Errorf("serial chain reg slack = %.2f, want ~0", prof.RegSlack[loopStart])
	}
	// Issue times within the block should be increasing along the chain.
	if !(prof.Issue[loopStart+1] > prof.Issue[loopStart]) {
		t.Errorf("issue times not increasing: %.2f then %.2f",
			prof.Issue[loopStart], prof.Issue[loopStart+1])
	}
}

func TestProfileSlackILP(t *testing.T) {
	// Independent adds consumed only at the end have slack > 0 for early ones.
	b := prog.NewBuilder("slackful")
	b.Li(1, 100)
	b.Label("loop")
	b.Addi(2, 2, 1) // result waits while the chain below executes
	b.Addi(3, 3, 1)
	b.Mul(4, 3, 3) // 3-cycle op
	b.Add(5, 4, 2) // consumes r2 late
	b.Add(0, 0, 5)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	p := b.MustBuild()
	acc := slack.NewAccumulator(p.Name, p.NumInstrs())
	if _, err := Run(p, trace(t, p), Baseline(), MGConfig{}, acc); err != nil {
		t.Fatal(err)
	}
	prof := acc.Profile()
	loop := p.Labels["loop"]
	// r2's def (loop+0) is consumed by the add after the mul: it has more
	// slack than r4's def (the mul), which is consumed immediately.
	if !(prof.RegSlack[loop] > prof.RegSlack[loop+2]) {
		t.Errorf("slack(early op) = %.2f should exceed slack(mul) = %.2f",
			prof.RegSlack[loop], prof.RegSlack[loop+2])
	}
}

func TestEmptyTraceError(t *testing.T) {
	p := ilpLoop(t, 10)
	if _, err := Run(p, nil, Baseline(), MGConfig{}, nil); err == nil {
		t.Error("empty trace should error")
	}
}

func TestOverheadJumpsOnlyWhenDisabled(t *testing.T) {
	p := ilpLoop(t, 200)
	sel := selectAll(t, p)
	st := runOn(t, p, Baseline(), MGConfig{Selection: sel})
	if st.OverheadJumps != 0 {
		t.Errorf("no dynamic disabling configured, but %d overhead jumps", st.OverheadJumps)
	}
}

func TestCallsAndReturns(t *testing.T) {
	b := prog.NewBuilder("calls")
	b.Li(1, 100)
	b.Label("loop")
	b.Jsr("fn")
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	b.Label("fn")
	b.Addi(0, 0, 1)
	b.Ret()
	p := b.MustBuild()
	st := runOn(t, p, Baseline(), MGConfig{})
	// The RAS should predict nearly all returns after warmup.
	if st.RASMispredicts > 5 {
		t.Errorf("RAS mispredicts = %d, want few", st.RASMispredicts)
	}
}

func TestStatsString(t *testing.T) {
	p := ilpLoop(t, 50)
	st := runOn(t, p, Baseline(), MGConfig{})
	s := st.String()
	if len(s) == 0 {
		t.Error("empty stats string")
	}
}
