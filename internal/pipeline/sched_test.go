package pipeline

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/slack"
	"repro/internal/workload"
)

// schedRun executes one observed simulation under the given scheduler and
// returns the stats, the pipetrace bytes, and the sampled intervals.
func schedRun(t *testing.T, k SchedKind, p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig) (*Stats, []byte, []obs.Interval) {
	t.Helper()
	var buf bytes.Buffer
	watch := &obs.Observer{Trace: obs.NewPipetrace(&buf), Intervals: obs.NewIntervalSampler(250)}
	st, err := RunSched(p, tr, cfg, mg, nil, watch, k)
	if err != nil {
		t.Fatalf("%v scheduler: %v", k, err)
	}
	if err := watch.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	return st, buf.Bytes(), watch.Intervals.Intervals()
}

// requireSchedMatch runs one scenario under both schedulers and fails the
// test unless the stats, pipetrace bytes and interval samples are identical.
func requireSchedMatch(t *testing.T, p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig) {
	t.Helper()
	stE, traceE, ivsE := schedRun(t, SchedEvent, p, tr, cfg, mg)
	stS, traceS, ivsS := schedRun(t, SchedScan, p, tr, cfg, mg)
	if *stE != *stS {
		t.Errorf("stats diverge:\nevent %+v\nscan  %+v", stE, stS)
	}
	if !bytes.Equal(traceE, traceS) {
		t.Errorf("pipetraces diverge (%d vs %d bytes): first diff at byte %d",
			len(traceE), len(traceS), firstDiff(traceE, traceS))
	}
	if !reflect.DeepEqual(ivsE, ivsS) {
		t.Errorf("interval samples diverge: event %d samples, scan %d", len(ivsE), len(ivsS))
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestSchedulerDifferential is the event-scheduler oracle: every workload
// in the small input set runs under both the event-driven scheduler and the
// reference scan scheduler (-refsched), across the singleton, mini-graph
// and Slack-Dynamic configurations, and must produce identical Stats,
// byte-identical pipetraces and identical interval samples.
func TestSchedulerDifferential(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p, _, _, err := w.Build("small")
			if err != nil {
				t.Fatal(err)
			}
			res, err := emu.Run(p, emu.Options{CollectTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			freq := make([]int64, p.NumInstrs())
			for _, r := range res.Trace {
				freq[r.Index]++
			}
			sel := minigraph.Select(p, minigraph.Enumerate(p, minigraph.DefaultLimits()),
				freq, minigraph.DefaultSelectConfig())

			scenarios := []struct {
				name string
				cfg  Config
				mg   MGConfig
			}{
				{"singleton", Baseline(), MGConfig{}},
				{"minigraph", Reduced(), MGConfig{Selection: sel}},
				{"slackdyn", Reduced(), MGConfig{Selection: sel, Dynamic: true}},
			}
			for _, sc := range scenarios {
				sc := sc
				t.Run(sc.name, func(t *testing.T) {
					requireSchedMatch(t, p, res.Trace, sc.cfg, sc.mg)
				})
			}
		})
	}
}

// TestSchedulerDifferentialProfiled covers the slack-profiling path: the
// profiling run drives selection, so a divergence there would silently
// change every downstream experiment. Profiles must match exactly.
func TestSchedulerDifferentialProfiled(t *testing.T) {
	w := workload.Find("comm.crc32")
	if w == nil {
		t.Fatal("workload comm.crc32 not found")
	}
	p, _, _, err := w.Build("small")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}

	run := func(k SchedKind) (*Stats, *slack.Accumulator) {
		acc := slack.NewAccumulator(w.Name, p.NumInstrs())
		st, err := RunSched(p, res.Trace, Reduced(), MGConfig{}, acc, nil, k)
		if err != nil {
			t.Fatalf("%v scheduler: %v", k, err)
		}
		return st, acc
	}
	stE, accE := run(SchedEvent)
	stS, accS := run(SchedScan)
	if *stE != *stS {
		t.Errorf("profiled stats diverge:\nevent %+v\nscan  %+v", stE, stS)
	}
	// Compare the profiles through Save, which encodes NaN (unobserved
	// instructions) as a sentinel — reflect.DeepEqual would treat the NaNs
	// as unequal.
	var bufE, bufS bytes.Buffer
	if err := accE.Profile().Save(&bufE); err != nil {
		t.Fatal(err)
	}
	if err := accS.Profile().Save(&bufS); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufE.Bytes(), bufS.Bytes()) {
		t.Error("slack profiles diverge between schedulers")
	}
}

// TestSchedulerDefaultToggle exercises the CLI-facing switch.
func TestSchedulerDefaultToggle(t *testing.T) {
	if got := DefaultScheduler(); got != SchedEvent {
		t.Fatalf("default scheduler = %v, want %v", got, SchedEvent)
	}
	SetDefaultScheduler(SchedScan)
	if got := DefaultScheduler(); got != SchedScan {
		t.Errorf("after SetDefaultScheduler(SchedScan): %v", got)
	}
	SetDefaultScheduler(SchedEvent)
	if SchedEvent.String() != "event" || SchedScan.String() != "scan" {
		t.Errorf("String(): %q/%q", SchedEvent.String(), SchedScan.String())
	}
}
