package pipeline

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/slack"
	"repro/internal/workload"
)

// schedRun executes one observed simulation under the given scheduler and
// returns the stats, the pipetrace bytes (JSONL, or the binary encoding
// when bin is set), and the sampled intervals.
func schedRun(t *testing.T, k SchedKind, p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, bin bool) (*Stats, []byte, []obs.Interval) {
	t.Helper()
	var buf bytes.Buffer
	mk := obs.NewPipetrace
	if bin {
		mk = obs.NewBinaryPipetrace
	}
	watch := &obs.Observer{Trace: mk(&buf), Intervals: obs.NewIntervalSampler(250)}
	st, err := RunSched(p, tr, cfg, mg, nil, watch, k)
	if err != nil {
		t.Fatalf("%v scheduler: %v", k, err)
	}
	if err := watch.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	return st, buf.Bytes(), watch.Intervals.Intervals()
}

// requireSchedMatch runs one scenario under both schedulers and both trace
// encodings and fails the test unless the stats, pipetrace bytes and
// interval samples are identical — and unless the binary trace converts to
// the exact JSONL bytes the JSONL run wrote.
func requireSchedMatch(t *testing.T, p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig) {
	t.Helper()
	stE, traceE, ivsE := schedRun(t, SchedEvent, p, tr, cfg, mg, false)
	stS, traceS, ivsS := schedRun(t, SchedScan, p, tr, cfg, mg, false)
	if *stE != *stS {
		t.Errorf("stats diverge:\nevent %+v\nscan  %+v", stE, stS)
	}
	if !bytes.Equal(traceE, traceS) {
		t.Errorf("pipetraces diverge (%d vs %d bytes): first diff at byte %d",
			len(traceE), len(traceS), firstDiff(traceE, traceS))
	}
	if !reflect.DeepEqual(ivsE, ivsS) {
		t.Errorf("interval samples diverge: event %d samples, scan %d", len(ivsE), len(ivsS))
	}

	// One binary-encoded leg suffices: the JSONL legs established both
	// schedulers emit identical record streams, and the binary encoding is
	// a pure function of that stream. What needs its own check is the
	// encoding round trip — the binary trace must convert back to the
	// exact bytes the JSONL run wrote.
	stB, binTrace, ivsB := schedRun(t, SchedEvent, p, tr, cfg, mg, true)
	if *stB != *stE {
		t.Error("stats change when tracing switches to the binary encoding")
	}
	if !reflect.DeepEqual(ivsB, ivsE) {
		t.Error("interval samples change when tracing switches to the binary encoding")
	}
	var conv bytes.Buffer
	if err := obs.ConvertPipetrace(bytes.NewReader(binTrace), &conv); err != nil {
		t.Fatalf("binary trace conversion: %v", err)
	}
	if !bytes.Equal(conv.Bytes(), traceE) {
		t.Errorf("converted binary trace differs from the JSONL run: first diff at byte %d",
			firstDiff(conv.Bytes(), traceE))
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestSchedulerDifferential is the event-scheduler oracle: every workload
// in the small input set runs under both the event-driven scheduler and the
// reference scan scheduler (-refsched), across the singleton, mini-graph
// and Slack-Dynamic configurations, and must produce identical Stats,
// byte-identical pipetraces and identical interval samples.
func TestSchedulerDifferential(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p, _, _, err := w.Build("small")
			if err != nil {
				t.Fatal(err)
			}
			res, err := emu.Run(p, emu.Options{CollectTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			freq := make([]int64, p.NumInstrs())
			for _, r := range res.Trace {
				freq[r.Index]++
			}
			sel := minigraph.Select(p, minigraph.Enumerate(p, minigraph.DefaultLimits()),
				freq, minigraph.DefaultSelectConfig())

			scenarios := []struct {
				name string
				cfg  Config
				mg   MGConfig
			}{
				{"singleton", Baseline(), MGConfig{}},
				{"minigraph", Reduced(), MGConfig{Selection: sel}},
				{"slackdyn", Reduced(), MGConfig{Selection: sel, Dynamic: true}},
			}
			for _, sc := range scenarios {
				sc := sc
				t.Run(sc.name, func(t *testing.T) {
					requireSchedMatch(t, p, res.Trace, sc.cfg, sc.mg)
				})
			}
		})
	}
}

// TestSchedulerDifferentialProfiled covers the slack-profiling path: the
// profiling run drives selection, so a divergence there would silently
// change every downstream experiment. Profiles must match exactly.
func TestSchedulerDifferentialProfiled(t *testing.T) {
	w := workload.Find("comm.crc32")
	if w == nil {
		t.Fatal("workload comm.crc32 not found")
	}
	p, _, _, err := w.Build("small")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}

	run := func(k SchedKind) (*Stats, *slack.Accumulator) {
		acc := slack.NewAccumulator(w.Name, p.NumInstrs())
		st, err := RunSched(p, res.Trace, Reduced(), MGConfig{}, acc, nil, k)
		if err != nil {
			t.Fatalf("%v scheduler: %v", k, err)
		}
		return st, acc
	}
	stE, accE := run(SchedEvent)
	stS, accS := run(SchedScan)
	if *stE != *stS {
		t.Errorf("profiled stats diverge:\nevent %+v\nscan  %+v", stE, stS)
	}
	// Compare the profiles through Save, which encodes NaN (unobserved
	// instructions) as a sentinel — reflect.DeepEqual would treat the NaNs
	// as unequal.
	var bufE, bufS bytes.Buffer
	if err := accE.Profile().Save(&bufE); err != nil {
		t.Fatal(err)
	}
	if err := accS.Profile().Save(&bufS); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufE.Bytes(), bufS.Bytes()) {
		t.Error("slack profiles diverge between schedulers")
	}
}

// TestSampledDifferential runs the periodic-sampling estimator under both
// schedulers and requires identical estimates; it also pins the estimate
// across worker counts, which exercises concurrent machine pooling (each
// window draws a machine from the pool). SetDefaultScheduler is
// process-global, so this test must not run in parallel.
func TestSampledDifferential(t *testing.T) {
	w := workload.Find("comm.crc32")
	if w == nil {
		t.Fatal("workload comm.crc32 not found")
	}
	p, _, _, err := w.Build("small")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	freq := make([]int64, p.NumInstrs())
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	sel := minigraph.Select(p, minigraph.Enumerate(p, minigraph.DefaultLimits()),
		freq, minigraph.DefaultSelectConfig())
	// Size the spec so the trace holds several windows.
	spec := SampleSpec{Interval: len(res.Trace) / 6, Window: len(res.Trace) / 20,
		Warmup: len(res.Trace) / 40}
	if spec.Window == 0 {
		t.Fatalf("trace too short for sampling: %d records", len(res.Trace))
	}

	run := func(k SchedKind, workers int) (*Stats, float64) {
		SetDefaultScheduler(k)
		defer SetDefaultScheduler(SchedEvent)
		spec := spec
		spec.Workers = workers
		st, rate, err := RunSampled(p, res.Trace, Reduced(), MGConfig{Selection: sel}, spec)
		if err != nil {
			t.Fatalf("%v scheduler, %d workers: %v", k, workers, err)
		}
		return st, rate
	}
	stE, rateE := run(SchedEvent, 1)
	stS, rateS := run(SchedScan, 1)
	if *stE != *stS || rateE != rateS {
		t.Errorf("sampled estimates diverge:\nevent %+v (rate %v)\nscan  %+v (rate %v)",
			stE, rateE, stS, rateS)
	}
	stP, rateP := run(SchedEvent, 4)
	if *stP != *stE || rateP != rateE {
		t.Errorf("sampled estimate changes with worker count:\nserial   %+v\nparallel %+v", stE, stP)
	}
}

// TestSchedulerDefaultToggle exercises the CLI-facing switch.
func TestSchedulerDefaultToggle(t *testing.T) {
	if got := DefaultScheduler(); got != SchedEvent {
		t.Fatalf("default scheduler = %v, want %v", got, SchedEvent)
	}
	SetDefaultScheduler(SchedScan)
	if got := DefaultScheduler(); got != SchedScan {
		t.Errorf("after SetDefaultScheduler(SchedScan): %v", got)
	}
	SetDefaultScheduler(SchedEvent)
	if SchedEvent.String() != "event" || SchedScan.String() != "scan" {
		t.Errorf("String(): %q/%q", SchedEvent.String(), SchedScan.String())
	}
}
