package pipeline

// Structure-of-arrays hot state.
//
// The scheduler's inner loops (wakeup broadcast, ready-queue maintenance,
// issue candidate sorting, register read) touch a handful of per-uop fields
// every cycle. Keeping those fields inside the uop struct means every touch
// is a pointer chase into a ~300-byte struct scattered across recycled slab
// memory. hotState flattens them into per-field slices indexed by a uop's
// permanent slot — the same set-major flat-array idiom the caches, BTB and
// StoreSets tables use — so the hot loops walk small dense arrays instead.
//
// Slot safety rides on the uop-recycling invariant (see reclaim): a slot is
// reused only when its previous uop is provably unreferenced, so any slot
// index held by live scheduler state (ready tiers, wake chains, srcs)
// always refers to the uop it was recorded for. makeUop re-initializes all
// hot fields when a slot is reassigned.
type hotState struct {
	uops []*uop // slot -> uop (slot assignment is permanent per run)

	seq       []int64 // program order (mirror of uop.seq; immutable per slot)
	issue     []int64 // issue cycle; -1 until issued
	execDone  []int64 // all results produced; commit-eligible after this
	readyOut  []int64 // register output available on the bypass network
	specReady []int64 // loads: L1-hit-speculative ready time
	resolve   []int64 // branch redirect / store resolution cycle
	earliest  []int64 // no issue attempt before this cycle (rename+1, replays)

	waitCnt  []int32    // unissued producers gating ready-queue entry
	wakeHead []int32    // head of the wakeup chain (wakeNodes index), -1 empty
	link     []int32    // calendar-wheel chain link (slot -> slot), -1 ends
	waitSlot []int32    // StoreSets-imposed store to wait for, -1 none
	srcs     [][3]int32 // producer slots, -1 when none

	meta      []uint8 // packed class/kind/mem/nSrc byte (see packMeta)
	squashed  []bool
	committed []bool
}

// meta byte layout: bits 0-2 the isa.Class, bit 3 mini-graph handle, bits
// 4-5 load/store, bits 6-7 the source count. Everything the issue budget
// and register-read loops need without touching the uop struct.
const (
	metaClassMask uint8 = 0x07
	metaHandle    uint8 = 1 << 3
	metaLoad      uint8 = 1 << 4
	metaStore     uint8 = 1 << 5
	metaNSrcShift       = 6
)

func packMeta(u *uop) uint8 {
	b := uint8(u.class) & metaClassMask
	if u.kind == kindHandle {
		b |= metaHandle
	}
	if u.isLoad {
		b |= metaLoad
	}
	if u.isStore {
		b |= metaStore
	}
	return b | uint8(u.nSrc)<<metaNSrcShift
}

// newHotState sizes every array for capHint slots up front; steady-state
// runs never outgrow it (live uops are bounded by the window, fetch queue
// and retired queue), so the hot loop performs no slice growth.
func newHotState(capHint int) hotState {
	return hotState{
		uops:      make([]*uop, 0, capHint),
		seq:       make([]int64, 0, capHint),
		issue:     make([]int64, 0, capHint),
		execDone:  make([]int64, 0, capHint),
		readyOut:  make([]int64, 0, capHint),
		specReady: make([]int64, 0, capHint),
		resolve:   make([]int64, 0, capHint),
		earliest:  make([]int64, 0, capHint),
		waitCnt:   make([]int32, 0, capHint),
		wakeHead:  make([]int32, 0, capHint),
		link:      make([]int32, 0, capHint),
		waitSlot:  make([]int32, 0, capHint),
		srcs:      make([][3]int32, 0, capHint),
		meta:      make([]uint8, 0, capHint),
		squashed:  make([]bool, 0, capHint),
		committed: make([]bool, 0, capHint),
	}
}

// grow extends every array by n zeroed slots (chain links start empty).
// Only non-recycling runs (profiling) grow past the initial capacity.
func (h *hotState) grow(n int) {
	base := len(h.uops)
	h.uops = append(h.uops, make([]*uop, n)...)
	h.seq = append(h.seq, make([]int64, n)...)
	h.issue = append(h.issue, make([]int64, n)...)
	h.execDone = append(h.execDone, make([]int64, n)...)
	h.readyOut = append(h.readyOut, make([]int64, n)...)
	h.specReady = append(h.specReady, make([]int64, n)...)
	h.resolve = append(h.resolve, make([]int64, n)...)
	h.earliest = append(h.earliest, make([]int64, n)...)
	h.waitCnt = append(h.waitCnt, make([]int32, n)...)
	h.wakeHead = append(h.wakeHead, make([]int32, n)...)
	h.link = append(h.link, make([]int32, n)...)
	h.waitSlot = append(h.waitSlot, make([]int32, n)...)
	h.srcs = append(h.srcs, make([][3]int32, n)...)
	h.meta = append(h.meta, make([]uint8, n)...)
	h.squashed = append(h.squashed, make([]bool, n)...)
	h.committed = append(h.committed, make([]bool, n)...)
	for i := base; i < len(h.uops); i++ {
		h.wakeHead[i] = -1
		h.link[i] = -1
		h.waitSlot[i] = -1
		h.srcs[i] = [3]int32{-1, -1, -1}
	}
}

// wakeNode is one entry in a producer's wakeup chain: consumer slot c waits
// for the producer to issue. Nodes live in the machine's wakeNodes pool and
// recycle through a free list, so steady state allocates none.
type wakeNode struct {
	c    int32
	next int32 // next node index, -1 ends the chain
}
