package pipeline

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/prog"
	"repro/internal/slack"
	"repro/internal/workload"
)

func benchSetup(b *testing.B, name string) (*workloadBench, error) {
	b.Helper()
	w := workload.Find(name)
	if w == nil {
		b.Fatalf("workload %s not found", name)
	}
	p, _, _, err := w.Build("small")
	if err != nil {
		return nil, err
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		return nil, err
	}
	freq := make([]int64, p.NumInstrs())
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	sel := minigraph.Select(p, minigraph.Enumerate(p, minigraph.DefaultLimits()), freq, minigraph.DefaultSelectConfig())
	return &workloadBench{p: p, tr: res.Trace, sel: sel}, nil
}

type workloadBench struct {
	p   *prog.Program
	tr  []emu.Rec
	sel *minigraph.Selection
}

// BenchmarkSimulatorSingleton measures raw cycle-level simulation speed.
func BenchmarkSimulatorSingleton(b *testing.B) {
	b.ReportAllocs()
	wb, err := benchSetup(b, "media.dct8")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Baseline()
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		st, err := Run(wb.p, wb.tr, cfg, MGConfig{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs += st.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSimulatorMiniGraphs measures simulation speed with mini-graph
// aggregation active.
func BenchmarkSimulatorMiniGraphs(b *testing.B) {
	b.ReportAllocs()
	wb, err := benchSetup(b, "media.dct8")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Reduced()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(wb.p, wb.tr, cfg, MGConfig{Selection: wb.sel}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorMiniGraphsScan measures the reference per-cycle scan
// scheduler (-refsched) on the same configuration, so the event scheduler's
// speedup is visible in one benchmark run.
func BenchmarkSimulatorMiniGraphsScan(b *testing.B) {
	b.ReportAllocs()
	wb, err := benchSetup(b, "media.dct8")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Reduced()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSched(wb.p, wb.tr, cfg, MGConfig{Selection: wb.sel}, nil, nil, SchedScan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorProfiling measures the slack-profiling run (the most
// instrumented configuration).
func BenchmarkSimulatorProfiling(b *testing.B) {
	b.ReportAllocs()
	wb, err := benchSetup(b, "media.dct8")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Reduced()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := slack.NewAccumulator("bench", wb.p.NumInstrs())
		if _, err := Run(wb.p, wb.tr, cfg, MGConfig{}, acc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunSampledRepresentative measures the representative-interval
// estimator end to end — feature extraction, k-means, warm replay and the
// detailed windows — against BenchmarkSimulatorSingleton's full run on the
// same workload; the ratio is the sweep-service speedup this mode buys.
func BenchmarkRunSampledRepresentative(b *testing.B) {
	b.ReportAllocs()
	wb, err := benchSetup(b, "media.dct8")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Baseline()
	spec := SampleSpec{Interval: 1000, Window: 1000, Mode: SampleRepresentative}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunSampledReport(wb.p, wb.tr, cfg, MGConfig{}, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSlackDynamic measures the run-time monitor overhead.
func BenchmarkSimulatorSlackDynamic(b *testing.B) {
	b.ReportAllocs()
	wb, err := benchSetup(b, "media.dct8")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Reduced()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(wb.p, wb.tr, cfg, MGConfig{Selection: wb.sel, Dynamic: true}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
