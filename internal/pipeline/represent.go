package pipeline

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/metrics"
	"repro/internal/prog"
)

// Representative-interval sampling (the SimPoint/NPS idea): slice the trace
// into fixed-size intervals, describe each by a basic-block execution vector
// plus its branch/memory mix, cluster the vectors with deterministic k-means,
// and simulate one window per cluster in detail — its head functionally
// warmed — estimating whole-run stats as the cluster-weighted combination.
// Uniform periodic sampling (sampling.go) stays available as the
// differential oracle, selected by SampleSpec.Mode.

// SampleMode selects the windowing strategy of RunSampled.
type SampleMode uint8

const (
	// SampleUniform measures periodic windows and extrapolates — the
	// original methodology and the differential oracle. The zero value, so
	// existing SampleSpec literals keep their behavior.
	SampleUniform SampleMode = iota
	// SampleRepresentative clusters interval feature vectors and measures
	// one representative window per cluster.
	SampleRepresentative
)

func (m SampleMode) String() string {
	switch m {
	case SampleUniform:
		return "uniform"
	case SampleRepresentative:
		return "rep"
	}
	return fmt.Sprintf("SampleMode(%d)", uint8(m))
}

// ParseSampleMode parses the CLI spelling of a sampling mode.
func ParseSampleMode(s string) (SampleMode, error) {
	switch s {
	case "", "uniform":
		return SampleUniform, nil
	case "rep", "representative":
		return SampleRepresentative, nil
	}
	return 0, fmt.Errorf("pipeline: unknown sample mode %q (want uniform or rep)", s)
}

// DefaultSampleClusters floors the auto-scaled window budget used when
// SampleSpec.Clusters is 0 (see runSampledRep).
const DefaultSampleClusters = 8

// repMaxClusters caps the k-means phase count. More phases fragment the
// feature space faster than they explain CPI; past eight the extra windows
// are better spent averaging within phases than splitting them.
const repMaxClusters = 8

// SampleReport describes what a sampled run actually simulated, so callers
// can report fidelity alongside the estimate.
type SampleReport struct {
	Mode      SampleMode
	Full      bool // short trace: the whole program ran in detail
	Intervals int  // feature intervals sliced (representative mode)
	Windows   int  // detailed windows simulated
	// DetailInstrs counts instructions simulated in the detailed model
	// (including uniform mode's warm-up re-simulation); WarmInstrs counts
	// functionally warmed instructions (cheap, representative mode).
	DetailInstrs  int64
	WarmInstrs    int64
	SimulatedFrac float64 // DetailInstrs / trace length
	// ErrBound is a heuristic relative error bound on the cycle estimate:
	// the weighted intra-cluster feature dispersion (how imperfectly the
	// representatives stand for their clusters) scaled by the observed
	// cross-cluster CPI spread (how much being wrong could cost). It is a
	// guide, not a guarantee — the CI accuracy gate measures the real error.
	ErrBound float64
}

// --- interval features ---

// bbvBuckets is the hashed basic-block-vector width. Block IDs hash into
// this many buckets (Knuth multiplicative hashing, deterministic), keeping
// feature vectors small regardless of program size.
const bbvBuckets = 64

// featDims: hashed BBV, branch/taken/load/store mix fractions, two warmth
// dimensions — the fraction of data accesses touching a cache line never
// seen earlier in the trace, and the fraction of records entering a basic
// block never executed earlier — plus two behavior dimensions: the
// direction-flip rate of conditional branches (a predictability proxy) and
// the interval's distinct-line fraction (working-set density), and four
// proxy-cost dimensions from a functional replay of the memory hierarchy and
// direction predictor: per-instruction L1I, L1D, and L2 miss rates and the
// direction-mispredict rate, each scaled by its approximate cycle penalty so
// the dimension reads as a CPI contribution. Code-identical intervals can
// differ hugely in CPI when one runs cold or unpredictably; the warmth and
// proxy dims separate them so one never stands for the other's cluster.
const featDims = bbvBuckets + 8 + 4

type featVec [featDims]float64

func bbvBucket(block int) int {
	return int((uint32(block) * 2654435761) >> 26) // top 6 bits: 64 buckets
}

// featAccum extracts per-interval feature vectors incrementally, one record
// at a time, so the trace never has to exist as a whole: the in-memory path
// feeds it a slice, the streaming path feeds it straight off the emulator.
// The replay runs cfg's cache hierarchy and direction predictor continuously
// across the whole trace, so the proxy dims see the same warm-up drift the
// detailed model would — the one signal pure code-mix features are blind to.
type featAccum struct {
	p        *prog.Program
	interval int

	// trace-lifetime state
	seenLines  map[uint32]struct{}
	seenBlocks map[int]struct{}
	lastDir    map[int]bool // per static conditional branch: last direction
	hier       *cache.Hierarchy
	bp         *bpred.Predictor
	curLine    uint32
	// Proxy penalties, in cycles: an L1 miss costs about an L2 access, an L2
	// miss a memory access, a mispredict roughly a front-end refill.
	l1Pen, l2Pen float64

	// current-interval state
	f                                 featVec
	blocks, branches, taken           float64
	loads, stores, accesses           float64
	newLines, newBlocks, flips, conds float64
	ivLines                           map[uint32]struct{}
	iMiss0, dMiss0, l2Miss0, dir0     int64
	count                             int

	feats []featVec
	lens  []int
}

const mispredictPen = 12.0

func newFeatAccum(p *prog.Program, cfg Config, interval int) *featAccum {
	return &featAccum{
		p:          p,
		interval:   interval,
		seenLines:  make(map[uint32]struct{}),
		seenBlocks: make(map[int]struct{}),
		lastDir:    make(map[int]bool),
		hier:       cache.NewHierarchy(cfg.Hier),
		bp:         bpred.New(cfg.Bpred),
		curLine:    math.MaxUint32,
		l1Pen:      float64(cfg.Hier.L2.Latency),
		l2Pen:      float64(cfg.Hier.MemLatency),
		ivLines:    make(map[uint32]struct{}),
	}
}

// add feeds the next trace record into the current interval, flushing a
// completed interval first.
func (a *featAccum) add(rec emu.Rec) {
	if a.count == a.interval {
		a.flush()
	}
	a.count++
	static := int(rec.Index)
	pc := prog.PCOf(static)
	if pcLine := pc >> 5; pcLine != a.curLine {
		a.hier.WarmI(pc)
		a.curLine = pcLine
	}
	p := a.p
	block := p.BlockOf[static]
	if p.Blocks[block].Start == static {
		a.f[bbvBucket(block)]++
		a.blocks++
		if _, ok := a.seenBlocks[block]; !ok {
			a.seenBlocks[block] = struct{}{}
			a.newBlocks++
		}
	}
	in := p.Code[static]
	switch {
	case in.IsBranch():
		a.branches++
		if rec.Taken {
			a.taken++
		}
		if in.IsCondBranch() {
			a.conds++
			if last, ok := a.lastDir[static]; ok && last != rec.Taken {
				a.flips++
			}
			a.lastDir[static] = rec.Taken
			a.bp.UpdateDirection(pc, rec.Taken)
		}
	case in.IsLoad(), in.IsStore():
		if in.IsLoad() {
			a.loads++
		} else {
			a.stores++
		}
		a.hier.WarmD(rec.Addr, in.IsStore())
		a.accesses++
		line := rec.Addr >> 5
		a.ivLines[line] = struct{}{}
		if _, ok := a.seenLines[line]; !ok {
			a.seenLines[line] = struct{}{}
			a.newLines++
		}
	}
}

// flush finalizes the current interval's feature vector and resets the
// per-interval state.
func (a *featAccum) flush() {
	if a.count == 0 {
		return
	}
	f := a.f
	cnt := float64(a.count)
	if a.blocks > 0 {
		for b := 0; b < bbvBuckets; b++ {
			f[b] /= a.blocks
		}
	}
	f[bbvBuckets] = a.branches / cnt
	f[bbvBuckets+1] = a.taken / cnt
	f[bbvBuckets+2] = a.loads / cnt
	f[bbvBuckets+3] = a.stores / cnt
	if a.accesses > 0 {
		f[bbvBuckets+4] = a.newLines / a.accesses
		f[bbvBuckets+6] = float64(len(a.ivLines)) / a.accesses
	}
	if a.blocks > 0 {
		f[bbvBuckets+5] = a.newBlocks / a.blocks
	}
	if a.conds > 0 {
		f[bbvBuckets+7] = a.flips / a.conds
	}
	f[bbvBuckets+8] = a.l1Pen * float64(a.hier.L1I.Misses-a.iMiss0) / cnt
	f[bbvBuckets+9] = a.l1Pen * float64(a.hier.L1D.Misses-a.dMiss0) / cnt
	f[bbvBuckets+10] = a.l2Pen * float64(a.hier.L2.Misses-a.l2Miss0) / cnt
	f[bbvBuckets+11] = mispredictPen * float64(a.bp.DirMisses-a.dir0) / cnt
	a.feats = append(a.feats, f)
	a.lens = append(a.lens, a.count)

	a.f = featVec{}
	a.blocks, a.branches, a.taken = 0, 0, 0
	a.loads, a.stores, a.accesses = 0, 0, 0
	a.newLines, a.newBlocks, a.flips, a.conds = 0, 0, 0, 0
	a.ivLines = make(map[uint32]struct{})
	a.iMiss0, a.dMiss0 = a.hier.L1I.Misses, a.hier.L1D.Misses
	a.l2Miss0, a.dir0 = a.hier.L2.Misses, a.bp.DirMisses
	a.count = 0
}

// finish flushes the trailing partial interval and returns the features.
func (a *featAccum) finish() ([]featVec, []int) {
	a.flush()
	return a.feats, a.lens
}

// intervalFeatures slices tr into Interval-sized pieces (the last may be
// shorter) and extracts one normalized feature vector per piece. See
// featAccum for the dimensions.
func intervalFeatures(p *prog.Program, tr []emu.Rec, cfg Config, interval int) (feats []featVec, lens []int) {
	a := newFeatAccum(p, cfg, interval)
	for _, rec := range tr {
		a.add(rec)
	}
	return a.finish()
}

func dist2(a, b *featVec) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		d += x * x
	}
	return d
}

// --- deterministic k-means ---

const kmeansMaxIters = 50

// kmeansRestarts is how many deterministic seedings kmeans tries; the
// clustering with the lowest within-cluster dispersion wins (first on ties).
const kmeansRestarts = 8

// kmeans clusters feats into k groups, fully deterministically: several
// shifted evenly-spaced seedings are run to convergence and the one with the
// lowest sum of squared member-to-center distances is kept (lowest seed
// index on ties).
func kmeans(feats []featVec, k int) (assign []int, centers []featVec) {
	bestSSE := math.Inf(1)
	n := len(feats)
	for r := 0; r < kmeansRestarts; r++ {
		shift := r * n / (k * kmeansRestarts)
		a, c := kmeansSeeded(feats, k, shift)
		var sse float64
		for i := range feats {
			sse += dist2(&feats[i], &c[a[i]])
		}
		if sse < bestSSE {
			bestSSE, assign, centers = sse, a, c
		}
	}
	return assign, centers
}

// kmeansSeeded runs Lloyd iterations from centers seeded at evenly spaced
// interval indices offset by shift (temporal spread is a good prior for
// program phases). Assignment ties break on the lowest cluster index, and an
// emptied cluster is reseeded on the point farthest from its assigned center.
func kmeansSeeded(feats []featVec, k, shift int) (assign []int, centers []featVec) {
	n := len(feats)
	assign = make([]int, n)
	centers = make([]featVec, k)
	for c := 0; c < k; c++ {
		centers[c] = feats[(c*n/k+shift)%n]
	}
	counts := make([]int, k)
	for iter := 0; iter < kmeansMaxIters; iter++ {
		changed := false
		for i := range feats {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := dist2(&feats[i], &centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if iter == 0 || assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		for c := range counts {
			counts[c] = 0
		}
		for _, c := range assign {
			counts[c]++
		}
		// Reseed any emptied cluster on the farthest point from its center.
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				continue
			}
			far, farD := -1, -1.0
			for i := range feats {
				if counts[assign[i]] <= 1 {
					continue // don't empty a singleton cluster
				}
				if d := dist2(&feats[i], &centers[assign[i]]); d > farD {
					far, farD = i, d
				}
			}
			if far < 0 {
				break
			}
			counts[assign[far]]--
			centers[c] = feats[far]
			assign[far] = c
			counts[c] = 1
			changed = true
		}
		if !changed {
			break
		}
		// Recompute centroids.
		for c := range centers {
			centers[c] = featVec{}
		}
		for i, c := range assign {
			for d := 0; d < featDims; d++ {
				centers[c][d] += feats[i][d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				inv := 1 / float64(counts[c])
				for d := 0; d < featDims; d++ {
					centers[c][d] *= inv
				}
			}
		}
	}
	return assign, centers
}

// --- representative run ---

// repPreroll is how many instructions of detailed pre-roll precede each
// measured window (when that much trace exists): the detailed model starts
// this far before the window and the statistics snapshot taken at the window
// boundary is subtracted, so the measurement sees a pipeline already in
// motion instead of paying a fresh machine's fill transient. A window at the
// very start of the trace keeps its fill cost — the real program pays it too.
const repPreroll = 250

// repWindow is one cluster's detailed-simulation job.
type repWindow struct {
	cluster    int
	start, end int   // measured trace range [start, end)
	preStart   int   // detailed pre-roll begins here (start - repPreroll, clamped)
	instrs     int64 // total instructions the cluster stands for (its weight)
}

// runWarmWindow simulates tr[preStart:end) in detail on a machine
// functionally warmed with tr[:preStart), measuring only past the pre-roll.
func runWarmWindow(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, w repWindow) windowResult {
	var snap prerollSnap
	st, err := runSchedWarm(p, tr[w.preStart:w.end], cfg, mg, nil, nil, DefaultScheduler(),
		tr[:w.preStart], int64(w.start-w.preStart), &snap)
	if err != nil {
		return windowResult{err: err}
	}
	return repDeltas(st, &snap)
}

// repDeltas turns a warmed-window run's stats into the measured-region deltas
// by subtracting the pre-roll snapshot.
func repDeltas(st *Stats, snap *prerollSnap) windowResult {
	return windowResult{
		cycles:      st.Cycles - snap.cycles,
		instrs:      st.Instrs - snap.instrs,
		uops:        st.Uops - snap.uops,
		simulated:   st.Instrs,
		handles:     st.Handles - snap.handles,
		embedded:    st.EmbeddedInstrs - snap.embedded,
		mispredicts: st.BranchMispredicts - snap.mispredicts,
		replay:      st.Replays - snap.replay,
	}
}

func runTracedWarmWindow(ctx context.Context, p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, w repWindow, i int) windowResult {
	_, sp := metrics.StartSpan(ctx, "sample.repwindow",
		metrics.L("index", strconv.Itoa(i)), metrics.L("start", strconv.Itoa(w.start)))
	r := runWarmWindow(p, tr, cfg, mg, w)
	sp.End()
	noteSampleWindow()
	return r
}

// repPlan is the deterministic outcome of representative-window selection:
// which windows to simulate in detail, what instruction mass each stands for,
// and the dispersion terms the error bound needs. Both the in-memory and the
// streaming sampled paths build a plan the same way and aggregate it the same
// way; only how they execute the windows differs.
type repPlan struct {
	jobs       []repWindow
	warmInstrs int64
	intervals  int
	intraDisp  float64
	totalDisp  float64
}

// planRepWindows selects the detailed windows for a trace of traceLen records
// whose interval features are feats/lens. Fully deterministic.
func planRepWindows(feats []featVec, lens []int, traceLen int, spec SampleSpec) repPlan {
	// spec.Clusters is the detailed-window budget. Intervals are clustered
	// into at most repMaxClusters phases, and each phase is sampled by several
	// windows (stratified systematic sampling): within a phase the feature
	// distance is tiny but the CPI can still spread, so averaging a few
	// members beats betting everything on a single medoid. When the budget is
	// left at 0, it auto-scales so the detailed windows (plus their pre-rolls)
	// cover about a fifth of the trace — the 5x-speedup operating point the
	// accuracy gate pins.
	budget := spec.Clusters
	if budget <= 0 {
		budget = traceLen / (5 * (spec.Window + repPreroll))
		if budget < DefaultSampleClusters {
			budget = DefaultSampleClusters
		}
	}
	if budget > len(feats) {
		budget = len(feats)
	}
	k := budget
	if k > repMaxClusters {
		k = repMaxClusters
	}
	assign, centers := kmeans(feats, k)

	type clusterInfo struct {
		instrs    int64
		members   []int // interval indices, ascending
		dispersed float64
	}
	clusters := make([]clusterInfo, k)
	for i, c := range assign {
		ci := &clusters[c]
		ci.instrs += int64(lens[i])
		ci.members = append(ci.members, i)
		ci.dispersed += math.Sqrt(dist2(&feats[i], &centers[c]))
	}

	// Allocate the window budget: one window per non-empty cluster, the rest
	// by largest remainder of the clusters' instruction mass.
	alloc := make([]int, k)
	nonEmpty := 0
	for c := range clusters {
		if len(clusters[c].members) > 0 {
			alloc[c] = 1
			nonEmpty++
		}
	}
	total := float64(traceLen)
	for extra := budget - nonEmpty; extra > 0; extra-- {
		best, bestR := -1, -1.0
		for c := range clusters {
			if alloc[c] == 0 || alloc[c] >= len(clusters[c].members) {
				continue
			}
			if r := float64(clusters[c].instrs)/total - float64(alloc[c]); r > bestR {
				best, bestR = c, r
			}
		}
		if best < 0 {
			break
		}
		alloc[best]++
	}

	// Build the window jobs in cluster order (deterministic): each cluster's
	// member list splits into alloc[c] contiguous runs; the run's medoid (the
	// member closest to the run's own feature mean, latest on ties — among
	// feature-identical members a later one is more likely steady-state) is
	// simulated and carries the run's exact instruction mass.
	var jobs []repWindow
	var warmInstrs int64
	for c := range clusters {
		ci := &clusters[c]
		nc := alloc[c]
		for j := 0; j < nc; j++ {
			lo, hi := j*len(ci.members)/nc, (j+1)*len(ci.members)/nc
			run := ci.members[lo:hi]
			var mass int64
			var mean featVec
			for _, i := range run {
				mass += int64(lens[i])
				for d := 0; d < featDims; d++ {
					mean[d] += feats[i][d]
				}
			}
			for d := 0; d < featDims; d++ {
				mean[d] /= float64(len(run))
			}
			pick, pickD := run[0], math.Inf(1)
			for _, i := range run {
				if d := dist2(&feats[i], &mean); d <= pickD {
					pick, pickD = i, d
				}
			}
			start := pick * spec.Interval
			end := start + spec.Window
			if end > traceLen {
				end = traceLen
			}
			// Continuous functional warming (the SMARTS idea): every window
			// is warmed with the entire preceding trace, not just a fixed
			// prefix. Cache and predictor state depends on the full access
			// history — a short warm-up systematically overestimates miss
			// rates — and the functional replay is linear and cheap next to
			// detailed simulation. spec.Warmup only governs uniform mode,
			// where warm-up is re-simulated in detail and must stay short.
			preStart := start - repPreroll
			if preStart < 0 {
				preStart = 0
			}
			warmInstrs += int64(preStart)
			jobs = append(jobs, repWindow{cluster: c, start: start, end: end, preStart: preStart, instrs: mass})
		}
	}

	// Dispersion terms for the heuristic error bound: how dispersed clusters
	// are internally, relative to the trace's total dispersion.
	var gc featVec
	for i := range feats {
		for d := 0; d < featDims; d++ {
			gc[d] += feats[i][d]
		}
	}
	for d := 0; d < featDims; d++ {
		gc[d] /= float64(len(feats))
	}
	var totalDisp, intraDisp float64
	for i := range feats {
		totalDisp += math.Sqrt(dist2(&feats[i], &gc))
	}
	for c := range clusters {
		intraDisp += clusters[c].dispersed
	}

	return repPlan{
		jobs:       jobs,
		warmInstrs: warmInstrs,
		intervals:  len(feats),
		intraDisp:  intraDisp,
		totalDisp:  totalDisp,
	}
}

// aggregate combines the per-window results of a plan into whole-run
// estimates: each window's per-instruction rates stand for the instruction
// mass it samples; auxiliary counters scale by the same weight.
func (pl *repPlan) aggregate(results []windowResult, traceLen int) (*Stats, SampleReport, error) {
	total := float64(traceLen)
	est := &Stats{Instrs: int64(traceLen)}
	var cpiW, upiW float64
	var detail int64
	cpiMin, cpiMax := math.Inf(1), math.Inf(-1)
	for i, r := range results {
		if r.err != nil {
			return nil, SampleReport{}, r.err
		}
		if r.instrs <= 0 {
			return nil, SampleReport{}, fmt.Errorf("pipeline: representative window %d measured nothing", i)
		}
		detail += r.simulated
		w := float64(pl.jobs[i].instrs) / total
		cpi := float64(r.cycles) / float64(r.instrs)
		cpiW += w * cpi
		upiW += w * float64(r.uops) / float64(r.instrs)
		if cpi < cpiMin {
			cpiMin = cpi
		}
		if cpi > cpiMax {
			cpiMax = cpi
		}
		scale := float64(pl.jobs[i].instrs) / float64(r.instrs)
		est.Handles += int64(float64(r.handles)*scale + 0.5)
		est.EmbeddedInstrs += int64(float64(r.embedded)*scale + 0.5)
		est.BranchMispredicts += int64(float64(r.mispredicts)*scale + 0.5)
		est.Replays += int64(float64(r.replay)*scale + 0.5)
	}
	est.Cycles = int64(cpiW*total + 0.5)
	est.Uops = int64(upiW*total + 0.5)

	var errBound float64
	if pl.totalDisp > 0 && cpiW > 0 && len(results) > 1 {
		errBound = (pl.intraDisp / pl.totalDisp) * (cpiMax - cpiMin) / cpiW
	}

	report := SampleReport{
		Mode:          SampleRepresentative,
		Intervals:     pl.intervals,
		Windows:       len(pl.jobs),
		DetailInstrs:  detail,
		WarmInstrs:    pl.warmInstrs,
		SimulatedFrac: float64(detail) / total,
		ErrBound:      errBound,
	}
	return est, report, nil
}

// runSampledRep is the representative-mode body of RunSampledReport.
func runSampledRep(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, spec SampleSpec) (*Stats, SampleReport, error) {
	feats, lens := intervalFeatures(p, tr, cfg, spec.Interval)
	plan := planRepWindows(feats, lens, len(tr), spec)
	jobs := plan.jobs

	ctx, runSpan := metrics.StartSpan(context.Background(), "sampled.rep",
		metrics.L("prog", p.Name), metrics.L("clusters", strconv.Itoa(len(jobs))))
	results := make([]windowResult, len(jobs))
	if spec.Workers > 1 {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < spec.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wctx := metrics.WithTid(ctx, sampleTidBase+w)
				for i := range idx {
					results[i] = runTracedWarmWindow(wctx, p, tr, cfg, mg, jobs[i], i)
				}
			}(w)
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range jobs {
			results[i] = runTracedWarmWindow(ctx, p, tr, cfg, mg, jobs[i], i)
		}
	}
	runSpan.End()

	return plan.aggregate(results, len(tr))
}
