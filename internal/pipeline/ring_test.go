package pipeline

import "testing"

func TestRingFIFOAndGrowth(t *testing.T) {
	r := newRing[int](2)
	for i := 0; i < 100; i++ {
		r.pushBack(i)
	}
	if r.len() != 100 {
		t.Fatalf("len = %d", r.len())
	}
	for i := 0; i < 100; i++ {
		if got := r.at(i); got != i {
			t.Fatalf("at(%d) = %d", i, got)
		}
	}
	for i := 0; i < 100; i++ {
		if got := r.popFront(); got != i {
			t.Fatalf("popFront = %d, want %d", got, i)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len after drain = %d", r.len())
	}
}

func TestRingWrapAndTruncate(t *testing.T) {
	r := newRing[int](8)
	// Force head to wander so pushes wrap around the buffer.
	for cycle := 0; cycle < 50; cycle++ {
		for i := 0; i < 5; i++ {
			r.pushBack(cycle*10 + i)
		}
		if got := r.popFront(); got != cycle*10 {
			t.Fatalf("cycle %d: popFront = %d", cycle, got)
		}
		r.truncBack(1) // keep only the oldest remaining
		if r.len() != 1 {
			t.Fatalf("cycle %d: len = %d", cycle, r.len())
		}
		if got := r.popFront(); got != cycle*10+1 {
			t.Fatalf("cycle %d: second pop = %d", cycle, got)
		}
	}
	r.clear()
	if r.len() != 0 {
		t.Fatal("clear left elements")
	}
}
