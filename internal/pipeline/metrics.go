package pipeline

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// This file is the pipeline's metrics surface: process-wide simulation
// counters (runs, cycles, uops, instructions, sample windows) registered
// on the metrics registry by InstallMetrics. The counters are bumped once
// per completed run — never inside the cycle loop — so the hot path cost
// with metrics off is a single atomic pointer load per run.

// simSeries holds the registered counters; nil (the default) means
// metrics are off.
type simSeries struct {
	runs    *metrics.Counter
	cycles  *metrics.Counter
	uops    *metrics.Counter
	instrs  *metrics.Counter
	windows *metrics.Counter
}

var simMetrics atomic.Pointer[simSeries]

// InstallMetrics registers the pipeline's simulation counters on reg and
// starts feeding them. Safe to call more than once (re-registration
// returns the existing series).
func InstallMetrics(reg *metrics.Registry) {
	simMetrics.Store(&simSeries{
		runs:    reg.Counter("mg_sim_runs_total", "completed timing-simulator runs"),
		cycles:  reg.Counter("mg_sim_cycles_total", "simulated cycles summed over all completed runs"),
		uops:    reg.Counter("mg_sim_uops_total", "committed micro-ops summed over all completed runs"),
		instrs:  reg.Counter("mg_sim_instrs_total", "committed instructions summed over all completed runs"),
		windows: reg.Counter("mg_sim_sample_windows_total", "sample windows simulated by RunSampled"),
	})
}

// noteRun feeds a completed run's statistics into the counters; a no-op
// when metrics are off.
func noteRun(st *Stats) {
	s := simMetrics.Load()
	if s == nil {
		return
	}
	s.runs.Inc()
	s.cycles.Add(st.Cycles)
	s.uops.Add(st.Uops)
	s.instrs.Add(st.Instrs)
}

// noteSampleWindow counts one simulated sample window.
func noteSampleWindow() {
	if s := simMetrics.Load(); s != nil {
		s.windows.Inc()
	}
}
