package pipeline

import (
	"math"
	"testing"

	"repro/internal/emu"
	"repro/internal/workload"
)

func TestRepresentativeWorkersDeterministic(t *testing.T) {
	// Clustering, window selection, and the mass-weighted combination must be
	// identical whatever the worker count: the parallel pool only changes who
	// simulates a window, never which windows are simulated or how their
	// results compose.
	w := workload.Find("media.gen02")
	p, _, _, err := w.Build("small")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	base := SampleSpec{Interval: 1000, Window: 1000, Mode: SampleRepresentative}
	serial, serialReport, err := RunSampledReport(p, res.Trace, Baseline(), MGConfig{}, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		spec := base
		spec.Workers = workers
		par, parReport, err := RunSampledReport(p, res.Trace, Baseline(), MGConfig{}, spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if *par != *serial {
			t.Errorf("workers=%d: stats diverge from serial:\nserial %+v\npar    %+v",
				workers, serial, par)
		}
		parReport.Mode = serialReport.Mode // Mode is spec-copied; compare the rest
		if parReport != serialReport {
			t.Errorf("workers=%d: report diverges:\nserial %+v\npar    %+v",
				workers, serialReport, parReport)
		}
	}
}

func TestRepresentativeVsUniformVsFull(t *testing.T) {
	// Representative mode must estimate the full run about as well as uniform
	// periodic sampling while simulating fewer instructions in detail. The
	// tight accuracy bound lives in TestSamplingAccuracyGate; this checks the
	// three-way relationship on a single workload.
	p, _, _, err := workload.Find("embed.bitcount").Build("small")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	cfg := Baseline()
	full, err := Run(p, tr, cfg, MGConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	rep, repReport, err := RunSampledReport(p, tr, cfg, MGConfig{},
		SampleSpec{Interval: 1000, Window: 1000, Mode: SampleRepresentative})
	if err != nil {
		t.Fatal(err)
	}
	uni, uniReport, err := RunSampledReport(p, tr, cfg, MGConfig{},
		SampleSpec{Interval: 5000, Window: 1000, Warmup: 250})
	if err != nil {
		t.Fatal(err)
	}

	repErr := math.Abs(rep.IPC()/full.IPC() - 1)
	uniErr := math.Abs(uni.IPC()/full.IPC() - 1)
	t.Logf("full IPC %.4f  rep %.4f (err %.2f%%, detail %d)  uniform %.4f (err %.2f%%, detail %d)",
		full.IPC(), rep.IPC(), 100*repErr, repReport.DetailInstrs,
		uni.IPC(), 100*uniErr, uniReport.DetailInstrs)
	if repErr > 0.03 {
		t.Errorf("representative IPC error %.2f%% (want <= 3%%)", 100*repErr)
	}
	if uniErr > 0.10 {
		t.Errorf("uniform IPC error %.2f%% (want <= 10%%)", 100*uniErr)
	}
	if repReport.DetailInstrs >= uniReport.DetailInstrs {
		t.Errorf("representative mode simulated %d detailed instrs, uniform %d: no budget win",
			repReport.DetailInstrs, uniReport.DetailInstrs)
	}
	if rep.Instrs != full.Instrs || uni.Instrs != full.Instrs {
		t.Errorf("instruction accounting: full %d rep %d uniform %d",
			full.Instrs, rep.Instrs, uni.Instrs)
	}
}

func TestRepresentativeShortTraceFallsBack(t *testing.T) {
	// A trace shorter than one interval runs fully in detail, exactly like
	// uniform mode's fallback, and says so in the report.
	p, _, _, err := workload.Find("comm.ipchk").Build("small")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := SampleSpec{Interval: 1 << 20, Window: 1000, Mode: SampleRepresentative}
	est, report, err := RunSampledReport(p, res.Trace, Baseline(), MGConfig{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Full {
		t.Error("short trace should report Full")
	}
	if est.Instrs != int64(len(res.Trace)) {
		t.Error("fallback lost instructions")
	}
}
