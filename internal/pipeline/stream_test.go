package pipeline

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/prog"
	"repro/internal/workload"
)

// The streaming path must be a pure re-plumbing: RunSampledProg and
// collect-the-trace-then-RunSampledReport are the same computation fed the
// same records, so their estimates and reports must match bit for bit.

func streamTrace(t *testing.T, name string) (*prog.Program, []emu.Rec) {
	t.Helper()
	w := workload.Find(name)
	prg, _, _, err := w.Build("small")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(prg, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return prg, res.Trace
}

func TestStreamUniformMatchesSliced(t *testing.T) {
	p, tr := streamTrace(t, "intx.bsearch")
	cfg := Baseline()
	spec := SampleSpec{Interval: 5000, Window: 1000, Warmup: 250}

	want, wantReport, err := RunSampledReport(p, tr, cfg, MGConfig{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	got, gotReport, err := RunSampledProg(p, cfg, MGConfig{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("stats diverge:\nsliced    %+v\nstreaming %+v", want, got)
	}
	if gotReport != wantReport {
		t.Errorf("report diverges:\nsliced    %+v\nstreaming %+v", wantReport, gotReport)
	}
}

func TestStreamRepMatchesSliced(t *testing.T) {
	p, tr := streamTrace(t, "media.gen02")
	cfg := Baseline()
	for _, workers := range []int{0, 4} {
		spec := SampleSpec{Interval: 1000, Window: 1000, Mode: SampleRepresentative, Workers: workers}

		want, wantReport, err := RunSampledReport(p, tr, cfg, MGConfig{}, spec)
		if err != nil {
			t.Fatal(err)
		}
		got, gotReport, err := RunSampledProg(p, cfg, MGConfig{}, spec)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Errorf("workers=%d: stats diverge:\nsliced    %+v\nstreaming %+v", workers, want, got)
		}
		if gotReport != wantReport {
			t.Errorf("workers=%d: report diverges:\nsliced    %+v\nstreaming %+v", workers, wantReport, gotReport)
		}
	}
}

func TestStreamShortTraceFallsBack(t *testing.T) {
	p, tr := streamTrace(t, "comm.ipchk")
	cfg := Baseline()
	for _, mode := range []SampleMode{SampleUniform, SampleRepresentative} {
		spec := SampleSpec{Interval: 1 << 20, Window: 1000, Mode: mode}
		want, wantReport, err := RunSampledReport(p, tr, cfg, MGConfig{}, spec)
		if err != nil {
			t.Fatal(err)
		}
		got, gotReport, err := RunSampledProg(p, cfg, MGConfig{}, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !gotReport.Full {
			t.Errorf("mode=%v: short trace should report Full", mode)
		}
		if *got != *want || gotReport != wantReport {
			t.Errorf("mode=%v: fallback diverges:\nsliced    %+v %+v\nstreaming %+v %+v",
				mode, want, wantReport, got, gotReport)
		}
	}
}
