package pipeline

import "testing"

func newTestMonitor(threshold int, interval int64) (*mgMonitor, *Stats) {
	st := &Stats{}
	cfg := &MGConfig{DisableThreshold: threshold, DecayInterval: interval}
	return newMGMonitor(cfg, 4, st), st
}

func TestMonitorDisablesAtThreshold(t *testing.T) {
	m, st := newTestMonitor(3, 1000)
	for i := 0; i < 2; i++ {
		m.harmful(0, 1)
		if m.isDisabled(1) {
			t.Fatalf("disabled after %d events, threshold 3", i+1)
		}
	}
	m.harmful(0, 1)
	if !m.isDisabled(1) {
		t.Error("not disabled at threshold")
	}
	if st.MGDisables != 1 || st.MGHarmfulEvents != 3 {
		t.Errorf("stats: disables=%d harmful=%d", st.MGDisables, st.MGHarmfulEvents)
	}
	if m.isDisabled(0) || m.isDisabled(2) {
		t.Error("other templates affected")
	}
}

func TestMonitorCleanDecays(t *testing.T) {
	m, _ := newTestMonitor(3, 1000)
	m.harmful(0, 0)
	m.harmful(0, 0)
	m.clean(0)
	m.clean(0)
	m.harmful(0, 0)
	m.harmful(0, 0)
	if m.isDisabled(0) {
		t.Error("clean events should have absorbed two harmful ones")
	}
	m.harmful(0, 0)
	if !m.isDisabled(0) {
		t.Error("threshold eventually reached")
	}
}

func TestMonitorResurrection(t *testing.T) {
	m, st := newTestMonitor(2, 100)
	m.harmful(0, 0)
	m.harmful(0, 0)
	if !m.isDisabled(0) {
		t.Fatal("not disabled")
	}
	// Two decay ticks bring the counter below threshold.
	m.tick(100)
	m.tick(250)
	if m.isDisabled(0) {
		t.Error("template should be re-enabled after decay")
	}
	if st.MGReenables != 1 {
		t.Errorf("MGReenables = %d, want 1", st.MGReenables)
	}
}

func TestMonitorCounterSaturates(t *testing.T) {
	m, _ := newTestMonitor(3, 1000)
	for i := 0; i < 100; i++ {
		m.harmful(0, 0)
	}
	if m.counters[0] > counterMax {
		t.Errorf("counter %d exceeds max %d", m.counters[0], counterMax)
	}
}

func TestMonitorTickRespectsInterval(t *testing.T) {
	m, _ := newTestMonitor(3, 100)
	m.harmful(0, 0)
	m.tick(50) // before the first decay point
	if m.counters[0] != 1 {
		t.Errorf("premature decay: counter = %d", m.counters[0])
	}
	m.tick(150)
	if m.counters[0] != 0 {
		t.Errorf("decay missed: counter = %d", m.counters[0])
	}
}
