package pipeline

// ring is a growable power-of-two circular FIFO deque. The pipeline's
// ordered queues (fetch queue, ROB, prepared fetch items, retired uops)
// pop from the front and push at the back every cycle; the append/reslice
// idiom reallocates the backing array continually on that access pattern,
// while a ring reuses one allocation for the whole run.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func newRing[T any](capHint int) ring[T] {
	c := 8
	for c < capHint {
		c <<= 1
	}
	return ring[T]{buf: make([]T, c)}
}

func (r *ring[T]) len() int { return r.n }

// at returns the i-th element from the front (0 = oldest).
func (r *ring[T]) at(i int) T { return r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *ring[T]) pushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// pushFront prepends v (used to return a not-yet-consumed item to the
// front of the queue, e.g. a fetch item stalled on an I-cache miss).
func (r *ring[T]) pushFront(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1) & (len(r.buf) - 1)
	r.buf[r.head] = v
	r.n++
}

func (r *ring[T]) popFront() T {
	var zero T
	i := r.head
	v := r.buf[i]
	r.buf[i] = zero // release for GC / recycling
	r.head = (i + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// popBack removes and returns the newest element.
func (r *ring[T]) popBack() T {
	var zero T
	i := (r.head + r.n - 1) & (len(r.buf) - 1)
	v := r.buf[i]
	r.buf[i] = zero
	r.n--
	return v
}

// removeAt deletes the i-th element from the front, shifting everything
// younger forward one position (rare slow path for mid-ring removal).
func (r *ring[T]) removeAt(i int) {
	for ; i < r.n-1; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = r.buf[(r.head+i+1)&(len(r.buf)-1)]
	}
	r.truncBack(r.n - 1)
}

// truncBack drops everything after the first n elements (squash).
func (r *ring[T]) truncBack(n int) {
	var zero T
	for i := n; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = zero
	}
	r.n = n
}

func (r *ring[T]) clear() { r.truncBack(0) }

func (r *ring[T]) grow() {
	nb := make([]T, len(r.buf)*2)
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}
