package pipeline

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/isa"
)

// SchedKind selects the issue-scheduler implementation. Both schedulers
// simulate the same machine and produce byte-identical statistics and
// pipetraces; they differ only in how the simulator finds work.
//
// SchedEvent (the default) is event-driven: issue() pops candidates from a
// ready-queue that producers populate on wakeup broadcast, and the main
// loop jumps over cycles in which no pipeline stage can make progress.
// SchedScan is the original per-cycle implementation — tick every cycle,
// rescan the whole issue queue — kept as the differential oracle behind
// the CLIs' -refsched flag.
type SchedKind uint8

const (
	// SchedEvent is the event-driven scheduler: producer-wakeup issue
	// queue plus idle-cycle skipping.
	SchedEvent SchedKind = iota
	// SchedScan is the reference per-cycle scan scheduler.
	SchedScan
)

func (k SchedKind) String() string {
	if k == SchedScan {
		return "scan"
	}
	return "event"
}

// defaultSched is the scheduler Run and RunObserved use. Atomic so that a
// CLI flipping it at startup never races concurrent simulations.
var defaultSched atomic.Uint32

// SetDefaultScheduler selects the scheduler used by Run and RunObserved.
// Intended for CLI startup (-refsched); set it before starting runs.
func SetDefaultScheduler(k SchedKind) { defaultSched.Store(uint32(k)) }

// DefaultScheduler returns the scheduler Run and RunObserved will use.
func DefaultScheduler() SchedKind { return SchedKind(defaultSched.Load()) }

// --- issue bandwidth bookkeeping (shared by both schedulers) ---

// issueBudget tracks the per-cycle issue bandwidth and port budget.
type issueBudget struct {
	width, simple, complx, loads, stores, mg, mgMem int
}

func (m *machine) newIssueBudget() issueBudget {
	return issueBudget{
		width:  m.cfg.IssueWidth,
		simple: m.cfg.SimplePorts,
		complx: m.cfg.ComplexPorts,
		loads:  m.cfg.LoadPorts,
		stores: m.cfg.StorePorts,
		mg:     m.cfg.MaxMGIssue,
		mgMem:  m.cfg.MaxMemMGIssue,
	}
}

// admits reports whether a port is available this cycle for a uop with the
// given packed meta byte (see packMeta).
func (b *issueBudget) admits(meta uint8) bool {
	if meta&metaHandle != 0 {
		return b.mg > 0 && !(meta&(metaLoad|metaStore) != 0 && b.mgMem == 0)
	}
	switch isa.Class(meta & metaClassMask) {
	case isa.ClassSimple, isa.ClassBranch, isa.ClassJump:
		return b.simple > 0
	case isa.ClassComplex:
		return b.complx > 0
	case isa.ClassLoad:
		return b.loads > 0
	case isa.ClassStore:
		return b.stores > 0
	}
	return true
}

// consume charges the issue against the budget.
func (b *issueBudget) consume(meta uint8) {
	b.width--
	if meta&metaHandle != 0 {
		b.mg--
		if meta&(metaLoad|metaStore) != 0 {
			b.mgMem--
		}
		return
	}
	switch isa.Class(meta & metaClassMask) {
	case isa.ClassSimple, isa.ClassBranch, isa.ClassJump:
		b.simple--
	case isa.ClassComplex:
		b.complx--
	case isa.ClassLoad:
		b.loads--
	case isa.ClassStore:
		b.stores--
	}
}

// --- event scheduler: ready queue ---

// readyEnt is one overflow-heap entry: the uop in slot may attempt issue at
// cycle wake. The heap orders by (wake, seq) so same-cycle candidates pop
// in program order, matching the scan scheduler's issue-queue order.
type readyEnt struct {
	wake int64
	seq  int64
	slot int32
}

func entBefore(a, b readyEnt) bool {
	return a.wake < b.wake || (a.wake == b.wake && a.seq < b.seq)
}

// wheelSize is the calendar-wheel horizon in cycles. Wakes beyond it (rare
// bus-contention pile-ups) fall back to the overflow heap. Power of two.
const wheelSize = 512

// pushReady schedules slot s's next issue attempt at cycle wake, choosing
// the cheapest structure that can represent it: the flat readyNext list
// when wake is exactly next cycle (port/bandwidth rejects, operands already
// ready at rename — the dominant case), a calendar-wheel slot for wakes
// within the wheel horizon (load misses, latency chains), and the overflow
// heap beyond that. Wheel slots are intrusive chains through hot.link, so
// scheduling a wake never allocates.
func (m *machine) pushReady(s int32, wake int64) {
	d := wake - m.cycle
	if d <= 1 {
		// Exotic configurations can broadcast a same-cycle wake (d <= 0);
		// those must stay visible to the current issue drain, which re-reads
		// the heap — readyNext is only read next cycle.
		if d == 1 {
			m.readyNext = append(m.readyNext, s)
			return
		}
		m.pushReadyHeap(s, wake)
		return
	}
	if d < wheelSize {
		w := int(wake) & (wheelSize - 1)
		if m.wheelHead[w] < 0 {
			m.wheelBits[w>>6] |= 1 << uint(w&63)
		}
		m.hot.link[s] = m.wheelHead[w]
		m.wheelHead[w] = s
		m.wheelCnt++
		return
	}
	m.pushReadyHeap(s, wake)
}

func (m *machine) pushReadyHeap(s int32, wake int64) {
	q := append(m.readyQ, readyEnt{wake: wake, seq: m.hot.seq[s], slot: s})
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entBefore(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	m.readyQ = q
}

func (m *machine) popReady() int32 {
	q := m.readyQ
	s := q[0].slot
	n := len(q) - 1
	q[0] = q[n]
	m.readyQ = q[:n]
	siftDownReady(m.readyQ, 0)
	return s
}

func siftDownReady(q []readyEnt, i int) {
	n := len(q)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && entBefore(q[l], q[smallest]) {
			smallest = l
		}
		if r < n && entBefore(q[r], q[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}

// purgeReadyQ drops squashed uops after a flush — they are about to be
// recycled, so stale entries must go — and restores heap order.
func (m *machine) purgeReadyQ() {
	h := &m.hot
	q := m.readyQ[:0]
	for _, e := range m.readyQ {
		if !h.squashed[e.slot] {
			q = append(q, e)
		}
	}
	m.readyQ = q
	for i := len(q)/2 - 1; i >= 0; i-- {
		siftDownReady(q, i)
	}
	nx := m.readyNext[:0]
	for _, s := range m.readyNext {
		if !h.squashed[s] {
			nx = append(nx, s)
		}
	}
	m.readyNext = nx
	if m.wheelCnt == 0 {
		return
	}
	for w, word := range m.wheelBits {
		for word != 0 {
			ws := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			// Relink the chain keeping only live uops.
			var keptHead, keptTail int32 = -1, -1
			for s := m.wheelHead[ws]; s >= 0; {
				next := h.link[s]
				if h.squashed[s] {
					h.link[s] = -1
					m.wheelCnt--
				} else {
					if keptTail < 0 {
						keptHead = s
					} else {
						h.link[keptTail] = s
					}
					keptTail = s
				}
				s = next
			}
			if keptTail >= 0 {
				h.link[keptTail] = -1
			}
			m.wheelHead[ws] = keptHead
			if keptHead < 0 {
				m.wheelBits[w] &^= 1 << uint(ws&63)
			}
		}
	}
}

// nextWheelWake returns the earliest wake cycle pending in the calendar
// wheel. Caller guarantees wheelCnt > 0; remaining entries wake within
// (cycle, cycle+wheelSize), so a circular bitmap scan starting at the slot
// for cycle+1 finds the earliest in at most wheelSize/64+1 word reads.
func (m *machine) nextWheelWake() int64 {
	start := int(m.cycle+1) & (wheelSize - 1)
	w := start >> 6
	word := m.wheelBits[w] & (^uint64(0) << uint(start&63))
	for i := 0; i <= len(m.wheelBits); i++ {
		if word != 0 {
			s := w<<6 + bits.TrailingZeros64(word)
			return m.cycle + 1 + int64((s-start)&(wheelSize-1))
		}
		w = (w + 1) & (len(m.wheelBits) - 1)
		word = m.wheelBits[w]
	}
	return never // unreachable while wheelCnt > 0
}

// --- event scheduler: producer wakeup ---

// addWaiter chains consumer slot c onto producer slot p's wakeup list,
// taking a node from the free list (steady state) or growing the pool.
func (m *machine) addWaiter(p, c int32) {
	n := m.wakeFree
	if n < 0 {
		m.wakeNodes = append(m.wakeNodes, wakeNode{})
		n = int32(len(m.wakeNodes) - 1)
	} else {
		m.wakeFree = m.wakeNodes[n].next
	}
	m.wakeNodes[n] = wakeNode{c: c, next: m.hot.wakeHead[p]}
	m.hot.wakeHead[p] = n
}

// admitEvent registers a freshly renamed uop with the event scheduler:
// either it waits on unissued producers (which will wake it when they
// broadcast at issue), or it goes straight onto the ready queue.
func (m *machine) admitEvent(u *uop) {
	m.iqCount++
	h := &m.hot
	s := u.slot
	cnt := int32(0)
	n := int(h.meta[s] >> metaNSrcShift)
	for i := 0; i < n; i++ {
		if p := h.srcs[s][i]; p >= 0 && h.issue[p] < 0 {
			m.addWaiter(p, s)
			cnt++
		}
	}
	if ws := h.waitSlot[s]; ws >= 0 && h.issue[ws] < 0 {
		m.addWaiter(ws, s)
		cnt++
	}
	h.waitCnt[s] = cnt
	if cnt == 0 {
		m.enqueueReady(s)
	}
}

// enqueueReady computes the first cycle at which the scan scheduler's
// ready() would admit slot s — every producer has issued by now, so all
// wakeup times are known — and pushes it onto the ready queue.
func (m *machine) enqueueReady(s int32) {
	h := &m.hot
	wake := h.earliest[s] // rename+1 (set at rename; no replay happened yet)
	src := h.srcs[s]
	n := int(h.meta[s] >> metaNSrcShift)
	for i := 0; i < n; i++ {
		p := src[i]
		if p < 0 {
			continue
		}
		w := h.readyOut[p]
		// Same singleton-load gate as the scan scheduler's ready(): handles
		// and non-loads never write specReady.
		if h.meta[p]&(metaLoad|metaHandle) == metaLoad {
			if sp := h.specReady[p]; sp > 0 && sp < w {
				w = sp // speculative load-hit wakeup
			}
		}
		if ic := h.issue[p]; ic > w {
			w = ic // consumer scans after producer the same cycle
		}
		if w > wake {
			wake = w
		}
	}
	if ws := h.waitSlot[s]; ws >= 0 && !h.committed[ws] && !h.squashed[ws] {
		w := h.resolve[ws]
		if ic := h.issue[ws]; ic > w {
			w = ic
		}
		if w > wake {
			wake = w
		}
	}
	m.pushReady(s, wake)
}

// broadcast wakes the consumers waiting on slot s, which has just issued
// (its readyOut/specReady/resolve are now known). Consumers whose last
// outstanding producer this was move onto the ready queue.
func (m *machine) broadcast(s int32) {
	h := &m.hot
	n := h.wakeHead[s]
	if n < 0 {
		return
	}
	h.wakeHead[s] = -1
	for n >= 0 {
		nd := &m.wakeNodes[n]
		c, next := nd.c, nd.next
		nd.next = m.wakeFree
		m.wakeFree = n
		n = next
		h.waitCnt[c]--
		if h.waitCnt[c] == 0 && !h.squashed[c] {
			m.enqueueReady(c)
		}
	}
}

// unregisterWaiter removes a squashed, never-issued uop from its
// producers' wakeup lists so their broadcasts never touch a recycled slot.
// Uops already on the ready queue (waitCnt 0) are purged wholesale by
// purgeReadyQ instead.
func (m *machine) unregisterWaiter(u *uop) {
	h := &m.hot
	s := u.slot
	if h.waitCnt[s] == 0 {
		return
	}
	n := int(h.meta[s] >> metaNSrcShift)
	for i := 0; i < n; i++ {
		if p := h.srcs[s][i]; p >= 0 && h.issue[p] < 0 {
			m.removeWaiter(p, s)
		}
	}
	if ws := h.waitSlot[s]; ws >= 0 && h.issue[ws] < 0 {
		m.removeWaiter(ws, s)
	}
	h.waitCnt[s] = 0
}

// removeWaiter unchains every node for consumer c from producer p's wakeup
// list (a consumer reading the same register twice registers twice).
func (m *machine) removeWaiter(p, c int32) {
	h := &m.hot
	prev := int32(-1)
	for n := h.wakeHead[p]; n >= 0; {
		nd := &m.wakeNodes[n]
		next := nd.next
		if nd.c == c {
			if prev < 0 {
				h.wakeHead[p] = next
			} else {
				m.wakeNodes[prev].next = next
			}
			nd.next = m.wakeFree
			m.wakeFree = n
		} else {
			prev = n
		}
		n = next
	}
}

// --- event scheduler: issue ---

// issueEvent is the event-driven issue stage: pop every candidate whose
// wake cycle has arrived, attempt them in program order under the same
// bandwidth/port/register-read rules as the scan scheduler, and re-queue
// rejects at their next feasible cycle (next cycle for structural
// rejects, the true operand-ready cycle for register-read replays).
func (m *machine) issueEvent() {
	h := &m.hot
	slot := int(m.cycle) & (wheelSize - 1)
	if len(m.readyNext) == 0 && m.wheelHead[slot] < 0 &&
		(len(m.readyQ) == 0 || m.readyQ[0].wake > m.cycle) {
		return
	}
	bud := m.newIssueBudget()
	// Swap readyNext into the candidate scratch: rejects re-append to the
	// (now empty) other buffer, so no copying either way.
	cand := m.readyNext
	m.readyNext = m.issueScratch[:0]
	// The outer loop re-drains the heap in case a broadcast enqueued a
	// consumer already eligible this cycle (impossible with a non-zero
	// issue-to-execute depth, but kept for exotic configurations; such
	// wakes never land on readyNext or the wheel).
	for {
		// Every entry in the current wheel slot is due exactly now: pushes
		// place wakes at most wheelSize-1 cycles out, and the idle-skip
		// logic never jumps past a pending wake.
		if s := m.wheelHead[slot]; s >= 0 {
			for s >= 0 {
				cand = append(cand, s)
				next := h.link[s]
				h.link[s] = -1
				s = next
				m.wheelCnt--
			}
			m.wheelHead[slot] = -1
			m.wheelBits[slot>>6] &^= 1 << uint(slot&63)
		}
		for len(m.readyQ) > 0 && m.readyQ[0].wake <= m.cycle {
			cand = append(cand, m.popReady())
		}
		if len(cand) == 0 {
			break
		}
		sortSlotsBySeq(cand, h.seq)
		for i, s := range cand {
			if h.squashed[s] {
				continue
			}
			if bud.width == 0 {
				// Out of issue bandwidth: everything still eligible
				// retries next cycle, like the scan's early exit.
				m.readyNext = append(m.readyNext, cand[i:]...)
				break
			}
			meta := h.meta[s]
			if !bud.admits(meta) {
				m.readyNext = append(m.readyNext, s)
				continue
			}
			bud.consume(meta)
			// Register read: a speculatively-woken consumer of a missed
			// load wastes this attempt and replays at the true ready time.
			if latest := m.latestSrcReady(s); latest > m.cycle {
				m.stats.Replays++
				h.uops[s].replays++
				h.earliest[s] = latest
				m.pushReady(s, latest)
				continue
			}
			m.execute(h.uops[s])
			m.iqCount--
			m.broadcast(s)
		}
		cand = cand[:0]
	}
	m.issueScratch = cand[:0]
}

// sortSlotsBySeq is an insertion sort by seq: candidate batches are small
// (bounded by the issue queue) and usually nearly sorted, arriving in
// (wake, seq) heap order.
func sortSlotsBySeq(ss []int32, seq []int64) {
	for i := 1; i < len(ss); i++ {
		s := ss[i]
		k := seq[s]
		j := i - 1
		for j >= 0 && seq[ss[j]] > k {
			ss[j+1] = ss[j]
			j--
		}
		ss[j+1] = s
	}
}

// --- event scheduler: idle-cycle skipping ---

// renameStallCounter returns the stall counter rename would charge this
// cycle for head-of-queue uop u, or nil if u can rename now. The check
// order must match rename().
func (m *machine) renameStallCounter(u *uop) *int64 {
	if m.iqLen() >= m.cfg.IQEntries {
		return &m.stats.StallIQ
	}
	if m.window.len() >= m.cfg.ROBEntries {
		return &m.stats.StallROB
	}
	if u.writesReg && m.freeRegs == 0 {
		return &m.stats.StallRegs
	}
	if u.isLoad && m.lqUsed >= m.cfg.LQEntries {
		return &m.stats.StallLQ
	}
	if u.isStore && m.sqUsed >= m.cfg.SQEntries {
		return &m.stats.StallSQ
	}
	return nil
}

// nextEventCycle returns the next cycle at which any pipeline stage might
// make progress or any per-cycle side channel (Slack-Dynamic decay,
// interval sampling) must observe the machine. Cycles before it are
// provably inert except for rename stall counting, which advanceCycle
// accounts in bulk. Returns never if no event is pending (deadlock).
func (m *machine) nextEventCycle() int64 {
	h := &m.hot
	c := m.cycle
	// Every term below is clamped to at least c+1, so any source already due
	// next cycle decides the answer outright. readyNext alone short-circuits
	// most busy cycles without touching the heap, wheel or queue heads.
	if len(m.readyNext) > 0 {
		return c + 1 // readyNext entries wake next cycle by construction
	}
	next := never
	if len(m.readyQ) > 0 {
		if w := m.readyQ[0].wake; w <= c+1 {
			return c + 1
		} else {
			next = w
		}
	}
	if m.window.len() > 0 {
		if hd := m.window.at(0); h.issue[hd.slot] >= 0 {
			if d := h.execDone[hd.slot]; d <= c+1 {
				return c + 1
			} else if d < next {
				next = d
			}
		}
	}
	if m.wheelCnt > 0 && next > c+1 {
		next = min(next, m.nextWheelWake())
	}
	for i := range m.pendingViol {
		v := &m.pendingViol[i]
		if h.squashed[v.load.slot] || h.squashed[v.store.slot] {
			continue
		}
		next = min(next, max(c+1, v.atCycle))
	}
	if b := m.pendingBranch; b != nil && h.issue[b.slot] >= 0 {
		next = min(next, max(c+1, h.resolve[b.slot]))
	}
	if m.fetchQ.len() > 0 {
		hd := m.fetchQ.at(0)
		if m.renameStallCounter(hd) == nil {
			// Head can rename once its rename latency elapses. (When it is
			// structurally blocked, only another event — a commit, issue or
			// flush — can unblock it, so no event is needed here.)
			next = min(next, max(c+1, hd.renameReady))
		}
	}
	if m.pendingBranch == nil && m.fetchQ.len() < m.cfg.FetchWidth*8 &&
		(m.fetchPending.len() > 0 || m.fetchIdx < len(m.tr)) {
		next = min(next, max(c+1, m.fetchStall))
	}
	if m.mon != nil && m.mgc.Dynamic {
		next = min(next, max(c+1, m.mon.decayAt))
	}
	if m.watch != nil && m.watch.Intervals != nil {
		every := m.watch.Intervals.Every()
		next = min(next, (c/every+1)*every)
	}
	return next
}

// advanceCycle jumps the machine to the next interesting cycle, charging
// the rename stall counters for the skipped cycles exactly as the scan
// scheduler would have, one per cycle, against the head-of-queue block
// reason (which cannot change across inert cycles).
func (m *machine) advanceCycle(maxCycles int64) {
	if m.done() {
		m.cycle++
		return
	}
	next := m.nextEventCycle()
	if next == never {
		// No pending event and not done: the machine is wedged. Jump past
		// the cycle bound so the run surfaces the same deadlock error the
		// scan scheduler's cycle-by-cycle crawl would eventually hit.
		m.cycle = maxCycles + 1
		return
	}
	if next > m.cycle+1 && m.fetchQ.len() > 0 {
		h := m.fetchQ.at(0)
		from := max(m.cycle+1, h.renameReady)
		if from < next {
			if ctr := m.renameStallCounter(h); ctr != nil {
				*ctr += next - from
			}
		}
	}
	m.cycle = next
}
