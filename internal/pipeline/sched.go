package pipeline

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/isa"
)

// SchedKind selects the issue-scheduler implementation. Both schedulers
// simulate the same machine and produce byte-identical statistics and
// pipetraces; they differ only in how the simulator finds work.
//
// SchedEvent (the default) is event-driven: issue() pops candidates from a
// ready-queue that producers populate on wakeup broadcast, and the main
// loop jumps over cycles in which no pipeline stage can make progress.
// SchedScan is the original per-cycle implementation — tick every cycle,
// rescan the whole issue queue — kept as the differential oracle behind
// the CLIs' -refsched flag.
type SchedKind uint8

const (
	// SchedEvent is the event-driven scheduler: producer-wakeup issue
	// queue plus idle-cycle skipping.
	SchedEvent SchedKind = iota
	// SchedScan is the reference per-cycle scan scheduler.
	SchedScan
)

func (k SchedKind) String() string {
	if k == SchedScan {
		return "scan"
	}
	return "event"
}

// defaultSched is the scheduler Run and RunObserved use. Atomic so that a
// CLI flipping it at startup never races concurrent simulations.
var defaultSched atomic.Uint32

// SetDefaultScheduler selects the scheduler used by Run and RunObserved.
// Intended for CLI startup (-refsched); set it before starting runs.
func SetDefaultScheduler(k SchedKind) { defaultSched.Store(uint32(k)) }

// DefaultScheduler returns the scheduler Run and RunObserved will use.
func DefaultScheduler() SchedKind { return SchedKind(defaultSched.Load()) }

// --- issue bandwidth bookkeeping (shared by both schedulers) ---

// issueBudget tracks the per-cycle issue bandwidth and port budget.
type issueBudget struct {
	width, simple, complx, loads, stores, mg, mgMem int
}

func (m *machine) newIssueBudget() issueBudget {
	return issueBudget{
		width:  m.cfg.IssueWidth,
		simple: m.cfg.SimplePorts,
		complx: m.cfg.ComplexPorts,
		loads:  m.cfg.LoadPorts,
		stores: m.cfg.StorePorts,
		mg:     m.cfg.MaxMGIssue,
		mgMem:  m.cfg.MaxMemMGIssue,
	}
}

// admits reports whether a port is available for u this cycle.
func (b *issueBudget) admits(u *uop) bool {
	if u.kind == kindHandle {
		return b.mg > 0 && !((u.isLoad || u.isStore) && b.mgMem == 0)
	}
	switch u.class {
	case isa.ClassSimple, isa.ClassBranch, isa.ClassJump:
		return b.simple > 0
	case isa.ClassComplex:
		return b.complx > 0
	case isa.ClassLoad:
		return b.loads > 0
	case isa.ClassStore:
		return b.stores > 0
	}
	return true
}

// consume charges u's issue against the budget.
func (b *issueBudget) consume(u *uop) {
	b.width--
	if u.kind == kindHandle {
		b.mg--
		if u.isLoad || u.isStore {
			b.mgMem--
		}
		return
	}
	switch u.class {
	case isa.ClassSimple, isa.ClassBranch, isa.ClassJump:
		b.simple--
	case isa.ClassComplex:
		b.complx--
	case isa.ClassLoad:
		b.loads--
	case isa.ClassStore:
		b.stores--
	}
}

// --- event scheduler: ready queue ---

// readyEnt is one ready-queue entry: uop u may attempt issue at cycle
// wake. The heap orders by (wake, seq) so same-cycle candidates pop in
// program order, matching the scan scheduler's issue-queue order.
type readyEnt struct {
	wake int64
	seq  int64
	u    *uop
}

func entBefore(a, b readyEnt) bool {
	return a.wake < b.wake || (a.wake == b.wake && a.seq < b.seq)
}

// wheelSize is the calendar-wheel horizon in cycles. Wakes beyond it (rare
// bus-contention pile-ups) fall back to the overflow heap. Power of two.
const wheelSize = 512

// pushReady schedules u's next issue attempt at cycle wake, choosing the
// cheapest structure that can represent it: the flat readyNext list when
// wake is exactly next cycle (port/bandwidth rejects, operands already
// ready at rename — the dominant case), a calendar-wheel slot for wakes
// within the wheel horizon (load misses, latency chains), and the overflow
// heap beyond that.
func (m *machine) pushReady(u *uop, wake int64) {
	d := wake - m.cycle
	if d <= 1 {
		// Exotic configurations can broadcast a same-cycle wake (d <= 0);
		// those must stay visible to the current issue drain, which re-reads
		// the wheel slot — readyNext is only read next cycle.
		if d == 1 {
			m.readyNext = append(m.readyNext, u)
			return
		}
		m.pushReadyHeap(u, wake)
		return
	}
	if d < wheelSize {
		s := int(wake) & (wheelSize - 1)
		if len(m.wheel[s]) == 0 {
			m.wheelBits[s>>6] |= 1 << uint(s&63)
		}
		m.wheel[s] = append(m.wheel[s], u)
		m.wheelCnt++
		return
	}
	m.pushReadyHeap(u, wake)
}

func (m *machine) pushReadyHeap(u *uop, wake int64) {
	q := append(m.readyQ, readyEnt{wake: wake, seq: u.seq, u: u})
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entBefore(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	m.readyQ = q
}

func (m *machine) popReady() *uop {
	q := m.readyQ
	u := q[0].u
	n := len(q) - 1
	q[0] = q[n]
	m.readyQ = q[:n]
	siftDownReady(m.readyQ, 0)
	return u
}

func siftDownReady(q []readyEnt, i int) {
	n := len(q)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && entBefore(q[l], q[smallest]) {
			smallest = l
		}
		if r < n && entBefore(q[r], q[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}

// purgeReadyQ drops squashed uops after a flush — they are about to be
// recycled, so stale entries must go — and restores heap order.
func (m *machine) purgeReadyQ() {
	q := m.readyQ[:0]
	for _, e := range m.readyQ {
		if !e.u.squashed {
			q = append(q, e)
		}
	}
	m.readyQ = q
	for i := len(q)/2 - 1; i >= 0; i-- {
		siftDownReady(q, i)
	}
	nx := m.readyNext[:0]
	for _, u := range m.readyNext {
		if !u.squashed {
			nx = append(nx, u)
		}
	}
	m.readyNext = nx
	if m.wheelCnt == 0 {
		return
	}
	for w, word := range m.wheelBits {
		for word != 0 {
			s := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			ws := m.wheel[s]
			kept := ws[:0]
			for _, u := range ws {
				if !u.squashed {
					kept = append(kept, u)
				}
			}
			m.wheelCnt -= len(ws) - len(kept)
			m.wheel[s] = kept
			if len(kept) == 0 {
				m.wheelBits[w] &^= 1 << uint(s&63)
			}
		}
	}
}

// nextWheelWake returns the earliest wake cycle pending in the calendar
// wheel. Caller guarantees wheelCnt > 0; remaining entries wake within
// (cycle, cycle+wheelSize), so a circular bitmap scan starting at the slot
// for cycle+1 finds the earliest in at most wheelSize/64+1 word reads.
func (m *machine) nextWheelWake() int64 {
	start := int(m.cycle+1) & (wheelSize - 1)
	w := start >> 6
	word := m.wheelBits[w] & (^uint64(0) << uint(start&63))
	for i := 0; i <= len(m.wheelBits); i++ {
		if word != 0 {
			s := w<<6 + bits.TrailingZeros64(word)
			return m.cycle + 1 + int64((s-start)&(wheelSize-1))
		}
		w = (w + 1) & (len(m.wheelBits) - 1)
		word = m.wheelBits[w]
	}
	return never // unreachable while wheelCnt > 0
}

// --- event scheduler: producer wakeup ---

// admitEvent registers a freshly renamed uop with the event scheduler:
// either it waits on unissued producers (which will wake it when they
// broadcast at issue), or it goes straight onto the ready queue.
func (m *machine) admitEvent(u *uop) {
	m.iqCount++
	cnt := int32(0)
	for i := 0; i < u.nSrc; i++ {
		if p := u.srcProd[i]; p != nil && p.issueCycle < 0 {
			p.wakeList = append(p.wakeList, u)
			cnt++
		}
	}
	if ws := u.waitStore; ws != nil && ws.issueCycle < 0 {
		ws.wakeList = append(ws.wakeList, u)
		cnt++
	}
	u.waitCnt = cnt
	if cnt == 0 {
		m.enqueueReady(u)
	}
}

// enqueueReady computes the first cycle at which the scan scheduler's
// ready() would admit u — every producer has issued by now, so all wakeup
// times are known — and pushes it onto the ready queue.
func (m *machine) enqueueReady(u *uop) {
	wake := u.renameCycle + 1 // first cycle issue() sees a renamed uop
	if u.earliestIss > wake {
		wake = u.earliestIss
	}
	for i := 0; i < u.nSrc; i++ {
		p := u.srcProd[i]
		if p == nil {
			continue
		}
		w := p.readyOut
		if p.specReady > 0 && p.specReady < w {
			w = p.specReady // speculative load-hit wakeup
		}
		if p.issueCycle > w {
			w = p.issueCycle // consumer scans after producer the same cycle
		}
		if w > wake {
			wake = w
		}
	}
	if ws := u.waitStore; ws != nil && !ws.committed && !ws.squashed {
		w := ws.resolve
		if ws.issueCycle > w {
			w = ws.issueCycle
		}
		if w > wake {
			wake = w
		}
	}
	m.pushReady(u, wake)
}

// broadcast wakes the consumers waiting on u, which has just issued (its
// readyOut/specReady/resolve are now known). Consumers whose last
// outstanding producer this was move onto the ready queue.
func (m *machine) broadcast(u *uop) {
	wl := u.wakeList
	if len(wl) == 0 {
		return
	}
	for _, c := range wl {
		c.waitCnt--
		if c.waitCnt == 0 && !c.squashed {
			m.enqueueReady(c)
		}
	}
	u.wakeList = wl[:0]
}

// unregisterWaiter removes a squashed, never-issued uop from its
// producers' wakeup lists so their broadcasts never touch a recycled uop.
// Uops already on the ready queue (waitCnt 0) are purged wholesale by
// purgeReadyQ instead.
func (m *machine) unregisterWaiter(u *uop) {
	if u.waitCnt == 0 {
		return
	}
	for i := 0; i < u.nSrc; i++ {
		if p := u.srcProd[i]; p != nil && p.issueCycle < 0 {
			removeWaiter(p, u)
		}
	}
	if ws := u.waitStore; ws != nil && ws.issueCycle < 0 {
		removeWaiter(ws, u)
	}
	u.waitCnt = 0
}

func removeWaiter(p, u *uop) {
	wl := p.wakeList
	kept := wl[:0]
	for _, w := range wl {
		if w != u {
			kept = append(kept, w)
		}
	}
	p.wakeList = kept
}

// --- event scheduler: issue ---

// issueEvent is the event-driven issue stage: pop every candidate whose
// wake cycle has arrived, attempt them in program order under the same
// bandwidth/port/register-read rules as the scan scheduler, and re-queue
// rejects at their next feasible cycle (next cycle for structural
// rejects, the true operand-ready cycle for register-read replays).
func (m *machine) issueEvent() {
	slot := int(m.cycle) & (wheelSize - 1)
	if len(m.readyNext) == 0 && len(m.wheel[slot]) == 0 &&
		(len(m.readyQ) == 0 || m.readyQ[0].wake > m.cycle) {
		return
	}
	bud := m.newIssueBudget()
	cand := append(m.issueScratch[:0], m.readyNext...)
	m.readyNext = m.readyNext[:0]
	// The outer loop re-drains the wheel and heap in case a broadcast
	// enqueued a consumer already eligible this cycle (impossible with a
	// non-zero issue-to-execute depth, but kept for exotic configurations;
	// such wakes never land on readyNext).
	for {
		// Every entry in the current wheel slot is due exactly now: pushes
		// place wakes at most wheelSize-1 cycles out, and the idle-skip
		// logic never jumps past a pending wake.
		if ws := m.wheel[slot]; len(ws) > 0 {
			cand = append(cand, ws...)
			m.wheelCnt -= len(ws)
			m.wheel[slot] = ws[:0]
			m.wheelBits[slot>>6] &^= 1 << uint(slot&63)
		}
		for len(m.readyQ) > 0 && m.readyQ[0].wake <= m.cycle {
			cand = append(cand, m.popReady())
		}
		if len(cand) == 0 {
			break
		}
		sortUopsBySeq(cand)
		for i, u := range cand {
			if u.squashed {
				continue
			}
			if bud.width == 0 {
				// Out of issue bandwidth: everything still eligible
				// retries next cycle, like the scan's early exit.
				m.readyNext = append(m.readyNext, cand[i:]...)
				break
			}
			if !bud.admits(u) {
				m.readyNext = append(m.readyNext, u)
				continue
			}
			bud.consume(u)
			// Register read: a speculatively-woken consumer of a missed
			// load wastes this attempt and replays at the true ready time.
			if latest := latestSrcReady(u); latest > m.cycle {
				m.stats.Replays++
				u.replays++
				u.earliestIss = latest
				m.pushReady(u, latest)
				continue
			}
			m.execute(u)
			m.iqCount--
			m.broadcast(u)
		}
		cand = cand[:0]
	}
	m.issueScratch = cand[:0]
}

// sortUopsBySeq is an insertion sort: candidate batches are small (bounded
// by the issue queue) and usually nearly sorted, arriving in (wake, seq)
// heap order.
func sortUopsBySeq(us []*uop) {
	for i := 1; i < len(us); i++ {
		u := us[i]
		j := i - 1
		for j >= 0 && us[j].seq > u.seq {
			us[j+1] = us[j]
			j--
		}
		us[j+1] = u
	}
}

// --- event scheduler: idle-cycle skipping ---

// renameStallCounter returns the stall counter rename would charge this
// cycle for head-of-queue uop u, or nil if u can rename now. The check
// order must match rename().
func (m *machine) renameStallCounter(u *uop) *int64 {
	if m.iqLen() >= m.cfg.IQEntries {
		return &m.stats.StallIQ
	}
	if m.window.len() >= m.cfg.ROBEntries {
		return &m.stats.StallROB
	}
	if u.writesReg && m.freeRegs == 0 {
		return &m.stats.StallRegs
	}
	if u.isLoad && m.lqUsed >= m.cfg.LQEntries {
		return &m.stats.StallLQ
	}
	if u.isStore && m.sqUsed >= m.cfg.SQEntries {
		return &m.stats.StallSQ
	}
	return nil
}

// nextEventCycle returns the next cycle at which any pipeline stage might
// make progress or any per-cycle side channel (Slack-Dynamic decay,
// interval sampling) must observe the machine. Cycles before it are
// provably inert except for rename stall counting, which advanceCycle
// accounts in bulk. Returns never if no event is pending (deadlock).
func (m *machine) nextEventCycle() int64 {
	c := m.cycle
	next := never
	if len(m.readyNext) > 0 {
		next = c + 1 // readyNext entries wake next cycle by construction
	}
	if len(m.readyQ) > 0 {
		next = min(next, max(c+1, m.readyQ[0].wake))
	}
	if m.wheelCnt > 0 && next > c+1 {
		next = min(next, m.nextWheelWake())
	}
	if m.window.len() > 0 {
		if h := m.window.at(0); h.issueCycle >= 0 {
			next = min(next, max(c+1, h.execDone))
		}
	}
	for i := range m.pendingViol {
		v := &m.pendingViol[i]
		if v.load.squashed || v.store.squashed {
			continue
		}
		next = min(next, max(c+1, v.atCycle))
	}
	if b := m.pendingBranch; b != nil && b.issueCycle >= 0 {
		next = min(next, max(c+1, b.resolve))
	}
	if m.fetchQ.len() > 0 {
		h := m.fetchQ.at(0)
		if m.renameStallCounter(h) == nil {
			// Head can rename once its rename latency elapses. (When it is
			// structurally blocked, only another event — a commit, issue or
			// flush — can unblock it, so no event is needed here.)
			next = min(next, max(c+1, h.renameReady))
		}
	}
	if m.pendingBranch == nil && m.fetchQ.len() < m.cfg.FetchWidth*8 &&
		(m.fetchPending.len() > 0 || m.fetchIdx < len(m.tr)) {
		next = min(next, max(c+1, m.fetchStall))
	}
	if m.mon != nil && m.mgc.Dynamic {
		next = min(next, max(c+1, m.mon.decayAt))
	}
	if m.watch != nil && m.watch.Intervals != nil {
		every := m.watch.Intervals.Every()
		next = min(next, (c/every+1)*every)
	}
	return next
}

// advanceCycle jumps the machine to the next interesting cycle, charging
// the rename stall counters for the skipped cycles exactly as the scan
// scheduler would have, one per cycle, against the head-of-queue block
// reason (which cannot change across inert cycles).
func (m *machine) advanceCycle(maxCycles int64) {
	if m.done() {
		m.cycle++
		return
	}
	next := m.nextEventCycle()
	if next == never {
		// No pending event and not done: the machine is wedged. Jump past
		// the cycle bound so the run surfaces the same deadlock error the
		// scan scheduler's cycle-by-cycle crawl would eventually hit.
		m.cycle = maxCycles + 1
		return
	}
	if next > m.cycle+1 && m.fetchQ.len() > 0 {
		h := m.fetchQ.at(0)
		from := max(m.cycle+1, h.renameReady)
		if from < next {
			if ctr := m.renameStallCounter(h); ctr != nil {
				*ctr += next - from
			}
		}
	}
	m.cycle = next
}
