package pipeline

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// With a flight recorder installed, every uop record the pipetrace sees is
// also recorded in the ring (same content), the run label identifies the
// program and configuration, and uninstalling stops recording.
func TestFlightRecorderMatchesTrace(t *testing.T) {
	p := mgFriendlyLoop(t, 200)
	sel := selectAll(t, p)
	tr := trace(t, p)
	mg := MGConfig{Selection: sel, Dynamic: true}

	f := obs.NewFlightRecorder(1 << 16) // large enough that nothing drops
	prev := obs.InstallFlightRecorder(f)
	defer obs.InstallFlightRecorder(prev)

	var buf bytes.Buffer
	watch := &obs.Observer{Trace: obs.NewPipetrace(&buf)}
	st, err := RunObserved(p, tr, Reduced(), mg, nil, watch)
	if err != nil {
		t.Fatal(err)
	}
	if err := watch.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	uops, _, err := obs.ReadPipetrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	recs := f.Snapshot("")
	total, dropped := f.Totals()
	if dropped != 0 {
		t.Fatalf("ring dropped %d records despite oversized capacity", dropped)
	}
	if int64(len(recs)) != total || len(recs) != len(uops) {
		t.Fatalf("flight has %d records (total %d), trace has %d", len(recs), total, len(uops))
	}
	wantRun := p.Name + "/" + Reduced().Name
	for i := range recs {
		if recs[i].Run != wantRun {
			t.Fatalf("record %d run label %q, want %q", i, recs[i].Run, wantRun)
		}
		got := recs[i].UopTrace
		got.Type = uops[i].Type // the JSONL reader stamps Type; the ring does not
		if len(got.Srcs) == 0 && len(uops[i].Srcs) == 0 {
			got.Srcs, uops[i].Srcs = nil, nil
		}
		if !equalUop(&got, &uops[i]) {
			t.Fatalf("record %d differs:\nflight %+v\ntrace  %+v", i, got, uops[i])
		}
	}
	if st.Uops == 0 {
		t.Fatal("run committed no uops")
	}

	// Uninstalled: the same run records nothing new.
	obs.InstallFlightRecorder(nil)
	if _, err := Run(p, tr, Reduced(), mg, nil); err != nil {
		t.Fatal(err)
	}
	if after, _ := f.Totals(); after != total {
		t.Errorf("uninstalled recorder still gained records: %d -> %d", total, after)
	}
	obs.InstallFlightRecorder(f) // reinstate for the deferred restore
}

func equalUop(a, b *obs.UopTrace) bool {
	return reflect.DeepEqual(*a, *b)
}

// A plain (unobserved) run still feeds the ring when a recorder is
// installed: the live endpoint must see sweeps that run without -pipetrace.
func TestFlightRecorderWithoutObserver(t *testing.T) {
	p := mgFriendlyLoop(t, 100)
	sel := selectAll(t, p)
	tr := trace(t, p)
	mg := MGConfig{Selection: sel, Dynamic: true}

	f := obs.NewFlightRecorder(1 << 14)
	prev := obs.InstallFlightRecorder(f)
	defer obs.InstallFlightRecorder(prev)

	st, err := Run(p, tr, Reduced(), mg, nil)
	if err != nil {
		t.Fatal(err)
	}
	total, _ := f.Totals()
	if total == 0 {
		t.Fatal("plain run recorded nothing with a recorder installed")
	}
	if total < st.Uops {
		t.Errorf("flight recorded %d records, run committed %d uops", total, st.Uops)
	}
}
