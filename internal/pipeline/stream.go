package pipeline

import (
	"context"
	"strconv"
	"sync"

	"repro/internal/emu"
	"repro/internal/metrics"
	"repro/internal/prog"
)

// Streaming sampled simulation: RunSampledProg produces the same estimates as
// emulate-then-RunSampledReport without ever materializing the whole dynamic
// trace. Uniform mode drives the emulator once with collection off, takes an
// architectural checkpoint at each window's warm-up start, and re-materializes
// only the window subtraces by resuming from those checkpoints. Representative
// mode streams the trace through the interval-feature accumulator in
// interval-sized chunks, then re-executes each selected window's prefix,
// feeding the warm-up records straight into the machine's predictive
// structures as they are produced and keeping only the detailed window slice.
// Peak memory is O(interval + window [+ checkpoints]) instead of O(trace).

// RunSampledProg is RunSampledReport driven straight off the emulator: same
// spec, same estimates (bit-identical for both modes), no full-trace buffer.
func RunSampledProg(p *prog.Program, cfg Config, mg MGConfig, spec SampleSpec) (*Stats, SampleReport, error) {
	if err := spec.validate(); err != nil {
		return nil, SampleReport{}, err
	}
	if spec.Mode == SampleRepresentative {
		return runStreamRep(p, cfg, mg, spec)
	}
	return runStreamUniform(p, cfg, mg, spec)
}

// runStreamFull is the short-trace fallback: the whole program, which just
// proved to be at most interval+warmup long, runs in detail.
func runStreamFull(p *prog.Program, cfg Config, mg MGConfig, spec SampleSpec) (*Stats, SampleReport, error) {
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		return nil, SampleReport{}, err
	}
	st, err := Run(p, res.Trace, cfg, mg, nil)
	return st, SampleReport{
		Mode:          spec.Mode,
		Full:          true,
		Windows:       1,
		DetailInstrs:  int64(len(res.Trace)),
		SimulatedFrac: 1,
	}, err
}

// --- uniform mode ---

// runStreamUniform replays the program once with collection off, snapshotting
// architectural state at every window's warm-up start, then resumes each
// checkpoint with collection on to rebuild exactly the subtrace runWindow
// would have sliced.
func runStreamUniform(p *prog.Program, cfg Config, mg MGConfig, spec SampleSpec) (*Stats, SampleReport, error) {
	s := emu.NewState(p, emu.Options{})
	var cks []*emu.Checkpoint // cks[k-1] sits at window k's warm-up start
	for k := 1; ; k++ {
		pos := int64(k*spec.Interval - spec.Warmup)
		if pos < 0 {
			pos = 0
		}
		if err := s.RunTo(pos); err != nil {
			return nil, SampleReport{}, err
		}
		if s.DynInstrs() < pos {
			break // halted before this window's warm-up start
		}
		cks = append(cks, s.Checkpoint())
		if s.Halted() {
			break
		}
	}
	if err := s.RunToEnd(); err != nil {
		return nil, SampleReport{}, err
	}
	n := int(s.DynInstrs())
	if n <= spec.Interval+spec.Warmup {
		return runStreamFull(p, cfg, mg, spec)
	}

	// Valid windows are the prefix of checkpoints whose window fits the run.
	jobs := cks
	for len(jobs) > 0 && len(jobs)*spec.Interval+spec.Window > n {
		jobs = jobs[:len(jobs)-1]
	}

	ctx, runSpan := metrics.StartSpan(context.Background(), "sampled.stream",
		metrics.L("prog", p.Name), metrics.L("windows", strconv.Itoa(len(jobs))))
	results := make([]windowResult, len(jobs))
	runJob := func(ctx context.Context, i int) windowResult {
		start := (i + 1) * spec.Interval
		_, sp := metrics.StartSpan(ctx, "sample.window",
			metrics.L("index", strconv.Itoa(i)), metrics.L("start", strconv.Itoa(start)))
		r := resumeWindow(p, cfg, mg, spec, jobs[i], start)
		sp.End()
		noteSampleWindow()
		return r
	}
	streamPool(ctx, spec.Workers, len(jobs), results, runJob)
	runSpan.End()

	return aggregateUniform(results, n, spec)
}

// resumeWindow re-materializes one uniform window's subtrace from its warm-up
// checkpoint and measures it exactly as runWindow does on a trace slice.
func resumeWindow(p *prog.Program, cfg Config, mg MGConfig, spec SampleSpec, ck *emu.Checkpoint, start int) windowResult {
	warmStart := start - spec.Warmup
	if warmStart < 0 {
		warmStart = 0
	}
	end := start + spec.Window
	s := emu.Resume(p, ck, emu.Options{CollectTrace: true})
	if err := s.RunTo(int64(end)); err != nil {
		return windowResult{err: err}
	}
	return measureWindow(p, s.TakeTrace(), cfg, mg, int64(start-warmStart))
}

// --- representative mode ---

// runStreamRep streams the emulated trace through the feature accumulator in
// interval-sized chunks, plans the representative windows, and re-executes
// each selected window's prefix feeding warm-up records straight into the
// machine — only the detailed window slice is ever held.
func runStreamRep(p *prog.Program, cfg Config, mg MGConfig, spec SampleSpec) (*Stats, SampleReport, error) {
	s := emu.NewState(p, emu.Options{CollectTrace: true})
	a := newFeatAccum(p, cfg, spec.Interval)
	chunk := int64(spec.Interval)
	for !s.Halted() {
		if err := s.RunTo(s.DynInstrs() + chunk); err != nil {
			return nil, SampleReport{}, err
		}
		for _, rec := range s.TakeTrace() {
			a.add(rec)
		}
	}
	n := int(s.DynInstrs())
	if n <= spec.Interval+spec.Warmup {
		return runStreamFull(p, cfg, mg, spec)
	}
	feats, lens := a.finish()
	plan := planRepWindows(feats, lens, n, spec)

	ctx, runSpan := metrics.StartSpan(context.Background(), "sampled.stream.rep",
		metrics.L("prog", p.Name), metrics.L("clusters", strconv.Itoa(len(plan.jobs))))
	results := make([]windowResult, len(plan.jobs))
	runJob := func(ctx context.Context, i int) windowResult {
		w := plan.jobs[i]
		_, sp := metrics.StartSpan(ctx, "sample.repwindow",
			metrics.L("index", strconv.Itoa(i)), metrics.L("start", strconv.Itoa(w.start)))
		r := replayRepWindow(p, cfg, mg, w, spec.Interval)
		sp.End()
		noteSampleWindow()
		return r
	}
	streamPool(ctx, spec.Workers, len(plan.jobs), results, runJob)
	runSpan.End()

	return plan.aggregate(results, n)
}

// replayRepWindow runs one representative window without a pre-recorded
// trace: a fresh emulation feeds the warm-up records [0, preStart) one chunk
// at a time into the machine's predictive structures (discarded once fed),
// then the detailed slice [preStart, end) is collected and simulated with the
// usual pre-roll snapshot. Equivalent to runWarmWindow on the full trace.
func replayRepWindow(p *prog.Program, cfg Config, mg MGConfig, w repWindow, chunk int) windowResult {
	m, maxCycles, err := setupMachine(p, cfg, mg, nil, nil, DefaultScheduler())
	if err != nil {
		return windowResult{err: err}
	}
	s := emu.NewState(p, emu.Options{CollectTrace: true})
	ws := newWarmReplay()
	for s.DynInstrs() < int64(w.preStart) {
		target := s.DynInstrs() + int64(chunk)
		if target > int64(w.preStart) {
			target = int64(w.preStart)
		}
		if err := s.RunTo(target); err != nil {
			return windowResult{err: err}
		}
		for _, rec := range s.TakeTrace() {
			m.warmRec(&ws, rec)
		}
		if s.Halted() {
			break
		}
	}
	if w.preStart > 0 {
		m.warmFinish()
	}
	if err := s.RunTo(int64(w.end)); err != nil {
		return windowResult{err: err}
	}
	m.tr = s.TakeTrace()
	var snap prerollSnap
	st, err := m.mainLoop(maxCycles, int64(w.start-w.preStart), &snap)
	if err != nil {
		return windowResult{err: err}
	}
	return repDeltas(st, &snap)
}

// streamPool runs jobs 0..n-1 through fn, serially or on workers goroutines,
// writing each result to its slot so aggregation order is deterministic.
func streamPool(ctx context.Context, workers, n int, results []windowResult, fn func(context.Context, int) windowResult) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i] = fn(ctx, i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx := metrics.WithTid(ctx, sampleTidBase+w)
			for i := range idx {
				results[i] = fn(wctx, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
