package pipeline

import (
	"math"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Functional warm-up for sampled windows (the gem5 cache-warmup idea): before
// a detailed window is measured, the preceding trace segment is replayed into
// the machine's long-lived predictive structures — caches, TLBs, direction
// predictor, BTB, RAS, and store sets — without advancing any timing state.
// The replay mirrors the access stream the detailed model would have
// generated (fetch one I-cache access per line transition, loads at their
// effective address, stores as write-allocating accesses, the exact
// predictor-update sequence of predictBranch), then clears every stat
// counter so the measured window starts with a hot machine and clean stats.

// warmStoreSetHorizon is the dynamic-instruction distance within which a
// load reading a just-stored word can plausibly have been in flight with the
// store (roughly the reorder-window reach).
const warmStoreSetHorizon = 64

// A same-word store→load pair inside the horizon pre-trains the store-sets
// predictor only once it has recurred at the SAME dynamic distance: a
// loop-carried memory dependence marches through the trace at a fixed offset
// and is exactly the systematic overlap that fires a real violation once and
// stays trained, while incidental collisions (one-off address reuse, varying
// offsets) never line up in time — training them would serialize loads the
// real machine happily speculates past.
type warmRecentStore struct {
	pos int // dynamic position of the store in the warm segment
	pc  uint32
}

// warmPairKey identifies a static store→load pair.
type warmPairKey struct{ loadPC, storePC uint32 }

// warmReplay carries the incremental state of one functional warm-up: the
// current I-cache line, the most recent store per word, and the per-pair
// distance history the store-set rule needs. Records arrive one at a time
// through warmRec, so the warm segment never has to exist as a slice — the
// streaming path feeds it straight off the emulator.
type warmReplay struct {
	curLine  uint32
	pos      int
	stores   map[uint32]warmRecentStore
	pairDist map[warmPairKey]int
}

func newWarmReplay() warmReplay {
	return warmReplay{curLine: math.MaxUint32}
}

// warmRec replays one record into m's predictive structures.
func (m *machine) warmRec(ws *warmReplay, rec emu.Rec) {
	i := ws.pos
	ws.pos++
	static := int(rec.Index)
	addr := m.layout.InlineAddr(static)
	if line := addr >> 5; line != ws.curLine {
		m.hier.WarmI(addr)
		ws.curLine = line
	}
	in := m.p.Code[static]
	switch {
	case in.IsLoad():
		m.hier.WarmD(rec.Addr, false)
		if st, ok := ws.stores[rec.Addr>>2]; ok && i-st.pos <= warmStoreSetHorizon {
			k := warmPairKey{loadPC: prog.PCOf(static), storePC: st.pc}
			d := i - st.pos
			if ws.pairDist == nil {
				ws.pairDist = make(map[warmPairKey]int)
			}
			switch prev, seen := ws.pairDist[k]; {
			case !seen:
				ws.pairDist[k] = d
			case prev == d:
				m.ss.Violation(k.loadPC, k.storePC)
			default:
				ws.pairDist[k] = -1 // irregular spacing: never train this pair
			}
		}
	case in.IsStore():
		m.hier.WarmD(rec.Addr, true)
		if ws.stores == nil {
			ws.stores = make(map[uint32]warmRecentStore)
		}
		ws.stores[rec.Addr>>2] = warmRecentStore{pos: i, pc: prog.PCOf(static)}
	case in.IsBranch():
		m.warmBranch(static, rec)
	}
}

// warmFinish clears the stat counters the replay dirtied, so the measured
// window starts hot but clean. Call once after the last warmRec.
func (m *machine) warmFinish() {
	m.hier.ClearStats()
	m.bp.ClearStats()
	m.ss.ClearStats()
}

// warmMachine replays warm into m's predictive structures and clears the
// stat counters. Must run after machine setup (the layout is consulted for
// instruction addresses) and before the first simulated cycle.
func (m *machine) warmMachine(warm []emu.Rec) {
	if len(warm) == 0 {
		return
	}
	ws := newWarmReplay()
	for _, rec := range warm {
		m.warmRec(&ws, rec)
	}
	m.warmFinish()
}

// warmBranch trains the front-end predictors for one control transfer,
// following predictBranch's update sequence exactly (prediction before
// update, BTB touched only on the paths the detailed model touches it).
func (m *machine) warmBranch(static int, rec emu.Rec) {
	in := m.p.Code[static]
	pc := prog.PCOf(static)
	taken := rec.Taken
	next := int(rec.Next)

	switch {
	case in.IsCondBranch():
		pred := m.bp.PredictDirection(pc)
		m.bp.UpdateDirection(pc, taken)
		if pred == taken && taken {
			m.warmTarget(pc, next)
		}
	case in.Op == isa.OpBr:
		m.warmTarget(pc, next)
	case in.Op == isa.OpJsr, in.Op == isa.OpJsrI:
		m.bp.PushRAS(prog.PCOf(static + 1))
		m.warmTarget(pc, next)
	case in.IsReturn():
		m.bp.PopRAS()
	default: // indirect jmp
		m.warmTarget(pc, next)
	}
}

// warmTarget performs the BTB lookup+update pair of predictTakenTarget.
func (m *machine) warmTarget(pc uint32, next int) {
	if next < 0 {
		return
	}
	m.bp.PredictTarget(pc)
	m.bp.UpdateTarget(pc, prog.PCOf(next))
}
