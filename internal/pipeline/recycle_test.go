package pipeline

import (
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/prog"
)

// runBothWays runs the same simulation with uop recycling enabled and
// disabled and requires bit-identical statistics. Recycling is purely an
// allocator optimization; any architectural divergence means a recycled
// uop was reused while still referenced.
func runBothWays(t *testing.T, label string, p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig) {
	t.Helper()
	withRecycle, err := Run(p, tr, cfg, mg, nil)
	if err != nil {
		t.Fatalf("%s (recycle on): %v", label, err)
	}
	noRecycle = true
	defer func() { noRecycle = false }()
	without, err := Run(p, tr, cfg, mg, nil)
	noRecycle = false
	if err != nil {
		t.Fatalf("%s (recycle off): %v", label, err)
	}
	if !reflect.DeepEqual(*withRecycle, *without) {
		t.Errorf("%s: stats diverge with recycling:\n on: %+v\noff: %+v", label, *withRecycle, *without)
	}
}

func selections(p *prog.Program, tr []emu.Rec) *minigraph.Selection {
	freq := make([]int64, p.NumInstrs())
	for _, r := range tr {
		freq[r.Index]++
	}
	sel := minigraph.Select(p, minigraph.Enumerate(p, minigraph.DefaultLimits()), freq, minigraph.DefaultSelectConfig())
	if len(sel.Instances) == 0 {
		return nil
	}
	return sel
}

func TestRecyclingIdenticalRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := genLoopProgram(seed)
		res, err := emu.Run(p, emu.Options{CollectTrace: true, MaxInstrs: 1 << 20})
		if err != nil {
			continue // degenerate program; not this test's concern
		}
		for _, cfg := range []Config{Baseline(), Reduced()} {
			runBothWays(t, "singleton", p, res.Trace, cfg, MGConfig{})
			if sel := selections(p, res.Trace); sel != nil {
				runBothWays(t, "minigraph", p, res.Trace, cfg, MGConfig{Selection: sel})
				runBothWays(t, "dynamic", p, res.Trace, cfg, MGConfig{Selection: sel, Dynamic: true})
			}
		}
	}
}

// TestRecyclingIdenticalStoreHeavy stresses the paths where committed uops
// stay referenced longest: store-to-load forwarding, StoreSets waits, and
// memory-ordering violations (pendingViol can outlive a store's commit).
func TestRecyclingIdenticalStoreHeavy(t *testing.T) {
	b := prog.NewBuilder("storeheavy")
	slot := b.Space(64)
	b.Li(1, slot)
	b.Li(2, 400)
	b.Label("loop")
	b.Stw(2, 1, 0)
	b.Ldw(3, 1, 0)
	b.Stw(3, 1, 4)
	b.Ldw(4, 1, 4)
	b.Add(0, 3, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Halt()
	p := b.MustBuild()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	runBothWays(t, "store-heavy baseline", p, res.Trace, Baseline(), MGConfig{})
	runBothWays(t, "store-heavy reduced", p, res.Trace, Reduced(), MGConfig{})

	// Tiny queues force structural stalls, flushes near-full windows.
	tiny := Baseline()
	tiny.Name = "tiny"
	tiny.IQEntries = 2
	tiny.PhysRegs = 36
	tiny.LQEntries = 2
	tiny.SQEntries = 2
	tiny.ROBEntries = 8
	runBothWays(t, "store-heavy tiny", p, res.Trace, tiny, MGConfig{})
}
