package pipeline

import (
	"math"
	"testing"

	"repro/internal/emu"
	"repro/internal/workload"
)

// The sampling-accuracy gate (run by `make ci` via the sampling-accuracy
// target): on a pinned set of small-input workloads, representative-mode
// estimates must stay within 1% geomean IPC error of the full detailed run
// while simulating at least 5x fewer instructions in detail.

// gateWorkloads pins the measured set: the longer small-input traces, spread
// across suites and behavior (branchy bitcount, search, generated kernels).
var gateWorkloads = []string{
	"embed.bitcount",
	"intx.gen10",
	"intx.gen05",
	"intx.bsearch",
	"media.gen02",
	"comm.gen05",
}

// gateSpec is the representative sampling configuration the gate measures:
// window == interval so each representative fully covers the interval it
// stands for (warm-up is implicit — representative mode functionally warms
// every window with the whole preceding trace), Clusters 0 so the window
// budget auto-scales to the 5x operating point.
var gateSpec = SampleSpec{
	Interval: 1000,
	Window:   1000,
	Mode:     SampleRepresentative,
}

func TestSamplingAccuracyGate(t *testing.T) {
	cfg := Baseline()
	var sumAbsLog float64
	for _, name := range gateWorkloads {
		w := workload.Find(name)
		p, _, _, err := w.Build("small")
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		res, err := emu.Run(p, emu.Options{CollectTrace: true})
		if err != nil {
			t.Fatalf("emulate %s: %v", name, err)
		}
		tr := res.Trace

		full, err := Run(p, tr, cfg, MGConfig{}, nil)
		if err != nil {
			t.Fatalf("full run %s: %v", name, err)
		}
		est, report, err := RunSampledReport(p, tr, cfg, MGConfig{}, gateSpec)
		if err != nil {
			t.Fatalf("sampled run %s: %v", name, err)
		}
		if report.Full {
			t.Fatalf("%s: trace too short for the gate spec (fell back to full run)", name)
		}

		ratio := est.IPC() / full.IPC()
		errPct := 100 * math.Abs(ratio-1)
		reduction := float64(len(tr)) / float64(report.DetailInstrs)
		t.Logf("%-16s full IPC %.4f  rep IPC %.4f  err %.2f%%  detail %d/%d (%.1fx)  windows %d  errbound %.3f",
			name, full.IPC(), est.IPC(), errPct, report.DetailInstrs, len(tr), reduction, report.Windows, report.ErrBound)
		if reduction < 5 {
			t.Errorf("%s: only %.1fx fewer detailed instructions (want >=5x)", name, reduction)
		}
		sumAbsLog += math.Abs(math.Log(ratio))
	}
	geomeanErr := math.Exp(sumAbsLog/float64(len(gateWorkloads))) - 1
	t.Logf("geomean IPC error: %.3f%%", 100*geomeanErr)
	if geomeanErr >= 0.01 {
		t.Errorf("geomean IPC error %.2f%% (want < 1%%)", 100*geomeanErr)
	}
}
