package pipeline

import (
	"bytes"
	"testing"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestMachineReuseDeterministic is the pooling oracle: repeated runs of
// the same scenario — where every run after the first draws a reused
// machine from the pool — must produce identical stats and byte-identical
// pipetraces. A divergence means reset missed a field or a stale slot
// value leaked through makeUop's trimmed re-initialization.
func TestMachineReuseDeterministic(t *testing.T) {
	w := workload.Find("media.dct8")
	if w == nil {
		t.Fatal("workload media.dct8 not found")
	}
	p, _, _, err := w.Build("small")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	freq := make([]int64, p.NumInstrs())
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	sel := minigraph.Select(p, minigraph.Enumerate(p, minigraph.DefaultLimits()),
		freq, minigraph.DefaultSelectConfig())

	for _, k := range []SchedKind{SchedEvent, SchedScan} {
		t.Run(k.String(), func(t *testing.T) {
			var first *Stats
			var firstTrace []byte
			// Sequential same-goroutine runs make sync.Pool reuse all but
			// certain; three repeats cover fresh → pooled → pooled-again.
			for i := 0; i < 3; i++ {
				var buf bytes.Buffer
				watch := &obs.Observer{Trace: obs.NewPipetrace(&buf)}
				st, err := RunSched(p, res.Trace, Reduced(), MGConfig{Selection: sel}, nil, watch, k)
				if err != nil {
					t.Fatal(err)
				}
				if err := watch.Trace.Flush(); err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					first, firstTrace = st, buf.Bytes()
					continue
				}
				if *st != *first {
					t.Errorf("run %d stats diverge from run 0:\n run0 %+v\n run%d %+v", i, first, i, st)
				}
				if !bytes.Equal(buf.Bytes(), firstTrace) {
					t.Errorf("run %d pipetrace diverges from run 0: first diff at byte %d",
						i, firstDiff(buf.Bytes(), firstTrace))
				}
			}
		})
	}
}

// A pooled machine must also replay identically across configurations that
// alternate (pool lookup is keyed by Config, so interleaving two configs
// exercises both pools and the per-config reset paths).
func TestMachineReuseAcrossConfigs(t *testing.T) {
	w := workload.Find("comm.crc32")
	if w == nil {
		t.Fatal("workload comm.crc32 not found")
	}
	p, _, _, err := w.Build("small")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	configs := []Config{Baseline(), Reduced()}
	var first [2]Stats
	for round := 0; round < 3; round++ {
		for ci, cfg := range configs {
			st, err := Run(p, res.Trace, cfg, MGConfig{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if round == 0 {
				first[ci] = *st
			} else if *st != first[ci] {
				t.Errorf("config %s round %d diverges:\n round0 %+v\n now    %+v",
					cfg.Name, round, first[ci], st)
			}
		}
	}
}
