package pipeline

import (
	"fmt"
	"math"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minigraph"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/slack"
	"repro/internal/storesets"
)

type uopKind uint8

const (
	kindSingleton    uopKind = iota
	kindHandle               // mini-graph handle
	kindOverheadJump         // outlining jump of a disabled mini-graph
)

const never = int64(math.MaxInt64)

// uop is one in-flight micro-op: a singleton instruction, a mini-graph
// handle (one uop standing for up to four instructions), or an outlining
// overhead jump.
type uop struct {
	seq      int64
	traceIdx int // first trace record index (overhead jumps borrow their MG's)
	nRecs    int // trace records this uop accounts for (0 for overhead jumps)
	static   int // static index of the (first) instruction
	kind     uopKind
	mg       *minigraph.Instance

	op    isa.Op
	class isa.Class

	fetchCycle  int64
	renameReady int64
	renameCycle int64 // actual rename cycle (-1 until renamed; pipetrace)
	issueCycle  int64 // -1 until issued
	execDone    int64 // all results produced; commit-eligible after this
	readyOut    int64 // register output available on the bypass network
	specReady   int64 // loads: L1-hit-speculative ready time broadcast to consumers
	resolve     int64 // branch redirect / store address+data resolution cycle
	earliestIss int64 // replay back-off: no re-issue attempt before this cycle

	nSrc      int
	srcProd   [3]*uop
	srcReg    [3]isa.Reg
	srcReadyC [3]int64

	writesReg  bool
	dstReg     isa.Reg
	prevWriter *uop

	isLoad, isStore bool
	memAddr         uint32
	memCycle        int64 // cycle the load's memory access begins
	forwardedFrom   *uop
	// waitStore is the StoreSets-imposed ordering: a load waits for this
	// store to resolve; a store waits for the previous store of its set.
	waitStore *uop

	hasBranch bool // this uop resolves a control transfer
	mispred   bool
	actualTkn bool
	replays   uint16 // wasted issue attempts (pipetrace)

	committed bool
	squashed  bool

	// Recycling state (see reclaim): refBarrier is the machine seq at this
	// uop's commit — once every older uop has left the window, no in-flight
	// uop can still hold a pointer to this one. writerDead marks a committed
	// register writer whose successor writer has also committed (it can no
	// longer be re-captured through lastWriter, even across a flush).
	// parked marks a writer that cleared its barrier while still live in
	// the rename table.
	refBarrier int64
	writerDead bool
	parked     bool

	// Slack-Dynamic per-instance detection state.
	serialized bool

	// Event-scheduler state (SchedEvent only): consumers registered for
	// wakeup when this uop issues, and the count of unissued producers
	// gating this uop's entry into the ready queue.
	wakeList []*uop
	waitCnt  int32

	// Pipetrace-only dependence/serialization observables (populated only
	// when an observer with an active trace is attached; stay zero and cost
	// nothing otherwise).
	serLat int64 // completion delay vs. the dataflow-feasible internal schedule
	serOut int64 // register-output delay vs. that schedule
	memLat int64 // load cycles beyond the L1-hit path
	serExt bool  // issued data-bound on a serializing external input

	// Profiling.
	bbHead      *uop
	minConsIss  int64
	fwdConsExec int64
	consumers   []*uop // register-value consumers (profiling runs only)
	gslack      int64  // computed global slack (drain-time reverse pass)
}

// fetchItem is a prepared fetch unit awaiting its fetch cycle.
type fetchItem struct {
	kind      uopKind
	static    int
	traceIdx  int
	nRecs     int
	addr      uint32
	mg        *minigraph.Instance
	endsGroup bool // taken control transfer: ends the fetch group
}

type violation struct {
	atCycle int64
	load    *uop
	store   *uop
}

type machine struct {
	cfg Config
	mgc MGConfig
	p   *prog.Program
	tr  []emu.Rec

	hier *cache.Hierarchy
	bp   *bpred.Predictor
	ss   *storesets.Predictor
	mon  *mgMonitor

	stats Stats
	prof  *slack.Accumulator
	watch *obs.Observer // nil when observability is off (the common case)

	cycle int64
	seq   int64

	fetchIdx       int
	fetchStall     int64 // no fetch before this cycle
	pendingBranch  *uop  // unresolved mispredicted control transfer
	fetchPending   ring[fetchItem]
	fetchQ         ring[*uop]
	window         ring[*uop] // ROB, oldest first
	iq             []*uop     // issue queue, oldest first
	inflightStores []*uop
	inflightLoads  []*uop
	pendingViol    []violation
	freeRegs       int
	lqUsed, sqUsed int
	lastWriter     [isa.NumRegs]*uop
	curBBHead      *uop
	profFIFO       []*uop
	layout         *minigraph.Layout

	// Uop recycling: committed uops queue in retired until provably
	// unreferenced, then return to freeUops for reuse by makeUop. Disabled
	// while profiling (the slack accumulator keeps every uop until drain).
	recycle       bool
	freeUops      []*uop
	retired       ring[*uop]
	squashScratch []*uop

	// Event-scheduler state (see sched.go): the ready-queue heap of issue
	// candidates keyed by earliest-issue cycle, the flat list of candidates
	// waking exactly next cycle (the dominant case, kept off the heap), the
	// per-cycle candidate scratch, and the issue-queue occupancy (the scan
	// scheduler reads len(iq) instead).
	sched        SchedKind
	readyQ       []readyEnt
	readyNext    []*uop
	issueScratch []*uop
	iqCount      int

	// Calendar wheel for wakes within wheelSize cycles: slot s holds uops
	// waking at cycles ≡ s (mod wheelSize), with an occupancy bitmap so the
	// idle-skip logic finds the earliest pending wake in a few word scans.
	wheel     [wheelSize][]*uop
	wheelBits [wheelSize / 64]uint64
	wheelCnt  int
}

// iqLen returns the issue-queue occupancy under either scheduler.
func (m *machine) iqLen() int {
	if m.sched == SchedScan {
		return len(m.iq)
	}
	return m.iqCount
}

// noRecycle disables uop recycling even in non-profiling runs; tests flip
// it to verify recycling changes no architectural outcome.
var noRecycle bool

// Run replays the committed trace of program p on the configured machine
// and returns timing statistics. mg configures mini-graph processing (zero
// MGConfig = singleton execution). When prof is non-nil the run records a
// slack profile into it (profiling runs should be singleton runs, matching
// the paper's use of non-mini-graph profiles).
func Run(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, prof *slack.Accumulator) (*Stats, error) {
	return RunSched(p, tr, cfg, mg, prof, nil, DefaultScheduler())
}

// RunObserved is Run with an attached observer collecting pipetrace
// records and/or interval samples (see internal/obs). A nil or inactive
// observer makes it exactly Run: the hot loop pays one nil check per
// cycle and per committed uop.
func RunObserved(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, prof *slack.Accumulator, watch *obs.Observer) (*Stats, error) {
	return RunSched(p, tr, cfg, mg, prof, watch, DefaultScheduler())
}

// RunSched is RunObserved with an explicit scheduler choice, bypassing the
// process-wide default. The differential tests use it to run both
// schedulers side by side; results are byte-identical either way.
func RunSched(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, prof *slack.Accumulator, watch *obs.Observer, sched SchedKind) (*Stats, error) {
	if len(tr) == 0 {
		return nil, fmt.Errorf("pipeline: empty trace")
	}
	if watch != nil && !watch.Active() {
		watch = nil
	}
	m := &machine{
		cfg:      cfg,
		mgc:      mg,
		p:        p,
		tr:       tr,
		watch:    watch,
		sched:    sched,
		hier:     cache.NewHierarchy(cfg.Hier),
		bp:       bpred.New(cfg.Bpred),
		ss:       storesets.New(cfg.StoreSetEntries),
		prof:     prof,
		freeRegs: cfg.PhysRegs - isa.NumRegs,

		// Size every queue from the config up front: the structural-hazard
		// checks in rename and fetch bound their occupancy, so the hot loop
		// never grows them.
		fetchPending:   newRing[fetchItem](8),
		fetchQ:         newRing[*uop](cfg.FetchWidth * 9),
		window:         newRing[*uop](cfg.ROBEntries),
		inflightLoads:  make([]*uop, 0, cfg.LQEntries),
		inflightStores: make([]*uop, 0, cfg.SQEntries),
		pendingViol:    make([]violation, 0, 16),
		recycle:        prof == nil && !noRecycle,
		retired:        newRing[*uop](cfg.ROBEntries),
	}
	if sched == SchedScan {
		m.iq = make([]*uop, 0, cfg.IQEntries)
	} else {
		m.readyQ = make([]readyEnt, 0, cfg.IQEntries)
		m.readyNext = make([]*uop, 0, cfg.IQEntries)
		m.issueScratch = make([]*uop, 0, cfg.IQEntries)
		// Carve every wheel slot's initial capacity out of one arena; slots
		// that overflow it (rare pile-ups) grow individually via append.
		const slotCap = 4
		arena := make([]*uop, wheelSize*slotCap)
		for i := range m.wheel {
			m.wheel[i] = arena[i*slotCap : i*slotCap : (i+1)*slotCap]
		}
	}
	if mg.Enabled() {
		m.layout = mg.Layout
		if m.layout == nil {
			m.layout = minigraph.NewLayout(p, mg.Selection)
		}
		m.mon = newMGMonitor(&mg, mg.Selection.NumTemplates, &m.stats)
		if watch != nil {
			m.mon.trace = watch.Trace
		}
	} else {
		m.layout = minigraph.IdentityLayout(p)
	}
	if m.freeRegs <= 0 {
		return nil, fmt.Errorf("pipeline: config %q has no rename registers", cfg.Name)
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}

	event := m.sched != SchedScan
	for {
		if m.done() {
			break
		}
		if m.cycle > maxCycles {
			return nil, fmt.Errorf("pipeline: %s on %s exceeded %d cycles (deadlock?)", p.Name, cfg.Name, maxCycles)
		}
		m.checkViolations()
		m.commit()
		m.resolvePendingBranch()
		if event {
			m.issueEvent()
		} else {
			m.issue()
		}
		m.rename()
		m.fetch()
		if m.mon != nil && m.mgc.Dynamic {
			m.mon.tick(m.cycle)
		}
		if m.watch != nil {
			m.sampleInterval()
		}
		if event {
			m.advanceCycle(maxCycles)
		} else {
			m.cycle++
		}
	}

	if m.watch != nil && m.watch.Intervals != nil {
		m.watch.Intervals.Final(m.snapshot())
	}
	m.drainProfile()
	m.stats.Cycles = m.cycle
	m.stats.BranchMispredicts = m.bp.DirMisses + m.stats.RASMispredicts
	m.stats.BTBMisses = m.bp.BTBMisses
	m.stats.L1IMissRate = m.hier.L1I.MissRate()
	m.stats.L1DMissRate = m.hier.L1D.MissRate()
	m.stats.L2MissRate = m.hier.L2.MissRate()
	m.stats.MemAccesses = m.hier.MemAccesses
	m.stats.ITLBMisses = m.hier.ITLB.Misses()
	m.stats.DTLBMisses = m.hier.DTLB.Misses()
	noteRun(&m.stats)
	return &m.stats, nil
}

func (m *machine) done() bool {
	return m.fetchIdx >= len(m.tr) && m.fetchPending.len() == 0 &&
		m.fetchQ.len() == 0 && m.window.len() == 0
}

// --- commit ---

func (m *machine) commit() {
	for n := 0; n < m.cfg.CommitWidth && m.window.len() > 0; n++ {
		u := m.window.at(0)
		if u.issueCycle < 0 || u.execDone > m.cycle {
			break
		}
		u.committed = true
		m.window.popFront()
		m.stats.Uops++
		switch u.kind {
		case kindSingleton:
			m.stats.Instrs++
		case kindHandle:
			m.stats.Instrs += int64(u.nRecs)
			m.stats.EmbeddedInstrs += int64(u.nRecs)
			m.stats.Handles++
		case kindOverheadJump:
			m.stats.OverheadJumps++
		}
		if u.writesReg {
			m.freeRegs++ // the previous mapping of dstReg dies
			if pw := u.prevWriter; pw != nil {
				// pw is the previous committed writer of dstReg. With this
				// commit it can never be restored into lastWriter by a flush
				// (that would require squashing u), and rename order
				// guarantees every consumer that captured pw has already
				// committed — pw is now recyclable.
				pw.writerDead = true
				if pw.parked {
					pw.parked = false
					m.freeUops = append(m.freeUops, pw)
				}
				u.prevWriter = nil
			}
		}
		if u.isLoad {
			m.lqUsed--
			m.removeInflight(&m.inflightLoads, u)
		}
		if u.isStore {
			m.sqUsed--
			m.removeInflight(&m.inflightStores, u)
			m.ss.CompleteStore(m.storePC(u), u.seq)
			// The store's write updates cache state at commit.
			m.hier.AccessD(m.cycle, u.memAddr, true)
		}
		if m.watch != nil && m.watch.Trace != nil {
			m.traceUop(u, m.cycle, false)
		}
		if m.prof != nil {
			// Retained until drain: the global-slack reverse pass needs the
			// whole committed stream, and late consumers keep updating
			// local slack until then.
			m.profFIFO = append(m.profFIFO, u)
		} else if m.recycle {
			u.refBarrier = m.seq
			m.retired.pushBack(u)
		}
	}
	if m.recycle {
		m.reclaim()
	}
}

// reclaim returns committed uops to the free list once nothing can still
// reference them. References to a uop live in younger in-flight uops
// (srcProd, waitStore, forwardedFrom — all captured before its commit, so
// holders have seq < refBarrier), in the rename table (lastWriter /
// prevWriter chains — dead once a younger same-register writer commits,
// tracked by writerDead), in the pending-violation list, and in
// pendingBranch. Commit is in-order, so the retired queue clears its
// barriers in FIFO order; only live register writers park out of order.
func (m *machine) reclaim() {
	for m.retired.len() > 0 {
		h := m.retired.at(0)
		if m.window.len() > 0 && m.window.at(0).seq < h.refBarrier {
			break // an older uop is still in flight and may reference h
		}
		if h == m.pendingBranch || m.referencedByViolation(h) {
			break // transient: clears within a cycle or two
		}
		m.retired.popFront()
		if h.writesReg && !h.writerDead {
			h.parked = true // freed later, when its successor writer commits
			continue
		}
		m.freeUops = append(m.freeUops, h)
	}
}

func (m *machine) referencedByViolation(h *uop) bool {
	for i := range m.pendingViol {
		if m.pendingViol[i].load == h || m.pendingViol[i].store == h {
			return true
		}
	}
	return false
}

func (m *machine) removeInflight(list *[]*uop, u *uop) {
	s := *list
	for i, v := range s {
		if v == u {
			*list = append(s[:i], s[i+1:]...)
			return
		}
	}
}

// storePC returns the PC used for StoreSets indexing of u's store.
func (m *machine) storePC(u *uop) uint32 {
	if u.kind == kindHandle {
		return prog.PCOf(u.static + u.mg.Cand.MemIdx)
	}
	return prog.PCOf(u.static)
}

func (m *machine) loadPC(u *uop) uint32 { return m.storePC(u) }

// --- branch resolution / fetch unblocking ---

func (m *machine) resolvePendingBranch() {
	b := m.pendingBranch
	if b == nil {
		return
	}
	if b.squashed {
		m.pendingBranch = nil
		return
	}
	if b.issueCycle >= 0 && m.cycle >= b.resolve {
		m.pendingBranch = nil
		if m.fetchStall < b.resolve+1 {
			m.fetchStall = b.resolve + 1
		}
	}
}

// --- issue ---

func (m *machine) issue() {
	bud := m.newIssueBudget()
	kept := m.iq[:0]
	for qi := 0; qi < len(m.iq); qi++ {
		u := m.iq[qi]
		if bud.width == 0 {
			kept = append(kept, m.iq[qi:]...)
			break
		}
		if !m.ready(u) {
			kept = append(kept, u)
			continue
		}
		if !bud.admits(u) {
			kept = append(kept, u)
			continue
		}
		bud.consume(u)
		// Register read: if a speculatively-woken source turns out to be a
		// missed load, this issue attempt is wasted and the uop replays
		// when the value truly arrives.
		if latest := latestSrcReady(u); latest > m.cycle {
			m.stats.Replays++
			u.replays++
			u.earliestIss = latest
			kept = append(kept, u)
			continue
		}
		m.execute(u)
	}
	m.iq = kept
}

// ready reports whether u may attempt to issue this cycle. Consumers of
// loads wake on the L1-hit-speculative ready time; if the load actually
// missed, the attempt is caught at register read and replayed — consuming
// issue bandwidth, per Table 1's "cache miss replays are modeled".
func (m *machine) ready(u *uop) bool {
	if m.cycle < u.earliestIss {
		return false
	}
	for i := 0; i < u.nSrc; i++ {
		p := u.srcProd[i]
		if p == nil {
			continue
		}
		if p.issueCycle < 0 {
			return false
		}
		wake := p.readyOut
		if p.specReady > 0 && p.specReady < wake {
			wake = p.specReady // speculative load-hit wakeup
		}
		if wake > m.cycle {
			return false
		}
	}
	if w := u.waitStore; w != nil && !w.squashed && !w.committed {
		if w.issueCycle < 0 || w.resolve > m.cycle {
			return false
		}
	}
	return true
}

// latestSrcReady returns the cycle at which every source value truly
// exists (the register-read check that triggers replays).
func latestSrcReady(u *uop) int64 {
	var latest int64
	for i := 0; i < u.nSrc; i++ {
		if p := u.srcProd[i]; p != nil && p.readyOut > latest {
			latest = p.readyOut
		}
	}
	return latest
}

// srcReadyMax returns the latest source-value ready cycle (for
// Slack-Dynamic detection) and records per-source ready cycles.
func (m *machine) recordSrcReady(u *uop) (lastReady int64, lastIdx int) {
	lastReady, lastIdx = 0, -1
	for i := 0; i < u.nSrc; i++ {
		var r int64
		if p := u.srcProd[i]; p != nil {
			r = p.readyOut
		}
		u.srcReadyC[i] = r
		if r >= lastReady {
			lastReady, lastIdx = r, i
		}
	}
	return lastReady, lastIdx
}

// execute computes all post-issue timing for u at the current cycle.
func (m *machine) execute(u *uop) {
	u.issueCycle = m.cycle
	lastReady, lastIdx := m.recordSrcReady(u)

	// Consumers update producer local slack (profiling) and feed the
	// Slack-Dynamic consumer-delay detector (rule #4's hardware analogue).
	for i := 0; i < u.nSrc; i++ {
		p := u.srcProd[i]
		if p == nil {
			continue
		}
		if m.prof != nil {
			if m.cycle < p.minConsIss {
				p.minConsIss = m.cycle
			}
			if len(p.consumers) < maxTrackedConsumers {
				p.consumers = append(p.consumers, u)
			}
		}
		if p.kind == kindHandle {
			m.noteConsumerOfHandle(m.cycle, p)
		}
	}

	exec := m.cycle + int64(m.cfg.IssueToExec)
	switch u.kind {
	case kindHandle:
		m.executeHandle(u, exec, lastReady, lastIdx)
	case kindOverheadJump:
		u.resolve = exec + 1
		u.execDone = u.resolve
		u.readyOut = u.resolve
	default:
		m.executeSingleton(u, exec)
	}
}

func (m *machine) executeSingleton(u *uop, exec int64) {
	in := m.p.Code[u.static]
	switch {
	case u.isLoad:
		u.memCycle = exec + 1 // address generation
		u.readyOut = m.loadAccess(u, u.memCycle)
		u.execDone = u.readyOut
		// Consumers wake assuming an L1 hit; a miss triggers replays.
		u.specReady = u.memCycle + int64(m.hier.L1DHitLatency())
		if u.specReady > u.readyOut {
			u.specReady = u.readyOut
		}
		m.loadIssueChecks(u)
	case u.isStore:
		u.resolve = exec // address and data resolved
		u.execDone = u.resolve
		m.storeIssueChecks(u)
	case u.hasBranch:
		u.resolve = exec + 1
		u.execDone = u.resolve
		u.readyOut = u.resolve // calls write the return address
	default:
		lat := int64(isa.Latency(in.Op))
		u.readyOut = exec + lat
		u.execDone = u.readyOut
	}
}

// executeHandle models MGT-driven execution on an ALU pipeline: constituent
// k issues one cycle after constituent k-1 finishes (forward-only interior
// network, micro-code style), which realizes internal serialization.
func (m *machine) executeHandle(u *uop, exec int64, lastReady int64, lastIdx int) {
	c := u.mg.Cand
	t := u.issueCycle // constituent-k issue time (rule #2 of the paper)
	var maxDone int64
	var lats [4]int64 // per-constituent latencies (pipetrace attribution)
	for k := 0; k < u.mg.N; k++ {
		in := m.p.Code[u.static+k]
		ek := t + int64(m.cfg.IssueToExec)
		var rk int64
		var lat int64
		switch {
		case in.IsLoad():
			u.memCycle = ek + 1
			rk = m.loadAccess(u, u.memCycle)
			lat = rk - ek
			if m.watch != nil && m.watch.Trace != nil {
				u.memLat = rk - (u.memCycle + int64(m.hier.L1DHitLatency()))
				if u.memLat < 0 {
					u.memLat = 0
				}
			}
		case in.IsStore():
			u.resolve = ek
			rk = ek
			lat = 1
		case in.IsBranch():
			rk = ek + 1
			u.resolve = rk
			lat = 1
		default:
			lat = int64(isa.Latency(in.Op))
			rk = ek + lat
		}
		if k == c.OutputIdx {
			u.readyOut = rk
		}
		if rk > maxDone {
			maxDone = rk
		}
		lats[k] = lat
		t += lat
	}
	u.execDone = maxDone
	if u.isLoad {
		m.loadIssueChecks(u)
	}
	if u.isStore {
		m.storeIssueChecks(u)
	}

	// Pipetrace attribution: measure the handle's serialization delay
	// against the dataflow-feasible internal schedule — constituent k could
	// have started once its internal producers finished, so any completion
	// beyond that is the serial ALU pipeline's doing. A pure dependence
	// chain measures 0; independent constituents measure the induced delay.
	if m.watch != nil && m.watch.Trace != nil {
		var f [4]int64
		var maxF int64
		for k := 0; k < u.mg.N; k++ {
			var start int64
			deps := c.InternalDeps(k)
			for j := 0; j < k; j++ {
				if deps&(1<<uint(j)) != 0 && f[j] > start {
					start = f[j]
				}
			}
			f[k] = start + lats[k]
			if f[k] > maxF {
				maxF = f[k]
			}
		}
		u.serLat = u.execDone - (exec + maxF)
		if u.serLat < 0 {
			u.serLat = 0
		}
		if c.OutputIdx >= 0 {
			u.serOut = u.readyOut - (exec + f[c.OutputIdx])
			if u.serOut < 0 {
				u.serOut = 0
			}
		}
		u.serExt = lastIdx >= 0 && c.FirstUse[lastIdx] > 0 && u.issueCycle == lastReady
	}

	// Slack-Dynamic serialization detection. An instance suffered
	// serialization delay if either
	//   - external: its last-arriving operand is a serializing operand and
	//     (unless using the SIAL heuristic) the mini-graph issued as soon
	//     as that operand arrived (it was data-bound on it), or
	// Internal serialization is not detected (matching the paper's
	// hardware, which tracks operand arrivals only); in this workload
	// regime an internal-delay detector disables templates whose
	// amplification value exceeds their serialization cost.
	if m.mon != nil && m.mgc.Dynamic && lastIdx >= 0 {
		serInput := c.FirstUse[lastIdx] > 0
		dataBound := u.issueCycle == lastReady
		if serInput && (m.mgc.DynamicSIAL || dataBound) {
			u.serialized = true
			m.stats.MGSerializedEvents++
			if m.mgc.DynamicDelayOnly || m.mgc.DynamicSIAL {
				m.mon.harmful(m.cycle, u.mg.Template)
			}
		} else {
			m.mon.clean(u.mg.Template)
		}
	}
}

// consumerDelayed is called when a consumer of a serialized mini-graph's
// output issues exactly when that output arrived: the serialization delay
// propagated (full Slack-Dynamic model).
func (m *machine) noteConsumerOfHandle(consumerIssue int64, producer *uop) {
	if m.mon == nil || !m.mgc.Dynamic || !producer.serialized {
		return
	}
	if m.mgc.DynamicDelayOnly || m.mgc.DynamicSIAL {
		return // already counted at the producer
	}
	if consumerIssue == producer.readyOut {
		m.mon.harmful(consumerIssue, producer.mg.Template)
	} else {
		// The consumer issued later for its own reasons: the serialization
		// delay was absorbed. Count the instance as clean so templates
		// whose delay is usually absorbed stay enabled.
		m.mon.clean(producer.mg.Template)
	}
}

// loadAccess models the load's cache access (with store forwarding) and
// returns the value-ready cycle.
func (m *machine) loadAccess(u *uop, memCycle int64) int64 {
	// Find the youngest older resolved store to the same word.
	word := u.memAddr >> 2
	var match *uop
	for i := len(m.inflightStores) - 1; i >= 0; i-- {
		s := m.inflightStores[i]
		if s.seq >= u.seq {
			continue
		}
		if s.memAddr>>2 != word {
			continue
		}
		if s.issueCycle >= 0 && s.resolve <= memCycle {
			match = s
		}
		break // only the youngest older same-word store matters
	}
	if match != nil {
		u.forwardedFrom = match
		if m.prof != nil && memCycle < match.fwdConsExec {
			match.fwdConsExec = memCycle
		}
		m.noteConsumerOfHandle(u.issueCycle, matchRoot(match))
		return memCycle + 1 // SQ forwarding latency
	}
	return m.hier.AccessD(memCycle, u.memAddr, false)
}

// matchRoot exists for symmetry: forwarding producers are uops already.
func matchRoot(s *uop) *uop { return s }

// loadIssueChecks schedules a future memory-ordering violation if an older
// same-address store has issued but resolves only after this load's access.
func (m *machine) loadIssueChecks(u *uop) {
	word := u.memAddr >> 2
	for i := len(m.inflightStores) - 1; i >= 0; i-- {
		s := m.inflightStores[i]
		if s.seq >= u.seq || s.memAddr>>2 != word {
			continue
		}
		if s.issueCycle >= 0 && s.resolve > u.memCycle {
			m.pendingViol = append(m.pendingViol, violation{atCycle: s.resolve, load: u, store: s})
		}
		break
	}
}

// storeIssueChecks detects younger loads that already executed past this
// store (they read stale data): a violation fires when the store resolves.
func (m *machine) storeIssueChecks(u *uop) {
	word := u.memAddr >> 2
	for _, l := range m.inflightLoads {
		if l.seq <= u.seq || l.issueCycle < 0 {
			continue
		}
		if l.memAddr>>2 != word || l.memCycle >= u.resolve {
			continue
		}
		// The load read memory (or an older store) before this store's
		// data existed. If it forwarded from a store younger than u, it is
		// still correct.
		if f := l.forwardedFrom; f != nil && f.seq > u.seq {
			continue
		}
		m.pendingViol = append(m.pendingViol, violation{atCycle: u.resolve, load: l, store: u})
	}
}

// --- memory-ordering violations ---

func (m *machine) checkViolations() {
	if len(m.pendingViol) == 0 {
		return
	}
	var fire *violation
	kept := m.pendingViol[:0]
	for i := range m.pendingViol {
		v := &m.pendingViol[i]
		if v.load.squashed || v.store.squashed {
			continue
		}
		if v.atCycle <= m.cycle {
			if fire == nil || v.load.seq < fire.load.seq {
				if fire != nil {
					kept = append(kept, *fire)
				}
				fire = v
				continue
			}
		}
		kept = append(kept, *v)
	}
	m.pendingViol = kept
	if fire == nil {
		return
	}
	m.stats.MemOrderFlushes++
	if m.watch != nil && m.watch.Trace != nil {
		m.watch.Trace.Event(m.cycle, obs.EvFlush, -1, fire.load.seq)
	}
	if debugViolationHook != nil {
		debugViolationHook(m.loadPC(fire.load), m.storePC(fire.store))
	}
	m.ss.Violation(m.loadPC(fire.load), m.storePC(fire.store))
	m.flushFrom(fire.load)
}

// flushFrom squashes the violating load and everything younger, restoring
// rename state, and redirects fetch to refetch from the load.
func (m *machine) flushFrom(v *uop) {
	// Squash fetchQ and pending items entirely (all younger than v).
	m.squashScratch = m.squashScratch[:0]
	for i := 0; i < m.fetchQ.len(); i++ {
		u := m.fetchQ.at(i)
		u.squashed = true
		m.squashScratch = append(m.squashScratch, u)
	}
	m.fetchQ.clear()
	m.fetchPending.clear()

	// Squash window uops young -> old.
	cut := m.window.len()
	for i := m.window.len() - 1; i >= 0; i-- {
		u := m.window.at(i)
		if u.seq < v.seq {
			break
		}
		cut = i
		u.squashed = true
		m.squashScratch = append(m.squashScratch, u)
		if m.sched != SchedScan && u.issueCycle < 0 {
			// Unissued: leave no event-scheduler references behind. Uops
			// waiting on a producer are scrubbed from its wakeup list;
			// ready-queue entries are purged wholesale below.
			m.iqCount--
			m.unregisterWaiter(u)
		}
		if u.writesReg {
			if m.lastWriter[u.dstReg] == u {
				m.lastWriter[u.dstReg] = u.prevWriter
			}
			m.freeRegs++
		}
		if u.isLoad {
			m.lqUsed--
			m.removeInflight(&m.inflightLoads, u)
		}
		if u.isStore {
			m.sqUsed--
			m.removeInflight(&m.inflightStores, u)
			m.ss.CompleteStore(m.storePC(u), u.seq)
		}
	}
	m.window.truncBack(cut)

	// Purge squashed uops from the IQ and violation list.
	if m.sched == SchedScan {
		kept := m.iq[:0]
		for _, u := range m.iq {
			if !u.squashed {
				kept = append(kept, u)
			}
		}
		m.iq = kept
	} else {
		m.purgeReadyQ()
	}
	keptV := m.pendingViol[:0]
	for _, pv := range m.pendingViol {
		if !pv.load.squashed && !pv.store.squashed {
			keptV = append(keptV, pv)
		}
	}
	m.pendingViol = keptV
	if m.pendingBranch != nil && m.pendingBranch.squashed {
		m.pendingBranch = nil
	}
	m.curBBHead = nil

	// Redirect fetch: refetch from the load's first trace record.
	m.fetchIdx = v.traceIdx
	if m.fetchStall < m.cycle+1 {
		m.fetchStall = m.cycle + 1
	}

	if m.watch != nil && m.watch.Trace != nil {
		for _, u := range m.squashScratch {
			m.traceUop(u, m.cycle, true)
		}
	}

	// Squashed uops are dead immediately: they were the youngest suffix, so
	// no surviving uop can hold a pointer to one (srcProd, waitStore and
	// forwardedFrom all point at strictly older uops), and every structure
	// that indexed them (IQ, violations, rename table, pendingBranch) was
	// purged above. Profiling runs keep them: consumer lists reference
	// squashed uops until drain.
	if m.recycle {
		m.freeUops = append(m.freeUops, m.squashScratch...)
		m.squashScratch = m.squashScratch[:0]
	}
}

// --- rename ---

func (m *machine) rename() {
	for n := 0; n < m.cfg.FetchWidth && m.fetchQ.len() > 0; n++ {
		u := m.fetchQ.at(0)
		if u.renameReady > m.cycle {
			return
		}
		// Structural resources (the check order is shared with the event
		// scheduler's bulk stall accounting; see renameStallCounter).
		if ctr := m.renameStallCounter(u); ctr != nil {
			*ctr++
			return
		}
		m.fetchQ.popFront()
		u.renameCycle = m.cycle

		// Dataflow linking.
		for i := 0; i < u.nSrc; i++ {
			u.srcProd[i] = m.lastWriter[u.srcReg[i]]
		}
		if u.writesReg {
			u.prevWriter = m.lastWriter[u.dstReg]
			m.lastWriter[u.dstReg] = u
			m.freeRegs--
		}
		if u.isLoad {
			m.lqUsed++
			m.inflightLoads = append(m.inflightLoads, u)
			if tag := m.ss.RenameLoad(m.loadPC(u)); tag >= 0 {
				for _, s := range m.inflightStores {
					if s.seq == tag {
						u.waitStore = s
						break
					}
				}
			}
		}
		if u.isStore {
			m.sqUsed++
			m.inflightStores = append(m.inflightStores, u)
			if prev := m.ss.RenameStore(m.storePC(u), u.seq); prev >= 0 {
				for _, s := range m.inflightStores {
					if s.seq == prev {
						u.waitStore = s
						break
					}
				}
			}
		}

		// Basic-block head tracking for slack profiling.
		if m.prof != nil && u.kind != kindOverheadJump {
			if m.p.Blocks[m.p.BlockOf[u.static]].Start == u.static || m.curBBHead == nil {
				m.curBBHead = u
			}
			u.bbHead = m.curBBHead
		}

		m.window.pushBack(u)
		if m.sched == SchedScan {
			m.iq = append(m.iq, u)
		} else {
			m.admitEvent(u)
		}
	}
}

// --- fetch ---

func (m *machine) fetch() {
	if m.pendingBranch != nil || m.cycle < m.fetchStall {
		return
	}
	if m.fetchQ.len() >= m.cfg.FetchWidth*8 {
		return
	}
	var curLine uint32 = math.MaxUint32
	for n := 0; n < m.cfg.FetchWidth; n++ {
		var it fetchItem
		direct := false // it came straight from prepareNext, not the ring
		if m.fetchPending.len() > 0 {
			it = m.fetchPending.at(0)
		} else {
			var ok bool
			if it, ok = m.prepareNext(); !ok {
				return
			}
			direct = true
		}
		// Instruction cache access, one per line per cycle.
		line := it.addr >> 5
		if line != curLine {
			done := m.hier.AccessI(m.cycle, it.addr)
			if done > m.cycle+int64(m.cfg.Hier.L1I.Latency) {
				// Miss: stall fetch until the line arrives.
				m.fetchStall = done
				if direct {
					m.fetchPending.pushFront(it)
				}
				return
			}
			curLine = line
		}
		if !direct {
			m.fetchPending.popFront()
		}
		u := m.makeUop(it)
		m.fetchQ.pushBack(u)
		if u.mispred {
			m.pendingBranch = u
			return
		}
		if it.endsGroup {
			return
		}
	}
}

// prepareNext converts the next trace record(s) into fetch items. The
// first item is returned directly — the common singleton/handle case never
// round-trips through the pending ring — and any remainder (outlined
// mini-graph expansions) is queued. ok is false when the trace is
// exhausted. Only called with an empty pending ring.
func (m *machine) prepareNext() (it fetchItem, ok bool) {
	if m.fetchIdx >= len(m.tr) {
		return fetchItem{}, false
	}
	rec := m.tr[m.fetchIdx]
	static := int(rec.Index)

	if m.mgc.Enabled() {
		if inst := m.mgc.Selection.InstanceAt(static); inst != nil && m.fetchIdx+inst.N <= len(m.tr) {
			if m.mon != nil && m.mon.isDisabled(inst.Template) && !m.mgc.IdealOutlining {
				m.prepareOutlined(inst)
				return m.fetchPending.popFront(), true
			}
			if m.mon != nil && m.mon.isDisabled(inst.Template) && m.mgc.IdealOutlining {
				m.prepareInlineSingletons(inst)
				return m.fetchPending.popFront(), true
			}
			last := m.tr[m.fetchIdx+inst.N-1]
			it = fetchItem{
				kind:      kindHandle,
				static:    static,
				traceIdx:  m.fetchIdx,
				nRecs:     inst.N,
				addr:      m.layout.InlineAddr(static),
				mg:        inst,
				endsGroup: inst.Cand.CtrlIdx >= 0 && last.Taken,
			}
			m.fetchIdx += inst.N
			return it, true
		}
	}

	it = fetchItem{
		kind:      kindSingleton,
		static:    static,
		traceIdx:  m.fetchIdx,
		nRecs:     1,
		addr:      m.layout.InlineAddr(static),
		endsGroup: rec.Taken,
	}
	m.fetchIdx++
	return it, true
}

// prepareOutlined queues the outlined (disabled) execution of a mini-graph:
// jump to the outline region, the constituents as singletons, and a jump
// back (unless the final constituent is a taken branch).
func (m *machine) prepareOutlined(inst *minigraph.Instance) {
	start := inst.Start
	m.fetchPending.pushBack(fetchItem{
		kind:      kindOverheadJump,
		static:    start,
		traceIdx:  m.fetchIdx,
		nRecs:     0,
		addr:      m.layout.InlineAddr(start),
		mg:        inst,
		endsGroup: true, // the outlining jump is always taken
	})
	lastTaken := false
	for k := 0; k < inst.N; k++ {
		rec := m.tr[m.fetchIdx+k]
		ends := rec.Taken
		if k == inst.N-1 {
			lastTaken = rec.Taken
		}
		m.fetchPending.pushBack(fetchItem{
			kind:      kindSingleton,
			static:    inst.Start + k,
			traceIdx:  m.fetchIdx + k,
			nRecs:     1,
			addr:      m.layout.OutlineAddr(inst.Start + k),
			endsGroup: ends,
		})
	}
	if !lastTaken {
		m.fetchPending.pushBack(fetchItem{
			kind:      kindOverheadJump,
			static:    start,
			traceIdx:  m.fetchIdx + inst.N - 1,
			nRecs:     0,
			addr:      m.layout.JumpBackAddr(start),
			mg:        inst,
			endsGroup: true,
		})
	}
	m.fetchIdx += inst.N
}

// prepareInlineSingletons queues ideal (penalty-free) disabled execution:
// the constituents as inline singletons.
func (m *machine) prepareInlineSingletons(inst *minigraph.Instance) {
	for k := 0; k < inst.N; k++ {
		rec := m.tr[m.fetchIdx+k]
		m.fetchPending.pushBack(fetchItem{
			kind:      kindSingleton,
			static:    inst.Start + k,
			traceIdx:  m.fetchIdx + k,
			nRecs:     1,
			addr:      m.layout.InlineAddr(inst.Start), // share the handle slot
			endsGroup: rec.Taken,
		})
	}
	m.fetchIdx += inst.N
}

// uopSlabSize is how many uops one arena allocation holds.
const uopSlabSize = 256

// newUop returns a fully zeroed uop, from the free list when recycling has
// returned one, else carving a fresh arena slab. Total live uops are
// bounded by the window, fetch queue and retired queue, so steady state
// allocates nothing.
func (m *machine) newUop() *uop {
	if n := len(m.freeUops); n > 0 {
		u := m.freeUops[n-1]
		m.freeUops = m.freeUops[:n-1]
		wl := u.wakeList
		*u = uop{} // full reset: recycled uops carry no history
		u.wakeList = wl[:0]
		return u
	}
	slab := make([]uop, uopSlabSize)
	if m.sched != SchedScan {
		// Seed each uop's wakeup list with arena-backed capacity: most
		// producers wake at most two consumers, and newUop preserves the
		// capacity across recycling, so steady state never grows them.
		const wakeCap = 2
		arena := make([]*uop, uopSlabSize*wakeCap)
		for i := range slab {
			slab[i].wakeList = arena[i*wakeCap : i*wakeCap : (i+1)*wakeCap]
		}
	}
	for i := 1; i < len(slab); i++ {
		m.freeUops = append(m.freeUops, &slab[i])
	}
	return &slab[0]
}

// makeUop builds the uop for a fetch item, running branch prediction.
func (m *machine) makeUop(it fetchItem) *uop {
	u := m.newUop()
	u.seq = m.seq
	u.traceIdx = it.traceIdx
	u.nRecs = it.nRecs
	u.static = it.static
	u.kind = it.kind
	u.mg = it.mg
	u.fetchCycle = m.cycle
	u.renameReady = m.cycle + int64(m.cfg.FetchToRename)
	u.renameCycle = -1
	u.issueCycle = -1
	u.minConsIss = never
	u.fwdConsExec = never
	m.seq++

	switch it.kind {
	case kindOverheadJump:
		u.class = isa.ClassJump
		u.op = isa.OpBr
		m.predictOverheadJump(u, it)
		return u
	case kindHandle:
		c := it.mg.Cand
		u.class = isa.ClassSimple
		u.op = m.p.Code[it.static].Op
		for i, r := range c.ExternalIns {
			u.srcReg[i] = r
		}
		u.nSrc = len(c.ExternalIns)
		if c.OutputReg != isa.NoReg {
			u.writesReg = true
			u.dstReg = c.OutputReg
		}
		if c.MemIdx >= 0 {
			in := m.p.Code[it.static+c.MemIdx]
			u.isLoad = in.IsLoad()
			u.isStore = in.IsStore()
			u.memAddr = m.tr[it.traceIdx+c.MemIdx].Addr
		}
		if c.CtrlIdx >= 0 {
			u.hasBranch = true
			brStatic := it.static + c.CtrlIdx
			brRec := m.tr[it.traceIdx+c.CtrlIdx]
			m.predictBranch(u, brStatic, brRec)
		}
		return u
	}

	in := m.p.Code[it.static]
	rec := m.tr[it.traceIdx]
	u.op = in.Op
	u.class = isa.ClassOf(in.Op)
	u.nSrc = len(in.AppendSources(u.srcReg[:0]))
	if in.WritesReg() {
		u.writesReg = true
		u.dstReg = in.Rd
	}
	if in.IsMem() {
		u.isLoad = in.IsLoad()
		u.isStore = in.IsStore()
		u.memAddr = rec.Addr
	}
	if in.IsBranch() {
		u.hasBranch = true
		m.predictBranch(u, it.static, rec)
	}
	return u
}

// predictBranch runs the front-end predictors for a control transfer at
// fetch time and marks the uop mispredicted when the machine would have
// fetched down the wrong path.
func (m *machine) predictBranch(u *uop, static int, rec emu.Rec) {
	in := m.p.Code[static]
	pc := prog.PCOf(static)
	actualTaken := rec.Taken
	u.actualTkn = actualTaken
	actualNext := int(rec.Next)

	switch {
	case in.IsCondBranch():
		pred := m.bp.PredictDirection(pc)
		m.bp.UpdateDirection(pc, actualTaken)
		if pred != actualTaken {
			u.mispred = true
			return
		}
		if actualTaken {
			m.predictTakenTarget(u, pc, actualNext, false)
		}
	case in.Op == isa.OpBr:
		m.predictTakenTarget(u, pc, actualNext, true)
	case in.Op == isa.OpJsr:
		m.bp.PushRAS(prog.PCOf(static + 1))
		m.predictTakenTarget(u, pc, actualNext, true)
	case in.Op == isa.OpJsrI:
		m.bp.PushRAS(prog.PCOf(static + 1))
		m.predictTakenTarget(u, pc, actualNext, false)
	case in.IsReturn():
		top, ok := m.bp.PopRAS()
		if !ok || (actualNext >= 0 && top != prog.PCOf(actualNext)) {
			u.mispred = true
			m.bp.NoteRASWrong()
			m.stats.RASMispredicts++
		}
	default: // indirect jmp
		m.predictTakenTarget(u, pc, actualNext, false)
	}
}

// predictTakenTarget models BTB behavior for a taken transfer. Direct
// transfers recover a BTB miss at decode (a 2-cycle fetch bubble); indirect
// transfers mispredict on a BTB miss or wrong target.
func (m *machine) predictTakenTarget(u *uop, pc uint32, actualNext int, direct bool) {
	if actualNext < 0 {
		return
	}
	want := prog.PCOf(actualNext)
	got, ok := m.bp.PredictTarget(pc)
	m.bp.UpdateTarget(pc, want)
	if ok && got == want {
		return
	}
	if direct {
		// Decode-time target computation: small fetch bubble.
		if m.fetchStall < m.cycle+2 {
			m.fetchStall = m.cycle + 2
		}
		return
	}
	u.mispred = true
}

// predictOverheadJump models the outlining jumps: direct, always taken.
func (m *machine) predictOverheadJump(u *uop, it fetchItem) {
	pc := it.addr
	if got, ok := m.bp.PredictTarget(pc); !ok || got == 0 {
		if m.fetchStall < m.cycle+2 {
			m.fetchStall = m.cycle + 2
		}
	}
	m.bp.UpdateTarget(pc, pc+4)
}

// --- slack profiling ---

// maxTrackedConsumers caps per-value consumer edges recorded for the
// global-slack pass (capping can only overestimate global slack).
const maxTrackedConsumers = 16

func (m *machine) drainProfile() {
	if m.prof == nil {
		return
	}
	// Reverse pass over the committed stream: global slack of a value is
	// the delay it tolerates without lengthening the whole execution,
	// propagated through the dataflow graph. Consumers are younger and
	// commit later, so a single reverse sweep sees every consumer's global
	// slack before its producers'.
	for i := len(m.profFIFO) - 1; i >= 0; i-- {
		u := m.profFIFO[i]
		gs := int64(slack.BigSlack)
		if u.hasBranch && u.mispred {
			gs = 0 // delaying a mispredicted branch delays everything
		}
		for _, c := range u.consumers {
			if c.squashed || c.issueCycle < 0 {
				continue
			}
			edge := c.issueCycle - u.readyOut
			if edge < 0 {
				edge = 0
			}
			if v := edge + c.gslack; v < gs {
				gs = v
			}
		}
		u.gslack = gs
	}
	for _, u := range m.profFIFO {
		m.foldProfile(u)
	}
	m.profFIFO = nil
}

// foldProfile converts a committed uop's timing into a slack Observation.
// Profiling runs are singleton runs, so every uop maps to one static
// instruction.
func (m *machine) foldProfile(u *uop) {
	if u.kind != kindSingleton || u.bbHead == nil {
		return
	}
	base := float64(u.bbHead.issueCycle)
	in := m.p.Code[u.static]

	obs := slack.Observation{
		Issue:       float64(u.issueCycle) - base,
		Ready:       float64(u.readyOut) - base,
		ExecLat:     float64(u.execDone - u.issueCycle - int64(m.cfg.IssueToExec)),
		Src1Ready:   slack.NaN(),
		Src2Ready:   slack.NaN(),
		RegSlack:    slack.NaN(),
		StoreSlack:  slack.NaN(),
		BranchSlack: slack.NaN(),
	}
	// Map the uop's dynamic sources back to the instruction's operand slots.
	slot := 0
	if in.Rs1 != isa.NoReg && in.Rs1 != isa.ZeroReg && in.Rs1.Valid() {
		obs.Src1Ready = float64(u.srcReadyC[slot]) - base
		slot++
	}
	if in.Rs2 != isa.NoReg && in.Rs2 != isa.ZeroReg && in.Rs2.Valid() {
		obs.Src2Ready = float64(u.srcReadyC[slot]) - base
	}
	obs.GlobalRegSlack = slack.NaN()
	if u.writesReg {
		obs.GlobalRegSlack = math.Min(float64(u.gslack), slack.BigSlack)
		if u.minConsIss == never {
			obs.RegSlack = slack.BigSlack
		} else {
			s := float64(u.minConsIss - u.readyOut)
			if s < 0 {
				s = 0
			}
			obs.RegSlack = math.Min(s, slack.BigSlack)
		}
	}
	if u.isStore {
		if u.fwdConsExec == never {
			obs.StoreSlack = slack.BigSlack
		} else {
			s := float64(u.fwdConsExec - u.resolve)
			if s < 0 {
				s = 0
			}
			obs.StoreSlack = math.Min(s, slack.BigSlack)
		}
	}
	if u.hasBranch {
		if u.mispred {
			obs.BranchSlack = 0
		} else {
			obs.BranchSlack = slack.BigSlack
		}
	}
	m.prof.Add(u.static, obs)
}

// --- observability hooks (see internal/obs) ---

var uopKindNames = [...]string{
	kindSingleton:    "singleton",
	kindHandle:       "handle",
	kindOverheadJump: "ovh-jump",
}

// traceUop emits the pipetrace record for u at commit (cycle = commit
// cycle) or squash (squashed = true, no commit cycle). Only called with
// an active trace.
func (m *machine) traceUop(u *uop, cycle int64, squashed bool) {
	r := obs.UopTrace{
		Seq:      u.seq,
		Static:   u.static,
		Kind:     uopKindNames[u.kind],
		Op:       u.op.String(),
		N:        u.nRecs,
		Fetch:    u.fetchCycle,
		Rename:   u.renameCycle,
		Issue:    u.issueCycle,
		Done:     u.execDone,
		Ready:    u.readyOut,
		Commit:   cycle,
		Replays:  int(u.replays),
		Mispred:  u.mispred,
		Squashed: squashed,

		Dst:    -1,
		Tmpl:   -1,
		SerLat: u.serLat,
		SerOut: u.serOut,
		MemLat: u.memLat,
		SerExt: u.serExt,
	}
	if u.writesReg {
		r.Dst = int(u.dstReg)
	}
	if u.nSrc > 0 {
		r.Srcs = make([]int, u.nSrc)
		for i := 0; i < u.nSrc; i++ {
			r.Srcs[i] = int(u.srcReg[i])
		}
	}
	if u.kind == kindHandle {
		r.Tmpl = u.mg.Template
	}
	switch {
	case u.isLoad:
		r.Mem = obs.MemLoad
	case u.isStore:
		r.Mem = obs.MemStore
	}
	if r.Mem != obs.MemNone && u.issueCycle >= 0 {
		r.Addr = u.memAddr
	}
	// Singleton loads: cycles beyond the L1-hit wakeup the consumers saw
	// (specReady is capped at readyOut, so this is never negative).
	if u.kind != kindHandle && u.isLoad && u.issueCycle >= 0 {
		r.MemLat = u.readyOut - u.specReady
	}
	if squashed {
		r.Commit = -1
	}
	if u.issueCycle < 0 {
		r.Done, r.Ready = -1, -1
	}
	m.watch.Trace.Uop(r)
}

// sampleInterval records a time-series sample when the current cycle is a
// sampling point. Called once per cycle when an observer is attached.
func (m *machine) sampleInterval() {
	iv := m.watch.Intervals
	if iv == nil || !iv.Due(m.cycle) {
		return
	}
	iv.Sample(m.snapshot())
}

// snapshot captures the cumulative counters and instantaneous occupancies
// the interval sampler differentiates.
func (m *machine) snapshot() obs.CycleSnapshot {
	disabled := 0
	if m.mon != nil {
		disabled = m.mon.disabledCount()
	}
	return obs.CycleSnapshot{
		Cycle:          m.cycle,
		Instrs:         m.stats.Instrs,
		Uops:           m.stats.Uops,
		EmbeddedInstrs: m.stats.EmbeddedInstrs,

		StallIQ:   m.stats.StallIQ,
		StallROB:  m.stats.StallROB,
		StallRegs: m.stats.StallRegs,
		StallLQ:   m.stats.StallLQ,
		StallSQ:   m.stats.StallSQ,

		Replays:    m.stats.Replays,
		Serialized: m.stats.MGSerializedEvents,
		Harmful:    m.stats.MGHarmfulEvents,
		Disables:   m.stats.MGDisables,
		Reenables:  m.stats.MGReenables,

		IQOcc:             m.iqLen(),
		ROBOcc:            m.window.len(),
		LQOcc:             m.lqUsed,
		SQOcc:             m.sqUsed,
		FreeRegs:          m.freeRegs,
		DisabledTemplates: disabled,
	}
}

// RunDebugViolations is a diagnostic entry point: it runs like Run (no
// mini-graphs, no profiling) and invokes cb for every memory-ordering
// violation's (load PC, store PC) pair.
func RunDebugViolations(p *prog.Program, tr []emu.Rec, cfg Config, cb func(loadPC, storePC uint32)) (*Stats, error) {
	debugViolationHook = cb
	defer func() { debugViolationHook = nil }()
	return Run(p, tr, cfg, MGConfig{}, nil)
}

var debugViolationHook func(loadPC, storePC uint32)
