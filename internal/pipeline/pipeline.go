package pipeline

import (
	"fmt"
	"math"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minigraph"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/slack"
	"repro/internal/storesets"
)

type uopKind uint8

const (
	kindSingleton    uopKind = iota
	kindHandle               // mini-graph handle
	kindOverheadJump         // outlining jump of a disabled mini-graph
)

const never = int64(math.MaxInt64)

// uop is one in-flight micro-op: a singleton instruction, a mini-graph
// handle (one uop standing for up to four instructions), or an outlining
// overhead jump.
//
// Fields the scheduler touches every cycle — issue/ready/resolve times,
// wait counts, wakeup chains, dependence slots, squash/commit flags — live
// in the machine's hotState arrays (see soa.go), indexed by slot. The
// struct keeps the per-uop state read at most a handful of times per uop:
// decode/fetch-time facts, memory/branch bookkeeping, recycling state and
// profiling extras.
type uop struct {
	slot     int32 // index into the machine's hotState arrays (permanent)
	seq      int64
	traceIdx int // first trace record index (overhead jumps borrow their MG's)
	nRecs    int // trace records this uop accounts for (0 for overhead jumps)
	static   int // static index of the (first) instruction
	kind     uopKind
	mg       *minigraph.Instance

	op    isa.Op
	class isa.Class

	fetchCycle  int64
	renameReady int64
	renameCycle int64 // actual rename cycle (-1 until renamed; pipetrace)

	nSrc      int
	srcReg    [3]isa.Reg
	srcReadyC [3]int64

	writesReg  bool
	dstReg     isa.Reg
	prevWriter *uop

	isLoad, isStore bool
	memAddr         uint32
	memCycle        int64 // cycle the load's memory access begins
	forwardedFrom   *uop

	hasBranch bool // this uop resolves a control transfer
	mispred   bool
	actualTkn bool
	replays   uint16 // wasted issue attempts (pipetrace)

	// Recycling state (see reclaim): refBarrier is the machine seq at this
	// uop's commit — once every older uop has left the window, no in-flight
	// uop can still hold a pointer to this one. writerDead marks a committed
	// register writer whose successor writer has also committed (it can no
	// longer be re-captured through lastWriter, even across a flush).
	// parked marks a writer that cleared its barrier while still live in
	// the rename table.
	refBarrier int64
	writerDead bool
	parked     bool

	// Slack-Dynamic per-instance detection state.
	serialized bool

	// Pipetrace-only dependence/serialization observables (populated only
	// when an observer with an active trace is attached; stay zero and cost
	// nothing otherwise).
	serLat int64 // completion delay vs. the dataflow-feasible internal schedule
	serOut int64 // register-output delay vs. that schedule
	memLat int64 // load cycles beyond the L1-hit path
	serExt bool  // issued data-bound on a serializing external input

	// Profiling.
	bbHead      *uop
	minConsIss  int64
	fwdConsExec int64
	consumers   []*uop // register-value consumers (profiling runs only)
	gslack      int64  // computed global slack (drain-time reverse pass)
}

// fetchItem is a prepared fetch unit awaiting its fetch cycle.
type fetchItem struct {
	kind      uopKind
	static    int
	traceIdx  int
	nRecs     int
	addr      uint32
	mg        *minigraph.Instance
	endsGroup bool // taken control transfer: ends the fetch group
}

type violation struct {
	atCycle int64
	load    *uop
	store   *uop
}

type machine struct {
	cfg Config
	mgc MGConfig
	p   *prog.Program
	tr  []emu.Rec

	hier *cache.Hierarchy
	bp   *bpred.Predictor
	ss   *storesets.Predictor
	mon  *mgMonitor

	stats Stats
	prof  *slack.Accumulator
	watch *obs.Observer // nil when observability is off (the common case)

	// Flight-recorder sink (see obs/flight.go): captured once per run from
	// the process-wide recorder, so the hot path tests one machine field.
	// emitUops is true when any sink (trace file or flight ring) wants uop
	// records; obsSrcs is the reused source-list scratch for those records.
	flight    *obs.FlightRecorder
	flightRun string
	emitUops  bool
	obsSrcs   [3]int

	cycle int64
	seq   int64

	fetchIdx       int
	fetchStall     int64 // no fetch before this cycle
	pendingBranch  *uop  // unresolved mispredicted control transfer
	fetchPending   ring[fetchItem]
	fetchQ         ring[*uop]
	window         ring[*uop] // ROB, oldest first
	iq             []*uop     // issue queue, oldest first
	inflightStores ring[*uop] // renamed stores, oldest first
	inflightLoads  ring[*uop] // renamed loads, oldest first
	pendingViol    []violation
	freeRegs       int
	lqUsed, sqUsed int
	lastWriter     [isa.NumRegs]*uop
	curBBHead      *uop
	profFIFO       []*uop
	layout         *minigraph.Layout

	// Last computed layout, kept across pooling: layouts are immutable and
	// depend only on (program, selection), and a pooled machine almost
	// always re-runs the same workload. The pinned program/selection are
	// released whenever the GC clears the pool.
	layoutP   *prog.Program
	layoutSel *minigraph.Selection
	layoutC   *minigraph.Layout

	// Uop recycling: committed uops queue in retired until provably
	// unreferenced, then return to freeUops for reuse by makeUop. Disabled
	// while profiling (the slack accumulator keeps every uop until drain).
	recycle       bool
	freeUops      []*uop
	retired       ring[*uop]
	squashScratch []*uop

	// Slot-indexed structure-of-arrays for the fields the scheduler hot
	// loops touch every cycle (see soa.go). Both schedulers use it.
	hot hotState

	// Event-scheduler state (see sched.go): the ready-queue heap of issue
	// candidates keyed by earliest-issue cycle, the flat list of candidates
	// waking exactly next cycle (the dominant case, kept off the heap), the
	// per-cycle candidate scratch, and the issue-queue occupancy (the scan
	// scheduler reads len(iq) instead). Wakeup chains thread through the
	// wakeNodes pool; freed nodes chain off wakeFree for reuse.
	sched        SchedKind
	readyQ       []readyEnt
	readyNext    []int32
	issueScratch []int32
	iqCount      int
	wakeNodes    []wakeNode
	wakeFree     int32

	// Calendar wheel for wakes within wheelSize cycles: slot s chains the
	// uops waking at cycles ≡ s (mod wheelSize) through hot.link, with an
	// occupancy bitmap so the idle-skip logic finds the earliest pending
	// wake in a few word scans.
	wheelHead [wheelSize]int32
	wheelBits [wheelSize / 64]uint64
	wheelCnt  int
}

// iqLen returns the issue-queue occupancy under either scheduler.
func (m *machine) iqLen() int {
	if m.sched == SchedScan {
		return len(m.iq)
	}
	return m.iqCount
}

// noRecycle disables uop recycling even in non-profiling runs; tests flip
// it to verify recycling changes no architectural outcome.
var noRecycle bool

// Run replays the committed trace of program p on the configured machine
// and returns timing statistics. mg configures mini-graph processing (zero
// MGConfig = singleton execution). When prof is non-nil the run records a
// slack profile into it (profiling runs should be singleton runs, matching
// the paper's use of non-mini-graph profiles).
func Run(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, prof *slack.Accumulator) (*Stats, error) {
	return RunSched(p, tr, cfg, mg, prof, nil, DefaultScheduler())
}

// RunObserved is Run with an attached observer collecting pipetrace
// records and/or interval samples (see internal/obs). A nil or inactive
// observer makes it exactly Run: the hot loop pays one nil check per
// cycle and per committed uop.
func RunObserved(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, prof *slack.Accumulator, watch *obs.Observer) (*Stats, error) {
	return RunSched(p, tr, cfg, mg, prof, watch, DefaultScheduler())
}

// RunSched is RunObserved with an explicit scheduler choice, bypassing the
// process-wide default. The differential tests use it to run both
// schedulers side by side; results are byte-identical either way.
func RunSched(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, prof *slack.Accumulator, watch *obs.Observer, sched SchedKind) (*Stats, error) {
	return runSchedWarm(p, tr, cfg, mg, prof, watch, sched, nil, 0, nil)
}

// prerollSnap is a mid-run statistics snapshot, taken the cycle the
// committed-instruction count crosses a pre-roll threshold. Subtracting it
// from the final stats measures the tail of the run as seen from a pipeline
// already in motion — without the fill transient a fresh machine pays.
type prerollSnap struct {
	cycles, instrs, uops                   int64
	handles, embedded, mispredicts, replay int64
}

// runSchedWarm is RunSched with an optional functional warm-up segment:
// before the first simulated cycle, warm is replayed into the caches,
// predictors and store sets (no timing effects, stats cleared afterwards).
// Representative sampling uses it to start measured windows hot. If
// preroll > 0 and snap is non-nil, *snap receives the statistics snapshot
// taken when the committed-instruction count first reaches preroll.
func runSchedWarm(p *prog.Program, tr []emu.Rec, cfg Config, mg MGConfig, prof *slack.Accumulator, watch *obs.Observer, sched SchedKind, warm []emu.Rec, preroll int64, snap *prerollSnap) (*Stats, error) {
	if len(tr) == 0 {
		return nil, fmt.Errorf("pipeline: empty trace")
	}
	m, maxCycles, err := setupMachine(p, cfg, mg, prof, watch, sched)
	if err != nil {
		return nil, err
	}
	m.tr = tr
	m.warmMachine(warm)
	return m.mainLoop(maxCycles, preroll, snap)
}

// setupMachine readies a pooled machine for one run: config, program, layout,
// observers. The caller assigns m.tr (and optionally feeds a functional
// warm-up) before invoking mainLoop — the streaming path materializes the
// trace slice only after the machine exists, so setup cannot take it.
func setupMachine(p *prog.Program, cfg Config, mg MGConfig, prof *slack.Accumulator, watch *obs.Observer, sched SchedKind) (*machine, int64, error) {
	if watch != nil && !watch.Active() {
		watch = nil
	}
	if cfg.PhysRegs-isa.NumRegs <= 0 {
		return nil, 0, fmt.Errorf("pipeline: config %q has no rename registers", cfg.Name)
	}
	m := getMachine(cfg)
	m.mgc = mg
	m.p = p
	m.watch = watch
	m.flight = obs.Flight()
	if m.flight != nil {
		m.flightRun = p.Name + "/" + cfg.Name
	}
	m.emitUops = m.flight != nil || (watch != nil && watch.Trace != nil)
	m.sched = sched
	m.prof = prof
	m.recycle = prof == nil && !noRecycle
	if mg.Enabled() {
		m.layout = mg.Layout
		if m.layout == nil {
			if m.layoutP == p && m.layoutSel == mg.Selection {
				m.layout = m.layoutC
			} else {
				m.layout = minigraph.NewLayout(p, mg.Selection)
				m.layoutP, m.layoutSel, m.layoutC = p, mg.Selection, m.layout
			}
		}
		m.mon = newMGMonitor(&mg, mg.Selection.NumTemplates, &m.stats)
		if watch != nil {
			m.mon.trace = watch.Trace
		}
	} else if m.layoutP == p && m.layoutSel == nil {
		m.layout = m.layoutC
	} else {
		m.layout = minigraph.IdentityLayout(p)
		m.layoutP, m.layoutSel, m.layoutC = p, nil, m.layout
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	return m, maxCycles, nil
}

// mainLoop runs the simulation to completion and returns the detached stats,
// pooling the machine on success. See runSchedWarm for preroll/snap.
func (m *machine) mainLoop(maxCycles int64, preroll int64, snap *prerollSnap) (*Stats, error) {
	p := m.p
	event := m.sched != SchedScan
	for {
		if m.done() {
			break
		}
		if m.cycle > maxCycles {
			return nil, fmt.Errorf("pipeline: %s on %s exceeded %d cycles (deadlock?)", p.Name, m.cfg.Name, maxCycles)
		}
		m.checkViolations()
		m.commit()
		if preroll > 0 && m.stats.Instrs >= preroll {
			*snap = prerollSnap{
				cycles:      m.cycle,
				instrs:      m.stats.Instrs,
				uops:        m.stats.Uops,
				handles:     m.stats.Handles,
				embedded:    m.stats.EmbeddedInstrs,
				mispredicts: m.bp.DirMisses + m.stats.RASMispredicts,
				replay:      m.stats.Replays,
			}
			preroll = 0
		}
		m.resolvePendingBranch()
		if event {
			m.issueEvent()
		} else {
			m.issue()
		}
		m.rename()
		m.fetch()
		if m.mon != nil && m.mgc.Dynamic {
			m.mon.tick(m.cycle)
		}
		if m.watch != nil {
			m.sampleInterval()
		}
		if event {
			m.advanceCycle(maxCycles)
		} else {
			m.cycle++
		}
	}

	if m.watch != nil && m.watch.Intervals != nil {
		m.watch.Intervals.Final(m.snapshot())
	}
	m.drainProfile()
	m.stats.Cycles = m.cycle
	m.stats.BranchMispredicts = m.bp.DirMisses + m.stats.RASMispredicts
	m.stats.BTBMisses = m.bp.BTBMisses
	m.stats.L1IMissRate = m.hier.L1I.MissRate()
	m.stats.L1DMissRate = m.hier.L1D.MissRate()
	m.stats.L2MissRate = m.hier.L2.MissRate()
	m.stats.MemAccesses = m.hier.MemAccesses
	m.stats.ITLBMisses = m.hier.ITLB.Misses()
	m.stats.DTLBMisses = m.hier.DTLB.Misses()
	noteRun(&m.stats)
	// Copy the stats out and pool the machine: the caller's *Stats must not
	// alias state a later run will overwrite. Error paths above skip the
	// pool — a deadlocked machine's structures are not provably clean.
	st := m.stats
	putMachine(m)
	return &st, nil
}

func (m *machine) done() bool {
	return m.fetchIdx >= len(m.tr) && m.fetchPending.len() == 0 &&
		m.fetchQ.len() == 0 && m.window.len() == 0
}

// --- commit ---

func (m *machine) commit() {
	h := &m.hot
	for n := 0; n < m.cfg.CommitWidth && m.window.len() > 0; n++ {
		u := m.window.at(0)
		s := u.slot
		if h.issue[s] < 0 || h.execDone[s] > m.cycle {
			break
		}
		h.committed[s] = true
		m.window.popFront()
		m.stats.Uops++
		switch u.kind {
		case kindSingleton:
			m.stats.Instrs++
		case kindHandle:
			m.stats.Instrs += int64(u.nRecs)
			m.stats.EmbeddedInstrs += int64(u.nRecs)
			m.stats.Handles++
		case kindOverheadJump:
			m.stats.OverheadJumps++
		}
		if u.writesReg {
			m.freeRegs++ // the previous mapping of dstReg dies
			if pw := u.prevWriter; pw != nil {
				// pw is the previous committed writer of dstReg. With this
				// commit it can never be restored into lastWriter by a flush
				// (that would require squashing u), and rename order
				// guarantees every consumer that captured pw has already
				// committed — pw is now recyclable.
				pw.writerDead = true
				if pw.parked {
					pw.parked = false
					m.freeUops = append(m.freeUops, pw)
				}
				u.prevWriter = nil
			}
		}
		if u.isLoad {
			m.lqUsed--
			removeInflight(&m.inflightLoads, u)
		}
		if u.isStore {
			m.sqUsed--
			removeInflight(&m.inflightStores, u)
			m.ss.CompleteStore(m.storePC(u), u.seq)
			// The store's write updates cache state at commit.
			m.hier.AccessD(m.cycle, u.memAddr, true)
		}
		if m.emitUops {
			m.observeUop(u, m.cycle, false)
		}
		if m.prof != nil {
			// Retained until drain: the global-slack reverse pass needs the
			// whole committed stream, and late consumers keep updating
			// local slack until then.
			m.profFIFO = append(m.profFIFO, u)
		} else if m.recycle {
			u.refBarrier = m.seq
			m.retired.pushBack(u)
		}
	}
	if m.recycle {
		m.reclaim()
	}
}

// reclaim returns committed uops to the free list once nothing can still
// reference them. References to a uop live in younger in-flight uops
// (srcProd, waitStore, forwardedFrom — all captured before its commit, so
// holders have seq < refBarrier), in the rename table (lastWriter /
// prevWriter chains — dead once a younger same-register writer commits,
// tracked by writerDead), in the pending-violation list, and in
// pendingBranch. Commit is in-order, so the retired queue clears its
// barriers in FIFO order; only live register writers park out of order.
func (m *machine) reclaim() {
	for m.retired.len() > 0 {
		h := m.retired.at(0)
		if m.window.len() > 0 && m.window.at(0).seq < h.refBarrier {
			break // an older uop is still in flight and may reference h
		}
		if h == m.pendingBranch || m.referencedByViolation(h) {
			break // transient: clears within a cycle or two
		}
		m.retired.popFront()
		if h.writesReg && !h.writerDead {
			h.parked = true // freed later, when its successor writer commits
			continue
		}
		m.freeUops = append(m.freeUops, h)
	}
}

func (m *machine) referencedByViolation(h *uop) bool {
	for i := range m.pendingViol {
		if m.pendingViol[i].load == h || m.pendingViol[i].store == h {
			return true
		}
	}
	return false
}

// removeInflight drops u from an in-flight ring. Commit removes the oldest
// live entry (in-order commit puts u at the front); flushFrom removes a
// youngest suffix young-to-old (u at the back); the shift fallback keeps
// this robust to any other caller.
func removeInflight(r *ring[*uop], u *uop) {
	n := r.len()
	switch {
	case n == 0:
	case r.at(0) == u:
		r.popFront()
	case r.at(n-1) == u:
		r.popBack()
	default:
		for i := 1; i < n-1; i++ {
			if r.at(i) == u {
				r.removeAt(i)
				return
			}
		}
	}
}

// findInflightStore locates the in-flight store with the given seq tag
// (unique, so search direction is immaterial; backward finds the usually
// recent StoreSets match sooner). Returns nil when the store already left
// the window.
func (m *machine) findInflightStore(tag int64) *uop {
	for i := m.inflightStores.len() - 1; i >= 0; i-- {
		if st := m.inflightStores.at(i); st.seq == tag {
			return st
		}
	}
	return nil
}

// storePC returns the PC used for StoreSets indexing of u's store.
func (m *machine) storePC(u *uop) uint32 {
	if u.kind == kindHandle {
		return prog.PCOf(u.static + u.mg.Cand.MemIdx)
	}
	return prog.PCOf(u.static)
}

func (m *machine) loadPC(u *uop) uint32 { return m.storePC(u) }

// --- branch resolution / fetch unblocking ---

func (m *machine) resolvePendingBranch() {
	b := m.pendingBranch
	if b == nil {
		return
	}
	h := &m.hot
	s := b.slot
	if h.squashed[s] {
		m.pendingBranch = nil
		return
	}
	if h.issue[s] >= 0 && m.cycle >= h.resolve[s] {
		m.pendingBranch = nil
		if m.fetchStall < h.resolve[s]+1 {
			m.fetchStall = h.resolve[s] + 1
		}
	}
}

// --- issue ---

func (m *machine) issue() {
	h := &m.hot
	bud := m.newIssueBudget()
	kept := m.iq[:0]
	for qi := 0; qi < len(m.iq); qi++ {
		u := m.iq[qi]
		if bud.width == 0 {
			kept = append(kept, m.iq[qi:]...)
			break
		}
		if !m.ready(u) {
			kept = append(kept, u)
			continue
		}
		meta := h.meta[u.slot]
		if !bud.admits(meta) {
			kept = append(kept, u)
			continue
		}
		bud.consume(meta)
		// Register read: if a speculatively-woken source turns out to be a
		// missed load, this issue attempt is wasted and the uop replays
		// when the value truly arrives.
		if latest := m.latestSrcReady(u.slot); latest > m.cycle {
			m.stats.Replays++
			u.replays++
			h.earliest[u.slot] = latest
			kept = append(kept, u)
			continue
		}
		m.execute(u)
	}
	m.iq = kept
}

// ready reports whether u may attempt to issue this cycle. Consumers of
// loads wake on the L1-hit-speculative ready time; if the load actually
// missed, the attempt is caught at register read and replayed — consuming
// issue bandwidth, per Table 1's "cache miss replays are modeled".
func (m *machine) ready(u *uop) bool {
	h := &m.hot
	s := u.slot
	if m.cycle < h.earliest[s] {
		return false
	}
	src := h.srcs[s]
	for i := 0; i < u.nSrc; i++ {
		p := src[i]
		if p < 0 {
			continue
		}
		if h.issue[p] < 0 {
			return false
		}
		wake := h.readyOut[p]
		// specReady is written only by singleton-load execution, so gate the
		// read on the producer kind rather than resetting the slot per uop.
		if h.meta[p]&(metaLoad|metaHandle) == metaLoad {
			if sp := h.specReady[p]; sp > 0 && sp < wake {
				wake = sp // speculative load-hit wakeup
			}
		}
		if wake > m.cycle {
			return false
		}
	}
	if w := h.waitSlot[s]; w >= 0 && !h.squashed[w] && !h.committed[w] {
		if h.issue[w] < 0 || h.resolve[w] > m.cycle {
			return false
		}
	}
	return true
}

// latestSrcReady returns the cycle at which every source value of slot s
// truly exists (the register-read check that triggers replays).
func (m *machine) latestSrcReady(s int32) int64 {
	h := &m.hot
	src := h.srcs[s]
	n := int(h.meta[s] >> metaNSrcShift)
	var latest int64
	for i := 0; i < n; i++ {
		if p := src[i]; p >= 0 && h.readyOut[p] > latest {
			latest = h.readyOut[p]
		}
	}
	return latest
}

// recordSrcReady returns the latest source-value ready cycle (for
// Slack-Dynamic detection) and records per-source ready cycles.
func (m *machine) recordSrcReady(u *uop) (lastReady int64, lastIdx int) {
	h := &m.hot
	src := h.srcs[u.slot]
	lastReady, lastIdx = 0, -1
	for i := 0; i < u.nSrc; i++ {
		var r int64
		if p := src[i]; p >= 0 {
			r = h.readyOut[p]
		}
		u.srcReadyC[i] = r
		if r >= lastReady {
			lastReady, lastIdx = r, i
		}
	}
	return lastReady, lastIdx
}

// execute computes all post-issue timing for u at the current cycle.
func (m *machine) execute(u *uop) {
	h := &m.hot
	s := u.slot
	h.issue[s] = m.cycle
	lastReady, lastIdx := m.recordSrcReady(u)

	// Consumers update producer local slack (profiling) and feed the
	// Slack-Dynamic consumer-delay detector (rule #4's hardware analogue).
	src := h.srcs[s]
	for i := 0; i < u.nSrc; i++ {
		p := src[i]
		if p < 0 {
			continue
		}
		if m.prof != nil {
			pu := h.uops[p]
			if m.cycle < pu.minConsIss {
				pu.minConsIss = m.cycle
			}
			if len(pu.consumers) < maxTrackedConsumers {
				pu.consumers = append(pu.consumers, u)
			}
		}
		if h.meta[p]&metaHandle != 0 {
			m.noteConsumerOfHandle(m.cycle, h.uops[p])
		}
	}

	exec := m.cycle + int64(m.cfg.IssueToExec)
	switch u.kind {
	case kindHandle:
		m.executeHandle(u, exec, lastReady, lastIdx)
	case kindOverheadJump:
		h.resolve[s] = exec + 1
		h.execDone[s] = exec + 1
		h.readyOut[s] = exec + 1
	default:
		m.executeSingleton(u, exec)
	}
}

func (m *machine) executeSingleton(u *uop, exec int64) {
	h := &m.hot
	s := u.slot
	in := m.p.Code[u.static]
	switch {
	case u.isLoad:
		u.memCycle = exec + 1 // address generation
		ro := m.loadAccess(u, u.memCycle)
		h.readyOut[s] = ro
		h.execDone[s] = ro
		// Consumers wake assuming an L1 hit; a miss triggers replays.
		sp := u.memCycle + int64(m.hier.L1DHitLatency())
		if sp > ro {
			sp = ro
		}
		h.specReady[s] = sp
		m.loadIssueChecks(u)
	case u.isStore:
		h.resolve[s] = exec // address and data resolved
		h.execDone[s] = exec
		h.readyOut[s] = 0 // no register output (pipetrace reads this)
		m.storeIssueChecks(u)
	case u.hasBranch:
		h.resolve[s] = exec + 1
		h.execDone[s] = exec + 1
		h.readyOut[s] = exec + 1 // calls write the return address
	default:
		lat := int64(isa.Latency(in.Op))
		h.readyOut[s] = exec + lat
		h.execDone[s] = exec + lat
	}
}

// executeHandle models MGT-driven execution on an ALU pipeline: constituent
// k issues one cycle after constituent k-1 finishes (forward-only interior
// network, micro-code style), which realizes internal serialization.
func (m *machine) executeHandle(u *uop, exec int64, lastReady int64, lastIdx int) {
	h := &m.hot
	s := u.slot
	c := u.mg.Cand
	t := h.issue[s]   // constituent-k issue time (rule #2 of the paper)
	h.readyOut[s] = 0 // stays 0 for output-less handles (pipetrace reads this)
	var maxDone int64
	var lats [4]int64 // per-constituent latencies (pipetrace attribution)
	for k := 0; k < u.mg.N; k++ {
		in := m.p.Code[u.static+k]
		ek := t + int64(m.cfg.IssueToExec)
		var rk int64
		var lat int64
		switch {
		case in.IsLoad():
			u.memCycle = ek + 1
			rk = m.loadAccess(u, u.memCycle)
			lat = rk - ek
			if m.emitUops {
				u.memLat = rk - (u.memCycle + int64(m.hier.L1DHitLatency()))
				if u.memLat < 0 {
					u.memLat = 0
				}
			}
		case in.IsStore():
			h.resolve[s] = ek
			rk = ek
			lat = 1
		case in.IsBranch():
			rk = ek + 1
			h.resolve[s] = rk
			lat = 1
		default:
			lat = int64(isa.Latency(in.Op))
			rk = ek + lat
		}
		if k == c.OutputIdx {
			h.readyOut[s] = rk
		}
		if rk > maxDone {
			maxDone = rk
		}
		lats[k] = lat
		t += lat
	}
	h.execDone[s] = maxDone
	if u.isLoad {
		m.loadIssueChecks(u)
	}
	if u.isStore {
		m.storeIssueChecks(u)
	}

	// Pipetrace attribution: measure the handle's serialization delay
	// against the dataflow-feasible internal schedule — constituent k could
	// have started once its internal producers finished, so any completion
	// beyond that is the serial ALU pipeline's doing. A pure dependence
	// chain measures 0; independent constituents measure the induced delay.
	if m.emitUops {
		var f [4]int64
		var maxF int64
		for k := 0; k < u.mg.N; k++ {
			var start int64
			deps := c.InternalDeps(k)
			for j := 0; j < k; j++ {
				if deps&(1<<uint(j)) != 0 && f[j] > start {
					start = f[j]
				}
			}
			f[k] = start + lats[k]
			if f[k] > maxF {
				maxF = f[k]
			}
		}
		u.serLat = h.execDone[s] - (exec + maxF)
		if u.serLat < 0 {
			u.serLat = 0
		}
		if c.OutputIdx >= 0 {
			u.serOut = h.readyOut[s] - (exec + f[c.OutputIdx])
			if u.serOut < 0 {
				u.serOut = 0
			}
		}
		u.serExt = lastIdx >= 0 && c.FirstUse[lastIdx] > 0 && h.issue[s] == lastReady
	}

	// Slack-Dynamic serialization detection. An instance suffered
	// serialization delay if either
	//   - external: its last-arriving operand is a serializing operand and
	//     (unless using the SIAL heuristic) the mini-graph issued as soon
	//     as that operand arrived (it was data-bound on it), or
	// Internal serialization is not detected (matching the paper's
	// hardware, which tracks operand arrivals only); in this workload
	// regime an internal-delay detector disables templates whose
	// amplification value exceeds their serialization cost.
	if m.mon != nil && m.mgc.Dynamic && lastIdx >= 0 {
		serInput := c.FirstUse[lastIdx] > 0
		dataBound := h.issue[s] == lastReady
		if serInput && (m.mgc.DynamicSIAL || dataBound) {
			u.serialized = true
			m.stats.MGSerializedEvents++
			if m.mgc.DynamicDelayOnly || m.mgc.DynamicSIAL {
				m.mon.harmful(m.cycle, u.mg.Template)
			}
		} else {
			m.mon.clean(u.mg.Template)
		}
	}
}

// consumerDelayed is called when a consumer of a serialized mini-graph's
// output issues exactly when that output arrived: the serialization delay
// propagated (full Slack-Dynamic model).
func (m *machine) noteConsumerOfHandle(consumerIssue int64, producer *uop) {
	if m.mon == nil || !m.mgc.Dynamic || !producer.serialized {
		return
	}
	if m.mgc.DynamicDelayOnly || m.mgc.DynamicSIAL {
		return // already counted at the producer
	}
	if consumerIssue == m.hot.readyOut[producer.slot] {
		m.mon.harmful(consumerIssue, producer.mg.Template)
	} else {
		// The consumer issued later for its own reasons: the serialization
		// delay was absorbed. Count the instance as clean so templates
		// whose delay is usually absorbed stay enabled.
		m.mon.clean(producer.mg.Template)
	}
}

// loadAccess models the load's cache access (with store forwarding) and
// returns the value-ready cycle.
func (m *machine) loadAccess(u *uop, memCycle int64) int64 {
	// Find the youngest older resolved store to the same word.
	h := &m.hot
	word := u.memAddr >> 2
	var match *uop
	for i := m.inflightStores.len() - 1; i >= 0; i-- {
		st := m.inflightStores.at(i)
		if st.seq >= u.seq {
			continue
		}
		if st.memAddr>>2 != word {
			continue
		}
		if h.issue[st.slot] >= 0 && h.resolve[st.slot] <= memCycle {
			match = st
		}
		break // only the youngest older same-word store matters
	}
	if match != nil {
		u.forwardedFrom = match
		if m.prof != nil && memCycle < match.fwdConsExec {
			match.fwdConsExec = memCycle
		}
		m.noteConsumerOfHandle(h.issue[u.slot], matchRoot(match))
		return memCycle + 1 // SQ forwarding latency
	}
	return m.hier.AccessD(memCycle, u.memAddr, false)
}

// matchRoot exists for symmetry: forwarding producers are uops already.
func matchRoot(s *uop) *uop { return s }

// loadIssueChecks schedules a future memory-ordering violation if an older
// same-address store has issued but resolves only after this load's access.
func (m *machine) loadIssueChecks(u *uop) {
	h := &m.hot
	word := u.memAddr >> 2
	for i := m.inflightStores.len() - 1; i >= 0; i-- {
		st := m.inflightStores.at(i)
		if st.seq >= u.seq || st.memAddr>>2 != word {
			continue
		}
		if h.issue[st.slot] >= 0 && h.resolve[st.slot] > u.memCycle {
			m.pendingViol = append(m.pendingViol, violation{atCycle: h.resolve[st.slot], load: u, store: st})
		}
		break
	}
}

// storeIssueChecks detects younger loads that already executed past this
// store (they read stale data): a violation fires when the store resolves.
func (m *machine) storeIssueChecks(u *uop) {
	h := &m.hot
	res := h.resolve[u.slot]
	word := u.memAddr >> 2
	for i := 0; i < m.inflightLoads.len(); i++ {
		l := m.inflightLoads.at(i)
		if l.seq <= u.seq || h.issue[l.slot] < 0 {
			continue
		}
		if l.memAddr>>2 != word || l.memCycle >= res {
			continue
		}
		// The load read memory (or an older store) before this store's
		// data existed. If it forwarded from a store younger than u, it is
		// still correct.
		if f := l.forwardedFrom; f != nil && f.seq > u.seq {
			continue
		}
		m.pendingViol = append(m.pendingViol, violation{atCycle: res, load: l, store: u})
	}
}

// --- memory-ordering violations ---

func (m *machine) checkViolations() {
	if len(m.pendingViol) == 0 {
		return
	}
	h := &m.hot
	var fire *violation
	kept := m.pendingViol[:0]
	for i := range m.pendingViol {
		v := &m.pendingViol[i]
		if h.squashed[v.load.slot] || h.squashed[v.store.slot] {
			continue
		}
		if v.atCycle <= m.cycle {
			if fire == nil || v.load.seq < fire.load.seq {
				if fire != nil {
					kept = append(kept, *fire)
				}
				fire = v
				continue
			}
		}
		kept = append(kept, *v)
	}
	m.pendingViol = kept
	if fire == nil {
		return
	}
	m.stats.MemOrderFlushes++
	if m.watch != nil && m.watch.Trace != nil {
		m.watch.Trace.Event(m.cycle, obs.EvFlush, -1, fire.load.seq)
	}
	if debugViolationHook != nil {
		debugViolationHook(m.loadPC(fire.load), m.storePC(fire.store))
	}
	m.ss.Violation(m.loadPC(fire.load), m.storePC(fire.store))
	m.flushFrom(fire.load)
}

// flushFrom squashes the violating load and everything younger, restoring
// rename state, and redirects fetch to refetch from the load.
func (m *machine) flushFrom(v *uop) {
	h := &m.hot
	// Squash fetchQ and pending items entirely (all younger than v).
	m.squashScratch = m.squashScratch[:0]
	for i := 0; i < m.fetchQ.len(); i++ {
		u := m.fetchQ.at(i)
		h.squashed[u.slot] = true
		m.squashScratch = append(m.squashScratch, u)
	}
	m.fetchQ.clear()
	m.fetchPending.clear()

	// Squash window uops young -> old.
	cut := m.window.len()
	for i := m.window.len() - 1; i >= 0; i-- {
		u := m.window.at(i)
		if u.seq < v.seq {
			break
		}
		cut = i
		h.squashed[u.slot] = true
		m.squashScratch = append(m.squashScratch, u)
		if m.sched != SchedScan && h.issue[u.slot] < 0 {
			// Unissued: leave no event-scheduler references behind. Uops
			// waiting on a producer are scrubbed from its wakeup list;
			// ready-queue entries are purged wholesale below.
			m.iqCount--
			m.unregisterWaiter(u)
		}
		if u.writesReg {
			if m.lastWriter[u.dstReg] == u {
				m.lastWriter[u.dstReg] = u.prevWriter
			}
			m.freeRegs++
		}
		if u.isLoad {
			m.lqUsed--
			removeInflight(&m.inflightLoads, u)
		}
		if u.isStore {
			m.sqUsed--
			removeInflight(&m.inflightStores, u)
			m.ss.CompleteStore(m.storePC(u), u.seq)
		}
	}
	m.window.truncBack(cut)

	// Purge squashed uops from the IQ and violation list.
	if m.sched == SchedScan {
		kept := m.iq[:0]
		for _, u := range m.iq {
			if !h.squashed[u.slot] {
				kept = append(kept, u)
			}
		}
		m.iq = kept
	} else {
		m.purgeReadyQ()
	}
	keptV := m.pendingViol[:0]
	for _, pv := range m.pendingViol {
		if !h.squashed[pv.load.slot] && !h.squashed[pv.store.slot] {
			keptV = append(keptV, pv)
		}
	}
	m.pendingViol = keptV
	if m.pendingBranch != nil && h.squashed[m.pendingBranch.slot] {
		m.pendingBranch = nil
	}
	m.curBBHead = nil

	// Redirect fetch: refetch from the load's first trace record.
	m.fetchIdx = v.traceIdx
	if m.fetchStall < m.cycle+1 {
		m.fetchStall = m.cycle + 1
	}

	if m.emitUops {
		for _, u := range m.squashScratch {
			m.observeUop(u, m.cycle, true)
		}
	}

	// Squashed uops are dead immediately: they were the youngest suffix, so
	// no surviving uop can hold a pointer to one (srcProd, waitStore and
	// forwardedFrom all point at strictly older uops), and every structure
	// that indexed them (IQ, violations, rename table, pendingBranch) was
	// purged above. Profiling runs keep them: consumer lists reference
	// squashed uops until drain.
	if m.recycle {
		m.freeUops = append(m.freeUops, m.squashScratch...)
		m.squashScratch = m.squashScratch[:0]
	}
}

// --- rename ---

func (m *machine) rename() {
	for n := 0; n < m.cfg.FetchWidth && m.fetchQ.len() > 0; n++ {
		u := m.fetchQ.at(0)
		if u.renameReady > m.cycle {
			return
		}
		// Structural resources (the check order is shared with the event
		// scheduler's bulk stall accounting; see renameStallCounter).
		if ctr := m.renameStallCounter(u); ctr != nil {
			*ctr++
			return
		}
		m.fetchQ.popFront()
		u.renameCycle = m.cycle
		h := &m.hot
		s := u.slot
		// First cycle issue sees a renamed uop (replay back-off raises it).
		h.earliest[s] = m.cycle + 1

		// Dataflow linking.
		for i := 0; i < u.nSrc; i++ {
			if p := m.lastWriter[u.srcReg[i]]; p != nil {
				h.srcs[s][i] = p.slot
			}
		}
		if u.writesReg {
			u.prevWriter = m.lastWriter[u.dstReg]
			m.lastWriter[u.dstReg] = u
			m.freeRegs--
		}
		if u.isLoad {
			m.lqUsed++
			m.inflightLoads.pushBack(u)
			if tag := m.ss.RenameLoad(m.loadPC(u)); tag >= 0 {
				if st := m.findInflightStore(tag); st != nil {
					h.waitSlot[s] = st.slot
				}
			}
		}
		if u.isStore {
			m.sqUsed++
			m.inflightStores.pushBack(u)
			if prev := m.ss.RenameStore(m.storePC(u), u.seq); prev >= 0 {
				if st := m.findInflightStore(prev); st != nil {
					h.waitSlot[s] = st.slot
				}
			}
		}

		// Basic-block head tracking for slack profiling.
		if m.prof != nil && u.kind != kindOverheadJump {
			if m.p.Blocks[m.p.BlockOf[u.static]].Start == u.static || m.curBBHead == nil {
				m.curBBHead = u
			}
			u.bbHead = m.curBBHead
		}

		m.window.pushBack(u)
		if m.sched == SchedScan {
			m.iq = append(m.iq, u)
		} else {
			m.admitEvent(u)
		}
	}
}

// --- fetch ---

func (m *machine) fetch() {
	if m.pendingBranch != nil || m.cycle < m.fetchStall {
		return
	}
	if m.fetchQ.len() >= m.cfg.FetchWidth*8 {
		return
	}
	var curLine uint32 = math.MaxUint32
	for n := 0; n < m.cfg.FetchWidth; n++ {
		var it fetchItem
		direct := false // it came straight from prepareNext, not the ring
		if m.fetchPending.len() > 0 {
			it = m.fetchPending.at(0)
		} else if m.prepareNext(&it) {
			direct = true
		} else {
			return
		}
		// Instruction cache access, one per line per cycle.
		line := it.addr >> 5
		if line != curLine {
			done := m.hier.AccessI(m.cycle, it.addr)
			if done > m.cycle+int64(m.cfg.Hier.L1I.Latency) {
				// Miss: stall fetch until the line arrives.
				m.fetchStall = done
				if direct {
					m.fetchPending.pushFront(it)
				}
				return
			}
			curLine = line
		}
		if !direct {
			m.fetchPending.popFront()
		}
		u := m.makeUop(it)
		m.fetchQ.pushBack(u)
		if u.mispred {
			m.pendingBranch = u
			return
		}
		if it.endsGroup {
			return
		}
	}
}

// prepareNext converts the next trace record(s) into fetch items, writing
// the first into *it — the common singleton/handle case never round-trips
// through the pending ring (or a return-value copy) — and queueing any
// remainder (outlined mini-graph expansions). Returns false when the trace
// is exhausted. Only called with an empty pending ring.
func (m *machine) prepareNext(it *fetchItem) bool {
	if m.fetchIdx >= len(m.tr) {
		return false
	}
	rec := m.tr[m.fetchIdx]
	static := int(rec.Index)

	if m.mgc.Enabled() {
		if inst := m.mgc.Selection.InstanceAt(static); inst != nil && m.fetchIdx+inst.N <= len(m.tr) {
			if m.mon != nil && m.mon.isDisabled(inst.Template) {
				if m.mgc.IdealOutlining {
					m.prepareInlineSingletons(inst)
				} else {
					m.prepareOutlined(inst)
				}
				*it = m.fetchPending.popFront()
				return true
			}
			last := m.tr[m.fetchIdx+inst.N-1]
			*it = fetchItem{
				kind:      kindHandle,
				static:    static,
				traceIdx:  m.fetchIdx,
				nRecs:     inst.N,
				addr:      m.layout.InlineAddr(static),
				mg:        inst,
				endsGroup: inst.Cand.CtrlIdx >= 0 && last.Taken,
			}
			m.fetchIdx += inst.N
			return true
		}
	}

	*it = fetchItem{
		kind:      kindSingleton,
		static:    static,
		traceIdx:  m.fetchIdx,
		nRecs:     1,
		addr:      m.layout.InlineAddr(static),
		endsGroup: rec.Taken,
	}
	m.fetchIdx++
	return true
}

// prepareOutlined queues the outlined (disabled) execution of a mini-graph:
// jump to the outline region, the constituents as singletons, and a jump
// back (unless the final constituent is a taken branch).
func (m *machine) prepareOutlined(inst *minigraph.Instance) {
	start := inst.Start
	m.fetchPending.pushBack(fetchItem{
		kind:      kindOverheadJump,
		static:    start,
		traceIdx:  m.fetchIdx,
		nRecs:     0,
		addr:      m.layout.InlineAddr(start),
		mg:        inst,
		endsGroup: true, // the outlining jump is always taken
	})
	lastTaken := false
	for k := 0; k < inst.N; k++ {
		rec := m.tr[m.fetchIdx+k]
		ends := rec.Taken
		if k == inst.N-1 {
			lastTaken = rec.Taken
		}
		m.fetchPending.pushBack(fetchItem{
			kind:      kindSingleton,
			static:    inst.Start + k,
			traceIdx:  m.fetchIdx + k,
			nRecs:     1,
			addr:      m.layout.OutlineAddr(inst.Start + k),
			endsGroup: ends,
		})
	}
	if !lastTaken {
		m.fetchPending.pushBack(fetchItem{
			kind:      kindOverheadJump,
			static:    start,
			traceIdx:  m.fetchIdx + inst.N - 1,
			nRecs:     0,
			addr:      m.layout.JumpBackAddr(start),
			mg:        inst,
			endsGroup: true,
		})
	}
	m.fetchIdx += inst.N
}

// prepareInlineSingletons queues ideal (penalty-free) disabled execution:
// the constituents as inline singletons.
func (m *machine) prepareInlineSingletons(inst *minigraph.Instance) {
	for k := 0; k < inst.N; k++ {
		rec := m.tr[m.fetchIdx+k]
		m.fetchPending.pushBack(fetchItem{
			kind:      kindSingleton,
			static:    inst.Start + k,
			traceIdx:  m.fetchIdx + k,
			nRecs:     1,
			addr:      m.layout.InlineAddr(inst.Start), // share the handle slot
			endsGroup: rec.Taken,
		})
	}
	m.fetchIdx += inst.N
}

// uopSlabSize is how many uops one arena allocation holds.
const uopSlabSize = 256

// newUop returns a fully zeroed uop, from the free list when recycling has
// returned one, else carving a fresh arena slab (which also extends the
// hotState arrays with the new slots). Total live uops are bounded by the
// window, fetch queue and retired queue, so steady state allocates nothing.
func (m *machine) newUop() *uop {
	if n := len(m.freeUops); n > 0 {
		u := m.freeUops[n-1]
		m.freeUops = m.freeUops[:n-1]
		slot := u.slot
		*u = uop{slot: slot} // full reset: recycled uops carry no history
		return u
	}
	base := len(m.hot.uops)
	m.hot.grow(uopSlabSize)
	slab := make([]uop, uopSlabSize)
	for i := range slab {
		slab[i].slot = int32(base + i)
		m.hot.uops[base+i] = &slab[i]
	}
	for i := 1; i < len(slab); i++ {
		m.freeUops = append(m.freeUops, &slab[i])
	}
	return &slab[0]
}

// makeUop builds the uop for a fetch item, running branch prediction, and
// re-initializes the uop's hotState slot.
func (m *machine) makeUop(it fetchItem) *uop {
	u := m.newUop()
	u.seq = m.seq
	u.traceIdx = it.traceIdx
	u.nRecs = it.nRecs
	u.static = it.static
	u.kind = it.kind
	u.mg = it.mg
	u.fetchCycle = m.cycle
	u.renameReady = m.cycle + int64(m.cfg.FetchToRename)
	u.renameCycle = -1
	u.minConsIss = never
	u.fwdConsExec = never
	m.seq++

	// Re-arm only the hot fields a reused slot could expose stale: issue
	// gates every read of execDone/readyOut/resolve (all written at execute),
	// earliest is written at rename before any read, waitCnt is assigned by
	// admitEvent, specReady reads are gated on singleton-load producers, and
	// wakeHead/link are -1 by invariant whenever a slot is free (broadcast
	// drains wake chains; the wheel and purge reset links).
	h := &m.hot
	s := u.slot
	h.seq[s] = u.seq
	h.issue[s] = -1
	h.waitSlot[s] = -1
	h.srcs[s] = [3]int32{-1, -1, -1}
	h.squashed[s] = false
	h.committed[s] = false

	switch it.kind {
	case kindOverheadJump:
		u.class = isa.ClassJump
		u.op = isa.OpBr
		m.predictOverheadJump(u, it)
		h.meta[s] = packMeta(u)
		return u
	case kindHandle:
		c := it.mg.Cand
		u.class = isa.ClassSimple
		u.op = m.p.Code[it.static].Op
		for i, r := range c.ExternalIns {
			u.srcReg[i] = r
		}
		u.nSrc = len(c.ExternalIns)
		if c.OutputReg != isa.NoReg {
			u.writesReg = true
			u.dstReg = c.OutputReg
		}
		if c.MemIdx >= 0 {
			in := m.p.Code[it.static+c.MemIdx]
			u.isLoad = in.IsLoad()
			u.isStore = in.IsStore()
			u.memAddr = m.tr[it.traceIdx+c.MemIdx].Addr
		}
		if c.CtrlIdx >= 0 {
			u.hasBranch = true
			brStatic := it.static + c.CtrlIdx
			brRec := m.tr[it.traceIdx+c.CtrlIdx]
			m.predictBranch(u, brStatic, brRec)
		}
		h.meta[s] = packMeta(u)
		return u
	}

	in := m.p.Code[it.static]
	rec := m.tr[it.traceIdx]
	u.op = in.Op
	u.class = isa.ClassOf(in.Op)
	u.nSrc = len(in.AppendSources(u.srcReg[:0]))
	if in.WritesReg() {
		u.writesReg = true
		u.dstReg = in.Rd
	}
	if in.IsMem() {
		u.isLoad = in.IsLoad()
		u.isStore = in.IsStore()
		u.memAddr = rec.Addr
	}
	if in.IsBranch() {
		u.hasBranch = true
		m.predictBranch(u, it.static, rec)
	}
	h.meta[s] = packMeta(u)
	return u
}

// predictBranch runs the front-end predictors for a control transfer at
// fetch time and marks the uop mispredicted when the machine would have
// fetched down the wrong path.
func (m *machine) predictBranch(u *uop, static int, rec emu.Rec) {
	in := m.p.Code[static]
	pc := prog.PCOf(static)
	actualTaken := rec.Taken
	u.actualTkn = actualTaken
	actualNext := int(rec.Next)

	switch {
	case in.IsCondBranch():
		pred := m.bp.PredictDirection(pc)
		m.bp.UpdateDirection(pc, actualTaken)
		if pred != actualTaken {
			u.mispred = true
			return
		}
		if actualTaken {
			m.predictTakenTarget(u, pc, actualNext, false)
		}
	case in.Op == isa.OpBr:
		m.predictTakenTarget(u, pc, actualNext, true)
	case in.Op == isa.OpJsr:
		m.bp.PushRAS(prog.PCOf(static + 1))
		m.predictTakenTarget(u, pc, actualNext, true)
	case in.Op == isa.OpJsrI:
		m.bp.PushRAS(prog.PCOf(static + 1))
		m.predictTakenTarget(u, pc, actualNext, false)
	case in.IsReturn():
		top, ok := m.bp.PopRAS()
		if !ok || (actualNext >= 0 && top != prog.PCOf(actualNext)) {
			u.mispred = true
			m.bp.NoteRASWrong()
			m.stats.RASMispredicts++
		}
	default: // indirect jmp
		m.predictTakenTarget(u, pc, actualNext, false)
	}
}

// predictTakenTarget models BTB behavior for a taken transfer. Direct
// transfers recover a BTB miss at decode (a 2-cycle fetch bubble); indirect
// transfers mispredict on a BTB miss or wrong target.
func (m *machine) predictTakenTarget(u *uop, pc uint32, actualNext int, direct bool) {
	if actualNext < 0 {
		return
	}
	want := prog.PCOf(actualNext)
	got, ok := m.bp.PredictTarget(pc)
	m.bp.UpdateTarget(pc, want)
	if ok && got == want {
		return
	}
	if direct {
		// Decode-time target computation: small fetch bubble.
		if m.fetchStall < m.cycle+2 {
			m.fetchStall = m.cycle + 2
		}
		return
	}
	u.mispred = true
}

// predictOverheadJump models the outlining jumps: direct, always taken.
func (m *machine) predictOverheadJump(u *uop, it fetchItem) {
	pc := it.addr
	if got, ok := m.bp.PredictTarget(pc); !ok || got == 0 {
		if m.fetchStall < m.cycle+2 {
			m.fetchStall = m.cycle + 2
		}
	}
	m.bp.UpdateTarget(pc, pc+4)
}

// --- slack profiling ---

// maxTrackedConsumers caps per-value consumer edges recorded for the
// global-slack pass (capping can only overestimate global slack).
const maxTrackedConsumers = 16

func (m *machine) drainProfile() {
	if m.prof == nil {
		return
	}
	// Reverse pass over the committed stream: global slack of a value is
	// the delay it tolerates without lengthening the whole execution,
	// propagated through the dataflow graph. Consumers are younger and
	// commit later, so a single reverse sweep sees every consumer's global
	// slack before its producers'.
	h := &m.hot
	for i := len(m.profFIFO) - 1; i >= 0; i-- {
		u := m.profFIFO[i]
		gs := int64(slack.BigSlack)
		if u.hasBranch && u.mispred {
			gs = 0 // delaying a mispredicted branch delays everything
		}
		for _, c := range u.consumers {
			if h.squashed[c.slot] || h.issue[c.slot] < 0 {
				continue
			}
			edge := h.issue[c.slot] - h.readyOut[u.slot]
			if edge < 0 {
				edge = 0
			}
			if v := edge + c.gslack; v < gs {
				gs = v
			}
		}
		u.gslack = gs
	}
	for _, u := range m.profFIFO {
		m.foldProfile(u)
	}
	m.profFIFO = nil
}

// foldProfile converts a committed uop's timing into a slack Observation.
// Profiling runs are singleton runs, so every uop maps to one static
// instruction.
func (m *machine) foldProfile(u *uop) {
	if u.kind != kindSingleton || u.bbHead == nil {
		return
	}
	h := &m.hot
	s := u.slot
	base := float64(h.issue[u.bbHead.slot])
	in := m.p.Code[u.static]

	obs := slack.Observation{
		Issue:       float64(h.issue[s]) - base,
		Ready:       float64(h.readyOut[s]) - base,
		ExecLat:     float64(h.execDone[s] - h.issue[s] - int64(m.cfg.IssueToExec)),
		Src1Ready:   slack.NaN(),
		Src2Ready:   slack.NaN(),
		RegSlack:    slack.NaN(),
		StoreSlack:  slack.NaN(),
		BranchSlack: slack.NaN(),
	}
	// Map the uop's dynamic sources back to the instruction's operand slots.
	slot := 0
	if in.Rs1 != isa.NoReg && in.Rs1 != isa.ZeroReg && in.Rs1.Valid() {
		obs.Src1Ready = float64(u.srcReadyC[slot]) - base
		slot++
	}
	if in.Rs2 != isa.NoReg && in.Rs2 != isa.ZeroReg && in.Rs2.Valid() {
		obs.Src2Ready = float64(u.srcReadyC[slot]) - base
	}
	obs.GlobalRegSlack = slack.NaN()
	if u.writesReg {
		obs.GlobalRegSlack = math.Min(float64(u.gslack), slack.BigSlack)
		if u.minConsIss == never {
			obs.RegSlack = slack.BigSlack
		} else {
			sl := float64(u.minConsIss - h.readyOut[s])
			if sl < 0 {
				sl = 0
			}
			obs.RegSlack = math.Min(sl, slack.BigSlack)
		}
	}
	if u.isStore {
		if u.fwdConsExec == never {
			obs.StoreSlack = slack.BigSlack
		} else {
			sl := float64(u.fwdConsExec - h.resolve[s])
			if sl < 0 {
				sl = 0
			}
			obs.StoreSlack = math.Min(sl, slack.BigSlack)
		}
	}
	if u.hasBranch {
		if u.mispred {
			obs.BranchSlack = 0
		} else {
			obs.BranchSlack = slack.BigSlack
		}
	}
	m.prof.Add(u.static, obs)
}

// --- observability hooks (see internal/obs) ---

var uopKindNames = [...]string{
	kindSingleton:    "singleton",
	kindHandle:       "handle",
	kindOverheadJump: "ovh-jump",
}

// observeUop builds the pipetrace record for u at commit (cycle = commit
// cycle) or squash (squashed = true, no commit cycle) and feeds every
// active uop sink: the pipetrace writer and/or the flight-recorder ring.
// Only called when emitUops is set. Neither sink retains the record's
// Srcs slice, which aliases the machine's scratch array.
func (m *machine) observeUop(u *uop, cycle int64, squashed bool) {
	h := &m.hot
	s := u.slot
	r := obs.UopTrace{
		Seq:      u.seq,
		Static:   u.static,
		Kind:     uopKindNames[u.kind],
		Op:       u.op.String(),
		N:        u.nRecs,
		Fetch:    u.fetchCycle,
		Rename:   u.renameCycle,
		Issue:    h.issue[s],
		Done:     h.execDone[s],
		Ready:    h.readyOut[s],
		Commit:   cycle,
		Replays:  int(u.replays),
		Mispred:  u.mispred,
		Squashed: squashed,

		Dst:    -1,
		Tmpl:   -1,
		SerLat: u.serLat,
		SerOut: u.serOut,
		MemLat: u.memLat,
		SerExt: u.serExt,
	}
	if u.writesReg {
		r.Dst = int(u.dstReg)
	}
	if u.nSrc > 0 {
		r.Srcs = m.obsSrcs[:u.nSrc]
		for i := 0; i < u.nSrc; i++ {
			r.Srcs[i] = int(u.srcReg[i])
		}
	}
	if u.kind == kindHandle {
		r.Tmpl = u.mg.Template
	}
	switch {
	case u.isLoad:
		r.Mem = obs.MemLoad
	case u.isStore:
		r.Mem = obs.MemStore
	}
	if r.Mem != obs.MemNone && h.issue[s] >= 0 {
		r.Addr = u.memAddr
	}
	// Singleton loads: cycles beyond the L1-hit wakeup the consumers saw
	// (specReady is capped at readyOut, so this is never negative).
	if u.kind != kindHandle && u.isLoad && h.issue[s] >= 0 {
		r.MemLat = h.readyOut[s] - h.specReady[s]
	}
	if squashed {
		r.Commit = -1
	}
	if h.issue[s] < 0 {
		r.Done, r.Ready = -1, -1
	}
	if m.watch != nil && m.watch.Trace != nil {
		m.watch.Trace.Uop(r)
	}
	if m.flight != nil {
		m.flight.RecordUop(m.flightRun, &r)
	}
}

// sampleInterval records a time-series sample when the current cycle is a
// sampling point. Called once per cycle when an observer is attached.
func (m *machine) sampleInterval() {
	iv := m.watch.Intervals
	if iv == nil || !iv.Due(m.cycle) {
		return
	}
	iv.Sample(m.snapshot())
}

// snapshot captures the cumulative counters and instantaneous occupancies
// the interval sampler differentiates.
func (m *machine) snapshot() obs.CycleSnapshot {
	disabled := 0
	if m.mon != nil {
		disabled = m.mon.disabledCount()
	}
	return obs.CycleSnapshot{
		Cycle:          m.cycle,
		Instrs:         m.stats.Instrs,
		Uops:           m.stats.Uops,
		EmbeddedInstrs: m.stats.EmbeddedInstrs,

		StallIQ:   m.stats.StallIQ,
		StallROB:  m.stats.StallROB,
		StallRegs: m.stats.StallRegs,
		StallLQ:   m.stats.StallLQ,
		StallSQ:   m.stats.StallSQ,

		Replays:    m.stats.Replays,
		Serialized: m.stats.MGSerializedEvents,
		Harmful:    m.stats.MGHarmfulEvents,
		Disables:   m.stats.MGDisables,
		Reenables:  m.stats.MGReenables,

		IQOcc:             m.iqLen(),
		ROBOcc:            m.window.len(),
		LQOcc:             m.lqUsed,
		SQOcc:             m.sqUsed,
		FreeRegs:          m.freeRegs,
		DisabledTemplates: disabled,
	}
}

// RunDebugViolations is a diagnostic entry point: it runs like Run (no
// mini-graphs, no profiling) and invokes cb for every memory-ordering
// violation's (load PC, store PC) pair.
func RunDebugViolations(p *prog.Program, tr []emu.Rec, cfg Config, cb func(loadPC, storePC uint32)) (*Stats, error) {
	debugViolationHook = cb
	defer func() { debugViolationHook = nil }()
	return Run(p, tr, cfg, MGConfig{}, nil)
}

var debugViolationHook func(loadPC, storePC uint32)
