package pipeline

import (
	"math"
	"strings"
	"testing"
)

func TestStatsDerivedMetricsZeroCycles(t *testing.T) {
	// The zero value must report zeros, not NaN: derived metrics are
	// printed before any guard in callers.
	var s Stats
	if got := s.IPC(); got != 0 {
		t.Errorf("IPC of zero stats = %v, want 0", got)
	}
	if got := s.UPC(); got != 0 {
		t.Errorf("UPC of zero stats = %v, want 0", got)
	}
	if got := s.Coverage(); got != 0 {
		t.Errorf("Coverage of zero stats = %v, want 0", got)
	}
}

func TestStatsDerivedMetricsZeroInstrs(t *testing.T) {
	// Cycles elapsed but nothing committed (e.g. a run squashed to death):
	// rates are 0, never a division by the zero instruction count.
	s := Stats{Cycles: 100}
	if got := s.IPC(); got != 0 {
		t.Errorf("IPC = %v, want 0", got)
	}
	if got := s.Coverage(); got != 0 || math.IsNaN(got) {
		t.Errorf("Coverage = %v, want 0", got)
	}
}

func TestStatsDerivedMetricsValues(t *testing.T) {
	s := Stats{Cycles: 200, Instrs: 100, Uops: 50, EmbeddedInstrs: 80}
	if got := s.IPC(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("IPC = %v, want 0.5", got)
	}
	if got := s.UPC(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("UPC = %v, want 0.25", got)
	}
	if got := s.Coverage(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Coverage = %v, want 0.8", got)
	}
}

func TestStatsStringSlackDynamicBlock(t *testing.T) {
	// The slack-dynamic line appears exactly when the monitor saw activity.
	quiet := Stats{Cycles: 10, Instrs: 10, Uops: 10}
	if strings.Contains(quiet.String(), "slack-dynamic:") {
		t.Errorf("quiet stats should omit the slack-dynamic block:\n%s", quiet.String())
	}
	serialized := Stats{Cycles: 10, Instrs: 10, Uops: 10, MGSerializedEvents: 3, MGHarmfulEvents: 1}
	if out := serialized.String(); !strings.Contains(out, "slack-dynamic: serialized=3 harmful=1 disables=0 reenables=0") {
		t.Errorf("missing slack-dynamic block:\n%s", out)
	}
	disabled := Stats{Cycles: 10, Instrs: 10, Uops: 10, MGDisables: 2, MGReenables: 1}
	if out := disabled.String(); !strings.Contains(out, "disables=2 reenables=1") {
		t.Errorf("disable-only activity must still show the block:\n%s", out)
	}
}
