package pipeline

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/prog"
)

// TestHandleStoreForwardsToLoad: a mini-graph containing a store followed
// closely by a same-address load must interact correctly with the LSQ
// (forwarding or ordering, never a flush storm, and exact commit counts).
func TestHandleStoreForwardsToLoad(t *testing.T) {
	b := prog.NewBuilder("mgfwd")
	slot := b.Space(4)
	b.Li(9, slot)
	b.Li(1, 400)
	b.Label("loop")
	start := b.Pos()
	// Window: [addi; xori; stw] — a store mini-graph.
	b.Addi(2, 2, 1)
	b.Xori(2, 2, 0x55)
	b.Stw(2, 9, 0)
	// Immediately load it back.
	b.Ldw(3, 9, 0)
	b.Add(0, 0, 3)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	p := b.MustBuild()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	sel := selectOnly(t, p, res.Trace, start, 3)
	st, err := Run(p, res.Trace, Reduced(), MGConfig{Selection: sel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instrs != int64(len(res.Trace)) {
		t.Errorf("instrs %d != trace %d", st.Instrs, len(res.Trace))
	}
	if st.Handles == 0 {
		t.Fatal("the store mini-graph never executed as a handle")
	}
	if st.MemOrderFlushes > 40 {
		t.Errorf("flush storm through the mini-graph store: %d", st.MemOrderFlushes)
	}
}

// TestHandleLoadInMG: a mini-graph containing a load must respect StoreSets
// ordering against older singleton stores.
func TestHandleLoadInMG(t *testing.T) {
	b := prog.NewBuilder("mgld")
	slot := b.Space(4)
	b.Li(9, slot)
	b.Li(1, 400)
	b.Label("loop")
	b.Addi(2, 2, 3)
	b.Stw(2, 9, 0) // singleton store
	start := b.Pos()
	// Window: [ldw; addi; xori] — a load mini-graph consuming the store.
	b.Ldw(3, 9, 0)
	b.Addi(3, 3, 1)
	b.Xori(3, 3, 0x0f)
	b.Add(0, 0, 3)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	p := b.MustBuild()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	sel := selectOnly(t, p, res.Trace, start, 3)
	st, err := Run(p, res.Trace, Reduced(), MGConfig{Selection: sel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Handles == 0 {
		t.Fatal("the load mini-graph never executed as a handle")
	}
	if st.MemOrderFlushes > 40 {
		t.Errorf("StoreSets failed to order the mini-graph load: %d flushes", st.MemOrderFlushes)
	}
	if st.Instrs != int64(len(res.Trace)) {
		t.Errorf("instrs %d != trace %d", st.Instrs, len(res.Trace))
	}
}

// TestReplaysOccurOnlyWithMisses: a purely cache-resident loop must not
// replay; a miss-heavy one must.
func TestReplaysOccurOnlyWithMisses(t *testing.T) {
	hot := prog.NewBuilder("hot")
	slot := hot.Space(64)
	hot.Li(9, slot)
	hot.Li(1, 500)
	hot.Label("loop")
	hot.Ldw(2, 9, 0)
	hot.Add(0, 0, 2) // immediate consumer: wakes speculatively
	hot.Subi(1, 1, 1)
	hot.Bnez(1, "loop")
	hot.Halt()
	p := hot.MustBuild()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(p, res.Trace, Baseline(), MGConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// After warmup the slot is L1-resident: replays only from the cold miss.
	if st.Replays > 10 {
		t.Errorf("hot loop replayed %d times", st.Replays)
	}

	// The pointer-chase pattern misses constantly and must replay.
	cold := prog.NewBuilder("cold")
	n := 16384 // words: 64KB, exceeds the 32KB L1
	next := make([]uint32, n)
	for i := range next {
		next[i] = uint32((i + 4099) % n) // co-prime stride: cycles all slots
	}
	arr := cold.Words(next...)
	cold.Li(9, arr)
	cold.Li(1, 3000)
	cold.Li(2, 0)
	cold.Label("loop")
	cold.Slli(3, 2, 2)
	cold.Add(3, 3, 9)
	cold.Ldw(2, 3, 0)
	cold.Add(0, 0, 2) // dependent consumer: replays on every miss
	cold.Subi(1, 1, 1)
	cold.Bnez(1, "loop")
	cold.Halt()
	pc := cold.MustBuild()
	resC, err := emu.Run(pc, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	stC, err := Run(pc, resC.Trace, Baseline(), MGConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stC.L1DMissRate < 0.3 {
		t.Fatalf("test needs misses, L1D miss rate %.2f", stC.L1DMissRate)
	}
	if stC.Replays < 500 {
		t.Errorf("miss-heavy loop replayed only %d times", stC.Replays)
	}
}
