package pipeline

import (
	"sync"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/storesets"
)

// Machine pooling. A machine's backing state — caches, predictor tables,
// rings, slot arrays, uop slabs — depends only on its Config, and a full
// simulation run leaves all of it allocated at steady-state size. Pooling
// finished machines per Config and resetting them in place makes repeated
// runs (sweeps, sampled windows, benchmarks) allocation-free after the
// first: RunSched draws from the pool, simulates, copies the stats out and
// returns the machine.
//
// Correctness does not ride on which pooled machine a run gets: no
// simulated outcome depends on slot numbering or pointer identity (the
// ready heap orders by (wake, seq), issue candidates sort by seq), and
// reset restores every field makeUop does not, so a reused machine is
// indistinguishable from a fresh one. TestMachineReuseDeterministic holds
// this invariant.
var machinePools sync.Map // Config -> *sync.Pool of *machine

// poolableSlots bounds the slot-array size a machine may retain in the
// pool. Recycling keeps normal runs well under the initial capacity;
// profiling runs (no recycling) grow a slab per ~256 uops and would pin
// megabytes, so they are simulated and dropped.
const poolableSlots = 4096

func getMachine(cfg Config) *machine {
	if pi, ok := machinePools.Load(cfg); ok {
		if m, _ := pi.(*sync.Pool).Get().(*machine); m != nil {
			m.reset()
			return m
		}
	}
	return newMachine(cfg)
}

// putMachine returns a successfully-finished machine to its Config's pool.
// Per-run references (program, trace, observer, profile, layout) are
// dropped first so pooling a machine never extends their lifetime.
func putMachine(m *machine) {
	if len(m.hot.uops) > poolableSlots {
		return
	}
	m.p = nil
	m.tr = nil
	m.watch = nil
	m.flight = nil
	m.flightRun = ""
	m.emitUops = false
	m.prof = nil
	m.mon = nil
	m.layout = nil
	m.mgc = MGConfig{}
	pi, _ := machinePools.LoadOrStore(m.cfg, &sync.Pool{})
	pi.(*sync.Pool).Put(m)
}

// newMachine builds a machine with every queue sized from the config up
// front: the structural-hazard checks in rename and fetch bound their
// occupancy, so the hot loop never grows them. Both schedulers' structures
// are allocated so a pooled machine can serve either.
func newMachine(cfg Config) *machine {
	m := &machine{
		cfg:      cfg,
		hier:     cache.NewHierarchy(cfg.Hier),
		bp:       bpred.New(cfg.Bpred),
		ss:       storesets.New(cfg.StoreSetEntries),
		freeRegs: cfg.PhysRegs - isa.NumRegs,

		fetchPending:   newRing[fetchItem](8),
		fetchQ:         newRing[*uop](cfg.FetchWidth * 9),
		window:         newRing[*uop](cfg.ROBEntries),
		inflightLoads:  newRing[*uop](cfg.LQEntries),
		inflightStores: newRing[*uop](cfg.SQEntries),
		pendingViol:    make([]violation, 0, 16),
		retired:        newRing[*uop](cfg.ROBEntries),

		iq:           make([]*uop, 0, cfg.IQEntries),
		readyQ:       make([]readyEnt, 0, cfg.IQEntries),
		readyNext:    make([]int32, 0, cfg.IQEntries),
		issueScratch: make([]int32, 0, cfg.IQEntries),
		// A consumer waits on at most four producers (three sources plus a
		// StoreSets store), and waiters are a subset of the issue queue.
		wakeNodes: make([]wakeNode, 0, 4*cfg.IQEntries),
		wakeFree:  -1,
	}
	// Size the slot arrays for the worst-case live-uop count: the window
	// and retired queue (ROB each), the fetch queue, parked register
	// writers, and slack for transients. Recycling keeps runs inside it.
	m.hot = newHotState(cfg.ROBEntries*2 + cfg.FetchWidth*9 + isa.NumRegs + 64)
	for i := range m.wheelHead {
		m.wheelHead[i] = -1
	}
	return m
}

// reset restores a pooled machine to its post-newMachine state. Everything
// makeUop re-initializes per slot is left stale; everything else the run
// mutated is restored here.
func (m *machine) reset() {
	m.hier.Reset()
	m.bp.Reset()
	m.ss.Reset()

	m.stats = Stats{}
	m.cycle = 0
	m.seq = 0
	m.fetchIdx = 0
	m.fetchStall = 0
	m.pendingBranch = nil
	m.fetchPending.clear()
	m.fetchQ.clear()
	m.window.clear()
	m.iq = m.iq[:0]
	m.inflightLoads.clear()
	m.inflightStores.clear()
	m.pendingViol = m.pendingViol[:0]
	m.freeRegs = m.cfg.PhysRegs - isa.NumRegs
	m.lqUsed, m.sqUsed = 0, 0
	m.lastWriter = [isa.NumRegs]*uop{}
	m.curBBHead = nil
	m.profFIFO = nil
	m.retired.clear()
	m.squashScratch = m.squashScratch[:0]

	m.readyQ = m.readyQ[:0]
	m.readyNext = m.readyNext[:0]
	m.issueScratch = m.issueScratch[:0]
	m.iqCount = 0
	m.wakeNodes = m.wakeNodes[:0]
	m.wakeFree = -1
	for i := range m.wheelHead {
		m.wheelHead[i] = -1
	}
	m.wheelBits = [wheelSize / 64]uint64{}
	m.wheelCnt = 0

	// Every slot returns to the free list; a finished run holds uops only
	// in the retired queue, rename table and free list, all cleared above.
	m.freeUops = m.freeUops[:0]
	for _, u := range m.hot.uops {
		m.freeUops = append(m.freeUops, u)
	}
}
