package pipeline

import (
	"fmt"
	"strings"
)

// Stats summarizes one timing run.
type Stats struct {
	Cycles int64
	// Instrs counts committed architectural instructions (mini-graph
	// constituents count individually; outlining overhead jumps do not).
	Instrs int64
	// Uops counts committed micro-ops (a mini-graph handle is one uop).
	Uops int64

	Handles        int64 // mini-graph handles committed
	EmbeddedInstrs int64 // architectural instructions inside committed handles
	OverheadJumps  int64 // outlining jumps executed for disabled mini-graphs

	BranchMispredicts int64
	BTBMisses         int64
	RASMispredicts    int64

	MemOrderFlushes int64 // memory-ordering violation pipeline flushes
	Replays         int64 // issue attempts squashed by missed-load wakeups

	// Stall accounting (rename-blocked cycles by first blocking cause).
	StallIQ, StallROB, StallRegs, StallLQ, StallSQ int64

	// Mini-graph Slack-Dynamic monitor.
	MGSerializedEvents int64 // handle instances with detected serialization delay
	MGHarmfulEvents    int64 // ...whose delay propagated to a consumer
	MGDisables         int64 // templates disabled
	MGReenables        int64 // templates re-enabled (resurrection)

	// Memory system.
	L1IMissRate, L1DMissRate, L2MissRate float64
	MemAccesses                          int64
	ITLBMisses, DTLBMisses               int64
}

// IPC returns committed architectural instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// UPC returns committed uops per cycle (shows bandwidth amplification).
func (s *Stats) UPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Uops) / float64(s.Cycles)
}

// Coverage returns the fraction of committed architectural instructions
// that executed inside mini-graphs.
func (s *Stats) Coverage() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.EmbeddedInstrs) / float64(s.Instrs)
}

// String renders a multi-line report.
func (s *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles=%d instrs=%d uops=%d IPC=%.3f UPC=%.3f\n",
		s.Cycles, s.Instrs, s.Uops, s.IPC(), s.UPC())
	fmt.Fprintf(&sb, "minigraphs: handles=%d embedded=%d coverage=%.1f%% overheadJumps=%d\n",
		s.Handles, s.EmbeddedInstrs, 100*s.Coverage(), s.OverheadJumps)
	fmt.Fprintf(&sb, "branches: mispredicts=%d btbMiss=%d rasMiss=%d\n",
		s.BranchMispredicts, s.BTBMisses, s.RASMispredicts)
	fmt.Fprintf(&sb, "memory: L1I=%.2f%% L1D=%.2f%% L2=%.2f%% miss, mem=%d, ordFlush=%d, replays=%d\n",
		100*s.L1IMissRate, 100*s.L1DMissRate, 100*s.L2MissRate, s.MemAccesses, s.MemOrderFlushes, s.Replays)
	fmt.Fprintf(&sb, "stalls: iq=%d rob=%d regs=%d lq=%d sq=%d\n",
		s.StallIQ, s.StallROB, s.StallRegs, s.StallLQ, s.StallSQ)
	if s.MGSerializedEvents+s.MGDisables > 0 {
		fmt.Fprintf(&sb, "slack-dynamic: serialized=%d harmful=%d disables=%d reenables=%d\n",
			s.MGSerializedEvents, s.MGHarmfulEvents, s.MGDisables, s.MGReenables)
	}
	return sb.String()
}
