package pipeline

import (
	"repro/internal/minigraph"
	"repro/internal/obs"
)

// MGConfig configures mini-graph processing for a run. The zero value
// disables mini-graphs entirely (pure singleton execution).
type MGConfig struct {
	// Selection is the set of mini-graphs to execute; nil disables
	// mini-graph processing.
	Selection *minigraph.Selection
	// Layout is the transformed code layout; required when Selection is
	// non-nil.
	Layout *minigraph.Layout

	// Dynamic enables the Slack-Dynamic run-time monitor, which disables
	// templates whose instances show harmful serialization.
	Dynamic bool
	// DynamicDelayOnly makes the monitor consider serialization delay alone
	// (rule-#4-less ablation: Ideal-Slack-Dynamic-Delay and kin).
	DynamicDelayOnly bool
	// DynamicSIAL makes the monitor use the macro-op-scheduling heuristic:
	// flag an instance whenever its last-arriving operand is a serializing
	// operand, ignoring whether the mini-graph actually issued data-bound.
	DynamicSIAL bool
	// IdealOutlining removes the outlining penalty: a disabled mini-graph
	// executes as inline singletons with no extra jumps (the paper's
	// Ideal-Slack-Dynamic model).
	IdealOutlining bool
	// DisableAll starts every template disabled, so the whole program runs
	// in outlined form: the worst-case encoding penalty (and a test hook).
	DisableAll bool

	// DisableThreshold is the saturating-counter value at which a template
	// is disabled (0 means DefaultDisableThreshold).
	DisableThreshold int
	// DecayInterval is the cycle period of counter decay, which implements
	// hysteresis and resurrection (0 means DefaultDecayInterval).
	DecayInterval int64
}

// Default Slack-Dynamic hysteresis parameters.
const (
	DefaultDisableThreshold = 3
	DefaultDecayInterval    = 20_000
	counterMax              = 7
)

// Enabled reports whether mini-graph processing is active.
func (m *MGConfig) Enabled() bool { return m.Selection != nil }

// mgMonitor is the Slack-Dynamic hardware state: one saturating counter per
// MGT template plus the disabled bitmap.
type mgMonitor struct {
	cfg       *MGConfig
	counters  []uint8
	disabled  []bool
	threshold int
	decayAt   int64
	interval  int64

	stats *Stats
	trace *obs.Pipetrace // nil unless a pipetrace is attached
}

func newMGMonitor(cfg *MGConfig, numTemplates int, stats *Stats) *mgMonitor {
	th := cfg.DisableThreshold
	if th <= 0 {
		th = DefaultDisableThreshold
	}
	iv := cfg.DecayInterval
	if iv <= 0 {
		iv = DefaultDecayInterval
	}
	m := &mgMonitor{
		cfg:       cfg,
		counters:  make([]uint8, numTemplates),
		disabled:  make([]bool, numTemplates),
		threshold: th,
		decayAt:   iv,
		interval:  iv,
		stats:     stats,
	}
	if cfg.DisableAll {
		for i := range m.disabled {
			m.disabled[i] = true
			m.counters[i] = counterMax
		}
	}
	return m
}

// isDisabled reports whether a template is currently disabled.
func (m *mgMonitor) isDisabled(template int) bool { return m.disabled[template] }

// harmful records a harmful-serialization event for a template at the
// given cycle (the cycle feeds only the pipetrace).
func (m *mgMonitor) harmful(cycle int64, template int) {
	m.stats.MGHarmfulEvents++
	if m.counters[template] < counterMax {
		m.counters[template]++
	}
	if !m.disabled[template] && int(m.counters[template]) >= m.threshold {
		m.disabled[template] = true
		m.stats.MGDisables++
		if m.trace != nil {
			m.trace.Event(cycle, obs.EvDisable, template, -1)
		}
	}
}

// clean records a non-serialized instance, decaying the counter.
func (m *mgMonitor) clean(template int) {
	if m.counters[template] > 0 {
		m.counters[template]--
	}
}

// tick performs periodic decay, re-enabling templates whose counters have
// fallen below the threshold (mini-graph "resurrection").
func (m *mgMonitor) tick(cycle int64) {
	if cycle < m.decayAt {
		return
	}
	m.decayAt = cycle + m.interval
	for t := range m.counters {
		if m.counters[t] > 0 {
			m.counters[t]--
		}
		if m.disabled[t] && int(m.counters[t]) < m.threshold {
			m.disabled[t] = false
			m.stats.MGReenables++
			if m.trace != nil {
				m.trace.Event(cycle, obs.EvReenable, t, -1)
			}
		}
	}
}

// disabledCount returns how many templates are currently disabled.
func (m *mgMonitor) disabledCount() int {
	n := 0
	for _, d := range m.disabled {
		if d {
			n++
		}
	}
	return n
}
