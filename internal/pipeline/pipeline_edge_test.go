package pipeline

import (
	"testing"
	"testing/quick"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minigraph"
	"repro/internal/prog"
)

// selectOnly builds a selection containing exactly the window at (start,n).
func selectOnly(t testing.TB, p *prog.Program, tr []emu.Rec, start, n int) *minigraph.Selection {
	t.Helper()
	var cand *minigraph.Candidate
	for _, c := range minigraph.Enumerate(p, minigraph.DefaultLimits()) {
		if c.Start == start && c.N == n {
			cand = c
		}
	}
	if cand == nil {
		t.Fatalf("window (%d,%d) is not a candidate", start, n)
	}
	freq := make([]int64, p.NumInstrs())
	for _, r := range tr {
		freq[r.Index]++
	}
	sel := minigraph.Select(p, []*minigraph.Candidate{cand}, freq, minigraph.DefaultSelectConfig())
	if len(sel.Instances) != 1 {
		t.Fatal("selection failed")
	}
	return sel
}

// TestMGDelaysBranchResolution: a mini-graph whose final constituent is a
// hard-to-predict branch, with a serializing input, must lengthen the
// misprediction penalty (the paper's central pathology).
func TestMGDelaysBranchResolution(t *testing.T) {
	b := prog.NewBuilder("brmg")
	b.Li(1, 600)
	b.Li(2, 12345)
	b.Li(8, 1103515245)
	b.Label("loop")
	b.Mul(2, 2, 8) // LCG
	b.Addi(2, 2, 12345)
	b.Srli(6, 2, 16) // the branch's (random) source, ready early
	b.Mul(9, 2, 2)   // a slow extra value
	b.Mul(9, 9, 9)
	start := b.Pos()
	// Unbounded window: the branch condition r4 comes from the early r6 at
	// constituent 0; the slow r9 feeds an independent later constituent.
	// As singletons the branch resolves early; aggregated, its source
	// waits for r9 — delaying every misprediction recovery.
	b.Andi(4, 6, 1)     // 0: output (feeds the branch)
	b.Add(5, 9, 9)      // 1: serializing slow input
	b.Stw(5, isa.SP, 0) // 2: consumed internally
	b.Beqz(4, "skip")
	b.Addi(0, 0, 1)
	b.Label("skip")
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	p := b.MustBuild()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	sel := selectOnly(t, p, res.Trace, start, 3)
	cfg := Baseline()
	plain, err := Run(p, res.Trace, cfg, MGConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := Run(p, res.Trace, cfg, MGConfig{Selection: sel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The aggregate couples the branch condition to the slow r9 chain via
	// internal+external serialization; with heavy mispredictions this must
	// cost cycles.
	if plain.BranchMispredicts < 100 {
		t.Fatalf("test needs mispredictions, got %d", plain.BranchMispredicts)
	}
	if mg.Cycles <= plain.Cycles {
		t.Errorf("serializing branch mini-graph should hurt: %d vs %d cycles", mg.Cycles, plain.Cycles)
	}
}

// TestDisabledMGOutlinedExecution: with an always-disable monitor, the
// mini-graph executes in outlined form — overhead jumps appear, all
// instructions still commit, and cycles exceed the enabled case.
func TestDisabledMGOutlinedExecution(t *testing.T) {
	b := prog.NewBuilder("outl")
	b.Li(1, 400)
	b.Label("loop")
	start := b.Pos()
	b.Addi(2, 2, 1)
	b.Xori(2, 2, 0x3c)
	b.Slli(2, 2, 1)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Mov(0, 2)
	b.Halt()
	p := b.MustBuild()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	sel := selectOnly(t, p, res.Trace, start, 3)
	cfg := Reduced()

	enabled, err := Run(p, res.Trace, cfg, MGConfig{Selection: sel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Run the same selection with every template pre-disabled, which
	// exercises the outlined path deterministically.
	st, err := runWithAllDisabled(p, res.Trace, cfg, sel)
	if err != nil {
		t.Fatal(err)
	}
	if st.OverheadJumps == 0 {
		t.Error("outlined execution should execute overhead jumps")
	}
	if st.Instrs != enabled.Instrs {
		t.Errorf("outlined run committed %d instrs, enabled %d", st.Instrs, enabled.Instrs)
	}
	if st.Cycles <= enabled.Cycles {
		t.Errorf("outlined execution (%d cycles) should cost more than enabled (%d)",
			st.Cycles, enabled.Cycles)
	}
	if st.Handles != 0 {
		t.Errorf("disabled templates still executed %d handles", st.Handles)
	}
}

// TestIdealDisabledNoOverhead: ideal outlining executes disabled
// mini-graphs as inline singletons without jumps.
func TestIdealDisabledNoOverhead(t *testing.T) {
	b := prog.NewBuilder("ideal")
	b.Li(1, 200)
	b.Label("loop")
	start := b.Pos()
	b.Addi(2, 2, 1)
	b.Xori(2, 2, 0x3c)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Mov(0, 2)
	b.Halt()
	p := b.MustBuild()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	sel := selectOnly(t, p, res.Trace, start, 2)
	st, err := runWithAllDisabledIdeal(p, res.Trace, Reduced(), sel)
	if err != nil {
		t.Fatal(err)
	}
	if st.OverheadJumps != 0 {
		t.Errorf("ideal outlining executed %d overhead jumps", st.OverheadJumps)
	}
	if st.Handles != 0 {
		t.Errorf("disabled templates executed %d handles", st.Handles)
	}
	if st.Instrs != int64(len(res.Trace)) {
		t.Errorf("instrs %d != trace %d", st.Instrs, len(res.Trace))
	}
}

// TestOutlinedICacheTraffic: outlined bodies live in a distant code region
// and must add instruction-cache lines relative to enabled execution.
func TestOutlinedICacheTraffic(t *testing.T) {
	b := prog.NewBuilder("icache")
	b.Li(1, 2000)
	b.Label("loop")
	start := b.Pos()
	b.Addi(2, 2, 1)
	b.Xori(2, 2, 0x3c)
	b.Slli(2, 2, 1)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Mov(0, 2)
	b.Halt()
	p := b.MustBuild()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	sel := selectOnly(t, p, res.Trace, start, 3)
	en, err := Run(p, res.Trace, Reduced(), MGConfig{Selection: sel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := runWithAllDisabled(p, res.Trace, Reduced(), sel)
	if err != nil {
		t.Fatal(err)
	}
	_ = en
	if dis.L1IMissRate <= en.L1IMissRate {
		// Both are tiny for a small loop, but outlined must touch at least
		// one extra line; compare absolute misses via rate*accesses proxy:
		// fall back to a weaker assertion on overhead jumps.
		if dis.OverheadJumps == 0 {
			t.Error("outlined execution shows no extra I-cache behaviour at all")
		}
	}
}

// runWithAllDisabled runs with every template pre-disabled (exercises the
// outlined path deterministically).
func runWithAllDisabled(p *prog.Program, tr []emu.Rec, cfg Config, sel *minigraph.Selection) (*Stats, error) {
	return Run(p, tr, cfg, MGConfig{Selection: sel, DisableAll: true}, nil)
}

func runWithAllDisabledIdeal(p *prog.Program, tr []emu.Rec, cfg Config, sel *minigraph.Selection) (*Stats, error) {
	return Run(p, tr, cfg, MGConfig{Selection: sel, DisableAll: true, IdealOutlining: true}, nil)
}

func TestRandomProgramsCommitExactly(t *testing.T) {
	// Property: for arbitrary generated loops, with and without
	// mini-graphs, on both machines, committed instructions == trace
	// length and runs terminate.
	f := func(seed int64, which uint8) bool {
		p := genLoopProgram(seed)
		res, err := emu.Run(p, emu.Options{CollectTrace: true, MaxInstrs: 1 << 20})
		if err != nil {
			return true // degenerate program; not this test's concern
		}
		cfg := Baseline()
		if which%2 == 1 {
			cfg = Reduced()
		}
		mg := MGConfig{}
		if which%4 >= 2 {
			freq := make([]int64, p.NumInstrs())
			for _, r := range res.Trace {
				freq[r.Index]++
			}
			mg.Selection = minigraph.Select(p, minigraph.Enumerate(p, minigraph.DefaultLimits()), freq, minigraph.DefaultSelectConfig())
			if len(mg.Selection.Instances) == 0 {
				mg.Selection = nil
			}
		}
		st, err := Run(p, res.Trace, cfg, mg, nil)
		if err != nil {
			return false
		}
		return st.Instrs == int64(len(res.Trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// genLoopProgram builds a small random structured program.
func genLoopProgram(seed int64) *prog.Program {
	rng := uint64(seed)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	b := prog.NewBuilder("rand")
	arr := b.Space(256)
	b.Li(19, arr)
	b.Li(1, int64(20+next(80)))
	b.Label("loop")
	n := 3 + next(8)
	for i := 0; i < n; i++ {
		d := isa.Reg(2 + next(8))
		s1 := isa.Reg(2 + next(8))
		s2 := isa.Reg(2 + next(8))
		switch next(6) {
		case 0:
			b.Add(d, s1, s2)
		case 1:
			b.Xor(d, s1, s2)
		case 2:
			b.Addi(d, s1, int64(next(100)))
		case 3:
			b.Ldw(d, 19, int64(next(60))*4)
		case 4:
			b.Stw(s1, 19, int64(next(60))*4)
		case 5:
			b.Mul(d, s1, s2)
		}
	}
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Mov(0, 2)
	b.Halt()
	return b.MustBuild()
}

// TestTinyIQConfig exercises the structural-stall paths.
func TestTinyIQConfig(t *testing.T) {
	cfg := Baseline()
	cfg.Name = "tiny"
	cfg.IQEntries = 2
	cfg.PhysRegs = 36
	cfg.LQEntries = 2
	cfg.SQEntries = 2
	cfg.ROBEntries = 8

	b := prog.NewBuilder("pressure")
	arr := b.Space(1024)
	b.Li(19, arr)
	b.Li(1, 200)
	b.Label("loop")
	b.Ldw(2, 19, 0)
	b.Ldw(3, 19, 4)
	b.Mul(4, 2, 3)
	b.Stw(4, 19, 8)
	b.Stw(2, 19, 12)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	p := b.MustBuild()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(p, res.Trace, cfg, MGConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instrs != int64(len(res.Trace)) {
		t.Errorf("instrs %d != trace %d", st.Instrs, len(res.Trace))
	}
	if st.StallIQ+st.StallRegs+st.StallLQ+st.StallSQ+st.StallROB == 0 {
		t.Error("a tiny machine should report structural stalls")
	}
}

// TestTLBPressure: touching many pages must incur TLB misses.
func TestTLBPressure(t *testing.T) {
	b := prog.NewBuilder("tlb")
	b.Li(1, 256)         // pages
	b.Li(2, 0x0200_0000) // far from code/data
	b.Label("loop")
	b.Ldw(3, 2, 0)
	b.Add(0, 0, 3)
	b.Addi(2, 2, 4096)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	p := b.MustBuild()
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Baseline()
	st, err := Run(p, res.Trace, cfg, MGConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 256 distinct pages through a 64-entry 4-way TLB: nearly every access
	// walks the page table.
	if st.DTLBMisses < 200 {
		t.Errorf("DTLB misses = %d, want ~256", st.DTLBMisses)
	}
}
