package pipeline

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/minigraph"
	"repro/internal/workload"
)

func TestSampledMatchesFullRun(t *testing.T) {
	// On steady-state workloads, 20% periodic sampling with warm-up must
	// estimate the full run's cycle count within a modest error.
	for _, name := range []string{"comm.crc32", "media.fir", "intx.lcgbranch"} {
		w := workload.Find(name)
		p, _, _, err := w.Build("large")
		if err != nil {
			t.Fatal(err)
		}
		res, err := emu.Run(p, emu.Options{CollectTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Reduced()
		full, err := Run(p, res.Trace, cfg, MGConfig{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		spec := SampleSpec{Interval: 10_000, Window: 2_000, Warmup: 1_000}
		est, simFrac, err := RunSampled(p, res.Trace, cfg, MGConfig{}, spec)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(est.Cycles) / float64(full.Cycles)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: sampled estimate %.0f%% of full cycles (%d vs %d)",
				name, 100*ratio, est.Cycles, full.Cycles)
		}
		if simFrac >= 1.0 {
			t.Errorf("%s: sampling simulated everything (%.2f)", name, simFrac)
		}
		if est.Instrs != full.Instrs {
			t.Errorf("%s: instruction accounting %d vs %d", name, est.Instrs, full.Instrs)
		}
	}
}

func TestSampledUopExtrapolation(t *testing.T) {
	// Under a mini-graph configuration the uop count is genuinely smaller
	// than the instruction count (handles amortize their constituents), so
	// the sampled estimate must extrapolate uops from the measured windows
	// — not approximate them with est.Instrs, which would erase the very
	// bandwidth amplification the experiments report.
	w := workload.Find("comm.crc32")
	p, _, _, err := w.Build("large")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	freq := make([]int64, p.NumInstrs())
	for _, r := range res.Trace {
		freq[r.Index]++
	}
	sel := minigraph.Select(p, minigraph.Enumerate(p, minigraph.DefaultLimits()),
		freq, minigraph.DefaultSelectConfig())
	cfg, mg := Reduced(), MGConfig{Selection: sel}

	full, err := Run(p, res.Trace, cfg, mg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Uops >= full.Instrs {
		t.Fatalf("test premise broken: full run has %d uops for %d instrs", full.Uops, full.Instrs)
	}
	spec := SampleSpec{Interval: 10_000, Window: 2_000, Warmup: 1_000}
	est, _, err := RunSampled(p, res.Trace, cfg, mg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if est.Uops == est.Instrs {
		t.Error("sampled uops equal sampled instrs: extrapolation not applied")
	}
	ratio := float64(est.Uops) / float64(full.Uops)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("sampled uop estimate %.0f%% of full uops (%d vs %d)",
			100*ratio, est.Uops, full.Uops)
	}
}

func TestSampledWorkersDeterministic(t *testing.T) {
	// The parallel window pool must be invisible in the results: any worker
	// count yields the same estimate as the serial path.
	w := workload.Find("media.fir")
	p, _, _, err := w.Build("large")
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	base := SampleSpec{Interval: 10_000, Window: 2_000, Warmup: 1_000}
	serial, serialFrac, err := RunSampled(p, res.Trace, Reduced(), MGConfig{}, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		spec := base
		spec.Workers = workers
		par, parFrac, err := RunSampled(p, res.Trace, Reduced(), MGConfig{}, spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if *par != *serial {
			t.Errorf("workers=%d: stats diverge from serial:\nserial %+v\npar    %+v",
				workers, serial, par)
		}
		if parFrac != serialFrac {
			t.Errorf("workers=%d: simulated fraction %v != %v", workers, parFrac, serialFrac)
		}
	}
}

func TestSampledShortProgramFallsBack(t *testing.T) {
	w := workload.Find("comm.ipchk")
	p, _, _, _ := w.Build("small")
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := SampleSpec{Interval: 1 << 20, Window: 1000, Warmup: 100}
	est, frac, err := RunSampled(p, res.Trace, Reduced(), MGConfig{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Errorf("short program should simulate fully, frac = %.2f", frac)
	}
	if est.Instrs != int64(len(res.Trace)) {
		t.Error("fallback lost instructions")
	}
}

func TestSampleSpecValidation(t *testing.T) {
	w := workload.Find("comm.ipchk")
	p, _, _, _ := w.Build("small")
	res, _ := emu.Run(p, emu.Options{CollectTrace: true})
	bad := []SampleSpec{
		{Interval: 0, Window: 10, Warmup: 0},
		{Interval: 100, Window: 0, Warmup: 0},
		{Interval: 100, Window: 200, Warmup: 0},
		{Interval: 100, Window: 10, Warmup: -1},
	}
	for _, spec := range bad {
		if _, _, err := RunSampled(p, res.Trace, Reduced(), MGConfig{}, spec); err == nil {
			t.Errorf("spec %+v should be rejected", spec)
		}
	}
	if r := (SampleSpec{Interval: 50, Window: 1}).Rate(); r != 0.02 {
		t.Errorf("Rate = %v, want 0.02", r)
	}
}
