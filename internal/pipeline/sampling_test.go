package pipeline

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/workload"
)

func TestSampledMatchesFullRun(t *testing.T) {
	// On steady-state workloads, 20% periodic sampling with warm-up must
	// estimate the full run's cycle count within a modest error.
	for _, name := range []string{"comm.crc32", "media.fir", "intx.lcgbranch"} {
		w := workload.Find(name)
		p, _, _, err := w.Build("large")
		if err != nil {
			t.Fatal(err)
		}
		res, err := emu.Run(p, emu.Options{CollectTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Reduced()
		full, err := Run(p, res.Trace, cfg, MGConfig{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		spec := SampleSpec{Interval: 10_000, Window: 2_000, Warmup: 1_000}
		est, simFrac, err := RunSampled(p, res.Trace, cfg, MGConfig{}, spec)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(est.Cycles) / float64(full.Cycles)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: sampled estimate %.0f%% of full cycles (%d vs %d)",
				name, 100*ratio, est.Cycles, full.Cycles)
		}
		if simFrac >= 1.0 {
			t.Errorf("%s: sampling simulated everything (%.2f)", name, simFrac)
		}
		if est.Instrs != full.Instrs {
			t.Errorf("%s: instruction accounting %d vs %d", name, est.Instrs, full.Instrs)
		}
	}
}

func TestSampledShortProgramFallsBack(t *testing.T) {
	w := workload.Find("comm.ipchk")
	p, _, _, _ := w.Build("small")
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := SampleSpec{Interval: 1 << 20, Window: 1000, Warmup: 100}
	est, frac, err := RunSampled(p, res.Trace, Reduced(), MGConfig{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Errorf("short program should simulate fully, frac = %.2f", frac)
	}
	if est.Instrs != int64(len(res.Trace)) {
		t.Error("fallback lost instructions")
	}
}

func TestSampleSpecValidation(t *testing.T) {
	w := workload.Find("comm.ipchk")
	p, _, _, _ := w.Build("small")
	res, _ := emu.Run(p, emu.Options{CollectTrace: true})
	bad := []SampleSpec{
		{Interval: 0, Window: 10, Warmup: 0},
		{Interval: 100, Window: 0, Warmup: 0},
		{Interval: 100, Window: 200, Warmup: 0},
		{Interval: 100, Window: 10, Warmup: -1},
	}
	for _, spec := range bad {
		if _, _, err := RunSampled(p, res.Trace, Reduced(), MGConfig{}, spec); err == nil {
			t.Errorf("spec %+v should be rejected", spec)
		}
	}
	if r := (SampleSpec{Interval: 50, Window: 1}).Rate(); r != 0.02 {
		t.Errorf("Rate = %v, want 0.02", r)
	}
}
