package pipeline

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/prog"
)

// An attached observer must not perturb timing: the observed run's stats
// are identical to the plain run's, and the trace accounts for exactly the
// committed uops.
func TestObservedRunMatchesPlain(t *testing.T) {
	p := mgFriendlyLoop(t, 200)
	sel := selectAll(t, p)
	tr := trace(t, p)
	mg := MGConfig{Selection: sel, Dynamic: true}

	plain, err := Run(p, tr, Reduced(), mg, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	watch := &obs.Observer{Trace: obs.NewPipetrace(&buf), Intervals: obs.NewIntervalSampler(100)}
	observed, err := RunObserved(p, tr, Reduced(), mg, nil, watch)
	if err != nil {
		t.Fatal(err)
	}
	if *plain != *observed {
		t.Errorf("observer perturbed the run:\nplain    %+v\nobserved %+v", plain, observed)
	}
	if err := watch.Trace.Flush(); err != nil {
		t.Fatal(err)
	}

	uops, _, err := obs.ReadPipetrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var committed int64
	lastCommit := int64(-1)
	for _, u := range uops {
		if u.Squashed {
			if u.Commit != -1 {
				t.Errorf("squashed uop %d has commit cycle %d", u.Seq, u.Commit)
			}
			continue
		}
		committed++
		if u.Commit < lastCommit {
			t.Errorf("uop %d committed at %d after cycle %d: trace out of commit order",
				u.Seq, u.Commit, lastCommit)
		}
		lastCommit = u.Commit
		if u.Fetch < 0 || u.Rename < u.Fetch || u.Issue < u.Rename || u.Commit < u.Issue {
			t.Errorf("uop %d stage order broken: %+v", u.Seq, u)
		}
	}
	if committed != observed.Uops {
		t.Errorf("trace has %d committed uop records, stats counted %d", committed, observed.Uops)
	}

	ivs := watch.Intervals.Intervals()
	if len(ivs) == 0 {
		t.Fatal("no intervals sampled")
	}
	var instrs int64
	for _, iv := range ivs {
		instrs += iv.Instrs
	}
	if instrs != observed.Instrs {
		t.Errorf("intervals account for %d instrs, stats counted %d", instrs, observed.Instrs)
	}
	if last := ivs[len(ivs)-1].Cycle; last != observed.Cycles {
		t.Errorf("final interval ends at %d, run took %d cycles", last, observed.Cycles)
	}
}

// The dependence/serialization fields appended to the trace schema must be
// populated: handles carry their template id, register writers their dst,
// memory ops their kind and address, and serialization delay is measured
// against the dataflow-feasible internal schedule (pure chain handles
// report 0, handles aggregating independent ops report the induced delay).
func TestTraceDependenceFields(t *testing.T) {
	runTraced := func(p *prog.Program) []obs.UopTrace {
		t.Helper()
		sel := selectAll(t, p)
		var buf bytes.Buffer
		watch := &obs.Observer{Trace: obs.NewPipetrace(&buf)}
		if _, err := RunObserved(p, trace(t, p), Reduced(), MGConfig{Selection: sel}, nil, watch); err != nil {
			t.Fatal(err)
		}
		if err := watch.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
		uops, _, err := obs.ReadPipetrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !obs.HasDeps(uops) {
			t.Fatal("trace should carry dependence fields")
		}
		return uops
	}

	// ilpLoop handles aggregate independent work: internal serialization.
	handles, serialized := 0, 0
	for _, u := range runTraced(ilpLoop(t, 100)) {
		if u.Kind == "handle" {
			handles++
			if u.Tmpl < 0 {
				t.Errorf("handle uop %d has no template id", u.Seq)
			}
			if u.SerLat > 0 {
				serialized++
			}
		} else if u.Tmpl != -1 {
			t.Errorf("non-handle uop %d has template id %d", u.Seq, u.Tmpl)
		}
		if u.Dst < -1 || u.Dst >= isa.NumRegs {
			t.Errorf("uop %d dst %d out of range", u.Seq, u.Dst)
		}
		for _, s := range u.Srcs {
			if s < 0 || s >= isa.NumRegs {
				t.Errorf("uop %d src %d out of range", u.Seq, s)
			}
		}
		if u.SerLat < 0 || u.SerOut < 0 || u.MemLat < 0 {
			t.Errorf("uop %d negative delay fields: %+v", u.Seq, u)
		}
	}
	if handles == 0 {
		t.Fatal("no handles traced")
	}
	if serialized == 0 {
		t.Error("ilpLoop handles aggregate independent ops; expected positive SerLat instances")
	}

	// mgFriendlyLoop handles are pure 2-op chains: zero induced delay.
	for _, u := range runTraced(mgFriendlyLoop(t, 100)) {
		if u.Kind == "handle" && (u.SerLat != 0 || u.SerOut != 0) {
			t.Errorf("chain handle %d measured serialization %d/%d, want 0",
				u.Seq, u.SerLat, u.SerOut)
		}
	}

	// A load/store loop: memory kind and address recorded.
	b := prog.NewBuilder("ldst")
	slot := b.Space(4)
	b.Li(9, slot)
	b.Li(1, 50)
	b.Label("loop")
	b.Ldw(3, 9, 0)
	b.Addi(3, 3, 1)
	b.Stw(3, 9, 0)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Halt()
	loads, stores := 0, 0
	for _, u := range runTraced(b.MustBuild()) {
		switch u.Mem {
		case obs.MemLoad:
			loads++
			if !u.Squashed && u.Addr == 0 {
				t.Errorf("committed load uop %d has no address", u.Seq)
			}
		case obs.MemStore:
			stores++
		}
	}
	if loads == 0 || stores == 0 {
		t.Errorf("load loop traced %d loads, %d stores; want both > 0", loads, stores)
	}
}

// The same observed run must produce byte-identical traces on every
// execution (the simulation is deterministic and single-threaded).
func TestObservedRunDeterministic(t *testing.T) {
	p := mgFriendlyLoop(t, 100)
	sel := selectAll(t, p)
	tr := trace(t, p)
	mg := MGConfig{Selection: sel, Dynamic: true}

	run := func() []byte {
		var buf bytes.Buffer
		watch := &obs.Observer{Trace: obs.NewPipetrace(&buf)}
		if _, err := RunObserved(p, tr, Reduced(), mg, nil, watch); err != nil {
			t.Fatal(err)
		}
		if err := watch.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("two identical observed runs produced different trace bytes")
	}
}
