package pipeline

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// An attached observer must not perturb timing: the observed run's stats
// are identical to the plain run's, and the trace accounts for exactly the
// committed uops.
func TestObservedRunMatchesPlain(t *testing.T) {
	p := mgFriendlyLoop(t, 200)
	sel := selectAll(t, p)
	tr := trace(t, p)
	mg := MGConfig{Selection: sel, Dynamic: true}

	plain, err := Run(p, tr, Reduced(), mg, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	watch := &obs.Observer{Trace: obs.NewPipetrace(&buf), Intervals: obs.NewIntervalSampler(100)}
	observed, err := RunObserved(p, tr, Reduced(), mg, nil, watch)
	if err != nil {
		t.Fatal(err)
	}
	if *plain != *observed {
		t.Errorf("observer perturbed the run:\nplain    %+v\nobserved %+v", plain, observed)
	}
	if err := watch.Trace.Flush(); err != nil {
		t.Fatal(err)
	}

	uops, _, err := obs.ReadPipetrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var committed int64
	lastCommit := int64(-1)
	for _, u := range uops {
		if u.Squashed {
			if u.Commit != -1 {
				t.Errorf("squashed uop %d has commit cycle %d", u.Seq, u.Commit)
			}
			continue
		}
		committed++
		if u.Commit < lastCommit {
			t.Errorf("uop %d committed at %d after cycle %d: trace out of commit order",
				u.Seq, u.Commit, lastCommit)
		}
		lastCommit = u.Commit
		if u.Fetch < 0 || u.Rename < u.Fetch || u.Issue < u.Rename || u.Commit < u.Issue {
			t.Errorf("uop %d stage order broken: %+v", u.Seq, u)
		}
	}
	if committed != observed.Uops {
		t.Errorf("trace has %d committed uop records, stats counted %d", committed, observed.Uops)
	}

	ivs := watch.Intervals.Intervals()
	if len(ivs) == 0 {
		t.Fatal("no intervals sampled")
	}
	var instrs int64
	for _, iv := range ivs {
		instrs += iv.Instrs
	}
	if instrs != observed.Instrs {
		t.Errorf("intervals account for %d instrs, stats counted %d", instrs, observed.Instrs)
	}
	if last := ivs[len(ivs)-1].Cycle; last != observed.Cycles {
		t.Errorf("final interval ends at %d, run took %d cycles", last, observed.Cycles)
	}
}

// The same observed run must produce byte-identical traces on every
// execution (the simulation is deterministic and single-threaded).
func TestObservedRunDeterministic(t *testing.T) {
	p := mgFriendlyLoop(t, 100)
	sel := selectAll(t, p)
	tr := trace(t, p)
	mg := MGConfig{Selection: sel, Dynamic: true}

	run := func() []byte {
		var buf bytes.Buffer
		watch := &obs.Observer{Trace: obs.NewPipetrace(&buf)}
		if _, err := RunObserved(p, tr, Reduced(), mg, nil, watch); err != nil {
			t.Fatal(err)
		}
		if err := watch.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("two identical observed runs produced different trace bytes")
	}
}
