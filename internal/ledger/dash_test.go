package ledger

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestDashHandler renders the dashboard over a real recorded history and
// checks the load-bearing pieces: series rows with sparklines, the
// latest-vs-previous delta, per-run cache hit rates, and live sweeps.
func TestDashHandler(t *testing.T) {
	metrics.ResetProgress()
	defer metrics.ResetProgress()
	dir := t.TempDir()
	l := mustOpen(t, dir, "r1")
	for i, ipc := range []float64{1.40, 1.45, 1.10} {
		r := rec("comm.crc32", ipc)
		r.Series = "Slack-Profile"
		r.Sweep = "Figure 1"
		if i > 0 {
			r.Cache = "hit"
		}
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	p := metrics.StartSweep("dash-test", [][2]string{{"comm.crc32", "Slack-Profile"}})
	p.TaskDone(0, "hit", nil)
	p.Finish()

	srv := httptest.NewServer(DashHandler(func() *Ledger { return l }))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{
		"comm.crc32",      // series row
		"Slack-Profile",   // series label
		"<svg",            // sparkline rendered
		"-24.1%",          // 1.45 -> 1.10 latest-vs-previous delta
		"delta-down",      // regression styled (sign also in text)
		"dash-test",       // live sweep section
		"cache hit %",     // runs table
		"66.7",            // 2 hits / 3 lookups
		l.Host().Hostname, // host fingerprint shown
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// Ledger off: 503 with a hint, not a broken page.
	off := httptest.NewServer(DashHandler(func() *Ledger { return nil }))
	defer off.Close()
	resp2, err := off.Client().Get(off.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 503 {
		t.Fatalf("ledger-off status %d, want 503", resp2.StatusCode)
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil); s != "" {
		t.Errorf("empty sparkline: %q", s)
	}
	one := string(sparkline([]float64{1.5}))
	if !strings.Contains(one, "<circle") || strings.Contains(one, "<polyline") {
		t.Errorf("single-point sparkline should be a dot: %q", one)
	}
	many := string(sparkline([]float64{1, 2, 3, 2, 1}))
	if !strings.Contains(many, "<polyline") || !strings.Contains(many, "<title>") {
		t.Errorf("sparkline missing polyline/title: %q", many)
	}
	// A long history must clip to the cap, not grow without bound.
	long := make([]float64, 500)
	for i := range long {
		long[i] = float64(i)
	}
	clipped := string(sparkline(long))
	if n := strings.Count(clipped, ","); n > sparkPoints+2 {
		t.Errorf("sparkline not clipped: %d points", n)
	}
}

// dashPage renders the dashboard for the given ledger and returns the
// HTML, failing the test on any non-200.
func dashPage(t *testing.T, l *Ledger) string {
	t.Helper()
	srv := httptest.NewServer(DashHandler(func() *Ledger { return l }))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestDashEmptyLedger renders the dashboard over a ledger with no records
// at all: a valid page, not a panic or a broken template.
func TestDashEmptyLedger(t *testing.T) {
	metrics.ResetProgress()
	defer metrics.ResetProgress()
	l := mustOpen(t, t.TempDir(), "r1")
	page := dashPage(t, l)
	for _, want := range []string{"Runtime health", l.Host().Hostname} {
		if !strings.Contains(page, want) {
			t.Errorf("empty-ledger dashboard missing %q", want)
		}
	}
	if strings.Contains(page, "<polyline") {
		t.Errorf("empty-ledger dashboard drew a sparkline from nothing")
	}
}

// TestDashSingleRecord covers the one-point history: a dot sparkline and
// no latest-vs-previous delta to compute.
func TestDashSingleRecord(t *testing.T) {
	metrics.ResetProgress()
	defer metrics.ResetProgress()
	l := mustOpen(t, t.TempDir(), "r1")
	if err := l.Append(rec("comm.crc32", 1.40)); err != nil {
		t.Fatal(err)
	}
	page := dashPage(t, l)
	if !strings.Contains(page, "comm.crc32") {
		t.Errorf("single-record dashboard missing the series row")
	}
	// One point has no previous to diff against: the delta cell is a dash,
	// never a styled regression.
	if strings.Contains(page, `class="num delta-down"`) {
		t.Errorf("regression styling rendered with only one point")
	}
	if !strings.Contains(page, "–") {
		t.Errorf("delta placeholder missing with only one point")
	}
}

// TestDashHealthStrip drives the runtime-health section through its three
// states: sampler off (note), armed but empty (note), and populated (five
// labelled sparkline rows).
func TestDashHealthStrip(t *testing.T) {
	metrics.ResetProgress()
	defer metrics.ResetProgress()
	l := mustOpen(t, t.TempDir(), "r1")

	prev := metrics.InstallHealth(nil)
	defer metrics.InstallHealth(prev)

	if page := dashPage(t, l); !strings.Contains(page, "health sampler off") {
		t.Errorf("sampler-off note missing")
	}

	h := metrics.NewHealthSampler(time.Second)
	metrics.InstallHealth(h)
	if page := dashPage(t, l); !strings.Contains(page, "no samples yet") {
		t.Errorf("armed-but-empty note missing")
	}

	for i := 0; i < 3; i++ {
		h.Push(metrics.HealthSample{
			HeapBytes:  uint64(10+i) << 20,
			Goroutines: int64(4 + i),
			GCCPUPct:   0.5,
		})
	}
	page := dashPage(t, l)
	for _, want := range []string{
		"Runtime health", "heap in use", "goroutines", "GC CPU",
		"GC pause p99", "sched latency p99", "12.0 MB", "<svg",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("health strip missing %q", want)
		}
	}
	if strings.Contains(page, "health sampler") {
		t.Errorf("note rendered alongside a populated strip")
	}
}
