package ledger

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestDashHandler renders the dashboard over a real recorded history and
// checks the load-bearing pieces: series rows with sparklines, the
// latest-vs-previous delta, per-run cache hit rates, and live sweeps.
func TestDashHandler(t *testing.T) {
	metrics.ResetProgress()
	defer metrics.ResetProgress()
	dir := t.TempDir()
	l := mustOpen(t, dir, "r1")
	for i, ipc := range []float64{1.40, 1.45, 1.10} {
		r := rec("comm.crc32", ipc)
		r.Series = "Slack-Profile"
		r.Sweep = "Figure 1"
		if i > 0 {
			r.Cache = "hit"
		}
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	p := metrics.StartSweep("dash-test", [][2]string{{"comm.crc32", "Slack-Profile"}})
	p.TaskDone(0, "hit", nil)
	p.Finish()

	srv := httptest.NewServer(DashHandler(func() *Ledger { return l }))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{
		"comm.crc32",      // series row
		"Slack-Profile",   // series label
		"<svg",            // sparkline rendered
		"-24.1%",          // 1.45 -> 1.10 latest-vs-previous delta
		"delta-down",      // regression styled (sign also in text)
		"dash-test",       // live sweep section
		"cache hit %",     // runs table
		"66.7",            // 2 hits / 3 lookups
		l.Host().Hostname, // host fingerprint shown
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// Ledger off: 503 with a hint, not a broken page.
	off := httptest.NewServer(DashHandler(func() *Ledger { return nil }))
	defer off.Close()
	resp2, err := off.Client().Get(off.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 503 {
		t.Fatalf("ledger-off status %d, want 503", resp2.StatusCode)
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil); s != "" {
		t.Errorf("empty sparkline: %q", s)
	}
	one := string(sparkline([]float64{1.5}))
	if !strings.Contains(one, "<circle") || strings.Contains(one, "<polyline") {
		t.Errorf("single-point sparkline should be a dot: %q", one)
	}
	many := string(sparkline([]float64{1, 2, 3, 2, 1}))
	if !strings.Contains(many, "<polyline") || !strings.Contains(many, "<title>") {
		t.Errorf("sparkline missing polyline/title: %q", many)
	}
	// A long history must clip to the cap, not grow without bound.
	long := make([]float64, 500)
	for i := range long {
		long[i] = float64(i)
	}
	clipped := string(sparkline(long))
	if n := strings.Count(clipped, ","); n > sparkPoints+2 {
		t.Errorf("sparkline not clipped: %d points", n)
	}
}
