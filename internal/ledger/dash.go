package ledger

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// This file renders /debug/dash: a stdlib-only HTML observatory over the
// run ledger. It answers the questions a long sweep raises — how does this
// run compare with the history, is the cache earning its keep, what is
// still in flight — with per-series IPC sparklines (inline SVG),
// latest-vs-previous deltas, per-run cache hit rates over time, and the
// live sweep progress the /debug/sweep endpoint serves as JSON. Every
// number drawn in a sparkline also appears as text in the adjacent table
// cells, so the page degrades to a plain table without color or vision.

// sparkPoints caps the points drawn per sparkline; older history falls off
// the left edge (the tables still aggregate everything).
const sparkPoints = 60

// DashHandler serves the ledger dashboard. src returns the live ledger
// (nil when -ledger is off, which serves 503 with a hint instead).
func DashHandler(src func() *Ledger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		l := src()
		if l == nil {
			http.Error(w, "run ledger off: start the process with -ledger DIR to record and browse run history", http.StatusServiceUnavailable)
			return
		}
		recs, skipped, err := Read(l.Path())
		if err != nil {
			http.Error(w, "ledger read: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		dashTmpl.Execute(w, buildDash(l, recs, skipped)) //nolint:errcheck — best-effort debug endpoint
	})
}

// dashSeries is one (workload, series, input) row of the history table.
type dashSeries struct {
	Workload string
	Series   string
	Input    string
	Runs     int
	Spark    template.HTML // IPC history sparkline
	IPC      float64       // latest
	DeltaPct float64       // latest vs previous record, percent
	HasPrev  bool
	Regress  bool // DeltaPct below -1%
	WallMS   float64
	Cache    string
	Rev      string
}

// dashRun is one process invocation aggregated from its records.
type dashRun struct {
	Time    string
	Rev     string
	Tool    string
	Sweeps  int
	Records int
	HitPct  float64 // hit+shared share of cache-attributed records
	WallS   float64 // summed task wall time
}

// dashSweep is one live or recently finished sweep from the progress layer.
type dashSweep struct {
	Title   string
	Active  bool
	Done    int
	Total   int
	Failed  int
	PctDone float64
	ETA     string
}

// dashHealthRow is one vital sign in the runtime-health strip.
type dashHealthRow struct {
	Label string
	Spark template.HTML // history sparkline over the sampler's ring
	Value string        // latest reading, rendered
}

type dashView struct {
	Path       string
	Rev        string
	Host       string
	Records    int
	Skipped    int
	Revs       []string
	Series     []dashSeries
	Runs       []dashRun
	RunSpark   template.HTML // hit-rate-over-runs sparkline
	Sweeps     []dashSweep
	Health     []dashHealthRow
	HealthNote string // shown instead of rows when the sampler is off/empty
}

// buildDash aggregates the raw history into the page's view model.
func buildDash(l *Ledger, recs []Record, skipped int) dashView {
	v := dashView{
		Path:    l.Path(),
		Rev:     l.Rev(),
		Host:    l.Host().Summary(),
		Records: len(recs),
		Skipped: skipped,
	}

	// Series history: timing records grouped by point, in append order.
	byPoint := map[string][]Record{}
	var pointOrder []string
	revSeen := map[string]bool{}
	for _, r := range recs {
		if r.Rev != "" && !revSeen[r.Rev] {
			revSeen[r.Rev] = true
			v.Revs = append(v.Revs, r.Rev)
		}
		if r.Cycles <= 0 || r.Error != "" {
			continue
		}
		k := r.PointKey()
		if _, ok := byPoint[k]; !ok {
			pointOrder = append(pointOrder, k)
		}
		byPoint[k] = append(byPoint[k], r)
	}
	sort.Strings(pointOrder)
	for _, k := range pointOrder {
		h := byPoint[k]
		last := h[len(h)-1]
		ipcs := make([]float64, len(h))
		for i, r := range h {
			ipcs[i] = r.IPC
		}
		row := dashSeries{
			Workload: last.Workload,
			Series:   last.Series,
			Input:    last.Input,
			Runs:     len(h),
			Spark:    sparkline(ipcs),
			IPC:      last.IPC,
			WallMS:   last.WallMS,
			Cache:    last.Cache,
			Rev:      last.Rev,
		}
		if len(h) > 1 && h[len(h)-2].IPC > 0 {
			row.HasPrev = true
			row.DeltaPct = 100 * (last.IPC - h[len(h)-2].IPC) / h[len(h)-2].IPC
			row.Regress = row.DeltaPct < -1
		}
		v.Series = append(v.Series, row)
	}

	// Runs: records grouped by RunID in first-seen order; cache hit rate
	// counts hit+shared against all cache-attributed lookups.
	type runAgg struct {
		dashRun
		hits, lookups int
		sweeps        map[string]bool
	}
	byRun := map[string]*runAgg{}
	var runOrder []string
	for _, r := range recs {
		a, ok := byRun[r.RunID]
		if !ok {
			a = &runAgg{dashRun: dashRun{Time: r.Time, Rev: r.Rev, Tool: r.Tool}, sweeps: map[string]bool{}}
			byRun[r.RunID] = a
			runOrder = append(runOrder, r.RunID)
		}
		a.Records++
		a.WallS += r.WallMS / 1e3
		if r.Sweep != "" {
			a.sweeps[r.Sweep] = true
		}
		switch r.Cache {
		case "hit", "shared":
			a.hits++
			a.lookups++
		case "miss", "nocache", "traced":
			a.lookups++
		}
	}
	hitRates := make([]float64, 0, len(runOrder))
	for _, id := range runOrder {
		a := byRun[id]
		a.Sweeps = len(a.sweeps)
		if a.lookups > 0 {
			a.HitPct = 100 * float64(a.hits) / float64(a.lookups)
		}
		if t := a.Time; len(t) >= 19 {
			a.dashRun.Time = strings.Replace(t[:19], "T", " ", 1)
		}
		hitRates = append(hitRates, a.HitPct)
		v.Runs = append(v.Runs, a.dashRun)
	}
	v.RunSpark = sparkline(hitRates)

	// Live sweeps from the always-on progress layer.
	for _, s := range metrics.SnapshotSweeps() {
		d := dashSweep{Title: s.Title, Active: s.Active, Done: s.Done,
			Total: s.Total, Failed: s.Failed}
		if s.Total > 0 {
			d.PctDone = 100 * float64(s.Done) / float64(s.Total)
		}
		if s.ETAMS > 0 {
			d.ETA = fmt.Sprintf("%.0fs", s.ETAMS/1e3)
		}
		v.Sweeps = append(v.Sweeps, d)
	}

	v.Health, v.HealthNote = healthStrip()
	return v
}

// healthStrip renders the runtime-health sampler's history as sparkline
// rows; with no sampler (or no samples yet) it returns an explanatory note
// instead.
func healthStrip() ([]dashHealthRow, string) {
	h := metrics.Health()
	if h == nil {
		return nil, "health sampler off — start the process with -httpaddr to record runtime health"
	}
	hist := h.History()
	if len(hist) == 0 {
		return nil, "health sampler armed, no samples yet"
	}
	last := hist[len(hist)-1]
	row := func(label string, get func(metrics.HealthSample) float64, value string) dashHealthRow {
		vals := make([]float64, len(hist))
		for i, s := range hist {
			vals[i] = get(s)
		}
		return dashHealthRow{Label: label, Spark: sparkline(vals), Value: value}
	}
	return []dashHealthRow{
		row("heap in use", func(s metrics.HealthSample) float64 { return float64(s.HeapBytes) / (1 << 20) },
			fmt.Sprintf("%.1f MB", float64(last.HeapBytes)/(1<<20))),
		row("goroutines", func(s metrics.HealthSample) float64 { return float64(s.Goroutines) },
			fmt.Sprintf("%d", last.Goroutines)),
		row("GC CPU", func(s metrics.HealthSample) float64 { return s.GCCPUPct },
			fmt.Sprintf("%.1f%%", last.GCCPUPct)),
		row("GC pause p99", func(s metrics.HealthSample) float64 { return s.GCPauseP99MS },
			fmt.Sprintf("%.2f ms", last.GCPauseP99MS)),
		row("sched latency p99", func(s metrics.HealthSample) float64 { return s.SchedLatP99MS },
			fmt.Sprintf("%.2f ms", last.SchedLatP99MS)),
	}, ""
}

// sparkline renders values as a word-sized inline-SVG line (newest right).
// The y range spans the data with a small pad; a flat series draws a
// midline. Values also live in the surrounding table, so the graphic
// carries trend shape, not the only copy of the numbers.
func sparkline(vals []float64) template.HTML {
	if len(vals) > sparkPoints {
		vals = vals[len(vals)-sparkPoints:]
	}
	const w, h = 120, 24
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, x := range vals {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi, lo = hi+0.5, lo-0.5
	}
	pad := (hi - lo) * 0.12
	hi, lo = hi+pad, lo-pad
	var pts strings.Builder
	step := float64(w-4) / float64(max(len(vals)-1, 1))
	var lastX, lastY float64
	for i, x := range vals {
		px := 2 + float64(i)*step
		py := float64(h-2) - (x-lo)/(hi-lo)*float64(h-4)
		fmt.Fprintf(&pts, "%.1f,%.1f ", px, py)
		lastX, lastY = px, py
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`, w, h, w, h)
	fmt.Fprintf(&sb, `<title>%d points, %.4g to %.4g</title>`, len(vals), vals[0], vals[len(vals)-1])
	if len(vals) == 1 {
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2" class="spark-dot"/>`, lastX, lastY)
	} else {
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" class="spark-line" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>`, strings.TrimSpace(pts.String()))
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.5" class="spark-dot"/>`, lastX, lastY)
	}
	sb.WriteString(`</svg>`)
	return template.HTML(sb.String())
}

var dashTmpl = template.Must(template.New("dash").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><title>mini-graph run ledger</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f1f0ee;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --series-1: #2a78d6; --status-serious: #e34948; --grid: #dddcd8;
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif; margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #262624;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --series-1: #3987e5; --status-serious: #e66767; --grid: #3a3936;
  }
}
h1 { font-size: 18px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.meta { color: var(--text-secondary); margin: 0 0 2px; }
table { border-collapse: collapse; margin-top: 6px; }
th { text-align: left; color: var(--text-secondary); font-weight: 600; }
th, td { padding: 3px 14px 3px 0; border-bottom: 1px solid var(--grid); }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.spark-line { stroke: var(--series-1); }
.spark-dot { fill: var(--series-1); }
.delta-down { color: var(--status-serious); font-weight: 600; }
.bar { background: var(--surface-2); border-radius: 4px; width: 160px; height: 10px; display: inline-block; vertical-align: middle; }
.bar > span { background: var(--series-1); border-radius: 4px; height: 10px; display: block; }
.muted { color: var(--text-secondary); }
</style></head>
<body class="viz-root">
<h1>mini-graph run ledger</h1>
<p class="meta">{{.Path}} — {{.Records}} records{{if .Skipped}}, {{.Skipped}} skipped (torn/corrupt){{end}} — appending as rev <b>{{.Rev}}</b></p>
<p class="meta">{{.Host}}</p>
<p class="meta">revisions seen: {{range $i, $r := .Revs}}{{if $i}}, {{end}}{{$r}}{{end}}</p>

{{if .Sweeps}}<h2>Sweeps this process</h2>
<table><tr><th>sweep</th><th>progress</th><th class="num">done</th><th class="num">failed</th><th class="num">ETA</th></tr>
{{range .Sweeps}}<tr><td>{{.Title}}</td>
<td><span class="bar"><span style="width:{{printf "%.0f" .PctDone}}%"></span></span></td>
<td class="num">{{.Done}}/{{.Total}}</td><td class="num">{{if .Failed}}{{.Failed}}{{else}}–{{end}}</td>
<td class="num">{{if .Active}}{{if .ETA}}{{.ETA}}{{else}}…{{end}}{{else}}done{{end}}</td></tr>
{{end}}</table>{{end}}

<h2>Runtime health</h2>
{{if .Health}}<table><tr><th>signal</th><th>history</th><th class="num">latest</th></tr>
{{range .Health}}<tr><td>{{.Label}}</td><td>{{.Spark}}</td><td class="num">{{.Value}}</td></tr>
{{end}}</table>{{else}}<p class="muted">{{.HealthNote}}</p>{{end}}

<h2>Series history</h2>
{{if not .Series}}<p class="muted">no timing records yet — run a sweep with -ledger pointing here</p>{{else}}
<table><tr><th>workload</th><th>series</th><th>input</th><th>IPC history</th>
<th class="num">runs</th><th class="num">IPC</th><th class="num">Δ prev</th><th class="num">wall ms</th><th>cache</th><th>rev</th></tr>
{{range .Series}}<tr><td>{{.Workload}}</td><td>{{.Series}}</td><td>{{.Input}}</td><td>{{.Spark}}</td>
<td class="num">{{.Runs}}</td><td class="num">{{printf "%.4f" .IPC}}</td>
<td class="num{{if .Regress}} delta-down{{end}}">{{if .HasPrev}}{{printf "%+.1f%%" .DeltaPct}}{{else}}–{{end}}</td>
<td class="num">{{printf "%.1f" .WallMS}}</td><td>{{.Cache}}</td><td>{{.Rev}}</td></tr>
{{end}}</table>{{end}}

<h2>Runs &amp; cache hit rate</h2>
{{if .Runs}}<p class="meta">hit rate over runs: {{.RunSpark}}</p>
<table><tr><th>started (UTC)</th><th>rev</th><th>tool</th><th class="num">sweeps</th><th class="num">records</th><th class="num">cache hit %</th><th class="num">task wall s</th></tr>
{{range .Runs}}<tr><td>{{.Time}}</td><td>{{.Rev}}</td><td>{{.Tool}}</td>
<td class="num">{{if .Sweeps}}{{.Sweeps}}{{else}}–{{end}}</td><td class="num">{{.Records}}</td>
<td class="num">{{printf "%.1f" .HitPct}}</td><td class="num">{{printf "%.1f" .WallS}}</td></tr>
{{end}}</table>{{else}}<p class="muted">no runs recorded yet</p>{{end}}
</body></html>
`))
