package ledger

import (
	"strings"
	"testing"
)

// history builds a two-rev history: three series points recorded at revA,
// then at revB with the given per-point IPC scale factors.
func history(scaleB map[string]float64) []Record {
	host := Host{Hostname: "h", CPU: "c", OS: "linux", Arch: "amd64"}
	var recs []Record
	for _, rev := range []string{"A", "B"} {
		for _, w := range []string{"w1", "w2", "w3"} {
			ipc := 1.5
			wall := 100.0
			if rev == "B" {
				if s, ok := scaleB[w]; ok {
					ipc *= s
				}
			}
			recs = append(recs, Record{
				Rev: rev, RunID: "run-" + rev, Tool: "mgreport", Workload: w,
				Series: "Slack-Profile", Input: "small", Cycles: 1000,
				IPC: ipc, WallMS: wall, Cache: "miss", Host: host,
			})
		}
	}
	return recs
}

// TestGateFlagsInjectedRegression is the acceptance scenario: a 20% IPC
// regression injected between two recorded revs must be flagged, while the
// untouched points pass.
func TestGateFlagsInjectedRegression(t *testing.T) {
	recs := history(map[string]float64{"w2": 0.8}) // -20% IPC on w2
	deltas := Compare(recs, "A", "B")
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
	fails := Gate(deltas, 0.05, 0, 0)
	if len(fails) != 1 || !strings.Contains(fails[0], "w2") || !strings.Contains(fails[0], "-20.0%") {
		t.Fatalf("gate: %v, want exactly the w2 -20%% IPC regression", fails)
	}
	// A looser tolerance than the injected drop passes.
	if fails := Gate(deltas, 0.25, 0, 0); len(fails) != 0 {
		t.Fatalf("gate at 25%% tolerance: %v, want clean", fails)
	}
}

// TestGateSelfCompareClean mirrors the ledger-smoke CI leg: a rev compared
// against itself must gate clean at any tolerance.
func TestGateSelfCompareClean(t *testing.T) {
	recs := history(nil)
	deltas := Compare(recs, "A", "A")
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
	for _, d := range deltas {
		if d.IPCPct != 0 || d.WallPct != 0 {
			t.Fatalf("self-compare nonzero delta: %+v", d)
		}
	}
	if fails := Gate(deltas, 0.0001, 0.0001, 0); len(fails) != 0 {
		t.Fatalf("self-compare gate: %v, want clean", fails)
	}
}

// TestCompareLatestWins re-records one point at the same rev: the newer
// record must supersede, not mix.
func TestCompareLatestWins(t *testing.T) {
	recs := history(nil)
	fixed := recs[0] // w1 @ A
	fixed.IPC = 3.0
	recs = append(recs, fixed)
	deltas := Compare(recs, "A", "B")
	for _, d := range deltas {
		if d.Workload == "w1" {
			if d.A.IPC != 3.0 {
				t.Fatalf("latest record did not win: %+v", d.A)
			}
			if d.IPCPct > -0.4 {
				t.Fatalf("delta not computed against latest: %+v", d)
			}
		}
	}
}

// TestGateWallTime covers the wall-time leg: growth beyond tolerance on
// same-host uncached records fails; the same growth on a cache hit or a
// cross-host pair carries no signal and passes.
func TestGateWallTime(t *testing.T) {
	recs := history(nil)
	for i := range recs {
		if recs[i].Rev == "B" {
			recs[i].WallMS = 200 // +100%
		}
	}
	deltas := Compare(recs, "A", "B")
	if fails := Gate(deltas, 0.05, 0.5, 0); len(fails) != 3 {
		t.Fatalf("wall gate: %d failures, want 3: %v", len(fails), fails)
	}
	// Wall gate off: clean.
	if fails := Gate(deltas, 0.05, 0, 0); len(fails) != 0 {
		t.Fatalf("wall gate off: %v", fails)
	}
	// Cache hits answered in microseconds must not trip the wall gate.
	for i := range recs {
		if recs[i].Rev == "B" {
			recs[i].Cache = "hit"
		}
	}
	if fails := Gate(Compare(recs, "A", "B"), 0.05, 0.5, 0); len(fails) != 0 {
		t.Fatalf("cache-hit wall gate: %v, want clean", fails)
	}
	// Cross-host wall deltas measure hardware, not code.
	for i := range recs {
		if recs[i].Rev == "B" {
			recs[i].Cache = "miss"
			recs[i].Host.Hostname = "other"
		}
	}
	deltas = Compare(recs, "A", "B")
	if fails := Gate(deltas, 0.05, 0.5, 0); len(fails) != 0 {
		t.Fatalf("cross-host wall gate: %v, want clean", fails)
	}
	for _, d := range deltas {
		if !d.CrossHost {
			t.Fatalf("cross-host pair not flagged: %+v", d)
		}
	}
}

// TestGateCPUTime covers the CPU-time leg: a 20% CPU growth must trip
// -gate-cpu on same-host AND cross-host pairs (CPU time is robust to host
// identity in a way wall time is not), while records without CPU
// accounting (old ledgers) and cache hits carry no signal.
func TestGateCPUTime(t *testing.T) {
	recs := history(nil)
	for i := range recs {
		recs[i].CPUMS = 100
		if recs[i].Rev == "B" {
			recs[i].CPUMS = 120 // +20%
		}
	}
	deltas := Compare(recs, "A", "B")
	for _, d := range deltas {
		if d.CPUPct < 0.199 || d.CPUPct > 0.201 {
			t.Fatalf("CPUPct = %v, want 0.20: %+v", d.CPUPct, d)
		}
	}
	// Same-host: 20% growth beyond a 5% tolerance fails all three points.
	if fails := Gate(deltas, 0.05, 0, 0.05); len(fails) != 3 {
		t.Fatalf("cpu gate same-host: %d failures, want 3: %v", len(fails), fails)
	}
	// Tolerance above the growth passes.
	if fails := Gate(deltas, 0.05, 0, 0.25); len(fails) != 0 {
		t.Fatalf("cpu gate at 25%%: %v, want clean", fails)
	}
	// Cross-host pairs still gate — the acceptance requirement.
	for i := range recs {
		if recs[i].Rev == "B" {
			recs[i].Host.Hostname = "other"
		}
	}
	deltas = Compare(recs, "A", "B")
	if fails := Gate(deltas, 0.05, 0, 0.05); len(fails) != 3 {
		t.Fatalf("cpu gate cross-host: %d failures, want 3: %v", len(fails), fails)
	}
	// Cache hits answered in microseconds carry no CPU signal.
	for i := range recs {
		if recs[i].Rev == "B" {
			recs[i].Cache = "hit"
		}
	}
	if fails := Gate(Compare(recs, "A", "B"), 0.05, 0, 0.05); len(fails) != 0 {
		t.Fatalf("cache-hit cpu gate: %v, want clean", fails)
	}
}

// TestGateCPUSkipsUnaccounted pairs a record predating CPU accounting
// (CPUMS == 0) with a new one: no CPU delta, no gate failure, and the
// rendered table shows the dash placeholder.
func TestGateCPUSkipsUnaccounted(t *testing.T) {
	recs := history(nil)
	for i := range recs {
		if recs[i].Rev == "B" {
			recs[i].CPUMS = 500 // A side has no CPU field
		}
	}
	deltas := Compare(recs, "A", "B")
	for _, d := range deltas {
		if d.CPUPct != 0 {
			t.Fatalf("CPUPct = %v on an unaccounted pair, want 0", d.CPUPct)
		}
	}
	if fails := Gate(deltas, 0.05, 0, 0.01); len(fails) != 0 {
		t.Fatalf("unaccounted cpu gate: %v, want clean", fails)
	}
	var sb strings.Builder
	if err := WriteCompareText(&sb, "A", "B", deltas); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "–") || !strings.Contains(out, "Δcpu%") {
		t.Errorf("compare table missing cpu placeholder column:\n%s", out)
	}
}

// TestCompareSkipsNonTiming ensures selection-only records (Cycles == 0)
// and errored tasks never enter the delta table.
func TestCompareSkipsNonTiming(t *testing.T) {
	recs := history(nil)
	recs = append(recs,
		Record{Rev: "A", Workload: "w9", Series: "s", Input: "small", Coverage: 0.4},
		Record{Rev: "B", Workload: "w9", Series: "s", Input: "small", Coverage: 0.4},
		Record{Rev: "A", Workload: "w8", Series: "s", Input: "small", Cycles: 10, IPC: 1, Error: "boom"},
		Record{Rev: "B", Workload: "w8", Series: "s", Input: "small", Cycles: 10, IPC: 1, Error: "boom"},
	)
	if deltas := Compare(recs, "A", "B"); len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3 (non-timing and errored excluded)", len(deltas))
	}
}

// TestGateSkipsMixedFidelity pairs a sampled estimate against an exact run
// (and two estimates under different sampling specs): the deltas must be
// flagged Mixed, skipped by the gate even when the IPC drop is huge, and
// called out in the rendered table. Two estimates under the *same* spec
// remain comparable.
func TestGateSkipsMixedFidelity(t *testing.T) {
	recs := history(map[string]float64{"w1": 0.5, "w2": 0.5, "w3": 0.5}) // -50% everywhere
	for i := range recs {
		switch {
		case recs[i].Rev == "B" && recs[i].Workload == "w1":
			// Estimate vs exact.
			recs[i].Estimate, recs[i].Sample = true, "rep/i1000/w1000/k8"
		case recs[i].Workload == "w2":
			// Estimate vs estimate, different specs.
			recs[i].Estimate = true
			recs[i].Sample = "rep/i1000/w1000/k8"
			if recs[i].Rev == "B" {
				recs[i].Sample = "uniform/i50000/w1000/u2000"
			}
		case recs[i].Workload == "w3":
			// Estimate vs estimate, same spec: still comparable.
			recs[i].Estimate, recs[i].Sample = true, "rep/i1000/w1000/k8"
		}
	}
	deltas := Compare(recs, "A", "B")
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
	for _, d := range deltas {
		if want := d.Workload != "w3"; d.Mixed != want {
			t.Fatalf("%s: Mixed=%v, want %v", d.Workload, d.Mixed, want)
		}
	}
	fails := Gate(deltas, 0.05, 0, 0)
	if len(fails) != 1 || !strings.Contains(fails[0], "w3") {
		t.Fatalf("gate: %v, want only the same-spec w3 regression", fails)
	}
	var sb strings.Builder
	if err := WriteCompareText(&sb, "A", "B", deltas); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "  [mixed-fidelity]") != 2 {
		t.Errorf("want 2 [mixed-fidelity] notes:\n%s", out)
	}
	if !strings.Contains(out, "warning: [mixed-fidelity]") {
		t.Errorf("missing mixed-fidelity warning footer:\n%s", out)
	}
}

func TestWriteCompareText(t *testing.T) {
	recs := history(map[string]float64{"w2": 0.8})
	var sb strings.Builder
	if err := WriteCompareText(&sb, "A", "B", Compare(recs, "A", "B")); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"w1", "w2", "w3", "-20.0%", "Slack-Profile"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare table missing %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	if err := WriteCompareText(&empty, "A", "X", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no common timing records") {
		t.Errorf("empty compare: %q", empty.String())
	}
}
